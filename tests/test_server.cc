// The network service layer, end to end over real loopback sockets:
// framing and command grammar, error mapping, and the acceptance property
// — many concurrent wire clients formulating edge-at-a-time (including
// DELETE_EDGE and a mid-RUN CANCEL) against one server while a background
// thread publishes COW appends, with every RUN reply bit-identical to an
// in-process PragueSession replay on the same pinned snapshot, and
// deadline-cut runs reporting truncation plus the cut phase.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <sstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/session_manager.h"
#include "datasets/query_workload.h"
#include "server/prague_client.h"
#include "server/prague_server.h"
#include "server/wire.h"
#include "test_fixtures.h"

namespace prague {
namespace {

using testing::kC;
using testing::kN;
using testing::kO;
using testing::kS;

SnapshotPtr FreshTinySnapshot() {
  const auto& fixture = testing::TinyFixture::Get();
  return DatabaseSnapshot::Make(fixture.db, fixture.indexes, 0);
}

// ---------------------------------------------------------------------------
// Framing over a socketpair.

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    for (int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  }
};

TEST(WireFrameTest, RoundTripsBothTypesAndEmptyPayload) {
  SocketPair pair;
  ASSERT_TRUE(SendFrame(pair.fds[0], FrameType::kRequest, "RUN 5").ok());
  ASSERT_TRUE(SendFrame(pair.fds[0], FrameType::kResponse, "").ok());
  Result<WireFrame> first = RecvFrame(pair.fds[1]);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->type, FrameType::kRequest);
  EXPECT_EQ(first->payload, "RUN 5");
  Result<WireFrame> second = RecvFrame(pair.fds[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->type, FrameType::kResponse);
  EXPECT_TRUE(second->payload.empty());
}

TEST(WireFrameTest, CleanCloseIsDistinguishedFromMidFrameClose) {
  {
    SocketPair pair;
    ::close(pair.fds[0]);
    pair.fds[0] = -1;
    Result<WireFrame> r = RecvFrame(pair.fds[1]);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(IsConnectionClosed(r.status()));
  }
  {
    SocketPair pair;
    // Three header bytes, then EOF: a shorn frame, not a clean close.
    const uint8_t partial[3] = {9, 0, 0};
    ASSERT_EQ(::send(pair.fds[0], partial, sizeof(partial), 0), 3);
    ::close(pair.fds[0]);
    pair.fds[0] = -1;
    Result<WireFrame> r = RecvFrame(pair.fds[1]);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
    EXPECT_FALSE(IsConnectionClosed(r.status()));
  }
}

TEST(WireFrameTest, UnknownTypeByteAndOversizedLengthAreCorruption) {
  {
    SocketPair pair;
    uint8_t header[kFrameHeaderBytes];
    EncodeFrameHeader({3, 0x7A}, header);  // 'z' is not a frame type
    ASSERT_EQ(::send(pair.fds[0], header, sizeof(header), 0),
              static_cast<ssize_t>(sizeof(header)));
    Result<WireFrame> r = RecvFrame(pair.fds[1]);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  }
  {
    SocketPair pair;
    uint8_t header[kFrameHeaderBytes];
    EncodeU32LE(kMaxFramePayload + 1, header);
    header[4] = static_cast<uint8_t>(FrameType::kRequest);
    ASSERT_EQ(::send(pair.fds[0], header, sizeof(header), 0),
              static_cast<ssize_t>(sizeof(header)));
    Result<WireFrame> r = RecvFrame(pair.fds[1]);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  }
}

// ---------------------------------------------------------------------------
// Command grammar.

TEST(WireCommandTest, ParsesEveryVerb) {
  Result<WireCommand> open = ParseCommand("OPEN 250");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->kind, CommandKind::kOpen);
  EXPECT_EQ(open->timeout_ms, 250);
  EXPECT_EQ(ParseCommand("OPEN")->timeout_ms, -1);

  Result<WireCommand> add = ParseCommand("ADD_EDGE 1 C 2 S 7");
  ASSERT_TRUE(add.ok());
  EXPECT_EQ(add->kind, CommandKind::kAddEdge);
  EXPECT_EQ(add->u, 1u);
  EXPECT_EQ(add->u_label, "C");
  EXPECT_EQ(add->v, 2u);
  EXPECT_EQ(add->v_label, "S");
  EXPECT_EQ(add->edge_label, 7u);
  EXPECT_EQ(ParseCommand("ADD_EDGE 1 C 2 S")->edge_label, 0u);

  Result<WireCommand> del = ParseCommand("DELETE_EDGE 3 1");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->kind, CommandKind::kDeleteEdge);
  EXPECT_EQ(del->u, 3u);
  EXPECT_EQ(del->v, 1u);

  EXPECT_EQ(ParseCommand("RUN")->limit, 0u);
  EXPECT_EQ(ParseCommand("RUN 10")->limit, 10u);
  EXPECT_EQ(ParseCommand("CANCEL")->kind, CommandKind::kCancel);
  EXPECT_EQ(ParseCommand("STATS")->kind, CommandKind::kStats);
  EXPECT_EQ(ParseCommand("METRICS")->kind, CommandKind::kMetrics);
  EXPECT_EQ(ParseCommand("CLOSE")->kind, CommandKind::kClose);
}

TEST(WireCommandTest, TypedParseErrors) {
  for (const char* bad :
       {"", "FLY", "OPEN x", "OPEN -5", "OPEN 1 2", "ADD_EDGE 1 C 2",
        "ADD_EDGE u C v S", "ADD_EDGE 1 C 2 S 3 4", "DELETE_EDGE 1",
        "DELETE_EDGE 1 2 3", "RUN k", "CANCEL now", "STATS 1",
        "METRICS 1"}) {
    Result<WireCommand> r = ParseCommand(bad);
    ASSERT_FALSE(r.ok()) << "accepted '" << bad << "'";
    EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument) << bad;
  }
}

TEST(WireCommandTest, FormatAndParseAreInverse) {
  WireCommand add;
  add.kind = CommandKind::kAddEdge;
  add.u = 4;
  add.u_label = "C";
  add.v = 9;
  add.v_label = "N";
  add.edge_label = 2;
  Result<WireCommand> back = ParseCommand(FormatCommand(add));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->u, add.u);
  EXPECT_EQ(back->v_label, add.v_label);
  EXPECT_EQ(back->edge_label, add.edge_label);
}

// ---------------------------------------------------------------------------
// Reply codecs.

TEST(WireReplyTest, ErrorReplyRoundTripsStatus) {
  Status original = Status::NotFound("label 'X' is not in the dictionary");
  Status decoded = DecodeReplyStatus(EncodeErrorReply(original));
  EXPECT_EQ(decoded, original);
  EXPECT_TRUE(DecodeReplyStatus("OK bye").ok());
  EXPECT_EQ(DecodeReplyStatus("gibberish").code(), Status::Code::kCorruption);
}

TEST(WireReplyTest, StepReplyRoundTrips) {
  StepReport report;
  report.edge = 3;
  report.status = FragmentStatus::kNoExactMatch;
  report.similarity_mode = true;
  report.exact_candidates = 0;
  report.free_candidates = 17;
  report.ver_candidates = 5;
  Result<StepReply> reply = ParseStepReply(FormatStepReply(report));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->edge, 3);
  EXPECT_EQ(reply->status, FragmentStatus::kNoExactMatch);
  EXPECT_TRUE(reply->similarity_mode);
  EXPECT_EQ(reply->free_candidates, 17u);
  EXPECT_EQ(reply->ver_candidates, 5u);
}

TEST(WireReplyTest, RunReplyRoundTripsExactAndSimilar) {
  QueryResults exact;
  exact.exact = {2, 5, 9};
  RunStats stats;
  stats.srt_seconds = 0.004;
  Result<RunReply> r = ParseRunReply(FormatRunReply(exact, stats, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->similarity);
  EXPECT_EQ(r->total_matches, 3u);
  EXPECT_EQ(r->exact, (std::vector<GraphId>{2, 5, 9}));
  EXPECT_FALSE(r->truncated);
  EXPECT_EQ(r->deadline_phase, "none");
  EXPECT_NEAR(r->srt_ms, 4.0, 1e-9);

  QueryResults similar;
  similar.similarity = true;
  similar.truncated = true;
  similar.similar = {{4, 1, false}, {7, 2, true}, {1, 3, true}};
  RunStats cut;
  cut.deadline_phase = RunPhase::kSimilarGeneration;
  // limit=2 caps the listed matches; n stays the full count.
  Result<RunReply> s = ParseRunReply(FormatRunReply(similar, cut, 2));
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->similarity);
  EXPECT_TRUE(s->truncated);
  EXPECT_EQ(s->deadline_phase, "similar-generation");
  EXPECT_EQ(s->total_matches, 3u);
  ASSERT_EQ(s->similar.size(), 2u);
  EXPECT_EQ(s->similar[0].gid, 4u);
  EXPECT_EQ(s->similar[0].distance, 1);
  EXPECT_EQ(s->similar[1].gid, 7u);
}

TEST(WireReplyTest, EmptyResultListsUseDashPlaceholder) {
  QueryResults empty;
  RunStats stats;
  std::string payload = FormatRunReply(empty, stats, 0);
  EXPECT_NE(payload.find("ids=-"), std::string::npos);
  Result<RunReply> r = ParseRunReply(payload);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->exact.empty());
}

TEST(WireReplyTest, StatsReplyRoundTripsOpenSessions) {
  SessionManagerStats stats;
  stats.current_version = 12;
  stats.open_sessions = 2;
  stats.sessions_opened = 40;
  stats.snapshots_published = 12;
  stats.runs_served = 321;
  stats.runs_truncated = 9;
  stats.open_session_infos = {{17, 3}, {39, 12}};
  Result<StatsReply> reply = ParseStatsReply(FormatStatsReply(stats));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->current_version, 12u);
  EXPECT_EQ(reply->open_sessions, 2u);
  EXPECT_EQ(reply->sessions_opened, 40u);
  EXPECT_EQ(reply->snapshots_published, 12u);
  EXPECT_EQ(reply->runs_served, 321u);
  EXPECT_EQ(reply->runs_truncated, 9u);
  ASSERT_EQ(reply->sessions.size(), 2u);
  EXPECT_EQ(reply->sessions[0], (std::pair<uint64_t, uint64_t>{17, 3}));
  EXPECT_EQ(reply->sessions[1], (std::pair<uint64_t, uint64_t>{39, 12}));
}

TEST(WireReplyTest, MetricsReplyRoundTripsPrometheusText) {
  const std::string text =
      "# TYPE prague_server_frames_total counter\n"
      "prague_server_frames_total 42\n";
  Result<std::string> back = ParseMetricsReply(FormatMetricsReply(text));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, text);

  // An empty exposition is legal (no metrics registered yet).
  Result<std::string> empty = ParseMetricsReply(FormatMetricsReply(""));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  EXPECT_FALSE(ParseMetricsReply("OK metricsgarbage").ok());
  EXPECT_EQ(ParseMetricsReply("ERR NOT_FOUND boom").status().code(),
            Status::Code::kNotFound);
}

// ---------------------------------------------------------------------------
// A live server on loopback.

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    manager_ = std::make_unique<SessionManager>(FreshTinySnapshot());
    PragueServerOptions options;
    options.port = 0;  // ephemeral
    options.worker_threads = 12;
    server_ = std::make_unique<PragueServer>(manager_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  Status ConnectClient(PragueClient* client) {
    return client->Connect("127.0.0.1", server_->port());
  }

  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<PragueServer> server_;
};

TEST_F(ServerFixture, OpenFormulateRunClose) {
  PragueClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  Result<OpenReply> open = client.Open();
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ(open->version, 0u);
  EXPECT_GT(open->session_id, 0u);

  // The C-S-C path of test_session_manager, over the wire.
  Result<StepReply> e1 = client.AddEdge(1, "C", 2, "S");
  ASSERT_TRUE(e1.ok()) << e1.status().ToString();
  Result<StepReply> e2 = client.AddEdge(2, "S", 3, "C");
  ASSERT_TRUE(e2.ok());

  Result<RunReply> run = client.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run->truncated);

  // The same formulation in process on the same pinned snapshot.
  PragueSession replay(manager_->current());
  NodeId a = replay.AddNode(kC);
  NodeId b = replay.AddNode(kS);
  NodeId c = replay.AddNode(kC);
  ASSERT_TRUE(replay.AddEdge(a, b).ok());
  ASSERT_TRUE(replay.AddEdge(b, c).ok());
  Result<QueryResults> expected = replay.Run(nullptr);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(run->similarity, expected->similarity);
  EXPECT_EQ(run->exact, expected->exact);

  EXPECT_TRUE(client.Close().ok());
}

TEST_F(ServerFixture, ProtocolErrorsAreTyped) {
  PragueClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  // Formulating before OPEN.
  Result<StepReply> early = client.AddEdge(1, "C", 2, "S");
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), Status::Code::kFailedPrecondition);
  Result<RunReply> early_run = client.Run();
  ASSERT_FALSE(early_run.ok());
  EXPECT_EQ(early_run.status().code(), Status::Code::kFailedPrecondition);

  ASSERT_TRUE(client.Open().ok());
  // Double OPEN.
  Result<OpenReply> again = client.Open();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), Status::Code::kFailedPrecondition);

  // A label outside the dictionary.
  Result<StepReply> bad_label = client.AddEdge(1, "C", 2, "Xe");
  ASSERT_FALSE(bad_label.ok());
  EXPECT_EQ(bad_label.status().code(), Status::Code::kNotFound);

  // Relabeling an existing handle.
  ASSERT_TRUE(client.AddEdge(1, "C", 2, "S").ok());
  Result<StepReply> relabel = client.AddEdge(1, "O", 3, "C");
  ASSERT_FALSE(relabel.ok());
  EXPECT_EQ(relabel.status().code(), Status::Code::kInvalidArgument);

  // Deleting an edge that was never added.
  Result<StepReply> missing = client.DeleteEdge(1, 9);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kNotFound);

  EXPECT_TRUE(client.Close().ok());
}

TEST_F(ServerFixture, StatsListsOpenSessionsWithPinnedVersions) {
  PragueClient first, second;
  ASSERT_TRUE(ConnectClient(&first).ok());
  ASSERT_TRUE(ConnectClient(&second).ok());
  ASSERT_TRUE(first.Open().ok());

  // Publish an append between the two opens: the sessions pin different
  // versions and STATS must show exactly that.
  ASSERT_TRUE(
      manager_
          ->Append({testing::MakeGraph({kC, kS, kO}, {{0, 1}, {1, 2}})}, 0.34)
          .ok());
  ASSERT_TRUE(second.Open().ok());

  Result<StatsReply> stats = second.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->current_version, 1u);
  EXPECT_EQ(stats->open_sessions, 2u);
  ASSERT_EQ(stats->sessions.size(), 2u);
  EXPECT_EQ(stats->sessions[0],
            (std::pair<uint64_t, uint64_t>{first.session_id(), 0}));
  EXPECT_EQ(stats->sessions[1],
            (std::pair<uint64_t, uint64_t>{second.session_id(), 1}));

  EXPECT_TRUE(first.Close().ok());
  EXPECT_TRUE(second.Close().ok());
}

// Value of the sample named exactly \p name in a Prometheus text block;
// -1 when absent.
double PrometheusSample(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.size() > name.size() &&
        line.compare(0, name.size(), name) == 0 &&
        line[name.size()] == ' ') {
      return std::strtod(line.c_str() + name.size() + 1, nullptr);
    }
  }
  return -1.0;
}

TEST_F(ServerFixture, MetricsCountRunFramesExactly) {
  PragueClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  // METRICS needs no open session. The registry is process-wide and other
  // tests in this binary also serve RUNs, so assert on the delta.
  Result<std::string> before_text = client.Metrics();
  ASSERT_TRUE(before_text.ok()) << before_text.status().ToString();
  double before =
      PrometheusSample(*before_text, "prague_server_run_latency_us_count");
  ASSERT_GE(before, 0.0) << "RUN latency histogram not in exposition:\n"
                         << *before_text;

  ASSERT_TRUE(client.Open().ok());
  ASSERT_TRUE(client.AddEdge(1, "C", 2, "S").ok());
  constexpr int kRuns = 5;
  for (int i = 0; i < kRuns; ++i) {
    ASSERT_TRUE(client.Run().ok());
  }

  Result<std::string> after_text = client.Metrics();
  ASSERT_TRUE(after_text.ok()) << after_text.status().ToString();
  double after =
      PrometheusSample(*after_text, "prague_server_run_latency_us_count");
  // The acceptance property: one histogram sample per RUN frame issued.
  EXPECT_EQ(after - before, kRuns);
  EXPECT_GE(PrometheusSample(*after_text, "prague_server_cmd_run_total"),
            static_cast<double>(kRuns));
  EXPECT_GT(PrometheusSample(*after_text, "prague_server_frames_total"), 0.0);
  EXPECT_GE(PrometheusSample(*after_text, "prague_engine_runs_total"),
            static_cast<double>(kRuns));

  // STATS carries the cumulative run tally for this server's manager.
  Result<StatsReply> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->runs_served, static_cast<uint64_t>(kRuns));
  EXPECT_EQ(stats->runs_truncated, 0u);

  EXPECT_TRUE(client.Close().ok());
}

// ---------------------------------------------------------------------------
// The acceptance test: concurrent wire clients vs in-process replay.

// One scripted formulation step.
struct WireOp {
  bool del = false;
  uint32_t u = 0;
  const char* u_label = "";
  uint32_t v = 0;
  const char* v_label = "";
};

// Per-client scripts: all share the C-S-C core; variants add similarity
// pressure (pendant N has no exact match anywhere) and Modify actions.
std::vector<WireOp> ScriptFor(int client) {
  std::vector<WireOp> ops = {
      {false, 1, "C", 2, "S"},
      {false, 2, "S", 3, "C"},
  };
  switch (client % 4) {
    case 0:
      break;  // plain exact path
    case 1:  // add then delete a pendant O (Modify action)
      ops.push_back({false, 1, "C", 4, "O"});
      ops.push_back({true, 1, "", 4, ""});
      break;
    case 2:  // pendant N: no exact match -> similarity mode
      ops.push_back({false, 3, "C", 5, "N"});
      break;
    case 3:  // triangle then delete one leg
      ops.push_back({false, 1, "C", 3, "C"});
      ops.push_back({true, 1, "", 2, ""});
      break;
  }
  return ops;
}

// Replays a script on an in-process session, mirroring the server's
// handle bookkeeping (first appearance creates the node, edges tracked by
// unordered handle pair).
Result<QueryResults> ReplayScript(const SnapshotPtr& snapshot,
                                  const std::vector<WireOp>& ops) {
  PragueSession session(snapshot);
  std::map<uint32_t, NodeId> nodes;
  std::map<std::pair<uint32_t, uint32_t>, FormulationId> edges;
  auto key = [](uint32_t u, uint32_t v) {
    return std::make_pair(std::min(u, v), std::max(u, v));
  };
  for (const WireOp& op : ops) {
    if (op.del) {
      Result<StepReport> step = session.DeleteEdge(edges.at(key(op.u, op.v)));
      if (!step.ok()) return step.status();
      edges.erase(key(op.u, op.v));
    } else {
      for (auto [handle, label] :
           {std::pair<uint32_t, const char*>{op.u, op.u_label},
            std::pair<uint32_t, const char*>{op.v, op.v_label}}) {
        if (nodes.count(handle)) continue;
        Result<NodeId> id = session.AddNodeByName(label);
        if (!id.ok()) return id.status();
        nodes[handle] = *id;
      }
      Result<StepReport> step = session.AddEdge(nodes[op.u], nodes[op.v]);
      if (!step.ok()) return step.status();
      edges[key(op.u, op.v)] = step->edge;
    }
  }
  return session.Run(nullptr);
}

TEST_F(ServerFixture, ConcurrentClientsMatchReplayWhileAppenderPublishes) {
  constexpr int kClients = 8;
  constexpr int kAppends = 10;

  // Every published snapshot, by version, so each client's RUN can be
  // replayed on exactly the version its session pinned.
  std::mutex snapshots_mu;
  std::map<uint64_t, SnapshotPtr> snapshots;
  {
    std::lock_guard<std::mutex> lock(snapshots_mu);
    snapshots[manager_->current()->version()] = manager_->current();
  }

  std::atomic<bool> failed{false};
  std::vector<uint64_t> pinned(kClients, 0);
  std::vector<RunReply> replies(kClients);
  std::vector<std::string> errors(kClients);

  std::vector<std::thread> threads;
  threads.reserve(kClients + 1);
  threads.emplace_back([&] {
    for (int i = 0; i < kAppends; ++i) {
      auto report = manager_->Append(
          {testing::MakeGraph({kC, kS, kO}, {{0, 1}, {1, 2}})}, 0.34);
      if (!report.ok()) {
        failed.store(true);
        return;
      }
      std::lock_guard<std::mutex> lock(snapshots_mu);
      snapshots[manager_->current()->version()] = manager_->current();
    }
  });
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto fail = [&](const Status& st) {
        errors[i] = st.ToString();
        failed.store(true);
      };
      PragueClient client;
      if (Status st = ConnectClient(&client); !st.ok()) return fail(st);
      Result<OpenReply> open = client.Open();
      if (!open.ok()) return fail(open.status());
      pinned[i] = open->version;
      for (const WireOp& op : ScriptFor(i)) {
        if (op.del) {
          Result<StepReply> step = client.DeleteEdge(op.u, op.v);
          if (!step.ok()) return fail(step.status());
        } else {
          Result<StepReply> step =
              client.AddEdge(op.u, op.u_label, op.v, op.v_label);
          if (!step.ok()) return fail(step.status());
        }
      }
      Result<RunReply> run = client.Run();
      if (!run.ok()) return fail(run.status());
      replies[i] = std::move(*run);
      if (Status st = client.Close(); !st.ok()) return fail(st);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(errors[i].empty()) << "client " << i << ": " << errors[i];
  }
  ASSERT_FALSE(failed.load());

  for (int i = 0; i < kClients; ++i) {
    SCOPED_TRACE("client " + std::to_string(i) + " pinned version " +
                 std::to_string(pinned[i]));
    SnapshotPtr snapshot;
    {
      std::lock_guard<std::mutex> lock(snapshots_mu);
      auto it = snapshots.find(pinned[i]);
      ASSERT_NE(it, snapshots.end());
      snapshot = it->second;
    }
    Result<QueryResults> expected = ReplayScript(snapshot, ScriptFor(i));
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    EXPECT_FALSE(replies[i].truncated);
    EXPECT_EQ(replies[i].similarity, expected->similarity);
    EXPECT_EQ(replies[i].exact, expected->exact);
    ASSERT_EQ(replies[i].similar.size(), expected->similar.size());
    for (size_t m = 0; m < expected->similar.size(); ++m) {
      EXPECT_EQ(replies[i].similar[m].gid, expected->similar[m].gid);
      EXPECT_EQ(replies[i].similar[m].distance, expected->similar[m].distance);
    }
    // Matches stay within the pinned |D|: no appended graph leaks in.
    for (GraphId gid : replies[i].exact) {
      EXPECT_LT(gid, snapshot->db().size());
    }
  }

  EXPECT_EQ(manager_->Stats().current_version,
            static_cast<uint64_t>(kAppends));
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines over the wire, on a database heavy enough
// that RUN takes visible wall time (same construction as
// test_cancellation's HeavyAidsQuery).

// A database built to make RUN genuinely slow: many graphs behind an
// index mined so shallow (3-edge fragments at 40% support) that it prunes
// almost nothing, forcing the similarity path to MCCS-verify a huge
// candidate set. test_cancellation's AidsFixture query finishes in under
// a millisecond here, which cannot exercise deadlines over the wire.
struct HeavyWireFixture {
  GraphDatabase db;
  MiningResult mined;
  ActionAwareIndexes indexes;
  VisualQuerySpec query;

  static const HeavyWireFixture& Get() {
    static HeavyWireFixture* fixture = [] {
      auto* f = new HeavyWireFixture();
      AidsGeneratorConfig config;
      config.graph_count = 12000;
      config.seed = 23;
      f->db = GenerateAidsLikeDatabase(config);
      MiningConfig mining;
      mining.min_support_ratio = 0.4;
      mining.max_fragment_edges = 3;
      Result<MiningResult> mined = MineFragments(f->db, mining);
      if (!mined.ok()) std::abort();
      f->mined = std::move(*mined);
      A2fConfig a2f;
      a2f.beta = 2;
      f->indexes = BuildActionAwareIndexes(f->mined, a2f);
      WorkloadGenerator workload(&f->db, 47);
      for (auto [edges, mutations] : {std::pair<size_t, int>{12, 3},
                                      {10, 3},
                                      {8, 3},
                                      {8, 2},
                                      {8, 1}}) {
        Result<VisualQuerySpec> s =
            workload.SimilarityQuery(edges, mutations, "heavy");
        if (s.ok()) {
          f->query = std::move(*s);
          return f;
        }
      }
      std::abort();
    }();
    return *fixture;
  }
};

const VisualQuerySpec& HeavyAidsQuery() { return HeavyWireFixture::Get().query; }

class HeavyServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto& fixture = HeavyWireFixture::Get();
    manager_ = std::make_unique<SessionManager>(
        DatabaseSnapshot::Borrow(&fixture.db, &fixture.indexes));
    server_ = std::make_unique<PragueServer>(manager_.get(),
                                             PragueServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  // Feeds the heavy similarity query over the wire.
  static Status FeedHeavy(PragueClient* client) {
    const VisualQuerySpec& spec = HeavyAidsQuery();
    const auto& labels = HeavyWireFixture::Get().db.labels();
    std::map<NodeId, uint32_t> handle_of;
    uint32_t next_handle = 1;
    for (EdgeId e : spec.sequence) {
      const Edge& edge = spec.graph.GetEdge(e);
      for (NodeId n : {edge.u, edge.v}) {
        if (!handle_of.count(n)) handle_of[n] = next_handle++;
      }
      Result<StepReply> step = client->AddEdge(
          handle_of[edge.u], labels.Name(spec.graph.NodeLabel(edge.u)),
          handle_of[edge.v], labels.Name(spec.graph.NodeLabel(edge.v)),
          edge.label);
      PRAGUE_RETURN_NOT_OK(step.status());
    }
    return Status::OK();
  }

  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<PragueServer> server_;
};

TEST_F(HeavyServerFixture, CancelTruncatesRunInFlight) {
  PragueClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Open().ok());  // unbounded budget
  ASSERT_TRUE(FeedHeavy(&client).ok());

  Result<RunReply> run = Status::IOError("never ran");
  std::atomic<bool> run_sent{false};
  std::thread runner([&] {
    run_sent.store(true);
    run = client.Run();
  });
  // Wait until the runner is at the send, give the RUN frame a moment to
  // reach the server, then cancel from this thread through the same
  // connection — the wire image of ManagedSession::Cancel. The handler
  // marks the run in flight before it reads the next frame, so once the
  // RUN frame is ahead of the CANCEL frame the cancel cannot be dropped,
  // and the unbounded run takes orders of magnitude longer than the gap.
  while (!run_sent.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(client.Cancel().ok());
  runner.join();

  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->truncated);
  EXPECT_NE(run->deadline_phase, "none");

  // The session survives the cancellation: a fresh RUN (re-armed token)
  // completes normally and matches an in-process replay.
  Result<RunReply> again = client.Run();
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(again->truncated);
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(HeavyServerFixture, PerSessionDeadlineReportsTruncationAndPhase) {
  PragueClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Open(1).ok());  // 1 ms Run() budget
  ASSERT_TRUE(FeedHeavy(&client).ok());

  Result<RunReply> run = client.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->truncated);
  EXPECT_NE(run->deadline_phase, "none");
  EXPECT_TRUE(client.Close().ok());
}

// The PragueClient is lock-step by design, so the only way to race a
// second command against an in-flight RUN on the same connection is to
// speak raw frames.
TEST_F(HeavyServerFixture, CommandsDuringRunAreRejectedExceptCancel) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // The test queues RUN, STATS and CANCEL back to back; Nagle would park
  // the latter two behind the unacknowledged RUN segment.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto round_trip = [&](const WireCommand& cmd) -> Result<std::string> {
    PRAGUE_RETURN_NOT_OK(SendFrame(fd, FrameType::kRequest, FormatCommand(cmd)));
    PRAGUE_ASSIGN_OR_RETURN(WireFrame frame, RecvFrame(fd));
    return std::move(frame.payload);
  };

  WireCommand open;
  open.kind = CommandKind::kOpen;
  Result<std::string> opened = round_trip(open);
  ASSERT_TRUE(opened.ok() && DecodeReplyStatus(*opened).ok());

  const VisualQuerySpec& spec = HeavyAidsQuery();
  const auto& labels = HeavyWireFixture::Get().db.labels();
  std::map<NodeId, uint32_t> handle_of;
  uint32_t next_handle = 1;
  for (EdgeId e : spec.sequence) {
    const Edge& edge = spec.graph.GetEdge(e);
    for (NodeId n : {edge.u, edge.v}) {
      if (!handle_of.count(n)) handle_of[n] = next_handle++;
    }
    WireCommand add;
    add.kind = CommandKind::kAddEdge;
    add.u = handle_of[edge.u];
    add.u_label = labels.Name(spec.graph.NodeLabel(edge.u));
    add.v = handle_of[edge.v];
    add.v_label = labels.Name(spec.graph.NodeLabel(edge.v));
    add.edge_label = edge.label;
    Result<std::string> step = round_trip(add);
    ASSERT_TRUE(step.ok() && DecodeReplyStatus(*step).ok());
  }

  // RUN without reading its reply, then STATS while the run is in flight,
  // then CANCEL to end the run. Replies are ordered per connection, so we
  // must see the STATS rejection first and the (truncated) RUN reply next.
  WireCommand run;
  run.kind = CommandKind::kRun;
  ASSERT_TRUE(SendFrame(fd, FrameType::kRequest, FormatCommand(run)).ok());
  // No sleep needed: the handler marks the run in flight before reading
  // the next frame, so a STATS queued right behind RUN is always rejected.
  WireCommand stats;
  stats.kind = CommandKind::kStats;
  ASSERT_TRUE(SendFrame(fd, FrameType::kRequest, FormatCommand(stats)).ok());
  WireCommand cancel;
  cancel.kind = CommandKind::kCancel;
  ASSERT_TRUE(SendFrame(fd, FrameType::kRequest, FormatCommand(cancel)).ok());

  Result<WireFrame> first = RecvFrame(fd);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Status rejection = DecodeReplyStatus(first->payload);
  ASSERT_FALSE(rejection.ok()) << first->payload;
  EXPECT_EQ(rejection.code(), Status::Code::kFailedPrecondition);

  Result<WireFrame> second = RecvFrame(fd);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  Result<RunReply> reply = ParseRunReply(second->payload);
  ASSERT_TRUE(reply.ok()) << second->payload;
  EXPECT_TRUE(reply->truncated);

  WireCommand close;
  close.kind = CommandKind::kClose;
  Result<std::string> bye = round_trip(close);
  EXPECT_TRUE(bye.ok() && DecodeReplyStatus(*bye).ok());
  ::close(fd);
}

}  // namespace
}  // namespace prague
