// DistVP-like engine (Shang et al., "Connected Substructure Similarity
// Search" [11], restricted version — the paper itself could only run a
// restricted executable).
//
// Behavioural profile reproduced (DESIGN.md documents the substitution):
//  * the index is built *for a fixed σ* and grows steeply with it
//    (Table II shows DVP at 179–919 MB for σ = 1..4 vs 36 MB for PRAGUE):
//    we index frequent-fragment features up to base + σ edges AND, per
//    feature f and per σ' ≤ σ, the σ'-relaxed posting list — the union of
//    FSG ids over every connected variant of f with σ' edges deleted.
//    These uncompressed per-σ' lists are what make the real DistVP index
//    balloon; our restricted filter (mirroring the restricted executable
//    the paper had to use) only exploits the feature part;
//  * the filter targets connected (|q|−σ)-edge subgraphs: a data graph is
//    a candidate iff, for some such subgraph s, the graph contains every
//    indexed feature of s — candidates all require verification (the DVP
//    binary reports |Rver| only).

#ifndef PRAGUE_BASELINES_DISTVP_H_
#define PRAGUE_BASELINES_DISTVP_H_

#include "baselines/feature_index.h"
#include "baselines/traditional.h"
#include "graph/graph_database.h"
#include "mining/gspan.h"

namespace prague {

/// \brief DistVP-like σ-specialized filter.
class DistVpLikeEngine : public TraditionalSimilarityEngine {
 public:
  /// Builds the σ-dependent feature index (base_feature_edges + σ cap).
  DistVpLikeEngine(const std::vector<MinedFragment>& frequent,
                   const GraphDatabase* db, int sigma,
                   size_t base_feature_edges = 4);

  std::string name() const override { return "DVP"; }
  size_t IndexBytes() const override;
  IdSet Filter(const Graph& q, int sigma,
               const Deadline& deadline = Deadline(),
               bool* truncated = nullptr) const override;

  /// \brief The σ this index was built for.
  int built_sigma() const { return sigma_; }
  /// \brief Bytes held by the σ-relaxed posting lists alone.
  size_t RelaxedBytes() const;

 private:
  FeatureIndex index_;
  // relaxed_[f][s] = σ'=(s+1)-relaxed posting list of feature f.
  std::vector<std::vector<IdSet>> relaxed_;
  const GraphDatabase* db_;
  int sigma_;
};

}  // namespace prague

#endif  // PRAGUE_BASELINES_DISTVP_H_
