// Shared helpers for the storage-engine tests: a tiny indexed snapshot,
// deterministic append batches (shared by the crash-torture child and its
// in-memory oracle), and index/snapshot equality assertions.

#ifndef PRAGUE_TESTS_TEST_STORAGE_UTIL_H_
#define PRAGUE_TESTS_TEST_STORAGE_UTIL_H_

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "index/database_snapshot.h"
#include "index/index_maintenance.h"
#include "mining/gspan.h"
#include "test_fixtures.h"

namespace prague::testing {

/// α / β / growth cap shared by every storage test so incremental replays
/// and offline oracles agree on σ.
inline constexpr double kStorageAlpha = 0.34;
inline constexpr size_t kStorageBeta = 2;
inline constexpr size_t kStorageMaxEdges = 6;

inline MaintenanceOptions StorageMaintenanceOptions() {
  MaintenanceOptions options;
  options.alpha = kStorageAlpha;
  options.max_fragment_edges = kStorageMaxEdges;
  options.reclassify = true;
  return options;
}

/// The tiny fixture mined and indexed, as an owning snapshot at version 0.
inline SnapshotPtr MakeTinySnapshot() {
  GraphDatabase db = TinyDatabase();
  MiningConfig mining;
  mining.min_support_ratio = kStorageAlpha;
  mining.max_fragment_edges = kStorageMaxEdges;
  A2fConfig a2f;
  a2f.beta = kStorageBeta;
  Result<MiningResult> mined = MineFragments(db, mining);
  if (!mined.ok()) std::abort();
  ActionAwareIndexes indexes = BuildActionAwareIndexes(*mined, a2f);
  return DatabaseSnapshot::Make(std::move(db), std::move(indexes), 0);
}

/// Deterministic append batch for snapshot version \p v (pure function —
/// the torture child and the parent's oracle must generate identical
/// batches). Cycles through shapes that exercise new labels, σ-crossing
/// support growth, and plain containment updates.
inline std::vector<Graph> BatchForVersion(uint64_t v) {
  std::vector<Graph> batch;
  switch (v % 4) {
    case 0:
      batch.push_back(MakeGraph({kC, kC, kC, kS},
                                {{0, 1}, {1, 2}, {0, 2}, {0, 3}}));
      break;
    case 1:
      batch.push_back(MakeGraph({kN, kC, kN}, {{0, 1}, {1, 2}}));
      batch.push_back(MakeGraph({kC, kS, kC}, {{0, 1}, {1, 2}}));
      break;
    case 2:
      batch.push_back(MakeGraph({kC, kS, kO, kC},
                                {{0, 1}, {1, 2}, {2, 3}, {0, 3}}));
      break;
    default:
      batch.push_back(MakeGraph({kO, kO, kC}, {{0, 1}, {1, 2}}));
      break;
  }
  return batch;
}

/// Per-code image of an A2F index: code → (exact id set, MF membership).
inline std::map<CanonicalCode, std::pair<std::vector<GraphId>, bool>>
A2fByCode(const A2FIndex& a2f) {
  std::map<CanonicalCode, std::pair<std::vector<GraphId>, bool>> out;
  for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
    const A2fVertex& v = a2f.vertex(id);
    out[v.code] = {{v.fsg_ids.begin(), v.fsg_ids.end()}, v.in_mf};
  }
  return out;
}

/// Per-code image of an A2I index: code → exact id set.
inline std::map<CanonicalCode, std::vector<GraphId>> A2iByCode(
    const A2IIndex& a2i) {
  std::map<CanonicalCode, std::vector<GraphId>> out;
  for (A2iId d = 0; d < a2i.EntryCount(); ++d) {
    const A2iEntry& e = a2i.entry(d);
    out[e.code] = {e.fsg_ids.begin(), e.fsg_ids.end()};
  }
  return out;
}

/// Asserts two index pairs carry the same fragment population with
/// bit-identical exact id sets (code-keyed, so vertex numbering may
/// differ — e.g. incremental reclassification vs an offline re-mine).
inline void ExpectIndexesEquivalent(const ActionAwareIndexes& got,
                                    const ActionAwareIndexes& want) {
  EXPECT_EQ(got.min_support, want.min_support);
  EXPECT_EQ(got.a2f.beta(), want.a2f.beta());
  EXPECT_EQ(A2fByCode(got.a2f), A2fByCode(want.a2f));
  EXPECT_EQ(A2iByCode(got.a2i), A2iByCode(want.a2i));
}

/// Asserts \p got is structurally identical to \p want, per vertex id:
/// fragment codes, fsg/del id sets, DAG edges, MF split, and clusters.
/// This is the strict form — valid when both sides were produced by the
/// same construction order (serialization round-trips, WAL replay vs the
/// oracle applying the same appends).
inline void ExpectIndexesIdentical(const ActionAwareIndexes& got,
                                   const ActionAwareIndexes& want) {
  EXPECT_EQ(got.min_support, want.min_support);
  ASSERT_EQ(got.a2f.VertexCount(), want.a2f.VertexCount());
  EXPECT_EQ(got.a2f.MfVertexCount(), want.a2f.MfVertexCount());
  EXPECT_EQ(got.a2f.beta(), want.a2f.beta());
  for (A2fId id = 0; id < want.a2f.VertexCount(); ++id) {
    const A2fVertex& g = got.a2f.vertex(id);
    const A2fVertex& w = want.a2f.vertex(id);
    EXPECT_EQ(g.code, w.code) << "A2F " << id;
    EXPECT_EQ(g.fsg_ids, w.fsg_ids) << "A2F " << id;
    EXPECT_EQ(g.del_ids, w.del_ids) << "A2F " << id;
    EXPECT_EQ(g.parents, w.parents) << "A2F " << id;
    EXPECT_EQ(g.children, w.children) << "A2F " << id;
    EXPECT_EQ(g.in_mf, w.in_mf) << "A2F " << id;
  }
  ASSERT_EQ(got.a2f.clusters().size(), want.a2f.clusters().size());
  for (size_t c = 0; c < want.a2f.clusters().size(); ++c) {
    EXPECT_EQ(got.a2f.clusters()[c].root, want.a2f.clusters()[c].root);
    EXPECT_EQ(got.a2f.clusters()[c].members, want.a2f.clusters()[c].members);
  }
  ASSERT_EQ(got.a2i.EntryCount(), want.a2i.EntryCount());
  for (A2iId d = 0; d < want.a2i.EntryCount(); ++d) {
    EXPECT_EQ(got.a2i.entry(d).code, want.a2i.entry(d).code) << "A2I " << d;
    EXPECT_EQ(got.a2i.entry(d).fsg_ids, want.a2i.entry(d).fsg_ids)
        << "A2I " << d;
  }
}

/// Asserts two snapshots are bit-identical: version, label dictionary,
/// every graph, and both indexes (strict form).
inline void ExpectSnapshotsIdentical(const DatabaseSnapshot& got,
                                     const DatabaseSnapshot& want) {
  EXPECT_EQ(got.version(), want.version());
  EXPECT_EQ(got.labels().names(), want.labels().names());
  ASSERT_EQ(got.db().size(), want.db().size());
  for (GraphId gid = 0; gid < want.db().size(); ++gid) {
    const Graph& g = got.db().graph(gid);
    const Graph& w = want.db().graph(gid);
    ASSERT_EQ(g.NodeCount(), w.NodeCount()) << "g" << gid;
    ASSERT_EQ(g.EdgeCount(), w.EdgeCount()) << "g" << gid;
    for (NodeId n = 0; n < w.NodeCount(); ++n) {
      EXPECT_EQ(g.NodeLabel(n), w.NodeLabel(n)) << "g" << gid << " n" << n;
    }
    for (EdgeId e = 0; e < w.EdgeCount(); ++e) {
      EXPECT_EQ(g.GetEdge(e).u, w.GetEdge(e).u) << "g" << gid << " e" << e;
      EXPECT_EQ(g.GetEdge(e).v, w.GetEdge(e).v) << "g" << gid << " e" << e;
      EXPECT_EQ(g.GetEdge(e).label, w.GetEdge(e).label)
          << "g" << gid << " e" << e;
    }
  }
  ExpectIndexesIdentical(got.indexes(), want.indexes());
}

}  // namespace prague::testing

#endif  // PRAGUE_TESTS_TEST_STORAGE_UTIL_H_
