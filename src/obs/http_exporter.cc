#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace prague::obs {

namespace {

constexpr std::string_view kCrlfCrlf = "\r\n\r\n";

std::string StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.1 200 OK\r\n";
    case 404:
      return "HTTP/1.1 404 Not Found\r\n";
    case 405:
      return "HTTP/1.1 405 Method Not Allowed\r\n";
    case 503:
      return "HTTP/1.1 503 Service Unavailable\r\n";
    default:
      return "HTTP/1.1 400 Bad Request\r\n";
  }
}

std::string MakeResponse(int code, std::string_view content_type,
                         std::string_view body, bool keep_alive) {
  std::string out = StatusLine(code);
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                    : "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// Case-insensitive "Connection: close" scan over the header block.
bool WantsClose(std::string_view headers) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = headers.size();
    std::string_view line = headers.substr(pos, eol - pos);
    if (line.size() >= 11) {
      std::string lower;
      lower.reserve(line.size());
      for (char c : line) {
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
      }
      if (lower.rfind("connection:", 0) == 0 &&
          lower.find("close") != std::string::npos) {
        return true;
      }
    }
    pos = eol + 2;
  }
  return false;
}

}  // namespace

// Per-connection state; owned by the exporter loop thread only (the
// exporter has exactly one thread, so no locking anywhere).
struct HttpExporter::Conn {
  int fd = -1;
  std::string in;
  std::string out;   // unwritten response bytes
  bool want_write = false;
  bool close_after_flush = false;
};

HttpExporter::HttpExporter(HttpExporterOptions options,
                           HttpExporterHooks hooks)
    : options_(options), hooks_(std::move(hooks)) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  requests_total_ = reg.GetCounter("prague_http_requests_total");
  request_errors_total_ = reg.GetCounter("prague_http_request_errors_total");
  scrape_render_us_ = reg.GetHistogram("prague_http_scrape_render_us");
}

HttpExporter::~HttpExporter() { Stop(); }

Status HttpExporter::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("exporter already running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IOError("bind http port " +
                                std::to_string(options_.port) + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status st = Status::IOError(std::string("getsockname: ") +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, options_.backlog) < 0) {
    Status st = Status::IOError(std::string("listen: ") +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status st = Status::IOError(std::string("epoll/eventfd: ") +
                                std::strerror(errno));
    ::close(fd);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  PRAGUE_SLOG(Info)
          .Field("port", static_cast<uint64_t>(port_))
      << "metrics exporter serving /metrics /healthz /readyz /statusz "
         "/tracez";
  return Status::OK();
}

void HttpExporter::Stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

void HttpExporter::Loop() {
  constexpr int kMaxEvents = 32;
  epoll_event events[kMaxEvents];
  std::unordered_map<int, Conn> conns;
  while (!stop_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      PRAGUE_SLOG_EVERY(Warning, 1.0, 4)
              .Field("errno", std::strerror(errno))
          << "exporter epoll_wait failed";
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t mask = events[i].events;
      if (fd == wake_fd_) {
        uint64_t buf;
        while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        HandleAccept(conns);
        continue;
      }
      auto it = conns.find(fd);
      if (it == conns.end()) {
        // Raced a close earlier in this batch; nothing to do.
        epoll_event dummy{};
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &dummy);
        continue;
      }
      bool keep = true;
      if (mask & (EPOLLHUP | EPOLLERR)) {
        keep = false;
      } else {
        if (keep && (mask & EPOLLOUT)) keep = HandleWritable(it->second);
        if (keep && (mask & EPOLLIN)) keep = HandleReadable(it->second);
      }
      if (!keep) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        ::close(fd);
        conns.erase(it);
      }
    }
  }
  for (auto& [fd, conn] : conns) ::close(fd);
}

void HttpExporter::HandleAccept(std::unordered_map<int, Conn>& conns) {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error; epoll will re-fire
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conns.emplace(fd, std::move(conn));
  }
}

bool HttpExporter::HandleReadable(Conn& conn) {
  char buf[8192];
  for (;;) {
    ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      if (conn.in.size() > options_.max_request_bytes) {
        request_errors_total_->Increment();
        return false;
      }
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  return ServeBuffered(conn);
}

bool HttpExporter::ServeBuffered(Conn& conn) {
  for (;;) {
    size_t end = conn.in.find(kCrlfCrlf);
    if (end == std::string::npos) break;  // request incomplete
    std::string_view head(conn.in.data(), end);
    size_t line_end = head.find("\r\n");
    std::string_view request_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    std::string_view headers =
        line_end == std::string_view::npos ? std::string_view()
                                           : head.substr(line_end + 2);

    // "GET /path HTTP/1.1"
    size_t sp1 = request_line.find(' ');
    size_t sp2 = sp1 == std::string_view::npos
                     ? std::string_view::npos
                     : request_line.find(' ', sp1 + 1);
    std::string method(sp1 == std::string_view::npos
                           ? request_line
                           : request_line.substr(0, sp1));
    std::string target(sp2 == std::string_view::npos
                           ? std::string_view()
                           : request_line.substr(sp1 + 1, sp2 - sp1 - 1));
    std::string version(sp2 == std::string_view::npos
                            ? std::string_view()
                            : request_line.substr(sp2 + 1));
    // Drop query strings; the endpoints take no parameters.
    if (size_t q = target.find('?'); q != std::string::npos) {
      target.resize(q);
    }
    const bool keep_alive =
        version == "HTTP/1.1" && !WantsClose(headers);

    requests_served_.fetch_add(1, std::memory_order_relaxed);
    requests_total_->Increment();
    std::string response;
    if (method != "GET") {
      request_errors_total_->Increment();
      response = MakeResponse(405, "text/plain; charset=utf-8",
                              "only GET is supported\n", keep_alive);
    } else {
      response = BuildResponse(target, keep_alive);
    }
    conn.in.erase(0, end + kCrlfCrlf.size());
    conn.out += response;
    if (!keep_alive) {
      conn.close_after_flush = true;
      conn.in.clear();
      break;
    }
  }
  return FlushOut(conn);
}

std::string HttpExporter::BuildResponse(const std::string& path,
                                        bool keep_alive) {
  if (path == "/metrics") {
    Stopwatch timer;
    RegistrySnapshot snap = MetricsRegistry::Global().Snapshot();
    std::string body = RenderPrometheusText(snap);
    scrape_render_us_->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
    return MakeResponse(200, "text/plain; version=0.0.4; charset=utf-8",
                        body, keep_alive);
  }
  if (path == "/healthz") {
    return MakeResponse(200, "text/plain; charset=utf-8", "ok\n",
                        keep_alive);
  }
  if (path == "/readyz") {
    const bool ready = !hooks_.ready || hooks_.ready();
    return ready ? MakeResponse(200, "text/plain; charset=utf-8", "ready\n",
                                keep_alive)
                 : MakeResponse(503, "text/plain; charset=utf-8",
                                "unavailable\n", keep_alive);
  }
  if (path == "/statusz") {
    std::string body =
        hooks_.statusz_json ? hooks_.statusz_json() : std::string("{}");
    body += '\n';
    return MakeResponse(200, "application/json", body, keep_alive);
  }
  if (path == "/tracez") {
    std::string body = "{\"traces\":[";
    if (hooks_.traces) {
      std::vector<RunTrace> traces = hooks_.traces();
      for (size_t i = 0; i < traces.size(); ++i) {
        if (i) body += ',';
        body += traces[i].ToJson();
      }
    }
    body += "]}\n";
    return MakeResponse(200, "application/json", body, keep_alive);
  }
  request_errors_total_->Increment();
  return MakeResponse(404, "text/plain; charset=utf-8",
                      "not found; try /metrics /healthz /readyz /statusz "
                      "/tracez\n",
                      keep_alive);
}

bool HttpExporter::FlushOut(Conn& conn) {
  while (!conn.out.empty()) {
    ssize_t n = ::send(conn.fd, conn.out.data(), conn.out.size(),
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      conn.out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        UpdateEpollOut(conn);
      }
      return true;  // wait for EPOLLOUT
    }
    return false;  // peer is gone
  }
  if (conn.want_write) {
    conn.want_write = false;
    UpdateEpollOut(conn);
  }
  return !conn.close_after_flush;
}

bool HttpExporter::HandleWritable(Conn& conn) { return FlushOut(conn); }

void HttpExporter::UpdateEpollOut(Conn& conn) {
  epoll_event ev{};
  ev.events = conn.want_write ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

}  // namespace prague::obs
