// SessionManager — the concurrency layer PRAGUE's premise implies: many
// users formulating queries simultaneously against one shared indexed
// database.
//
// The manager holds the *current* DatabaseSnapshot. Open() pins whatever
// snapshot is current at that moment into a new ManagedSession; the
// session keeps querying that version for its whole life, no matter how
// many successors are published meanwhile. Append() builds a successor
// copy-on-write (index_maintenance.h) and Publish()es it with an atomic
// swap of the current pointer, so readers are never paused and writers
// never wait for readers. A retired snapshot frees itself when the last
// session pinning it drops — plain shared_ptr reference counting.
//
// Locking model:
//  - mu_ guards the current pointer and the session registry (short
//    critical sections only — pointer swaps and map updates).
//  - writer_mu_ serializes Append() calls so concurrent appends cannot
//    both build successors of the same base and lose one.
//  - Each ManagedSession carries its own mutex; With() is the only way to
//    reach the PragueSession inside, so one session is never driven from
//    two threads at once while distinct sessions proceed in parallel.

#ifndef PRAGUE_CORE_SESSION_MANAGER_H_
#define PRAGUE_CORE_SESSION_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/admission.h"
#include "core/prague_session.h"
#include "index/database_snapshot.h"
#include "index/index_maintenance.h"
#include "storage/storage_engine.h"
#include "util/result.h"

namespace prague {

/// \brief A PragueSession plus the mutex that makes it safe to drive from
/// the manager's multi-threaded callers. Created by SessionManager::Open.
class ManagedSession {
 public:
  /// \brief Runs \p fn with exclusive access to the underlying session.
  /// All interaction with the session goes through here.
  template <typename Fn>
  auto With(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    return std::forward<Fn>(fn)(session_);
  }

  /// \brief Requests cancellation of whatever the session is doing.
  /// Deliberately does NOT take mu_: the whole point is to stop a Run()
  /// already executing inside another thread's With(). The token is
  /// checked cooperatively, so the running call returns promptly with a
  /// truncated result (or Status::DeadlineExceeded for formulation
  /// steps) rather than being interrupted mid-write.
  void Cancel() { token_.RequestStop(); }
  /// \brief Re-arms the session after a Cancel() so later calls run
  /// normally. Call between With() uses, not concurrently with one.
  void ResetCancellation() { token_.Reset(); }
  /// \brief Whether Cancel() has been requested since the last reset.
  bool cancelled() const { return token_.StopRequested(); }

  ~ManagedSession() { obs::EngineMetrics::Get().sessions_open->Add(-1); }

  /// \brief Manager-assigned session id (monotone per manager).
  uint64_t id() const { return id_; }
  /// \brief Version of the snapshot this session pinned at Open() time.
  uint64_t version() const { return snap_->version(); }
  /// \brief The pinned snapshot.
  const SnapshotPtr& snapshot() const { return snap_; }

 private:
  friend class SessionManager;
  ManagedSession(uint64_t id, SnapshotPtr snap,
                 std::shared_ptr<obs::RunTally> tally,
                 std::shared_ptr<obs::TraceRing> traces,
                 const PragueConfig& config)
      : id_(id), snap_(std::move(snap)), tally_(std::move(tally)),
        traces_(std::move(traces)),
        session_(snap_, WireConfig(config, &token_, id_, tally_.get(),
                                   traces_.get())) {
    obs::EngineMetrics& em = obs::EngineMetrics::Get();
    em.sessions_opened_total->Increment();
    em.sessions_open->Add(1);
  }

  // The session keeps pointers to token_/tally_/traces_, so those must be
  // declared before session_ (construction order) and the config must be
  // rewired to point at this instance's members rather than whatever the
  // caller had. Shared ownership of the tally and trace ring lets a
  // session outlive its manager safely.
  static PragueConfig WireConfig(PragueConfig config,
                                 const CancellationToken* token, uint64_t id,
                                 obs::RunTally* tally,
                                 obs::TraceRing* traces) {
    config.cancellation = token;
    config.session_tag = id;
    config.run_tally = tally;
    config.trace_ring = traces;
    return config;
  }

  uint64_t id_;
  SnapshotPtr snap_;
  std::shared_ptr<obs::RunTally> tally_;
  std::shared_ptr<obs::TraceRing> traces_;
  std::mutex mu_;
  CancellationToken token_;
  PragueSession session_;
};

/// \brief One live session as reported by Stats(): the manager-assigned
/// id and the snapshot version it pinned at Open() time.
struct OpenSessionInfo {
  uint64_t id = 0;
  uint64_t version = 0;

  bool operator==(const OpenSessionInfo&) const = default;
};

/// \brief Point-in-time view of the manager (Stats()).
struct SessionManagerStats {
  uint64_t current_version = 0;
  /// Shards of the manager's partitioned view of the current snapshot
  /// (1 = sharded execution disabled). Served over the wire by STATS.
  size_t shards = 1;
  size_t open_sessions = 0;
  uint64_t sessions_opened = 0;
  uint64_t snapshots_published = 0;
  /// Run() calls completed across all sessions this manager ever opened
  /// (closed sessions included — the shared RunTally outlives them).
  uint64_t runs_served = 0;
  /// Of those, runs cut short by a deadline or cancellation.
  uint64_t runs_truncated = 0;
  /// Runs shed by admission control (BUSY on the wire) instead of queued.
  uint64_t runs_shed = 0;
  /// Tenants (connection groups) the admission controller is tracking.
  size_t tenants = 0;
  /// True when a StorageEngine is attached (durable mode).
  bool durable = false;
  /// WAL bytes accumulated since the last checkpoint (0 when not durable).
  uint64_t wal_bytes = 0;
  /// Snapshot version of the live segment (0 when not durable).
  uint64_t last_checkpoint_version = 0;
  /// Live sessions grouped by the version they pinned — shows how many
  /// readers each retained snapshot is still serving.
  std::map<uint64_t, size_t> sessions_by_version;
  /// Every live session individually (ascending id) — what an operator
  /// needs to see which session is holding an old snapshot alive. Also
  /// served over the wire by the STATS command (src/server/wire.h).
  std::vector<OpenSessionInfo> open_session_infos;
};

/// \brief Opens concurrent sessions over a shared, versioned database.
class SessionManager {
 public:
  /// \brief Starts with \p initial as the current snapshot. \p
  /// default_config is used by the zero-argument Open(). A default config
  /// with shards > 1 turns on shared sharded execution: the manager keeps
  /// one partitioned view of the current snapshot plus one shard pool and
  /// wires both into every session it opens, so N sessions don't build N
  /// views or N pools.
  explicit SessionManager(SnapshotPtr initial,
                          PragueConfig default_config = PragueConfig());

  /// \brief Opens a session pinned to the snapshot current right now.
  std::shared_ptr<ManagedSession> Open() { return Open(DefaultConfig()); }
  /// \brief Opens a session with an explicit config.
  std::shared_ptr<ManagedSession> Open(const PragueConfig& config);
  /// \brief Opens a session with the default config but an explicit Run()
  /// budget (overrides the manager-wide default for this session only).
  std::shared_ptr<ManagedSession> OpenWithDeadline(int64_t run_deadline_ms);

  /// \brief Sets the default Run() budget (milliseconds, 0 = unbounded)
  /// applied to sessions opened after this call via Open() /
  /// OpenWithDeadline(). Already-open sessions are unaffected.
  void SetDefaultRunDeadlineMillis(int64_t ms);
  /// \brief The current manager-wide default Run() budget.
  int64_t DefaultRunDeadlineMillis() const;

  /// \brief The snapshot new sessions would pin right now.
  SnapshotPtr current() const;

  /// \brief Atomically swaps the current snapshot to \p next. Rejects
  /// stale publishes (next->version() must exceed the current version).
  /// In-flight sessions are unaffected.
  Status Publish(SnapshotPtr next);

  /// \brief Copy-on-write append: builds a successor of the current
  /// snapshot with \p graphs added and publishes it. Serialized against
  /// concurrent Append() calls; never blocks Open() or running sessions
  /// for the duration of the index update. See index_maintenance.h for
  /// \p graph_labels.
  ///
  /// With a StorageEngine attached the append is log-then-publish: the
  /// WAL record is fsync-durable before the successor becomes visible, so
  /// a crash never loses an acknowledged append (a record written but not
  /// yet published simply replays on recovery).
  Result<MaintenanceReport> Append(std::vector<Graph> graphs,
                                   const MaintenanceOptions& options,
                                   const LabelDictionary* graph_labels =
                                       nullptr);

  /// \brief Detection-only convenience overload (no reclassification).
  Result<MaintenanceReport> Append(std::vector<Graph> graphs, double alpha,
                                   const LabelDictionary* graph_labels =
                                       nullptr);

  /// \brief Makes this manager durable: appends log to \p engine's WAL
  /// before publishing. Call once, before serving (typically with the
  /// snapshot recovered from the same engine as \p initial).
  void AttachStorage(std::shared_ptr<storage::StorageEngine> engine);
  /// \brief The attached engine, or null when running in-memory.
  const std::shared_ptr<storage::StorageEngine>& storage() const {
    return storage_;
  }

  /// \brief Checkpoints the current snapshot into the attached engine
  /// (new segment, truncated WAL). InvalidArgument when no engine is
  /// attached. Serialized against Append().
  Status Checkpoint();

  /// \brief Counters plus live sessions grouped by pinned version.
  SessionManagerStats Stats() const;

  /// \brief Sets the per-tenant admission limits (see core/admission.h).
  /// Default-constructed options admit everything. Safe to call while
  /// serving; new limits apply from the next decision.
  void ConfigureAdmission(const AdmissionOptions& options) {
    admission_.Configure(options);
  }
  /// \brief The admission controller the serving path consults before a
  /// run body reaches any pool. Always present; unlimited unless
  /// ConfigureAdmission was called.
  AdmissionController& admission() { return admission_; }

  /// \brief Recent RunTraces across all of this manager's sessions
  /// (bounded ring; see obs/trace.h).
  const obs::TraceRing& traces() const { return *trace_ring_; }
  /// \brief Mutable ring, for embedders that add synthetic traces (the
  /// stall watchdog's incident records land here).
  obs::TraceRing& mutable_traces() { return *trace_ring_; }

 private:
  // Snapshot of default_config_ under mu_ (it is mutable via
  // SetDefaultRunDeadlineMillis).
  PragueConfig DefaultConfig() const;
  // Publish with the sharded-view maintenance folded in. cow_successor
  // distinguishes Append()'s output (interior shards provably unchanged —
  // the cheap ShardedSnapshot::Append applies) from an arbitrary
  // Publish()ed snapshot (full re-partition).
  Status PublishInternal(SnapshotPtr next, bool cow_successor);

  PragueConfig default_config_;

  // Guards current_, sessions_, default_config_, and sharded_.
  mutable std::mutex mu_;
  SnapshotPtr current_;
  // Partitioned view of current_ (null when sharding is off); rebuilt or
  // COW-extended by PublishInternal. Sessions pin the view matching their
  // pinned snapshot via shared_ptr, so republishing never disturbs them.
  ShardedSnapshot::Ptr sharded_;
  // One pool shared by every session's shard tasks (each run waits only on
  // its own TaskGroup). shared_ptr: sessions may outlive the manager.
  std::shared_ptr<ThreadPool> shard_pool_;
  // Registry of open sessions for Stats(); weak so a dropped session
  // releases its snapshot pin immediately. Dead entries are pruned lazily.
  std::unordered_map<uint64_t, std::weak_ptr<ManagedSession>> sessions_;
  uint64_t next_session_id_ = 1;
  uint64_t sessions_opened_ = 0;
  uint64_t snapshots_published_ = 0;
  // Shared with every ManagedSession (shared_ptr) so per-run accounting
  // and traces survive both session teardown and manager teardown.
  std::shared_ptr<obs::RunTally> run_tally_ =
      std::make_shared<obs::RunTally>();
  std::shared_ptr<obs::TraceRing> trace_ring_ =
      std::make_shared<obs::TraceRing>();
  // Per-tenant quotas and rate limits; internally synchronized, so it sits
  // outside mu_ and a shed decision never contends with Open()/Publish().
  AdmissionController admission_;

  // Durable mode. Set once by AttachStorage before serving; the engine is
  // internally synchronized, and writer_mu_ already serializes the
  // log-then-publish sequence. last_append_alpha_ (guarded by writer_mu_)
  // is the α recorded in the manifest at the next Checkpoint().
  std::shared_ptr<storage::StorageEngine> storage_;
  double last_append_alpha_ = 0.1;

  std::mutex writer_mu_;  // serializes Append() and Checkpoint()
};

}  // namespace prague

#endif  // PRAGUE_CORE_SESSION_MANAGER_H_
