// IdSet: a sorted, duplicate-free set of 32-bit graph identifiers with the
// set algebra the candidate machinery needs (intersection, union,
// difference). Backed by a flat sorted vector: candidate sets are built
// once and scanned many times, so cache-friendly storage beats node-based
// sets by a wide margin.
//
// Intersections switch from the linear merge to a galloping (exponential-
// search) scan of the larger side when the size ratio crosses
// kGallopRatio, and the in-place operations build their result in a
// per-thread scratch buffer that is swapped into place, so steady-state
// candidate algebra performs no allocation.

#ifndef PRAGUE_UTIL_ID_SET_H_
#define PRAGUE_UTIL_ID_SET_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace prague {

/// Identifier of a data graph within a GraphDatabase.
using GraphId = uint32_t;

/// \brief Sorted, duplicate-free set of GraphIds.
class IdSet {
 public:
  using const_iterator = std::vector<GraphId>::const_iterator;

  IdSet() = default;
  /// \brief Builds from arbitrary ids; sorts and de-duplicates.
  explicit IdSet(std::vector<GraphId> ids);
  IdSet(std::initializer_list<GraphId> ids);

  /// \brief The universe {0, 1, ..., n-1}.
  static IdSet Universe(GraphId n);

  /// Size ratio (larger/smaller) above which intersections gallop through
  /// the larger side instead of merging linearly. Galloping is
  /// O(|small| · log(|large|/|small|)), which wins once the sides are
  /// lopsided — the common case when a tiny NIF Φ set filters a huge
  /// frequent-fragment FSG set.
  static constexpr size_t kGallopRatio = 16;

  /// \brief Intersection of all \p sets, visiting them smallest-first and
  /// stopping as soon as the running result empties. Null entries are
  /// skipped; no sets (or only null entries) yields the empty set.
  static IdSet IntersectMany(std::vector<const IdSet*> sets);

  /// \brief Number of ids in the set.
  size_t size() const { return ids_.size(); }
  /// \brief True iff the set is empty.
  bool empty() const { return ids_.empty(); }
  /// \brief Membership test (binary search).
  bool Contains(GraphId id) const;

  /// \brief Inserts one id, keeping order (O(n) worst case).
  void Insert(GraphId id);
  /// \brief Removes one id if present.
  void Erase(GraphId id);
  /// \brief Removes all ids.
  void Clear() { ids_.clear(); }

  /// \brief Set intersection.
  IdSet Intersect(const IdSet& other) const;
  /// \brief Set union.
  IdSet Union(const IdSet& other) const;
  /// \brief Set difference (this \ other).
  IdSet Subtract(const IdSet& other) const;

  /// \brief In-place intersection (this ∩= other).
  void IntersectWith(const IdSet& other);
  /// \brief In-place union (this ∪= other).
  void UnionWith(const IdSet& other);
  /// \brief In-place difference (this \= other).
  void SubtractWith(const IdSet& other);

  /// \brief True iff this ⊆ other.
  bool IsSubsetOf(const IdSet& other) const;

  const_iterator begin() const { return ids_.begin(); }
  const_iterator end() const { return ids_.end(); }

  /// \brief Read-only view of the underlying sorted vector.
  const std::vector<GraphId>& ids() const { return ids_; }

  /// \brief Approximate heap footprint in bytes (for index sizing).
  size_t ByteSize() const { return ids_.capacity() * sizeof(GraphId); }

  /// \brief Renders "{1, 2, 5}" for diagnostics.
  std::string ToString() const;

  bool operator==(const IdSet& other) const { return ids_ == other.ids_; }
  bool operator!=(const IdSet& other) const { return ids_ != other.ids_; }

 private:
  std::vector<GraphId> ids_;
};

}  // namespace prague

#endif  // PRAGUE_UTIL_ID_SET_H_
