#include "core/visual_query.h"

#include <algorithm>
#include <cassert>

namespace prague {

NodeId VisualQuery::AddNode(Label label) {
  node_labels_.push_back(label);
  return static_cast<NodeId>(node_labels_.size() - 1);
}

Result<FormulationId> VisualQuery::AddEdge(NodeId u, NodeId v, Label label) {
  if (u >= node_labels_.size() || v >= node_labels_.size()) {
    return Status::InvalidArgument("edge endpoint node does not exist");
  }
  if (u == v) return Status::InvalidArgument("self-loops are not supported");
  if (alive_count_ >= kMaxVisualQueryEdges) {
    return Status::FailedPrecondition("visual query edge cap reached");
  }
  if (next_ell_ > kMaxFormulationId) {
    return Status::FailedPrecondition("formulation id space exhausted");
  }
  bool u_covered = false;
  bool v_covered = false;
  for (const VisualEdge& e : edges_) {
    if (!e.alive) continue;
    if (e.u == u && e.v == v) {
      return Status::InvalidArgument("duplicate edge");
    }
    if (e.u == v && e.v == u) {
      return Status::InvalidArgument("duplicate edge");
    }
    u_covered = u_covered || e.u == u || e.v == u;
    v_covered = v_covered || e.u == v || e.v == v;
  }
  if (alive_count_ > 0 && !u_covered && !v_covered) {
    return Status::InvalidArgument(
        "edge would disconnect the query fragment");
  }
  VisualEdge edge;
  edge.u = u;
  edge.v = v;
  edge.label = label;
  edge.ell = next_ell_++;
  edges_.push_back(edge);
  ++alive_count_;
  dirty_ = true;
  return edge.ell;
}

bool VisualQuery::CanDelete(FormulationId ell) const {
  if (ell < 1 || static_cast<size_t>(ell) > edges_.size()) return false;
  const VisualEdge& target = edges_[ell - 1];
  if (!target.alive) return false;
  if (alive_count_ == 1) return false;  // fragment must stay non-empty
  // Union-find over remaining alive edges.
  std::vector<NodeId> root(node_labels_.size());
  for (NodeId i = 0; i < root.size(); ++i) root[i] = i;
  auto find = [&](NodeId n) {
    while (root[n] != n) n = root[n] = root[root[n]];
    return n;
  };
  size_t remaining = 0;
  std::vector<bool> touched(node_labels_.size(), false);
  for (const VisualEdge& e : edges_) {
    if (!e.alive || e.ell == ell) continue;
    ++remaining;
    touched[e.u] = touched[e.v] = true;
    root[find(e.u)] = find(e.v);
  }
  if (remaining == 0) return false;
  NodeId rep = kInvalidNode;
  for (NodeId n = 0; n < node_labels_.size(); ++n) {
    if (!touched[n]) continue;
    if (rep == kInvalidNode) rep = find(n);
    if (find(n) != find(rep)) return false;
  }
  return true;
}

Status VisualQuery::DeleteEdge(FormulationId ell) {
  if (ell < 1 || static_cast<size_t>(ell) > edges_.size() ||
      !edges_[ell - 1].alive) {
    return Status::NotFound("edge not alive: e" + std::to_string(ell));
  }
  if (!CanDelete(ell)) {
    return Status::FailedPrecondition(
        "deleting e" + std::to_string(ell) +
        " would disconnect or empty the query fragment");
  }
  edges_[ell - 1].alive = false;
  --alive_count_;
  dirty_ = true;
  return Status::OK();
}

Status VisualQuery::RelabelNode(NodeId user_node, Label new_label) {
  if (user_node >= node_labels_.size()) {
    return Status::NotFound("node does not exist");
  }
  if (node_labels_[user_node] == new_label) return Status::OK();
  node_labels_[user_node] = new_label;
  dirty_ = true;
  return Status::OK();
}

FormulationMask VisualQuery::IncidentEdgeMask(NodeId user_node) const {
  FormulationMask out = 0;
  for (const VisualEdge& e : edges_) {
    if (e.alive && (e.u == user_node || e.v == user_node)) {
      out |= FormulationBit(e.ell);
    }
  }
  return out;
}

std::vector<FormulationId> VisualQuery::AliveEdgeIds() const {
  std::vector<FormulationId> out;
  out.reserve(alive_count_);
  for (const VisualEdge& e : edges_) {
    if (e.alive) out.push_back(e.ell);
  }
  return out;
}

std::optional<VisualEdge> VisualQuery::GetEdge(FormulationId ell) const {
  if (ell < 1 || static_cast<size_t>(ell) > edges_.size()) return std::nullopt;
  const VisualEdge& e = edges_[ell - 1];
  if (!e.alive) return std::nullopt;
  return e;
}

FormulationMask VisualQuery::FullMask() const {
  FormulationMask mask = 0;
  for (const VisualEdge& e : edges_) {
    if (e.alive) mask |= FormulationBit(e.ell);
  }
  return mask;
}

void VisualQuery::Recompile() const {
  if (alive_count_ == 0) {
    compiled_ = Graph();
    edge_to_ell_.clear();
    ell_to_edge_.assign(edges_.size(), kInvalidEdge);
    user_to_graph_.assign(node_labels_.size(), kInvalidNode);
    dirty_ = false;
    return;
  }
  GraphBuilder builder;
  user_to_graph_.assign(node_labels_.size(), kInvalidNode);
  edge_to_ell_.clear();
  ell_to_edge_.assign(edges_.size(), kInvalidEdge);
  for (const VisualEdge& e : edges_) {
    if (!e.alive) continue;
    for (NodeId endpoint : {e.u, e.v}) {
      if (user_to_graph_[endpoint] == kInvalidNode) {
        user_to_graph_[endpoint] = builder.AddNode(node_labels_[endpoint]);
      }
    }
    Result<EdgeId> r = builder.AddEdge(user_to_graph_[e.u],
                                       user_to_graph_[e.v], e.label);
    assert(r.ok());
    ell_to_edge_[e.ell - 1] = *r;
    edge_to_ell_.push_back(e.ell);
  }
  compiled_ = std::move(builder).Build();
  dirty_ = false;
}

const Graph& VisualQuery::CurrentGraph() const {
  if (dirty_) Recompile();
  return compiled_;
}

FormulationId VisualQuery::FormulationIdOfGraphEdge(EdgeId e) const {
  if (dirty_) Recompile();
  return edge_to_ell_[e];
}

std::optional<EdgeId> VisualQuery::GraphEdgeOfFormulationId(
    FormulationId ell) const {
  if (dirty_) Recompile();
  if (ell < 1 || static_cast<size_t>(ell) > ell_to_edge_.size() ||
      ell_to_edge_[ell - 1] == kInvalidEdge) {
    return std::nullopt;
  }
  return ell_to_edge_[ell - 1];
}

FormulationMask VisualQuery::ToFormulationMask(EdgeMask graph_mask) const {
  if (dirty_) Recompile();
  FormulationMask out = 0;
  for (EdgeId e = 0; e < edge_to_ell_.size(); ++e) {
    if (graph_mask & EdgeBit(e)) out |= FormulationBit(edge_to_ell_[e]);
  }
  return out;
}

EdgeMask VisualQuery::ToGraphMask(FormulationMask formulation_mask) const {
  if (dirty_) Recompile();
  EdgeMask out = 0;
  for (EdgeId e = 0; e < edge_to_ell_.size(); ++e) {
    if (formulation_mask & FormulationBit(edge_to_ell_[e])) out |= EdgeBit(e);
  }
  return out;
}

}  // namespace prague
