// Deterministic random number generation. Everything that produces data in
// this library (dataset generators, query workloads) takes an explicit seed
// so experiments are exactly reproducible run-to-run.

#ifndef PRAGUE_UTIL_RNG_H_
#define PRAGUE_UTIL_RNG_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace prague {

/// \brief Deterministic 64-bit PRNG (splitmix64 core).
///
/// Small, fast, and reproducible across platforms/standard libraries —
/// unlike std::mt19937 + distributions, whose outputs are not pinned by the
/// standard for all distribution types.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// \brief Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// \brief Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// \brief Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Between(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// \brief Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// \brief Samples an index according to the given non-negative weights.
  size_t Weighted(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    assert(total > 0);
    double x = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0) return i;
    }
    return weights.size() - 1;
  }

  /// \brief Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Below(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace prague

#endif  // PRAGUE_UTIL_RNG_H_
