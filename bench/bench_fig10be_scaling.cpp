// Figures 10(b)-(e) reproduction: similarity SRT and candidate size vs
// synthetic dataset size, for Q6 and Q8 (the paper reports Q5/Q7 as
// similar), σ = 3.
//
// Paper shape: PRG has the lowest SRT and the smallest candidate sets
// across all dataset sizes, and scales gracefully.

#include <cstdio>

#include "bench_common.h"
#include "core/candidates.h"

using namespace prague;
using namespace prague::bench;

int main() {
  Banner("Figures 10(b)-(e): SRT (s) and candidates vs dataset size",
         "synthetic datasets, sigma=3, queries Q6 and Q8");
  std::vector<size_t> sizes = SyntheticSizes();
  std::vector<VisualQuerySpec> queries;

  struct Row {
    std::string query;
    size_t size;
    double prg_srt, sg_srt, gr_srt;
    size_t prg_cand, sg_cand, gr_cand;
  };
  std::vector<Row> rows;

  for (size_t n : sizes) {
    Workbench bench = BuildSyntheticWorkbench(n);
    if (queries.empty()) queries = SyntheticQueries(bench);
    FeatureIndex features = bench.BuildFeatureIndex(4);
    GrafilLikeEngine gr(&features, &bench.db);
    SigmaLikeEngine sg(&features, &bench.db);
    SimulationConfig config;
    config.prague.sigma = 3;
    SessionSimulator simulator(bench.snapshot, config);
    for (size_t qi : {size_t{1}, size_t{3}}) {  // Q6 and Q8
      const VisualQuerySpec& spec = queries[qi];
      Result<SimulationResult> prg = simulator.RunPrague(spec);
      if (!prg.ok()) {
        std::fprintf(stderr, "PRG failed: %s\n",
                     prg.status().ToString().c_str());
        return 1;
      }
      SimilaritySearchOutcome sg_out = sg.Evaluate(spec.graph, 3, bench.db);
      SimilaritySearchOutcome gr_out = gr.Evaluate(spec.graph, 3, bench.db);
      rows.push_back(Row{spec.name, n, prg->srt_seconds, sg_out.srt_seconds,
                         gr_out.srt_seconds, prg->final_candidates,
                         sg_out.candidates.size(), gr_out.candidates.size()});
    }
    std::fprintf(stderr, "|D|=%zu done (mining %.1fs)\n", n,
                 bench.mining_seconds);
  }

  for (const char* qname : {"Q6", "Q8"}) {
    std::printf("--- %s ---\n", qname);
    TablePrinter table({"|D|", "PRG SRT", "SG SRT", "GR SRT", "PRG cand",
                        "SG cand", "GR cand"});
    for (const Row& r : rows) {
      if (r.query != qname) continue;
      table.AddRow({std::to_string(r.size), Fmt(r.prg_srt, 3),
                    Fmt(r.sg_srt, 3), Fmt(r.gr_srt, 3),
                    std::to_string(r.prg_cand), std::to_string(r.sg_cand),
                    std::to_string(r.gr_cand)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "paper shape check: PRG lowest SRT and fewest candidates at every "
      "size; growth is graceful.\n");
  return 0;
}
