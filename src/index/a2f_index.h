// Action-aware frequent index (A2F), Section III.
//
// The A2F indexes every frequent fragment as a vertex of a DAG whose edges
// connect each fragment to its one-edge-larger frequent supergraphs.
// Fragments of size ≤ β live in the memory-based MF-index; larger ones are
// grouped into fragment clusters forming the disk-based DF-index, reachable
// from MF leaf vertices (size == β) through their cluster lists.
//
// Storage compression: because f' ⊂ f implies fsgIds(f) ⊆ fsgIds(f'), each
// vertex stores only delId(f) = fsgIds(f) \ ∪_children fsgIds(child); the
// full set is the union of delIds over the vertex's supergraph closure.
// At runtime this implementation keeps the reconstructed full sets hot
// (queries during GUI latency need them constantly) and reports the
// compressed footprint via StorageBytes() — that is the number the paper's
// Table II / Figure 10(a) measure.

#ifndef PRAGUE_INDEX_A2F_INDEX_H_
#define PRAGUE_INDEX_A2F_INDEX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/canonical.h"
#include "graph/graph.h"
#include "mining/gspan.h"
#include "util/id_set.h"

namespace prague {

namespace storage {
class SegmentIO;
}  // namespace storage

/// Identifier of a vertex in the A2F index (the paper's a2fId).
using A2fId = uint32_t;

/// \brief Index build parameters.
struct A2fConfig {
  /// β — fragment size threshold splitting MF-index from DF-index.
  size_t beta = 8;
};

/// \brief One A2F vertex: a frequent fragment plus its DAG links.
struct A2fVertex {
  Graph fragment;
  CanonicalCode code;
  IdSet fsg_ids;           ///< full FSG id set (runtime, reconstructed)
  IdSet del_ids;           ///< delId(f) — the stored, compressed set
  std::vector<A2fId> parents;   ///< frequent subgraphs one edge smaller
  std::vector<A2fId> children;  ///< frequent supergraphs one edge larger
  bool in_mf = false;           ///< MF-index (size ≤ β) vs DF-index

  size_t size() const { return fragment.EdgeCount(); }
};

/// \brief One DF-index fragment cluster: a root (size β+1) and the larger
/// fragments assigned to it.
struct FragmentCluster {
  A2fId root;
  std::vector<A2fId> members;  ///< includes the root
};

/// \brief The action-aware frequent index.
class A2FIndex {
 public:
  A2FIndex() = default;

  /// \brief Builds from mined frequent fragments.
  static A2FIndex Build(const std::vector<MinedFragment>& frequent,
                        const A2fConfig& config);

  /// \brief a2fId of the fragment with this canonical code, if indexed.
  std::optional<A2fId> Lookup(const CanonicalCode& code) const;

  /// \brief Full FSG id set of an indexed fragment.
  const IdSet& FsgIds(A2fId id) const { return vertices_[id].fsg_ids; }
  /// \brief Vertex by id.
  const A2fVertex& vertex(A2fId id) const { return vertices_[id]; }
  /// \brief Number of indexed fragments.
  size_t VertexCount() const { return vertices_.size(); }
  /// \brief All vertices.
  const std::vector<A2fVertex>& vertices() const { return vertices_; }

  /// \brief MF-index population (size ≤ β).
  size_t MfVertexCount() const { return mf_count_; }
  /// \brief DF-index population (size > β).
  size_t DfVertexCount() const { return vertices_.size() - mf_count_; }
  /// \brief DF-index clusters.
  const std::vector<FragmentCluster>& clusters() const { return clusters_; }
  /// \brief Cluster ids reachable from an MF leaf (size == β) vertex.
  const std::vector<uint32_t>& ClusterList(A2fId leaf) const;

  /// \brief β used at build time.
  size_t beta() const { return beta_; }

  /// \brief Compressed (delId-based) storage footprint in bytes — the
  /// Table II metric.
  size_t StorageBytes() const;
  /// \brief Uncompressed footprint (full fsgIds per vertex), for the
  /// compression-ablation benchmark.
  size_t UncompressedBytes() const;

  /// \brief Recomputes every fsgIds from delIds alone (exercised by tests
  /// and the load path). Returns false if the DAG is inconsistent.
  bool ReconstructFromDelIds();

  /// \brief Maintenance hook (index_maintenance.h): records that data
  /// graph \p gid contains fragment \p id. Call RecomputeDelIds() after a
  /// batch of these.
  void AddFsgId(A2fId id, GraphId gid) { vertices_[id].fsg_ids.Insert(gid); }
  /// \brief Maintenance hook: rebuilds every delId from current fsgIds.
  void RecomputeDelIds();

 private:
  std::vector<A2fVertex> vertices_;
  std::unordered_map<CanonicalCode, A2fId> by_code_;
  std::vector<FragmentCluster> clusters_;
  std::unordered_map<A2fId, std::vector<uint32_t>> leaf_clusters_;
  size_t mf_count_ = 0;
  size_t beta_ = 8;

  friend class IndexSerializer;
  friend class storage::SegmentIO;
};

}  // namespace prague

#endif  // PRAGUE_INDEX_A2F_INDEX_H_
