// Result generation — Algorithm 5 plus exact verification.
//
// Exact (containment) results verify Rq with VF2. Similarity results walk
// the SPIG levels from most- to least-similar (the paper's text mandates
// ordering by increasing subgraph distance), adding verification-free
// candidates outright and running the MCCS-style SimVerify on the rest:
// "does the data graph contain *some* connected level-i subgraph of q?",
// answered with the distinct level-i fragments the SPIG set already holds.

#ifndef PRAGUE_CORE_RESULTS_H_
#define PRAGUE_CORE_RESULTS_H_

#include <vector>

#include "core/candidates.h"
#include "core/spig.h"
#include "graph/graph_database.h"
#include "util/deadline.h"
#include "util/id_set.h"
#include "util/thread_pool.h"

namespace prague {

/// \brief One similarity match.
struct SimilarMatch {
  GraphId gid = 0;
  /// dist(q, g) — number of query edges missed.
  int distance = 0;
  /// True when the match came out of Rver (an MCCS check ran); false for
  /// verification-free matches from Rfree.
  bool verified = false;

  bool operator==(const SimilarMatch&) const = default;
};

/// \brief What Run returns.
struct QueryResults {
  /// True when these are similarity results (simFlag was set, or the
  /// containment results were empty and PRAGUE fell back — Algorithm 1
  /// lines 19-21).
  bool similarity = false;
  /// Exact containment matches (empty in similarity mode).
  std::vector<GraphId> exact;
  /// Similarity matches ordered by non-decreasing distance.
  std::vector<SimilarMatch> similar;
  /// True when a deadline cut Run() short. What is present is still
  /// sound — a prefix-consistent subset of the unbounded result, since
  /// candidates are decided in a fixed order and generation stops at the
  /// first undecided one.
  bool truncated = false;
};

/// \brief Counters describing one SimilarResultsGen run.
struct SimilarGenStats {
  size_t verification_free = 0;  ///< matches accepted from Rfree
  size_t verified = 0;           ///< Rver candidates that passed SimVerify
  size_t rejected = 0;           ///< Rver candidates that failed
  size_t vf2_calls = 0;          ///< VF2 invocations spent verifying
  size_t nodes_expanded = 0;     ///< VF2 expansion steps spent verifying
};

/// \brief Which phase of a Run() a deadline interrupted.
enum class RunPhase {
  kNone = 0,            ///< no deadline hit
  kExactVerification,   ///< containment verification of Rq
  kSimilarCandidates,   ///< SPIG-level candidate derivation (Algorithm 4)
  kSimilarGeneration,   ///< ordered result generation (Algorithm 5)
};

/// \brief Human-readable phase name for logs and the CLI.
const char* RunPhaseName(RunPhase phase);

/// \brief Timing/counters for one Run (PRAGUE or a baseline session).
struct RunStats {
  double srt_seconds = 0;  ///< total time inside Run()
  size_t verified = 0;     ///< candidates that passed verification
  size_t rejected = 0;     ///< candidates that failed
  SimilarGenStats similar; ///< similarity-path details
  // Per-phase accounting (phases that did not run stay 0).
  double candidate_seconds = 0;     ///< deriving similarity candidates
  double verification_seconds = 0;  ///< exact containment verification
  double similarity_seconds = 0;    ///< Algorithm 5 result generation
  size_t nodes_expanded = 0;        ///< VF2 expansion steps, all phases
  bool truncated = false;           ///< a deadline cut the run short
  RunPhase deadline_phase = RunPhase::kNone;  ///< where the cut landed
};

/// \brief Where a truncated SimilarResultsGen stopped, in the canonical
/// bucket order the output follows: distance ascending; within one
/// distance, verification-free (Rfree) matches before verified (Rver)
/// ones. Every bucket strictly before the cut was emitted in full; within
/// the cut bucket the returned matches are the emitted prefix. This is
/// what lets a sharded run merge per-shard truncations into one globally
/// prefix-consistent result (core/shard_exec.h).
struct SimilarGenCut {
  int distance = 0;     ///< distance of the bucket the cut landed in
  bool in_ver = false;  ///< cut in the Rver half (after all Rfree matches)

  bool operator==(const SimilarGenCut&) const = default;
  /// \brief Canonical bucket order.
  bool operator<(const SimilarGenCut& o) const {
    return distance != o.distance ? distance < o.distance
                                  : in_ver < o.in_ver;
  }
};

/// \brief How a (possibly deadline-bounded) verification scan ended.
struct VerificationOutcome {
  /// True when the deadline cut the scan; the returned matches are then
  /// the decisions made before the cut (a prefix of the candidate order).
  bool truncated = false;
  size_t checked = 0;         ///< candidates fully decided
  size_t nodes_expanded = 0;  ///< VF2 expansion steps spent
};

/// \brief Subgraph-isomorphism verification of the containment candidate
/// set Rq; returns the ids of true matches, ascending. A non-null \p pool
/// verifies candidates in parallel (identical results, same order). Under
/// a bounded \p deadline the scan stops at the first undecided candidate
/// and \p outcome (optional) reports the cut.
std::vector<GraphId> ExactVerification(const Graph& q, const IdSet& rq,
                                       const GraphDatabase& db,
                                       ThreadPool* pool = nullptr,
                                       const Deadline& deadline = Deadline(),
                                       VerificationOutcome* outcome = nullptr);

/// \brief Algorithm 5: ordered similarity results.
///
/// \p exact_rq, when non-null, contributes distance-0 matches (possible
/// when an edge deletion restores exact matches while simFlag is already
/// set — the paper's pseudo-code starts at |q|−1 and would miss them).
/// \p stats may be null. A non-zero \p top_k truncates the result list to
/// the k most-similar matches (sound because results are generated in
/// non-decreasing distance order). A non-null \p pool runs each level's
/// MCCS verification in parallel; results are identical and in the same
/// order as the sequential path. When \p filtering_verifier is set the
/// MCCS checks run behind FilteringVerifier's label/degree prefilters
/// (same answers, fewer VF2 calls — see graph/verifier.h). Under a bounded
/// \p deadline generation stops at the first undecided candidate — because
/// results are produced in non-decreasing distance order, what is returned
/// is a prefix of the unbounded result list — and \p truncated (optional)
/// reports the cut, with \p cut_pos (optional) recording which bucket it
/// landed in.
std::vector<SimilarMatch> SimilarResultsGen(
    const Graph& q, const SpigSet& spigs, const SimilarCandidates& cands,
    int sigma, const GraphDatabase& db, const IdSet* exact_rq,
    SimilarGenStats* stats, size_t top_k = 0, ThreadPool* pool = nullptr,
    bool filtering_verifier = false, const Deadline& deadline = Deadline(),
    bool* truncated = nullptr, SimilarGenCut* cut_pos = nullptr);

}  // namespace prague

#endif  // PRAGUE_CORE_RESULTS_H_
