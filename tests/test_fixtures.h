// Shared test fixtures: tiny hand-built databases, a cached AIDS-like
// fixture with mined indexes, and brute-force reference implementations
// used as oracles.

#ifndef PRAGUE_TESTS_TEST_FIXTURES_H_
#define PRAGUE_TESTS_TEST_FIXTURES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "datasets/aids_generator.h"
#include "graph/canonical.h"
#include "graph/graph_database.h"
#include "graph/mccs.h"
#include "graph/subgraph_ops.h"
#include "index/action_aware_index.h"
#include "index/database_snapshot.h"
#include "mining/gspan.h"

namespace prague::testing {

/// \brief Builds a graph from a compact spec: node labels + edge pairs.
inline Graph MakeGraph(const std::vector<Label>& labels,
                       const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b;
  for (Label l : labels) b.AddNode(l);
  for (auto [u, v] : edges) {
    Result<EdgeId> r = b.AddEdge(u, v, 0);
    if (!r.ok()) std::abort();
  }
  return std::move(b).Build();
}

/// Labels used by the tiny fixtures (interned ids).
inline constexpr Label kC = 0;
inline constexpr Label kS = 1;
inline constexpr Label kO = 2;
inline constexpr Label kN = 3;

/// \brief A small chemical-flavoured database in the spirit of Figure 1:
/// C/S/O/N labeled graphs with overlapping substructure.
inline GraphDatabase TinyDatabase() {
  GraphDatabase db;
  db.mutable_labels()->Intern("C");
  db.mutable_labels()->Intern("S");
  db.mutable_labels()->Intern("O");
  db.mutable_labels()->Intern("N");
  // g0: triangle C-C-C plus pendant S.
  db.Add(MakeGraph({kC, kC, kC, kS}, {{0, 1}, {1, 2}, {0, 2}, {0, 3}}));
  // g1: path C-S-C-C.
  db.Add(MakeGraph({kC, kS, kC, kC}, {{0, 1}, {1, 2}, {2, 3}}));
  // g2: star around C with S, O, C.
  db.Add(MakeGraph({kC, kS, kO, kC}, {{0, 1}, {0, 2}, {0, 3}}));
  // g3: square C-C-S-C.
  db.Add(MakeGraph({kC, kC, kS, kC}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
  // g4: C-C edge with pendant N.
  db.Add(MakeGraph({kC, kC, kN}, {{0, 1}, {1, 2}}));
  // g5: C-S-C triangle-ish with O pendant.
  db.Add(MakeGraph({kC, kS, kC, kO}, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}));
  return db;
}

/// \brief Brute-force frequent-fragment enumeration (oracle for gSpan):
/// canonical code → set of containing graph ids, for fragments with
/// ≤ max_edges edges.
inline std::map<CanonicalCode, std::set<GraphId>> BruteForceFragments(
    const GraphDatabase& db, size_t max_edges) {
  std::map<CanonicalCode, std::set<GraphId>> out;
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    const Graph& g = db.graph(gid);
    if (g.EdgeCount() > kMaxSubsetEdges) std::abort();
    std::vector<std::vector<EdgeMask>> by_size = ConnectedEdgeSubsetsBySize(g);
    for (size_t k = 1; k <= std::min(max_edges, g.EdgeCount()); ++k) {
      for (EdgeMask mask : by_size[k]) {
        Graph sub = ExtractEdgeSubgraph(g, mask).graph;
        out[GetCanonicalCode(sub)].insert(gid);
      }
    }
  }
  return out;
}

/// \brief Brute-force Definition-3 similarity search (oracle):
/// ids and distances of every graph with dist(q, g) ≤ sigma.
inline std::vector<std::pair<GraphId, int>> BruteForceSimilaritySearch(
    const GraphDatabase& db, const Graph& q, int sigma) {
  std::vector<std::pair<GraphId, int>> out;
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    MccsResult m = ComputeMccs(q, db.graph(gid));
    if (m.distance <= sigma) out.emplace_back(gid, m.distance);
  }
  return out;
}

/// \brief Cached AIDS-like fixture: a 300-graph molecular database with
/// mined indexes (α = 0.1, β = 4). Built once per test binary.
struct AidsFixture {
  GraphDatabase db;
  MiningResult mined;
  ActionAwareIndexes indexes;
  /// Version-0 snapshot over db/indexes (safe Borrow: the fixture is an
  /// immortal static).
  SnapshotPtr snapshot;

  static const AidsFixture& Get() {
    static AidsFixture* fixture = [] {
      auto* f = new AidsFixture();
      AidsGeneratorConfig config;
      config.graph_count = 300;
      config.seed = 11;
      f->db = GenerateAidsLikeDatabase(config);
      MiningConfig mining;
      mining.min_support_ratio = 0.1;
      mining.max_fragment_edges = 8;
      Result<MiningResult> mined = MineFragments(f->db, mining);
      if (!mined.ok()) std::abort();
      f->mined = std::move(*mined);
      A2fConfig a2f;
      a2f.beta = 4;
      f->indexes = BuildActionAwareIndexes(f->mined, a2f);
      f->snapshot = DatabaseSnapshot::Borrow(&f->db, &f->indexes);
      return f;
    }();
    return *fixture;
  }
};

/// \brief Tiny fixture with indexes (α = 0.34 over the 6-graph database —
/// fragments must appear in ≥ 3 graphs to be frequent).
struct TinyFixture {
  GraphDatabase db;
  MiningResult mined;
  ActionAwareIndexes indexes;
  /// Version-0 snapshot over db/indexes (safe Borrow: immortal static).
  SnapshotPtr snapshot;

  static const TinyFixture& Get() {
    static TinyFixture* fixture = [] {
      auto* f = new TinyFixture();
      f->db = TinyDatabase();
      MiningConfig mining;
      mining.min_support_ratio = 0.34;
      mining.max_fragment_edges = 6;
      Result<MiningResult> mined = MineFragments(f->db, mining);
      if (!mined.ok()) std::abort();
      f->mined = std::move(*mined);
      A2fConfig a2f;
      a2f.beta = 2;
      f->indexes = BuildActionAwareIndexes(f->mined, a2f);
      f->snapshot = DatabaseSnapshot::Borrow(&f->db, &f->indexes);
      return f;
    }();
    return *fixture;
  }
};

}  // namespace prague::testing

#endif  // PRAGUE_TESTS_TEST_FIXTURES_H_
