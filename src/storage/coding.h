// Little-endian byte codecs for the on-disk format (docs/STORAGE.md).
//
// Extends the fixed-width integer idiom of util/bytes.h (EncodeU32LE /
// DecodeU32LE) with the wider types and the length-prefixed strings the
// WAL payloads and segment metadata blocks need. Every encode is byte-wise
// little-endian, so files are portable across hosts; every decode is
// bounds-checked and returns Corruption instead of reading past the end —
// a truncated or bit-flipped block can never walk the reader out of its
// buffer.

#ifndef PRAGUE_STORAGE_CODING_H_
#define PRAGUE_STORAGE_CODING_H_

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"

namespace prague::storage {

/// \brief Appends fixed-width little-endian values to a growing buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) {
    uint8_t buf[4];
    EncodeU32LE(v, buf);
    out_.append(reinterpret_cast<const char*>(buf), 4);
  }
  void PutU64(uint64_t v) {
    PutU32(static_cast<uint32_t>(v));
    PutU32(static_cast<uint32_t>(v >> 32));
  }
  /// \brief IEEE-754 bits, little-endian (doubles round-trip exactly).
  void PutDouble(double v) { PutU64(std::bit_cast<uint64_t>(v)); }
  /// \brief u32 length followed by the raw bytes.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  /// \brief Raw bytes, no length prefix (caller frames them).
  void PutRaw(std::string_view s) { out_.append(s.data(), s.size()); }

  const std::string& buffer() const { return out_; }
  std::string Take() && { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// \brief Bounds-checked reader over an encoded buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8() {
    if (data_.size() - pos_ < 1) return Truncated("u8");
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> U32() {
    if (data_.size() - pos_ < 4) return Truncated("u32");
    uint32_t v =
        DecodeU32LE(reinterpret_cast<const uint8_t*>(data_.data()) + pos_);
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    PRAGUE_ASSIGN_OR_RETURN(uint32_t lo, U32());
    PRAGUE_ASSIGN_OR_RETURN(uint32_t hi, U32());
    return (static_cast<uint64_t>(hi) << 32) | lo;
  }
  Result<double> Double() {
    PRAGUE_ASSIGN_OR_RETURN(uint64_t bits, U64());
    return std::bit_cast<double>(bits);
  }
  Result<std::string_view> String() {
    PRAGUE_ASSIGN_OR_RETURN(uint32_t n, U32());
    if (data_.size() - pos_ < n) return Truncated("string");
    std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  static Status Truncated(const char* what) {
    return Status::Corruption(std::string("truncated encoding reading ") +
                              what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace prague::storage

#endif  // PRAGUE_STORAGE_CODING_H_
