// Figures 9(b)-(e) reproduction: candidate-set size vs σ for the
// similarity queries Q1-Q4, comparing PRG / SG / GR / DVP.
//
// Paper shape: PRG's candidates (|Rfree ∪ Rver|) are usually far below
// GR/SG; on worst-case queries PRG can exceed GR/SG at σ ∈ {1,2} but wins
// as σ grows (DIF pruning strengthens); DVP reports |Rver| only and its
// candidate set approaches the whole dataset for worst-case queries.

#include <cstdio>

#include "bench_common.h"
#include "core/candidates.h"

using namespace prague;
using namespace prague::bench;

int main() {
  Banner("Figures 9(b)-(e): candidate size vs sigma (Q1-Q4)",
         "AIDS-like dataset; PRG counts |Rfree u Rver|, DVP counts |Rver|");
  Workbench bench = BuildAidsWorkbench(AidsGraphCount());
  std::vector<VisualQuerySpec> queries = AidsQueries(bench);
  FeatureIndex features = bench.BuildFeatureIndex(4);
  GrafilLikeEngine gr(&features, &bench.db);
  SigmaLikeEngine sg(&features, &bench.db);

  for (const VisualQuerySpec& spec : queries) {
    std::printf("--- %s (|q|=%zu) ---\n", spec.name.c_str(),
                spec.graph.EdgeCount());
    FormulatedQuery built = Formulate(spec, bench.indexes);
    TablePrinter table({"sigma", "PRG", "SG", "GR", "DVP"});
    for (int sigma = 1; sigma <= 4; ++sigma) {
      SimilarCandidates cands =
          SimilarSubCandidates(built.spigs, built.query.EdgeCount(), sigma,
                               bench.indexes);
      DistVpLikeEngine dvp(bench.mined.frequent, &bench.db, sigma);
      table.AddRow({std::to_string(sigma),
                    std::to_string(cands.TotalCandidates()),
                    std::to_string(sg.Filter(spec.graph, sigma).size()),
                    std::to_string(gr.Filter(spec.graph, sigma).size()),
                    std::to_string(dvp.Filter(spec.graph, sigma).size())});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "paper shape check: PRG smallest for most (query, sigma) points; "
      "worst-case queries may favour GR/SG at sigma<=2.\n");
  return 0;
}
