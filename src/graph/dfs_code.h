// DFS codes (gSpan [13]).
//
// A DFS code is a sequence of edge 5-tuples (from, to, from_label,
// edge_label, to_label) where from/to are DFS discovery indices. The
// *minimum* DFS code under gSpan's neighborhood-restricted lexicographic
// order is a canonical form: two graphs are isomorphic iff their minimum
// DFS codes are equal. The miner grows patterns in this order; the rest of
// the library uses the serialized minimum code as the "CAM code" handle the
// paper attaches to index vertices and SPIG vertices.

#ifndef PRAGUE_GRAPH_DFS_CODE_H_
#define PRAGUE_GRAPH_DFS_CODE_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/result.h"

namespace prague {

/// \brief One DFS-code entry.
struct DfsEdge {
  int from = 0;  ///< DFS discovery index of the source endpoint.
  int to = 0;    ///< DFS discovery index of the destination endpoint.
  Label from_label = 0;
  Label edge_label = 0;
  Label to_label = 0;

  /// \brief Forward edges discover a new vertex (to == max index + 1).
  bool IsForward() const { return to > from; }

  bool operator==(const DfsEdge&) const = default;
};

/// \brief A (partial) DFS code.
using DfsCode = std::vector<DfsEdge>;

/// \brief gSpan's order on two candidate extensions of the same code
/// prefix. Returns <0, 0, >0 like strcmp.
///
/// Backward extensions precede forward ones; among backward, smaller `to`
/// wins; among forward, deeper `from` (larger index) wins; ties break on
/// the label triple.
int CompareDfsEdges(const DfsEdge& a, const DfsEdge& b);

/// \brief Lexicographic comparison of two whole codes using
/// CompareDfsEdges per position; a proper prefix precedes its extensions.
int CompareDfsCodes(const DfsCode& a, const DfsCode& b);

/// \brief The canonical minimum DFS code of a connected graph.
///
/// Requires g connected, 1 ≤ EdgeCount() ≤ kMaxSubsetEdges.
DfsCode MinimumDfsCode(const Graph& g);

/// \brief True iff \p code is the minimum DFS code of the graph it spells
/// (gSpan's isMin test, used by the miner to prune duplicate growth paths).
bool IsMinimumDfsCode(const DfsCode& code);

/// \brief Reconstructs the graph a DFS code spells. Node ids equal DFS
/// discovery indices.
Graph GraphFromDfsCode(const DfsCode& code);

/// \brief Compact, order-preserving string serialization (usable as a hash
/// key; equality ⇔ code equality).
std::string DfsCodeToString(const DfsCode& code);

/// \brief Inverse of DfsCodeToString. Fails on malformed input.
Result<DfsCode> DfsCodeFromString(const std::string& text);

/// \brief The DFS indices on the rightmost path of \p code, root first.
/// The last element is the rightmost vertex.
std::vector<int> RightmostPath(const DfsCode& code);

}  // namespace prague

#endif  // PRAGUE_GRAPH_DFS_CODE_H_
