// Cooperative deadlines and cancellation for bounded system response time.
//
// PRAGUE's contract is a bounded SRT, but VF2 / MCCS / candidate evaluation
// are recursive searches whose cost is data-dependent and occasionally
// pathological. Every long-running loop in the evaluation stack therefore
// carries a Deadline: a steady-clock expiry, an optional cross-thread
// CancellationToken, or both. Expiry is detected cooperatively — workers
// poll, nothing is ever interrupted mid-mutation — so a deadline hit always
// leaves the engine in a consistent state with whatever partial results were
// produced before the cut (see docs/ARCHITECTURE.md, "Bounded execution").
//
// Polling the clock on every expansion step would dominate tight search
// loops, so hot paths go through DeadlineChecker, which consults the
// deadline only every `stride` steps (default 1024 — sub-microsecond work
// between clock reads, yet orders of magnitude finer than any realistic
// budget).

#ifndef PRAGUE_UTIL_DEADLINE_H_
#define PRAGUE_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace prague {

/// \brief Cross-thread stop flag; fire-once until Reset().
///
/// A token is owned by the controlling side (e.g. ManagedSession) and
/// referenced, const, by any number of Deadlines handed to workers. All
/// accesses are relaxed atomics: the flag carries no data dependency, it
/// only asks searches to wind down at their next poll.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// \brief Requests cooperative stop; safe from any thread.
  void RequestStop() noexcept { stop_.store(true, std::memory_order_relaxed); }
  /// \brief True once RequestStop() has been called (until Reset()).
  bool StopRequested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }
  /// \brief Re-arms the token for the next unit of work.
  void Reset() noexcept { stop_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> stop_{false};
};

/// \brief A point in steady-clock time after which work should stop, plus
/// an optional cancellation token checked alongside it.
///
/// Default-constructed Deadlines are unbounded and token-free: Expired() is
/// always false and costs two branches, so unbounded callers pay nothing.
/// Deadlines are small value types — copy them freely into workers; the
/// token, if any, must outlive every copy.
class Deadline {
 public:
  /// Unbounded, no token: never expires.
  Deadline() = default;

  /// \brief Never expires (explicit spelling of the default).
  static Deadline Unbounded() { return Deadline(); }

  /// \brief Expires \p ms milliseconds from now (\p ms <= 0: already
  /// expired). Callers mapping "0 means no limit" config knobs should test
  /// the knob themselves and pass Unbounded() — see PragueConfig.
  ///
  /// Budgets too large to represent saturate to the far-future
  /// time_point::max() instead of overflowing: `now + milliseconds(ms)`
  /// wraps negative for wire-supplied budgets near INT64_MAX, which would
  /// silently turn "effectively unbounded" into "already expired".
  static Deadline AfterMillis(int64_t ms) {
    const auto now = std::chrono::steady_clock::now();
    const auto headroom = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::time_point::max() - now);
    if (ms >= headroom.count()) {
      return At(std::chrono::steady_clock::time_point::max());
    }
    return At(now + std::chrono::milliseconds(ms));
  }

  /// \brief Expires at \p at.
  static Deadline At(std::chrono::steady_clock::time_point at) {
    Deadline d;
    d.bounded_ = true;
    d.at_ = at;
    return d;
  }

  /// \brief Returns a copy that also expires when \p token fires.
  /// \p token may be nullptr (no-op) and must outlive the returned value.
  Deadline WithToken(const CancellationToken* token) const {
    Deadline d = *this;
    d.token_ = token;
    return d;
  }

  /// \brief True iff there is no time bound (a token may still fire).
  bool IsUnbounded() const { return !bounded_; }
  /// \brief True iff neither a time bound nor a token can ever stop work.
  bool CanExpire() const { return bounded_ || token_ != nullptr; }

  /// \brief True once the time bound has passed or the token has fired.
  /// Monotone: once expired, a Deadline stays expired (tokens are only
  /// reset between units of work).
  bool Expired() const {
    if (token_ != nullptr && token_->StopRequested()) return true;
    if (!bounded_) return false;
    return std::chrono::steady_clock::now() >= at_;
  }

 private:
  std::chrono::steady_clock::time_point at_{};
  const CancellationToken* token_ = nullptr;
  bool bounded_ = false;
};

/// \brief Amortized deadline polling for tight search loops.
///
/// Call Check() once per expansion step; the underlying Deadline is
/// consulted only every `stride` calls (and the answer is latched — once
/// expired, every later Check() returns true immediately). A
/// default-constructed checker never stops and reduces Check() to one
/// branch, so unconditional placement in hot loops is free.
class DeadlineChecker {
 public:
  /// 1024 steps between clock reads: each step is a candidate expansion
  /// (roughly a label/degree/adjacency probe), so the slack between the
  /// budget and the actual stop is microseconds.
  static constexpr uint32_t kDefaultStride = 1024;

  DeadlineChecker() = default;
  explicit DeadlineChecker(const Deadline& deadline,
                           uint32_t stride = kDefaultStride)
      : deadline_(deadline),
        stride_(stride == 0 ? 1 : stride),
        active_(deadline.CanExpire()) {}

  /// \brief Counts one step; true once the deadline has expired.
  bool Check() {
    if (!active_) return false;
    if (expired_) return true;
    if (++count_ < stride_) return false;
    count_ = 0;
    expired_ = deadline_.Expired();
    return expired_;
  }

  /// \brief True iff a previous Check() observed expiry.
  bool expired() const { return expired_; }
  /// \brief The deadline being enforced.
  const Deadline& deadline() const { return deadline_; }

 private:
  Deadline deadline_;
  uint32_t stride_ = kDefaultStride;
  uint32_t count_ = 0;
  bool active_ = false;
  bool expired_ = false;
};

}  // namespace prague

#endif  // PRAGUE_UTIL_DEADLINE_H_
