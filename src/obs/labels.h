// Labeled metric families: a metric name broken out over a small set of
// label values — `prague_server_tenant_shed_total{tenant="acme"}` — with
// *bounded cardinality*.
//
// Prometheus dies by a thousand series, so a family never materializes more
// than `max_series` distinct label values: the first K values observed get
// their own series (the "interned" set — callers cache the returned
// Counter*/Histogram* per value and record lock-free thereafter), and every
// later value shares one overflow series labeled `other`. For tenants this
// is the right trade: the big co-tenants an operator alerts on arrive
// first and early, the long anonymous tail aggregates.
//
// Recording costs are the same relaxed atomics as the unlabeled metrics;
// WithLabel() takes the family mutex and is meant to be called once per
// label value (at tenant admission / session open), not per sample.

#ifndef PRAGUE_OBS_LABELS_H_
#define PRAGUE_OBS_LABELS_H_

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace prague::obs {

/// Default per-family series bound (distinct label values before `other`).
inline constexpr size_t kDefaultMaxLabelSeries = 16;

/// Label value every post-bound value maps onto.
inline constexpr const char kOverflowLabelValue[] = "other";

/// \brief Counter family keyed by one label.
class LabeledCounter {
 public:
  LabeledCounter(std::string label_key, size_t max_series);

  /// \brief The counter for \p value, interning it if the family still has
  /// room; the shared `other` counter once full. The pointer is stable —
  /// cache it and Increment() lock-free.
  Counter* WithLabel(std::string_view value);

  const std::string& label_key() const { return label_key_; }

  /// \brief (label value, count) pairs, sorted by value; `other` included
  /// only once the family has overflowed.
  std::vector<std::pair<std::string, uint64_t>> Series() const;

  /// \brief Zeroes every series (tests/bench only; keeps interning).
  void Reset();

 private:
  const std::string label_key_;
  const size_t max_series_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> series_;
  bool overflowed_ = false;
  Counter other_;
};

/// \brief Gauge family keyed by one label.
class LabeledGauge {
 public:
  LabeledGauge(std::string label_key, size_t max_series);

  Gauge* WithLabel(std::string_view value);
  const std::string& label_key() const { return label_key_; }
  std::vector<std::pair<std::string, int64_t>> Series() const;
  void Reset();

 private:
  const std::string label_key_;
  const size_t max_series_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> series_;
  bool overflowed_ = false;
  Gauge other_;
};

/// \brief Histogram family keyed by one label.
class LabeledHistogram {
 public:
  LabeledHistogram(std::string label_key, size_t max_series);

  Histogram* WithLabel(std::string_view value);
  const std::string& label_key() const { return label_key_; }
  std::vector<std::pair<std::string, HistogramSnapshot>> Series() const;
  void Reset();

 private:
  const std::string label_key_;
  const size_t max_series_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> series_;
  bool overflowed_ = false;
  Histogram other_;
};

/// \brief Escapes a label value for Prometheus exposition (backslash,
/// double quote, newline).
std::string EscapeLabelValue(std::string_view value);

}  // namespace prague::obs

#endif  // PRAGUE_OBS_LABELS_H_
