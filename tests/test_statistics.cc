// Database statistics module.

#include <gtest/gtest.h>

#include "graph/statistics.h"
#include "test_fixtures.h"

namespace prague {
namespace {

TEST(StatisticsTest, TinyDatabaseProfile) {
  GraphDatabase db = testing::TinyDatabase();
  DatabaseStatistics s = ComputeStatistics(db);
  EXPECT_EQ(s.graph_count, 6u);
  // Hand-check against the fixture definition.
  EXPECT_EQ(s.total_nodes, 4u + 4 + 4 + 4 + 3 + 4);
  EXPECT_EQ(s.total_edges, 4u + 3 + 3 + 4 + 2 + 4);
  EXPECT_EQ(s.max_edges, 4u);
  EXPECT_DOUBLE_EQ(s.avg_nodes,
                   static_cast<double>(s.total_nodes) / 6.0);
  // g0, g3 (square), and g5 each contain one cycle.
  EXPECT_DOUBLE_EQ(s.avg_cyclomatic, 3.0 / 6.0);
  EXPECT_EQ(s.edge_label_count, 1u);
  // Labels ordered descending; C dominates the tiny fixture.
  ASSERT_FALSE(s.label_counts.empty());
  EXPECT_EQ(s.label_counts.front().first, testing::kC);
}

TEST(StatisticsTest, EmptyDatabase) {
  GraphDatabase db;
  DatabaseStatistics s = ComputeStatistics(db);
  EXPECT_EQ(s.graph_count, 0u);
  EXPECT_EQ(s.total_nodes, 0u);
  EXPECT_DOUBLE_EQ(s.avg_nodes, 0.0);
}

TEST(StatisticsTest, ToStringContainsLabelNames) {
  GraphDatabase db = testing::TinyDatabase();
  DatabaseStatistics s = ComputeStatistics(db);
  std::string report = s.ToString(db.labels());
  EXPECT_NE(report.find("C:"), std::string::npos);
  EXPECT_NE(report.find("graphs: 6"), std::string::npos);
}

TEST(StatisticsTest, GeneratorProfilesMatchPaper) {
  AidsGeneratorConfig config;
  config.graph_count = 500;
  GraphDatabase db = GenerateAidsLikeDatabase(config);
  DatabaseStatistics s = ComputeStatistics(db);
  EXPECT_NEAR(s.avg_nodes, 25.0, 6.0);
  EXPECT_NEAR(s.avg_edges, 27.0, 7.0);
  EXPECT_GT(s.avg_cyclomatic, 0.5);   // molecules have rings
  EXPECT_LT(s.avg_degree, 3.0);       // sparse, chemistry-like
}

}  // namespace
}  // namespace prague
