// Action-aware infrequent index (A2I), Section III: an array of
// discriminative infrequent fragments (DIFs) in ascending size order, each
// entry holding the fragment's CAM code and its FSG id list. DIFs are the
// strongest pruners for infrequent query fragments — any query fragment
// containing a DIF is itself infrequent and its candidates are a subset of
// the DIF's FSG ids.

#ifndef PRAGUE_INDEX_A2I_INDEX_H_
#define PRAGUE_INDEX_A2I_INDEX_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/canonical.h"
#include "graph/graph.h"
#include "mining/gspan.h"
#include "util/id_set.h"

namespace prague {

namespace storage {
class SegmentIO;
}  // namespace storage

/// Identifier of an entry in the A2I index (the paper's a2iId).
using A2iId = uint32_t;

/// \brief One A2I entry.
struct A2iEntry {
  Graph fragment;
  CanonicalCode code;
  IdSet fsg_ids;

  size_t size() const { return fragment.EdgeCount(); }
};

/// \brief The action-aware infrequent index.
class A2IIndex {
 public:
  A2IIndex() = default;

  /// \brief Builds from mined DIFs (already size-ascending from the miner;
  /// re-sorted defensively).
  static A2IIndex Build(const std::vector<MinedFragment>& difs);

  /// \brief a2iId of the DIF with this canonical code, if indexed.
  std::optional<A2iId> Lookup(const CanonicalCode& code) const;

  /// \brief FSG id set of an indexed DIF.
  const IdSet& FsgIds(A2iId id) const { return entries_[id].fsg_ids; }
  /// \brief Entry by id.
  const A2iEntry& entry(A2iId id) const { return entries_[id]; }
  /// \brief Number of DIF entries.
  size_t EntryCount() const { return entries_.size(); }
  /// \brief All entries, ascending by fragment size.
  const std::vector<A2iEntry>& entries() const { return entries_; }

  /// \brief Storage footprint in bytes.
  size_t StorageBytes() const;

  /// \brief Maintenance hook (index_maintenance.h): records that data
  /// graph \p gid contains DIF \p id.
  void AddFsgId(A2iId id, GraphId gid) { entries_[id].fsg_ids.Insert(gid); }

 private:
  std::vector<A2iEntry> entries_;
  std::unordered_map<CanonicalCode, A2iId> by_code_;

  friend class IndexSerializer;
  friend class storage::SegmentIO;
};

}  // namespace prague

#endif  // PRAGUE_INDEX_A2I_INDEX_H_
