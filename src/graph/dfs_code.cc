#include "graph/dfs_code.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "graph/subgraph_ops.h"

namespace prague {

int CompareDfsEdges(const DfsEdge& a, const DfsEdge& b) {
  bool af = a.IsForward();
  bool bf = b.IsForward();
  if (af != bf) return af ? 1 : -1;  // backward < forward
  if (!af) {
    // Both backward: they start at the rightmost vertex; smaller target
    // index first. (`from` comparison only matters when the comparator is
    // used as a container key over edges from different prefixes.)
    if (a.to != b.to) return a.to < b.to ? -1 : 1;
    if (a.from != b.from) return a.from < b.from ? -1 : 1;
  } else {
    // Both forward: deeper source (larger index) first.
    if (a.from != b.from) return a.from > b.from ? -1 : 1;
    if (a.to != b.to) return a.to < b.to ? -1 : 1;
  }
  if (a.from_label != b.from_label) {
    return a.from_label < b.from_label ? -1 : 1;
  }
  if (a.edge_label != b.edge_label) {
    return a.edge_label < b.edge_label ? -1 : 1;
  }
  if (a.to_label != b.to_label) return a.to_label < b.to_label ? -1 : 1;
  return 0;
}

int CompareDfsCodes(const DfsCode& a, const DfsCode& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = CompareDfsEdges(a[i], b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

std::vector<int> RightmostPath(const DfsCode& code) {
  if (code.empty()) return {};
  int max_index = 1;
  std::vector<int> parent(2, -1);
  parent[1] = 0;
  for (const DfsEdge& e : code) {
    if (e.IsForward()) {
      if (e.to > max_index) {
        max_index = e.to;
        parent.resize(max_index + 1, -1);
      }
      parent[e.to] = e.from;
    }
  }
  std::vector<int> path;
  for (int v = max_index; v != -1; v = parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

Graph GraphFromDfsCode(const DfsCode& code) {
  assert(!code.empty());
  int max_index = 0;
  for (const DfsEdge& e : code) max_index = std::max({max_index, e.from, e.to});
  std::vector<Label> labels(max_index + 1, 0);
  labels[code[0].from] = code[0].from_label;
  for (const DfsEdge& e : code) {
    labels[e.from] = e.from_label;
    labels[e.to] = e.to_label;
  }
  GraphBuilder builder;
  for (Label l : labels) builder.AddNode(l);
  for (const DfsEdge& e : code) {
    Result<EdgeId> r = builder.AddEdge(static_cast<NodeId>(e.from),
                                       static_cast<NodeId>(e.to),
                                       e.edge_label);
    assert(r.ok());
    (void)r;
  }
  return std::move(builder).Build();
}

std::string DfsCodeToString(const DfsCode& code) {
  std::string out;
  out.reserve(code.size() * 12);
  for (const DfsEdge& e : code) {
    out += std::to_string(e.from);
    out += ',';
    out += std::to_string(e.to);
    out += ',';
    out += std::to_string(e.from_label);
    out += ',';
    out += std::to_string(e.edge_label);
    out += ',';
    out += std::to_string(e.to_label);
    out += ';';
  }
  return out;
}

Result<DfsCode> DfsCodeFromString(const std::string& text) {
  DfsCode code;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(';', pos);
    if (end == std::string::npos) {
      return Status::Corruption("DFS code string missing ';' terminator");
    }
    long fields[5];
    size_t field_pos = pos;
    for (int f = 0; f < 5; ++f) {
      size_t comma = f < 4 ? text.find(',', field_pos) : end;
      if (comma == std::string::npos || comma > end) {
        return Status::Corruption("DFS code string missing field");
      }
      std::string token = text.substr(field_pos, comma - field_pos);
      try {
        size_t consumed = 0;
        fields[f] = std::stol(token, &consumed);
        if (consumed != token.size()) {
          return Status::Corruption(
              "DFS code string has trailing junk in field: '" + token + "'");
        }
      } catch (const std::invalid_argument&) {
        return Status::Corruption("DFS code string has non-numeric field: '" +
                                  token + "'");
      } catch (const std::out_of_range&) {
        return Status::Corruption("DFS code string field out of range: '" +
                                  token + "'");
      }
      field_pos = comma + 1;
    }
    // Range checks before the narrowing casts. The vertex-index bound is
    // structural: a DFS code starts at vertices {0, 1} and each edge
    // discovers at most one new vertex, so edge i can only reference
    // indices ≤ i + 1. This also keeps a corrupt index from ballooning
    // GraphFromDfsCode's label table.
    const long max_index = static_cast<long>(code.size()) + 1;
    for (int f = 0; f < 2; ++f) {
      if (fields[f] < 0 || fields[f] > max_index) {
        return Status::Corruption(
            "DFS code vertex index " + std::to_string(fields[f]) +
            " out of range [0, " + std::to_string(max_index) + "] at edge " +
            std::to_string(code.size()));
      }
    }
    const long max_label =
        static_cast<long>(std::numeric_limits<Label>::max());
    for (int f = 2; f < 5; ++f) {
      if (fields[f] < 0 || fields[f] > max_label) {
        return Status::Corruption("DFS code label " +
                                  std::to_string(fields[f]) +
                                  " outside the Label range");
      }
    }
    code.push_back(DfsEdge{static_cast<int>(fields[0]),
                           static_cast<int>(fields[1]),
                           static_cast<Label>(fields[2]),
                           static_cast<Label>(fields[3]),
                           static_cast<Label>(fields[4])});
    pos = end + 1;
  }
  if (code.empty()) return Status::Corruption("empty DFS code string");
  return code;
}

namespace {

// One isomorphic image of the current code prefix inside the graph being
// canonicalized.
struct Embedding {
  std::vector<NodeId> map;  // DFS index -> graph node
  EdgeMask used = 0;        // graph edges consumed by the prefix

  bool operator==(const Embedding&) const = default;
};

struct EmbeddingHash {
  size_t operator()(const Embedding& e) const {
    size_t h = std::hash<EdgeMask>()(e.used);
    for (NodeId n : e.map) h = h * 1315423911ULL + n;
    return h;
  }
};

// A candidate extension: the code edge plus the embedding it produces.
struct Extension {
  DfsEdge edge;
  Embedding emb;
};

// Appends all gSpan-legal extensions of `emb` (given the shared `code`) to
// `out`: backward edges from the rightmost vertex to rightmost-path
// vertices, then forward edges from rightmost-path vertices to unmapped
// nodes.
void CollectExtensions(const Graph& g, const DfsCode& code,
                       const std::vector<int>& rm_path, const Embedding& emb,
                       std::vector<Extension>* out) {
  int rightmost = rm_path.back();
  NodeId rm_node = emb.map[rightmost];
  std::vector<bool> mapped(g.NodeCount(), false);
  std::vector<int> index_of(g.NodeCount(), -1);
  for (size_t i = 0; i < emb.map.size(); ++i) {
    mapped[emb.map[i]] = true;
    index_of[emb.map[i]] = static_cast<int>(i);
  }
  // Backward: unused edges from the rightmost vertex back to a rightmost-
  // path vertex (its DFS ancestors — exactly where DFS back-edges may go).
  for (const Adjacency& a : g.Neighbors(rm_node)) {
    if (emb.used & EdgeBit(a.edge)) continue;
    if (!mapped[a.neighbor]) continue;
    int j = index_of[a.neighbor];
    bool on_path = std::find(rm_path.begin(), rm_path.end(), j) !=
                   rm_path.end();
    if (!on_path || j == rightmost) continue;
    Extension ext;
    ext.edge = DfsEdge{rightmost, j, g.NodeLabel(rm_node),
                       g.GetEdge(a.edge).label, g.NodeLabel(a.neighbor)};
    ext.emb = emb;
    ext.emb.used |= EdgeBit(a.edge);
    out->push_back(std::move(ext));
  }
  // Forward: from any rightmost-path vertex to a fresh node.
  int next_index = static_cast<int>(emb.map.size());
  for (int i : rm_path) {
    NodeId from_node = emb.map[i];
    for (const Adjacency& a : g.Neighbors(from_node)) {
      if (emb.used & EdgeBit(a.edge)) continue;
      if (mapped[a.neighbor]) continue;
      Extension ext;
      ext.edge = DfsEdge{i, next_index, g.NodeLabel(from_node),
                         g.GetEdge(a.edge).label, g.NodeLabel(a.neighbor)};
      ext.emb = emb;
      ext.emb.used |= EdgeBit(a.edge);
      ext.emb.map.push_back(a.neighbor);
      out->push_back(std::move(ext));
    }
  }
  (void)code;
}

}  // namespace

DfsCode MinimumDfsCode(const Graph& g) {
  assert(g.EdgeCount() >= 1);
  assert(g.EdgeCount() <= kMaxSubsetEdges);
  assert(g.IsConnected());

  // Seed: the minimal (from_label, edge_label, to_label) over both
  // orientations of every edge, plus all embeddings realizing it.
  DfsEdge seed{0, 1, 0, 0, 0};
  bool have_seed = false;
  std::vector<Embedding> embeddings;
  for (EdgeId e = 0; e < g.EdgeCount(); ++e) {
    const Edge& edge = g.GetEdge(e);
    for (int dir = 0; dir < 2; ++dir) {
      NodeId u = dir == 0 ? edge.u : edge.v;
      NodeId v = dir == 0 ? edge.v : edge.u;
      DfsEdge cand{0, 1, g.NodeLabel(u), edge.label, g.NodeLabel(v)};
      int cmp = have_seed ? CompareDfsEdges(cand, seed) : -1;
      if (cmp < 0) {
        seed = cand;
        have_seed = true;
        embeddings.clear();
      }
      if (cmp <= 0) {
        embeddings.push_back(Embedding{{u, v}, EdgeBit(e)});
      }
    }
  }

  DfsCode code = {seed};
  while (code.size() < g.EdgeCount()) {
    std::vector<int> rm_path = RightmostPath(code);
    bool have_best = false;
    DfsEdge best{};
    std::vector<Embedding> next;
    std::vector<Extension> exts;
    for (const Embedding& emb : embeddings) {
      exts.clear();
      CollectExtensions(g, code, rm_path, emb, &exts);
      for (Extension& ext : exts) {
        int cmp = have_best ? CompareDfsEdges(ext.edge, best) : -1;
        if (cmp < 0) {
          best = ext.edge;
          have_best = true;
          next.clear();
        }
        if (cmp <= 0) next.push_back(std::move(ext.emb));
      }
    }
    assert(have_best && "connected graph must always extend");
    // De-duplicate embeddings (automorphic images collapse).
    std::unordered_set<Embedding, EmbeddingHash> uniq(next.begin(),
                                                      next.end());
    embeddings.assign(uniq.begin(), uniq.end());
    code.push_back(best);
  }
  return code;
}

bool IsMinimumDfsCode(const DfsCode& code) {
  if (code.empty()) return false;
  Graph g = GraphFromDfsCode(code);
  return CompareDfsCodes(code, MinimumDfsCode(g)) == 0;
}

}  // namespace prague
