#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "storage/crc32c.h"
#include "storage/fs_util.h"
#include "util/bytes.h"
#include "obs/metrics.h"

namespace prague::storage {

namespace {

// u32 length + u8 type + u32 crc.
constexpr size_t kRecordHeaderBytes = 9;

// Far above any legitimate append batch; lengths beyond it are treated as
// corruption so a garbage header cannot make recovery allocate gigabytes.
constexpr uint32_t kMaxWalPayload = 256u << 20;  // 256 MiB

Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}

obs::Counter* WalAppendsTotal() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("prague_storage_wal_appends_total");
  return c;
}

obs::Histogram* WalFsyncUs() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("prague_storage_wal_fsync_us");
  return h;
}

}  // namespace

Result<WalReadResult> ReadWal(const std::string& path) {
  Result<std::string> contents = ReadFile(path);
  if (!contents.ok()) return contents.status();
  const std::string& data = contents.value();
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(data.data());

  WalReadResult out;
  size_t pos = 0;
  auto drop_tail = [&](const std::string& why) {
    out.tail_dropped = true;
    out.tail_warning = "WAL " + path + ": dropped invalid tail at offset " +
                       std::to_string(pos) + " (" + why + "); " +
                       std::to_string(out.records.size()) +
                       " valid records precede it";
  };
  while (pos < data.size()) {
    if (data.size() - pos < kRecordHeaderBytes) {
      drop_tail("torn record header");
      break;
    }
    const uint32_t len = DecodeU32LE(bytes + pos);
    const uint8_t type = bytes[pos + 4];
    const uint32_t stored_crc = DecodeU32LE(bytes + pos + 5);
    if (len > kMaxWalPayload) {
      drop_tail("implausible record length " + std::to_string(len));
      break;
    }
    if (data.size() - pos - kRecordHeaderBytes < len) {
      drop_tail("torn record payload");
      break;
    }
    const uint8_t* payload = bytes + pos + kRecordHeaderBytes;
    uint32_t crc = ExtendCrc32c(0, &type, 1);
    crc = ExtendCrc32c(crc, payload, len);
    if (crc != stored_crc) {
      drop_tail("checksum mismatch");
      break;
    }
    WalRecord record;
    record.type = static_cast<WalRecordType>(type);
    record.payload.assign(reinterpret_cast<const char*>(payload), len);
    out.records.push_back(std::move(record));
    pos += kRecordHeaderBytes + len;
    out.valid_bytes = pos;
  }
  return out;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   uint64_t valid_bytes,
                                                   WalWriterOptions options) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", path);
  // Physically remove any torn tail ReadWal detected, then position at
  // the end of the valid prefix.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    Status st = Errno("ftruncate", path);
    ::close(fd);
    return st;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    Status st = Errno("lseek", path);
    ::close(fd);
    return st;
  }
  return std::unique_ptr<WalWriter>(new WalWriter(fd, valid_bytes, options));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(WalRecordType type, std::string_view payload) {
  if (payload.size() > kMaxWalPayload) {
    return Status::InvalidArgument("WAL payload exceeds " +
                                   std::to_string(kMaxWalPayload) + " bytes");
  }
  // Encode the whole record contiguously so it lands in one write(2).
  std::string record;
  record.resize(kRecordHeaderBytes + payload.size());
  uint8_t* out = reinterpret_cast<uint8_t*>(record.data());
  EncodeU32LE(static_cast<uint32_t>(payload.size()), out);
  out[4] = static_cast<uint8_t>(type);
  uint32_t crc = ExtendCrc32c(0, out + 4, 1);
  crc = ExtendCrc32c(crc, payload.data(), payload.size());
  EncodeU32LE(crc, out + 5);
  std::memcpy(out + kRecordHeaderBytes, payload.data(), payload.size());

  std::unique_lock<std::mutex> lock(mu_);
  if (!sync_error_.ok()) return sync_error_;
  size_t off = 0;
  while (off < record.size()) {
    ssize_t n = ::write(fd_, record.data() + off, record.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", "wal");
    }
    off += static_cast<size_t>(n);
  }
  written_ += record.size();
  ++appends_;
  WalAppendsTotal()->Increment();
  if (!options_.sync) return Status::OK();
  return SyncUpTo(written_, &lock);
}

Status WalWriter::SyncUpTo(uint64_t target,
                           std::unique_lock<std::mutex>* lock) {
  while (durable_ < target) {
    if (!sync_error_.ok()) return sync_error_;
    if (!sync_in_flight_) {
      // Become the leader: one fsync covers every record written so far,
      // including followers that arrived while we were queued.
      sync_in_flight_ = true;
      const uint64_t cover = written_;
      lock->unlock();
      const auto start = std::chrono::steady_clock::now();
      const bool failed = ::fsync(fd_) != 0;
      const int saved_errno = errno;
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      WalFsyncUs()->Record(static_cast<uint64_t>(us));
      lock->lock();
      sync_in_flight_ = false;
      if (failed) {
        sync_error_ = Status::IOError(std::string("fsync wal: ") +
                                      std::strerror(saved_errno));
      } else {
        durable_ = cover;
        ++syncs_;
      }
      sync_cv_.notify_all();
    } else {
      sync_cv_.wait(*lock);
    }
  }
  return sync_error_;
}

Status WalWriter::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!sync_error_.ok()) return sync_error_;
  return SyncUpTo(written_, &lock);
}

uint64_t WalWriter::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

uint64_t WalWriter::appends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appends_;
}

uint64_t WalWriter::syncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return syncs_;
}

}  // namespace prague::storage
