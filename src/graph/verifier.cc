#include "graph/verifier.h"

#include <string>

#include "graph/vf2.h"

namespace prague {

namespace {

// Shared VF2 launch: runs under the verifier's deadline and accumulates
// the expansion/cut counters.
bool BoundedVf2(const Graph& pattern, const Graph& target,
                const Deadline& deadline, VerifierStats* stats) {
  ++stats->vf2_calls;
  bool cut = false;
  bool found = IsSubgraphIsomorphic(pattern, target, deadline, &cut,
                                    &stats->nodes_expanded);
  if (cut) ++stats->deadline_hits;
  return found;
}

}  // namespace

bool PlainVerifier::Matches(const Graph& pattern, const Graph& target) {
  ++stats_.checks;
  return BoundedVf2(pattern, target, deadline_, &stats_);
}

FilteringVerifier::Summary FilteringVerifier::Summarize(const Graph& g) {
  Summary s;
  s.nodes = g.NodeCount();
  s.edges = g.EdgeCount();
  for (NodeId n = 0; n < g.NodeCount(); ++n) {
    auto& entry = s.by_label[g.NodeLabel(n)];
    ++entry.first;
    entry.second = std::max(entry.second,
                            static_cast<uint32_t>(g.Degree(n)));
  }
  return s;
}

bool FilteringVerifier::CouldMatch(const Summary& pattern,
                                   const Summary& target) {
  if (pattern.nodes > target.nodes || pattern.edges > target.edges) {
    return false;
  }
  for (const auto& [label, need] : pattern.by_label) {
    auto it = target.by_label.find(label);
    if (it == target.by_label.end()) return false;
    if (it->second.first < need.first) return false;    // node count
    if (it->second.second < need.second) return false;  // max degree
  }
  return true;
}

bool FilteringVerifier::Matches(const Graph& pattern, const Graph& target) {
  ++stats_.checks;
  Summary ps = Summarize(pattern);
  Summary ts = Summarize(target);
  if (!CouldMatch(ps, ts)) {
    ++stats_.prefilter_hits;
    return false;
  }
  return BoundedVf2(pattern, target, deadline_, &stats_);
}

std::unique_ptr<Verifier> MakeVerifier(const std::string& name) {
  if (name == "filtering") return std::make_unique<FilteringVerifier>();
  return std::make_unique<PlainVerifier>();
}

}  // namespace prague
