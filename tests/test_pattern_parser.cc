// Textual pattern language: parsing, error handling, round-trips, and
// end-to-end execution through a PragueSession.

#include <gtest/gtest.h>

#include "core/prague_session.h"
#include "graph/vf2.h"
#include "query/pattern_parser.h"
#include "test_fixtures.h"

namespace prague {
namespace {

using testing::kC;
using testing::kS;

TEST(PatternParserTest, ParsesChain) {
  LabelDictionary labels;
  Result<ParsedPattern> p =
      ParsePattern("(a:C)-(b:C)-(c:S)", &labels);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->graph.NodeCount(), 3u);
  EXPECT_EQ(p->graph.EdgeCount(), 2u);
  EXPECT_EQ(p->sequence, (std::vector<EdgeId>{0, 1}));
  EXPECT_EQ(p->node_names, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(labels.size(), 2u);
}

TEST(PatternParserTest, MultipleChainsShareNodes) {
  LabelDictionary labels;
  Result<ParsedPattern> p = ParsePattern(
      "(a:C)-(b:C)-(c:C), (a)-(c), (a)-(d:S)", &labels);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->graph.NodeCount(), 4u);
  EXPECT_EQ(p->graph.EdgeCount(), 4u);  // triangle + pendant
}

TEST(PatternParserTest, EdgeLabels) {
  LabelDictionary labels;
  Result<ParsedPattern> p = ParsePattern("(a:C)-[2]-(b:C)", &labels);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->graph.GetEdge(0).label, 2u);
}

TEST(PatternParserTest, Errors) {
  LabelDictionary labels;
  EXPECT_FALSE(ParsePattern("", &labels).ok());
  EXPECT_FALSE(ParsePattern("(a)", &labels).ok());  // no label, no edge
  EXPECT_FALSE(ParsePattern("(a:C)", &labels).ok());  // no edges
  EXPECT_FALSE(ParsePattern("(a:C)-(a)", &labels).ok());  // self loop
  // chain a-b then b-a duplicates the edge.
  EXPECT_FALSE(ParsePattern("(a:C)-(b:C)-(a)", &labels).ok());
  EXPECT_FALSE(ParsePattern("(a:C)-(b:C), (a:S)-(b)", &labels).ok());
  EXPECT_FALSE(ParsePattern("(a:C)-(b:C), (c:C)-(d:C)", &labels).ok());
  EXPECT_FALSE(ParsePattern("(a:C)-(b:C)-", &labels).ok());
  EXPECT_FALSE(ParsePattern("(a:C)(b:C)", &labels).ok());
  EXPECT_FALSE(ParsePattern("(a:C)-(b:C), (a)-(b)", &labels).ok());  // dup
}

TEST(PatternParserTest, StrictModeRejectsUnknownLabels) {
  const auto& fixture = testing::TinyFixture::Get();
  EXPECT_TRUE(
      ParsePatternStrict("(a:C)-(b:S)", fixture.db.labels()).ok());
  EXPECT_FALSE(
      ParsePatternStrict("(a:C)-(b:Xx)", fixture.db.labels()).ok());
}

TEST(PatternParserTest, WrittenOrderIsFormulationOrder) {
  LabelDictionary labels;
  Result<ParsedPattern> p = ParsePattern(
      "(a:C)-(b:C), (b)-(c:C), (a)-(c)", &labels);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->sequence, (std::vector<EdgeId>{0, 1, 2}));
}

TEST(PatternParserTest, RoundTripThroughToString) {
  const auto& fixture = testing::TinyFixture::Get();
  Graph g = testing::MakeGraph({kC, kC, kC, kS},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  std::string text = PatternToString(g, fixture.db.labels());
  LabelDictionary labels;
  Result<ParsedPattern> p = ParsePattern(text, &labels);
  ASSERT_TRUE(p.ok()) << text << " -> " << p.status().ToString();
  EXPECT_TRUE(AreIsomorphic(p->graph, g));
}

TEST(PatternParserTest, ExecutesThroughSession) {
  const auto& fixture = testing::TinyFixture::Get();
  Result<ParsedPattern> p = ParsePatternStrict(
      "(a:C)-(b:C), (b)-(c:C), (a)-(c), (a)-(d:S)", fixture.db.labels());
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  PragueSession session(fixture.snapshot);
  std::vector<NodeId> ids;
  for (NodeId n = 0; n < p->graph.NodeCount(); ++n) {
    ids.push_back(session.AddNode(p->graph.NodeLabel(n)));
  }
  for (EdgeId e : p->sequence) {
    const Edge& edge = p->graph.GetEdge(e);
    ASSERT_TRUE(
        session.AddEdge(ids[edge.u], ids[edge.v], edge.label).ok());
  }
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  // The pattern is exactly data graph g0 (triangle + S pendant).
  EXPECT_EQ(results->exact, std::vector<GraphId>{0});
}

}  // namespace
}  // namespace prague
