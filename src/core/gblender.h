// GBLENDER baseline (the authors' earlier system [6], Section II).
//
// GBLENDER shares PRAGUE's action-aware indexes but keeps only the most
// recent candidate set Rq, refined step-by-step:
//   * fragment indexed (frequent or DIF) → Rq = its exact FSG ids;
//   * otherwise → Rq := Rq_prev ∩ FSG ids of the fragment's indexed
//     maximal subgraphs.
// Consequences the paper calls out, reproduced here:
//   * once Rq is empty it stays empty — no similarity fallback;
//   * deleting an edge forces a full replay of the formulation from the
//     earliest step (no SPIGs to fall back on), which is what the
//     Table IV/V modification-cost comparison measures.

#ifndef PRAGUE_CORE_GBLENDER_H_
#define PRAGUE_CORE_GBLENDER_H_

#include <memory>

#include "core/results.h"
#include "core/visual_query.h"
#include "graph/graph_database.h"
#include "index/action_aware_index.h"
#include "index/database_snapshot.h"
#include "index/sharded_snapshot.h"
#include "util/id_set.h"
#include "util/result.h"

namespace prague {

/// \brief What one GBLENDER step did and cost.
struct GbrStepReport {
  FormulationId edge = 0;
  size_t candidates = 0;       ///< |Rq| after the step
  double step_seconds = 0;     ///< candidate refinement time
  double replay_seconds = 0;   ///< full-replay time (Modify only)
  size_t replayed_steps = 0;   ///< steps re-executed by the replay
};

/// \brief The GBLENDER engine.
class GBlenderSession {
 public:
  /// \brief Opens a session pinned to \p snapshot (same pinning semantics
  /// as PragueSession).
  explicit GBlenderSession(SnapshotPtr snapshot);

  /// \brief Sharded variant: unindexed-fragment candidate refinement and
  /// Run() verification scatter over \p sharded's shards on \p shard_pool,
  /// with results bit-identical to the unsharded session (the fair-baseline
  /// requirement — both engines get the same parallel substrate). The view
  /// is used only while it covers \p snapshot; a null pool runs shard
  /// tasks inline.
  GBlenderSession(SnapshotPtr snapshot, ShardedSnapshot::Ptr sharded,
                  std::shared_ptr<ThreadPool> shard_pool);

  /// \brief GUI: user drops a node.
  NodeId AddNode(Label label);
  /// \brief Action New: draw an edge and refine Rq incrementally.
  Result<GbrStepReport> AddEdge(NodeId u, NodeId v, Label edge_label = 0);
  /// \brief Action Modify: delete an edge; replays the whole formulation
  /// (GBLENDER's documented weakness).
  Result<GbrStepReport> DeleteEdge(FormulationId ell);
  /// \brief Action Run: verify Rq with VF2. A bounded \p deadline stops
  /// verification at the first undecided candidate (prefix-consistent, as
  /// in PragueSession) and sets QueryResults::truncated.
  Result<QueryResults> Run(RunStats* stats = nullptr,
                           const Deadline& deadline = Deadline());

  /// \brief Current Rq.
  const IdSet& candidates() const { return rq_; }
  /// \brief Current query fragment.
  const VisualQuery& query() const { return query_; }
  /// \brief The pinned snapshot.
  const SnapshotPtr& snapshot() const { return snap_; }

 private:
  // Refines `rq` for one fragment snapshot (Rq update rule above).
  void StepUpdate(const Graph& fragment, IdSet* rq) const;
  // Recomputes Rq by replaying alive edges in a connectivity-preserving
  // order; returns the number of replayed steps.
  size_t Replay();
  // Active plan when a covering sharded view was wired; inactive otherwise.
  ShardPlan Plan() const;

  SnapshotPtr snap_;
  ShardedSnapshot::Ptr sharded_;
  std::shared_ptr<ThreadPool> shard_pool_;
  VisualQuery query_;
  IdSet rq_;
  bool started_ = false;  // Rq meaningless before the first edge
};

}  // namespace prague

#endif  // PRAGUE_CORE_GBLENDER_H_
