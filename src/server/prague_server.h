// PragueServer — the network face of the engine.
//
// The deployed shape the paper implies: the engine runs in a server
// process while visual front-ends formulate queries over the network.
// One TCP connection maps to one ManagedSession from a shared
// SessionManager, so every concurrency guarantee of the session layer
// (snapshot pinning, COW publish-while-serving, per-session run budgets,
// cross-thread cancellation) is exposed end-to-end on the wire.
//
// Threading — an epoll reactor, not thread-per-connection:
//  - A small fixed set of event-loop threads (`event_loop_threads`) owns
//    all sockets. Every socket is non-blocking; each loop multiplexes its
//    share of connections with epoll, doing the framing, parsing, and all
//    cheap command handling (OPEN, ADD_EDGE, STATS, ...) inline. A
//    connection is assigned to one loop for life (round-robin at accept),
//    so per-connection read state needs no locking. Loop 0 also owns the
//    listening socket.
//  - RUN and BATCH_RUN bodies — the only work whose cost is data-
//    dependent — execute on the shared `util/thread_pool`, never on a
//    loop. A slow query therefore cannot stall framing or another
//    connection's commands; `worker_threads` bounds concurrent query
//    execution, not concurrent connections. Per connection, queued runs
//    execute one at a time (the session is serialized anyway), each
//    connection using at most one pool slot at a time. *Across*
//    connections, queued runs are dispatched deadline-aware, not FIFO:
//    a server-wide scheduler (util/deadline_queue.h) always starts the
//    run whose session budget expires soonest, so tight-budget queries
//    are not parked behind unbounded ones.
//  - Admission control (core/admission.h): before a RUN/BATCH_RUN body is
//    queued at all, the tenant named on OPEN (`tenant=<name>`; default one
//    tenant per connection) must pass its token-bucket rate, concurrency,
//    and pending-bytes quotas. A request over quota is answered with the
//    typed `BUSY <retry-after-ms>` reply and consumes nothing.
//  - Replies may be written from a loop thread or a pool thread. Each
//    connection has a write queue: a reply is sent inline when the queue
//    is empty and the socket accepts it; otherwise it is queued and the
//    owning loop arms EPOLLOUT (via an eventfd wakeup) and flushes as the
//    socket drains. Frame order per connection is preserved.
//  - Pipelining: id-carrying RUN/BATCH_RUN frames (see server/wire.h) may
//    pile up while earlier ones execute; CANCEL — optionally CANCEL <id>
//    — is handled on the loop thread and so reaches an executing run
//    mid-flight. All other commands during an in-flight run are rejected
//    with FailedPrecondition, exactly like the pre-reactor server.
//
// Stop() is graceful: it stops the loops, disconnects every client
// (in-flight runs are cancelled), and joins everything before returning,
// so a server object can be destroyed the line after.

#ifndef PRAGUE_SERVER_PRAGUE_SERVER_H_
#define PRAGUE_SERVER_PRAGUE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/session_manager.h"
#include "util/deadline_queue.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace prague {

namespace obs {
class Watchdog;
class WatchdogHeartbeat;
}  // namespace obs

struct WireCommand;

/// \brief Server knobs.
struct PragueServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (port() reports it).
  uint16_t port = 0;
  /// Query-executor pool size (RUN / BATCH_RUN bodies only);
  /// 0 = max(2, hardware_concurrency).
  size_t worker_threads = 0;
  /// Event-loop (reactor) threads owning the sockets;
  /// 0 = clamp(hardware_concurrency / 4, 1, 4).
  size_t event_loop_threads = 0;
  /// When >= 0, every OPEN without an explicit timeout gets this Run()
  /// budget (milliseconds, 0 = unbounded) instead of the manager default.
  int64_t default_run_deadline_ms = -1;
  /// listen(2) backlog.
  int backlog = 256;
  /// When >= 0, a RUN whose execution takes at least this many
  /// milliseconds logs its full RunTrace at Warning level (slow-query
  /// log). 0 logs every run; -1 (default) disables the log.
  int64_t slow_query_ms = -1;
  /// Cap on id-carrying runs in flight per connection (queued + active);
  /// frames beyond it are rejected with FailedPrecondition.
  size_t max_pipelined_runs = 64;
  /// Mining ratio α applied to APPEND commands without an alpha= token
  /// (the σ-recomputation after each durable append).
  double default_append_alpha = 0.1;
  /// Whether APPEND repairs σ-crossings in place (index_maintenance.h
  /// reclassification) when the command has no reclassify= token.
  bool append_reclassify = true;

  // ---- Admission control & load shedding (core/admission.h). All 0 =
  // off; over-quota requests are answered `BUSY <retry-after-ms>`.
  /// Token-bucket RUN admissions per second per tenant.
  double tenant_rate = 0;
  /// Queued + executing RUN/BATCH_RUN bodies per tenant.
  size_t max_runs_per_conn = 0;
  /// Aggregate bytes of admitted-but-unfinished run payloads per tenant.
  size_t max_queued_bytes = 0;
  /// Open sessions per tenant.
  size_t max_sessions_per_tenant = 0;
  /// Bytes queued toward one slow-reading client before the server drops
  /// the connection (a reply stream the peer never drains would otherwise
  /// grow without bound); 0 = unlimited.
  size_t max_outbound_bytes = 64ull << 20;

  /// Optional stall watchdog (obs/watchdog.h, not owned). When set, every
  /// event loop registers a heartbeat and every RUN/BATCH_RUN/APPEND body
  /// is watched against its deadline budget. The watchdog must outlive
  /// the server (stop the server, or at least call its Stop(), first).
  obs::Watchdog* watchdog = nullptr;
};

/// \brief TCP server exposing a SessionManager over the wire protocol of
/// server/wire.h. The manager must outlive the server.
class PragueServer {
 public:
  explicit PragueServer(SessionManager* manager,
                        PragueServerOptions options = PragueServerOptions());
  ~PragueServer();

  PragueServer(const PragueServer&) = delete;
  PragueServer& operator=(const PragueServer&) = delete;

  /// \brief Binds, listens, and starts the reactor. Fails without side
  /// effects if the port cannot be bound.
  Status Start();

  /// \brief Stops the loops, disconnects every client (in-flight runs are
  /// cancelled), and joins all server threads. Idempotent.
  void Stop();

  /// \brief The bound port (after a successful Start()).
  uint16_t port() const { return port_; }
  /// \brief True between a successful Start() and Stop().
  bool running() const { return running_.load(); }
  /// \brief Connections accepted since Start().
  uint64_t connections_accepted() const { return connections_accepted_.load(); }

 private:
  struct Connection;
  class EventLoop;

  // Frame dispatch and command handling, all on the connection's loop
  // thread (except run bodies — see RunWorker).
  void DispatchFrame(const std::shared_ptr<Connection>& conn,
                     std::string_view payload);
  void HandleCommand(const std::shared_ptr<Connection>& conn,
                     const WireCommand& cmd);
  void HandleCancel(const std::shared_ptr<Connection>& conn,
                    const WireCommand& cmd);
  void EnqueueRun(const std::shared_ptr<Connection>& conn,
                  const WireCommand& cmd);
  // Pool task: repeatedly pops the connection whose queued run has the
  // earliest deadline and executes that run. Several may be live at once
  // (up to the pool size); each connection is executed by at most one.
  void SchedulerWorker();
  // Under sched_mu_: inserts conn keyed by its earliest queued deadline
  // and spawns a worker when below the limit.
  void ScheduleConnection(const std::shared_ptr<Connection>& conn,
                          std::chrono::steady_clock::time_point key);
  std::string ExecuteRun(Connection& conn, const WireCommand& cmd);
  std::string ExecuteBatchRun(Connection& conn, const WireCommand& cmd);
  std::string ExecuteAppend(Connection& conn, const WireCommand& cmd);

  SessionManager* manager_;
  PragueServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  // Held open so HandleAccept can always free one descriptor to drain-and-
  // close pending connections when accept(2) hits EMFILE/ENFILE.
  int spare_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<size_t> next_loop_{0};
  // Names the per-connection default tenants ("conn-<n>").
  std::atomic<uint64_t> anon_tenants_{0};
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::unique_ptr<ThreadPool> pool_;

  // ---- run scheduler; sched_mu_ guards the ready queue and the worker
  // census. A connection appears at most once in ready_ (Connection::
  // sched_queued, under its run_mu) so one slow connection cannot occupy
  // two pool slots.
  std::mutex sched_mu_;
  DeadlineQueue<std::shared_ptr<Connection>> ready_;
  size_t sched_workers_ = 0;
  size_t sched_worker_limit_ = 1;
};

}  // namespace prague

#endif  // PRAGUE_SERVER_PRAGUE_SERVER_H_
