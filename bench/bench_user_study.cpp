// User-study protocol reproduction (Section VIII-A).
//
// The paper's numbers come from eight participants, each formulating
// every query five times with the first reading discarded; per-step GUI
// latency varies with the participant's drawing speed. This bench
// simulates exactly that protocol: 8 "participants" (distinct jitter
// seeds around the 2 s/edge baseline) × 5 formulations × the Q1-Q4
// similarity queries, first formulation discarded, reporting mean and
// max SRT per query.
//
// Shape to check: SRT variance across participants and repetitions is
// small — the paradigm does not depend on exactly how fast a user draws,
// because even the slowest engine step sits far below the slowest
// drawing latency.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace prague;
using namespace prague::bench;

int main() {
  Banner("User-study protocol: 8 participants x 5 formulations (SRT, s)",
         "AIDS-like dataset, sigma=3, 2s/edge +-30% per participant");
  Workbench bench = BuildAidsWorkbench(AidsGraphCount());
  std::vector<VisualQuerySpec> queries = AidsQueries(bench);

  constexpr int kParticipants = 8;
  constexpr int kFormulations = 5;  // first one discarded

  TablePrinter table({"query", "mean SRT", "max SRT", "stddev", "samples"});
  for (const VisualQuerySpec& spec : queries) {
    std::vector<double> srts;
    for (int participant = 0; participant < kParticipants; ++participant) {
      SimulationConfig config;
      config.prague.sigma = 3;
      config.latency.jitter = 0.3;
      config.latency.jitter_seed =
          1000 + static_cast<uint64_t>(participant);
      SessionSimulator simulator(bench.snapshot, config);
      for (int formulation = 0; formulation < kFormulations;
           ++formulation) {
        Result<SimulationResult> result = simulator.RunPrague(spec);
        if (!result.ok()) {
          std::fprintf(stderr, "failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        if (formulation == 0) continue;  // paper discards the first read
        srts.push_back(result->srt_seconds);
      }
    }
    double sum = 0, max = 0;
    for (double s : srts) {
      sum += s;
      max = std::max(max, s);
    }
    double mean = sum / static_cast<double>(srts.size());
    double var = 0;
    for (double s : srts) var += (s - mean) * (s - mean);
    double stddev = std::sqrt(var / static_cast<double>(srts.size()));
    table.AddRow({spec.name, Fmt(mean, 4), Fmt(max, 4), Fmt(stddev, 4),
                  std::to_string(srts.size())});
  }
  table.Print();
  std::printf(
      "\nshape check: mean ~= max across 32 readings per query — SRT does "
      "not depend on participant drawing speed.\n");
  return 0;
}
