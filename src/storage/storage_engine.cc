#include "storage/storage_engine.h"

#include <chrono>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "storage/fs_util.h"
#include "util/logging.h"

namespace prague::storage {

namespace {

std::string SegmentFileName(uint64_t version) {
  return "seg-" + std::to_string(version) + ".prseg";
}

std::string WalFileName(uint64_t version) {
  return "wal-" + std::to_string(version) + ".log";
}

obs::Gauge* WalBytesGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("prague_storage_wal_bytes");
  return g;
}

obs::Gauge* SegmentBytesGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("prague_storage_segment_bytes");
  return g;
}

obs::Histogram* CheckpointDurationUs() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "prague_storage_checkpoint_duration_us");
  return h;
}

}  // namespace

StorageEngine::StorageEngine(std::string dir, StorageOptions options,
                             RecoveredState recovered, Manifest manifest,
                             std::unique_ptr<WalWriter> wal,
                             uint64_t segment_bytes, uint64_t posting_bytes)
    : dir_(std::move(dir)),
      options_(options),
      recovered_(std::move(recovered)),
      manifest_(std::move(manifest)),
      wal_(std::move(wal)),
      segment_bytes_(segment_bytes),
      posting_bytes_(posting_bytes) {
  WalBytesGauge()->Set(static_cast<int64_t>(wal_->bytes()));
  SegmentBytesGauge()->Set(static_cast<int64_t>(segment_bytes_));
}

bool StorageEngine::Exists(const std::string& dir) {
  return PathExists(JoinPath(dir, kManifestFileName));
}

Result<std::unique_ptr<StorageEngine>> StorageEngine::Bootstrap(
    const std::string& dir, const DatabaseSnapshot& initial, double alpha,
    const StorageOptions& options) {
  PRAGUE_RETURN_NOT_OK(EnsureDir(dir));
  if (Exists(dir)) {
    return Status::InvalidArgument(dir + " is already a data directory");
  }
  Manifest manifest;
  manifest.snapshot_version = initial.version();
  manifest.alpha = alpha;
  manifest.segment_file = SegmentFileName(initial.version());
  manifest.wal_file = WalFileName(initial.version());
  PRAGUE_RETURN_NOT_OK(WriteSegment(initial, dir, manifest.segment_file));
  PRAGUE_RETURN_NOT_OK(WriteFileDurable(dir, manifest.wal_file, ""));
  PRAGUE_RETURN_NOT_OK(SaveManifest(dir, manifest));
  // Open (rather than assembling state by hand) so bootstrap also proves
  // the directory round-trips.
  return Open(dir, options);
}

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    const std::string& dir, const StorageOptions& options) {
  RecoveryOptions recovery_options;
  recovery_options.verify_postings_crc = options.verify_postings_crc;
  PRAGUE_ASSIGN_OR_RETURN(RecoveredState recovered,
                          Recover(dir, recovery_options));
  Manifest manifest = recovered.manifest;

  WalWriterOptions wal_options;
  wal_options.sync = options.sync;
  PRAGUE_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> wal,
      WalWriter::Open(JoinPath(dir, manifest.wal_file),
                      recovered.wal_valid_bytes, wal_options));

  PRAGUE_ASSIGN_OR_RETURN(uint64_t segment_bytes,
                          FileSize(JoinPath(dir, manifest.segment_file)));
  const uint64_t posting_bytes = recovered.posting_bytes;

  SweepOrphans(dir, manifest);
  return std::unique_ptr<StorageEngine>(new StorageEngine(
      dir, options, std::move(recovered), std::move(manifest), std::move(wal),
      segment_bytes, posting_bytes));
}

void StorageEngine::SweepOrphans(const std::string& dir,
                                 const Manifest& manifest) {
  Result<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) return;  // best effort
  for (const std::string& name : *names) {
    if (name == kManifestFileName || name == manifest.segment_file ||
        name == manifest.wal_file) {
      continue;
    }
    PRAGUE_LOG(Warning) << "storage: sweeping orphaned file " << name
                        << " (interrupted checkpoint)";
    (void)RemoveFile(JoinPath(dir, name));
  }
}

Status StorageEngine::LogAppend(const AppendPayload& payload) {
  const std::string bytes = EncodeAppendPayload(payload);
  std::shared_lock<std::shared_mutex> lock(rotate_mu_);
  PRAGUE_RETURN_NOT_OK(wal_->Append(WalRecordType::kAppendGraphs, bytes));
  WalBytesGauge()->Set(static_cast<int64_t>(wal_->bytes()));
  return Status::OK();
}

Status StorageEngine::SyncWal() {
  std::shared_lock<std::shared_mutex> lock(rotate_mu_);
  return wal_->Sync();
}

Status StorageEngine::Checkpoint(const DatabaseSnapshot& snapshot,
                                 double alpha) {
  const auto start = std::chrono::steady_clock::now();
  std::unique_lock<std::shared_mutex> lock(rotate_mu_);
  if (snapshot.version() <= manifest_.snapshot_version) {
    return Status::OK();  // already durable in a segment
  }
  Manifest next;
  next.snapshot_version = snapshot.version();
  next.alpha = alpha;
  next.segment_file = SegmentFileName(snapshot.version());
  next.wal_file = WalFileName(snapshot.version());

  // 1. New segment, durable under its final name.
  PRAGUE_RETURN_NOT_OK(WriteSegment(snapshot, dir_, next.segment_file));
  // 2. Fresh empty WAL for the post-checkpoint tail. It must exist before
  //    the manifest names it: a crash right after the manifest rename must
  //    find an (empty) WAL, not a missing file.
  PRAGUE_RETURN_NOT_OK(WriteFileDurable(dir_, next.wal_file, ""));
  // 3. Commit point: atomically repoint the manifest.
  PRAGUE_RETURN_NOT_OK(SaveManifest(dir_, next));
  // 4. Swing the writer to the new WAL. Appends waiting on rotate_mu_
  //    resume against it; records in the old WAL are all ≤ the new
  //    watermark by construction (the caller checkpoints its newest
  //    published snapshot).
  WalWriterOptions wal_options;
  wal_options.sync = options_.sync;
  PRAGUE_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> wal,
      WalWriter::Open(JoinPath(dir_, next.wal_file), 0, wal_options));
  const Manifest old = manifest_;
  wal_ = std::move(wal);
  manifest_ = next;
  PRAGUE_ASSIGN_OR_RETURN(segment_bytes_,
                          FileSize(JoinPath(dir_, next.segment_file)));
  // 5. The superseded files are garbage now; removal is best-effort (the
  //    open-time sweep catches anything a crash leaves behind).
  (void)RemoveFile(JoinPath(dir_, old.segment_file));
  (void)RemoveFile(JoinPath(dir_, old.wal_file));

  WalBytesGauge()->Set(0);
  SegmentBytesGauge()->Set(static_cast<int64_t>(segment_bytes_));
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  CheckpointDurationUs()->Record(static_cast<uint64_t>(us));
  return Status::OK();
}

StorageStats StorageEngine::Stats() const {
  std::shared_lock<std::shared_mutex> lock(rotate_mu_);
  StorageStats stats;
  stats.wal_bytes = wal_->bytes();
  stats.wal_appends = wal_->appends();
  stats.wal_syncs = wal_->syncs();
  stats.segment_bytes = segment_bytes_;
  stats.posting_bytes = posting_bytes_;
  stats.last_checkpoint_version = manifest_.snapshot_version;
  stats.recovery_replayed_records = recovered_.replayed_records;
  stats.wal_tail_dropped = recovered_.wal_tail_dropped;
  return stats;
}

}  // namespace prague::storage
