// Disk-resident DF-index store: round-trip exactness, LRU behaviour, and
// corruption handling.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "index/df_store.h"
#include "test_fixtures.h"

namespace prague {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DfStoreTest, RoundTripsEveryDfVertex) {
  const auto& fixture = testing::AidsFixture::Get();
  const A2FIndex& a2f = fixture.indexes.a2f;
  std::string path = TempPath("df_store_roundtrip.dfs");
  Result<DfStore> store = DfStore::Create(a2f, path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  size_t df_vertices = 0;
  for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
    if (a2f.vertex(id).in_mf) {
      EXPECT_FALSE(store->ContainsVertex(id));
      EXPECT_FALSE(store->FsgIds(id).ok());
      continue;
    }
    ++df_vertices;
    ASSERT_TRUE(store->ContainsVertex(id)) << id;
    Result<IdSet> ids = store->FsgIds(id);
    ASSERT_TRUE(ids.ok()) << id;
    EXPECT_EQ(*ids, a2f.FsgIds(id)) << id;
  }
  EXPECT_EQ(df_vertices, a2f.DfVertexCount());
  EXPECT_GT(store->FileBytes(), 0u);
  std::remove(path.c_str());
}

TEST(DfStoreTest, ReopenedStoreServesSameData) {
  const auto& fixture = testing::AidsFixture::Get();
  const A2FIndex& a2f = fixture.indexes.a2f;
  std::string path = TempPath("df_store_reopen.dfs");
  {
    Result<DfStore> created = DfStore::Create(a2f, path);
    ASSERT_TRUE(created.ok());
  }
  Result<DfStore> reopened = DfStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
    if (a2f.vertex(id).in_mf) continue;
    Result<IdSet> ids = reopened->FsgIds(id);
    ASSERT_TRUE(ids.ok());
    EXPECT_EQ(*ids, a2f.FsgIds(id));
  }
  std::remove(path.c_str());
}

TEST(DfStoreTest, LruCachesAndEvicts) {
  const auto& fixture = testing::AidsFixture::Get();
  const A2FIndex& a2f = fixture.indexes.a2f;
  if (a2f.clusters().size() < 3) GTEST_SKIP() << "needs >= 3 clusters";
  std::string path = TempPath("df_store_lru.dfs");
  Result<DfStore> store = DfStore::Create(a2f, path, /*cache_clusters=*/1);
  ASSERT_TRUE(store.ok());

  // Two vertices in the same cluster: second lookup must be a cache hit.
  const FragmentCluster& c0 = a2f.clusters()[0];
  ASSERT_GE(c0.members.size(), 1u);
  ASSERT_TRUE(store->FsgIds(c0.members[0]).ok());
  size_t loads_after_first = store->stats().cluster_loads;
  ASSERT_TRUE(store->FsgIds(c0.members[0]).ok());
  EXPECT_EQ(store->stats().cluster_loads, loads_after_first);
  EXPECT_GE(store->stats().cache_hits, 1u);

  // Touch another cluster: with budget 1 the first must be evicted.
  const FragmentCluster& c1 = a2f.clusters()[1];
  ASSERT_TRUE(store->FsgIds(c1.members[0]).ok());
  EXPECT_GE(store->stats().evictions, 1u);
  // Re-touching the first cluster loads again.
  size_t loads_before = store->stats().cluster_loads;
  ASSERT_TRUE(store->FsgIds(c0.members[0]).ok());
  EXPECT_EQ(store->stats().cluster_loads, loads_before + 1);
  std::remove(path.c_str());
}

TEST(DfStoreTest, DropCacheForcesReload) {
  const auto& fixture = testing::AidsFixture::Get();
  const A2FIndex& a2f = fixture.indexes.a2f;
  if (a2f.DfVertexCount() == 0) GTEST_SKIP();
  std::string path = TempPath("df_store_drop.dfs");
  Result<DfStore> store = DfStore::Create(a2f, path);
  ASSERT_TRUE(store.ok());
  A2fId some_df = 0;
  for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
    if (!a2f.vertex(id).in_mf) {
      some_df = id;
      break;
    }
  }
  ASSERT_TRUE(store->FsgIds(some_df).ok());
  size_t loads = store->stats().cluster_loads;
  store->DropCache();
  ASSERT_TRUE(store->FsgIds(some_df).ok());
  EXPECT_EQ(store->stats().cluster_loads, loads + 1);
  std::remove(path.c_str());
}

TEST(DfStoreTest, OpenRejectsGarbage) {
  std::string path = TempPath("df_store_garbage.dfs");
  {
    std::ofstream out(path);
    out << "NOT_A_STORE\n";
  }
  EXPECT_FALSE(DfStore::Open(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(DfStore::Open(TempPath("df_store_missing.dfs")).ok());
}

}  // namespace
}  // namespace prague
