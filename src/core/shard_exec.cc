#include "core/shard_exec.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace prague {

namespace {

uint64_t ToMicros(double seconds) {
  if (seconds <= 0) return 0;
  return static_cast<uint64_t>(seconds * 1e6 + 0.5);
}

// One scatter's worth of shard metrics: task count, balance of the
// per-shard task times, and the gather/merge cost.
void RecordScatterMetrics(const std::vector<double>& shard_seconds,
                          double merge_seconds) {
  obs::EngineMetrics& em = obs::EngineMetrics::Get();
  em.shard_runs_total->Increment();
  em.shard_tasks_total->Increment(shard_seconds.size());
  double max_s = 0;
  double sum_s = 0;
  for (double s : shard_seconds) {
    max_s = std::max(max_s, s);
    sum_s += s;
  }
  double mean_s = sum_s / static_cast<double>(shard_seconds.size());
  double ratio = mean_s > 0 ? max_s / mean_s : 1.0;
  em.shard_imbalance_x100->Record(static_cast<uint64_t>(ratio * 100 + 0.5));
  em.shard_merge_us->Record(ToMicros(merge_seconds));
}

void AppendShardSpans(obs::RunTrace* trace, const char* name,
                      const std::vector<double>& shard_seconds) {
  if (trace == nullptr) return;
  for (size_t s = 0; s < shard_seconds.size(); ++s) {
    trace->spans.push_back({name, shard_seconds[s], static_cast<int>(s)});
  }
}

}  // namespace

std::vector<GraphId> ShardedExactVerification(
    const Graph& q, const IdSet& rq, const GraphDatabase& db,
    const ShardPlan& plan, const Deadline& deadline,
    VerificationOutcome* outcome, obs::RunTrace* trace, Status* error) {
  const size_t count = plan.shard_count();
  std::vector<std::vector<GraphId>> matches(count);
  std::vector<VerificationOutcome> outcomes(count);
  std::vector<double> seconds(count);
  {
    TaskGroup group(plan.pool);
    for (size_t s = 0; s < count; ++s) {
      group.Submit([&, s] {
        Stopwatch timer;
        // Sequential scan per shard (the scatter is the parallelism);
        // candidates are visited in ascending id order within the range.
        IdSet rq_s = plan.view->shard(s).Restrict(rq);
        matches[s] =
            ExactVerification(q, rq_s, db, nullptr, deadline, &outcomes[s]);
        seconds[s] = timer.ElapsedSeconds();
      });
    }
    Status st = group.WaitAll();
    if (!st.ok() && error != nullptr) *error = st;
  }
  Stopwatch merge_timer;
  VerificationOutcome merged;
  std::vector<GraphId> out;
  // Shard ranges are contiguous and ascending, so concatenation in shard
  // order is ascending graph-id order — what the sequential scan emits.
  // Truncation: everything after the first truncated shard would come
  // after that shard's undecided candidate in the sequential order, so it
  // is dropped (prefix consistency). Counters stop there too, keeping
  // rejected = checked − |matches| well-defined for the caller.
  for (size_t s = 0; s < count; ++s) {
    out.insert(out.end(), matches[s].begin(), matches[s].end());
    merged.checked += outcomes[s].checked;
    merged.nodes_expanded += outcomes[s].nodes_expanded;
    if (outcomes[s].truncated) {
      merged.truncated = true;
      break;
    }
  }
  if (outcome != nullptr) *outcome = merged;
  AppendShardSpans(trace, "shard-exact-verification", seconds);
  RecordScatterMetrics(seconds, merge_timer.ElapsedSeconds());
  return out;
}

std::vector<SimilarMatch> MergeShardSimilar(
    const std::vector<ShardSimilarPartial>& partials, size_t top_k,
    SimilarGenStats* stats, bool* truncated, RunPhase* cut_phase) {
  const size_t count = partials.size();
  // Earliest cut in bucket order; ties broken by shard ordinal (within
  // one bucket, contributions are ordered by shard).
  bool have_cut = false;
  SimilarGenCut min_cut;
  size_t cut_shard = 0;
  RunPhase phase = RunPhase::kNone;
  for (size_t s = 0; s < count; ++s) {
    if (!partials[s].truncated) continue;
    if (!have_cut || partials[s].cut < min_cut) {
      have_cut = true;
      min_cut = partials[s].cut;
      cut_shard = s;
      phase = partials[s].cut_phase;
    }
  }
  if (stats != nullptr) {
    // All shards' work is real work even when the merge drops matches past
    // the stop point — verification that ran, ran.
    for (const ShardSimilarPartial& p : partials) {
      stats->verification_free += p.stats.verification_free;
      stats->verified += p.stats.verified;
      stats->rejected += p.stats.rejected;
      stats->vf2_calls += p.stats.vf2_calls;
      stats->nodes_expanded += p.stats.nodes_expanded;
    }
  }
  auto mark_cut = [&]() {
    if (truncated != nullptr) *truncated = true;
    if (cut_phase != nullptr && *cut_phase == RunPhase::kNone) {
      *cut_phase = phase;
    }
  };
  std::vector<SimilarMatch> out;
  std::vector<size_t> pos(count, 0);
  auto bucket_of = [](const SimilarMatch& m) {
    return SimilarGenCut{m.distance, m.verified};
  };
  auto full = [&]() { return top_k != 0 && out.size() >= top_k; };
  for (;;) {
    if (full()) return out;  // reached k before any cut — not truncated
    // Smallest bucket among the remaining shard heads.
    bool any = false;
    SimilarGenCut bucket;
    for (size_t s = 0; s < count; ++s) {
      if (pos[s] >= partials[s].matches.size()) continue;
      SimilarGenCut b = bucket_of(partials[s].matches[pos[s]]);
      if (!any || b < bucket) {
        bucket = b;
        any = true;
      }
    }
    if (!any) break;
    if (have_cut && min_cut < bucket) {
      // The cut bucket itself is exhausted; everything from here on would
      // follow the undecided candidate in sequential order.
      mark_cut();
      return out;
    }
    for (size_t s = 0; s < count; ++s) {
      if (have_cut && bucket == min_cut && s > cut_shard) {
        // In the cut bucket, shards after the cut shard come after its
        // missing (undecided) candidates — drop them and stop.
        mark_cut();
        return out;
      }
      std::vector<size_t>::value_type& p = pos[s];
      const std::vector<SimilarMatch>& m = partials[s].matches;
      while (p < m.size() && bucket_of(m[p]) == bucket) {
        if (full()) return out;
        out.push_back(m[p]);
        ++p;
      }
    }
  }
  if (have_cut) mark_cut();
  return out;
}

std::vector<SimilarMatch> ShardedSimilarRun(
    const Graph& q, const SpigSet& spigs,
    const SimilarCandidates* formulation_cands, int sigma,
    const GraphDatabase& db, const IdSet* exact_rq, SimilarGenStats* stats,
    size_t top_k, bool filtering_verifier, const Deadline& deadline,
    const ShardPlan& plan, bool* truncated, RunPhase* cut_phase,
    obs::RunTrace* trace, Status* error) {
  const size_t count = plan.shard_count();
  const int qsize = static_cast<int>(q.EdgeCount());
  std::vector<ShardSimilarPartial> partials(count);
  std::vector<double> seconds(count);
  {
    TaskGroup group(plan.pool);
    for (size_t s = 0; s < count; ++s) {
      group.Submit([&, s] {
        Stopwatch timer;
        ShardSimilarPartial& p = partials[s];
        const IndexShard& shard = plan.view->shard(s);
        // Candidate state stays shard-local until the merge: derive (or
        // restrict) against this shard's slices, then generate
        // immediately, all in one task.
        bool cand_cut = false;
        SimilarCandidates cands =
            formulation_cands != nullptr
                ? formulation_cands->Restrict(shard.begin(), shard.end())
                : SimilarSubCandidates(spigs, q.EdgeCount(), sigma, shard,
                                       deadline, &cand_cut);
        IdSet exact_slice;
        const IdSet* exact_ptr = nullptr;
        if (exact_rq != nullptr) {
          exact_slice = shard.Restrict(*exact_rq);
          exact_ptr = &exact_slice;
        }
        bool gen_cut = false;
        SimilarGenCut gen_cut_pos;
        p.matches = SimilarResultsGen(
            q, spigs, cands, sigma, db, exact_ptr, &p.stats, top_k,
            /*pool=*/nullptr, filtering_verifier, deadline, &gen_cut,
            &gen_cut_pos);
        if (cand_cut) {
          // First underived bucket: the Algorithm-4 walk stops at level
          // boundaries, so derived levels are a prefix q−1 … m and the
          // first missing bucket is (qsize − m + 1, free).
          int min_level = cands.free.empty() ? qsize : cands.free.begin()->first;
          SimilarGenCut derive_cut{qsize - min_level + 1, false};
          p.truncated = true;
          if (gen_cut && gen_cut_pos < derive_cut) {
            p.cut = gen_cut_pos;
            p.cut_phase = RunPhase::kSimilarGeneration;
          } else {
            p.cut = derive_cut;
            p.cut_phase = RunPhase::kSimilarCandidates;
          }
        } else if (gen_cut) {
          p.truncated = true;
          p.cut = gen_cut_pos;
          p.cut_phase = RunPhase::kSimilarGeneration;
        }
        p.seconds = timer.ElapsedSeconds();
        seconds[s] = p.seconds;
      });
    }
    Status st = group.WaitAll();
    if (!st.ok() && error != nullptr) *error = st;
  }
  Stopwatch merge_timer;
  std::vector<SimilarMatch> out =
      MergeShardSimilar(partials, top_k, stats, truncated, cut_phase);
  AppendShardSpans(trace, "shard-similar", seconds);
  RecordScatterMetrics(seconds, merge_timer.ElapsedSeconds());
  return out;
}

}  // namespace prague
