#include "mining/gspan.h"

#include <algorithm>
#include <cassert>
#include <span>
#include <cmath>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "graph/dfs_code.h"
#include "graph/subgraph_ops.h"
#include "util/stopwatch.h"

namespace prague {

namespace {

// One embedding of the current DFS code, stored as a linked list sharing
// prefixes with sibling embeddings (the classic gSpan "PDFS" layout).
struct Pdfs {
  GraphId gid = 0;
  NodeId from_node = kInvalidNode;  // image of code[i].from
  NodeId to_node = kInvalidNode;    // image of code[i].to
  EdgeId edge = kInvalidEdge;       // data edge realizing code[i]
  const Pdfs* prev = nullptr;       // embedding of the code prefix
};

// Stable storage for Pdfs nodes created at one recursion level.
using PdfsArena = std::deque<Pdfs>;

// Fully materialized embedding of a code in a data graph.
struct History {
  std::vector<NodeId> map;    // DFS index -> data node
  std::vector<EdgeId> edges;  // data edges in code order
};

void BuildHistory(const DfsCode& code, const Pdfs* p, History* h) {
  int max_index = 1;
  for (const DfsEdge& e : code) max_index = std::max({max_index, e.from, e.to});
  h->map.assign(max_index + 1, kInvalidNode);
  h->edges.assign(code.size(), kInvalidEdge);
  size_t i = code.size();
  while (p != nullptr) {
    --i;
    h->edges[i] = p->edge;
    h->map[code[i].from] = p->from_node;
    h->map[code[i].to] = p->to_node;
    p = p->prev;
  }
  assert(i == 0);
}

bool UsesEdge(const History& h, EdgeId e) {
  return std::find(h.edges.begin(), h.edges.end(), e) != h.edges.end();
}

int MappedIndex(const History& h, NodeId node) {
  for (size_t i = 0; i < h.map.size(); ++i) {
    if (h.map[i] == node) return static_cast<int>(i);
  }
  return -1;
}

struct DfsEdgeLess {
  bool operator()(const DfsEdge& a, const DfsEdge& b) const {
    return CompareDfsEdges(a, b) < 0;
  }
};

using ExtensionMap = std::map<DfsEdge, std::vector<const Pdfs*>, DfsEdgeLess>;

IdSet GidsOf(const std::vector<const Pdfs*>& projections) {
  std::vector<GraphId> gids;
  gids.reserve(projections.size());
  for (const Pdfs* p : projections) gids.push_back(p->gid);
  return IdSet(std::move(gids));
}

// Embedding counts aligned with the sorted id set.
std::vector<uint32_t> CountsOf(const std::vector<const Pdfs*>& projections,
                               const IdSet& gids) {
  std::vector<uint32_t> counts(gids.size(), 0);
  std::span<const GraphId> ids = gids.span();
  for (const Pdfs* p : projections) {
    auto it = std::lower_bound(ids.begin(), ids.end(), p->gid);
    counts[static_cast<size_t>(it - ids.begin())]++;
  }
  return counts;
}

class Miner {
 public:
  Miner(const GraphDatabase& db, const MiningConfig& config)
      : db_(db), config_(config) {}

  Result<MiningResult> Run() {
    if (db_.empty()) {
      return Status::InvalidArgument("cannot mine an empty database");
    }
    if (config_.min_support_ratio <= 0 || config_.min_support_ratio >= 1) {
      return Status::InvalidArgument("min_support_ratio must be in (0, 1)");
    }
    Stopwatch timer;
    result_.min_support = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(config_.min_support_ratio *
                                         static_cast<double>(db_.size()))));

    // Seed projections for every single-edge pattern (minimum-code
    // orientation only: from_label <= to_label).
    PdfsArena arena;
    ExtensionMap seeds;
    for (GraphId gid = 0; gid < db_.size(); ++gid) {
      const Graph& g = db_.graph(gid);
      for (EdgeId e = 0; e < g.EdgeCount(); ++e) {
        const Edge& edge = g.GetEdge(e);
        for (int dir = 0; dir < 2; ++dir) {
          NodeId u = dir == 0 ? edge.u : edge.v;
          NodeId v = dir == 0 ? edge.v : edge.u;
          if (g.NodeLabel(u) > g.NodeLabel(v)) continue;
          DfsEdge t{0, 1, g.NodeLabel(u), edge.label, g.NodeLabel(v)};
          arena.push_back(Pdfs{gid, u, v, e, nullptr});
          seeds[t].push_back(&arena.back());
        }
      }
    }

    DfsCode code;
    for (const auto& [t, projections] : seeds) {
      IdSet ids = GidsOf(projections);
      code.assign(1, t);
      if (ids.size() >= result_.min_support) {
        Mine(&code, projections, std::move(ids));
      } else if (config_.mine_difs) {
        std::vector<uint32_t> counts = CountsOf(projections, ids);
        RecordInfrequentCandidate(code, std::move(ids), std::move(counts));
      }
    }

    FinalizeDifs();
    result_.stats.frequent_count = result_.frequent.size();
    result_.stats.dif_count = result_.difs.size();
    result_.stats.elapsed_seconds = timer.ElapsedSeconds();
    return std::move(result_);
  }

 private:
  // Depth-first pattern growth. `code` is frequent with the given
  // projections; record it and recurse into frequent extensions.
  void Mine(DfsCode* code, const std::vector<const Pdfs*>& projections,
            IdSet fsg_ids) {
    if (!IsMinimumDfsCode(*code)) {
      ++result_.stats.pruned_non_minimal;
      return;
    }
    MinedFragment frag;
    frag.graph = GraphFromDfsCode(*code);
    frag.code = DfsCodeToString(*code);
    frag.embedding_counts = CountsOf(projections, fsg_ids);
    frag.fsg_ids = std::move(fsg_ids);
    frequent_codes_.insert(frag.code);
    result_.frequent.push_back(std::move(frag));

    if (code->size() >= config_.max_fragment_edges) return;

    std::vector<int> rm_path = RightmostPath(*code);
    int rightmost = rm_path.back();
    int next_index = 0;
    for (const DfsEdge& e : *code) {
      next_index = std::max({next_index, e.from, e.to});
    }
    ++next_index;

    PdfsArena arena;
    ExtensionMap exts;
    History h;
    for (const Pdfs* p : projections) {
      const Graph& g = db_.graph(p->gid);
      BuildHistory(*code, p, &h);
      NodeId rm_node = h.map[rightmost];
      // Backward extensions: rightmost vertex -> rightmost-path ancestor.
      for (const Adjacency& a : g.Neighbors(rm_node)) {
        if (UsesEdge(h, a.edge)) continue;
        int j = MappedIndex(h, a.neighbor);
        if (j < 0 || j == rightmost) continue;
        if (std::find(rm_path.begin(), rm_path.end(), j) == rm_path.end()) {
          continue;  // cross edge: unreachable in any DFS traversal
        }
        DfsEdge t{rightmost, j, g.NodeLabel(rm_node), g.GetEdge(a.edge).label,
                  g.NodeLabel(a.neighbor)};
        arena.push_back(Pdfs{p->gid, rm_node, a.neighbor, a.edge, p});
        exts[t].push_back(&arena.back());
      }
      // Forward extensions: rightmost-path vertex -> fresh node.
      for (int i : rm_path) {
        NodeId from_node = h.map[i];
        for (const Adjacency& a : g.Neighbors(from_node)) {
          if (UsesEdge(h, a.edge)) continue;
          if (MappedIndex(h, a.neighbor) >= 0) continue;
          DfsEdge t{i, next_index, g.NodeLabel(from_node),
                    g.GetEdge(a.edge).label, g.NodeLabel(a.neighbor)};
          arena.push_back(Pdfs{p->gid, from_node, a.neighbor, a.edge, p});
          exts[t].push_back(&arena.back());
        }
      }
    }

    for (const auto& [t, child_projections] : exts) {
      IdSet ids = GidsOf(child_projections);
      code->push_back(t);
      if (ids.size() >= result_.min_support) {
        Mine(code, child_projections, std::move(ids));
      } else if (config_.mine_difs && !ids.empty()) {
        ++result_.stats.infrequent_candidates;
        std::vector<uint32_t> counts = CountsOf(child_projections, ids);
        RecordInfrequentCandidate(*code, std::move(ids), std::move(counts));
      }
      code->pop_back();
    }
  }

  // Remembers an infrequent extension as a potential DIF; de-duplicated by
  // canonical code (the growth code need not be minimal).
  void RecordInfrequentCandidate(const DfsCode& code, IdSet fsg_ids,
                                 std::vector<uint32_t> embedding_counts) {
    Graph g = GraphFromDfsCode(code);
    CanonicalCode canonical = GetCanonicalCode(g);
    auto it = infrequent_.find(canonical);
    if (it != infrequent_.end()) return;  // fsgIds are exact either way
    MinedFragment frag;
    frag.graph = std::move(g);
    frag.code = std::move(canonical);
    frag.fsg_ids = std::move(fsg_ids);
    frag.embedding_counts = std::move(embedding_counts);
    infrequent_.emplace(frag.code, std::move(frag));
  }

  // A candidate is a DIF iff every connected (size-1)-edge subgraph is
  // frequent (anti-monotonicity then covers all smaller subgraphs), or it
  // is a single edge.
  void FinalizeDifs() {
    for (auto& [canonical, frag] : infrequent_) {
      if (frag.size() > 1 && !AllMaximalSubgraphsFrequent(frag.graph)) {
        continue;
      }
      result_.difs.push_back(std::move(frag));
    }
    infrequent_.clear();
    std::sort(result_.difs.begin(), result_.difs.end(),
              [](const MinedFragment& a, const MinedFragment& b) {
                if (a.size() != b.size()) return a.size() < b.size();
                return a.code < b.code;
              });
  }

  bool AllMaximalSubgraphsFrequent(const Graph& g) {
    size_t k = g.EdgeCount() - 1;
    std::vector<std::vector<EdgeMask>> by_size = ConnectedEdgeSubsetsBySize(g);
    for (EdgeMask mask : by_size[k]) {
      ExtractedSubgraph sub = ExtractEdgeSubgraph(g, mask);
      if (!frequent_codes_.contains(GetCanonicalCode(sub.graph))) {
        return false;
      }
    }
    // A tree loses (EdgeCount) choose 1 edges but only some removals stay
    // connected; if *no* connected (k)-subset exists the loop above is
    // vacuous — impossible for connected g with ≥ 2 edges, which always
    // has a non-cut edge removal... but removing any leaf edge keeps the
    // rest connected, so by_size[k] is never empty here.
    return true;
  }

  const GraphDatabase& db_;
  const MiningConfig& config_;
  MiningResult result_;
  std::unordered_set<CanonicalCode> frequent_codes_;
  std::unordered_map<CanonicalCode, MinedFragment> infrequent_;
};

}  // namespace

uint32_t MinedFragment::EmbeddingCount(GraphId gid) const {
  std::span<const GraphId> ids = fsg_ids.span();
  auto it = std::lower_bound(ids.begin(), ids.end(), gid);
  if (it == ids.end() || *it != gid) return 0;
  size_t pos = static_cast<size_t>(it - ids.begin());
  return pos < embedding_counts.size() ? embedding_counts[pos] : 0;
}

Result<MiningResult> MineFragments(const GraphDatabase& db,
                                   const MiningConfig& config) {
  return Miner(db, config).Run();
}

}  // namespace prague
