#include "baselines/traditional.h"

#include <algorithm>
#include <unordered_set>

#include "graph/canonical.h"
#include "graph/subgraph_ops.h"
#include "graph/vf2.h"
#include "util/stopwatch.h"

namespace prague {

SimilaritySearchOutcome TraditionalSimilarityEngine::Evaluate(
    const Graph& q, int sigma, const GraphDatabase& db,
    const Deadline& deadline) const {
  SimilaritySearchOutcome out;
  Stopwatch filter_timer;
  out.candidates = Filter(q, sigma, deadline, &out.truncated);
  out.filter_seconds = filter_timer.ElapsedSeconds();
  const bool bounded = deadline.CanExpire();

  // Distinct level fragments of q for levels |q| .. |q|-sigma.
  Stopwatch verify_timer;
  int qsize = static_cast<int>(q.EdgeCount());
  int lowest = std::max(1, qsize - sigma);
  std::vector<std::vector<EdgeMask>> by_size = ConnectedEdgeSubsetsBySize(q);
  std::vector<std::vector<Graph>> level_fragments(qsize + 1);
  for (int level = qsize; level >= lowest; --level) {
    std::unordered_set<CanonicalCode> seen;
    for (EdgeMask mask : by_size[level]) {
      Graph sub = ExtractEdgeSubgraph(q, mask).graph;
      if (seen.insert(GetCanonicalCode(sub)).second) {
        level_fragments[level].push_back(std::move(sub));
      }
    }
  }
  // Rank each candidate by the highest level it contains (its MCCS level).
  // A deadline cut leaves `results` a prefix of the candidate order: the
  // candidate whose ranking was interrupted is dropped entirely (its level
  // is undecided), never recorded at a wrong level.
  for (GraphId gid : out.candidates) {
    if (bounded && deadline.Expired()) {
      out.truncated = true;
      break;
    }
    const Graph& g = db.graph(gid);
    bool cut = false;
    for (int level = qsize; level >= lowest && !cut; --level) {
      bool hit = false;
      for (const Graph& fragment : level_fragments[level]) {
        bool vf2_cut = false;
        if (IsSubgraphIsomorphic(fragment, g, deadline, &vf2_cut)) {
          hit = true;
          break;
        }
        if (vf2_cut) {
          cut = true;
          break;
        }
      }
      if (hit) {
        out.results.push_back(SimilarMatch{gid, qsize - level, true});
        break;
      }
    }
    if (cut) {
      out.truncated = true;
      break;
    }
  }
  std::stable_sort(out.results.begin(), out.results.end(),
                   [](const SimilarMatch& a, const SimilarMatch& b) {
                     return a.distance < b.distance;
                   });
  out.verify_seconds = verify_timer.ElapsedSeconds();
  out.srt_seconds = out.filter_seconds + out.verify_seconds;
  return out;
}

}  // namespace prague
