// The network service layer, end to end over real loopback sockets:
// framing and command grammar, error mapping, and the acceptance property
// — many concurrent wire clients formulating edge-at-a-time (including
// DELETE_EDGE and a mid-RUN CANCEL) against one server while a background
// thread publishes COW appends, with every RUN reply bit-identical to an
// in-process PragueSession replay on the same pinned snapshot, and
// deadline-cut runs reporting truncation plus the cut phase.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <limits>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <sstream>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/session_manager.h"
#include "datasets/query_workload.h"
#include "obs/metrics.h"
#include "server/prague_client.h"
#include "server/prague_server.h"
#include "server/wire.h"
#include "test_fixtures.h"

namespace prague {
namespace {

using testing::kC;
using testing::kN;
using testing::kO;
using testing::kS;

SnapshotPtr FreshTinySnapshot() {
  const auto& fixture = testing::TinyFixture::Get();
  return DatabaseSnapshot::Make(fixture.db, fixture.indexes, 0);
}

// ---------------------------------------------------------------------------
// Framing over a socketpair.

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    for (int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  }
};

TEST(WireFrameTest, RoundTripsBothTypesAndEmptyPayload) {
  SocketPair pair;
  ASSERT_TRUE(SendFrame(pair.fds[0], FrameType::kRequest, "RUN 5").ok());
  ASSERT_TRUE(SendFrame(pair.fds[0], FrameType::kResponse, "").ok());
  Result<WireFrame> first = RecvFrame(pair.fds[1]);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->type, FrameType::kRequest);
  EXPECT_EQ(first->payload, "RUN 5");
  Result<WireFrame> second = RecvFrame(pair.fds[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->type, FrameType::kResponse);
  EXPECT_TRUE(second->payload.empty());
}

TEST(WireFrameTest, CleanCloseIsDistinguishedFromMidFrameClose) {
  {
    SocketPair pair;
    ::close(pair.fds[0]);
    pair.fds[0] = -1;
    Result<WireFrame> r = RecvFrame(pair.fds[1]);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(IsConnectionClosed(r.status()));
  }
  {
    SocketPair pair;
    // Three header bytes, then EOF: a shorn frame, not a clean close.
    const uint8_t partial[3] = {9, 0, 0};
    ASSERT_EQ(::send(pair.fds[0], partial, sizeof(partial), 0), 3);
    ::close(pair.fds[0]);
    pair.fds[0] = -1;
    Result<WireFrame> r = RecvFrame(pair.fds[1]);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
    EXPECT_FALSE(IsConnectionClosed(r.status()));
  }
}

TEST(WireFrameTest, UnknownTypeByteAndOversizedLengthAreCorruption) {
  {
    SocketPair pair;
    uint8_t header[kFrameHeaderBytes];
    EncodeFrameHeader({3, 0x7A}, header);  // 'z' is not a frame type
    ASSERT_EQ(::send(pair.fds[0], header, sizeof(header), 0),
              static_cast<ssize_t>(sizeof(header)));
    Result<WireFrame> r = RecvFrame(pair.fds[1]);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  }
  {
    SocketPair pair;
    uint8_t header[kFrameHeaderBytes];
    EncodeU32LE(kMaxFramePayload + 1, header);
    header[4] = static_cast<uint8_t>(FrameType::kRequest);
    ASSERT_EQ(::send(pair.fds[0], header, sizeof(header), 0),
              static_cast<ssize_t>(sizeof(header)));
    Result<WireFrame> r = RecvFrame(pair.fds[1]);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  }
}

// ---------------------------------------------------------------------------
// Command grammar.

TEST(WireCommandTest, ParsesEveryVerb) {
  Result<WireCommand> open = ParseCommand("OPEN 250");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->kind, CommandKind::kOpen);
  EXPECT_EQ(open->timeout_ms, 250);
  EXPECT_EQ(ParseCommand("OPEN")->timeout_ms, -1);

  Result<WireCommand> add = ParseCommand("ADD_EDGE 1 C 2 S 7");
  ASSERT_TRUE(add.ok());
  EXPECT_EQ(add->kind, CommandKind::kAddEdge);
  EXPECT_EQ(add->u, 1u);
  EXPECT_EQ(add->u_label, "C");
  EXPECT_EQ(add->v, 2u);
  EXPECT_EQ(add->v_label, "S");
  EXPECT_EQ(add->edge_label, 7u);
  EXPECT_EQ(ParseCommand("ADD_EDGE 1 C 2 S")->edge_label, 0u);

  Result<WireCommand> del = ParseCommand("DELETE_EDGE 3 1");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->kind, CommandKind::kDeleteEdge);
  EXPECT_EQ(del->u, 3u);
  EXPECT_EQ(del->v, 1u);

  EXPECT_EQ(ParseCommand("RUN")->limit, 0u);
  EXPECT_EQ(ParseCommand("RUN 10")->limit, 10u);
  EXPECT_EQ(ParseCommand("CANCEL")->kind, CommandKind::kCancel);
  EXPECT_EQ(ParseCommand("STATS")->kind, CommandKind::kStats);
  EXPECT_EQ(ParseCommand("METRICS")->kind, CommandKind::kMetrics);
  EXPECT_EQ(ParseCommand("CLOSE")->kind, CommandKind::kClose);
}

TEST(WireCommandTest, TypedParseErrors) {
  for (const char* bad :
       {"", "FLY", "OPEN x", "OPEN -5", "OPEN 1 2", "ADD_EDGE 1 C 2",
        "ADD_EDGE u C v S", "ADD_EDGE 1 C 2 S 3 4", "DELETE_EDGE 1",
        "DELETE_EDGE 1 2 3", "RUN k", "CANCEL now", "STATS 1",
        "METRICS 1"}) {
    Result<WireCommand> r = ParseCommand(bad);
    ASSERT_FALSE(r.ok()) << "accepted '" << bad << "'";
    EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument) << bad;
  }
}

TEST(WireCommandTest, FormatAndParseAreInverse) {
  WireCommand add;
  add.kind = CommandKind::kAddEdge;
  add.u = 4;
  add.u_label = "C";
  add.v = 9;
  add.v_label = "N";
  add.edge_label = 2;
  Result<WireCommand> back = ParseCommand(FormatCommand(add));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->u, add.u);
  EXPECT_EQ(back->v_label, add.v_label);
  EXPECT_EQ(back->edge_label, add.edge_label);
}

TEST(WireCommandTest, RequestIdPrefixParses) {
  Result<WireCommand> run = ParseCommand("#7 RUN 10");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->kind, CommandKind::kRun);
  EXPECT_EQ(run->request_id, 7u);
  EXPECT_EQ(run->limit, 10u);
  EXPECT_EQ(ParseCommand("RUN")->request_id, 0u);

  Result<WireCommand> cancel = ParseCommand("CANCEL 12");
  ASSERT_TRUE(cancel.ok());
  EXPECT_EQ(cancel->kind, CommandKind::kCancel);
  EXPECT_EQ(cancel->cancel_id, 12u);
  EXPECT_EQ(ParseCommand("CANCEL")->cancel_id, 0u);

  // Format/parse inverse with the id prefix on.
  WireCommand tagged;
  tagged.kind = CommandKind::kRun;
  tagged.request_id = 41;
  tagged.limit = 3;
  Result<WireCommand> back = ParseCommand(FormatCommand(tagged));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->request_id, 41u);
  EXPECT_EQ(back->limit, 3u);
}

TEST(WireCommandTest, MalformedRequestIdsAreTypedErrors) {
  // Ids must be positive decimal integers; 0 is the reserved "no id".
  for (const char* bad : {"#", "# RUN", "#0 RUN", "#12x RUN", "#-3 RUN",
                          "#99999999999999999999999 RUN"}) {
    Result<WireCommand> r = ParseCommand(bad);
    ASSERT_FALSE(r.ok()) << "accepted '" << bad << "'";
    EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument) << bad;
  }
  EXPECT_EQ(ParseCommand("CANCEL 0").status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(ParseCommand("CANCEL 1 2").status().code(),
            Status::Code::kInvalidArgument);
}

TEST(WireCommandTest, BatchRunParsesPatternsAndLimits) {
  Result<WireCommand> batch =
      ParseCommand("#3 BATCH_RUN 2 5\n(a:C)-(b:S)\n(a:C)-(b:S), (b)-(c:C)");
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->kind, CommandKind::kBatchRun);
  EXPECT_EQ(batch->request_id, 3u);
  EXPECT_EQ(batch->limit, 5u);
  ASSERT_EQ(batch->batch_patterns.size(), 2u);
  EXPECT_EQ(batch->batch_patterns[0], "(a:C)-(b:S)");
  EXPECT_EQ(batch->batch_patterns[1], "(a:C)-(b:S), (b)-(c:C)");

  // Member-count mismatch, zero members, over the cap, an empty member
  // line, and a stray newline on a single-line verb.
  for (const char* bad :
       {"BATCH_RUN 2\n(a:C)-(b:S)", "BATCH_RUN 0", "BATCH_RUN 10000",
        "BATCH_RUN 2\n(a:C)-(b:S)\n", "RUN\n(a:C)-(b:S)"}) {
    Result<WireCommand> r = ParseCommand(bad);
    ASSERT_FALSE(r.ok()) << "accepted '" << bad << "'";
    EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument) << bad;
  }

  // Format/parse inverse, id prefix included.
  WireCommand cmd;
  cmd.kind = CommandKind::kBatchRun;
  cmd.request_id = 9;
  cmd.batch_patterns = {"(a:C)-(b:S)", "(x:O)-(y:N)"};
  Result<WireCommand> back = ParseCommand(FormatCommand(cmd));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->request_id, 9u);
  EXPECT_EQ(back->batch_patterns, cmd.batch_patterns);
}

// ---------------------------------------------------------------------------
// Reply codecs.

TEST(WireReplyTest, ErrorReplyRoundTripsStatus) {
  Status original = Status::NotFound("label 'X' is not in the dictionary");
  Status decoded = DecodeReplyStatus(EncodeErrorReply(original));
  EXPECT_EQ(decoded, original);
  EXPECT_TRUE(DecodeReplyStatus("OK bye").ok());
  EXPECT_EQ(DecodeReplyStatus("gibberish").code(), Status::Code::kCorruption);
}

TEST(WireReplyTest, StepReplyRoundTrips) {
  StepReport report;
  report.edge = 3;
  report.status = FragmentStatus::kNoExactMatch;
  report.similarity_mode = true;
  report.exact_candidates = 0;
  report.free_candidates = 17;
  report.ver_candidates = 5;
  Result<StepReply> reply = ParseStepReply(FormatStepReply(report));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->edge, 3);
  EXPECT_EQ(reply->status, FragmentStatus::kNoExactMatch);
  EXPECT_TRUE(reply->similarity_mode);
  EXPECT_EQ(reply->free_candidates, 17u);
  EXPECT_EQ(reply->ver_candidates, 5u);
}

TEST(WireReplyTest, RunReplyRoundTripsExactAndSimilar) {
  QueryResults exact;
  exact.exact = {2, 5, 9};
  RunStats stats;
  stats.srt_seconds = 0.004;
  Result<RunReply> r = ParseRunReply(FormatRunReply(exact, stats, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->similarity);
  EXPECT_EQ(r->total_matches, 3u);
  EXPECT_EQ(r->exact, (std::vector<GraphId>{2, 5, 9}));
  EXPECT_FALSE(r->truncated);
  EXPECT_EQ(r->deadline_phase, "none");
  EXPECT_NEAR(r->srt_ms, 4.0, 1e-9);

  QueryResults similar;
  similar.similarity = true;
  similar.truncated = true;
  similar.similar = {{4, 1, false}, {7, 2, true}, {1, 3, true}};
  RunStats cut;
  cut.deadline_phase = RunPhase::kSimilarGeneration;
  // limit=2 caps the listed matches; n stays the full count.
  Result<RunReply> s = ParseRunReply(FormatRunReply(similar, cut, 2));
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->similarity);
  EXPECT_TRUE(s->truncated);
  EXPECT_EQ(s->deadline_phase, "similar-generation");
  EXPECT_EQ(s->total_matches, 3u);
  ASSERT_EQ(s->similar.size(), 2u);
  EXPECT_EQ(s->similar[0].gid, 4u);
  EXPECT_EQ(s->similar[0].distance, 1);
  EXPECT_EQ(s->similar[1].gid, 7u);
}

TEST(WireReplyTest, EmptyResultListsUseDashPlaceholder) {
  QueryResults empty;
  RunStats stats;
  std::string payload = FormatRunReply(empty, stats, 0);
  EXPECT_NE(payload.find("ids=-"), std::string::npos);
  Result<RunReply> r = ParseRunReply(payload);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->exact.empty());
}

TEST(WireReplyTest, StatsReplyRoundTripsOpenSessions) {
  SessionManagerStats stats;
  stats.current_version = 12;
  stats.open_sessions = 2;
  stats.sessions_opened = 40;
  stats.snapshots_published = 12;
  stats.runs_served = 321;
  stats.runs_truncated = 9;
  stats.open_session_infos = {{17, 3}, {39, 12}};
  Result<StatsReply> reply = ParseStatsReply(FormatStatsReply(stats));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->current_version, 12u);
  EXPECT_EQ(reply->open_sessions, 2u);
  EXPECT_EQ(reply->sessions_opened, 40u);
  EXPECT_EQ(reply->snapshots_published, 12u);
  EXPECT_EQ(reply->runs_served, 321u);
  EXPECT_EQ(reply->runs_truncated, 9u);
  ASSERT_EQ(reply->sessions.size(), 2u);
  EXPECT_EQ(reply->sessions[0], (std::pair<uint64_t, uint64_t>{17, 3}));
  EXPECT_EQ(reply->sessions[1], (std::pair<uint64_t, uint64_t>{39, 12}));
}

TEST(WireReplyTest, MetricsReplyRoundTripsPrometheusText) {
  const std::string text =
      "# TYPE prague_server_frames_total counter\n"
      "prague_server_frames_total 42\n";
  Result<std::string> back = ParseMetricsReply(FormatMetricsReply(text));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, text);

  // An empty exposition is legal (no metrics registered yet).
  Result<std::string> empty = ParseMetricsReply(FormatMetricsReply(""));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  EXPECT_FALSE(ParseMetricsReply("OK metricsgarbage").ok());
  EXPECT_EQ(ParseMetricsReply("ERR NOT_FOUND boom").status().code(),
            Status::Code::kNotFound);
}

TEST(WireReplyTest, BatchRunReplyRoundTripsMixedMembers) {
  QueryResults exact;
  exact.exact = {1, 4};
  RunStats stats;
  std::vector<std::string> members = {
      FormatRunReply(exact, stats, 0),
      EncodeErrorReply(Status::InvalidArgument("bad pattern")),
  };
  Result<BatchRunReply> reply =
      ParseBatchRunReply(FormatBatchRunReply(members));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->members.size(), 2u);
  ASSERT_TRUE(reply->members[0].ok());
  EXPECT_EQ(reply->members[0]->exact, (std::vector<GraphId>{1, 4}));
  ASSERT_FALSE(reply->members[1].ok());
  EXPECT_EQ(reply->members[1].status().code(),
            Status::Code::kInvalidArgument);

  // A member-count mismatch is Corruption; a whole-batch error decodes to
  // its own status.
  EXPECT_EQ(ParseBatchRunReply("OK batch n=2\n" + members[0]).status().code(),
            Status::Code::kCorruption);
  EXPECT_EQ(ParseBatchRunReply("ERR FAILED_PRECONDITION no session")
                .status()
                .code(),
            Status::Code::kFailedPrecondition);
}

TEST(WireReplyTest, ProtocolErrorTokenRoundTrips) {
  Status original = Status::ProtocolError("request id 3 already in flight");
  std::string payload = EncodeErrorReply(original);
  EXPECT_NE(payload.find("PROTOCOL_ERROR"), std::string::npos);
  EXPECT_EQ(DecodeReplyStatus(payload), original);
}

// ---------------------------------------------------------------------------
// A live server on loopback.

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    manager_ = std::make_unique<SessionManager>(FreshTinySnapshot());
    PragueServerOptions options;
    options.port = 0;  // ephemeral
    options.worker_threads = 12;
    server_ = std::make_unique<PragueServer>(manager_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  Status ConnectClient(PragueClient* client) {
    return client->Connect("127.0.0.1", server_->port());
  }

  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<PragueServer> server_;
};

// Raw-frame loopback connection, for tests that need to speak frames the
// PragueClient would never emit (explicit ids, duplicates, malformed ids).
struct RawConn {
  int fd = -1;
  // rcvbuf > 0 pins SO_RCVBUF before connect (disabling receive-buffer
  // autotuning), so a deliberately-slow reader cannot have megabytes of
  // replies absorbed by the kernel on its behalf.
  explicit RawConn(uint16_t port, int rcvbuf = 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    if (rcvbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  Status SendPayload(const std::string& payload) {
    return SendFrame(fd, FrameType::kRequest, payload);
  }
  Result<std::string> Recv() {
    PRAGUE_ASSIGN_OR_RETURN(WireFrame frame, RecvFrame(fd));
    return std::move(frame.payload);
  }
  Result<std::string> RoundTrip(const std::string& payload) {
    PRAGUE_RETURN_NOT_OK(SendPayload(payload));
    return Recv();
  }
};

TEST_F(ServerFixture, OpenFormulateRunClose) {
  PragueClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  Result<OpenReply> open = client.Open();
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ(open->version, 0u);
  EXPECT_GT(open->session_id, 0u);

  // The C-S-C path of test_session_manager, over the wire.
  Result<StepReply> e1 = client.AddEdge(1, "C", 2, "S");
  ASSERT_TRUE(e1.ok()) << e1.status().ToString();
  Result<StepReply> e2 = client.AddEdge(2, "S", 3, "C");
  ASSERT_TRUE(e2.ok());

  Result<RunReply> run = client.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run->truncated);

  // The same formulation in process on the same pinned snapshot.
  PragueSession replay(manager_->current());
  NodeId a = replay.AddNode(kC);
  NodeId b = replay.AddNode(kS);
  NodeId c = replay.AddNode(kC);
  ASSERT_TRUE(replay.AddEdge(a, b).ok());
  ASSERT_TRUE(replay.AddEdge(b, c).ok());
  Result<QueryResults> expected = replay.Run(nullptr);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(run->similarity, expected->similarity);
  EXPECT_EQ(run->exact, expected->exact);

  EXPECT_TRUE(client.Close().ok());
}

TEST_F(ServerFixture, ProtocolErrorsAreTyped) {
  PragueClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  // Formulating before OPEN.
  Result<StepReply> early = client.AddEdge(1, "C", 2, "S");
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), Status::Code::kFailedPrecondition);
  Result<RunReply> early_run = client.Run();
  ASSERT_FALSE(early_run.ok());
  EXPECT_EQ(early_run.status().code(), Status::Code::kFailedPrecondition);

  ASSERT_TRUE(client.Open().ok());
  // Double OPEN.
  Result<OpenReply> again = client.Open();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), Status::Code::kFailedPrecondition);

  // A label outside the dictionary.
  Result<StepReply> bad_label = client.AddEdge(1, "C", 2, "Xe");
  ASSERT_FALSE(bad_label.ok());
  EXPECT_EQ(bad_label.status().code(), Status::Code::kNotFound);

  // Relabeling an existing handle.
  ASSERT_TRUE(client.AddEdge(1, "C", 2, "S").ok());
  Result<StepReply> relabel = client.AddEdge(1, "O", 3, "C");
  ASSERT_FALSE(relabel.ok());
  EXPECT_EQ(relabel.status().code(), Status::Code::kInvalidArgument);

  // Deleting an edge that was never added.
  Result<StepReply> missing = client.DeleteEdge(1, 9);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kNotFound);

  EXPECT_TRUE(client.Close().ok());
}

TEST_F(ServerFixture, StatsListsOpenSessionsWithPinnedVersions) {
  PragueClient first, second;
  ASSERT_TRUE(ConnectClient(&first).ok());
  ASSERT_TRUE(ConnectClient(&second).ok());
  ASSERT_TRUE(first.Open().ok());

  // Publish an append between the two opens: the sessions pin different
  // versions and STATS must show exactly that.
  ASSERT_TRUE(
      manager_
          ->Append({testing::MakeGraph({kC, kS, kO}, {{0, 1}, {1, 2}})}, 0.34)
          .ok());
  ASSERT_TRUE(second.Open().ok());

  Result<StatsReply> stats = second.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->current_version, 1u);
  EXPECT_EQ(stats->open_sessions, 2u);
  ASSERT_EQ(stats->sessions.size(), 2u);
  EXPECT_EQ(stats->sessions[0],
            (std::pair<uint64_t, uint64_t>{first.session_id(), 0}));
  EXPECT_EQ(stats->sessions[1],
            (std::pair<uint64_t, uint64_t>{second.session_id(), 1}));

  EXPECT_TRUE(first.Close().ok());
  EXPECT_TRUE(second.Close().ok());
}

// Value of the sample named exactly \p name in a Prometheus text block;
// -1 when absent.
double PrometheusSample(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.size() > name.size() &&
        line.compare(0, name.size(), name) == 0 &&
        line[name.size()] == ' ') {
      return std::strtod(line.c_str() + name.size() + 1, nullptr);
    }
  }
  return -1.0;
}

TEST_F(ServerFixture, MetricsCountRunFramesExactly) {
  PragueClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  // METRICS needs no open session. The registry is process-wide and other
  // tests in this binary also serve RUNs, so assert on the delta.
  Result<std::string> before_text = client.Metrics();
  ASSERT_TRUE(before_text.ok()) << before_text.status().ToString();
  double before =
      PrometheusSample(*before_text, "prague_server_run_latency_us_count");
  ASSERT_GE(before, 0.0) << "RUN latency histogram not in exposition:\n"
                         << *before_text;

  ASSERT_TRUE(client.Open().ok());
  ASSERT_TRUE(client.AddEdge(1, "C", 2, "S").ok());
  constexpr int kRuns = 5;
  for (int i = 0; i < kRuns; ++i) {
    ASSERT_TRUE(client.Run().ok());
  }

  Result<std::string> after_text = client.Metrics();
  ASSERT_TRUE(after_text.ok()) << after_text.status().ToString();
  double after =
      PrometheusSample(*after_text, "prague_server_run_latency_us_count");
  // The acceptance property: one histogram sample per RUN frame issued.
  EXPECT_EQ(after - before, kRuns);
  EXPECT_GE(PrometheusSample(*after_text, "prague_server_cmd_run_total"),
            static_cast<double>(kRuns));
  EXPECT_GT(PrometheusSample(*after_text, "prague_server_frames_total"), 0.0);
  EXPECT_GE(PrometheusSample(*after_text, "prague_engine_runs_total"),
            static_cast<double>(kRuns));

  // STATS carries the cumulative run tally for this server's manager.
  Result<StatsReply> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->runs_served, static_cast<uint64_t>(kRuns));
  EXPECT_EQ(stats->runs_truncated, 0u);

  EXPECT_TRUE(client.Close().ok());
}

// ---------------------------------------------------------------------------
// Request ids, pipelining and BATCH_RUN against a live server.

TEST_F(ServerFixture, RequestIdsAreEchoedOnOkAndErrReplies) {
  RawConn conn(server_->port());
  ASSERT_GE(conn.fd, 0);

  Result<std::string> open = conn.RoundTrip("#5 OPEN");
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  Result<std::pair<uint64_t, std::string_view>> open_split =
      SplitFrameId(*open);
  ASSERT_TRUE(open_split.ok());
  EXPECT_EQ(open_split->first, 5u);
  EXPECT_TRUE(ParseOpenReply(open_split->second).ok()) << *open;

  // Errors echo the id too, so a pipelining client can pair them.
  Result<std::string> err = conn.RoundTrip("#6 RUN extra junk");
  ASSERT_TRUE(err.ok());
  Result<std::pair<uint64_t, std::string_view>> err_split =
      SplitFrameId(*err);
  ASSERT_TRUE(err_split.ok());
  EXPECT_EQ(err_split->first, 6u);
  EXPECT_EQ(DecodeReplyStatus(err_split->second).code(),
            Status::Code::kInvalidArgument);

  // A malformed id cannot be echoed: the reply is id-less and typed, and
  // the connection survives.
  for (const char* bad : {"#0 RUN", "#12x RUN"}) {
    Result<std::string> reply = conn.RoundTrip(bad);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_NE(reply->front(), '#') << *reply;
    EXPECT_EQ(DecodeReplyStatus(*reply).code(),
              Status::Code::kInvalidArgument)
        << *reply;
  }

  // Id-less requests still get byte-identical id-less replies.
  Result<std::string> bye = conn.RoundTrip("CLOSE");
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(*bye, "OK bye");
}

TEST_F(ServerFixture, RawPipelinedRunRepliesCarryTheirIds) {
  RawConn conn(server_->port());
  ASSERT_GE(conn.fd, 0);
  Result<std::string> opened = conn.RoundTrip("OPEN");
  ASSERT_TRUE(opened.ok() && DecodeReplyStatus(*opened).ok());
  Result<std::string> added = conn.RoundTrip("ADD_EDGE 1 C 2 S");
  ASSERT_TRUE(added.ok() && DecodeReplyStatus(*added).ok());

  // Two id-tagged RUNs in flight back to back; both replies must parse
  // and carry their request ids.
  ASSERT_TRUE(conn.SendPayload("#1 RUN").ok());
  ASSERT_TRUE(conn.SendPayload("#2 RUN 1").ok());
  std::set<uint64_t> seen;
  for (int i = 0; i < 2; ++i) {
    Result<std::string> reply = conn.Recv();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    Result<std::pair<uint64_t, std::string_view>> split =
        SplitFrameId(*reply);
    ASSERT_TRUE(split.ok());
    seen.insert(split->first);
    EXPECT_TRUE(ParseRunReply(split->second).ok()) << *reply;
  }
  EXPECT_EQ(seen, (std::set<uint64_t>{1, 2}));
}

TEST_F(ServerFixture, PipelinedRunsAwaitedOutOfOrder) {
  PragueClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  ASSERT_TRUE(client.Open().ok());
  ASSERT_TRUE(client.AddEdge(1, "C", 2, "S").ok());
  Result<RunReply> expected = client.Run();
  ASSERT_TRUE(expected.ok());

  Result<uint64_t> id1 = client.StartRun();
  Result<uint64_t> id2 = client.StartRun();
  Result<uint64_t> id3 = client.StartRun();
  ASSERT_TRUE(id1.ok() && id2.ok() && id3.ok());
  Result<RunReply> r3 = client.WaitRun(*id3);
  Result<RunReply> r1 = client.WaitRun(*id1);
  Result<RunReply> r2 = client.WaitRun(*id2);
  for (Result<RunReply>* r : {&r1, &r2, &r3}) {
    ASSERT_TRUE(r->ok()) << r->status().ToString();
    EXPECT_EQ((*r)->exact, expected->exact);
    EXPECT_FALSE((*r)->truncated);
  }
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(ServerFixture, BatchRunMixesExactSimilarAndFailedMembers) {
  PragueClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  // BATCH_RUN needs an open session; without one it is refused whole.
  std::vector<std::string> patterns = {
      "(a:C)-(b:S), (b)-(c:C)",          // exact C-S-C path
      "(a:C)-(b:S), (b)-(c:C), (c)-(d:N)",  // pendant N -> similarity
      "(a:C)-(b:",                       // does not parse
  };
  Result<BatchRunReply> refused = client.BatchRun(patterns);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), Status::Code::kFailedPrecondition);

  ASSERT_TRUE(client.Open().ok());
  Result<BatchRunReply> reply = client.BatchRun(patterns);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->members.size(), 3u);

  ASSERT_TRUE(reply->members[0].ok())
      << reply->members[0].status().ToString();
  EXPECT_FALSE(reply->members[0]->similarity);
  ASSERT_TRUE(reply->members[1].ok())
      << reply->members[1].status().ToString();
  EXPECT_TRUE(reply->members[1]->similarity);
  ASSERT_FALSE(reply->members[2].ok());

  // The exact member matches the same formulation replayed in process on
  // the session's pinned snapshot.
  PragueSession replay(manager_->current());
  NodeId a = replay.AddNode(kC);
  NodeId b = replay.AddNode(kS);
  NodeId c = replay.AddNode(kC);
  ASSERT_TRUE(replay.AddEdge(a, b).ok());
  ASSERT_TRUE(replay.AddEdge(b, c).ok());
  Result<QueryResults> expected = replay.Run(nullptr);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(reply->members[0]->exact, expected->exact);

  // The batch counters moved.
  Result<std::string> metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(PrometheusSample(*metrics, "prague_server_cmd_batch_run_total"),
            0.0);
  EXPECT_GT(PrometheusSample(*metrics, "prague_server_batch_size_count"),
            0.0);
  EXPECT_GT(
      PrometheusSample(*metrics, "prague_server_batch_latency_us_count"),
      0.0);

  EXPECT_TRUE(client.Close().ok());
}

TEST(PragueClientTest, UnmatchedReplyIdIsProtocolError) {
  // An impostor server that answers the first request with a reply tagged
  // by a request id the client never issued.
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  std::thread impostor([&] {
    int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) return;
    Result<WireFrame> request = RecvFrame(fd);
    if (request.ok()) {
      Status ignored =
          SendFrame(fd, FrameType::kResponse, "#42 OK session=1 version=0");
      (void)ignored;
    }
    ::close(fd);
  });

  PragueClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ntohs(addr.sin_port)).ok());
  Result<OpenReply> open = client.Open();
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.status().code(), Status::Code::kProtocolError);
  // The violation poisons the connection: later calls fail the same way.
  Result<StatsReply> stats = client.Stats();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), Status::Code::kProtocolError);
  impostor.join();
  ::close(listener);
}

TEST_F(ServerFixture, HundredsOfConcurrentConnectionsServeLockstep) {
  // Several hundred sockets held open simultaneously, each running a full
  // OPEN -> ADD_EDGE -> RUN -> CLOSE conversation while all the others
  // stay connected. The CI reactor-stress job raises the count via the
  // environment.
  size_t conns = 300;
  if (const char* env = std::getenv("PRAGUE_STRESS_CONNECTIONS")) {
    conns = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  std::vector<PragueClient> clients(conns);
  for (size_t i = 0; i < conns; ++i) {
    ASSERT_TRUE(ConnectClient(&clients[i]).ok()) << "connect " << i;
    Result<OpenReply> open = clients[i].Open();
    ASSERT_TRUE(open.ok()) << i << ": " << open.status().ToString();
  }
  Result<StatsReply> stats = clients[0].Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->open_sessions, conns);

  // The connections gauge tracks the live count.
  Result<std::string> metrics = clients[0].Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(PrometheusSample(*metrics, "prague_server_connections_open"),
            static_cast<double>(conns));

  for (size_t i = 0; i < conns; ++i) {
    ASSERT_TRUE(clients[i].AddEdge(1, "C", 2, "S").ok()) << i;
    Result<RunReply> run = clients[i].Run();
    ASSERT_TRUE(run.ok()) << i << ": " << run.status().ToString();
    EXPECT_FALSE(run->truncated) << i;
  }
  for (size_t i = 0; i < conns; ++i) {
    EXPECT_TRUE(clients[i].Close().ok()) << i;
  }
  EXPECT_GE(server_->connections_accepted(), conns);
}

// ---------------------------------------------------------------------------
// The acceptance test: concurrent wire clients vs in-process replay.

// One scripted formulation step.
struct WireOp {
  bool del = false;
  uint32_t u = 0;
  const char* u_label = "";
  uint32_t v = 0;
  const char* v_label = "";
};

// Per-client scripts: all share the C-S-C core; variants add similarity
// pressure (pendant N has no exact match anywhere) and Modify actions.
std::vector<WireOp> ScriptFor(int client) {
  std::vector<WireOp> ops = {
      {false, 1, "C", 2, "S"},
      {false, 2, "S", 3, "C"},
  };
  switch (client % 4) {
    case 0:
      break;  // plain exact path
    case 1:  // add then delete a pendant O (Modify action)
      ops.push_back({false, 1, "C", 4, "O"});
      ops.push_back({true, 1, "", 4, ""});
      break;
    case 2:  // pendant N: no exact match -> similarity mode
      ops.push_back({false, 3, "C", 5, "N"});
      break;
    case 3:  // triangle then delete one leg
      ops.push_back({false, 1, "C", 3, "C"});
      ops.push_back({true, 1, "", 2, ""});
      break;
  }
  return ops;
}

// Replays a script on an in-process session, mirroring the server's
// handle bookkeeping (first appearance creates the node, edges tracked by
// unordered handle pair).
Result<QueryResults> ReplayScript(const SnapshotPtr& snapshot,
                                  const std::vector<WireOp>& ops) {
  PragueSession session(snapshot);
  std::map<uint32_t, NodeId> nodes;
  std::map<std::pair<uint32_t, uint32_t>, FormulationId> edges;
  auto key = [](uint32_t u, uint32_t v) {
    return std::make_pair(std::min(u, v), std::max(u, v));
  };
  for (const WireOp& op : ops) {
    if (op.del) {
      Result<StepReport> step = session.DeleteEdge(edges.at(key(op.u, op.v)));
      if (!step.ok()) return step.status();
      edges.erase(key(op.u, op.v));
    } else {
      for (auto [handle, label] :
           {std::pair<uint32_t, const char*>{op.u, op.u_label},
            std::pair<uint32_t, const char*>{op.v, op.v_label}}) {
        if (nodes.count(handle)) continue;
        Result<NodeId> id = session.AddNodeByName(label);
        if (!id.ok()) return id.status();
        nodes[handle] = *id;
      }
      Result<StepReport> step = session.AddEdge(nodes[op.u], nodes[op.v]);
      if (!step.ok()) return step.status();
      edges[key(op.u, op.v)] = step->edge;
    }
  }
  return session.Run(nullptr);
}

TEST_F(ServerFixture, ConcurrentClientsMatchReplayWhileAppenderPublishes) {
  constexpr int kClients = 8;
  constexpr int kAppends = 10;

  // Every published snapshot, by version, so each client's RUN can be
  // replayed on exactly the version its session pinned.
  std::mutex snapshots_mu;
  std::map<uint64_t, SnapshotPtr> snapshots;
  {
    std::lock_guard<std::mutex> lock(snapshots_mu);
    snapshots[manager_->current()->version()] = manager_->current();
  }

  std::atomic<bool> failed{false};
  std::vector<uint64_t> pinned(kClients, 0);
  std::vector<RunReply> replies(kClients);
  std::vector<std::string> errors(kClients);

  std::vector<std::thread> threads;
  threads.reserve(kClients + 1);
  threads.emplace_back([&] {
    for (int i = 0; i < kAppends; ++i) {
      auto report = manager_->Append(
          {testing::MakeGraph({kC, kS, kO}, {{0, 1}, {1, 2}})}, 0.34);
      if (!report.ok()) {
        failed.store(true);
        return;
      }
      std::lock_guard<std::mutex> lock(snapshots_mu);
      snapshots[manager_->current()->version()] = manager_->current();
    }
  });
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto fail = [&](const Status& st) {
        errors[i] = st.ToString();
        failed.store(true);
      };
      PragueClient client;
      if (Status st = ConnectClient(&client); !st.ok()) return fail(st);
      Result<OpenReply> open = client.Open();
      if (!open.ok()) return fail(open.status());
      pinned[i] = open->version;
      for (const WireOp& op : ScriptFor(i)) {
        if (op.del) {
          Result<StepReply> step = client.DeleteEdge(op.u, op.v);
          if (!step.ok()) return fail(step.status());
        } else {
          Result<StepReply> step =
              client.AddEdge(op.u, op.u_label, op.v, op.v_label);
          if (!step.ok()) return fail(step.status());
        }
      }
      Result<RunReply> run = client.Run();
      if (!run.ok()) return fail(run.status());
      replies[i] = std::move(*run);
      if (Status st = client.Close(); !st.ok()) return fail(st);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(errors[i].empty()) << "client " << i << ": " << errors[i];
  }
  ASSERT_FALSE(failed.load());

  for (int i = 0; i < kClients; ++i) {
    SCOPED_TRACE("client " + std::to_string(i) + " pinned version " +
                 std::to_string(pinned[i]));
    SnapshotPtr snapshot;
    {
      std::lock_guard<std::mutex> lock(snapshots_mu);
      auto it = snapshots.find(pinned[i]);
      ASSERT_NE(it, snapshots.end());
      snapshot = it->second;
    }
    Result<QueryResults> expected = ReplayScript(snapshot, ScriptFor(i));
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    EXPECT_FALSE(replies[i].truncated);
    EXPECT_EQ(replies[i].similarity, expected->similarity);
    EXPECT_EQ(replies[i].exact, expected->exact);
    ASSERT_EQ(replies[i].similar.size(), expected->similar.size());
    for (size_t m = 0; m < expected->similar.size(); ++m) {
      EXPECT_EQ(replies[i].similar[m].gid, expected->similar[m].gid);
      EXPECT_EQ(replies[i].similar[m].distance, expected->similar[m].distance);
    }
    // Matches stay within the pinned |D|: no appended graph leaks in.
    for (GraphId gid : replies[i].exact) {
      EXPECT_LT(gid, snapshot->db().size());
    }
  }

  EXPECT_EQ(manager_->Stats().current_version,
            static_cast<uint64_t>(kAppends));
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines over the wire, on a database heavy enough
// that RUN takes visible wall time (same construction as
// test_cancellation's HeavyAidsQuery).

// A database built to make RUN genuinely slow: many graphs behind an
// index mined so shallow (3-edge fragments at 40% support) that it prunes
// almost nothing, forcing the similarity path to MCCS-verify a huge
// candidate set. test_cancellation's AidsFixture query finishes in under
// a millisecond here, which cannot exercise deadlines over the wire.
struct HeavyWireFixture {
  GraphDatabase db;
  MiningResult mined;
  ActionAwareIndexes indexes;
  VisualQuerySpec query;
  /// Version-0 snapshot over db/indexes, borrowed once at fixture build
  /// time (immortal static) — tests share it instead of re-borrowing.
  SnapshotPtr snapshot;

  static const HeavyWireFixture& Get() {
    static HeavyWireFixture* fixture = [] {
      auto* f = new HeavyWireFixture();
      AidsGeneratorConfig config;
      config.graph_count = 12000;
      config.seed = 23;
      f->db = GenerateAidsLikeDatabase(config);
      MiningConfig mining;
      mining.min_support_ratio = 0.4;
      mining.max_fragment_edges = 3;
      Result<MiningResult> mined = MineFragments(f->db, mining);
      if (!mined.ok()) std::abort();
      f->mined = std::move(*mined);
      A2fConfig a2f;
      a2f.beta = 2;
      f->indexes = BuildActionAwareIndexes(f->mined, a2f);
      f->snapshot = DatabaseSnapshot::Borrow(&f->db, &f->indexes);
      WorkloadGenerator workload(&f->db, 47);
      for (auto [edges, mutations] : {std::pair<size_t, int>{12, 3},
                                      {10, 3},
                                      {8, 3},
                                      {8, 2},
                                      {8, 1}}) {
        Result<VisualQuerySpec> s =
            workload.SimilarityQuery(edges, mutations, "heavy");
        if (s.ok()) {
          f->query = std::move(*s);
          return f;
        }
      }
      std::abort();
    }();
    return *fixture;
  }
};

const VisualQuerySpec& HeavyAidsQuery() { return HeavyWireFixture::Get().query; }

class HeavyServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto& fixture = HeavyWireFixture::Get();
    manager_ = std::make_unique<SessionManager>(fixture.snapshot);
    server_ = std::make_unique<PragueServer>(manager_.get(),
                                             PragueServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  // Feeds the heavy similarity query over the wire.
  static Status FeedHeavy(PragueClient* client) {
    const VisualQuerySpec& spec = HeavyAidsQuery();
    const auto& labels = HeavyWireFixture::Get().db.labels();
    std::map<NodeId, uint32_t> handle_of;
    uint32_t next_handle = 1;
    for (EdgeId e : spec.sequence) {
      const Edge& edge = spec.graph.GetEdge(e);
      for (NodeId n : {edge.u, edge.v}) {
        if (!handle_of.count(n)) handle_of[n] = next_handle++;
      }
      Result<StepReply> step = client->AddEdge(
          handle_of[edge.u], labels.Name(spec.graph.NodeLabel(edge.u)),
          handle_of[edge.v], labels.Name(spec.graph.NodeLabel(edge.v)),
          edge.label);
      PRAGUE_RETURN_NOT_OK(step.status());
    }
    return Status::OK();
  }

  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<PragueServer> server_;
};

TEST_F(HeavyServerFixture, CancelTruncatesRunInFlight) {
  PragueClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Open().ok());  // unbounded budget
  ASSERT_TRUE(FeedHeavy(&client).ok());

  Result<RunReply> run = Status::IOError("never ran");
  std::atomic<bool> run_sent{false};
  std::thread runner([&] {
    run_sent.store(true);
    run = client.Run();
  });
  // Wait until the runner is at the send, give the RUN frame a moment to
  // reach the server, then cancel from this thread through the same
  // connection — the wire image of ManagedSession::Cancel. The handler
  // marks the run in flight before it reads the next frame, so once the
  // RUN frame is ahead of the CANCEL frame the cancel cannot be dropped,
  // and the unbounded run takes orders of magnitude longer than the gap.
  while (!run_sent.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(client.Cancel().ok());
  runner.join();

  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->truncated);
  EXPECT_NE(run->deadline_phase, "none");

  // The session survives the cancellation: a fresh RUN (re-armed token)
  // completes normally and matches an in-process replay.
  Result<RunReply> again = client.Run();
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(again->truncated);
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(HeavyServerFixture, PerSessionDeadlineReportsTruncationAndPhase) {
  PragueClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Open(1).ok());  // 1 ms Run() budget
  ASSERT_TRUE(FeedHeavy(&client).ok());

  Result<RunReply> run = client.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->truncated);
  EXPECT_NE(run->deadline_phase, "none");
  EXPECT_TRUE(client.Close().ok());
}

// The PragueClient is lock-step by design, so the only way to race a
// second command against an in-flight RUN on the same connection is to
// speak raw frames.
TEST_F(HeavyServerFixture, CommandsDuringRunAreRejectedExceptCancel) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // The test queues RUN, STATS and CANCEL back to back; Nagle would park
  // the latter two behind the unacknowledged RUN segment.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto round_trip = [&](const WireCommand& cmd) -> Result<std::string> {
    PRAGUE_RETURN_NOT_OK(SendFrame(fd, FrameType::kRequest, FormatCommand(cmd)));
    PRAGUE_ASSIGN_OR_RETURN(WireFrame frame, RecvFrame(fd));
    return std::move(frame.payload);
  };

  WireCommand open;
  open.kind = CommandKind::kOpen;
  Result<std::string> opened = round_trip(open);
  ASSERT_TRUE(opened.ok() && DecodeReplyStatus(*opened).ok());

  const VisualQuerySpec& spec = HeavyAidsQuery();
  const auto& labels = HeavyWireFixture::Get().db.labels();
  std::map<NodeId, uint32_t> handle_of;
  uint32_t next_handle = 1;
  for (EdgeId e : spec.sequence) {
    const Edge& edge = spec.graph.GetEdge(e);
    for (NodeId n : {edge.u, edge.v}) {
      if (!handle_of.count(n)) handle_of[n] = next_handle++;
    }
    WireCommand add;
    add.kind = CommandKind::kAddEdge;
    add.u = handle_of[edge.u];
    add.u_label = labels.Name(spec.graph.NodeLabel(edge.u));
    add.v = handle_of[edge.v];
    add.v_label = labels.Name(spec.graph.NodeLabel(edge.v));
    add.edge_label = edge.label;
    Result<std::string> step = round_trip(add);
    ASSERT_TRUE(step.ok() && DecodeReplyStatus(*step).ok());
  }

  // RUN without reading its reply, then STATS while the run is in flight,
  // then CANCEL to end the run. Replies are ordered per connection, so we
  // must see the STATS rejection first and the (truncated) RUN reply next.
  WireCommand run;
  run.kind = CommandKind::kRun;
  ASSERT_TRUE(SendFrame(fd, FrameType::kRequest, FormatCommand(run)).ok());
  // No sleep needed: the handler marks the run in flight before reading
  // the next frame, so a STATS queued right behind RUN is always rejected.
  WireCommand stats;
  stats.kind = CommandKind::kStats;
  ASSERT_TRUE(SendFrame(fd, FrameType::kRequest, FormatCommand(stats)).ok());
  WireCommand cancel;
  cancel.kind = CommandKind::kCancel;
  ASSERT_TRUE(SendFrame(fd, FrameType::kRequest, FormatCommand(cancel)).ok());

  Result<WireFrame> first = RecvFrame(fd);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Status rejection = DecodeReplyStatus(first->payload);
  ASSERT_FALSE(rejection.ok()) << first->payload;
  EXPECT_EQ(rejection.code(), Status::Code::kFailedPrecondition);

  Result<WireFrame> second = RecvFrame(fd);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  Result<RunReply> reply = ParseRunReply(second->payload);
  ASSERT_TRUE(reply.ok()) << second->payload;
  EXPECT_TRUE(reply->truncated);

  WireCommand close;
  close.kind = CommandKind::kClose;
  Result<std::string> bye = round_trip(close);
  EXPECT_TRUE(bye.ok() && DecodeReplyStatus(*bye).ok());
  ::close(fd);
}

// The ISSUE acceptance property: CANCEL of one specific pipelined RUN by
// request id lands mid-run — that run comes back truncated while the run
// pipelined behind it completes untouched.
TEST_F(HeavyServerFixture, CancelByIdTruncatesOnlyThatPipelinedRun) {
  PragueClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Open().ok());  // unbounded budget
  ASSERT_TRUE(FeedHeavy(&client).ok());

  Result<uint64_t> first = client.StartRun();
  Result<uint64_t> second = client.StartRun();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // Frames are ordered per connection, so by the time the CANCEL frame is
  // dispatched the first RUN is in flight (active or queued); the
  // unbounded heavy run takes orders of magnitude longer than this gap.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(client.CancelRun(*first).ok());

  Result<RunReply> r1 = client.WaitRun(*first);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(r1->truncated);
  EXPECT_NE(r1->deadline_phase, "none");

  // The run behind it re-arms the token and completes normally.
  Result<RunReply> r2 = client.WaitRun(*second);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_FALSE(r2->truncated);
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(HeavyServerFixture, DuplicateInFlightRequestIdIsProtocolError) {
  RawConn conn(server_->port());
  ASSERT_GE(conn.fd, 0);
  Result<std::string> opened = conn.RoundTrip("OPEN");
  ASSERT_TRUE(opened.ok() && DecodeReplyStatus(*opened).ok());

  const VisualQuerySpec& spec = HeavyAidsQuery();
  const auto& labels = HeavyWireFixture::Get().db.labels();
  std::map<NodeId, uint32_t> handle_of;
  uint32_t next_handle = 1;
  for (EdgeId e : spec.sequence) {
    const Edge& edge = spec.graph.GetEdge(e);
    for (NodeId n : {edge.u, edge.v}) {
      if (!handle_of.count(n)) handle_of[n] = next_handle++;
    }
    WireCommand add;
    add.kind = CommandKind::kAddEdge;
    add.u = handle_of[edge.u];
    add.u_label = labels.Name(spec.graph.NodeLabel(edge.u));
    add.v = handle_of[edge.v];
    add.v_label = labels.Name(spec.graph.NodeLabel(edge.v));
    add.edge_label = edge.label;
    Result<std::string> step = conn.RoundTrip(FormatCommand(add));
    ASSERT_TRUE(step.ok() && DecodeReplyStatus(*step).ok());
  }

  // Same id twice while the first is still running, then CANCEL it by id
  // to end the test quickly. The duplicate is rejected immediately with a
  // typed PROTOCOL_ERROR carrying the id; the real run replies after.
  ASSERT_TRUE(conn.SendPayload("#4 RUN").ok());
  ASSERT_TRUE(conn.SendPayload("#4 RUN").ok());
  ASSERT_TRUE(conn.SendPayload("CANCEL 4").ok());

  Result<std::string> rejection = conn.Recv();
  ASSERT_TRUE(rejection.ok()) << rejection.status().ToString();
  Result<std::pair<uint64_t, std::string_view>> rej_split =
      SplitFrameId(*rejection);
  ASSERT_TRUE(rej_split.ok());
  EXPECT_EQ(rej_split->first, 4u);
  EXPECT_EQ(DecodeReplyStatus(rej_split->second).code(),
            Status::Code::kProtocolError)
      << *rejection;

  Result<std::string> reply = conn.Recv();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  Result<std::pair<uint64_t, std::string_view>> run_split =
      SplitFrameId(*reply);
  ASSERT_TRUE(run_split.ok());
  EXPECT_EQ(run_split->first, 4u);
  Result<RunReply> run = ParseRunReply(run_split->second);
  ASSERT_TRUE(run.ok()) << *reply;
  EXPECT_TRUE(run->truncated);

  Result<std::string> bye = conn.RoundTrip("CLOSE");
  ASSERT_TRUE(bye.ok());
  EXPECT_TRUE(DecodeReplyStatus(*bye).ok());
}

TEST_F(HeavyServerFixture, BatchRunMembersHonorTheSessionBudget) {
  PragueClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Open(1).ok());  // 1 ms Run() budget per member

  // Render the heavy query in pattern syntax, in formulation order, with
  // each node labeled exactly once.
  const VisualQuerySpec& spec = HeavyAidsQuery();
  const auto& labels = HeavyWireFixture::Get().db.labels();
  std::set<NodeId> declared;
  auto node_ref = [&](NodeId n) {
    std::string out = "(n" + std::to_string(n);
    if (declared.insert(n).second) {
      out += ':';
      out += labels.Name(spec.graph.NodeLabel(n));
    }
    out += ')';
    return out;
  };
  std::string heavy_pattern;
  for (EdgeId e : spec.sequence) {
    const Edge& edge = spec.graph.GetEdge(e);
    if (!heavy_pattern.empty()) heavy_pattern += ", ";
    heavy_pattern += node_ref(edge.u);
    heavy_pattern += edge.label != 0
                         ? "-[" + std::to_string(edge.label) + "]-"
                         : "-";
    heavy_pattern += node_ref(edge.v);
  }

  std::vector<std::string> patterns = {heavy_pattern, "(a:NoSuchLabel)-(b:C)"};
  Result<BatchRunReply> reply = client.BatchRun(patterns);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->members.size(), 2u);
  ASSERT_TRUE(reply->members[0].ok())
      << reply->members[0].status().ToString();
  // The 1 ms session budget cuts the heavy member.
  EXPECT_TRUE(reply->members[0]->truncated);
  // The unknown label fails only its member, not the batch.
  EXPECT_FALSE(reply->members[1].ok());
  EXPECT_TRUE(client.Close().ok());
}

// ---------------------------------------------------------------------------
// Admission control & load shedding: wire grammar, the BUSY codec, and the
// quotas end to end over loopback.

TEST(WireCommandTest, OpenTenantParses) {
  Result<WireCommand> open = ParseCommand("OPEN tenant=alpha");
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ(open->kind, CommandKind::kOpen);
  EXPECT_EQ(open->timeout_ms, -1);
  EXPECT_EQ(open->tenant, "alpha");

  Result<WireCommand> both = ParseCommand("OPEN 250 tenant=team-7");
  ASSERT_TRUE(both.ok()) << both.status().ToString();
  EXPECT_EQ(both->timeout_ms, 250);
  EXPECT_EQ(both->tenant, "team-7");

  // Token order does not matter.
  Result<WireCommand> swapped = ParseCommand("OPEN tenant=team-7 250");
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(swapped->timeout_ms, 250);
  EXPECT_EQ(swapped->tenant, "team-7");

  // Format/parse inverse with both fields on.
  WireCommand cmd;
  cmd.kind = CommandKind::kOpen;
  cmd.timeout_ms = 30;
  cmd.tenant = "blue";
  Result<WireCommand> back = ParseCommand(FormatCommand(cmd));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->timeout_ms, 30);
  EXPECT_EQ(back->tenant, "blue");
}

TEST(WireCommandTest, OpenTenantTypedParseErrors) {
  for (const char* bad :
       {"OPEN tenant=", "OPEN tenant=a tenant=b", "OPEN 1 2",
        "OPEN 1 tenant=a 2", "OPEN -7 tenant=a"}) {
    Result<WireCommand> r = ParseCommand(bad);
    ASSERT_FALSE(r.ok()) << "accepted '" << bad << "'";
    EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument) << bad;
  }
}

TEST(WireReplyTest, BusyReplyDecodesToTypedStatus) {
  const std::string payload = FormatBusyReply(150);
  EXPECT_EQ(payload, "BUSY 150");
  Status shed = DecodeReplyStatus(payload);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(IsBusy(shed)) << shed.ToString();
  EXPECT_EQ(BusyRetryAfterMillis(shed), 150);

  // Id-tagged BUSY replies split like any other reply.
  const std::string tagged = "#9 " + FormatBusyReply(20);
  Result<std::pair<uint64_t, std::string_view>> split = SplitFrameId(tagged);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ(split->first, 9u);
  EXPECT_TRUE(IsBusy(DecodeReplyStatus(split->second)));

  // A bare BUSY decodes Busy with no usable hint.
  Status bare = DecodeReplyStatus("BUSY");
  EXPECT_TRUE(IsBusy(bare));
  EXPECT_EQ(BusyRetryAfterMillis(bare), -1);
  EXPECT_FALSE(IsBusy(Status::OK()));
  EXPECT_EQ(BusyRetryAfterMillis(Status::Busy("no hint")), -1);
  // BUSY must be a whole token, not a prefix.
  EXPECT_EQ(DecodeReplyStatus("BUSYX").code(), Status::Code::kCorruption);
}

TEST(WireReplyTest, InternalAndBusyErrorTokensRoundTrip) {
  const Status internal = Status::Internal("invariant violated");
  const std::string internal_payload = EncodeErrorReply(internal);
  EXPECT_NE(internal_payload.find("INTERNAL"), std::string::npos);
  EXPECT_EQ(DecodeReplyStatus(internal_payload), internal);

  const Status busy = Status::Busy("bucket empty; retry_after_ms=40");
  const Status decoded = DecodeReplyStatus(EncodeErrorReply(busy));
  EXPECT_TRUE(IsBusy(decoded)) << decoded.ToString();
  EXPECT_EQ(BusyRetryAfterMillis(decoded), 40);
}

TEST(WireReplyTest, StatsReplyCarriesShedAndTenants) {
  SessionManagerStats stats;
  stats.current_version = 2;
  stats.runs_shed = 7;
  stats.tenants = 3;
  Result<StatsReply> reply = ParseStatsReply(FormatStatsReply(stats));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->runs_shed, 7u);
  EXPECT_EQ(reply->tenants, 3u);

  // A payload from a pre-admission server (no shed=/tenants= tokens)
  // still parses; the fields default to zero.
  std::string legacy = FormatStatsReply(stats);
  for (const std::string key : {" shed=7", " tenants=3"}) {
    const size_t at = legacy.find(key);
    ASSERT_NE(at, std::string::npos) << legacy;
    legacy.erase(at, key.size());
  }
  Result<StatsReply> old = ParseStatsReply(legacy);
  ASSERT_TRUE(old.ok()) << old.status().ToString();
  EXPECT_EQ(old->runs_shed, 0u);
  EXPECT_EQ(old->tenants, 0u);
}

// Server fixture with caller-chosen options (the stock ServerFixture runs
// with admission off, as production defaults do).
class AdmissionFixture : public ::testing::Test {
 protected:
  void StartServer(PragueServerOptions options) {
    manager_ = std::make_unique<SessionManager>(FreshTinySnapshot());
    options.port = 0;  // ephemeral
    if (options.worker_threads == 0) options.worker_threads = 4;
    server_ = std::make_unique<PragueServer>(manager_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override {
    if (server_) server_->Stop();
  }
  Status ConnectClient(PragueClient* client) {
    return client->Connect("127.0.0.1", server_->port());
  }

  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<PragueServer> server_;
};

TEST_F(AdmissionFixture, TenantRateLimitShedsRunsWithRetryAfter) {
  PragueServerOptions options;
  // Derived burst max(2 * rate, 4) = 4, then one token per 1000 seconds:
  // no refill can land inside the test.
  options.tenant_rate = 0.001;
  StartServer(options);

  PragueClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  ASSERT_TRUE(client.Open(-1, "hog").ok());
  ASSERT_TRUE(client.AddEdge(1, "C", 2, "S").ok());
  for (int i = 0; i < 4; ++i) {
    Result<RunReply> r = client.Run();
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
  }
  Result<RunReply> shed = client.Run();
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(IsBusy(shed.status())) << shed.status().ToString();
  EXPECT_GE(BusyRetryAfterMillis(shed.status()), 1);

  // Shedding is flow control, not an error: the connection and its session
  // survive, and STATS reports the shed and the tracked tenant.
  Result<StatsReply> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->runs_shed, 1u);
  EXPECT_GE(stats->tenants, 1u);
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(AdmissionFixture, SessionQuotaShedsSecondConnection) {
  PragueServerOptions options;
  options.max_sessions_per_tenant = 1;
  StartServer(options);

  PragueClient first;
  ASSERT_TRUE(ConnectClient(&first).ok());
  ASSERT_TRUE(first.Open(-1, "team").ok());

  PragueClient second;
  ASSERT_TRUE(ConnectClient(&second).ok());
  Result<OpenReply> refused = second.Open(-1, "team");
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(IsBusy(refused.status())) << refused.status().ToString();
  EXPECT_GE(BusyRetryAfterMillis(refused.status()), 1);

  // The shed connection is still usable: a different tenant fits.
  Result<OpenReply> other = second.Open(-1, "other");
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  EXPECT_TRUE(second.Close().ok());

  // Closing the first session frees the slot. The release happens on the
  // server's connection teardown, which the CLOSE reply slightly precedes,
  // so honor the BUSY contract and retry briefly.
  EXPECT_TRUE(first.Close().ok());
  PragueClient third;
  ASSERT_TRUE(ConnectClient(&third).ok());
  Result<OpenReply> reopened = third.Open(-1, "team");
  for (int attempt = 0; attempt < 200 && !reopened.ok(); ++attempt) {
    ASSERT_TRUE(IsBusy(reopened.status())) << reopened.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    reopened = third.Open(-1, "team");
  }
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(third.Close().ok());
}

TEST_F(AdmissionFixture, HostileTenantDoesNotStarveWellBehavedTenant) {
  PragueServerOptions options;
  options.tenant_rate = 0.001;  // burst of 4 per tenant
  StartServer(options);

  // The hostile tenant floods runs; only its burst is admitted.
  PragueClient hostile;
  ASSERT_TRUE(ConnectClient(&hostile).ok());
  ASSERT_TRUE(hostile.Open(-1, "flood").ok());
  ASSERT_TRUE(hostile.AddEdge(1, "C", 2, "S").ok());
  int admitted = 0;
  int shed = 0;
  for (int i = 0; i < 12; ++i) {
    Result<RunReply> r = hostile.Run();
    if (r.ok()) {
      ++admitted;
    } else {
      ASSERT_TRUE(IsBusy(r.status())) << r.status().ToString();
      ++shed;
    }
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(shed, 8);

  // The well-behaved tenant runs as if the flood never happened: its own
  // bucket, its own quota.
  PragueClient victim;
  ASSERT_TRUE(ConnectClient(&victim).ok());
  ASSERT_TRUE(victim.Open(-1, "victim").ok());
  ASSERT_TRUE(victim.AddEdge(1, "C", 2, "S").ok());
  for (int i = 0; i < 3; ++i) {
    Result<RunReply> r = victim.Run();
    EXPECT_TRUE(r.ok()) << i << ": " << r.status().ToString();
  }
  EXPECT_TRUE(hostile.Close().ok());
  EXPECT_TRUE(victim.Close().ok());
}

TEST_F(AdmissionFixture, AnonymousConnectionsGetTheirOwnTenants) {
  PragueServerOptions options;
  options.tenant_rate = 0.001;
  StartServer(options);

  PragueClient a;
  PragueClient b;
  ASSERT_TRUE(ConnectClient(&a).ok());
  ASSERT_TRUE(ConnectClient(&b).ok());
  ASSERT_TRUE(a.Open().ok());
  ASSERT_TRUE(b.Open().ok());
  ASSERT_TRUE(a.AddEdge(1, "C", 2, "S").ok());
  ASSERT_TRUE(b.AddEdge(1, "C", 2, "S").ok());

  // Draining a's bucket leaves b untouched: every unnamed connection is
  // its own tenant.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(a.Run().ok()) << i;
  Result<RunReply> shed = a.Run();
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(IsBusy(shed.status())) << shed.status().ToString();
  EXPECT_TRUE(b.Run().ok());
  EXPECT_TRUE(a.Close().ok());
  EXPECT_TRUE(b.Close().ok());
}

TEST_F(AdmissionFixture, PipelinedShedEchoesRequestId) {
  PragueServerOptions options;
  options.tenant_rate = 0.001;
  StartServer(options);

  PragueClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  ASSERT_TRUE(client.Open(-1, "pipeline").ok());
  ASSERT_TRUE(client.AddEdge(1, "C", 2, "S").ok());
  std::vector<uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    Result<uint64_t> id = client.StartRun();
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  // The first four fit the burst; the fifth is shed at enqueue, and its
  // BUSY reply carries that request id, so the demultiplexer pairs it
  // correctly while the admitted runs complete unharmed.
  for (int i = 0; i < 4; ++i) {
    Result<RunReply> r = client.WaitRun(ids[i]);
    EXPECT_TRUE(r.ok()) << i << ": " << r.status().ToString();
  }
  Result<RunReply> shed = client.WaitRun(ids[4]);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(IsBusy(shed.status())) << shed.status().ToString();
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(AdmissionFixture, AcceptShedsCleanlyOnFdExhaustion) {
  StartServer(PragueServerOptions{});
  PragueClient before;
  ASSERT_TRUE(ConnectClient(&before).ok());
  ASSERT_TRUE(before.Open().ok());

  obs::Counter* sheds = obs::ServerMetrics::Get().accepts_shed_total;
  const uint64_t sheds_before = sheds->Value();

  rlimit old_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old_limit), 0);
  rlimit tight = old_limit;
  tight.rlim_cur = std::min<rlim_t>(512, old_limit.rlim_max);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);

  // Hoard every free descriptor slot below the lowered limit...
  std::vector<int> hoard;
  for (;;) {
    int fd = ::open("/dev/null", O_RDONLY);
    if (fd < 0) {
      ASSERT_EQ(errno, EMFILE);
      break;
    }
    hoard.push_back(fd);
  }
  ASSERT_FALSE(hoard.empty());
  // ...then free exactly one for the victim's client-side socket. The TCP
  // handshake completes in the kernel regardless, but the server-side
  // accept(2) has no descriptor left and hits EMFILE.
  ::close(hoard.back());
  hoard.pop_back();

  int victim = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(victim, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::connect(victim, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // The spare-descriptor path drains the pending connection and closes it
  // instead of busy-spinning the accept loop: the victim sees a clean EOF
  // (a timeout here would mean the connection was left parked in the
  // backlog forever).
  timeval timeout{10, 0};
  ::setsockopt(victim, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  char byte = 0;
  EXPECT_EQ(::recv(victim, &byte, 1, 0), 0);
  ::close(victim);

  for (int fd : hoard) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old_limit), 0);

  EXPECT_GT(sheds->Value(), sheds_before);
  // The crunch harmed nobody already connected...
  EXPECT_TRUE(before.Stats().ok());
  // ...and new connections are accepted again once descriptors return.
  PragueClient after;
  ASSERT_TRUE(ConnectClient(&after).ok());
  EXPECT_TRUE(after.Open().ok());
  EXPECT_TRUE(after.Close().ok());
  EXPECT_TRUE(before.Close().ok());
}

TEST_F(AdmissionFixture, SlowReaderOutboundQueueCapClosesConnection) {
  PragueServerOptions options;
  options.max_outbound_bytes = 64 * 1024;
  StartServer(options);

  obs::Counter* drops = obs::ServerMetrics::Get().write_queue_drops_total;
  const uint64_t drops_before = drops->Value();

  // Pin a tiny receive buffer: with autotuning the kernel would grow the
  // client's window to tens of megabytes and absorb the whole backlog.
  RawConn conn(server_->port(), /*rcvbuf=*/16 * 1024);
  ASSERT_GE(conn.fd, 0);
  timeval timeout{30, 0};
  ::setsockopt(conn.fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  Result<std::string> opened = conn.RoundTrip("OPEN");
  ASSERT_TRUE(opened.ok() && DecodeReplyStatus(*opened).ok());

  // Request far more reply bytes than the cap plus the server-side kernel
  // send buffer, without reading any of it. Each METRICS reply is the full
  // Prometheus exposition (kilobytes).
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(conn.SendPayload("METRICS").ok()) << i;
  }

  // Stay slow: do not read until the server has given up on us. The reply
  // volume exceeds the kernel's absorption many times over, so the
  // overflow is guaranteed once the server works through the requests.
  for (int i = 0; i < 1000 && drops->Value() == drops_before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GT(drops->Value(), drops_before);

  // Drain: some OK replies that were in flight, then the typed error the
  // server queued when it gave up on us, then EOF.
  bool saw_typed_error = false;
  for (;;) {
    Result<WireFrame> frame = RecvFrame(conn.fd);
    if (!frame.ok()) {
      EXPECT_TRUE(IsConnectionClosed(frame.status()))
          << frame.status().ToString();
      break;
    }
    const Status status = DecodeReplyStatus(frame->payload);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), Status::Code::kFailedPrecondition)
          << frame->payload;
      saw_typed_error = true;
    }
  }
  EXPECT_TRUE(saw_typed_error);
  EXPECT_GT(drops->Value(), drops_before);
}

TEST_F(ServerFixture, HugeOpenTimeoutIsEffectivelyUnbounded) {
  PragueClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  Result<OpenReply> open = client.Open(std::numeric_limits<int64_t>::max());
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  ASSERT_TRUE(client.AddEdge(1, "C", 2, "S").ok());
  Result<RunReply> run = client.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // The budget saturates to the far future instead of wrapping negative
  // (which used to make every run "already expired", hence truncated).
  EXPECT_FALSE(run->truncated);
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(ServerFixture, NegativeOpenTimeoutIsATypedWireError) {
  RawConn conn(server_->port());
  ASSERT_GE(conn.fd, 0);
  Result<std::string> reply = conn.RoundTrip("OPEN -5");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const Status status = DecodeReplyStatus(*reply);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  // The rejection did not open a session: a well-formed OPEN still works.
  Result<std::string> good = conn.RoundTrip("OPEN");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(DecodeReplyStatus(*good).ok());
}

}  // namespace
}  // namespace prague
