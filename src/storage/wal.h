// Write-ahead log: the durability point of every database mutation.
//
// A mutation is acknowledged only after its WAL record is on disk
// (written + fsync'd); the COW snapshot publish happens strictly after.
// Crash at any point then loses nothing acknowledged: recovery replays
// the log tail over the last checkpointed segment (storage/recovery.h).
//
// Record format (little-endian, framing per util/bytes idiom):
//
//   u32 payload_length | u8 type | u32 crc32c(type ‖ payload) | payload
//
// The CRC covers the type byte and the payload, so a bit flip anywhere in
// a record — or a torn final write — is detected. A reader stops at the
// first invalid record and reports how many valid bytes precede it; the
// writer truncates the torn tail before appending again, which keeps "the
// log prefix up to the last valid record" the single source of truth.
//
// Group commit: concurrent Append() calls are serialized for the write(2)
// but share fsyncs leader/follower-style — the first appender into the
// sync window fsyncs once for every record written by then; the others
// wait until the leader's fsync covers their offset. Pipelined mutations
// therefore amortize the fsync instead of paying one each.

#ifndef PRAGUE_STORAGE_WAL_H_
#define PRAGUE_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace prague::storage {

/// \brief Type tag of one WAL record.
enum class WalRecordType : uint8_t {
  /// One AppendGraphs batch (payload encoded by storage_engine.cc).
  kAppendGraphs = 1,
};

/// \brief One decoded WAL record.
struct WalRecord {
  WalRecordType type = WalRecordType::kAppendGraphs;
  std::string payload;
};

/// \brief Everything a full WAL read yields, including tail damage.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// Bytes of the valid record prefix (the truncate point when damaged).
  uint64_t valid_bytes = 0;
  /// True when a torn or corrupt tail was detected (and dropped).
  bool tail_dropped = false;
  /// Human-readable description of the dropped tail (empty when clean).
  std::string tail_warning;
};

/// \brief Reads every valid record of the log at \p path. A torn or
/// bit-flipped tail is not an error: reading stops at the last valid
/// record and the result describes what was dropped. A missing file is
/// NotFound; any other read failure is IOError.
Result<WalReadResult> ReadWal(const std::string& path);

/// \brief Writer options.
struct WalWriterOptions {
  /// fsync records before acknowledging (group-committed). Off trades
  /// durability-to-power-loss for speed — the bench sweep quantifies it.
  bool sync = true;
};

/// \brief Appends checksummed records to one log file. Thread-safe.
class WalWriter {
 public:
  /// \brief Opens \p path for appending, first truncating it to
  /// \p valid_bytes (from ReadWal) so a torn tail from a previous crash is
  /// physically removed before new records land after it.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 uint64_t valid_bytes,
                                                 WalWriterOptions options);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// \brief Appends one record; returns once it is durable (sync on) or
  /// written (sync off).
  Status Append(WalRecordType type, std::string_view payload);

  /// \brief Forces an fsync of everything written so far.
  Status Sync();

  /// \brief Bytes in the log (valid prefix + records appended here).
  uint64_t bytes() const;
  /// \brief Records appended through this writer.
  uint64_t appends() const;
  /// \brief fsync(2) calls issued (group commit makes this ≤ appends).
  uint64_t syncs() const;

 private:
  WalWriter(int fd, uint64_t size, WalWriterOptions options)
      : options_(options), fd_(fd), written_(size), durable_(size) {}

  // Waits until `target` is durable, becoming the fsync leader when no
  // sync is in flight. mu_ held on entry and exit.
  Status SyncUpTo(uint64_t target, std::unique_lock<std::mutex>* lock);

  const WalWriterOptions options_;
  int fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable sync_cv_;
  uint64_t written_ = 0;   // bytes written to the fd
  uint64_t durable_ = 0;   // bytes covered by a completed fsync
  bool sync_in_flight_ = false;
  Status sync_error_;      // sticky: a failed fsync poisons the writer
  uint64_t appends_ = 0;
  uint64_t syncs_ = 0;
};

}  // namespace prague::storage

#endif  // PRAGUE_STORAGE_WAL_H_
