#include "graph/subgraph_ops.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace prague {

ExtractedSubgraph ExtractEdgeSubgraph(const Graph& parent, EdgeMask mask) {
  assert(parent.EdgeCount() <= kMaxSubsetEdges);
  assert(mask != 0);
  ExtractedSubgraph out;
  std::vector<NodeId> to_sub(parent.NodeCount(), kInvalidNode);
  GraphBuilder builder;
  for (EdgeId e = 0; e < parent.EdgeCount(); ++e) {
    if (!(mask & EdgeBit(e))) continue;
    const Edge& edge = parent.GetEdge(e);
    for (NodeId endpoint : {edge.u, edge.v}) {
      if (to_sub[endpoint] == kInvalidNode) {
        to_sub[endpoint] = builder.AddNode(parent.NodeLabel(endpoint));
        out.node_map.push_back(endpoint);
      }
    }
    Result<EdgeId> r =
        builder.AddEdge(to_sub[edge.u], to_sub[edge.v], edge.label);
    assert(r.ok());
    (void)r;
    out.edge_map.push_back(e);
  }
  out.graph = std::move(builder).Build();
  return out;
}

bool IsEdgeSubsetConnected(const Graph& parent, EdgeMask mask) {
  if (mask == 0) return false;
  // Union-find over the endpoints of selected edges.
  std::vector<NodeId> root(parent.NodeCount(), kInvalidNode);
  auto find = [&](NodeId n) {
    NodeId r = n;
    while (root[r] != r) r = root[r];
    while (root[n] != r) {
      NodeId next = root[n];
      root[n] = r;
      n = next;
    }
    return r;
  };
  int components = 0;
  for (EdgeId e = 0; e < parent.EdgeCount(); ++e) {
    if (!(mask & EdgeBit(e))) continue;
    const Edge& edge = parent.GetEdge(e);
    for (NodeId endpoint : {edge.u, edge.v}) {
      if (root[endpoint] == kInvalidNode) {
        root[endpoint] = endpoint;
        ++components;
      }
    }
    NodeId ru = find(edge.u);
    NodeId rv = find(edge.v);
    if (ru != rv) {
      root[ru] = rv;
      --components;
    }
  }
  return components == 1;
}

namespace {

// Expands each connected subset in `level` by one adjacent edge, returning
// the next level's subsets (deduplicated, sorted). `allowed` restricts the
// candidate edges (used to force inclusion handled by the seed).
std::vector<EdgeMask> ExpandLevel(const Graph& g,
                                  const std::vector<EdgeMask>& level) {
  std::unordered_set<EdgeMask> next;
  for (EdgeMask mask : level) {
    // Collect nodes touched by the subset.
    std::vector<bool> in_subset_node(g.NodeCount(), false);
    for (EdgeId e = 0; e < g.EdgeCount(); ++e) {
      if (mask & EdgeBit(e)) {
        in_subset_node[g.GetEdge(e).u] = true;
        in_subset_node[g.GetEdge(e).v] = true;
      }
    }
    for (EdgeId e = 0; e < g.EdgeCount(); ++e) {
      if (mask & EdgeBit(e)) continue;
      const Edge& edge = g.GetEdge(e);
      if (in_subset_node[edge.u] || in_subset_node[edge.v]) {
        next.insert(mask | EdgeBit(e));
      }
    }
  }
  std::vector<EdgeMask> out(next.begin(), next.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<std::vector<EdgeMask>> ConnectedEdgeSubsetsBySize(const Graph& g) {
  assert(g.EdgeCount() <= kMaxSubsetEdges);
  std::vector<std::vector<EdgeMask>> by_size(g.EdgeCount() + 1);
  if (g.EdgeCount() == 0) return by_size;
  for (EdgeId e = 0; e < g.EdgeCount(); ++e) by_size[1].push_back(EdgeBit(e));
  for (size_t k = 2; k <= g.EdgeCount(); ++k) {
    by_size[k] = ExpandLevel(g, by_size[k - 1]);
  }
  return by_size;
}

std::vector<std::vector<EdgeMask>> ConnectedEdgeSupersetsOf(const Graph& g,
                                                            EdgeId required) {
  assert(g.EdgeCount() <= kMaxSubsetEdges);
  std::vector<std::vector<EdgeMask>> by_size(g.EdgeCount() + 1);
  if (required >= g.EdgeCount()) return by_size;
  by_size[1].push_back(EdgeBit(required));
  for (size_t k = 2; k <= g.EdgeCount(); ++k) {
    by_size[k] = ExpandLevel(g, by_size[k - 1]);
    if (by_size[k].empty()) break;
  }
  return by_size;
}

}  // namespace prague
