// Structured logging (util/logging.h): level filtering, text/json field
// rendering and escaping, the per-call-site rate limiter's deterministic
// token bucket, and the process-wide suppressed-line counter that backs
// `prague_log_suppressed_total`.

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "util/logging.h"

namespace prague {
namespace {

// The sink is a plain function pointer (so hot paths stay branch+call),
// which means captures go through file statics.
std::mutex g_lines_mu;
std::vector<std::string> g_lines;

void CaptureSink(std::string_view line) {
  std::lock_guard<std::mutex> lock(g_lines_mu);
  g_lines.emplace_back(line);
}

std::vector<std::string> TakeLines() {
  std::lock_guard<std::mutex> lock(g_lines_mu);
  std::vector<std::string> out;
  out.swap(g_lines);
  return out;
}

// Captures log output and restores global logging state afterwards, so
// tests cannot leak a sink/level/format into each other.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = GetLogLevel();
    saved_format_ = GetLogFormat();
    SetLogSink(&CaptureSink);
    TakeLines();
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(saved_level_);
    SetLogFormat(saved_format_);
  }

 private:
  LogLevel saved_level_;
  LogFormat saved_format_;
};

TEST_F(LoggingTest, LevelThresholdFiltersLowerSeverities) {
  SetLogLevel(LogLevel::kWarning);
  PRAGUE_LOG(Debug) << "dropped";
  PRAGUE_LOG(Info) << "dropped";
  PRAGUE_LOG(Warning) << "kept-warning";
  PRAGUE_LOG(Error) << "kept-error";
  std::vector<std::string> lines = TakeLines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("kept-warning"), std::string::npos);
  EXPECT_NE(lines[1].find("kept-error"), std::string::npos);
}

TEST_F(LoggingTest, TextFormatRendersFieldsAfterMessage) {
  SetLogLevel(LogLevel::kInfo);
  SetLogFormat(LogFormat::kText);
  PRAGUE_SLOG(Warning).Field("tenant", "acme").Field("n", 7) << "shed";
  std::vector<std::string> lines = TakeLines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("[WARN "), std::string::npos);
  EXPECT_NE(lines[0].find("shed tenant=acme n=7"), std::string::npos);
  EXPECT_EQ(lines[0].back(), '\n');
}

TEST_F(LoggingTest, TextFormatQuotesValuesThatWouldSplit) {
  SetLogFormat(LogFormat::kText);
  PRAGUE_SLOG(Warning)
          .Field("msg", "two words")
          .Field("quote", "a\"b")
          .Field("nl", "a\nb")
          .Field("empty", "")
      << "x";
  std::vector<std::string> lines = TakeLines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("msg=\"two words\""), std::string::npos);
  EXPECT_NE(lines[0].find("quote=\"a\\\"b\""), std::string::npos);
  EXPECT_NE(lines[0].find("nl=\"a\\nb\""), std::string::npos);
  EXPECT_NE(lines[0].find("empty=\"\""), std::string::npos);
  // The escaped newline keeps the record one physical line.
  EXPECT_EQ(lines[0].find('\n'), lines[0].size() - 1);
}

TEST_F(LoggingTest, JsonFormatEscapesStringsAndKeepsNumbersRaw) {
  SetLogFormat(LogFormat::kJson);
  PRAGUE_SLOG(Error)
          .Field("path", "a\\b\"c\nd")
          .Field("count", 42)
          .Field("ratio", 0.5)
          .Field("ok", true)
      << "boom \"quoted\"";
  std::vector<std::string> lines = TakeLines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_NE(line.find("\"level\":\"ERROR\""), std::string::npos);
  EXPECT_NE(line.find("\"msg\":\"boom \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(line.find("\"path\":\"a\\\\b\\\"c\\nd\""), std::string::npos);
  // Numbers and bools are JSON literals, not strings.
  EXPECT_NE(line.find("\"count\":42"), std::string::npos);
  EXPECT_NE(line.find("\"ratio\":0.5"), std::string::npos);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(line.find("\"count\":\"42\""), std::string::npos);
}

TEST_F(LoggingTest, JsonEscapeHandlesControlBytes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape(std::string_view("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(JsonEscape("q\"\\"), "q\\\"\\\\");
}

TEST(LogParseTest, ParsesLevelsAndFormats) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_EQ(level, LogLevel::kWarning);  // untouched on failure

  LogFormat format = LogFormat::kText;
  EXPECT_TRUE(ParseLogFormat("json", &format));
  EXPECT_EQ(format, LogFormat::kJson);
  EXPECT_FALSE(ParseLogFormat("xml", &format));
  EXPECT_EQ(format, LogFormat::kJson);
}

// ---------------------------------------------------------------------------
// Rate limiter: Allow(now_us) is a pure function of the supplied clock,
// so the whole schedule is asserted deterministically.

TEST(LogRateLimiterTest, BurstThenRefillIsDeterministic) {
  LogRateLimiter limiter(1.0, 2.0);  // 1 token/s, burst 2
  // Full bucket: the first two lines pass, the third is refused.
  EXPECT_TRUE(limiter.Allow(1'000'000));
  EXPECT_TRUE(limiter.Allow(1'000'001));
  EXPECT_FALSE(limiter.Allow(1'000'002));
  EXPECT_FALSE(limiter.Allow(1'500'000));  // half a token accrued: still no
  EXPECT_EQ(limiter.suppressed(), 2u);
  // 1.1 s after the last refill point: over one whole token again.
  EXPECT_TRUE(limiter.Allow(2'600'000));
  EXPECT_FALSE(limiter.Allow(2'600'001));
  EXPECT_EQ(limiter.suppressed(), 3u);
}

TEST(LogRateLimiterTest, RefillNeverExceedsBurst) {
  LogRateLimiter limiter(100.0, 3.0);
  // An hour of idle accrues hours of tokens; the cap keeps it at 3.
  EXPECT_TRUE(limiter.Allow(1));
  EXPECT_TRUE(limiter.Allow(3'600'000'000));
  EXPECT_TRUE(limiter.Allow(3'600'000'001));
  EXPECT_TRUE(limiter.Allow(3'600'000'002));
  EXPECT_FALSE(limiter.Allow(3'600'000'003));
}

TEST(LogRateLimiterTest, NonPositiveRateDisablesLimiting) {
  LogRateLimiter limiter(0.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(limiter.Allow(i));
  EXPECT_EQ(limiter.suppressed(), 0u);
}

TEST(LogRateLimiterTest, BurstHasAFloorOfOne) {
  LogRateLimiter limiter(5.0, 0.0);  // burst 0 would allow nothing, ever
  EXPECT_TRUE(limiter.Allow(1'000'000));
  EXPECT_FALSE(limiter.Allow(1'000'001));
}

TEST(LogRateLimiterTest, ClockGoingBackwardsDoesNotRefill) {
  LogRateLimiter limiter(1000.0, 1.0);
  EXPECT_TRUE(limiter.Allow(5'000'000));
  EXPECT_FALSE(limiter.Allow(4'000'000));  // no negative elapsed credit
  EXPECT_FALSE(limiter.Allow(4'000'001));
}

TEST_F(LoggingTest, SlogEveryEmitsOnceAndCountsSuppressed) {
  SetLogLevel(LogLevel::kInfo);
  const uint64_t suppressed_before = SuppressedLogCount();
  // A per-token interval of ~3 hours: within this test only the burst
  // allowance (1) can ever pass, no matter how slowly the loop runs.
  for (int i = 0; i < 50; ++i) {
    PRAGUE_SLOG_EVERY(Warning, 0.0001, 1).Field("i", i) << "storm";
  }
  std::vector<std::string> lines = TakeLines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("storm"), std::string::npos);
  EXPECT_EQ(SuppressedLogCount() - suppressed_before, 49u);
}

TEST_F(LoggingTest, SlogEveryBelowThresholdCostsNoTokens) {
  SetLogLevel(LogLevel::kError);
  const uint64_t suppressed_before = SuppressedLogCount();
  for (int i = 0; i < 10; ++i) {
    PRAGUE_SLOG_EVERY(Warning, 0.0001, 1) << "filtered before the bucket";
  }
  EXPECT_TRUE(TakeLines().empty());
  // Level filtering short-circuits ahead of the limiter: nothing was
  // suppressed because nothing was offered.
  EXPECT_EQ(SuppressedLogCount(), suppressed_before);
}

}  // namespace
}  // namespace prague
