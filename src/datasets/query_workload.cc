#include "datasets/query_workload.h"

#include <algorithm>

#include "graph/subgraph_ops.h"
#include "graph/vf2.h"

namespace prague {

namespace {

// Generic prefix-connected ordering: repeatedly append an edge adjacent to
// the prefix, choosing by `pick` among the eligible edges.
template <typename Pick>
std::vector<EdgeId> OrderEdges(const Graph& q, EdgeId first, Pick&& pick) {
  std::vector<EdgeId> order = {first};
  std::vector<bool> used(q.EdgeCount(), false);
  std::vector<bool> touched(q.NodeCount(), false);
  used[first] = true;
  touched[q.GetEdge(first).u] = true;
  touched[q.GetEdge(first).v] = true;
  while (order.size() < q.EdgeCount()) {
    std::vector<EdgeId> eligible;
    for (EdgeId e = 0; e < q.EdgeCount(); ++e) {
      if (used[e]) continue;
      const Edge& edge = q.GetEdge(e);
      if (touched[edge.u] || touched[edge.v]) eligible.push_back(e);
    }
    EdgeId next = pick(eligible);
    used[next] = true;
    touched[q.GetEdge(next).u] = true;
    touched[q.GetEdge(next).v] = true;
    order.push_back(next);
  }
  return order;
}

}  // namespace

std::vector<EdgeId> DefaultFormulationSequence(const Graph& q) {
  return OrderEdges(q, 0, [](const std::vector<EdgeId>& eligible) {
    return eligible.front();
  });
}

std::vector<EdgeId> RandomFormulationSequence(const Graph& q, Rng* rng) {
  EdgeId first = static_cast<EdgeId>(rng->Below(q.EdgeCount()));
  return OrderEdges(q, first, [rng](const std::vector<EdgeId>& eligible) {
    return eligible[rng->Below(eligible.size())];
  });
}

WorkloadGenerator::WorkloadGenerator(const GraphDatabase* db, uint64_t seed)
    : db_(db), rng_(seed) {}

bool WorkloadGenerator::HasExactMatch(const Graph& q) const {
  for (GraphId gid = 0; gid < db_->size(); ++gid) {
    if (IsSubgraphIsomorphic(q, db_->graph(gid))) return true;
  }
  return false;
}

Result<Graph> WorkloadGenerator::SampleConnectedSubgraph(size_t edges) {
  for (int attempt = 0; attempt < 256; ++attempt) {
    const Graph& host = db_->graph(
        static_cast<GraphId>(rng_.Below(db_->size())));
    if (host.EdgeCount() < edges || host.EdgeCount() > kMaxSubsetEdges) {
      continue;
    }
    // Random connected expansion from a random edge.
    EdgeMask mask = EdgeBit(static_cast<EdgeId>(rng_.Below(host.EdgeCount())));
    std::vector<bool> touched(host.NodeCount(), false);
    auto touch = [&](EdgeId e) {
      touched[host.GetEdge(e).u] = true;
      touched[host.GetEdge(e).v] = true;
    };
    for (EdgeId e = 0; e < host.EdgeCount(); ++e) {
      if (mask & EdgeBit(e)) touch(e);
    }
    while (static_cast<size_t>(MaskSize(mask)) < edges) {
      std::vector<EdgeId> eligible;
      for (EdgeId e = 0; e < host.EdgeCount(); ++e) {
        if (mask & EdgeBit(e)) continue;
        const Edge& edge = host.GetEdge(e);
        if (touched[edge.u] || touched[edge.v]) eligible.push_back(e);
      }
      if (eligible.empty()) break;
      EdgeId next = eligible[rng_.Below(eligible.size())];
      mask |= EdgeBit(next);
      touch(next);
    }
    if (static_cast<size_t>(MaskSize(mask)) != edges) continue;
    return ExtractEdgeSubgraph(host, mask).graph;
  }
  return Status::NotFound("no data graph large enough to sample from");
}

Result<VisualQuerySpec> WorkloadGenerator::ContainmentQuery(
    size_t edges, const std::string& name) {
  Result<Graph> g = SampleConnectedSubgraph(edges);
  if (!g.ok()) return g.status();
  VisualQuerySpec spec;
  spec.name = name;
  spec.graph = std::move(*g);
  spec.sequence = DefaultFormulationSequence(spec.graph);
  return spec;
}

Result<VisualQuerySpec> WorkloadGenerator::SimilarityQuery(
    size_t edges, int mutations, const std::string& name) {
  size_t label_count = db_->labels().size();
  for (int attempt = 0; attempt < 256; ++attempt) {
    Result<Graph> sampled = SampleConnectedSubgraph(edges);
    if (!sampled.ok()) return sampled.status();
    // Mutate `mutations` node labels toward rare ids (high label ids are
    // rare under both generators' skewed distributions). Victims are drawn
    // from low-degree nodes so each mutation invalidates at most two query
    // edges — keeping the query within small subgraph distance of the data
    // (the paper's queries are one or two edges away from real matches).
    GraphBuilder b;
    Graph& g = *sampled;
    std::vector<Label> labels(g.NodeCount());
    for (NodeId n = 0; n < g.NodeCount(); ++n) labels[n] = g.NodeLabel(n);
    std::vector<NodeId> low_degree;
    for (NodeId n = 0; n < g.NodeCount(); ++n) {
      if (g.Degree(n) <= 2) low_degree.push_back(n);
    }
    if (low_degree.empty()) continue;
    for (int m = 0; m < mutations; ++m) {
      NodeId victim = low_degree[rng_.Below(low_degree.size())];
      Label rare = static_cast<Label>(
          label_count - 1 - rng_.Below(std::max<size_t>(1, label_count / 3)));
      labels[victim] = rare;
    }
    for (Label l : labels) b.AddNode(l);
    for (const Edge& e : g.edges()) (void)b.AddEdge(e.u, e.v, e.label);
    Graph mutated = std::move(b).Build();
    if (HasExactMatch(mutated)) continue;
    VisualQuerySpec spec;
    spec.name = name;
    spec.graph = std::move(mutated);
    spec.sequence = DefaultFormulationSequence(spec.graph);
    return spec;
  }
  return Status::NotFound("could not build a no-exact-match query after 256 "
                          "attempts");
}

}  // namespace prague
