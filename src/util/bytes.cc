#include "util/bytes.h"

#include <cstdio>

namespace prague {

std::string HumanBytes(size_t bytes) {
  char buf[32];
  if (bytes >= 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f GB",
                  static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  } else if (bytes >= 1024ULL * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f MB",
                  static_cast<double>(bytes) / (1024.0 * 1024));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f KB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

void EncodeFrameHeader(const FrameHeader& header, uint8_t* out) {
  EncodeU32LE(header.payload_length, out);
  out[4] = header.type;
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size) {
  if (size < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header: " +
                              std::to_string(size) + " of " +
                              std::to_string(kFrameHeaderBytes) + " bytes");
  }
  FrameHeader header;
  header.payload_length = DecodeU32LE(data);
  header.type = data[4];
  if (header.payload_length > kMaxFramePayload) {
    return Status::Corruption(
        "frame payload length " + std::to_string(header.payload_length) +
        " exceeds the " + std::to_string(kMaxFramePayload) + "-byte limit");
  }
  return header;
}

}  // namespace prague
