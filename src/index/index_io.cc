#include "index/index_io.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "graph/dfs_code.h"

namespace prague {

namespace {

void WriteIdSet(const IdSet& ids, std::ostream& out) {
  out << ids.size();
  for (GraphId id : ids) out << ' ' << id;
  out << '\n';
}

Status ReadIdSet(std::istream& in, IdSet* out) {
  size_t n;
  if (!(in >> n)) return Status::Corruption("bad id-set count");
  std::vector<GraphId> ids(n);
  for (size_t i = 0; i < n; ++i) {
    if (!(in >> ids[i])) return Status::Corruption("bad id-set entry");
  }
  *out = IdSet(std::move(ids));
  return Status::OK();
}

template <typename T>
void WriteVec(const std::vector<T>& v, std::ostream& out) {
  out << v.size();
  for (const T& x : v) out << ' ' << x;
  out << '\n';
}

template <typename T>
Status ReadVec(std::istream& in, std::vector<T>* out) {
  size_t n;
  if (!(in >> n)) return Status::Corruption("bad vector count");
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (!(in >> (*out)[i])) return Status::Corruption("bad vector entry");
  }
  return Status::OK();
}

}  // namespace

Status IndexSerializer::Save(const ActionAwareIndexes& indexes,
                             std::ostream* outp, uint64_t snapshot_version) {
  std::ostream& out = *outp;
  const A2FIndex& a2f = indexes.a2f;
  out << "PRAGUE_INDEX 2\n";
  out << "VERSION " << snapshot_version << '\n';
  out << "MINSUP " << indexes.min_support << '\n';
  out << "A2F " << a2f.beta() << ' ' << a2f.VertexCount() << '\n';
  for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
    const A2fVertex& v = a2f.vertex(id);
    out << "V " << (v.in_mf ? 1 : 0) << ' ' << v.code << '\n';
    out << "D ";
    WriteIdSet(v.del_ids, out);
    out << "P ";
    WriteVec(v.parents, out);
    out << "C ";
    WriteVec(v.children, out);
  }
  out << "CLUSTERS " << a2f.clusters().size() << '\n';
  for (const FragmentCluster& c : a2f.clusters()) {
    out << c.root << ' ';
    WriteVec(c.members, out);
  }
  const A2IIndex& a2i = indexes.a2i;
  out << "A2I " << a2i.EntryCount() << '\n';
  for (A2iId id = 0; id < a2i.EntryCount(); ++id) {
    const A2iEntry& e = a2i.entry(id);
    out << "E " << e.code << '\n';
    out << "F ";
    WriteIdSet(e.fsg_ids, out);
  }
  return out.good() ? Status::OK() : Status::IOError("index write failed");
}

Status IndexSerializer::SaveToFile(const ActionAwareIndexes& indexes,
                                   const std::string& path,
                                   uint64_t snapshot_version) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return Save(indexes, &out, snapshot_version);
}

Result<ActionAwareIndexes> IndexSerializer::Load(std::istream* inp) {
  Result<VersionedIndexes> loaded = LoadVersioned(inp);
  if (!loaded.ok()) return loaded.status();
  return std::move(loaded.value().indexes);
}

Result<VersionedIndexes> IndexSerializer::LoadVersioned(std::istream* inp) {
  std::istream& in = *inp;
  VersionedIndexes result;
  ActionAwareIndexes& out = result.indexes;
  std::string tag;
  int format;
  if (!(in >> tag >> format) || tag != "PRAGUE_INDEX" ||
      (format != 1 && format != 2)) {
    return Status::Corruption("bad index header");
  }
  if (format >= 2) {
    if (!(in >> tag >> result.version) || tag != "VERSION") {
      return Status::Corruption("bad VERSION line");
    }
  }
  size_t minsup;
  if (!(in >> tag >> minsup) || tag != "MINSUP") {
    return Status::Corruption("bad MINSUP line");
  }
  out.min_support = minsup;

  size_t beta, vertex_count;
  if (!(in >> tag >> beta >> vertex_count) || tag != "A2F") {
    return Status::Corruption("bad A2F header");
  }
  out.a2f.beta_ = beta;
  out.a2f.vertices_.resize(vertex_count);
  out.a2f.mf_count_ = 0;
  for (A2fId id = 0; id < vertex_count; ++id) {
    A2fVertex& v = out.a2f.vertices_[id];
    int in_mf;
    if (!(in >> tag >> in_mf >> v.code) || tag != "V") {
      return Status::Corruption("bad A2F vertex line");
    }
    v.in_mf = in_mf != 0;
    if (v.in_mf) ++out.a2f.mf_count_;
    Result<DfsCode> code = DfsCodeFromString(v.code);
    if (!code.ok()) return code.status();
    v.fragment = GraphFromDfsCode(*code);
    if (!(in >> tag) || tag != "D") return Status::Corruption("missing D");
    PRAGUE_RETURN_NOT_OK(ReadIdSet(in, &v.del_ids));
    if (!(in >> tag) || tag != "P") return Status::Corruption("missing P");
    PRAGUE_RETURN_NOT_OK(ReadVec(in, &v.parents));
    if (!(in >> tag) || tag != "C") return Status::Corruption("missing C");
    PRAGUE_RETURN_NOT_OK(ReadVec(in, &v.children));
    out.a2f.by_code_.emplace(v.code, id);
  }
  size_t cluster_count;
  if (!(in >> tag >> cluster_count) || tag != "CLUSTERS") {
    return Status::Corruption("bad CLUSTERS header");
  }
  out.a2f.clusters_.resize(cluster_count);
  for (FragmentCluster& c : out.a2f.clusters_) {
    if (!(in >> c.root)) return Status::Corruption("bad cluster root");
    PRAGUE_RETURN_NOT_OK(ReadVec(in, &c.members));
  }
  // Rebuild MF leaf cluster lists.
  for (uint32_t cid = 0; cid < out.a2f.clusters_.size(); ++cid) {
    A2fId root = out.a2f.clusters_[cid].root;
    for (A2fId parent : out.a2f.vertices_[root].parents) {
      if (out.a2f.vertices_[parent].size() == beta) {
        out.a2f.leaf_clusters_[parent].push_back(cid);
      }
    }
  }
  if (!out.a2f.ReconstructFromDelIds()) {
    return Status::Corruption("A2F DAG inconsistent");
  }

  size_t entry_count;
  if (!(in >> tag >> entry_count) || tag != "A2I") {
    return Status::Corruption("bad A2I header");
  }
  out.a2i.entries_.resize(entry_count);
  for (A2iId id = 0; id < entry_count; ++id) {
    A2iEntry& e = out.a2i.entries_[id];
    if (!(in >> tag >> e.code) || tag != "E") {
      return Status::Corruption("bad A2I entry line");
    }
    Result<DfsCode> code = DfsCodeFromString(e.code);
    if (!code.ok()) return code.status();
    e.fragment = GraphFromDfsCode(*code);
    if (!(in >> tag) || tag != "F") return Status::Corruption("missing F");
    PRAGUE_RETURN_NOT_OK(ReadIdSet(in, &e.fsg_ids));
    out.a2i.by_code_.emplace(e.code, id);
  }
  return result;
}

Result<ActionAwareIndexes> IndexSerializer::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return Load(&in);
}

Result<VersionedIndexes> IndexSerializer::LoadVersionedFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadVersioned(&in);
}

}  // namespace prague
