// Robustness under extreme configurations: degenerate databases, extreme
// support thresholds, oversized queries, and randomized IdSet algebra
// against a std::set reference model.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/prague_session.h"
#include "datasets/query_workload.h"
#include "graph/vf2.h"
#include "index/action_aware_index.h"
#include "test_fixtures.h"
#include "util/rng.h"

namespace prague {
namespace {

using testing::kC;
using testing::kN;
using testing::kO;
using testing::kS;

void Feed(PragueSession* session, const Graph& q,
          const std::vector<EdgeId>& sequence) {
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = session->AddNode(q.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  for (EdgeId e : sequence) {
    const Edge& edge = q.GetEdge(e);
    if (!session->AddEdge(user_node(edge.u), user_node(edge.v), edge.label)
             .ok()) {
      std::abort();
    }
  }
}

IdSet TrueMatches(const GraphDatabase& db, const Graph& q) {
  std::vector<GraphId> ids;
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    if (IsSubgraphIsomorphic(q, db.graph(gid))) ids.push_back(gid);
  }
  return IdSet(std::move(ids));
}

TEST(RobustnessTest, ExtremeAlphaNothingFrequentStaysSound) {
  // α = 0.99: on the tiny database only near-universal fragments remain
  // frequent; almost everything becomes a DIF or NIF. Candidates must
  // remain sound regardless.
  GraphDatabase db = testing::TinyDatabase();
  MiningConfig mining;
  mining.min_support_ratio = 0.99;
  A2fConfig a2f;
  Result<ActionAwareIndexes> indexes = BuildActionAwareIndexes(db, mining, a2f);
  ASSERT_TRUE(indexes.ok());
  Graph q = testing::MakeGraph({kC, kC, kC, kS},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  PragueSession session(DatabaseSnapshot::Borrow(&db, &indexes.value()));
  Feed(&session, q, DefaultFormulationSequence(q));
  IdSet truth = TrueMatches(db, q);
  EXPECT_TRUE(truth.IsSubsetOf(session.exact_candidates()));
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  if (!results->similarity) {
    EXPECT_EQ(IdSet(results->exact), truth);
  }
}

TEST(RobustnessTest, LowAlphaEverythingFrequentStaysSound) {
  GraphDatabase db = testing::TinyDatabase();
  MiningConfig mining;
  mining.min_support_ratio = 0.01;  // min support clamps to 1
  mining.max_fragment_edges = 5;
  A2fConfig a2f;
  Result<ActionAwareIndexes> indexes = BuildActionAwareIndexes(db, mining, a2f);
  ASSERT_TRUE(indexes.ok());
  // With support >= 1 everything that occurs is frequent: no DIFs exist.
  EXPECT_EQ(indexes->a2i.EntryCount(), 0u);
  Graph q = testing::MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}, {0, 2}});
  PragueSession session(DatabaseSnapshot::Borrow(&db, &indexes.value()));
  Feed(&session, q, DefaultFormulationSequence(q));
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(IdSet(results->exact), TrueMatches(db, q));
}

TEST(RobustnessTest, SingleGraphDatabase) {
  GraphDatabase db;
  db.mutable_labels()->Intern("C");
  db.mutable_labels()->Intern("S");
  db.Add(testing::MakeGraph({kC, kS, kC}, {{0, 1}, {1, 2}}));
  MiningConfig mining;
  mining.min_support_ratio = 0.5;
  A2fConfig a2f;
  Result<ActionAwareIndexes> indexes = BuildActionAwareIndexes(db, mining, a2f);
  ASSERT_TRUE(indexes.ok());
  PragueSession session(DatabaseSnapshot::Borrow(&db, &indexes.value()));
  NodeId c = session.AddNode(kC);
  NodeId s = session.AddNode(kS);
  ASSERT_TRUE(session.AddEdge(c, s).ok());
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->exact, std::vector<GraphId>{0});
}

TEST(RobustnessTest, QueryLargerThanEveryDataGraph) {
  const auto& fixture = testing::TinyFixture::Get();
  // A 7-edge star of C around C — bigger than any tiny-database graph.
  PragueSession session(fixture.snapshot);
  NodeId center = session.AddNode(kC);
  for (int i = 0; i < 7; ++i) {
    NodeId leaf = session.AddNode(kC);
    ASSERT_TRUE(session.AddEdge(center, leaf).ok());
  }
  // Rq is a sound superset and may stay non-empty even though no graph
  // truly contains the star; Run's exact verification then comes up empty
  // and Algorithm 1 lines 19-21 fall back to similarity search.
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->similarity);
  // Distances must agree with the MCCS oracle.
  auto expected = testing::BruteForceSimilaritySearch(
      fixture.db, session.query().CurrentGraph(), session.sigma());
  std::map<GraphId, int> expected_by_id(expected.begin(), expected.end());
  EXPECT_EQ(results->similar.size(), expected.size());
  for (const SimilarMatch& m : results->similar) {
    EXPECT_EQ(m.distance, expected_by_id[m.gid]);
  }
}

TEST(RobustnessTest, SigmaZeroSimilarityEqualsExact) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueConfig config;
  config.sigma = 0;
  PragueSession session(fixture.snapshot, config);
  Graph q = testing::MakeGraph({kC, kS}, {{0, 1}});
  Feed(&session, q, DefaultFormulationSequence(q));
  ASSERT_TRUE(session.EnableSimilarity().ok());
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  IdSet truth = TrueMatches(fixture.db, q);
  ASSERT_EQ(results->similar.size(), truth.size());
  for (const SimilarMatch& m : results->similar) {
    EXPECT_EQ(m.distance, 0);
    EXPECT_TRUE(truth.Contains(m.gid));
  }
}

TEST(RobustnessTest, HugeSigmaReturnsWholeDatabaseRanked) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueConfig config;
  config.sigma = 100;
  PragueSession session(fixture.snapshot, config);
  Graph q = testing::MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}, {0, 2}});
  Feed(&session, q, DefaultFormulationSequence(q));
  ASSERT_TRUE(session.EnableSimilarity().ok());
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  // Every graph sharing at least one C-C edge must appear.
  auto expected = testing::BruteForceSimilaritySearch(fixture.db, q, 2);
  for (const auto& [gid, distance] : expected) {
    bool found = false;
    for (const SimilarMatch& m : results->similar) {
      if (m.gid == gid) {
        found = true;
        EXPECT_EQ(m.distance, distance);
      }
    }
    EXPECT_TRUE(found) << gid;
  }
}

// --- IdSet randomized reference-model sweep -------------------------

class IdSetModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IdSetModelTest, MatchesStdSetReference) {
  Rng rng(GetParam());
  IdSet a, b;
  std::set<GraphId> ra, rb;
  for (int op = 0; op < 300; ++op) {
    GraphId id = static_cast<GraphId>(rng.Below(64));
    switch (rng.Below(6)) {
      case 0:
        a.Insert(id);
        ra.insert(id);
        break;
      case 1:
        b.Insert(id);
        rb.insert(id);
        break;
      case 2:
        a.Erase(id);
        ra.erase(id);
        break;
      case 3: {
        IdSet got = a.Intersect(b);
        std::vector<GraphId> want;
        std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                              std::back_inserter(want));
        ASSERT_EQ(got.ToVector(), want);
        break;
      }
      case 4: {
        IdSet got = a.Union(b);
        std::vector<GraphId> want;
        std::set_union(ra.begin(), ra.end(), rb.begin(), rb.end(),
                       std::back_inserter(want));
        ASSERT_EQ(got.ToVector(), want);
        break;
      }
      case 5: {
        IdSet got = a.Subtract(b);
        std::vector<GraphId> want;
        std::set_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                            std::back_inserter(want));
        ASSERT_EQ(got.ToVector(), want);
        break;
      }
    }
    ASSERT_EQ(a.size(), ra.size());
    ASSERT_EQ(a.Contains(id), ra.contains(id));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdSetModelTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace prague
