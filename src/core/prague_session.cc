#include "core/prague_session.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <thread>
#include <utility>

#include "core/shard_exec.h"
#include "util/stopwatch.h"

namespace prague {

namespace {

// Histograms store microseconds; round half-up from the double phase time.
uint64_t ToMicros(double seconds) {
  if (seconds <= 0) return 0;
  return static_cast<uint64_t>(seconds * 1e6 + 0.5);
}

}  // namespace

PragueSession::PragueSession(SnapshotPtr snapshot, const PragueConfig& config)
    : snap_(std::move(snapshot)), config_(config) {}

NodeId PragueSession::AddNode(Label label) {
  NodeId id = query_.AddNode(label);
  SessionAction a;
  a.kind = SessionAction::Kind::kAddNode;
  a.label = label;
  log_.push_back(a);
  return id;
}

Result<NodeId> PragueSession::AddNodeByName(const std::string& label_name) {
  Result<Label> label = snap_->labels().Lookup(label_name);
  if (!label.ok()) return label.status();
  return AddNode(*label);
}

const SpigVertex* PragueSession::TargetVertex() const {
  if (query_.Empty()) return nullptr;
  return spigs_.FindVertex(query_.FullMask());
}

IdSet PragueSession::VertexCandidates(const SpigVertex& v) const {
  return config_.candidate_memo ? CachedSubCandidates(v, snap_->indexes())
                                : ExactSubCandidates(v, snap_->indexes());
}

void PragueSession::RecordSpigBuild(double seconds) {
  formulation_spig_seconds_ += seconds;
  obs::EngineMetrics& em = obs::EngineMetrics::Get();
  em.spig_steps_total->Increment();
  em.spig_build_us->Record(ToMicros(seconds));
}

void PragueSession::RefreshCandidates(StepReport* report) {
  Stopwatch timer;
  const SpigVertex* target = TargetVertex();
  rq_ = target != nullptr ? VertexCandidates(*target) : IdSet();
  if (rq_.empty() && !sim_flag_ && config_.auto_similarity &&
      !query_.Empty()) {
    sim_flag_ = true;  // user answers the option dialogue with "continue"
  }
  if (sim_flag_) {
    similar_ = SimilarSubCandidates(spigs_, query_.EdgeCount(), config_.sigma,
                                    snap_->indexes(), config_.candidate_memo);
    report->free_candidates = similar_.AllFree().size();
    report->ver_candidates = similar_.AllVer().size();
  } else {
    similar_ = SimilarCandidates();
  }
  report->candidate_seconds = timer.ElapsedSeconds();
  formulation_candidate_seconds_ += report->candidate_seconds;
  obs::EngineMetrics::Get().candidate_refresh_us->Record(
      ToMicros(report->candidate_seconds));
  report->exact_candidates = rq_.size();
  report->similarity_mode = sim_flag_;
  if (target != nullptr && target->frag.IsFrequent()) {
    report->status = FragmentStatus::kFrequent;
  } else if (!rq_.empty()) {
    report->status = FragmentStatus::kInfrequent;
  } else {
    report->status = FragmentStatus::kNoExactMatch;
  }
}

Result<StepReport> PragueSession::AddEdge(NodeId u, NodeId v,
                                          Label edge_label) {
  // Kept so a deadline-aborted SPIG build can undo the drawn edge: the
  // session must stay exactly as it was before the failed action.
  VisualQuery backup = query_;
  Result<FormulationId> ell = query_.AddEdge(u, v, edge_label);
  if (!ell.ok()) return ell.status();
  StepReport report;
  report.edge = *ell;
  Stopwatch spig_timer;
  Result<const Spig*> spig = spigs_.AddForNewEdge(
      query_, *ell, snap_->indexes(), SpigPool(), StepDeadline());
  if (!spig.ok()) {
    if (spig.status().code() == Status::Code::kDeadlineExceeded) {
      obs::EngineMetrics::Get().step_deadline_total->Increment();
    }
    query_ = std::move(backup);
    return spig.status();
  }
  report.spig_seconds = spig_timer.ElapsedSeconds();
  RecordSpigBuild(report.spig_seconds);
  RefreshCandidates(&report);
  SessionAction a;
  a.kind = SessionAction::Kind::kAddEdge;
  a.u = u;
  a.v = v;
  a.edge_label = edge_label;
  log_.push_back(a);
  return report;
}

void PragueSession::MaybeExitSimilarity() {
  const SpigVertex* target = TargetVertex();
  if (sim_flag_ && target != nullptr &&
      !VertexCandidates(*target).empty()) {
    sim_flag_ = false;
  }
}

Result<StepReport> PragueSession::DeleteEdge(FormulationId ell) {
  PRAGUE_RETURN_NOT_OK(query_.DeleteEdge(ell));
  StepReport report;
  report.edge = ell;
  Stopwatch spig_timer;
  spigs_.RemoveForDeletedEdge(ell);
  report.spig_seconds = spig_timer.ElapsedSeconds();
  RecordSpigBuild(report.spig_seconds);
  // Algorithm 6 lines 15-18: fall back to exact mode when the reduced
  // query has exact matches again.
  MaybeExitSimilarity();
  RefreshCandidates(&report);
  SessionAction a;
  a.kind = SessionAction::Kind::kDeleteEdge;
  a.ell = ell;
  log_.push_back(a);
  return report;
}

Result<StepReport> PragueSession::DeleteEdges(
    const std::vector<FormulationId>& edges) {
  if (edges.empty()) {
    return Status::InvalidArgument("no edges to delete");
  }
  if (edges.size() == 1) return DeleteEdge(edges.front());
  // Dry-run on a copy: find an order that keeps the fragment connected at
  // every intermediate step (greedy: always delete a currently deletable
  // edge from the remaining set).
  VisualQuery scratch = query_;
  std::vector<FormulationId> order;
  std::vector<FormulationId> pending = edges;
  while (!pending.empty()) {
    bool advanced = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (!scratch.CanDelete(pending[i])) continue;
      PRAGUE_RETURN_NOT_OK(scratch.DeleteEdge(pending[i]));
      order.push_back(pending[i]);
      pending.erase(pending.begin() + i);
      advanced = true;
      break;
    }
    if (!advanced) {
      return Status::FailedPrecondition(
          "no deletion order keeps the query fragment connected");
    }
  }
  // Apply for real. Individual steps cannot fail now.
  StepReport report;
  Stopwatch spig_timer;
  for (FormulationId ell : order) {
    PRAGUE_RETURN_NOT_OK(query_.DeleteEdge(ell));
    spigs_.RemoveForDeletedEdge(ell);
    report.edge = ell;
    SessionAction a;
    a.kind = SessionAction::Kind::kDeleteEdge;
    a.ell = ell;
    log_.push_back(a);
  }
  report.spig_seconds = spig_timer.ElapsedSeconds();
  RecordSpigBuild(report.spig_seconds);
  MaybeExitSimilarity();
  RefreshCandidates(&report);
  return report;
}

Result<StepReport> PragueSession::RelabelNode(NodeId node, Label new_label) {
  if (node >= query_.UserNodeCount()) {
    return Status::NotFound("node does not exist");
  }
  StepReport report;
  Stopwatch spig_timer;
  FormulationMask affected = query_.IncidentEdgeMask(node);
  PRAGUE_RETURN_NOT_OK(query_.RelabelNode(node, new_label));
  if (affected != 0) {
    PRAGUE_RETURN_NOT_OK(
        spigs_.RefreshForRelabel(query_, affected, snap_->indexes()));
  }
  report.spig_seconds = spig_timer.ElapsedSeconds();
  RecordSpigBuild(report.spig_seconds);
  MaybeExitSimilarity();
  RefreshCandidates(&report);
  SessionAction a;
  a.kind = SessionAction::Kind::kRelabelNode;
  a.node = node;
  a.label = new_label;
  log_.push_back(a);
  return report;
}

Result<std::vector<StepReport>> PragueSession::AddPattern(
    const Graph& pattern,
    const std::vector<std::pair<NodeId, NodeId>>& attach) {
  if (pattern.EdgeCount() == 0 || !pattern.IsConnected()) {
    return Status::InvalidArgument("pattern must be a connected graph");
  }
  if (!query_.Empty() && attach.empty()) {
    return Status::InvalidArgument(
        "pattern must attach to the existing fragment");
  }
  // Resolve/validate the pattern-node → session-node map.
  std::vector<NodeId> node_map(pattern.NodeCount(), kInvalidNode);
  for (const auto& [pattern_node, session_node] : attach) {
    if (pattern_node >= pattern.NodeCount() ||
        session_node >= query_.UserNodeCount()) {
      return Status::InvalidArgument("bad attach pair");
    }
    if (pattern.NodeLabel(pattern_node) !=
        query_.NodeLabel(session_node)) {
      return Status::InvalidArgument(
          "attach pair labels differ; relabel first");
    }
    node_map[pattern_node] = session_node;
  }
  // Edge order: attached nodes count as already connected to the canvas.
  std::vector<bool> touched(pattern.NodeCount(), false);
  for (const auto& [pattern_node, unused] : attach) {
    touched[pattern_node] = true;
  }
  bool canvas_empty = query_.Empty();
  std::vector<EdgeId> order;
  std::vector<bool> used(pattern.EdgeCount(), false);
  for (size_t step = 0; step < pattern.EdgeCount(); ++step) {
    EdgeId next = kInvalidEdge;
    for (EdgeId e = 0; e < pattern.EdgeCount(); ++e) {
      if (used[e]) continue;
      const Edge& edge = pattern.GetEdge(e);
      if (touched[edge.u] || touched[edge.v] ||
          (canvas_empty && order.empty())) {
        next = e;
        break;
      }
    }
    if (next == kInvalidEdge) {
      return Status::InvalidArgument(
          "pattern cannot be drawn connected from the attach points");
    }
    used[next] = true;
    touched[pattern.GetEdge(next).u] = true;
    touched[pattern.GetEdge(next).v] = true;
    order.push_back(next);
  }
  // Apply edge-at-a-time, exactly as hand drawing would.
  std::vector<StepReport> reports;
  for (EdgeId e : order) {
    const Edge& edge = pattern.GetEdge(e);
    for (NodeId endpoint : {edge.u, edge.v}) {
      if (node_map[endpoint] == kInvalidNode) {
        node_map[endpoint] = AddNode(pattern.NodeLabel(endpoint));
      }
    }
    Result<StepReport> report =
        AddEdge(node_map[edge.u], node_map[edge.v], edge.label);
    if (!report.ok()) return report.status();
    reports.push_back(*report);
  }
  return reports;
}

Result<StepReport> PragueSession::EnableSimilarity() {
  if (query_.Empty()) {
    return Status::FailedPrecondition("no query fragment yet");
  }
  sim_flag_ = true;
  StepReport report;
  report.edge = query_.LastFormulationId();
  RefreshCandidates(&report);
  SessionAction a;
  a.kind = SessionAction::Kind::kSimQuery;
  log_.push_back(a);
  return report;
}

ThreadPool* PragueSession::VerificationPool() {
  if (config_.verification_threads <= 1) return nullptr;
  if (!pool_) {
    pool_ = std::make_unique<ThreadPool>(config_.verification_threads);
  }
  return pool_.get();
}

ThreadPool* PragueSession::SpigPool() {
  size_t threads = config_.spig_threads == 0 ? config_.verification_threads
                                             : config_.spig_threads;
  if (threads <= 1) return nullptr;
  if (threads == config_.verification_threads) return VerificationPool();
  if (!spig_pool_) spig_pool_ = std::make_unique<ThreadPool>(threads);
  return spig_pool_.get();
}

ShardPlan PragueSession::ResolveShardPlan() {
  ShardPlan plan;
  if (config_.shards <= 1) return plan;
  if (config_.sharded_snapshot != nullptr &&
      config_.sharded_snapshot->Covers(*snap_)) {
    plan.view = config_.sharded_snapshot.get();
  } else {
    if (!own_sharded_ || !own_sharded_->Covers(*snap_)) {
      own_sharded_ = ShardedSnapshot::Make(snap_, config_.shards);
    }
    plan.view = own_sharded_.get();
  }
  // Make() clamps to the database size; a one-shard view never scatters.
  if (!plan.active()) return plan;
  if (config_.shard_pool != nullptr) {
    plan.pool = config_.shard_pool.get();
  } else {
    if (!own_shard_pool_) {
      size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
      own_shard_pool_ = std::make_shared<ThreadPool>(
          std::min(plan.view->shard_count(), hw));
    }
    plan.pool = own_shard_pool_.get();
  }
  return plan;
}

Deadline PragueSession::RunDeadline() const {
  Deadline d = config_.run_deadline_ms > 0
                   ? Deadline::AfterMillis(config_.run_deadline_ms)
                   : Deadline();
  return d.WithToken(config_.cancellation);
}

Deadline PragueSession::StepDeadline() const {
  Deadline d = config_.step_deadline_ms > 0
                   ? Deadline::AfterMillis(config_.step_deadline_ms)
                   : Deadline();
  return d.WithToken(config_.cancellation);
}

Result<QueryResults> PragueSession::Run(RunStats* stats) {
  return Run(RunDeadline(), stats);
}

Result<QueryResults> PragueSession::Run(const Deadline& deadline,
                                        RunStats* stats) {
  if (query_.Empty()) {
    return Status::FailedPrecondition("no query fragment to run");
  }
  Stopwatch timer;
  obs::RunTrace trace;
  trace.session_tag = config_.session_tag;
  trace.snapshot_version = snap_->version();
  trace.run_ordinal = runs_completed_ + 1;
  trace.query_edges = query_.EdgeCount();
  trace.similarity = sim_flag_;
  // Formulation work happened before Run() (during GUI latency); surface
  // the cumulative totals so one trace covers the whole episode.
  trace.spans.push_back({"formulation-spig", formulation_spig_seconds_});
  trace.spans.push_back(
      {"formulation-candidates", formulation_candidate_seconds_});
  const Graph& q = query_.CurrentGraph();
  QueryResults results;
  RunStats local;
  ThreadPool* pool = VerificationPool();
  ShardPlan plan = ResolveShardPlan();
  auto mark_cut = [&](RunPhase phase) {
    results.truncated = true;
    local.truncated = true;
    if (local.deadline_phase == RunPhase::kNone) local.deadline_phase = phase;
  };
  if (!sim_flag_) {
    // Verification-free answers (the FG-Index [2] guarantee the indexes
    // inherit): when the whole query is an indexed frequent fragment or
    // DIF, Rq is its exact FSG id set — no subgraph-isomorphism test
    // needed.
    const SpigVertex* target = TargetVertex();
    if (target != nullptr &&
        (target->frag.IsFrequent() || target->frag.IsDif())) {
      results.exact.assign(rq_.begin(), rq_.end());
      local.verified = results.exact.size();
      local.rejected = 0;
    } else {
      obs::TraceSpan span(&trace, "exact-verification");
      VerificationOutcome outcome;
      if (plan.active()) {
        Status shard_error;
        results.exact = ShardedExactVerification(
            q, rq_, snap_->db(), plan, deadline, &outcome, &trace,
            &shard_error);
        if (!shard_error.ok()) return shard_error;
      } else {
        results.exact =
            ExactVerification(q, rq_, snap_->db(), pool, deadline, &outcome);
      }
      local.verification_seconds = span.Stop();
      obs::EngineMetrics::Get().exact_verification_us->Record(
          ToMicros(local.verification_seconds));
      local.verified = results.exact.size();
      local.rejected = outcome.checked - results.exact.size();
      local.nodes_expanded += outcome.nodes_expanded;
      if (outcome.truncated) mark_cut(RunPhase::kExactVerification);
    }
    if (results.exact.empty() && !results.truncated) {
      // Algorithm 1 lines 19-21: exact verification came up empty — fall
      // back to similarity search.
      results.similarity = true;
      if (plan.active()) {
        // Fused scatter: each shard derives its candidates and generates
        // its matches in one task, so there is no global candidate phase —
        // the whole scatter is accounted to similarity_seconds
        // (candidate_seconds stays 0) under one top-level span.
        obs::TraceSpan sim_span(&trace, "similar-generation");
        bool gen_cut = false;
        RunPhase cut_phase = RunPhase::kNone;
        Status shard_error;
        results.similar = ShardedSimilarRun(
            q, spigs_, /*formulation_cands=*/nullptr, config_.sigma,
            snap_->db(), /*exact_rq=*/nullptr, &local.similar, config_.top_k,
            config_.filtering_verifier, deadline, plan, &gen_cut, &cut_phase,
            &trace, &shard_error);
        if (!shard_error.ok()) return shard_error;
        local.similarity_seconds = sim_span.Stop();
        obs::EngineMetrics::Get().similar_generation_us->Record(
            ToMicros(local.similarity_seconds));
        if (gen_cut) mark_cut(cut_phase);
      } else {
        obs::TraceSpan cand_span(&trace, "similar-candidates");
        bool cand_cut = false;
        SimilarCandidates cands = SimilarSubCandidates(
            spigs_, query_.EdgeCount(), config_.sigma, snap_->indexes(),
            config_.candidate_memo, deadline, &cand_cut);
        local.candidate_seconds = cand_span.Stop();
        obs::EngineMetrics::Get().similar_candidates_us->Record(
            ToMicros(local.candidate_seconds));
        if (cand_cut) mark_cut(RunPhase::kSimilarCandidates);
        obs::TraceSpan sim_span(&trace, "similar-generation");
        bool gen_cut = false;
        results.similar = SimilarResultsGen(
            q, spigs_, cands, config_.sigma, snap_->db(), nullptr,
            &local.similar, config_.top_k, pool, config_.filtering_verifier,
            deadline, &gen_cut);
        local.similarity_seconds = sim_span.Stop();
        obs::EngineMetrics::Get().similar_generation_us->Record(
            ToMicros(local.similarity_seconds));
        if (gen_cut) mark_cut(RunPhase::kSimilarGeneration);
      }
    }
  } else {
    results.similarity = true;
    // Distance-0 matches are possible when a deletion restored exact
    // matches while simFlag stayed set.
    const IdSet* exact_rq = rq_.empty() ? nullptr : &rq_;
    obs::TraceSpan sim_span(&trace, "similar-generation");
    bool gen_cut = false;
    if (plan.active()) {
      // Warm path: the formulation-time candidates are restricted to each
      // shard's range instead of re-derived, so the memoized work is kept.
      RunPhase cut_phase = RunPhase::kNone;
      Status shard_error;
      results.similar = ShardedSimilarRun(
          q, spigs_, &similar_, config_.sigma, snap_->db(), exact_rq,
          &local.similar, config_.top_k, config_.filtering_verifier,
          deadline, plan, &gen_cut, &cut_phase, &trace, &shard_error);
      if (!shard_error.ok()) return shard_error;
      local.similarity_seconds = sim_span.Stop();
      obs::EngineMetrics::Get().similar_generation_us->Record(
          ToMicros(local.similarity_seconds));
      if (gen_cut) mark_cut(cut_phase);
    } else {
      results.similar = SimilarResultsGen(
          q, spigs_, similar_, config_.sigma, snap_->db(), exact_rq,
          &local.similar, config_.top_k, pool, config_.filtering_verifier,
          deadline, &gen_cut);
      local.similarity_seconds = sim_span.Stop();
      obs::EngineMetrics::Get().similar_generation_us->Record(
          ToMicros(local.similarity_seconds));
      if (gen_cut) mark_cut(RunPhase::kSimilarGeneration);
    }
  }
  local.nodes_expanded += local.similar.nodes_expanded;
  local.srt_seconds = timer.ElapsedSeconds();
  // Phase intervals are disjoint sub-intervals of the Run() wall clock, and
  // Stopwatch truncates to whole microseconds, so a sum of floors can never
  // exceed the floor of the total — the breakdown always accounts for at
  // most the SRT. The epsilon only absorbs double-addition rounding.
  assert(local.candidate_seconds + local.verification_seconds +
             local.similarity_seconds <=
         local.srt_seconds + 1e-9);
  ++runs_completed_;
  trace.truncated = local.truncated;
  trace.deadline_phase = RunPhaseName(local.deadline_phase);
  trace.srt_seconds = local.srt_seconds;
  trace.result_count =
      results.similarity ? results.similar.size() : results.exact.size();
  trace.vf2_calls = local.similar.vf2_calls;
  trace.nodes_expanded = local.nodes_expanded;
  trace.candidates_pruned = local.rejected + local.similar.rejected;
  obs::EngineMetrics& em = obs::EngineMetrics::Get();
  em.runs_total->Increment();
  if (local.truncated) em.runs_truncated_total->Increment();
  em.run_latency_us->Record(ToMicros(local.srt_seconds));
  em.vf2_calls_total->Increment(trace.vf2_calls);
  em.nodes_expanded_total->Increment(trace.nodes_expanded);
  em.candidates_pruned_total->Increment(trace.candidates_pruned);
  if (config_.run_tally != nullptr) {
    config_.run_tally->runs.Increment();
    if (local.truncated) config_.run_tally->truncated.Increment();
  }
  last_trace_ = trace;
  if (config_.trace_ring != nullptr) {
    config_.trace_ring->Add(std::move(trace));
  }
  if (stats != nullptr) *stats = local;
  return results;
}

std::optional<ModificationSuggestion> PragueSession::SuggestDeletion() const {
  return SuggestEdgeDeletion(query_, spigs_, snap_->indexes());
}

}  // namespace prague
