// Small POSIX filesystem helpers shared by the storage engine: durable
// whole-file writes (write-temp, fsync, rename, fsync-directory), reads,
// and directory maintenance. Centralized here so every caller gets the
// same crash-safety discipline — a file named by the manifest is only ever
// observed complete or absent, never half-written.

#ifndef PRAGUE_STORAGE_FS_UTIL_H_
#define PRAGUE_STORAGE_FS_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace prague::storage {

/// \brief Joins \p dir and \p name with exactly one separator.
std::string JoinPath(const std::string& dir, const std::string& name);

/// \brief True iff \p path exists (any file type).
bool PathExists(const std::string& path);

/// \brief Creates \p dir (and parents) if absent.
Status EnsureDir(const std::string& dir);

/// \brief Reads the whole file into a string.
Result<std::string> ReadFile(const std::string& path);

/// \brief Durably replaces dir/name: writes dir/name.tmp, fsyncs it,
/// renames over dir/name, and fsyncs the directory so the rename itself
/// survives a crash. The destination is never observable half-written.
Status WriteFileDurable(const std::string& dir, const std::string& name,
                        const std::string& contents);

/// \brief fsyncs a directory (making renames/creates/unlinks durable).
Status SyncDir(const std::string& dir);

/// \brief Removes a file; missing files are not an error.
Status RemoveFile(const std::string& path);

/// \brief Size of a regular file in bytes (NotFound when absent).
Result<uint64_t> FileSize(const std::string& path);

/// \brief Names of regular files directly inside \p dir (no recursion).
Result<std::vector<std::string>> ListDir(const std::string& dir);

}  // namespace prague::storage

#endif  // PRAGUE_STORAGE_FS_UTIL_H_
