// Exhaustive isomorphism oracles. Exponential — test-only reference
// implementations used to validate VF2 and the canonical codes on small
// graphs; never called from production paths.

#ifndef PRAGUE_GRAPH_BRUTE_FORCE_ISO_H_
#define PRAGUE_GRAPH_BRUTE_FORCE_ISO_H_

#include "graph/graph.h"
#include "util/deadline.h"

namespace prague {

/// \brief Subgraph-isomorphism test by exhaustive injective enumeration.
bool BruteForceSubgraphIsomorphic(const Graph& pattern, const Graph& target);

/// \brief Deadline-bounded variant: returns false when the enumeration is
/// cut before finding a match; \p deadline_hit (optional) reports the cut.
bool BruteForceSubgraphIsomorphic(const Graph& pattern, const Graph& target,
                                  const Deadline& deadline,
                                  bool* deadline_hit);

/// \brief Isomorphism test by exhaustive bijection enumeration.
bool BruteForceIsomorphic(const Graph& a, const Graph& b);

/// \brief Counts distinct subgraph-isomorphism mappings exhaustively.
size_t BruteForceCountMappings(const Graph& pattern, const Graph& target);

}  // namespace prague

#endif  // PRAGUE_GRAPH_BRUTE_FORCE_ISO_H_
