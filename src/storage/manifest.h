// Manifest: the one file naming the live on-disk state of a data
// directory — which segment holds the checkpointed snapshot, which WAL
// file carries the tail, and the snapshot version the segment was written
// at (the WAL watermark: replay applies only records past it).
//
// The manifest is the atomicity point of the checkpoint protocol
// (docs/STORAGE.md): it is replaced with write-temp + fsync + rename +
// fsync-directory, so a reader observes either the old state or the new
// state, never a mix. Files not named by the current manifest are garbage
// from an interrupted checkpoint and are swept on open.
//
// Text format (one token pair per line, CRC-sealed):
//
//   PRAGUE_MANIFEST 1
//   version <snapshot version of the segment>
//   alpha <mining ratio the index was built with>
//   segment <file name>
//   wal <file name>
//   crc <crc32c of everything above>

#ifndef PRAGUE_STORAGE_MANIFEST_H_
#define PRAGUE_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace prague::storage {

/// File name of the manifest inside a data directory.
inline constexpr char kManifestFileName[] = "MANIFEST";

/// \brief The live-state record of one data directory.
struct Manifest {
  /// On-disk format version (bumped only on incompatible layout changes).
  uint64_t format_version = 1;
  /// Snapshot version stored in the segment — the WAL watermark.
  uint64_t snapshot_version = 0;
  /// Mining ratio α the persisted index was built with.
  double alpha = 0.1;
  /// Segment file name (relative to the data directory).
  std::string segment_file;
  /// WAL file name (relative to the data directory).
  std::string wal_file;

  bool operator==(const Manifest&) const = default;
};

/// \brief Loads and validates the manifest of \p dir. NotFound when the
/// directory has never been initialized; Corruption on CRC or format
/// damage (a half-written manifest is impossible by construction, so
/// damage means real corruption, not a crash artifact).
Result<Manifest> LoadManifest(const std::string& dir);

/// \brief Atomically replaces the manifest of \p dir.
Status SaveManifest(const std::string& dir, const Manifest& manifest);

}  // namespace prague::storage

#endif  // PRAGUE_STORAGE_MANIFEST_H_
