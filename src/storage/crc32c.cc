#include "storage/crc32c.h"

#include <array>

namespace prague::storage {

namespace {

// Reflected CRC32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

// 8 slicing tables, built once at static-init time. Table 0 is the plain
// byte-at-a-time table; table k folds a byte sitting k positions deeper.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (size_t k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Process 8 bytes per step (byte-wise loads keep this alignment- and
  // endian-agnostic; the compiler vectorizes the table lookups fine).
  while (n >= 8) {
    crc = tb.t[7][(crc & 0xFF) ^ p[0]] ^ tb.t[6][((crc >> 8) & 0xFF) ^ p[1]] ^
          tb.t[5][((crc >> 16) & 0xFF) ^ p[2]] ^
          tb.t[4][((crc >> 24) & 0xFF) ^ p[3]] ^ tb.t[3][p[4]] ^
          tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc & 0xFF) ^ *p++];
  }
  return ~crc;
}

}  // namespace prague::storage
