#include "storage/recovery.h"

#include <utility>

#include "obs/metrics.h"
#include "storage/coding.h"
#include "storage/fs_util.h"
#include "storage/wal.h"
#include "util/logging.h"

namespace prague::storage {

namespace {

obs::Counter* RecoveryReplayedRecords() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "prague_storage_recovery_replayed_records");
  return c;
}

}  // namespace

std::string EncodeAppendPayload(const AppendPayload& payload) {
  ByteWriter out;
  out.PutU64(payload.to_version);
  out.PutDouble(payload.options.alpha);
  out.PutU64(payload.options.max_fragment_edges);
  out.PutU8(payload.options.reclassify ? 1 : 0);
  out.PutU32(static_cast<uint32_t>(payload.label_names.size()));
  for (const std::string& name : payload.label_names) out.PutString(name);
  out.PutU32(static_cast<uint32_t>(payload.graphs.size()));
  for (const Graph& g : payload.graphs) {
    out.PutU32(static_cast<uint32_t>(g.NodeCount()));
    for (Label l : g.node_labels()) out.PutU32(l);
    out.PutU32(static_cast<uint32_t>(g.EdgeCount()));
    for (const Edge& e : g.edges()) {
      out.PutU32(e.u);
      out.PutU32(e.v);
      out.PutU32(e.label);
    }
  }
  return std::move(out).Take();
}

Result<AppendPayload> DecodeAppendPayload(std::string_view bytes) {
  ByteReader in(bytes);
  AppendPayload payload;
  PRAGUE_ASSIGN_OR_RETURN(payload.to_version, in.U64());
  PRAGUE_ASSIGN_OR_RETURN(payload.options.alpha, in.Double());
  PRAGUE_ASSIGN_OR_RETURN(uint64_t max_edges, in.U64());
  payload.options.max_fragment_edges = max_edges;
  PRAGUE_ASSIGN_OR_RETURN(uint8_t reclassify, in.U8());
  payload.options.reclassify = reclassify != 0;
  PRAGUE_ASSIGN_OR_RETURN(uint32_t label_count, in.U32());
  payload.label_names.reserve(label_count);
  for (uint32_t i = 0; i < label_count; ++i) {
    PRAGUE_ASSIGN_OR_RETURN(std::string_view name, in.String());
    payload.label_names.emplace_back(name);
  }
  PRAGUE_ASSIGN_OR_RETURN(uint32_t graph_count, in.U32());
  payload.graphs.reserve(graph_count);
  for (uint32_t gi = 0; gi < graph_count; ++gi) {
    GraphBuilder b;
    PRAGUE_ASSIGN_OR_RETURN(uint32_t node_count, in.U32());
    for (uint32_t n = 0; n < node_count; ++n) {
      PRAGUE_ASSIGN_OR_RETURN(Label label, in.U32());
      if (label >= label_count) {
        return Status::Corruption("append payload: node label out of range");
      }
      b.AddNode(label);
    }
    PRAGUE_ASSIGN_OR_RETURN(uint32_t edge_count, in.U32());
    for (uint32_t e = 0; e < edge_count; ++e) {
      PRAGUE_ASSIGN_OR_RETURN(uint32_t u, in.U32());
      PRAGUE_ASSIGN_OR_RETURN(uint32_t v, in.U32());
      PRAGUE_ASSIGN_OR_RETURN(Label label, in.U32());
      if (u >= node_count || v >= node_count) {
        return Status::Corruption("append payload: edge endpoint out of range");
      }
      Result<EdgeId> added = b.AddEdge(u, v, label);
      if (!added.ok()) {
        return Status::Corruption("append payload: " +
                                  added.status().message());
      }
    }
    payload.graphs.push_back(std::move(b).Build());
  }
  if (!in.exhausted()) {
    return Status::Corruption("append payload: trailing bytes");
  }
  return payload;
}

Result<RecoveredState> Recover(const std::string& dir,
                               const RecoveryOptions& options) {
  RecoveredState state;
  PRAGUE_ASSIGN_OR_RETURN(state.manifest, LoadManifest(dir));

  SegmentReadOptions seg_options;
  seg_options.verify_postings_crc = options.verify_postings_crc;
  PRAGUE_ASSIGN_OR_RETURN(
      OpenedSegment segment,
      OpenSegment(JoinPath(dir, state.manifest.segment_file), seg_options));
  if (segment.snapshot->version() != state.manifest.snapshot_version) {
    return Status::Corruption(
        "segment version " + std::to_string(segment.snapshot->version()) +
        " disagrees with manifest version " +
        std::to_string(state.manifest.snapshot_version));
  }
  state.snapshot = std::move(segment.snapshot);
  state.mapping = std::move(segment.mapping);
  state.posting_bytes = segment.posting_bytes;

  const std::string wal_path = JoinPath(dir, state.manifest.wal_file);
  Result<WalReadResult> wal = ReadWal(wal_path);
  if (!wal.ok()) {
    // A missing WAL file means a crash landed between segment publication
    // and WAL creation — the checkpoint protocol orders WAL creation
    // before the manifest rename, so this is genuine damage.
    return wal.status();
  }
  state.wal_valid_bytes = wal->valid_bytes;
  state.wal_tail_dropped = wal->tail_dropped;
  if (wal->tail_dropped) {
    PRAGUE_LOG(Warning) << wal->tail_warning;
  }

  for (const WalRecord& record : wal->records) {
    if (record.type != WalRecordType::kAppendGraphs) {
      return Status::Corruption("WAL record of unknown type " +
                                std::to_string(static_cast<int>(record.type)));
    }
    PRAGUE_ASSIGN_OR_RETURN(AppendPayload payload,
                            DecodeAppendPayload(record.payload));
    const uint64_t current = state.snapshot->version();
    if (payload.to_version <= current) continue;  // already in the segment
    if (payload.to_version != current + 1) {
      return Status::Corruption(
          "WAL gap: next record produces version " +
          std::to_string(payload.to_version) + " but snapshot is at " +
          std::to_string(current));
    }
    LabelDictionary batch_labels;
    for (const std::string& name : payload.label_names) {
      batch_labels.Intern(name);
    }
    PRAGUE_ASSIGN_OR_RETURN(
        SnapshotAppendResult applied,
        AppendGraphs(*state.snapshot, std::move(payload.graphs),
                     payload.options, &batch_labels));
    state.snapshot = std::move(applied.snapshot);
    ++state.replayed_records;
    RecoveryReplayedRecords()->Increment();
  }
  return state;
}

}  // namespace prague::storage
