// Status: lightweight error propagation without exceptions.
//
// Follows the RocksDB/Arrow idiom: functions that can fail return a Status
// (or a Result<T>, see result.h); success is the common, cheap path.

#ifndef PRAGUE_UTIL_STATUS_H_
#define PRAGUE_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace prague {

/// \brief Outcome of an operation that can fail.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// human-readable message. Status is cheap to copy on the OK path (empty
/// message string).
class Status {
 public:
  /// Error categories used across the library.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kIOError,
    kNotSupported,
    kFailedPrecondition,
    kDeadlineExceeded,
    kProtocolError,
    kInternal,
    kBusy,
  };

  Status() = default;

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }
  /// \brief Returns an InvalidArgument error with \p msg.
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  /// \brief Returns a NotFound error with \p msg.
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  /// \brief Returns a Corruption error with \p msg.
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  /// \brief Returns an IOError with \p msg.
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  /// \brief Returns a NotSupported error with \p msg.
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  /// \brief Returns a FailedPrecondition error with \p msg.
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  /// \brief Returns a DeadlineExceeded error with \p msg. Used where a
  /// deadline hit cannot yield a usable partial result (e.g. an aborted
  /// SPIG build); query paths degrade to truncated results instead.
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  /// \brief Returns a ProtocolError with \p msg. Raised when a peer on the
  /// wire speaks the protocol wrong — e.g. a reply frame arrives for a
  /// request id that was never issued — as opposed to Corruption, which is
  /// reserved for byte-level damage (bad framing, unparseable payloads).
  static Status ProtocolError(std::string msg) {
    return Status(Code::kProtocolError, std::move(msg));
  }
  /// \brief Returns an Internal error with \p msg. Raised when an
  /// invariant the library itself maintains breaks — e.g. an exception
  /// escaping a pool task — as opposed to errors caused by inputs.
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  /// \brief Returns a Busy error with \p msg. Raised when admission
  /// control sheds work — a tenant is over quota or the server is
  /// saturated — so the request was never attempted. Unlike every other
  /// code, Busy means "retry later" rather than "this request is wrong";
  /// on the wire it carries a retry-after hint (see server/wire.h).
  static Status Busy(std::string msg) {
    return Status(Code::kBusy, std::move(msg));
  }

  /// \brief True iff the operation succeeded.
  bool ok() const { return code_ == Code::kOk; }
  /// \brief The error category.
  Code code() const { return code_; }
  /// \brief The error message; empty for OK.
  const std::string& message() const { return message_; }

  /// \brief Renders "OK" or "<code>: <message>" for diagnostics.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// \brief Propagates a non-OK Status to the caller.
#define PRAGUE_RETURN_NOT_OK(expr)          \
  do {                                      \
    ::prague::Status _st = (expr);          \
    if (!_st.ok()) return _st;              \
  } while (false)

}  // namespace prague

#endif  // PRAGUE_UTIL_STATUS_H_
