#include "core/spig.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "graph/code_memo.h"
#include "graph/subgraph_ops.h"
#include "util/bytes.h"
#include "util/thread_pool.h"

namespace prague {

namespace {

// Below this many vertices a level is built inline even when a pool is
// available: task overhead beats the win on tiny levels.
constexpr size_t kMinParallelLevelSize = 4;

// Highest formulation id present in a mask (masks are never 0 here).
FormulationId MaxFormulationId(FormulationMask mask) {
  assert(mask != 0);
  return 64 - __builtin_clzll(mask);
}

void SortUnique(std::vector<uint32_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

// Folds one already-resolved subgraph vertex (an in-SPIG parent or the
// g−eℓ vertex from an earlier SPIG) into a NIF's Φ/Υ, per Algorithm 2
// lines 6-11: frequent (size−1)-subgraphs feed Φ; DIF ids and inherited
// Υ sets feed Υ.
void InheritInto(const SpigVertex& sub, FragmentList* frag) {
  if (sub.frag.freq_id) frag->phi.push_back(*sub.frag.freq_id);
  frag->upsilon.reserve(frag->upsilon.size() + sub.frag.upsilon.size() + 1);
  if (sub.frag.dif_id) frag->upsilon.push_back(*sub.frag.dif_id);
  frag->upsilon.insert(frag->upsilon.end(), sub.frag.upsilon.begin(),
                       sub.frag.upsilon.end());
}

}  // namespace

const std::vector<SpigVertex>& Spig::Level(int level) const {
  static const std::vector<SpigVertex> kEmpty;
  if (level < 1 || level >= static_cast<int>(levels_.size())) return kEmpty;
  return levels_[level];
}

size_t Spig::VertexCount() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

const SpigVertex* Spig::FindByEdgeList(FormulationMask mask) const {
  auto it = by_mask_.find(mask);
  if (it == by_mask_.end()) return nullptr;
  return &levels_[it->second.first][it->second.second];
}

void Spig::RemoveVerticesWithEdge(FormulationId ell_d) {
  FormulationMask bit = FormulationBit(ell_d);
  by_mask_.clear();
  for (int level = 1; level < static_cast<int>(levels_.size()); ++level) {
    auto& vec = levels_[level];
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [bit](const SpigVertex& v) {
                               return (v.edge_list & bit) != 0;
                             }),
              vec.end());
    // Surviving vertices keep their memoized candidate sets: their
    // fragments are untouched by the deletion, so the cached Algorithm-3
    // results stay valid — this is what keeps DeleteEdge near the paper's
    // zero-cost-modification promise.
    for (int i = 0; i < static_cast<int>(vec.size()); ++i) {
      by_mask_.emplace(vec[i].edge_list, std::make_pair(level, i));
    }
  }
  while (levels_.size() > 1 && levels_.back().empty()) levels_.pop_back();
}

size_t Spig::ByteSize() const {
  size_t bytes = VectorBytes(levels_);
  for (const auto& level : levels_) {
    bytes += VectorBytes(level);
    for (const SpigVertex& v : level) {
      bytes += v.fragment.ByteSize() + v.code.capacity() +
               VectorBytes(v.frag.phi) + VectorBytes(v.frag.upsilon) +
               v.cand_cache.ByteSize();
    }
  }
  bytes += by_mask_.size() *
           (sizeof(FormulationMask) + sizeof(std::pair<int, int>) + 16);
  return bytes;
}

// Resolves one SPIG vertex of `spig` (its edge_list is already set):
// extracts the subgraph, computes the canonical code, and fills the
// Fragment List by index lookup or Φ/Υ inheritance (Algorithm 2 lines
// 6-11). Reads only the query, the indexes, completed earlier levels of
// `spig`, and fully built earlier SPIGs — safe to run concurrently for
// all vertices of one level.
void SpigSet::BuildVertex(const VisualQuery& query, const Graph& q,
                          EdgeId graph_edge, EdgeMask gmask, const Spig& spig,
                          const ActionAwareIndexes& indexes,
                          SpigVertex* v) const {
  ExtractedSubgraph sub = ExtractEdgeSubgraph(q, gmask);
  v->fragment = std::move(sub.graph);
  v->code = GetCanonicalCode(v->fragment);

  if (std::optional<A2fId> fid = indexes.a2f.Lookup(v->code)) {
    v->frag.freq_id = *fid;
  } else if (std::optional<A2iId> did = indexes.a2i.Lookup(v->code)) {
    v->frag.dif_id = *did;
  } else {
    // NIF: inherit Φ/Υ from the (level−1)-subgraphs. Those containing
    // eℓ are this SPIG's parents (drop one non-eℓ edge, if still
    // connected); the single one without eℓ lives in the SPIG of its
    // own largest formulation id (Algorithm 2 lines 8-11).
    v->frag.phi.reserve(MaskSize(gmask));
    for (EdgeId e = 0; e < q.EdgeCount(); ++e) {
      if (e == graph_edge || !(gmask & EdgeBit(e))) continue;
      EdgeMask parent_mask = gmask & ~EdgeBit(e);
      if (!IsEdgeSubsetConnected(q, parent_mask)) continue;
      const SpigVertex* parent =
          spig.FindByEdgeList(query.ToFormulationMask(parent_mask));
      assert(parent != nullptr && "parent level must be complete");
      if (parent != nullptr) InheritInto(*parent, &v->frag);
    }
    EdgeMask without_ell = gmask & ~EdgeBit(graph_edge);
    if (without_ell != 0 && IsEdgeSubsetConnected(q, without_ell)) {
      FormulationMask fmask = query.ToFormulationMask(without_ell);
      const SpigVertex* prior = FindVertexInternal(fmask);
      assert(prior != nullptr && "earlier SPIGs must cover this subset");
      if (prior != nullptr) InheritInto(*prior, &v->frag);
    }
    SortUnique(&v->frag.phi);
    SortUnique(&v->frag.upsilon);
  }
}

Result<const Spig*> SpigSet::AddForNewEdge(const VisualQuery& query,
                                           FormulationId ell,
                                           const ActionAwareIndexes& indexes,
                                           ThreadPool* pool,
                                           const Deadline& deadline) {
  if (spigs_.contains(ell)) {
    return Status::InvalidArgument("SPIG already built for e" +
                                   std::to_string(ell));
  }
  std::optional<EdgeId> graph_edge = query.GraphEdgeOfFormulationId(ell);
  if (!graph_edge) {
    return Status::NotFound("edge e" + std::to_string(ell) + " is not alive");
  }
  const Graph& q = query.CurrentGraph();

  Spig spig;
  spig.ell_ = ell;
  std::vector<std::vector<EdgeMask>> masks =
      ConnectedEdgeSupersetsOf(q, *graph_edge);
  spig.levels_.resize(masks.size());

  // Level-by-level with a barrier between levels: resolving a level-k NIF
  // reads the completed level k−1 (in-SPIG parents) and earlier SPIGs, so
  // within one level every vertex is independent. Slots are pre-sized and
  // the by-mask table pre-registered in enumeration order, which makes the
  // parallel build's layout identical to the sequential one.
  //
  // The deadline is polled between vertices (and the level barrier checks
  // the shared flag): workers finish their current vertex, skip the rest,
  // and the whole half-built SPIG is thrown away below.
  const bool bounded = deadline.CanExpire();
  std::atomic<bool> expired{false};
  for (int level = 1; level < static_cast<int>(masks.size()); ++level) {
    const std::vector<EdgeMask>& level_masks = masks[level];
    std::vector<SpigVertex>& out = spig.levels_[level];
    out.resize(level_masks.size());
    for (size_t i = 0; i < level_masks.size(); ++i) {
      out[i].edge_list = query.ToFormulationMask(level_masks[i]);
      spig.by_mask_.emplace(out[i].edge_list,
                            std::make_pair(level, static_cast<int>(i)));
    }
    auto build_range = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        if (bounded && (expired.load(std::memory_order_relaxed) ||
                        deadline.Expired())) {
          expired.store(true, std::memory_order_relaxed);
          return;
        }
        BuildVertex(query, q, *graph_edge, level_masks[i], spig, indexes,
                    &out[i]);
      }
    };
    if (pool != nullptr && pool->size() > 1 &&
        level_masks.size() >= kMinParallelLevelSize) {
      pool->ParallelFor(level_masks.size(), 1, build_range);
    } else {
      build_range(0, level_masks.size());
    }
    if (expired.load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded(
          "SPIG construction for e" + std::to_string(ell) +
          " exceeded its budget at level " + std::to_string(level));
    }
  }

  auto [it, inserted] = spigs_.emplace(ell, std::move(spig));
  assert(inserted);
  (void)inserted;
  return &it->second;
}

namespace {

// Recomputes a Fragment List from scratch: index lookups for the fragment
// itself, else Φ = frequent (size−1)-subgraphs and Υ = all DIF subgraphs
// by full enumeration (Definition 4, computed the slow way). Subgraph
// codes go through the global canonical-code memo: a relabel refreshes
// many SPIG vertices whose enumerations overlap heavily.
FragmentList DirectFragmentList(const Graph& fragment,
                                const CanonicalCode& code,
                                const ActionAwareIndexes& indexes) {
  FragmentList out;
  if (std::optional<A2fId> fid = indexes.a2f.Lookup(code)) {
    out.freq_id = *fid;
    return out;
  }
  if (std::optional<A2iId> did = indexes.a2i.Lookup(code)) {
    out.dif_id = *did;
    return out;
  }
  std::vector<std::vector<EdgeMask>> by_size =
      ConnectedEdgeSubsetsBySize(fragment);
  CanonicalCodeMemo& memo = CanonicalCodeMemo::Global();
  for (size_t k = 1; k < fragment.EdgeCount(); ++k) {
    out.upsilon.reserve(out.upsilon.size() + by_size[k].size());
    for (EdgeMask mask : by_size[k]) {
      Graph sub = ExtractEdgeSubgraph(fragment, mask).graph;
      CanonicalCode sub_code = memo.Get(sub);
      if (k + 1 == fragment.EdgeCount()) {
        if (std::optional<A2fId> fid = indexes.a2f.Lookup(sub_code)) {
          out.phi.push_back(*fid);
        }
      }
      if (std::optional<A2iId> did = indexes.a2i.Lookup(sub_code)) {
        out.upsilon.push_back(*did);
      }
    }
  }
  SortUnique(&out.phi);
  SortUnique(&out.upsilon);
  return out;
}

}  // namespace

Status SpigSet::RefreshForRelabel(const VisualQuery& query,
                                  FormulationMask affected_edges,
                                  const ActionAwareIndexes& indexes) {
  const Graph& q = query.CurrentGraph();
  for (auto& [ell, spig] : spigs_) {
    for (auto& level : spig.levels_) {
      for (SpigVertex& v : level) {
        if (!(v.edge_list & affected_edges)) continue;
        EdgeMask gmask = query.ToGraphMask(v.edge_list);
        if (MaskSize(gmask) != v.Level()) {
          return Status::FailedPrecondition(
              "SPIG vertex no longer maps onto the query");
        }
        ExtractedSubgraph sub = ExtractEdgeSubgraph(q, gmask);
        v.fragment = std::move(sub.graph);
        v.code = GetCanonicalCode(v.fragment);
        v.frag = DirectFragmentList(v.fragment, v.code, indexes);
        // The fragment changed, so the memoized candidate set is stale.
        v.cand_cache = IdSet();
        v.cand_cached = false;
      }
    }
  }
  return Status::OK();
}

void SpigSet::RemoveForDeletedEdge(FormulationId ell_d) {
  spigs_.erase(ell_d);
  for (auto& [ell, spig] : spigs_) {
    if (ell > ell_d) spig.RemoveVerticesWithEdge(ell_d);
  }
}

void SpigSet::InvalidateCandidateCaches() const {
  for (const auto& [ell, spig] : spigs_) {
    for (const auto& level : spig.levels_) {
      for (const SpigVertex& v : level) {
        v.cand_cache = IdSet();
        v.cand_cached = false;
      }
    }
  }
}

const Spig* SpigSet::Find(FormulationId ell) const {
  auto it = spigs_.find(ell);
  return it == spigs_.end() ? nullptr : &it->second;
}

const SpigVertex* SpigSet::FindVertex(FormulationMask mask) const {
  return FindVertexInternal(mask);
}

const SpigVertex* SpigSet::FindVertexInternal(FormulationMask mask) const {
  if (mask == 0) return nullptr;
  const Spig* spig = Find(MaxFormulationId(mask));
  if (spig == nullptr) return nullptr;
  return spig->FindByEdgeList(mask);
}

size_t SpigSet::VertexCountAtLevel(int level) const {
  size_t total = 0;
  for (const auto& [ell, spig] : spigs_) total += spig.Level(level).size();
  return total;
}

size_t SpigSet::TotalVertexCount() const {
  size_t total = 0;
  for (const auto& [ell, spig] : spigs_) total += spig.VertexCount();
  return total;
}

size_t SpigSet::ByteSize() const {
  size_t bytes = 0;
  for (const auto& [ell, spig] : spigs_) bytes += spig.ByteSize();
  return bytes;
}

}  // namespace prague
