// AIDS-like molecular dataset generator.
//
// Substitution note (see DESIGN.md): the paper evaluates on the AIDS
// Antiviral Screen dataset (40K compound graphs, avg 25 vertices / 27
// edges, max 222 / 251). That dataset is not redistributable here, so this
// generator produces molecule-shaped graphs with the same statistical
// profile: heavily skewed atom-label distribution (C dominates; N, O, S,
// Cl, ... minorities; Hg/As rare), ring-and-chain topology giving a small
// cycle count per molecule, the same average size, and a heavy size tail.
// PRAGUE's behaviour depends on exactly these properties — label skew is
// what creates frequent fragments and DIFs.

#ifndef PRAGUE_DATASETS_AIDS_GENERATOR_H_
#define PRAGUE_DATASETS_AIDS_GENERATOR_H_

#include <cstdint>

#include "graph/graph_database.h"

namespace prague {

/// \brief Parameters for the AIDS-like generator.
struct AidsGeneratorConfig {
  size_t graph_count = 10000;
  uint64_t seed = 42;
  /// Target average node count (the real dataset averages ≈ 25).
  double avg_nodes = 25.0;
  /// Hard cap on molecule size (real max is 222 vertices).
  size_t max_nodes = 222;
  /// When true, edges carry bond-type labels (0 = single, 1 = double;
  /// ~15% double). The paper's model supports edge labels; its chemical
  /// evaluation used node labels only, so this defaults off.
  bool bond_labels = false;
};

/// \brief Generates an AIDS-like molecular graph database.
///
/// Deterministic in (config.seed, config.graph_count): the i-th molecule
/// depends only on the seed and i.
GraphDatabase GenerateAidsLikeDatabase(const AidsGeneratorConfig& config);

}  // namespace prague

#endif  // PRAGUE_DATASETS_AIDS_GENERATOR_H_
