#include "index/a2f_index.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "graph/subgraph_ops.h"
#include "util/bytes.h"

namespace prague {

A2FIndex A2FIndex::Build(const std::vector<MinedFragment>& frequent,
                         const A2fConfig& config) {
  A2FIndex index;
  index.beta_ = config.beta;
  index.vertices_.reserve(frequent.size());
  for (const MinedFragment& frag : frequent) {
    A2fVertex v;
    v.fragment = frag.graph;
    v.code = frag.code;
    v.fsg_ids = frag.fsg_ids;
    v.in_mf = frag.graph.EdgeCount() <= config.beta;
    A2fId id = static_cast<A2fId>(index.vertices_.size());
    index.by_code_.emplace(v.code, id);
    index.vertices_.push_back(std::move(v));
  }

  // DAG edges: for each fragment, find its one-edge-smaller connected
  // subgraphs among the indexed fragments.
  for (A2fId id = 0; id < index.vertices_.size(); ++id) {
    A2fVertex& v = index.vertices_[id];
    if (v.size() < 2) continue;
    std::vector<std::vector<EdgeMask>> by_size =
        ConnectedEdgeSubsetsBySize(v.fragment);
    std::vector<A2fId> parents;
    for (EdgeMask mask : by_size[v.size() - 1]) {
      ExtractedSubgraph sub = ExtractEdgeSubgraph(v.fragment, mask);
      auto it = index.by_code_.find(GetCanonicalCode(sub.graph));
      if (it == index.by_code_.end()) continue;  // subgraph not frequent?
      parents.push_back(it->second);
    }
    std::sort(parents.begin(), parents.end());
    parents.erase(std::unique(parents.begin(), parents.end()), parents.end());
    v.parents = parents;
    for (A2fId p : parents) index.vertices_[p].children.push_back(id);
  }
  for (A2fVertex& v : index.vertices_) {
    std::sort(v.children.begin(), v.children.end());
    v.children.erase(std::unique(v.children.begin(), v.children.end()),
                     v.children.end());
  }

  // delId(f) = fsgIds(f) \ ∪_children fsgIds(child).
  for (A2fVertex& v : index.vertices_) {
    IdSet covered;
    for (A2fId c : v.children) {
      covered.UnionWith(index.vertices_[c].fsg_ids);
    }
    v.del_ids = v.fsg_ids.Subtract(covered);
  }

  index.mf_count_ = 0;
  for (const A2fVertex& v : index.vertices_) {
    if (v.in_mf) ++index.mf_count_;
  }

  // DF clusters: every size-(β+1) fragment roots a cluster; each larger
  // fragment joins the cluster of its smallest-id root ancestor.
  std::unordered_map<A2fId, uint32_t> cluster_of_root;
  for (A2fId id = 0; id < index.vertices_.size(); ++id) {
    if (index.vertices_[id].size() == config.beta + 1) {
      uint32_t cid = static_cast<uint32_t>(index.clusters_.size());
      cluster_of_root.emplace(id, cid);
      index.clusters_.push_back(FragmentCluster{id, {id}});
    }
  }
  // Assign deeper DF fragments by walking parents down to a root.
  std::function<std::optional<uint32_t>(A2fId)> find_cluster =
      [&](A2fId id) -> std::optional<uint32_t> {
    const A2fVertex& v = index.vertices_[id];
    if (v.size() == config.beta + 1) {
      auto it = cluster_of_root.find(id);
      return it == cluster_of_root.end() ? std::nullopt
                                         : std::optional<uint32_t>(it->second);
    }
    for (A2fId p : v.parents) {
      if (index.vertices_[p].size() > config.beta) {
        std::optional<uint32_t> c = find_cluster(p);
        if (c) return c;
      }
    }
    return std::nullopt;
  };
  for (A2fId id = 0; id < index.vertices_.size(); ++id) {
    const A2fVertex& v = index.vertices_[id];
    if (v.in_mf || v.size() == config.beta + 1) continue;
    std::optional<uint32_t> c = find_cluster(id);
    if (c) index.clusters_[*c].members.push_back(id);
  }

  // MF leaf (size == β) cluster lists: clusters whose root is a child.
  for (A2fId id = 0; id < index.vertices_.size(); ++id) {
    const A2fVertex& v = index.vertices_[id];
    if (v.size() != config.beta) continue;
    std::vector<uint32_t> list;
    for (A2fId child : v.children) {
      auto it = cluster_of_root.find(child);
      if (it != cluster_of_root.end()) list.push_back(it->second);
    }
    if (!list.empty()) index.leaf_clusters_.emplace(id, std::move(list));
  }
  return index;
}

std::optional<A2fId> A2FIndex::Lookup(const CanonicalCode& code) const {
  auto it = by_code_.find(code);
  if (it == by_code_.end()) return std::nullopt;
  return it->second;
}

const std::vector<uint32_t>& A2FIndex::ClusterList(A2fId leaf) const {
  static const std::vector<uint32_t> kEmpty;
  auto it = leaf_clusters_.find(leaf);
  return it == leaf_clusters_.end() ? kEmpty : it->second;
}

size_t A2FIndex::StorageBytes() const {
  // Stored form per Section III: CAM code + delId list + DAG links. The
  // materialized Graph on each vertex is a decoded cache, not index
  // storage (it is fully reconstructible from the code).
  size_t bytes = 0;
  for (const A2fVertex& v : vertices_) {
    bytes += v.code.size();
    bytes += v.del_ids.size() * sizeof(GraphId);
    bytes += (v.parents.size() + v.children.size()) * sizeof(A2fId);
  }
  for (const FragmentCluster& c : clusters_) {
    bytes += c.members.size() * sizeof(A2fId);
  }
  return bytes;
}

size_t A2FIndex::UncompressedBytes() const {
  size_t bytes = 0;
  for (const A2fVertex& v : vertices_) {
    bytes += v.code.size();
    bytes += v.fsg_ids.size() * sizeof(GraphId);
    bytes += (v.parents.size() + v.children.size()) * sizeof(A2fId);
  }
  for (const FragmentCluster& c : clusters_) {
    bytes += c.members.size() * sizeof(A2fId);
  }
  return bytes;
}

void A2FIndex::RecomputeDelIds() {
  for (A2fVertex& v : vertices_) {
    IdSet covered;
    for (A2fId c : v.children) covered.UnionWith(vertices_[c].fsg_ids);
    v.del_ids = v.fsg_ids.Subtract(covered);
  }
}

bool A2FIndex::ReconstructFromDelIds() {
  // fsgIds(f) = delId(f) ∪ ∪_children fsgIds(child). Process vertices in
  // decreasing fragment size so children are always ready.
  std::vector<A2fId> order(vertices_.size());
  for (A2fId i = 0; i < vertices_.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](A2fId a, A2fId b) {
    return vertices_[a].size() > vertices_[b].size();
  });
  for (A2fId id : order) {
    A2fVertex& v = vertices_[id];
    IdSet full = v.del_ids;
    for (A2fId c : v.children) {
      if (vertices_[c].size() != v.size() + 1) return false;
      full.UnionWith(vertices_[c].fsg_ids);
    }
    v.fsg_ids = std::move(full);
  }
  return true;
}

}  // namespace prague
