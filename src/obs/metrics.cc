#include "obs/metrics.h"

namespace prague::obs {

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      const double lower =
          static_cast<double>(Histogram::BucketLowerBound(i));
      // The overflow bucket has no real upper bound; pretend it is one
      // octave wide so interpolation stays finite.
      const double upper =
          i == kHistogramBuckets - 1
              ? lower * 2
              : static_cast<double>(Histogram::BucketUpperBound(i));
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      return lower + fraction * (upper - lower);
    }
    cumulative = next;
  }
  return static_cast<double>(
      Histogram::BucketUpperBound(kHistogramBuckets - 2));
}

double HistogramSnapshot::Mean() const {
  return count == 0 ? 0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Immortal: metric pointers are cached in static structs and recorded to
  // from detached-ish threads during shutdown; never destroy the registry.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  return snap;
}

std::string MetricsRegistry::RenderPrometheus() const {
  RegistrySnapshot snap = Snapshot();
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snap.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + ' ' + std::to_string(value) + '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ' + std::to_string(value) + '\n';
  }
  for (const auto& [name, hist] : snap.histograms) {
    out += "# TYPE " + name + " histogram\n";
    // Cumulative buckets up to the last non-empty one; everything after is
    // equal to the total and captured by the mandatory +Inf bucket.
    size_t last = 0;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      if (hist.buckets[i] != 0) last = i;
    }
    uint64_t cumulative = 0;
    for (size_t i = 0; i <= last && i + 1 < kHistogramBuckets &&
                       hist.count != 0;
         ++i) {
      cumulative += hist.buckets[i];
      out += name + "_bucket{le=\"" +
             std::to_string(Histogram::BucketUpperBound(i)) + "\"} " +
             std::to_string(cumulative) + '\n';
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count) + '\n';
    out += name + "_sum " + std::to_string(hist.sum) + '\n';
    out += name + "_count " + std::to_string(hist.count) + '\n';
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

EngineMetrics& EngineMetrics::Get() {
  static EngineMetrics* metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    auto* m = new EngineMetrics();
    m->runs_total = reg.GetCounter("prague_engine_runs_total");
    m->runs_truncated_total =
        reg.GetCounter("prague_engine_runs_truncated_total");
    m->step_deadline_total =
        reg.GetCounter("prague_engine_step_deadline_total");
    m->spig_steps_total = reg.GetCounter("prague_engine_spig_steps_total");
    m->vf2_calls_total = reg.GetCounter("prague_engine_vf2_calls_total");
    m->nodes_expanded_total =
        reg.GetCounter("prague_engine_nodes_expanded_total");
    m->candidates_pruned_total =
        reg.GetCounter("prague_engine_candidates_pruned_total");
    m->sessions_opened_total =
        reg.GetCounter("prague_engine_sessions_opened_total");
    m->snapshots_published_total =
        reg.GetCounter("prague_engine_snapshots_published_total");
    m->sessions_open = reg.GetGauge("prague_engine_sessions_open");
    m->run_latency_us = reg.GetHistogram("prague_engine_run_latency_us");
    m->exact_verification_us =
        reg.GetHistogram("prague_engine_exact_verification_us");
    m->similar_candidates_us =
        reg.GetHistogram("prague_engine_similar_candidates_us");
    m->similar_generation_us =
        reg.GetHistogram("prague_engine_similar_generation_us");
    m->spig_build_us = reg.GetHistogram("prague_engine_spig_build_us");
    m->candidate_refresh_us =
        reg.GetHistogram("prague_engine_candidate_refresh_us");
    m->shard_runs_total = reg.GetCounter("prague_engine_shard_runs_total");
    m->shard_tasks_total = reg.GetCounter("prague_engine_shard_tasks_total");
    m->shard_imbalance_x100 =
        reg.GetHistogram("prague_engine_shard_imbalance_x100");
    m->shard_merge_us = reg.GetHistogram("prague_engine_shard_merge_us");
    return m;
  }();
  return *metrics;
}

ServerMetrics& ServerMetrics::Get() {
  static ServerMetrics* metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    auto* m = new ServerMetrics();
    m->connections_total = reg.GetCounter("prague_server_connections_total");
    m->frames_total = reg.GetCounter("prague_server_frames_total");
    m->protocol_errors_total =
        reg.GetCounter("prague_server_protocol_errors_total");
    m->runs_truncated_total =
        reg.GetCounter("prague_server_runs_truncated_total");
    m->slow_queries_total = reg.GetCounter("prague_server_slow_queries_total");
    m->event_loop_wakeups_total =
        reg.GetCounter("prague_server_event_loop_wakeups_total");
    m->cmd_open_total = reg.GetCounter("prague_server_cmd_open_total");
    m->cmd_add_edge_total = reg.GetCounter("prague_server_cmd_add_edge_total");
    m->cmd_delete_edge_total =
        reg.GetCounter("prague_server_cmd_delete_edge_total");
    m->cmd_run_total = reg.GetCounter("prague_server_cmd_run_total");
    m->cmd_batch_run_total =
        reg.GetCounter("prague_server_cmd_batch_run_total");
    m->cmd_append_total = reg.GetCounter("prague_server_cmd_append_total");
    m->cmd_cancel_total = reg.GetCounter("prague_server_cmd_cancel_total");
    m->cmd_stats_total = reg.GetCounter("prague_server_cmd_stats_total");
    m->cmd_metrics_total = reg.GetCounter("prague_server_cmd_metrics_total");
    m->cmd_close_total = reg.GetCounter("prague_server_cmd_close_total");
    m->admission_admitted_total =
        reg.GetCounter("prague_server_admission_admitted_total");
    m->admission_shed_total =
        reg.GetCounter("prague_server_admission_shed_total");
    m->accepts_shed_total = reg.GetCounter("prague_server_accepts_shed_total");
    m->write_queue_drops_total =
        reg.GetCounter("prague_server_write_queue_drops_total");
    m->connections_open = reg.GetGauge("prague_server_connections_open");
    m->run_latency_us = reg.GetHistogram("prague_server_run_latency_us");
    m->write_queue_depth =
        reg.GetHistogram("prague_server_write_queue_depth");
    m->sched_queue_depth = reg.GetHistogram("prague_server_sched_queue_depth");
    m->batch_size = reg.GetHistogram("prague_server_batch_size");
    m->batch_latency_us = reg.GetHistogram("prague_server_batch_latency_us");
    return m;
  }();
  return *metrics;
}

}  // namespace prague::obs
