// DeadlineQueue — the scheduler queue behind deadline-aware dispatch.
//
// A min-priority queue keyed by an absolute steady-clock deadline with a
// monotone sequence number as the tie-break, so equal deadlines pop in
// insertion order (FIFO among peers) and the order is deterministic. The
// server's run scheduler uses it to serve queued runs
// shortest-remaining-budget-first across connections: a run whose budget
// expires soonest is the one with the least slack, so it goes first —
// the response-time-bounded scheduling discipline PRAGUE's SRT contract
// implies. Unbounded runs carry time_point::max() and naturally yield to
// every bounded one.
//
// Not thread-safe by design: it is a data structure, not a channel. The
// owner (PragueServer's scheduler, a test) brings its own mutex, which it
// already holds to maintain the state adjacent to the queue.

#ifndef PRAGUE_UTIL_DEADLINE_QUEUE_H_
#define PRAGUE_UTIL_DEADLINE_QUEUE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

namespace prague {

/// \brief Min-heap of T keyed by (deadline, insertion sequence).
template <typename T>
class DeadlineQueue {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// The key for work with no time bound; sorts after every real deadline.
  static constexpr TimePoint Unbounded() { return TimePoint::max(); }

  /// \brief Inserts \p value with absolute deadline \p key.
  void Push(TimePoint key, T value) {
    heap_.push(Entry{key, next_seq_++, std::move(value)});
  }

  /// \brief True iff no entries are queued.
  bool empty() const { return heap_.empty(); }
  /// \brief Number of queued entries.
  size_t size() const { return heap_.size(); }

  /// \brief The earliest queued deadline (call only when !empty()).
  TimePoint earliest() const { return heap_.top().key; }

  /// \brief Removes and returns the entry with the earliest deadline;
  /// equal deadlines pop in insertion order. Call only when !empty().
  T Pop() {
    // top() is const-ref; the value is moved out via const_cast, which is
    // safe because pop() immediately destroys the moved-from shell.
    T value = std::move(const_cast<Entry&>(heap_.top()).value);
    heap_.pop();
    return value;
  }

 private:
  struct Entry {
    TimePoint key;
    uint64_t seq;
    T value;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace prague

#endif  // PRAGUE_UTIL_DEADLINE_QUEUE_H_
