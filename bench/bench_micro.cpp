// Micro-benchmarks (google-benchmark) for the hot primitives: VF2,
// canonical codes, connected-subset enumeration, MCCS, SPIG construction,
// candidate generation, and IdSet algebra.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/candidates.h"
#include "graph/cam_code.h"
#include "graph/canonical.h"
#include "graph/mccs.h"
#include "graph/verifier.h"
#include "graph/vf2.h"
#include "index/df_store.h"
#include "index/index_maintenance.h"
#include "util/thread_pool.h"
#include "util/rng.h"

using namespace prague;
using namespace prague::bench;

namespace {

// One shared small workbench for the session-level micro-benchmarks.
const Workbench& SmallBench() {
  static Workbench* bench =
      new Workbench(BuildAidsWorkbench(500, 0.1, 4));
  return *bench;
}

const std::vector<VisualQuerySpec>& MicroQueries() {
  static auto* queries = [] {
    WorkloadGenerator workload(&SmallBench().db, 5);
    auto* out = new std::vector<VisualQuerySpec>();
    Result<VisualQuerySpec> a = workload.ContainmentQuery(7, "micro-c");
    Result<VisualQuerySpec> b = workload.SimilarityQuery(7, 2, "micro-s");
    if (!a.ok() || !b.ok()) std::abort();
    out->push_back(std::move(*a));
    out->push_back(std::move(*b));
    return out;
  }();
  return *queries;
}

void BM_Vf2Exists(benchmark::State& state) {
  const Workbench& bench = SmallBench();
  const Graph& pattern = MicroQueries()[0].graph;
  size_t gid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IsSubgraphIsomorphic(pattern, bench.db.graph(gid)));
    gid = (gid + 1) % bench.db.size();
  }
}
BENCHMARK(BM_Vf2Exists);

void BM_MinimumDfsCode(benchmark::State& state) {
  const Graph& q = MicroQueries()[0].graph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimumDfsCode(q));
  }
}
BENCHMARK(BM_MinimumDfsCode);

void BM_CamCode(benchmark::State& state) {
  const Graph& q = MicroQueries()[0].graph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CamCode(q));
  }
}
BENCHMARK(BM_CamCode);

void BM_ConnectedSubsets(benchmark::State& state) {
  const Graph& q = MicroQueries()[0].graph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConnectedEdgeSubsetsBySize(q));
  }
}
BENCHMARK(BM_ConnectedSubsets);

void BM_Mccs(benchmark::State& state) {
  const Workbench& bench = SmallBench();
  const Graph& q = MicroQueries()[1].graph;
  size_t gid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMccs(q, bench.db.graph(gid)));
    gid = (gid + 1) % bench.db.size();
  }
}
BENCHMARK(BM_Mccs);

void BM_SpigSetConstruction(benchmark::State& state) {
  const Workbench& bench = SmallBench();
  const VisualQuerySpec& spec = MicroQueries()[0];
  for (auto _ : state) {
    FormulatedQuery built = Formulate(spec, bench.indexes);
    benchmark::DoNotOptimize(built.spigs.TotalVertexCount());
  }
}
BENCHMARK(BM_SpigSetConstruction);

// threads=1 vs 4 comparison for the parallel per-level SPIG build.
void BM_SpigSetConstructionParallel(benchmark::State& state) {
  const Workbench& bench = SmallBench();
  const VisualQuerySpec& spec = MicroQueries()[0];
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    FormulatedQuery built = Formulate(spec, bench.indexes, &pool);
    benchmark::DoNotOptimize(built.spigs.TotalVertexCount());
  }
}
BENCHMARK(BM_SpigSetConstructionParallel)->Arg(1)->Arg(4);

void BM_ExactCandidates(benchmark::State& state) {
  const Workbench& bench = SmallBench();
  FormulatedQuery built = Formulate(MicroQueries()[0], bench.indexes);
  const SpigVertex* target = built.spigs.FindVertex(built.query.FullMask());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactSubCandidates(*target, bench.indexes));
  }
}
BENCHMARK(BM_ExactCandidates);

// Cold path: every per-vertex candidate set recomputed from the indexes.
void BM_SimilarCandidates(benchmark::State& state) {
  const Workbench& bench = SmallBench();
  FormulatedQuery built = Formulate(MicroQueries()[1], bench.indexes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimilarSubCandidates(built.spigs, built.query.EdgeCount(), 3,
                             bench.indexes, /*use_cache=*/false));
  }
}
BENCHMARK(BM_SimilarCandidates);

// Warm path: per-vertex sets answered from the SpigVertex memo — what a
// steady-state formulation step pays for its persisted vertices.
void BM_SimilarCandidatesWarm(benchmark::State& state) {
  const Workbench& bench = SmallBench();
  FormulatedQuery built = Formulate(MicroQueries()[1], bench.indexes);
  SimilarSubCandidates(built.spigs, built.query.EdgeCount(), 3,
                       bench.indexes);  // populate the memo
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimilarSubCandidates(
        built.spigs, built.query.EdgeCount(), 3, bench.indexes));
  }
}
BENCHMARK(BM_SimilarCandidatesWarm);

void BM_IdSetIntersect(benchmark::State& state) {
  Rng rng(1);
  std::vector<GraphId> a_ids, b_ids;
  for (int i = 0; i < 10000; ++i) {
    a_ids.push_back(static_cast<GraphId>(rng.Below(40000)));
    b_ids.push_back(static_cast<GraphId>(rng.Below(40000)));
  }
  IdSet a(std::move(a_ids)), b(std::move(b_ids));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersect(b));
  }
}
BENCHMARK(BM_IdSetIntersect);

// Lopsided sides (ratio 1:400) take the galloping path.
void BM_IdSetIntersectGallop(benchmark::State& state) {
  Rng rng(2);
  std::vector<GraphId> small_ids, large_ids;
  for (int i = 0; i < 100; ++i) {
    small_ids.push_back(static_cast<GraphId>(rng.Below(100000)));
  }
  for (int i = 0; i < 40000; ++i) {
    large_ids.push_back(static_cast<GraphId>(rng.Below(100000)));
  }
  IdSet small(std::move(small_ids)), large(std::move(large_ids));
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.Intersect(large));
  }
}
BENCHMARK(BM_IdSetIntersectGallop);

// k-way smallest-first intersection with early exit — the NIF Φ/Υ shape.
void BM_IdSetIntersectMany(benchmark::State& state) {
  Rng rng(3);
  std::vector<IdSet> sets;
  for (int s = 0; s < 6; ++s) {
    std::vector<GraphId> ids;
    size_t n = 500 << s;  // 500 .. 16000, skewed like real FSG sets
    for (size_t i = 0; i < n; ++i) {
      ids.push_back(static_cast<GraphId>(rng.Below(40000)));
    }
    sets.emplace_back(std::move(ids));
  }
  std::vector<const IdSet*> ptrs;
  for (const IdSet& s : sets) ptrs.push_back(&s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IdSet::IntersectMany(ptrs));
  }
}
BENCHMARK(BM_IdSetIntersectMany);

void BM_PlainVerifier(benchmark::State& state) {
  const Workbench& bench = SmallBench();
  const Graph& pattern = MicroQueries()[1].graph;
  PlainVerifier verifier;
  size_t gid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.Matches(pattern, bench.db.graph(gid)));
    gid = (gid + 1) % bench.db.size();
  }
}
BENCHMARK(BM_PlainVerifier);

void BM_FilteringVerifier(benchmark::State& state) {
  const Workbench& bench = SmallBench();
  const Graph& pattern = MicroQueries()[1].graph;
  FilteringVerifier verifier;
  size_t gid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.Matches(pattern, bench.db.graph(gid)));
    gid = (gid + 1) % bench.db.size();
  }
}
BENCHMARK(BM_FilteringVerifier);

void BM_IncrementalAppend(benchmark::State& state) {
  const Workbench& base = SmallBench();
  AidsGeneratorConfig gen;
  gen.graph_count = 1;
  gen.seed = 999;
  Graph extra = GenerateAidsLikeDatabase(gen).graph(0);
  for (auto _ : state) {
    state.PauseTiming();
    GraphDatabase db = base.db;           // fresh copies each round
    ActionAwareIndexes indexes = base.indexes;
    state.ResumeTiming();
    Result<MaintenanceReport> report =
        AppendGraphs(&db, {extra}, &indexes, 0.1);
    benchmark::DoNotOptimize(report.ok());
  }
}
BENCHMARK(BM_IncrementalAppend);

void BM_DfStoreColdLookup(benchmark::State& state) {
  const Workbench& bench = SmallBench();
  static const std::string path = "/tmp/prague_bench_micro.dfs";
  Result<DfStore> store = DfStore::Create(bench.indexes.a2f, path);
  if (!store.ok()) {
    state.SkipWithError("store create failed");
    return;
  }
  std::vector<A2fId> df_ids;
  for (A2fId id = 0; id < bench.indexes.a2f.VertexCount(); ++id) {
    if (!bench.indexes.a2f.vertex(id).in_mf) df_ids.push_back(id);
  }
  if (df_ids.empty()) {
    state.SkipWithError("no DF vertices at this scale");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    store->DropCache();  // force a disk read
    benchmark::DoNotOptimize(store->FsgIds(df_ids[i]));
    i = (i + 1) % df_ids.size();
  }
}
BENCHMARK(BM_DfStoreColdLookup);

void BM_ThreadPoolParallelFor(benchmark::State& state) {
  ThreadPool pool(4);
  std::vector<double> data(100000, 1.0);
  for (auto _ : state) {
    pool.ParallelFor(data.size(), 1024, [&](size_t begin, size_t end) {
      double acc = 0;
      for (size_t i = begin; i < end; ++i) acc += data[i];
      benchmark::DoNotOptimize(acc);
    });
  }
}
BENCHMARK(BM_ThreadPoolParallelFor);

void BM_MineTinyDatabase(benchmark::State& state) {
  AidsGeneratorConfig gen;
  gen.graph_count = 100;
  GraphDatabase db = GenerateAidsLikeDatabase(gen);
  MiningConfig mining;
  mining.min_support_ratio = 0.1;
  mining.max_fragment_edges = 6;
  for (auto _ : state) {
    Result<MiningResult> mined = MineFragments(db, mining);
    benchmark::DoNotOptimize(mined.ok());
  }
}
BENCHMARK(BM_MineTinyDatabase);

}  // namespace

BENCHMARK_MAIN();
