// Shard-parallel execution: a ShardedSnapshot partitions one snapshot by
// graph id, Run() scatters per-shard work and gathers merged results that
// must be BIT-IDENTICAL to the single-shard path — including under
// deadlines and cancellation (prefix-consistent truncation) — and the
// COW-preserving append reuses interior shards structurally.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/gblender.h"
#include "core/prague_session.h"
#include "core/session_manager.h"
#include "core/shard_exec.h"
#include "datasets/query_workload.h"
#include "index/index_maintenance.h"
#include "index/sharded_snapshot.h"
#include "test_fixtures.h"
#include "util/deadline.h"
#include "util/thread_pool.h"

namespace prague {
namespace {

using testing::kC;
using testing::kN;
using testing::kS;

// Feeds a query spec into a session (same idiom as test_session.cc).
template <typename Session>
void Feed(Session* session, const Graph& q,
          const std::vector<EdgeId>& sequence) {
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = session->AddNode(q.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  for (EdgeId e : sequence) {
    const Edge& edge = q.GetEdge(e);
    if (!session->AddEdge(user_node(edge.u), user_node(edge.v), edge.label)
             .ok()) {
      std::abort();
    }
  }
}

// An exact-mode (containment) query and a similarity query over the
// 300-graph AIDS fixture; both heavy enough to touch many shards.
const VisualQuerySpec& ExactAidsQuery() {
  static const VisualQuerySpec* spec = [] {
    const auto& fixture = testing::AidsFixture::Get();
    WorkloadGenerator workload(&fixture.db, 53);
    for (size_t edges : {7, 6, 5, 4}) {
      Result<VisualQuerySpec> s = workload.ContainmentQuery(edges, "exact");
      if (s.ok()) return new VisualQuerySpec(std::move(*s));
    }
    std::abort();
  }();
  return *spec;
}

const VisualQuerySpec& SimilarAidsQuery() {
  static const VisualQuerySpec* spec = [] {
    const auto& fixture = testing::AidsFixture::Get();
    WorkloadGenerator workload(&fixture.db, 47);
    for (int mutations = 3; mutations >= 1; --mutations) {
      Result<VisualQuerySpec> s =
          workload.SimilarityQuery(8, mutations, "sharded");
      if (s.ok()) return new VisualQuerySpec(std::move(*s));
    }
    std::abort();
  }();
  return *spec;
}

const size_t kShardCounts[] = {2, 4, 7};

// ---------------------------------------------------------------------------
// ShardedSnapshot: partitioning and the COW-preserving append.

TEST(ShardedSnapshotTest, PartitionIsContiguousAndExhaustive) {
  const auto& fixture = testing::AidsFixture::Get();
  for (size_t shards : kShardCounts) {
    ShardedSnapshot::Ptr view = ShardedSnapshot::Make(fixture.snapshot, shards);
    ASSERT_EQ(view->shard_count(), shards);
    GraphId expect_begin = 0;
    for (size_t s = 0; s < shards; ++s) {
      const IndexShard& shard = view->shard(s);
      EXPECT_EQ(shard.ordinal(), s);
      EXPECT_EQ(shard.begin(), expect_begin);
      EXPECT_GT(shard.end(), shard.begin());  // clamped: never empty
      expect_begin = shard.end();
    }
    EXPECT_EQ(expect_begin, static_cast<GraphId>(fixture.db.size()));
  }
}

TEST(ShardedSnapshotTest, ShardCountIsClamped) {
  const auto& tiny = testing::TinyFixture::Get();
  EXPECT_EQ(ShardedSnapshot::Make(tiny.snapshot, 0)->shard_count(), 1u);
  // More shards than graphs: clamp to |D| so every shard is non-empty.
  EXPECT_LE(ShardedSnapshot::Make(tiny.snapshot, 1000)->shard_count(),
            tiny.db.size());
}

TEST(ShardedSnapshotTest, SlicesPartitionEveryIndexedSet) {
  const auto& fixture = testing::AidsFixture::Get();
  ShardedSnapshot::Ptr view = ShardedSnapshot::Make(fixture.snapshot, 4);
  // Union of the per-shard A2F slices must reassemble the global FSG set;
  // the shards' ranges are disjoint so UnionWith in shard order is exactly
  // concatenation.
  for (A2fId id = 0; id < fixture.indexes.a2f.VertexCount(); ++id) {
    IdSet reassembled;
    for (size_t s = 0; s < view->shard_count(); ++s) {
      reassembled.UnionWith(view->shard(s).A2fFsgIds(id));
    }
    ASSERT_EQ(reassembled, fixture.indexes.a2f.FsgIds(id)) << "a2f id " << id;
  }
  for (A2iId id = 0; id < fixture.indexes.a2i.EntryCount(); ++id) {
    IdSet reassembled;
    for (size_t s = 0; s < view->shard_count(); ++s) {
      reassembled.UnionWith(view->shard(s).A2iFsgIds(id));
    }
    ASSERT_EQ(reassembled, fixture.indexes.a2i.FsgIds(id)) << "a2i id " << id;
  }
}

TEST(ShardedSnapshotTest, AppendReusesInteriorShardsStructurally) {
  const auto& tiny = testing::TinyFixture::Get();
  ShardedSnapshot::Ptr prior = ShardedSnapshot::Make(tiny.snapshot, 3);
  ASSERT_EQ(prior->shard_count(), 3u);
  std::vector<Graph> extra = {
      testing::MakeGraph({kC, kS, kC}, {{0, 1}, {1, 2}})};
  Result<SnapshotAppendResult> appended =
      AppendGraphs(*tiny.snapshot, extra, /*alpha=*/0.34);
  ASSERT_TRUE(appended.ok());
  ShardedSnapshot::Ptr next =
      ShardedSnapshot::Append(prior, appended->snapshot);
  ASSERT_EQ(next->shard_count(), 3u);
  // Interior shards are the SAME objects (structural sharing), because a
  // COW append only adds ids >= the old database size.
  EXPECT_EQ(next->shard_ptr(0), prior->shard_ptr(0));
  EXPECT_EQ(next->shard_ptr(1), prior->shard_ptr(1));
  // The last shard was rebuilt over its extended range.
  EXPECT_NE(next->shard_ptr(2), prior->shard_ptr(2));
  EXPECT_EQ(next->shard(2).end(),
            static_cast<GraphId>(appended->snapshot->db().size()));
  // The old view still partitions the OLD snapshot — publish-while-
  // querying: a session pinning `prior` never sees the appended ids.
  EXPECT_EQ(prior->shard(2).end(), static_cast<GraphId>(tiny.db.size()));
}

// ---------------------------------------------------------------------------
// MergeShardSimilar: the pure merge, driven directly.

ShardSimilarPartial MakePartial(std::vector<SimilarMatch> matches) {
  ShardSimilarPartial p;
  p.matches = std::move(matches);
  return p;
}

TEST(ShardMergeTest, ConcatenatesBucketsInShardOrder) {
  // Bucket order: distance ascending, free (verified=false) before ver.
  std::vector<ShardSimilarPartial> partials;
  partials.push_back(MakePartial({{0, 1, false}, {2, 1, true}, {4, 2, false}}));
  partials.push_back(MakePartial({{7, 1, false}, {9, 2, false}}));
  bool truncated = false;
  RunPhase phase = RunPhase::kNone;
  SimilarGenStats stats;
  std::vector<SimilarMatch> merged =
      MergeShardSimilar(partials, /*top_k=*/0, &stats, &truncated, &phase);
  std::vector<SimilarMatch> expected = {
      {0, 1, false}, {7, 1, false}, {2, 1, true}, {4, 2, false}, {9, 2, false}};
  EXPECT_EQ(merged, expected);
  EXPECT_FALSE(truncated);
  EXPECT_EQ(phase, RunPhase::kNone);
}

TEST(ShardMergeTest, StopsAtEarliestCutBucket) {
  // Shard 0 was cut inside bucket (2, free): the merge may emit everything
  // strictly before that bucket, plus shard 0's own prefix of it, and must
  // drop later shards' contributions to the cut bucket.
  std::vector<ShardSimilarPartial> partials;
  partials.push_back(MakePartial({{0, 1, false}, {4, 2, false}}));
  partials[0].truncated = true;
  partials[0].cut = SimilarGenCut{2, false};
  partials[0].cut_phase = RunPhase::kSimilarGeneration;
  partials.push_back(
      MakePartial({{7, 1, false}, {8, 2, false}, {9, 2, true}}));
  bool truncated = false;
  RunPhase phase = RunPhase::kNone;
  std::vector<SimilarMatch> merged =
      MergeShardSimilar(partials, 0, nullptr, &truncated, &phase);
  std::vector<SimilarMatch> expected = {
      {0, 1, false}, {7, 1, false}, {4, 2, false}};
  EXPECT_EQ(merged, expected);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(phase, RunPhase::kSimilarGeneration);
}

TEST(ShardMergeTest, TopKBeforeCutIsNotTruncated) {
  // Full-wins rule: reaching k before the cut bucket means the caller gets
  // the same answer an untruncated run would have produced.
  std::vector<ShardSimilarPartial> partials;
  partials.push_back(MakePartial({{0, 1, false}, {1, 1, false}}));
  partials[0].truncated = true;
  partials[0].cut = SimilarGenCut{3, false};
  partials[0].cut_phase = RunPhase::kSimilarGeneration;
  bool truncated = false;
  RunPhase phase = RunPhase::kNone;
  std::vector<SimilarMatch> merged =
      MergeShardSimilar(partials, /*top_k=*/2, nullptr, &truncated, &phase);
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_FALSE(truncated);
  EXPECT_EQ(phase, RunPhase::kNone);
}

TEST(ShardMergeTest, SumsStatsAcrossAllShards) {
  std::vector<ShardSimilarPartial> partials(3);
  for (size_t s = 0; s < partials.size(); ++s) {
    partials[s].stats.verified = 1;
    partials[s].stats.rejected = 2;
    partials[s].stats.verification_free = 3;
    partials[s].stats.vf2_calls = 4;
    partials[s].stats.nodes_expanded = 5;
  }
  SimilarGenStats stats;
  MergeShardSimilar(partials, 0, &stats, nullptr, nullptr);
  EXPECT_EQ(stats.verified, 3u);
  EXPECT_EQ(stats.rejected, 6u);
  EXPECT_EQ(stats.verification_free, 9u);
  EXPECT_EQ(stats.vf2_calls, 12u);
  EXPECT_EQ(stats.nodes_expanded, 15u);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: shards=N is bit-identical to shards=1.

PragueConfig ShardedConfig(size_t shards) {
  PragueConfig config;
  config.shards = shards;
  return config;
}

void ExpectSameResults(const QueryResults& got, const QueryResults& want) {
  EXPECT_EQ(got.similarity, want.similarity);
  EXPECT_EQ(got.truncated, want.truncated);
  EXPECT_EQ(got.exact, want.exact);
  EXPECT_EQ(got.similar, want.similar);
}

TEST(ShardDeterminismTest, ExactRunMatchesUnsharded) {
  const auto& fixture = testing::AidsFixture::Get();
  const VisualQuerySpec& spec = ExactAidsQuery();
  PragueSession baseline(fixture.snapshot);
  Feed(&baseline, spec.graph, spec.sequence);
  Result<QueryResults> want = baseline.Run(nullptr);
  ASSERT_TRUE(want.ok());
  for (size_t shards : kShardCounts) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    PragueSession session(fixture.snapshot, ShardedConfig(shards));
    Feed(&session, spec.graph, spec.sequence);
    RunStats stats;
    Result<QueryResults> got = session.Run(&stats);
    ASSERT_TRUE(got.ok());
    ExpectSameResults(*got, *want);
    // SRT invariant: the phase breakdown never exceeds the wall clock.
    EXPECT_LE(stats.candidate_seconds + stats.verification_seconds +
                  stats.similarity_seconds,
              stats.srt_seconds + 1e-9);
  }
}

TEST(ShardDeterminismTest, SimilarityRunMatchesUnsharded) {
  const auto& fixture = testing::AidsFixture::Get();
  const VisualQuerySpec& spec = SimilarAidsQuery();
  PragueSession baseline(fixture.snapshot);
  Feed(&baseline, spec.graph, spec.sequence);
  Result<QueryResults> want = baseline.Run(nullptr);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(want->similarity);
  for (size_t shards : kShardCounts) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    PragueSession session(fixture.snapshot, ShardedConfig(shards));
    Feed(&session, spec.graph, spec.sequence);
    RunStats stats;
    Result<QueryResults> got = session.Run(&stats);
    ASSERT_TRUE(got.ok());
    ExpectSameResults(*got, *want);
    EXPECT_LE(stats.candidate_seconds + stats.verification_seconds +
                  stats.similarity_seconds,
              stats.srt_seconds + 1e-9);
    // The trace carries one per-shard span per shard task of each
    // scattered phase (this query runs exact verification, finds nothing,
    // and falls back to similarity — two scatters), plus the ordinary
    // whole-run spans.
    const obs::RunTrace& trace = session.last_run_trace();
    std::map<std::string, size_t> shard_spans;
    for (const obs::SpanRecord& span : trace.spans) {
      if (span.shard >= 0) ++shard_spans[span.name];
    }
    EXPECT_FALSE(shard_spans.empty());
    for (const auto& [name, count] : shard_spans) {
      EXPECT_EQ(count, shards) << name;
    }
  }
}

TEST(ShardDeterminismTest, TopKMatchesUnsharded) {
  const auto& fixture = testing::AidsFixture::Get();
  const VisualQuerySpec& spec = SimilarAidsQuery();
  for (size_t top_k : {1u, 5u, 20u}) {
    PragueConfig base_config;
    base_config.top_k = top_k;
    PragueSession baseline(fixture.snapshot, base_config);
    Feed(&baseline, spec.graph, spec.sequence);
    Result<QueryResults> want = baseline.Run(nullptr);
    ASSERT_TRUE(want.ok());
    for (size_t shards : kShardCounts) {
      SCOPED_TRACE("top_k " + std::to_string(top_k) + " shards " +
                   std::to_string(shards));
      PragueConfig config = ShardedConfig(shards);
      config.top_k = top_k;
      PragueSession session(fixture.snapshot, config);
      Feed(&session, spec.graph, spec.sequence);
      Result<QueryResults> got = session.Run(nullptr);
      ASSERT_TRUE(got.ok());
      ExpectSameResults(*got, *want);
    }
  }
}

TEST(ShardDeterminismTest, PreExpiredDeadlineMatchesUnsharded) {
  const auto& fixture = testing::AidsFixture::Get();
  for (const VisualQuerySpec* spec : {&ExactAidsQuery(), &SimilarAidsQuery()}) {
    PragueSession baseline(fixture.snapshot);
    Feed(&baseline, spec->graph, spec->sequence);
    RunStats want_stats;
    Result<QueryResults> want =
        baseline.Run(Deadline::AfterMillis(0), &want_stats);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(want->truncated);
    for (size_t shards : kShardCounts) {
      SCOPED_TRACE("shards " + std::to_string(shards));
      PragueSession session(fixture.snapshot, ShardedConfig(shards));
      Feed(&session, spec->graph, spec->sequence);
      RunStats stats;
      Result<QueryResults> got =
          session.Run(Deadline::AfterMillis(0), &stats);
      ASSERT_TRUE(got.ok());
      ExpectSameResults(*got, *want);
      EXPECT_EQ(stats.deadline_phase, want_stats.deadline_phase);
    }
  }
}

TEST(ShardDeterminismTest, PreFiredCancelMatchesUnsharded) {
  const auto& fixture = testing::AidsFixture::Get();
  const VisualQuerySpec& spec = SimilarAidsQuery();
  // Formulation steps poll the config token too, so the pre-fired token is
  // injected only at Run() time, via the deadline.
  CancellationToken fired;
  fired.RequestStop();
  PragueSession reference(fixture.snapshot);
  Feed(&reference, spec.graph, spec.sequence);
  Result<QueryResults> want =
      reference.Run(Deadline().WithToken(&fired), nullptr);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(want->truncated);
  for (size_t shards : kShardCounts) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    PragueSession sharded(fixture.snapshot, ShardedConfig(shards));
    Feed(&sharded, spec.graph, spec.sequence);
    Result<QueryResults> got =
        sharded.Run(Deadline().WithToken(&fired), nullptr);
    ASSERT_TRUE(got.ok());
    ExpectSameResults(*got, *want);
  }
}

TEST(ShardDeterminismTest, MidRunCancelYieldsPrefixOfUnbounded) {
  const auto& fixture = testing::AidsFixture::Get();
  const VisualQuerySpec& spec = SimilarAidsQuery();
  PragueSession unbounded(fixture.snapshot);
  Feed(&unbounded, spec.graph, spec.sequence);
  Result<QueryResults> full = unbounded.Run(nullptr);
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full->truncated);

  for (size_t shards : kShardCounts) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    CancellationToken token;
    PragueSession session(fixture.snapshot, ShardedConfig(shards));
    Feed(&session, spec.graph, spec.sequence);
    std::thread canceller([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      token.RequestStop();
    });
    Result<QueryResults> part =
        session.Run(Deadline().WithToken(&token), nullptr);
    canceller.join();
    ASSERT_TRUE(part.ok());
    // Whether or not the cancel landed in time, the output must be a
    // prefix of the unbounded merged order.
    ASSERT_LE(part->similar.size(), full->similar.size());
    for (size_t i = 0; i < part->similar.size(); ++i) {
      EXPECT_EQ(part->similar[i], full->similar[i]);
    }
    if (!part->truncated) {
      EXPECT_EQ(part->similar, full->similar);
    }
  }
}

// ---------------------------------------------------------------------------
// GBLENDER under the same substrate: sharded refinement and verification
// stay bit-identical (the fair-baseline requirement).

TEST(ShardedGBlenderTest, CandidatesAndRunMatchUnsharded) {
  const auto& fixture = testing::AidsFixture::Get();
  const VisualQuerySpec& spec = ExactAidsQuery();
  auto pool = std::make_shared<ThreadPool>(4);
  for (size_t shards : kShardCounts) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    GBlenderSession plain(fixture.snapshot);
    GBlenderSession sharded(fixture.snapshot,
                            ShardedSnapshot::Make(fixture.snapshot, shards),
                            pool);
    std::map<NodeId, NodeId> plain_map, sharded_map;
    auto add_edge = [&](GBlenderSession* session,
                        std::map<NodeId, NodeId>* node_map, const Edge& edge) {
      auto user_node = [&](NodeId n) {
        auto it = node_map->find(n);
        if (it != node_map->end()) return it->second;
        NodeId u = session->AddNode(spec.graph.NodeLabel(n));
        node_map->emplace(n, u);
        return u;
      };
      return session->AddEdge(user_node(edge.u), user_node(edge.v),
                              edge.label);
    };
    for (EdgeId e : spec.sequence) {
      const Edge& edge = spec.graph.GetEdge(e);
      ASSERT_TRUE(add_edge(&plain, &plain_map, edge).ok());
      ASSERT_TRUE(add_edge(&sharded, &sharded_map, edge).ok());
      // Every step's refined Rq must agree, not just the final one.
      ASSERT_EQ(sharded.candidates(), plain.candidates());
    }
    Result<QueryResults> want = plain.Run();
    Result<QueryResults> got = sharded.Run();
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->exact, want->exact);
    EXPECT_EQ(got->truncated, want->truncated);
  }
}

// ---------------------------------------------------------------------------
// SessionManager: shared view/pool, concurrent append, STATS exposure.

TEST(ShardedSessionManagerTest, SharedViewServesIdenticalResults) {
  const auto& fixture = testing::AidsFixture::Get();
  const VisualQuerySpec& spec = SimilarAidsQuery();
  SessionManager plain(fixture.snapshot);
  SessionManager sharded(fixture.snapshot, ShardedConfig(4));
  EXPECT_EQ(plain.Stats().shards, 1u);
  EXPECT_EQ(sharded.Stats().shards, 4u);
  auto run = [&](SessionManager* manager) {
    auto session = manager->Open();
    return session->With([&](PragueSession& s) {
      Feed(&s, spec.graph, spec.sequence);
      return s.Run(nullptr);
    });
  };
  Result<QueryResults> want = run(&plain);
  Result<QueryResults> got = run(&sharded);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ExpectSameResults(*got, *want);
}

TEST(ShardedSessionManagerTest, PublishWhileQueryingKeepsOldSessionsStable) {
  const auto& tiny = testing::TinyFixture::Get();
  SessionManager manager(tiny.snapshot, ShardedConfig(3));
  auto old_session = manager.Open();
  Graph q = testing::MakeGraph({kC, kC, kC, kS},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  Result<QueryResults> before = old_session->With([&](PragueSession& s) {
    Feed(&s, q, DefaultFormulationSequence(q));
    return s.Run(nullptr);
  });
  ASSERT_TRUE(before.ok());

  // Concurrent appends race the old session's repeated runs; the pinned
  // view must keep answering from the old partition.
  std::thread appender([&] {
    for (int round = 0; round < 4; ++round) {
      std::vector<Graph> extra = {
          testing::MakeGraph({kC, kC, kN}, {{0, 1}, {1, 2}})};
      EXPECT_TRUE(manager.Append(std::move(extra), /*alpha=*/0.34).ok());
    }
  });
  for (int round = 0; round < 8; ++round) {
    Result<QueryResults> during =
        old_session->With([](PragueSession& s) { return s.Run(nullptr); });
    ASSERT_TRUE(during.ok());
    EXPECT_EQ(during->exact, before->exact);
  }
  appender.join();
  EXPECT_EQ(manager.Stats().shards, 3u);
  EXPECT_EQ(manager.current()->version(), 4u);

  // A session opened now pins the appended snapshot, still sharded.
  auto fresh = manager.Open();
  Result<QueryResults> after = fresh->With([&](PragueSession& s) {
    Feed(&s, q, DefaultFormulationSequence(q));
    return s.Run(nullptr);
  });
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->exact, before->exact);  // appended graphs don't match q
}

}  // namespace
}  // namespace prague
