#include "core/gblender.h"

#include <algorithm>
#include <utility>

#include "core/shard_exec.h"
#include "graph/canonical.h"
#include "graph/subgraph_ops.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace prague {

GBlenderSession::GBlenderSession(SnapshotPtr snapshot)
    : snap_(std::move(snapshot)) {}

GBlenderSession::GBlenderSession(SnapshotPtr snapshot,
                                 ShardedSnapshot::Ptr sharded,
                                 std::shared_ptr<ThreadPool> shard_pool)
    : snap_(std::move(snapshot)),
      sharded_(std::move(sharded)),
      shard_pool_(std::move(shard_pool)) {}

ShardPlan GBlenderSession::Plan() const {
  ShardPlan plan;
  if (sharded_ != nullptr && sharded_->Covers(*snap_) &&
      sharded_->shard_count() > 1) {
    plan.view = sharded_.get();
    plan.pool = shard_pool_.get();
  }
  return plan;
}

NodeId GBlenderSession::AddNode(Label label) { return query_.AddNode(label); }

void GBlenderSession::StepUpdate(const Graph& fragment, IdSet* rq) const {
  CanonicalCode code = GetCanonicalCode(fragment);
  if (std::optional<A2fId> fid = snap_->indexes().a2f.Lookup(code)) {
    *rq = snap_->indexes().a2f.FsgIds(*fid);
    return;
  }
  if (std::optional<A2iId> did = snap_->indexes().a2i.Lookup(code)) {
    *rq = snap_->indexes().a2i.FsgIds(*did);
    return;
  }
  // Unindexed fragment: intersect the previous Rq with the FSG ids of
  // every indexed maximal subgraph (decomposition probing — GBLENDER has
  // no SPIGs to remember these from earlier steps).
  if (fragment.EdgeCount() < 2) {
    rq->Clear();  // unindexed single edge has zero support
    return;
  }
  // Resolve the indexed maximal subgraphs once (lookups are shared across
  // shards); unindexed subgraphs constrain nothing and are skipped, as in
  // the sequential rule.
  std::vector<A2fId> freq_probes;
  std::vector<A2iId> dif_probes;
  std::vector<std::vector<EdgeMask>> by_size =
      ConnectedEdgeSubsetsBySize(fragment);
  for (EdgeMask mask : by_size[fragment.EdgeCount() - 1]) {
    ExtractedSubgraph sub = ExtractEdgeSubgraph(fragment, mask);
    CanonicalCode sub_code = GetCanonicalCode(sub.graph);
    if (std::optional<A2fId> fid = snap_->indexes().a2f.Lookup(sub_code)) {
      freq_probes.push_back(*fid);
    } else if (std::optional<A2iId> did = snap_->indexes().a2i.Lookup(sub_code)) {
      dif_probes.push_back(*did);
    }
  }
  ShardPlan plan = Plan();
  if (plan.active()) {
    // Per shard: restrict Rq to the range, intersect with the shard's
    // slices, then stitch the disjoint ascending ranges back together.
    // Intersection distributes over the partition, so the union equals
    // the global refinement exactly.
    const size_t count = plan.view->shard_count();
    std::vector<IdSet> parts(count);
    TaskGroup group(plan.pool);
    for (size_t s = 0; s < count; ++s) {
      group.Submit([&, s] {
        const IndexShard& shard = plan.view->shard(s);
        IdSet part = shard.Restrict(*rq);
        for (A2fId fid : freq_probes) {
          part.IntersectWith(shard.A2fFsgIds(fid));
        }
        for (A2iId did : dif_probes) {
          part.IntersectWith(shard.A2iFsgIds(did));
        }
        parts[s] = std::move(part);
      });
    }
    if (group.WaitAll().ok()) {
      IdSet merged;
      for (const IdSet& part : parts) merged.UnionWith(part);
      *rq = std::move(merged);
      return;
    }
    // A shard task failed (escaped exception) — fall through to the
    // sequential refinement, which needs nothing from the scatter.
  }
  for (A2fId fid : freq_probes) {
    rq->IntersectWith(snap_->indexes().a2f.FsgIds(fid));
  }
  for (A2iId did : dif_probes) {
    rq->IntersectWith(snap_->indexes().a2i.FsgIds(did));
  }
}

Result<GbrStepReport> GBlenderSession::AddEdge(NodeId u, NodeId v,
                                               Label edge_label) {
  Result<FormulationId> ell = query_.AddEdge(u, v, edge_label);
  if (!ell.ok()) return ell.status();
  GbrStepReport report;
  report.edge = *ell;
  Stopwatch timer;
  if (!started_) {
    rq_ = snap_->db().AllIds();
    started_ = true;
  }
  StepUpdate(query_.CurrentGraph(), &rq_);
  report.step_seconds = timer.ElapsedSeconds();
  report.candidates = rq_.size();
  return report;
}

size_t GBlenderSession::Replay() {
  rq_ = snap_->db().AllIds();
  std::vector<FormulationId> remaining = query_.AliveEdgeIds();
  if (remaining.empty()) {
    rq_.Clear();
    started_ = false;
    return 0;
  }
  const Graph& q = query_.CurrentGraph();
  // Re-run the formulation against connectivity: start from the earliest
  // edge, repeatedly append the lowest-id edge adjacent to the prefix.
  FormulationMask prefix = FormulationBit(remaining.front());
  std::vector<FormulationId> pending(remaining.begin() + 1, remaining.end());
  size_t steps = 0;
  for (;;) {
    EdgeMask gmask = query_.ToGraphMask(prefix);
    ExtractedSubgraph sub = ExtractEdgeSubgraph(q, gmask);
    StepUpdate(sub.graph, &rq_);
    ++steps;
    if (pending.empty()) break;
    // Pick the lowest-id pending edge keeping the prefix connected.
    bool advanced = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      FormulationMask cand = prefix | FormulationBit(pending[i]);
      if (IsEdgeSubsetConnected(q, query_.ToGraphMask(cand))) {
        prefix = cand;
        pending.erase(pending.begin() + i);
        advanced = true;
        break;
      }
    }
    if (!advanced) break;  // cannot happen for a connected query
  }
  return steps;
}

Result<GbrStepReport> GBlenderSession::DeleteEdge(FormulationId ell) {
  PRAGUE_RETURN_NOT_OK(query_.DeleteEdge(ell));
  GbrStepReport report;
  report.edge = ell;
  Stopwatch timer;
  report.replayed_steps = Replay();
  report.replay_seconds = timer.ElapsedSeconds();
  report.step_seconds = report.replay_seconds;
  report.candidates = rq_.size();
  return report;
}

Result<QueryResults> GBlenderSession::Run(RunStats* stats,
                                          const Deadline& deadline) {
  if (query_.Empty()) {
    return Status::FailedPrecondition("no query fragment to run");
  }
  Stopwatch timer;
  QueryResults results;
  VerificationOutcome outcome;
  ShardPlan plan = Plan();
  if (plan.active()) {
    Status shard_error;
    results.exact =
        ShardedExactVerification(query_.CurrentGraph(), rq_, snap_->db(),
                                 plan, deadline, &outcome, nullptr,
                                 &shard_error);
    if (!shard_error.ok()) return shard_error;
  } else {
    results.exact = ExactVerification(query_.CurrentGraph(), rq_, snap_->db(),
                                      nullptr, deadline, &outcome);
  }
  results.truncated = outcome.truncated;
  if (stats != nullptr) {
    stats->verified = results.exact.size();
    stats->rejected = outcome.checked - results.exact.size();
    stats->nodes_expanded = outcome.nodes_expanded;
    stats->verification_seconds = timer.ElapsedSeconds();
    stats->truncated = outcome.truncated;
    if (outcome.truncated) {
      stats->deadline_phase = RunPhase::kExactVerification;
    }
    stats->srt_seconds = timer.ElapsedSeconds();
  }
  return results;
}

}  // namespace prague
