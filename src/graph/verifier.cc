#include "graph/verifier.h"

#include <string>

#include "graph/vf2.h"

namespace prague {

bool PlainVerifier::Matches(const Graph& pattern, const Graph& target) {
  ++stats_.checks;
  ++stats_.vf2_calls;
  return IsSubgraphIsomorphic(pattern, target);
}

FilteringVerifier::Summary FilteringVerifier::Summarize(const Graph& g) {
  Summary s;
  s.nodes = g.NodeCount();
  s.edges = g.EdgeCount();
  for (NodeId n = 0; n < g.NodeCount(); ++n) {
    auto& entry = s.by_label[g.NodeLabel(n)];
    ++entry.first;
    entry.second = std::max(entry.second,
                            static_cast<uint32_t>(g.Degree(n)));
  }
  return s;
}

bool FilteringVerifier::CouldMatch(const Summary& pattern,
                                   const Summary& target) {
  if (pattern.nodes > target.nodes || pattern.edges > target.edges) {
    return false;
  }
  for (const auto& [label, need] : pattern.by_label) {
    auto it = target.by_label.find(label);
    if (it == target.by_label.end()) return false;
    if (it->second.first < need.first) return false;    // node count
    if (it->second.second < need.second) return false;  // max degree
  }
  return true;
}

bool FilteringVerifier::Matches(const Graph& pattern, const Graph& target) {
  ++stats_.checks;
  Summary ps = Summarize(pattern);
  Summary ts = Summarize(target);
  if (!CouldMatch(ps, ts)) {
    ++stats_.prefilter_hits;
    return false;
  }
  ++stats_.vf2_calls;
  return IsSubgraphIsomorphic(pattern, target);
}

std::unique_ptr<Verifier> MakeVerifier(const std::string& name) {
  if (name == "filtering") return std::make_unique<FilteringVerifier>();
  return std::make_unique<PlainVerifier>();
}

}  // namespace prague
