#include "core/session_log.h"

#include <fstream>
#include <sstream>

#include "core/prague_session.h"

namespace prague {

namespace {

const char* KindName(SessionAction::Kind kind) {
  switch (kind) {
    case SessionAction::Kind::kAddNode:
      return "node";
    case SessionAction::Kind::kAddEdge:
      return "edge";
    case SessionAction::Kind::kDeleteEdge:
      return "delete";
    case SessionAction::Kind::kRelabelNode:
      return "relabel";
    case SessionAction::Kind::kSimQuery:
      return "simquery";
  }
  return "?";
}

}  // namespace

Status SaveSessionLog(const SessionLog& log, std::ostream* outp) {
  std::ostream& out = *outp;
  out << "PRAGUE_SESSION 1\n";
  for (const SessionAction& a : log) {
    out << KindName(a.kind);
    switch (a.kind) {
      case SessionAction::Kind::kAddNode:
        out << ' ' << a.label;
        break;
      case SessionAction::Kind::kAddEdge:
        out << ' ' << a.u << ' ' << a.v << ' ' << a.edge_label;
        break;
      case SessionAction::Kind::kDeleteEdge:
        out << ' ' << a.ell;
        break;
      case SessionAction::Kind::kRelabelNode:
        out << ' ' << a.node << ' ' << a.label;
        break;
      case SessionAction::Kind::kSimQuery:
        break;
    }
    out << '\n';
  }
  return out.good() ? Status::OK() : Status::IOError("log write failed");
}

Status SaveSessionLogToFile(const SessionLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return SaveSessionLog(log, &out);
}

Result<SessionLog> LoadSessionLog(std::istream* inp) {
  std::istream& in = *inp;
  std::string tag;
  int version;
  if (!(in >> tag >> version) || tag != "PRAGUE_SESSION" || version != 1) {
    return Status::Corruption("bad session log header");
  }
  SessionLog log;
  std::string kind;
  while (in >> kind) {
    SessionAction a;
    if (kind == "node") {
      a.kind = SessionAction::Kind::kAddNode;
      if (!(in >> a.label)) return Status::Corruption("bad node line");
    } else if (kind == "edge") {
      a.kind = SessionAction::Kind::kAddEdge;
      if (!(in >> a.u >> a.v >> a.edge_label)) {
        return Status::Corruption("bad edge line");
      }
    } else if (kind == "delete") {
      a.kind = SessionAction::Kind::kDeleteEdge;
      if (!(in >> a.ell)) return Status::Corruption("bad delete line");
    } else if (kind == "relabel") {
      a.kind = SessionAction::Kind::kRelabelNode;
      if (!(in >> a.node >> a.label)) {
        return Status::Corruption("bad relabel line");
      }
    } else if (kind == "simquery") {
      a.kind = SessionAction::Kind::kSimQuery;
    } else {
      return Status::Corruption("unknown action: " + kind);
    }
    log.push_back(a);
  }
  return log;
}

Result<SessionLog> LoadSessionLogFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadSessionLog(&in);
}

Result<std::unique_ptr<PragueSession>> ReplaySession(
    const SessionLog& log, SnapshotPtr snapshot, const PragueConfig& config) {
  auto session = std::make_unique<PragueSession>(std::move(snapshot), config);
  for (const SessionAction& a : log) {
    switch (a.kind) {
      case SessionAction::Kind::kAddNode:
        session->AddNode(a.label);
        break;
      case SessionAction::Kind::kAddEdge: {
        Result<StepReport> r = session->AddEdge(a.u, a.v, a.edge_label);
        if (!r.ok()) return r.status();
        break;
      }
      case SessionAction::Kind::kDeleteEdge: {
        Result<StepReport> r = session->DeleteEdge(a.ell);
        if (!r.ok()) return r.status();
        break;
      }
      case SessionAction::Kind::kRelabelNode: {
        Result<StepReport> r = session->RelabelNode(a.node, a.label);
        if (!r.ok()) return r.status();
        break;
      }
      case SessionAction::Kind::kSimQuery: {
        Result<StepReport> r = session->EnableSimilarity();
        if (!r.ok()) return r.status();
        break;
      }
    }
  }
  return session;
}

}  // namespace prague
