#include "graph/statistics.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace prague {

DatabaseStatistics ComputeStatistics(const GraphDatabase& db) {
  DatabaseStatistics s;
  s.graph_count = db.size();
  std::map<Label, size_t> labels;
  std::set<Label> edge_labels;
  std::set<std::pair<Label, Label>> pairs;
  size_t degree_sum = 0;
  double cyclomatic_sum = 0;
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    const Graph& g = db.graph(gid);
    s.total_nodes += g.NodeCount();
    s.total_edges += g.EdgeCount();
    s.max_nodes = std::max(s.max_nodes, g.NodeCount());
    s.max_edges = std::max(s.max_edges, g.EdgeCount());
    if (g.EdgeCount() + 1 >= g.NodeCount()) {
      cyclomatic_sum += static_cast<double>(g.EdgeCount() + 1 -
                                            g.NodeCount());
    }
    for (NodeId n = 0; n < g.NodeCount(); ++n) {
      ++labels[g.NodeLabel(n)];
      degree_sum += g.Degree(n);
      s.max_degree = std::max(s.max_degree, g.Degree(n));
    }
    for (const Edge& e : g.edges()) {
      edge_labels.insert(e.label);
      Label a = g.NodeLabel(e.u);
      Label b = g.NodeLabel(e.v);
      pairs.emplace(std::min(a, b), std::max(a, b));
    }
  }
  if (s.graph_count > 0) {
    s.avg_nodes = static_cast<double>(s.total_nodes) /
                  static_cast<double>(s.graph_count);
    s.avg_edges = static_cast<double>(s.total_edges) /
                  static_cast<double>(s.graph_count);
    s.avg_cyclomatic = cyclomatic_sum / static_cast<double>(s.graph_count);
  }
  if (s.total_nodes > 0) {
    s.avg_degree = static_cast<double>(degree_sum) /
                   static_cast<double>(s.total_nodes);
  }
  s.label_counts.assign(labels.begin(), labels.end());
  std::sort(s.label_counts.begin(), s.label_counts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  s.edge_label_count = edge_labels.size();
  s.present_label_pairs = pairs.size();
  return s;
}

std::string DatabaseStatistics::ToString(const LabelDictionary& labels) const {
  std::ostringstream out;
  out << "graphs: " << graph_count << "\n";
  out << "nodes:  total " << total_nodes << ", avg " << avg_nodes
      << ", max " << max_nodes << "\n";
  out << "edges:  total " << total_edges << ", avg " << avg_edges
      << ", max " << max_edges << "\n";
  out << "degree: avg " << avg_degree << ", max " << max_degree << "\n";
  out << "cycles: avg " << avg_cyclomatic << " independent cycles/graph\n";
  out << "edge labels: " << edge_label_count
      << "; node-label pairs on edges: " << present_label_pairs << "\n";
  out << "node labels (descending):\n";
  for (const auto& [label, count] : label_counts) {
    double share = total_nodes > 0
                       ? 100.0 * static_cast<double>(count) /
                             static_cast<double>(total_nodes)
                       : 0.0;
    out << "  " << labels.Name(label) << ": " << count << " (" << share
        << "%)\n";
  }
  return out.str();
}

}  // namespace prague
