// AdmissionController in isolation: quota accounting, token-bucket
// behaviour, per-tenant independence, and the tenant-forgetting rule.
// Everything here is timing-free — rates are chosen so low (one token per
// 1000+ seconds) that no refill can land inside a test run, so the tests
// hold under any scheduler and under sanitizers.

#include <gtest/gtest.h>

#include "core/admission.h"

namespace prague {
namespace {

TEST(AdmissionTest, DefaultOptionsAdmitEverything) {
  AdmissionController admission;
  EXPECT_TRUE(admission.options().Unlimited());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(admission.AdmitSession("t").admitted);
    EXPECT_TRUE(admission.AdmitRun("t", 1 << 20).admitted);
  }
  const AdmissionStats stats = admission.Stats();
  EXPECT_EQ(stats.runs_shed, 0u);
  EXPECT_EQ(stats.sessions_shed, 0u);
  EXPECT_EQ(stats.runs_admitted, 100u);
}

TEST(AdmissionTest, SessionQuotaShedsAndReleases) {
  AdmissionOptions options;
  options.max_sessions = 2;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.AdmitSession("a").admitted);
  EXPECT_TRUE(admission.AdmitSession("a").admitted);
  const AdmissionDecision shed = admission.AdmitSession("a");
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, ShedReason::kSessions);
  EXPECT_GE(shed.retry_after_ms, 1);
  // Another tenant's quota is its own.
  EXPECT_TRUE(admission.AdmitSession("b").admitted);
  // Closing a session frees the slot.
  admission.OnSessionClosed("a");
  EXPECT_TRUE(admission.AdmitSession("a").admitted);
  EXPECT_EQ(admission.Stats().sessions_shed, 1u);
}

TEST(AdmissionTest, ConcurrencyQuotaReservesUntilRunFinished) {
  AdmissionOptions options;
  options.max_concurrent_runs = 2;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.AdmitRun("t", 10).admitted);
  EXPECT_TRUE(admission.AdmitRun("t", 10).admitted);
  const AdmissionDecision shed = admission.AdmitRun("t", 10);
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, ShedReason::kConcurrency);
  EXPECT_GE(shed.retry_after_ms, 1);
  admission.OnRunFinished("t", 10);
  EXPECT_TRUE(admission.AdmitRun("t", 10).admitted);
  const AdmissionStats stats = admission.Stats();
  EXPECT_EQ(stats.runs_admitted, 3u);
  EXPECT_EQ(stats.runs_shed, 1u);
}

TEST(AdmissionTest, QueuedBytesQuotaCountsPendingBodies) {
  AdmissionOptions options;
  options.max_queued_bytes = 100;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.AdmitRun("t", 60).admitted);
  const AdmissionDecision shed = admission.AdmitRun("t", 60);  // 120 > 100
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, ShedReason::kBytes);
  // Landing exactly on the cap is still admitted...
  EXPECT_TRUE(admission.AdmitRun("t", 40).admitted);
  // ...and finishing a run returns its bytes.
  admission.OnRunFinished("t", 60);
  EXPECT_TRUE(admission.AdmitRun("t", 60).admitted);
}

TEST(AdmissionTest, TokenBucketShedsAfterBurstWithRetryHint) {
  AdmissionOptions options;
  options.tenant_rate = 0.001;  // one token per 1000 s: no refill in-test
  options.tenant_burst = 2;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.AdmitRun("t", 1).admitted);
  EXPECT_TRUE(admission.AdmitRun("t", 1).admitted);
  const AdmissionDecision shed = admission.AdmitRun("t", 1);
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, ShedReason::kRate);
  // The hint is the time to the next whole token: about 1000 s here.
  EXPECT_GE(shed.retry_after_ms, 1);
  EXPECT_LE(shed.retry_after_ms, 1000 * 1000);
  // Each tenant owns its own bucket.
  EXPECT_TRUE(admission.AdmitRun("u", 1).admitted);
}

TEST(AdmissionTest, BurstDefaultsToAtLeastFour) {
  AdmissionOptions options;
  options.tenant_rate = 0.001;  // derived burst: max(2 * rate, 4) = 4
  AdmissionController admission(options);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(admission.AdmitRun("t", 1).admitted) << i;
  }
  EXPECT_FALSE(admission.AdmitRun("t", 1).admitted);
}

TEST(AdmissionTest, DrainedBucketSurvivesDisconnect) {
  // The reconnect exploit: drain the bucket, drop every session, come
  // back under the same tenant name. The drained bucket must persist —
  // only a tenant whose bucket has refilled to capacity is forgotten.
  AdmissionOptions options;
  options.tenant_rate = 0.001;
  options.max_sessions = 4;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.AdmitSession("t").admitted);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(admission.AdmitRun("t", 1).admitted) << i;
    admission.OnRunFinished("t", 1);
  }
  EXPECT_FALSE(admission.AdmitRun("t", 1).admitted);
  admission.OnSessionClosed("t");  // no sessions, runs, or bytes left...
  EXPECT_EQ(admission.Stats().tenants, 1u);  // ...but still tracked
  EXPECT_TRUE(admission.AdmitSession("t").admitted);
  EXPECT_FALSE(admission.AdmitRun("t", 1).admitted);  // still drained
}

TEST(AdmissionTest, IdleTenantWithFullBucketIsForgotten) {
  // Without rate limiting there is nothing to protect, so an idle tenant
  // leaves no state behind (the map stays bounded by live tenants).
  AdmissionOptions options;
  options.max_sessions = 2;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.AdmitSession("t").admitted);
  EXPECT_EQ(admission.Stats().tenants, 1u);
  admission.OnSessionClosed("t");
  EXPECT_EQ(admission.Stats().tenants, 0u);
}

TEST(AdmissionTest, ConfigureAppliesNewLimitsToNextDecision) {
  AdmissionController admission;
  EXPECT_TRUE(admission.AdmitRun("t", 1).admitted);  // unlimited
  AdmissionOptions options;
  options.max_concurrent_runs = 1;
  admission.Configure(options);
  EXPECT_EQ(admission.options().max_concurrent_runs, 1u);
  // The run admitted before Configure still holds its slot.
  EXPECT_FALSE(admission.AdmitRun("t", 1).admitted);
  admission.OnRunFinished("t", 1);
  EXPECT_TRUE(admission.AdmitRun("t", 1).admitted);
}

TEST(AdmissionTest, ShedReasonNamesAreStable) {
  EXPECT_STREQ(ShedReasonName(ShedReason::kNone), "none");
  EXPECT_STREQ(ShedReasonName(ShedReason::kRate), "rate");
  EXPECT_STREQ(ShedReasonName(ShedReason::kConcurrency), "concurrency");
  EXPECT_STREQ(ShedReasonName(ShedReason::kSessions), "sessions");
  EXPECT_STREQ(ShedReasonName(ShedReason::kBytes), "bytes");
}

}  // namespace
}  // namespace prague
