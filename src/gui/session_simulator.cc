#include "gui/session_simulator.h"

#include <unordered_map>
#include <utility>

#include "util/rng.h"
#include "util/stopwatch.h"

namespace prague {

namespace {

// Returns the scripted deletions that fire after `step` (1-based).
std::vector<FormulationId> DeletionsAfter(
    const std::vector<ScriptedModification>& mods, size_t step) {
  std::vector<FormulationId> out;
  for (const ScriptedModification& m : mods) {
    if (m.after_step == step) out.push_back(m.delete_edge);
  }
  return out;
}

double Overflow(double engine_seconds, double latency) {
  return engine_seconds > latency ? engine_seconds - latency : 0.0;
}

// Per-step latency with human jitter applied.
double JitteredLatency(double base, double jitter, Rng* rng) {
  if (jitter <= 0) return base;
  double factor = 1.0 + jitter * (2.0 * rng->NextDouble() - 1.0);
  return base * factor;
}

}  // namespace

SessionSimulator::SessionSimulator(SnapshotPtr snapshot,
                                   const SimulationConfig& config)
    : snap_(std::move(snapshot)), config_(config) {}

Result<SimulationResult> SessionSimulator::RunPrague(
    const VisualQuerySpec& spec,
    const std::vector<ScriptedModification>& mods) const {
  PragueSession session(snap_, config_.prague);
  SimulationResult out;
  out.query_name = spec.name;
  const Graph& q = spec.graph;
  // The user drags nodes from Panel 2 as they become edge endpoints.
  std::unordered_map<NodeId, NodeId> node_map;  // query node -> session node
  auto session_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId s = session.AddNode(q.NodeLabel(n));
    node_map.emplace(n, s);
    return s;
  };
  double overflow_total = 0;
  Rng jitter_rng(config_.latency.jitter_seed);
  for (size_t step = 0; step < spec.sequence.size(); ++step) {
    const Edge& edge = q.GetEdge(spec.sequence[step]);
    NodeId u = session_node(edge.u);
    NodeId v = session_node(edge.v);
    Stopwatch timer;
    Result<StepReport> report = session.AddEdge(u, v, edge.label);
    if (!report.ok()) return report.status();
    double engine = timer.ElapsedSeconds();

    StepTrace trace;
    trace.edge = report->edge;
    trace.status = report->status;
    trace.engine_seconds = engine;
    trace.overflow_seconds = Overflow(
        engine, JitteredLatency(config_.latency.edge_seconds,
                                config_.latency.jitter, &jitter_rng));
    trace.spig_seconds = report->spig_seconds;
    trace.exact_candidates = report->exact_candidates;
    trace.free_candidates = report->free_candidates;
    trace.ver_candidates = report->ver_candidates;
    out.steps.push_back(trace);
    out.formulation_engine_seconds += engine;
    overflow_total += trace.overflow_seconds;

    for (FormulationId del : DeletionsAfter(mods, step + 1)) {
      Stopwatch del_timer;
      Result<StepReport> del_report = session.DeleteEdge(del);
      if (!del_report.ok()) return del_report.status();
      double del_engine = del_timer.ElapsedSeconds();
      StepTrace del_trace;
      del_trace.edge = del;
      del_trace.deletion = true;
      del_trace.status = del_report->status;
      del_trace.engine_seconds = del_engine;
      del_trace.overflow_seconds = Overflow(
          del_engine, JitteredLatency(config_.latency.modify_seconds,
                                      config_.latency.jitter, &jitter_rng));
      del_trace.spig_seconds = del_report->spig_seconds;
      del_trace.exact_candidates = del_report->exact_candidates;
      del_trace.free_candidates = del_report->free_candidates;
      del_trace.ver_candidates = del_report->ver_candidates;
      out.steps.push_back(del_trace);
      out.formulation_engine_seconds += del_engine;
      overflow_total += del_trace.overflow_seconds;
    }
  }

  out.final_candidates = session.similarity_mode()
                             ? session.similar_candidates().TotalCandidates()
                             : session.exact_candidates().size();
  out.final_free = session.similar_candidates().AllFree().size();
  out.final_ver = session.similar_candidates().AllVer().size();

  Result<QueryResults> results = session.Run(&out.run_stats);
  if (!results.ok()) return results.status();
  out.results = std::move(*results);
  out.similarity = out.results.similarity;
  out.truncated = out.results.truncated;
  out.srt_seconds = out.run_stats.srt_seconds + overflow_total;
  return out;
}

Result<SimulationResult> SessionSimulator::RunGBlender(
    const VisualQuerySpec& spec,
    const std::vector<ScriptedModification>& mods) const {
  GBlenderSession session(snap_);
  SimulationResult out;
  out.query_name = spec.name;
  const Graph& q = spec.graph;
  std::unordered_map<NodeId, NodeId> node_map;
  auto session_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId s = session.AddNode(q.NodeLabel(n));
    node_map.emplace(n, s);
    return s;
  };
  double overflow_total = 0;
  Rng jitter_rng(config_.latency.jitter_seed);
  for (size_t step = 0; step < spec.sequence.size(); ++step) {
    const Edge& edge = q.GetEdge(spec.sequence[step]);
    NodeId u = session_node(edge.u);
    NodeId v = session_node(edge.v);
    Stopwatch timer;
    Result<GbrStepReport> report = session.AddEdge(u, v, edge.label);
    if (!report.ok()) return report.status();
    double engine = timer.ElapsedSeconds();
    StepTrace trace;
    trace.edge = report->edge;
    trace.engine_seconds = engine;
    trace.overflow_seconds = Overflow(
        engine, JitteredLatency(config_.latency.edge_seconds,
                                config_.latency.jitter, &jitter_rng));
    trace.exact_candidates = report->candidates;
    out.steps.push_back(trace);
    out.formulation_engine_seconds += engine;
    overflow_total += trace.overflow_seconds;

    for (FormulationId del : DeletionsAfter(mods, step + 1)) {
      Stopwatch del_timer;
      Result<GbrStepReport> del_report = session.DeleteEdge(del);
      if (!del_report.ok()) return del_report.status();
      double del_engine = del_timer.ElapsedSeconds();
      StepTrace del_trace;
      del_trace.edge = del;
      del_trace.deletion = true;
      del_trace.engine_seconds = del_engine;
      del_trace.overflow_seconds = Overflow(
          del_engine, JitteredLatency(config_.latency.modify_seconds,
                                      config_.latency.jitter, &jitter_rng));
      del_trace.exact_candidates = del_report->candidates;
      out.steps.push_back(del_trace);
      out.formulation_engine_seconds += del_engine;
      overflow_total += del_trace.overflow_seconds;
    }
  }

  out.final_candidates = session.candidates().size();
  // GBlenderSession has no config of its own; apply the same Run() budget
  // the PRAGUE path gets from PragueConfig so comparisons stay fair.
  Deadline deadline = (config_.prague.run_deadline_ms > 0
                           ? Deadline::AfterMillis(config_.prague.run_deadline_ms)
                           : Deadline())
                          .WithToken(config_.prague.cancellation);
  Result<QueryResults> results = session.Run(&out.run_stats, deadline);
  if (!results.ok()) return results.status();
  out.results = std::move(*results);
  out.similarity = false;
  out.truncated = out.results.truncated;
  out.srt_seconds = out.run_stats.srt_seconds + overflow_total;
  return out;
}

}  // namespace prague
