// Core labeled-graph type.
//
// Graphs in PRAGUE (both data graphs and query fragments) are connected,
// undirected, node-labeled graphs; edges may additionally carry labels
// (default 0 when the application is node-labeled only, as in the paper's
// chemical datasets). Section III of the paper fixes this model.

#ifndef PRAGUE_GRAPH_GRAPH_H_
#define PRAGUE_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace prague {

/// Index of a node within one graph.
using NodeId = uint32_t;
/// Index of an edge within one graph.
using EdgeId = uint32_t;
/// Dense label id; the GraphDatabase's LabelDictionary maps to strings.
using Label = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
/// Sentinel for "no edge".
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// \brief An undirected edge between two nodes, with a label.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  Label label = 0;

  /// \brief The endpoint opposite to \p n. Requires n ∈ {u, v}.
  NodeId Other(NodeId n) const { return n == u ? v : u; }

  bool operator==(const Edge&) const = default;
};

/// \brief One (node, incident-edge) adjacency entry.
struct Adjacency {
  NodeId neighbor = kInvalidNode;
  EdgeId edge = kInvalidEdge;

  bool operator==(const Adjacency&) const = default;
};

/// \brief Immutable undirected labeled graph.
///
/// Built through GraphBuilder. Node ids are dense in [0, NodeCount());
/// edge ids are dense in [0, EdgeCount()). |G| in the paper is EdgeCount().
class Graph {
 public:
  Graph() = default;

  /// \brief Number of nodes.
  size_t NodeCount() const { return node_labels_.size(); }
  /// \brief Number of edges — the paper's |G|.
  size_t EdgeCount() const { return edges_.size(); }
  /// \brief True iff the graph has no nodes.
  bool Empty() const { return node_labels_.empty(); }

  /// \brief Label of node \p n.
  Label NodeLabel(NodeId n) const { return node_labels_[n]; }
  /// \brief Edge by id.
  const Edge& GetEdge(EdgeId e) const { return edges_[e]; }
  /// \brief All edges.
  const std::vector<Edge>& edges() const { return edges_; }
  /// \brief All node labels, indexed by NodeId.
  const std::vector<Label>& node_labels() const { return node_labels_; }

  /// \brief Neighbors of node \p n with the connecting edge ids.
  const std::vector<Adjacency>& Neighbors(NodeId n) const { return adj_[n]; }
  /// \brief Degree of node \p n.
  size_t Degree(NodeId n) const { return adj_[n].size(); }

  /// \brief Id of an edge between \p u and \p v, or kInvalidEdge.
  EdgeId FindEdge(NodeId u, NodeId v) const;
  /// \brief True iff an edge between \p u and \p v exists.
  bool HasEdge(NodeId u, NodeId v) const {
    return FindEdge(u, v) != kInvalidEdge;
  }

  /// \brief True iff all nodes are reachable from node 0 (and not Empty()).
  bool IsConnected() const;

  /// \brief Approximate heap footprint in bytes.
  size_t ByteSize() const;

  /// \brief Multi-line human-readable rendering for diagnostics.
  std::string ToString() const;

  bool operator==(const Graph&) const = default;

 private:
  friend class GraphBuilder;

  std::vector<Label> node_labels_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Adjacency>> adj_;
};

/// \brief Incremental constructor for Graph.
///
/// Usage:
///   GraphBuilder b;
///   NodeId a = b.AddNode(label_c);
///   NodeId c = b.AddNode(label_o);
///   b.AddEdge(a, c);
///   Graph g = std::move(b).Build();
class GraphBuilder {
 public:
  GraphBuilder() = default;
  /// \brief Starts from an existing graph (for edge-at-a-time formulation).
  explicit GraphBuilder(const Graph& g);

  /// \brief Adds a node with the given label; returns its id.
  NodeId AddNode(Label label);
  /// \brief Adds an undirected edge; returns its id.
  ///
  /// Requires distinct, existing endpoints and no duplicate edge (the
  /// paper's model is a simple graph); violations return InvalidArgument.
  Result<EdgeId> AddEdge(NodeId u, NodeId v, Label label = 0);

  /// \brief Number of nodes added so far.
  size_t NodeCount() const { return graph_.node_labels_.size(); }
  /// \brief Number of edges added so far.
  size_t EdgeCount() const { return graph_.edges_.size(); }

  /// \brief Finalizes the graph.
  Graph Build() && { return std::move(graph_); }
  /// \brief Copies out the current graph without consuming the builder.
  Graph Snapshot() const { return graph_; }

 private:
  Graph graph_;
};

}  // namespace prague

#endif  // PRAGUE_GRAPH_GRAPH_H_
