// gSpan miner and DIF extraction: validated against brute-force
// enumeration on the tiny database and DIF properties from Section III.

#include <gtest/gtest.h>

#include <set>

#include "graph/brute_force_iso.h"
#include "graph/vf2.h"
#include "mining/gspan.h"
#include "test_fixtures.h"

namespace prague {
namespace {

using testing::BruteForceFragments;
using testing::TinyDatabase;

TEST(GspanTest, RejectsEmptyDatabase) {
  GraphDatabase empty;
  MiningConfig config;
  EXPECT_FALSE(MineFragments(empty, config).ok());
}

TEST(GspanTest, RejectsBadSupportRatio) {
  GraphDatabase db = TinyDatabase();
  MiningConfig config;
  config.min_support_ratio = 0;
  EXPECT_FALSE(MineFragments(db, config).ok());
  config.min_support_ratio = 1.5;
  EXPECT_FALSE(MineFragments(db, config).ok());
}

TEST(GspanTest, FrequentSetMatchesBruteForce) {
  GraphDatabase db = TinyDatabase();
  MiningConfig config;
  config.min_support_ratio = 0.34;  // support >= 3 of 6
  config.max_fragment_edges = 5;
  Result<MiningResult> mined = MineFragments(db, config);
  ASSERT_TRUE(mined.ok());

  auto oracle = BruteForceFragments(db, config.max_fragment_edges);
  std::set<CanonicalCode> expected;
  for (const auto& [code, gids] : oracle) {
    if (gids.size() >= mined->min_support) expected.insert(code);
  }
  std::set<CanonicalCode> actual;
  for (const MinedFragment& f : mined->frequent) actual.insert(f.code);
  EXPECT_EQ(actual, expected);
}

TEST(GspanTest, FsgIdsAreExact) {
  GraphDatabase db = TinyDatabase();
  MiningConfig config;
  config.min_support_ratio = 0.34;
  config.max_fragment_edges = 5;
  Result<MiningResult> mined = MineFragments(db, config);
  ASSERT_TRUE(mined.ok());
  auto oracle = BruteForceFragments(db, config.max_fragment_edges);
  for (const MinedFragment& f : mined->frequent) {
    auto it = oracle.find(f.code);
    ASSERT_NE(it, oracle.end()) << f.code;
    IdSet expected(std::vector<GraphId>(it->second.begin(),
                                        it->second.end()));
    EXPECT_EQ(f.fsg_ids, expected) << f.code;
  }
}

TEST(GspanTest, FsgIdsVerifiedByVf2) {
  GraphDatabase db = TinyDatabase();
  MiningConfig config;
  config.min_support_ratio = 0.34;
  Result<MiningResult> mined = MineFragments(db, config);
  ASSERT_TRUE(mined.ok());
  for (const MinedFragment& f : mined->frequent) {
    for (GraphId gid = 0; gid < db.size(); ++gid) {
      EXPECT_EQ(f.fsg_ids.Contains(gid),
                IsSubgraphIsomorphic(f.graph, db.graph(gid)))
          << f.code << " vs g" << gid;
    }
  }
}

TEST(GspanTest, FrequentSetIsDownwardClosed) {
  const auto& fixture = testing::TinyFixture::Get();
  std::set<CanonicalCode> codes;
  for (const MinedFragment& f : fixture.mined.frequent) codes.insert(f.code);
  for (const MinedFragment& f : fixture.mined.frequent) {
    if (f.size() < 2) continue;
    auto by_size = ConnectedEdgeSubsetsBySize(f.graph);
    for (EdgeMask mask : by_size[f.size() - 1]) {
      Graph sub = ExtractEdgeSubgraph(f.graph, mask).graph;
      EXPECT_TRUE(codes.contains(GetCanonicalCode(sub)))
          << "subgraph of frequent " << f.code << " missing";
    }
  }
}

TEST(GspanTest, DifsAreInfrequentWithFrequentSubgraphs) {
  const auto& fixture = testing::TinyFixture::Get();
  std::set<CanonicalCode> frequent;
  for (const MinedFragment& f : fixture.mined.frequent) {
    frequent.insert(f.code);
  }
  for (const MinedFragment& d : fixture.mined.difs) {
    EXPECT_LT(d.support(), fixture.mined.min_support) << d.code;
    EXPECT_GT(d.support(), 0u) << d.code;
    EXPECT_FALSE(frequent.contains(d.code));
    if (d.size() >= 2) {
      auto by_size = ConnectedEdgeSubsetsBySize(d.graph);
      for (size_t k = 1; k < d.size(); ++k) {
        for (EdgeMask mask : by_size[k]) {
          Graph sub = ExtractEdgeSubgraph(d.graph, mask).graph;
          EXPECT_TRUE(frequent.contains(GetCanonicalCode(sub)))
              << "DIF " << d.code << " has infrequent proper subgraph";
        }
      }
    }
  }
}

TEST(GspanTest, DifFsgIdsVerifiedByVf2) {
  const auto& fixture = testing::TinyFixture::Get();
  for (const MinedFragment& d : fixture.mined.difs) {
    for (GraphId gid = 0; gid < fixture.db.size(); ++gid) {
      EXPECT_EQ(d.fsg_ids.Contains(gid),
                IsSubgraphIsomorphic(d.graph, fixture.db.graph(gid)))
          << d.code << " vs g" << gid;
    }
  }
}

TEST(GspanTest, EveryInfrequentFragmentContainsAnIndexedDif) {
  // Section III property: given g ∈ I (support ≥ 1), ∃ DIF d ⊆ g.
  const auto& fixture = testing::TinyFixture::Get();
  auto oracle = BruteForceFragments(fixture.db,
                                    /*max_edges=*/4);
  for (const auto& [code, gids] : oracle) {
    if (gids.size() >= fixture.mined.min_support) continue;  // frequent
    Result<DfsCode> dc = DfsCodeFromString(code);
    ASSERT_TRUE(dc.ok());
    Graph g = GraphFromDfsCode(*dc);
    bool contains_dif = false;
    for (const MinedFragment& d : fixture.mined.difs) {
      if (d.size() <= g.EdgeCount() && IsSubgraphIsomorphic(d.graph, g)) {
        contains_dif = true;
        break;
      }
    }
    EXPECT_TRUE(contains_dif) << "infrequent " << code << " has no DIF";
  }
}

TEST(GspanTest, DifsSortedBySize) {
  const auto& fixture = testing::AidsFixture::Get();
  for (size_t i = 1; i < fixture.mined.difs.size(); ++i) {
    EXPECT_LE(fixture.mined.difs[i - 1].size(), fixture.mined.difs[i].size());
  }
}

TEST(GspanTest, MaxFragmentSizeHonored) {
  GraphDatabase db = TinyDatabase();
  MiningConfig config;
  config.min_support_ratio = 0.34;
  config.max_fragment_edges = 2;
  Result<MiningResult> mined = MineFragments(db, config);
  ASSERT_TRUE(mined.ok());
  for (const MinedFragment& f : mined->frequent) {
    EXPECT_LE(f.size(), 2u);
  }
  for (const MinedFragment& d : mined->difs) {
    EXPECT_LE(d.size(), 3u);  // DIF candidates are extensions by one edge
  }
}

TEST(GspanTest, MiningAidsFixtureProducesFragments) {
  const auto& fixture = testing::AidsFixture::Get();
  EXPECT_GT(fixture.mined.frequent.size(), 10u);
  EXPECT_GT(fixture.mined.difs.size(), 0u);
  EXPECT_EQ(fixture.mined.min_support, 30u);  // 0.1 * 300
}

}  // namespace
}  // namespace prague
