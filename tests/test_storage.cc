// Durable storage engine: WAL framing and corruption handling, segment
// round-trips with zero-copy posting views, manifest atomicity, and the
// engine-level bootstrap / recover / checkpoint protocol.

#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/session_manager.h"
#include "index/index_maintenance.h"
#include "storage/crc32c.h"
#include "storage/fs_util.h"
#include "storage/manifest.h"
#include "storage/recovery.h"
#include "storage/segment.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"
#include "test_fixtures.h"
#include "test_storage_util.h"

namespace prague {
namespace {

using storage::AppendPayload;
using storage::JoinPath;
using storage::Manifest;
using storage::ReadWal;
using storage::RecoveredState;
using storage::StorageEngine;
using storage::StorageOptions;
using storage::StorageStats;
using storage::WalReadResult;
using storage::WalRecordType;
using storage::WalWriter;
using storage::WalWriterOptions;
using testing::kC;
using testing::kN;
using testing::kS;

// Fresh empty directory under the gtest temp root, unique per test.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/prague_storage_" + name;
  // Clear leftovers from a previous run of the same test.
  Result<std::vector<std::string>> files = storage::ListDir(dir);
  if (files.ok()) {
    for (const std::string& f : *files) {
      (void)storage::RemoveFile(JoinPath(dir, f));
    }
  }
  if (!storage::EnsureDir(dir).ok()) std::abort();
  return dir;
}

// Flips one bit of the file at `path`, at byte `offset` (from the start
// when >= 0, from the end when negative).
void FlipBit(const std::string& path, int64_t offset) {
  int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  off_t pos = offset >= 0 ? ::lseek(fd, offset, SEEK_SET)
                          : ::lseek(fd, offset, SEEK_END);
  ASSERT_GE(pos, 0);
  unsigned char byte = 0;
  ASSERT_EQ(::pread(fd, &byte, 1, pos), 1);
  byte ^= 0x40;
  ASSERT_EQ(::pwrite(fd, &byte, 1, pos), 1);
  ::close(fd);
}

void TruncateFile(const std::string& path, uint64_t size) {
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size)), 0);
}

// ---------------------------------------------------------------------------
// CRC32C

TEST(Crc32cTest, KnownVector) {
  // The canonical CRC-32C check value (RFC 3720 appendix B.4).
  EXPECT_EQ(storage::Crc32c("123456789", 9), 0xE3069283u);
}

// ---------------------------------------------------------------------------
// WAL

TEST(WalTest, AppendReadRoundTrip) {
  std::string path = JoinPath(FreshDir("wal_roundtrip"), "wal.log");
  {
    Result<std::unique_ptr<WalWriter>> wal =
        WalWriter::Open(path, 0, WalWriterOptions{});
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE((*wal)->Append(WalRecordType::kAppendGraphs, "first").ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kAppendGraphs, "").ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kAppendGraphs, "third").ok());
    EXPECT_EQ((*wal)->appends(), 3u);
    EXPECT_GE((*wal)->syncs(), 1u);
  }
  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE(read->tail_dropped);
  ASSERT_EQ(read->records.size(), 3u);
  EXPECT_EQ(read->records[0].payload, "first");
  EXPECT_EQ(read->records[1].payload, "");
  EXPECT_EQ(read->records[2].payload, "third");
  Result<uint64_t> size = storage::FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(read->valid_bytes, *size);
}

TEST(WalTest, ReopenContinuesAfterValidPrefix) {
  std::string path = JoinPath(FreshDir("wal_reopen"), "wal.log");
  {
    auto wal = WalWriter::Open(path, 0, WalWriterOptions{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kAppendGraphs, "one").ok());
  }
  Result<WalReadResult> first = ReadWal(path);
  ASSERT_TRUE(first.ok());
  {
    auto wal = WalWriter::Open(path, first->valid_bytes, WalWriterOptions{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kAppendGraphs, "two").ok());
  }
  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[1].payload, "two");
}

TEST(WalTest, TornTailDroppedWithWarning) {
  std::string path = JoinPath(FreshDir("wal_torn"), "wal.log");
  uint64_t two_records = 0;
  {
    auto wal = WalWriter::Open(path, 0, WalWriterOptions{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kAppendGraphs, "keep-1").ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kAppendGraphs, "keep-2").ok());
    two_records = (*wal)->bytes();
    ASSERT_TRUE(
        (*wal)->Append(WalRecordType::kAppendGraphs, "torn-away").ok());
  }
  // Tear the final record mid-payload, as a crash mid-write(2) would.
  TruncateFile(path, two_records + 11);
  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->tail_dropped);
  EXPECT_FALSE(read->tail_warning.empty());
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[1].payload, "keep-2");
  EXPECT_EQ(read->valid_bytes, two_records);

  // Reopening at the valid prefix physically removes the torn bytes.
  auto wal = WalWriter::Open(path, read->valid_bytes, WalWriterOptions{});
  ASSERT_TRUE(wal.ok());
  Result<uint64_t> size = storage::FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, two_records);
}

TEST(WalTest, BitFlipInTailRecordDropsOnlyTheTail) {
  std::string path = JoinPath(FreshDir("wal_flip"), "wal.log");
  uint64_t prefix = 0;
  {
    auto wal = WalWriter::Open(path, 0, WalWriterOptions{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kAppendGraphs, "survives").ok());
    prefix = (*wal)->bytes();
    ASSERT_TRUE((*wal)->Append(WalRecordType::kAppendGraphs, "flipped").ok());
  }
  FlipBit(path, -2);  // inside the last record's payload
  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->tail_dropped);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].payload, "survives");
  EXPECT_EQ(read->valid_bytes, prefix);
}

TEST(WalTest, BitFlipInFirstRecordDropsEverything) {
  std::string path = JoinPath(FreshDir("wal_flip_first"), "wal.log");
  {
    auto wal = WalWriter::Open(path, 0, WalWriterOptions{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kAppendGraphs, "aaaa").ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kAppendGraphs, "bbbb").ok());
  }
  constexpr int64_t kWalRecordHeaderBytes = 9;  // u32 len | u8 type | u32 crc
  FlipBit(path, kWalRecordHeaderBytes + 1);  // first payload
  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->tail_dropped);
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->valid_bytes, 0u);
}

TEST(WalTest, MissingFileIsNotFound) {
  Result<WalReadResult> read = ReadWal(FreshDir("wal_missing") + "/absent");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kNotFound);
}

TEST(WalTest, ConcurrentAppendsShareFsyncs) {
  std::string path = JoinPath(FreshDir("wal_group"), "wal.log");
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 25;
  auto wal = WalWriter::Open(path, 0, WalWriterOptions{});
  ASSERT_TRUE(wal.ok());
  std::vector<std::thread> threads;
  std::atomic<size_t> failures{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        std::string payload =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        if (!(*wal)->Append(WalRecordType::kAppendGraphs, payload).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ((*wal)->appends(), kThreads * kPerThread);
  // Group commit: every append is durable, yet leaders batch fsyncs.
  EXPECT_LE((*wal)->syncs(), (*wal)->appends());
  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), kThreads * kPerThread);
  EXPECT_FALSE(read->tail_dropped);
}

// ---------------------------------------------------------------------------
// Append payload codec

TEST(AppendPayloadTest, RoundTrip) {
  AppendPayload payload;
  payload.to_version = 7;
  payload.options = testing::StorageMaintenanceOptions();
  payload.label_names = {"C", "S", "O", "N"};
  payload.graphs.push_back(
      testing::MakeGraph({kC, kS, kN}, {{0, 1}, {1, 2}}));
  payload.graphs.push_back(testing::MakeGraph({kC, kC}, {{0, 1}}));

  std::string blob = storage::EncodeAppendPayload(payload);
  Result<AppendPayload> decoded = storage::DecodeAppendPayload(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->to_version, 7u);
  EXPECT_DOUBLE_EQ(decoded->options.alpha, payload.options.alpha);
  EXPECT_EQ(decoded->options.max_fragment_edges,
            payload.options.max_fragment_edges);
  EXPECT_EQ(decoded->options.reclassify, payload.options.reclassify);
  EXPECT_EQ(decoded->label_names, payload.label_names);
  ASSERT_EQ(decoded->graphs.size(), 2u);
  EXPECT_EQ(decoded->graphs[0].NodeCount(), 3u);
  EXPECT_EQ(decoded->graphs[0].EdgeCount(), 2u);
  EXPECT_EQ(decoded->graphs[0].NodeLabel(1), kS);
  EXPECT_EQ(decoded->graphs[1].EdgeCount(), 1u);
}

TEST(AppendPayloadTest, RejectsTruncationAndTrailingBytes) {
  AppendPayload payload;
  payload.to_version = 1;
  payload.label_names = {"C"};
  payload.graphs.push_back(testing::MakeGraph({kC, kC}, {{0, 1}}));
  std::string blob = storage::EncodeAppendPayload(payload);
  EXPECT_FALSE(
      storage::DecodeAppendPayload(blob.substr(0, blob.size() - 1)).ok());
  EXPECT_FALSE(storage::DecodeAppendPayload(blob + "x").ok());
}

// ---------------------------------------------------------------------------
// Segments

TEST(SegmentTest, RoundTripIsBitIdentical) {
  std::string dir = FreshDir("segment_roundtrip");
  SnapshotPtr snapshot = testing::MakeTinySnapshot();
  ASSERT_TRUE(storage::WriteSegment(*snapshot, dir, "seg.prseg").ok());

  Result<storage::OpenedSegment> opened =
      storage::OpenSegment(JoinPath(dir, "seg.prseg"));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  testing::ExpectSnapshotsIdentical(*opened->snapshot, *snapshot);
  EXPECT_GT(opened->posting_bytes, 0u);
  EXPECT_GT(opened->file_bytes, opened->posting_bytes);
}

TEST(SegmentTest, PostingListsAreZeroCopyViewsIntoTheMapping) {
  std::string dir = FreshDir("segment_zerocopy");
  SnapshotPtr snapshot = testing::MakeTinySnapshot();
  ASSERT_TRUE(storage::WriteSegment(*snapshot, dir, "seg.prseg").ok());

  SnapshotPtr keep;
  {
    Result<storage::OpenedSegment> opened =
        storage::OpenSegment(JoinPath(dir, "seg.prseg"));
    ASSERT_TRUE(opened.ok());
    const uint8_t* base = opened->mapping->data();
    const uint8_t* end = base + opened->mapping->size();
    const A2FIndex& a2f = opened->snapshot->indexes().a2f;
    ASSERT_GT(a2f.VertexCount(), 0u);
    size_t borrowed_nonempty = 0;
    for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
      const A2fVertex& v = a2f.vertex(id);
      for (const IdSet* set : {&v.fsg_ids, &v.del_ids}) {
        if (set->size() == 0) continue;
        ++borrowed_nonempty;
        EXPECT_TRUE(set->borrowed()) << "A2F " << id;
        const uint8_t* data = reinterpret_cast<const uint8_t*>(set->begin());
        EXPECT_GE(data, base) << "A2F " << id;
        EXPECT_LE(reinterpret_cast<const uint8_t*>(set->end()), end)
            << "A2F " << id;
      }
    }
    EXPECT_GT(borrowed_nonempty, 0u);
    keep = opened->snapshot;
  }
  // The OpenedSegment handle is gone; the snapshot's borrowed sets must
  // keep the mapping alive on their own.
  EXPECT_GT(keep->indexes().a2f.VertexCount(), 0u);
  EXPECT_EQ(keep->indexes().a2f.FsgIds(0).size(),
            snapshot->indexes().a2f.FsgIds(0).size());
}

TEST(SegmentTest, MetaCorruptionIsDetected) {
  std::string dir = FreshDir("segment_meta_corrupt");
  SnapshotPtr snapshot = testing::MakeTinySnapshot();
  ASSERT_TRUE(storage::WriteSegment(*snapshot, dir, "seg.prseg").ok());
  std::string path = JoinPath(dir, "seg.prseg");
  FlipBit(path, storage::kSegmentHeaderBytes + 3);
  Result<storage::OpenedSegment> opened = storage::OpenSegment(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), Status::Code::kCorruption);
}

TEST(SegmentTest, PostingCorruptionIsDetectedWhenVerifying) {
  std::string dir = FreshDir("segment_post_corrupt");
  SnapshotPtr snapshot = testing::MakeTinySnapshot();
  ASSERT_TRUE(storage::WriteSegment(*snapshot, dir, "seg.prseg").ok());
  std::string path = JoinPath(dir, "seg.prseg");
  FlipBit(path, -3);  // posting region sits at the end of the file
  storage::SegmentReadOptions verify;
  verify.verify_postings_crc = true;
  Result<storage::OpenedSegment> opened = storage::OpenSegment(path, verify);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), Status::Code::kCorruption);
}

TEST(SegmentTest, TruncationIsDetected) {
  std::string dir = FreshDir("segment_truncate");
  SnapshotPtr snapshot = testing::MakeTinySnapshot();
  ASSERT_TRUE(storage::WriteSegment(*snapshot, dir, "seg.prseg").ok());
  std::string path = JoinPath(dir, "seg.prseg");
  Result<uint64_t> size = storage::FileSize(path);
  ASSERT_TRUE(size.ok());
  TruncateFile(path, *size / 2);
  EXPECT_FALSE(storage::OpenSegment(path).ok());
  TruncateFile(path, storage::kSegmentHeaderBytes - 1);
  EXPECT_FALSE(storage::OpenSegment(path).ok());
}

// ---------------------------------------------------------------------------
// Manifest

TEST(ManifestTest, SaveLoadRoundTrip) {
  std::string dir = FreshDir("manifest_roundtrip");
  Manifest manifest;
  manifest.snapshot_version = 12;
  manifest.alpha = 0.25;
  manifest.segment_file = "seg-12.prseg";
  manifest.wal_file = "wal-12.log";
  ASSERT_TRUE(storage::SaveManifest(dir, manifest).ok());
  Result<Manifest> loaded = storage::LoadManifest(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, manifest);
}

TEST(ManifestTest, MissingIsNotFoundCorruptIsCorruption) {
  std::string dir = FreshDir("manifest_corrupt");
  Result<Manifest> missing = storage::LoadManifest(dir);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kNotFound);

  Manifest manifest;
  manifest.segment_file = "seg-0.prseg";
  manifest.wal_file = "wal-0.log";
  ASSERT_TRUE(storage::SaveManifest(dir, manifest).ok());
  FlipBit(JoinPath(dir, storage::kManifestFileName), 20);
  Result<Manifest> corrupt = storage::LoadManifest(dir);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), Status::Code::kCorruption);
}

// ---------------------------------------------------------------------------
// Storage engine

// One engine append: encodes `graphs` as the payload advancing to
// `to_version` using the tiny fixture's label names.
AppendPayload PayloadFor(uint64_t to_version, std::vector<Graph> graphs) {
  AppendPayload payload;
  payload.to_version = to_version;
  payload.options = testing::StorageMaintenanceOptions();
  payload.label_names = {"C", "S", "O", "N"};
  payload.graphs = std::move(graphs);
  return payload;
}

TEST(StorageEngineTest, BootstrapThenOpenIsIdentity) {
  std::string dir = FreshDir("engine_bootstrap");
  SnapshotPtr initial = testing::MakeTinySnapshot();
  EXPECT_FALSE(StorageEngine::Exists(dir));
  Result<std::unique_ptr<StorageEngine>> engine =
      StorageEngine::Bootstrap(dir, *initial, testing::kStorageAlpha);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE(StorageEngine::Exists(dir));
  testing::ExpectSnapshotsIdentical(*(*engine)->recovered().snapshot,
                                    *initial);
  // Bootstrapping an initialized directory must fail, not overwrite.
  EXPECT_FALSE(
      StorageEngine::Bootstrap(dir, *initial, testing::kStorageAlpha).ok());

  engine->reset();
  Result<std::unique_ptr<StorageEngine>> reopened = StorageEngine::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const RecoveredState& state = (*reopened)->recovered();
  EXPECT_EQ(state.replayed_records, 0u);  // O(1) restart: nothing to replay
  EXPECT_FALSE(state.wal_tail_dropped);
  testing::ExpectSnapshotsIdentical(*state.snapshot, *initial);
}

TEST(StorageEngineTest, LoggedAppendsReplayOnOpen) {
  std::string dir = FreshDir("engine_replay");
  SnapshotPtr initial = testing::MakeTinySnapshot();
  {
    Result<std::unique_ptr<StorageEngine>> engine =
        StorageEngine::Bootstrap(dir, *initial, testing::kStorageAlpha);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(
        (*engine)->LogAppend(PayloadFor(1, testing::BatchForVersion(1))).ok());
    ASSERT_TRUE(
        (*engine)->LogAppend(PayloadFor(2, testing::BatchForVersion(2))).ok());
    EXPECT_GT((*engine)->Stats().wal_bytes, 0u);
  }
  // Crash-equivalent: the engine is gone, only the files remain. Open
  // must replay both records through the maintenance delta path and land
  // on the same snapshot the oracle reaches by applying the same batches.
  Result<std::unique_ptr<StorageEngine>> reopened = StorageEngine::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const RecoveredState& state = (*reopened)->recovered();
  EXPECT_EQ(state.replayed_records, 2u);
  EXPECT_EQ(state.snapshot->version(), 2u);

  SnapshotPtr oracle = initial;
  for (uint64_t v = 1; v <= 2; ++v) {
    Result<SnapshotAppendResult> next =
        AppendGraphs(*oracle, testing::BatchForVersion(v),
                     testing::StorageMaintenanceOptions());
    ASSERT_TRUE(next.ok());
    oracle = next->snapshot;
  }
  testing::ExpectSnapshotsIdentical(*state.snapshot, *oracle);
}

TEST(StorageEngineTest, CheckpointTruncatesWalAndSurvivesReopen) {
  std::string dir = FreshDir("engine_checkpoint");
  SnapshotPtr initial = testing::MakeTinySnapshot();
  {
    Result<std::unique_ptr<StorageEngine>> engine =
        StorageEngine::Bootstrap(dir, *initial, testing::kStorageAlpha);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(
        (*engine)->LogAppend(PayloadFor(1, testing::BatchForVersion(1))).ok());
  }
  Result<std::unique_ptr<StorageEngine>> engine = StorageEngine::Open(dir);
  ASSERT_TRUE(engine.ok());
  SnapshotPtr recovered = (*engine)->recovered().snapshot;
  ASSERT_EQ(recovered->version(), 1u);
  ASSERT_TRUE(
      (*engine)->Checkpoint(*recovered, testing::kStorageAlpha).ok());
  StorageStats stats = (*engine)->Stats();
  EXPECT_EQ(stats.last_checkpoint_version, 1u);
  EXPECT_EQ(stats.wal_bytes, 0u);
  // Superseded files are gone; only the live pair plus manifest remain.
  Result<std::vector<std::string>> files = storage::ListDir(dir);
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 3u);
  engine->reset();

  Result<std::unique_ptr<StorageEngine>> reopened = StorageEngine::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovered().replayed_records, 0u);
  testing::ExpectSnapshotsIdentical(*(*reopened)->recovered().snapshot,
                                    *recovered);
}

TEST(StorageEngineTest, SweepsOrphansOnOpen) {
  std::string dir = FreshDir("engine_orphans");
  SnapshotPtr initial = testing::MakeTinySnapshot();
  {
    Result<std::unique_ptr<StorageEngine>> engine =
        StorageEngine::Bootstrap(dir, *initial, testing::kStorageAlpha);
    ASSERT_TRUE(engine.ok());
  }
  // Strand files an interrupted checkpoint could leave behind.
  for (const char* name : {"seg-99.prseg", "wal-99.log", "MANIFEST.tmp"}) {
    ASSERT_TRUE(storage::WriteFileDurable(dir, name, "stranded").ok());
  }
  Result<std::unique_ptr<StorageEngine>> engine = StorageEngine::Open(dir);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(storage::PathExists(JoinPath(dir, "seg-99.prseg")));
  EXPECT_FALSE(storage::PathExists(JoinPath(dir, "wal-99.log")));
  EXPECT_FALSE(storage::PathExists(JoinPath(dir, "MANIFEST.tmp")));
  EXPECT_TRUE(storage::PathExists(JoinPath(dir, "seg-0.prseg")));
}

TEST(StorageEngineTest, TornWalTailSurfacesInStats) {
  std::string dir = FreshDir("engine_torn");
  SnapshotPtr initial = testing::MakeTinySnapshot();
  std::string wal_path;
  {
    Result<std::unique_ptr<StorageEngine>> engine =
        StorageEngine::Bootstrap(dir, *initial, testing::kStorageAlpha);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(
        (*engine)->LogAppend(PayloadFor(1, testing::BatchForVersion(1))).ok());
    wal_path = JoinPath(dir, "wal-0.log");
  }
  // A torn second record: header promises more bytes than exist.
  {
    int fd = ::open(wal_path.c_str(), O_WRONLY | O_APPEND);
    ASSERT_GE(fd, 0);
    const char torn[] = "\xff\xff\x00\x00\x01garbage";
    ASSERT_GT(::write(fd, torn, sizeof(torn)), 0);
    ::close(fd);
  }
  Result<std::unique_ptr<StorageEngine>> engine = StorageEngine::Open(dir);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE((*engine)->Stats().wal_tail_dropped);
  EXPECT_EQ((*engine)->recovered().replayed_records, 1u);
  EXPECT_EQ((*engine)->recovered().snapshot->version(), 1u);
}

TEST(StorageEngineTest, VersionGapInWalIsCorruption) {
  std::string dir = FreshDir("engine_gap");
  SnapshotPtr initial = testing::MakeTinySnapshot();
  {
    Result<std::unique_ptr<StorageEngine>> engine =
        StorageEngine::Bootstrap(dir, *initial, testing::kStorageAlpha);
    ASSERT_TRUE(engine.ok());
    // to_version 3 over a version-0 segment: versions 1 and 2 are missing.
    ASSERT_TRUE(
        (*engine)->LogAppend(PayloadFor(3, testing::BatchForVersion(3))).ok());
  }
  Result<std::unique_ptr<StorageEngine>> engine = StorageEngine::Open(dir);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), Status::Code::kCorruption);
}

// ---------------------------------------------------------------------------
// SessionManager integration (log-then-publish)

TEST(DurableSessionManagerTest, AppendsRecoverBitIdentically) {
  std::string dir = FreshDir("manager_durable");
  SnapshotPtr initial = testing::MakeTinySnapshot();
  Result<std::unique_ptr<StorageEngine>> boot =
      StorageEngine::Bootstrap(dir, *initial, testing::kStorageAlpha);
  ASSERT_TRUE(boot.ok());
  std::shared_ptr<StorageEngine> engine = std::move(*boot);

  SessionManager manager(engine->recovered().snapshot);
  manager.AttachStorage(engine);
  SnapshotPtr published;
  for (uint64_t v = 1; v <= 3; ++v) {
    Result<MaintenanceReport> report = manager.Append(
        testing::BatchForVersion(v), testing::StorageMaintenanceOptions());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->to_version, v);
  }
  published = manager.current();
  SessionManagerStats stats = manager.Stats();
  EXPECT_TRUE(stats.durable);
  EXPECT_GT(stats.wal_bytes, 0u);
  EXPECT_EQ(stats.last_checkpoint_version, 0u);

  // Reopen the directory cold: the recovered snapshot must equal the one
  // the manager published, index bit for index bit.
  engine.reset();
  Result<std::unique_ptr<StorageEngine>> reopened = StorageEngine::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovered().replayed_records, 3u);
  testing::ExpectSnapshotsIdentical(*(*reopened)->recovered().snapshot,
                                    *published);
}

TEST(DurableSessionManagerTest, CheckpointMakesRestartReplayFree) {
  std::string dir = FreshDir("manager_checkpoint");
  SnapshotPtr initial = testing::MakeTinySnapshot();
  Result<std::unique_ptr<StorageEngine>> boot =
      StorageEngine::Bootstrap(dir, *initial, testing::kStorageAlpha);
  ASSERT_TRUE(boot.ok());
  std::shared_ptr<StorageEngine> engine = std::move(*boot);
  SessionManager manager(engine->recovered().snapshot);
  manager.AttachStorage(engine);
  ASSERT_TRUE(manager
                  .Append(testing::BatchForVersion(1),
                          testing::StorageMaintenanceOptions())
                  .ok());
  ASSERT_TRUE(manager.Checkpoint().ok());
  EXPECT_EQ(manager.Stats().last_checkpoint_version, 1u);
  EXPECT_EQ(manager.Stats().wal_bytes, 0u);
  SnapshotPtr published = manager.current();

  engine.reset();
  Result<std::unique_ptr<StorageEngine>> reopened = StorageEngine::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->recovered().replayed_records, 0u);
  testing::ExpectSnapshotsIdentical(*(*reopened)->recovered().snapshot,
                                    *published);
}

TEST(DurableSessionManagerTest, CheckpointWithoutEngineFails) {
  SessionManager manager(testing::MakeTinySnapshot());
  EXPECT_FALSE(manager.Checkpoint().ok());
  EXPECT_FALSE(manager.Stats().durable);
}

}  // namespace
}  // namespace prague
