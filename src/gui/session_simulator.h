// GUI session simulator.
//
// The paper's engine never sees pixels — only the visual actions New /
// Modify / SimQuery / Run and the latency between them (a participant
// takes ≥ 2 s to draw an edge; average query formulation time ≈ 30 s).
// This module replays a VisualQuerySpec as such an action stream against a
// PragueSession or GBlenderSession, measures the real engine time spent
// inside each step, and accounts SRT the way the paper does:
//
//   SRT = time inside Run()  +  Σ max(0, step_time − GUI latency)
//
// i.e. per-step work hidden under the latency budget is free; overflow is
// charged to the response time the user eventually feels.

#ifndef PRAGUE_GUI_SESSION_SIMULATOR_H_
#define PRAGUE_GUI_SESSION_SIMULATOR_H_

#include <optional>
#include <string>
#include <vector>

#include "core/gblender.h"
#include "core/prague_session.h"
#include "datasets/query_workload.h"
#include "graph/graph_database.h"
#include "index/action_aware_index.h"
#include "index/database_snapshot.h"
#include "util/result.h"

namespace prague {

/// \brief Latency the GUI affords the engine, per user action.
struct LatencyModel {
  /// Seconds a user needs to draw one edge (paper: "at least 2 seconds",
  /// ignoring think time).
  double edge_seconds = 2.0;
  /// Seconds a user needs to perform an edge deletion.
  double modify_seconds = 2.0;
  /// Human variability: each step's latency is scaled by a uniform factor
  /// in [1−jitter, 1+jitter] (0 = deterministic). Models the differing
  /// drawing speeds of the paper's participants.
  double jitter = 0.0;
  /// Seed for the jitter draw (deterministic per run).
  uint64_t jitter_seed = 1;
};

/// \brief Simulator parameters.
struct SimulationConfig {
  LatencyModel latency;
  PragueConfig prague;
};

/// \brief One step of a simulated session.
struct StepTrace {
  FormulationId edge = 0;
  bool deletion = false;
  FragmentStatus status = FragmentStatus::kFrequent;
  double engine_seconds = 0;    ///< real engine time inside this step
  double overflow_seconds = 0;  ///< engine time exceeding the GUI latency
  double spig_seconds = 0;      ///< SPIG build/update share
  size_t exact_candidates = 0;
  size_t free_candidates = 0;
  size_t ver_candidates = 0;
};

/// \brief A scripted deviation from plain formulation: after the edge at
/// sequence position `after_step` (1-based) is drawn, delete edge eℓ.
struct ScriptedModification {
  size_t after_step = 0;
  FormulationId delete_edge = 0;
};

/// \brief Outcome of one simulated session.
struct SimulationResult {
  std::string query_name;
  std::vector<StepTrace> steps;
  QueryResults results;
  RunStats run_stats;
  /// SRT per the accounting above.
  double srt_seconds = 0;
  /// Engine time summed over all steps (excluding Run).
  double formulation_engine_seconds = 0;
  /// |Rq| or |Rfree ∪ Rver| at Run time.
  size_t final_candidates = 0;
  size_t final_free = 0;
  size_t final_ver = 0;
  bool similarity = false;
  /// True when the Run() budget (SimulationConfig::prague.run_deadline_ms)
  /// cut result generation short; `results` is then a prefix-consistent
  /// subset and `run_stats` records where the cut landed.
  bool truncated = false;
};

/// \brief Drives engines through scripted visual sessions.
class SessionSimulator {
 public:
  /// \brief Simulates sessions pinned to \p snapshot; every simulated
  /// session sees exactly that version.
  explicit SessionSimulator(SnapshotPtr snapshot,
                            const SimulationConfig& config =
                                SimulationConfig());

  /// \brief Formulate the whole query, then Run — PRAGUE engine.
  /// Optional scripted modifications fire after their step.
  Result<SimulationResult> RunPrague(
      const VisualQuerySpec& spec,
      const std::vector<ScriptedModification>& mods = {}) const;

  /// \brief Same protocol against the GBLENDER baseline.
  Result<SimulationResult> RunGBlender(
      const VisualQuerySpec& spec,
      const std::vector<ScriptedModification>& mods = {}) const;

 private:
  SnapshotPtr snap_;
  SimulationConfig config_;
};

}  // namespace prague

#endif  // PRAGUE_GUI_SESSION_SIMULATOR_H_
