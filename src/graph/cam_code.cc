#include "graph/cam_code.h"

#include <algorithm>
#include <vector>

namespace prague {

namespace {

// Entry codes: diagonal stores node label + 1, off-diagonal stores
// edge label + 1 when present, 0 when absent. Stored as uint32 to avoid
// label overflow into char.
using Row = std::vector<uint32_t>;

// Builds the lower-triangular row for placing `node` at position `pos`
// under the partial ordering `perm[0..pos-1]`.
Row BuildRow(const Graph& g, const std::vector<NodeId>& perm, size_t pos,
             NodeId node) {
  Row row(pos + 1, 0);
  for (size_t j = 0; j < pos; ++j) {
    EdgeId e = g.FindEdge(node, perm[j]);
    row[j] = e == kInvalidEdge ? 0 : g.GetEdge(e).label + 1;
  }
  row[pos] = g.NodeLabel(node) + 1;
  return row;
}

// Depth-first search over vertex orderings, keeping only orderings whose
// row prefix is maximal so far. `best` accumulates rows of the best
// complete ordering.
void Search(const Graph& g, std::vector<NodeId>* perm,
            std::vector<bool>* used, std::vector<Row>* current,
            std::vector<Row>* best, bool* have_best) {
  size_t pos = perm->size();
  if (pos == g.NodeCount()) {
    if (!*have_best || *current > *best) {
      *best = *current;
      *have_best = true;
    }
    return;
  }
  // Compare against best prefix: if current prefix is already worse,
  // prune; if strictly better, continue (we overwrite at the leaf).
  if (*have_best && pos > 0) {
    for (size_t i = 0; i < pos; ++i) {
      if ((*current)[i] < (*best)[i]) return;  // worse prefix
      if ((*current)[i] > (*best)[i]) break;   // strictly better; no prune
    }
  }
  for (NodeId n = 0; n < g.NodeCount(); ++n) {
    if ((*used)[n]) continue;
    perm->push_back(n);
    (*used)[n] = true;
    current->push_back(BuildRow(g, *perm, pos, n));
    Search(g, perm, used, current, best, have_best);
    current->pop_back();
    (*used)[n] = false;
    perm->pop_back();
  }
}

}  // namespace

std::string CamCode(const Graph& g) {
  std::vector<NodeId> perm;
  std::vector<bool> used(g.NodeCount(), false);
  std::vector<Row> current, best;
  bool have_best = false;
  Search(g, &perm, &used, &current, &best, &have_best);
  std::string out;
  for (const Row& row : best) {
    for (uint32_t v : row) {
      out += std::to_string(v);
      out += ',';
    }
    out += ';';
  }
  return out;
}

}  // namespace prague
