// MCCS / subgraph distance (Definitions 1-3), including the paper's
// Figure 1 worked example.

#include <gtest/gtest.h>

#include "graph/mccs.h"
#include "test_fixtures.h"
#include "util/rng.h"

namespace prague {
namespace {

using testing::MakeGraph;
using testing::kC;
using testing::kN;
using testing::kO;
using testing::kS;

TEST(MccsTest, ExactMatchHasDistanceZero) {
  Graph q = MakeGraph({kC, kS}, {{0, 1}});
  Graph g = MakeGraph({kC, kS, kC}, {{0, 1}, {1, 2}});
  MccsResult m = ComputeMccs(q, g);
  EXPECT_EQ(m.mccs_edges, 1u);
  EXPECT_EQ(m.distance, 0);
  EXPECT_DOUBLE_EQ(m.similarity, 1.0);
}

TEST(MccsTest, CompletelyDisjointLabels) {
  Graph q = MakeGraph({kN, kN}, {{0, 1}});
  Graph g = MakeGraph({kC, kS}, {{0, 1}});
  MccsResult m = ComputeMccs(q, g);
  EXPECT_EQ(m.mccs_edges, 0u);
  EXPECT_EQ(m.distance, 1);
  EXPECT_DOUBLE_EQ(m.similarity, 0.0);
}

TEST(MccsTest, OneMissingEdge) {
  // Query: triangle C-C-C. Data: path C-C-C. MCCS = 2 edges, distance 1.
  Graph q = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}, {0, 2}});
  Graph g = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}});
  MccsResult m = ComputeMccs(q, g);
  EXPECT_EQ(m.mccs_edges, 2u);
  EXPECT_EQ(m.distance, 1);
  EXPECT_DOUBLE_EQ(m.similarity, 2.0 / 3.0);
}

TEST(MccsTest, Figure1WorkedExample) {
  // Figure 1(a): 7-edge query — a C5 ring (one edge doubled out to a
  // 6th and 7th C). We reconstruct the spirit: ring of 5 C plus 2 pendant
  // C. Data graph (b) misses one query edge (δ = 6/7), data graph (c)
  // misses two (δ = 5/7).
  Graph q = MakeGraph({kC, kC, kC, kC, kC, kC, kC},
                      {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 5}, {3, 6}});
  // (b): same but ring broken (no 4-0 edge), plus an O decoration.
  Graph b = MakeGraph({kC, kC, kC, kC, kC, kC, kC, kO},
                      {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {1, 5}, {3, 6}, {4, 7}});
  MccsResult mb = ComputeMccs(q, b);
  EXPECT_EQ(mb.distance, 1);
  EXPECT_DOUBLE_EQ(mb.similarity, 6.0 / 7.0);
  // (c): ring broken and one pendant gone.
  Graph c = MakeGraph({kC, kC, kC, kC, kC, kC},
                      {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {1, 5}});
  MccsResult mc = ComputeMccs(q, c);
  EXPECT_EQ(mc.distance, 2);
  EXPECT_DOUBLE_EQ(mc.similarity, 5.0 / 7.0);
}

TEST(MccsTest, WitnessIsActuallyContained) {
  Graph q = MakeGraph({kC, kC, kC, kS}, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  Graph g = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}});
  MccsResult m = ComputeMccs(q, g);
  ASSERT_GT(m.mccs_edges, 0u);
  Graph witness = ExtractEdgeSubgraph(q, m.witness).graph;
  EXPECT_EQ(witness.EdgeCount(), m.mccs_edges);
  EXPECT_TRUE(IsEdgeSubsetConnected(q, m.witness));
}

TEST(MccsTest, WithinDistanceMatchesFullComputation) {
  Graph q = MakeGraph({kC, kC, kC, kS}, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const GraphDatabase db = testing::TinyDatabase();
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    MccsResult m = ComputeMccs(q, db.graph(gid));
    for (int sigma = 0; sigma <= 4; ++sigma) {
      EXPECT_EQ(WithinSubgraphDistance(q, db.graph(gid), sigma),
                m.distance <= sigma)
          << "g" << gid << " sigma=" << sigma;
    }
  }
}

TEST(MccsTest, ContainsLevelSubgraphMonotone) {
  Graph q = MakeGraph({kC, kC, kC, kS}, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  Graph g = testing::TinyDatabase().graph(0);
  bool prev = true;
  for (size_t level = 1; level <= q.EdgeCount(); ++level) {
    bool now = ContainsLevelSubgraph(q, g, level);
    // If a level-k subgraph is contained, some (k-1) one is too.
    if (now) EXPECT_TRUE(prev);
    prev = now;
  }
}

TEST(MccsTest, SigmaAtLeastQuerySizeAlwaysWithin) {
  Graph q = MakeGraph({kN, kN}, {{0, 1}});
  Graph g = MakeGraph({kC, kC}, {{0, 1}});
  EXPECT_TRUE(WithinSubgraphDistance(q, g, 1));
  EXPECT_TRUE(WithinSubgraphDistance(q, g, 5));
}

}  // namespace
}  // namespace prague
