// Traditional-paradigm substructure-similarity engines.
//
// These comparators follow the classic filter-then-verify flow where *all*
// work happens after the user presses Run — their SRT is the whole query
// evaluation (filter + verification), exactly how Section VIII times GR,
// SG, and DVP. Verification is shared: candidates are ranked by the
// highest query level they contain, using the same MCCS machinery PRAGUE
// uses, so measured differences come from candidate quality, not from
// verifier asymmetry.

#ifndef PRAGUE_BASELINES_TRADITIONAL_H_
#define PRAGUE_BASELINES_TRADITIONAL_H_

#include <string>
#include <vector>

#include "core/results.h"
#include "graph/graph.h"
#include "graph/graph_database.h"
#include "util/deadline.h"
#include "util/id_set.h"

namespace prague {

/// \brief Outcome of one traditional similarity evaluation.
struct SimilaritySearchOutcome {
  IdSet candidates;
  std::vector<SimilarMatch> results;  ///< ordered by distance
  double filter_seconds = 0;
  double verify_seconds = 0;
  /// Traditional SRT = filter + verify (nothing is hidden under latency).
  double srt_seconds = 0;
  /// True when a deadline cut the evaluation short. `results` is then the
  /// prefix of candidates decided before the cut; `candidates` may be the
  /// unfiltered database if the cut landed inside the filter itself.
  bool truncated = false;
};

/// \brief Base class for the traditional engines.
class TraditionalSimilarityEngine {
 public:
  virtual ~TraditionalSimilarityEngine() = default;

  /// \brief Short display name ("GR", "SG", "DVP").
  virtual std::string name() const = 0;
  /// \brief Index footprint in bytes (Table II).
  virtual size_t IndexBytes() const = 0;
  /// \brief Filtering step: the candidate ids for (q, σ). If \p deadline
  /// expires mid-filter the engine abandons pruning and returns the
  /// trivially sound superset (all database ids) with \p truncated set —
  /// never a partial candidate set, which could silently drop answers.
  virtual IdSet Filter(const Graph& q, int sigma,
                       const Deadline& deadline = Deadline(),
                       bool* truncated = nullptr) const = 0;

  /// \brief Filter + MCCS verification + ranking, timed. A bounded
  /// \p deadline truncates verification at the first undecided candidate
  /// (prefix-consistent) and sets SimilaritySearchOutcome::truncated.
  SimilaritySearchOutcome Evaluate(const Graph& q, int sigma,
                                   const GraphDatabase& db,
                                   const Deadline& deadline = Deadline())
      const;
};

}  // namespace prague

#endif  // PRAGUE_BASELINES_TRADITIONAL_H_
