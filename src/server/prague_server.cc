#include "server/prague_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "query/pattern_parser.h"
#include "server/wire.h"
#include "util/bytes.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace prague {

namespace {

// Edge identity on the wire is the unordered pair of node handles.
std::pair<uint32_t, uint32_t> EdgeKey(uint32_t u, uint32_t v) {
  return {std::min(u, v), std::max(u, v)};
}

// Per-command frame counter (obs/metrics.h).
obs::Counter* CommandCounter(CommandKind kind) {
  obs::ServerMetrics& sm = obs::ServerMetrics::Get();
  switch (kind) {
    case CommandKind::kOpen:
      return sm.cmd_open_total;
    case CommandKind::kAddEdge:
      return sm.cmd_add_edge_total;
    case CommandKind::kDeleteEdge:
      return sm.cmd_delete_edge_total;
    case CommandKind::kRun:
      return sm.cmd_run_total;
    case CommandKind::kBatchRun:
      return sm.cmd_batch_run_total;
    case CommandKind::kAppend:
      return sm.cmd_append_total;
    case CommandKind::kCancel:
      return sm.cmd_cancel_total;
    case CommandKind::kStats:
      return sm.cmd_stats_total;
    case CommandKind::kMetrics:
      return sm.cmd_metrics_total;
    case CommandKind::kClose:
      return sm.cmd_close_total;
  }
  return sm.cmd_close_total;
}

// Scheduler key for a run admitted now under a session budget of
// `budget_ms` (<= 0 = unbounded). Saturates instead of overflowing so a
// huge budget sorts as unbounded rather than wrapping into the past.
std::chrono::steady_clock::time_point RunDeadlineKey(int64_t budget_ms) {
  using Clock = std::chrono::steady_clock;
  if (budget_ms <= 0) return Clock::time_point::max();
  const auto now = Clock::now();
  const auto headroom = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::time_point::max() - now);
  if (budget_ms >= headroom.count()) return Clock::time_point::max();
  return now + std::chrono::milliseconds(budget_ms);
}

// Admission cost of a run body: the bytes the server must hold while the
// run is queued or executing. Patterns dominate; the constant covers the
// ticket bookkeeping itself.
size_t RunCostBytes(const WireCommand& cmd) {
  size_t cost = 64;
  for (const std::string& pattern : cmd.batch_patterns) {
    cost += pattern.size();
  }
  return cost;
}

}  // namespace

// Per-connection state, shared between the owning event loop (read/session
// state) and executor-pool tasks (run tickets, reply writes). Lifetime is
// by shared_ptr: the loop's registry and any in-flight pool task each hold
// one, so the struct outlives the socket.
struct PragueServer::Connection
    : public std::enable_shared_from_this<PragueServer::Connection> {
  PragueServer* server = nullptr;
  EventLoop* loop = nullptr;

  // ---- write side; write_mu guards everything in this block, including
  // fd teardown, so a pool thread mid-send can never race a close().
  std::mutex write_mu;
  int fd = -1;
  bool closed = false;            // fd is gone; drop further replies
  bool want_write = false;        // EPOLLOUT armed (or arm requested)
  bool close_after_flush = false; // CLOSE acked; close once outq drains
  std::deque<std::string> outq;   // encoded frames; front may be partial
  size_t outq_bytes = 0;          // sum of outq frame bytes (cap enforcement)
  bool overflowed = false;        // outq cap tripped; connection is doomed

  // ---- read + session state: owning loop thread only.
  std::string inbuf;
  bool draining = false;  // CLOSE seen; ignore any further inbound frames
  std::shared_ptr<ManagedSession> session;
  // Admission group this connection's OPEN joined ("conn-<n>" when the
  // client named none) and whether AdmitSession succeeded (so the slot is
  // released exactly once at close).
  std::string tenant;
  bool session_admitted = false;
  // Per-tenant series, interned once at OPEN (bounded cardinality: past
  // the family cap every tenant shares the "other" series).
  obs::Histogram* tenant_run_latency = nullptr;
  obs::Counter* tenant_runs_truncated = nullptr;
  // Effective Run() budget of the session (ms; <= 0 = unbounded), kept
  // here so the scheduler can derive each run's deadline key.
  int64_t run_budget_ms = 0;
  // Client node handle -> session node, plus the label each handle was
  // created with (a handle cannot be silently relabeled).
  std::unordered_map<uint32_t, NodeId> nodes;
  std::unordered_map<uint32_t, std::string> node_labels;
  // Unordered handle pair -> formulation id of the edge between them.
  std::map<std::pair<uint32_t, uint32_t>, FormulationId> edges;

  // ---- run pipeline; run_mu guards the ticket structures and serializes
  // cancellation against ticket claim, which is what makes CANCEL-by-id
  // race-free: a ticket is marked cancelled and, iff it is the active one,
  // the session token is tripped — both under the same lock the worker
  // holds while it resets the token and claims the next ticket.
  struct RunTicket {
    explicit RunTicket(WireCommand c) : cmd(std::move(c)) {}
    WireCommand cmd;
    bool cancelled = false;
    // Deadline key (admission time + session budget; max() = unbounded)
    // and the admission reservation to release in OnRunFinished.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    size_t cost_bytes = 0;
    std::string tenant;
  };
  std::mutex run_mu;
  std::deque<std::shared_ptr<RunTicket>> run_queue;
  std::unordered_map<uint64_t, std::shared_ptr<RunTicket>> inflight;
  std::shared_ptr<RunTicket> active_run;
  bool run_task_active = false;  // a scheduler worker is executing this conn
  bool sched_queued = false;     // conn is sitting in the server's ready_

  // The earliest deadline among queued tickets (call under run_mu with a
  // non-empty queue) — the key this connection competes with in the
  // scheduler's ready queue.
  std::chrono::steady_clock::time_point EarliestQueuedDeadline() const {
    auto key = std::chrono::steady_clock::time_point::max();
    for (const auto& ticket : run_queue) key = std::min(key, ticket->deadline);
    return key;
  }

  // Sends one response frame from any thread. Fast path: when the queue
  // is empty the frame is written straight to the (non-blocking) socket;
  // whatever does not fit is queued and the owning loop is asked to arm
  // EPOLLOUT. Per-connection frame order is preserved either way.
  void SendReply(std::string payload);
};


// One reactor thread: an epoll instance multiplexing its share of the
// connections, plus an eventfd other threads use to hand it work (new
// connections from the acceptor, EPOLLOUT arm requests from pool threads).
// Loop 0 additionally owns the listening socket.
class PragueServer::EventLoop {
 public:
  EventLoop(PragueServer* server, size_t index)
      : server_(server), index_(index) {}

  ~EventLoop() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
  }

  Status Init() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return Status::IOError(std::string("epoll_create1: ") +
                             std::strerror(errno));
    }
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      return Status::IOError(std::string("eventfd: ") + std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
      return Status::IOError(std::string("epoll_ctl(wake): ") +
                             std::strerror(errno));
    }
    if (index_ == 0) {
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.fd = server_->listen_fd_;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, server_->listen_fd_, &lev) <
          0) {
        return Status::IOError(std::string("epoll_ctl(listen): ") +
                               std::strerror(errno));
      }
    }
    return Status::OK();
  }

  void StartThread() {
    thread_ = std::thread([this] { Loop(); });
  }

  // Registers this loop with the watchdog. The wake pings our eventfd so
  // a loop parked in epoll_wait (infinite timeout) still beats every tick.
  void AttachWatchdog(obs::Watchdog* watchdog) {
    watchdog_ = watchdog;
    heartbeat_ = watchdog->RegisterHeartbeat(
        "loop-" + std::to_string(index_), [this] { Wake(); });
  }

  // Must run after Join(): once unregistered the wake lambda (which
  // captures `this`) is never invoked again, making ~EventLoop safe.
  void DetachWatchdog() {
    if (watchdog_ != nullptr && heartbeat_ != nullptr) {
      watchdog_->UnregisterHeartbeat(heartbeat_);
    }
    watchdog_ = nullptr;
    heartbeat_ = nullptr;
  }

  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    Wake();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  // Hands a freshly accepted connection to this loop (any thread).
  void Adopt(std::shared_ptr<Connection> conn) {
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_adopt_.push_back(std::move(conn));
    }
    Wake();
  }

  // Asks this loop to arm EPOLLOUT for a connection whose reply did not
  // fit in the socket buffer (any thread).
  void RequestWriteArm(std::shared_ptr<Connection> conn) {
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_write_.push_back(std::move(conn));
    }
    Wake();
  }

  // Tears a connection down: closes the socket (under write_mu, so no
  // pool thread can be mid-send), unregisters it, and cancels its run
  // pipeline so in-flight pool work drains promptly. Loop thread only.
  void CloseConnection(const std::shared_ptr<Connection>& conn) {
    int fd;
    {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      if (conn->closed) return;
      conn->closed = true;
      fd = conn->fd;
      conn->fd = -1;
      conn->outq.clear();
      conn->outq_bytes = 0;
    }
    conn->draining = true;
    if (fd >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      conns_.erase(fd);
      ::close(fd);
    }
    obs::ServerMetrics::Get().connections_open->Add(-1);
    {
      std::lock_guard<std::mutex> lock(conn->run_mu);
      for (auto& ticket : conn->run_queue) ticket->cancelled = true;
      if (conn->active_run != nullptr) conn->active_run->cancelled = true;
      if (conn->session != nullptr && conn->run_task_active) {
        conn->session->Cancel();
      }
    }
    // Release the tenant's session slot exactly once (guarded by the
    // closed flag flip above — CloseConnection is loop-thread-only).
    if (conn->session_admitted) {
      conn->session_admitted = false;
      server_->manager_->admission().OnSessionClosed(conn->tenant);
    }
  }

 private:
  void Wake() {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }

  void Loop() {
    constexpr int kMaxEvents = 128;
    epoll_event events[kMaxEvents];
    while (!stop_.load(std::memory_order_acquire)) {
      if (heartbeat_ != nullptr) heartbeat_->Beat();
      int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        PRAGUE_SLOG_EVERY(Warning, 2.0, 8)
                .Field("loop", static_cast<uint64_t>(index_))
                .Field("errno", std::strerror(errno))
            << "epoll_wait failed; stopping event loop";
        break;
      }
      for (int i = 0; i < n && !stop_.load(std::memory_order_acquire); ++i) {
        int fd = events[i].data.fd;
        uint32_t mask = events[i].events;
        if (fd == wake_fd_) {
          DrainWake();
          ProcessPending();
          continue;
        }
        if (index_ == 0 && fd == server_->listen_fd_) {
          HandleAccept();
          continue;
        }
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // closed earlier in this batch
        std::shared_ptr<Connection> conn = it->second;
        if (mask & (EPOLLHUP | EPOLLERR)) {
          CloseConnection(conn);
          continue;
        }
        if (mask & EPOLLOUT) HandleWritable(conn);
        if (mask & EPOLLIN) HandleReadable(conn);
      }
    }
    // Teardown: every connection this loop owns (or was about to own)
    // goes down, cancelling in-flight runs as it does.
    std::vector<std::shared_ptr<Connection>> pending;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending.swap(pending_adopt_);
      pending_write_.clear();
    }
    for (const auto& conn : pending) CloseConnection(conn);
    std::vector<std::shared_ptr<Connection>> live;
    live.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) live.push_back(conn);
    for (const auto& conn : live) CloseConnection(conn);
    conns_.clear();
  }

  void DrainWake() {
    uint64_t buf;
    while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
    }
    obs::ServerMetrics::Get().event_loop_wakeups_total->Increment();
  }

  void ProcessPending() {
    std::vector<std::shared_ptr<Connection>> adopt, arm;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      adopt.swap(pending_adopt_);
      arm.swap(pending_write_);
    }
    for (auto& conn : adopt) Register(std::move(conn));
    for (const auto& conn : arm) ArmWrite(conn);
  }

  void Register(std::shared_ptr<Connection> conn) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &ev) < 0) {
      PRAGUE_SLOG_EVERY(Warning, 2.0, 8)
              .Field("errno", std::strerror(errno))
          << "epoll_ctl(add conn) failed; dropping connection";
      CloseConnection(conn);
      return;
    }
    int fd = conn->fd;
    conns_[fd] = std::move(conn);
  }

  void ArmWrite(const std::shared_ptr<Connection>& conn) {
    int fd;
    {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      if (conn->closed || !conn->want_write) return;
      fd = conn->fd;
    }
    if (conns_.find(fd) == conns_.end()) return;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }

  // accept(2) hit EMFILE/ENFILE. Simply returning would busy-spin: the
  // listen fd is level-triggered, so the still-pending connection re-fires
  // epoll_wait immediately, forever, pinning a core and flooding the log.
  // Instead, briefly close the spare descriptor the server holds for
  // exactly this moment, use the freed slot to accept-and-close one
  // pending connection (the peer sees a clean EOF, not a hang), and
  // re-arm the spare. Returns true when one connection was drained and
  // the backlog may hold more.
  bool ShedAccept() {
    if (server_->spare_fd_ < 0) return false;
    ::close(server_->spare_fd_);
    server_->spare_fd_ = -1;
    int victim = ::accept4(server_->listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    bool drained = victim >= 0;
    if (drained) ::close(victim);
    server_->spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    if (drained) {
      obs::ServerMetrics::Get().accepts_shed_total->Increment();
      // Bounded logging: power-of-two sheds only, so a connect storm
      // cannot turn into a log storm.
      uint64_t n = ++sheds_;
      if ((n & (n - 1)) == 0) {
        PRAGUE_SLOG(Warning).Field("total_shed", n)
            << "out of file descriptors; shed pending connection";
      }
    }
    return drained;
  }

  void HandleAccept() {
    for (;;) {
      int fd = ::accept4(server_->listen_fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EMFILE || errno == ENFILE) {
          if (ShedAccept()) continue;  // keep draining the backlog
          return;
        }
        if (server_->running_.load()) {
          PRAGUE_SLOG_EVERY(Warning, 2.0, 8)
                  .Field("errno", std::strerror(errno))
              << "accept failed";
        }
        return;
      }
      if (!server_->running_.load()) {
        ::close(fd);
        return;
      }
      server_->connections_accepted_.fetch_add(1);
      obs::ServerMetrics& sm = obs::ServerMetrics::Get();
      sm.connections_total->Increment();
      sm.connections_open->Add(1);
      // Frames are tiny and latency-bound; Nagle + delayed ACK would park
      // back-to-back commands (e.g. RUN then CANCEL) in the peer's kernel
      // buffer for tens of milliseconds.
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_shared<Connection>();
      conn->server = server_;
      conn->fd = fd;
      size_t target_index = server_->next_loop_.fetch_add(1) %
                            server_->loops_.size();
      EventLoop* target = server_->loops_[target_index].get();
      conn->loop = target;
      if (target == this) {
        Register(std::move(conn));
      } else {
        target->Adopt(std::move(conn));
      }
    }
  }

  void HandleReadable(const std::shared_ptr<Connection>& conn) {
    obs::ServerMetrics& sm = obs::ServerMetrics::Get();
    bool eof = false;
    char buf[16384];
    for (;;) {
      ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->inbuf.append(buf, static_cast<size_t>(n));
        if (static_cast<size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      PRAGUE_SLOG_EVERY(Warning, 2.0, 8)
              .Field("errno", std::strerror(errno))
          << "connection dropped: recv failed";
      CloseConnection(conn);
      return;
    }
    size_t pos = 0;
    while (!conn->draining && conn->fd >= 0) {
      size_t avail = conn->inbuf.size() - pos;
      if (avail < kFrameHeaderBytes) break;
      Result<FrameHeader> header = DecodeFrameHeader(
          reinterpret_cast<const uint8_t*>(conn->inbuf.data()) + pos, avail);
      if (!header.ok()) {
        sm.protocol_errors_total->Increment();
        conn->SendReply(EncodeErrorReply(header.status()));
        CloseConnection(conn);
        return;
      }
      if (avail < kFrameHeaderBytes + header->payload_length) break;
      sm.frames_total->Increment();
      if (header->type != static_cast<uint8_t>(FrameType::kRequest)) {
        sm.protocol_errors_total->Increment();
        Status st =
            header->type == static_cast<uint8_t>(FrameType::kResponse)
                ? Status::Corruption("expected a request frame")
                : Status::Corruption("unknown frame type byte " +
                                     std::to_string(header->type));
        conn->SendReply(EncodeErrorReply(st));
        CloseConnection(conn);
        return;
      }
      std::string_view payload(conn->inbuf.data() + pos + kFrameHeaderBytes,
                               header->payload_length);
      pos += kFrameHeaderBytes + header->payload_length;
      server_->DispatchFrame(conn, payload);
    }
    if (conn->fd >= 0 && pos > 0) conn->inbuf.erase(0, pos);
    if (eof && conn->fd >= 0) {
      if (!conn->inbuf.empty() && !conn->draining) {
        sm.protocol_errors_total->Increment();
        PRAGUE_SLOG_EVERY(Warning, 2.0, 8)
                .Field("buffered_bytes",
                       static_cast<uint64_t>(conn->inbuf.size()))
            << "connection dropped: closed mid frame";
      }
      CloseConnection(conn);
    }
  }

  void HandleWritable(const std::shared_ptr<Connection>& conn) {
    bool fatal = false, disarm = false, close_now = false;
    int fd = -1;
    {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      if (conn->closed) return;
      fd = conn->fd;
      bool blocked = false;
      while (!conn->outq.empty() && !fatal && !blocked) {
        std::string& frame = conn->outq.front();
        size_t off = 0;
        while (off < frame.size()) {
          ssize_t n = ::send(fd, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
          if (n >= 0) {
            off += static_cast<size_t>(n);
            continue;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            blocked = true;
            break;
          }
          fatal = true;
          break;
        }
        if (off == frame.size()) {
          conn->outq_bytes -= frame.size();
          conn->outq.pop_front();
        } else if (off > 0) {
          conn->outq_bytes -= off;
          frame.erase(0, off);
        }
      }
      if (!fatal && conn->outq.empty()) {
        conn->want_write = false;
        disarm = true;
        close_now = conn->close_after_flush;
      }
    }
    if (fatal) {
      CloseConnection(conn);
      return;
    }
    if (close_now) {
      CloseConnection(conn);
      return;
    }
    if (disarm) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
    }
  }

  PragueServer* server_;
  size_t index_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  obs::Watchdog* watchdog_ = nullptr;
  obs::WatchdogHeartbeat* heartbeat_ = nullptr;
  std::mutex pending_mu_;
  std::vector<std::shared_ptr<Connection>> pending_adopt_;
  std::vector<std::shared_ptr<Connection>> pending_write_;
  uint64_t sheds_ = 0;  // accept sheds on this loop (loop 0 only; logging)
  // fd -> connection; loop thread only.
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
};

void PragueServer::Connection::SendReply(std::string payload) {
  if (payload.size() > kMaxFramePayload) {
    PRAGUE_LOG(Debug) << "dropping oversized reply (" << payload.size()
                      << " bytes)";
    return;
  }
  FrameHeader header;
  header.payload_length = static_cast<uint32_t>(payload.size());
  header.type = static_cast<uint8_t>(FrameType::kResponse);
  std::string frame(kFrameHeaderBytes, '\0');
  EncodeFrameHeader(header, reinterpret_cast<uint8_t*>(frame.data()));
  frame += payload;
  bool arm = false;
  {
    std::lock_guard<std::mutex> lock(write_mu);
    if (closed || overflowed) return;
    if (outq.empty() && !want_write) {
      size_t off = 0;
      while (off < frame.size()) {
        ssize_t n = ::send(fd, frame.data() + off, frame.size() - off,
                           MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n >= 0) {
          off += static_cast<size_t>(n);
          continue;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        // The client is gone; the loop will notice on its next poll.
        PRAGUE_LOG(Debug) << "dropping reply: send: " << std::strerror(errno);
        return;
      }
      if (off < frame.size()) {
        frame.erase(0, off);
        outq_bytes += frame.size();
        outq.push_back(std::move(frame));
      }
    } else {
      outq_bytes += frame.size();
      outq.push_back(std::move(frame));
    }
    obs::ServerMetrics::Get().write_queue_depth->Record(outq.size());
    const size_t cap = server->options_.max_outbound_bytes;
    if (cap > 0 && outq_bytes > cap) {
      // A reader this slow is never catching up: unbounded queueing here
      // is how a STATS/METRICS-spamming client that never reads would run
      // the server out of memory. Keep the (possibly partially written)
      // front frame for stream integrity, drop the rest, append one typed
      // error so the peer learns why, and close once it flushes.
      overflowed = true;
      size_t dropped = outq.size() > 1 ? outq.size() - 1 : 0;
      while (outq.size() > 1) {
        outq_bytes -= outq.back().size();
        outq.pop_back();
      }
      Status reason = Status::FailedPrecondition(
          "outbound queue exceeded " + std::to_string(cap) +
          " bytes (slow reader); closing");
      std::string err_payload = EncodeErrorReply(reason);
      FrameHeader err_header;
      err_header.payload_length = static_cast<uint32_t>(err_payload.size());
      err_header.type = static_cast<uint8_t>(FrameType::kResponse);
      std::string err_frame(kFrameHeaderBytes, '\0');
      EncodeFrameHeader(err_header,
                        reinterpret_cast<uint8_t*>(err_frame.data()));
      err_frame += err_payload;
      outq_bytes += err_frame.size();
      outq.push_back(std::move(err_frame));
      close_after_flush = true;
      obs::ServerMetrics::Get().write_queue_drops_total->Increment();
      PRAGUE_SLOG_EVERY(Warning, 2.0, 8)
              .Field("dropped_replies", static_cast<uint64_t>(dropped))
              .Field("cap_bytes", static_cast<uint64_t>(cap))
          << "dropping slow reader over the outbound cap";
    }
    if (!outq.empty() && !want_write) {
      want_write = true;
      arm = true;
    }
  }
  if (arm) loop->RequestWriteArm(shared_from_this());
}

PragueServer::PragueServer(SessionManager* manager,
                           PragueServerOptions options)
    : manager_(manager), options_(options) {}

PragueServer::~PragueServer() { Stop(); }

Status PragueServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("server already running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IOError("bind to port " +
                                std::to_string(options_.port) + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status st = Status::IOError(std::string("getsockname: ") +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, options_.backlog) < 0) {
    Status st = Status::IOError(std::string("listen: ") +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  size_t workers = options_.worker_threads != 0 ? options_.worker_threads
                                                : std::max<size_t>(2, hw);
  size_t nloops = options_.event_loop_threads != 0
                      ? options_.event_loop_threads
                      : std::clamp<size_t>(hw / 4, 1, 4);
  loops_.clear();
  for (size_t i = 0; i < nloops; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(this, i));
  }
  for (auto& loop : loops_) {
    if (Status st = loop->Init(); !st.ok()) {
      loops_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return st;
    }
  }
  pool_ = std::make_unique<ThreadPool>(workers);
  sched_worker_limit_ = workers;
  // The reserve descriptor HandleAccept releases to drain-and-close
  // pending connections under EMFILE. Failure to open it is survivable
  // (shedding just degrades to the old busy loop), so it is not fatal.
  spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  AdmissionOptions admission;
  admission.tenant_rate = options_.tenant_rate;
  admission.max_concurrent_runs = options_.max_runs_per_conn;
  admission.max_queued_bytes = options_.max_queued_bytes;
  admission.max_sessions = options_.max_sessions_per_tenant;
  manager_->ConfigureAdmission(admission);
  connections_accepted_.store(0);
  next_loop_.store(0);
  running_.store(true);
  for (auto& loop : loops_) {
    if (options_.watchdog != nullptr) {
      loop->AttachWatchdog(options_.watchdog);
    }
    loop->StartThread();
  }
  PRAGUE_LOG(Info) << "serving on port " << port_ << " with " << nloops
                   << " event loop(s) and " << workers << " query workers";
  return Status::OK();
}

void PragueServer::Stop() {
  if (!running_.exchange(false)) return;
  for (auto& loop : loops_) loop->RequestStop();
  // Each loop closes its connections on the way out, cancelling in-flight
  // runs, so the pool drains promptly.
  for (auto& loop : loops_) loop->Join();
  // After Join the loops no longer beat; unregister before destroying them
  // so a concurrent watchdog tick cannot ping a dead loop's eventfd.
  for (auto& loop : loops_) loop->DetachWatchdog();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (pool_ != nullptr) {
    pool_->Wait();
    pool_.reset();
  }
  loops_.clear();
  if (spare_fd_ >= 0) {
    ::close(spare_fd_);
    spare_fd_ = -1;
  }
  PRAGUE_LOG(Info) << "server on port " << port_ << " stopped";
}

void PragueServer::DispatchFrame(const std::shared_ptr<Connection>& conn,
                                 std::string_view payload) {
  obs::ServerMetrics& sm = obs::ServerMetrics::Get();
  Result<std::pair<uint64_t, std::string_view>> split = SplitFrameId(payload);
  if (!split.ok()) {
    sm.protocol_errors_total->Increment();
    conn->SendReply(EncodeErrorReply(split.status()));
    return;
  }
  Result<WireCommand> cmd = ParseCommand(payload);
  if (!cmd.ok()) {
    sm.protocol_errors_total->Increment();
    conn->SendReply(PrependFrameId(split->first,
                                   EncodeErrorReply(cmd.status())));
    return;
  }
  CommandCounter(cmd->kind)->Increment();
  HandleCommand(conn, *cmd);
}

void PragueServer::HandleCancel(const std::shared_ptr<Connection>& conn,
                                const WireCommand& cmd) {
  std::lock_guard<std::mutex> lock(conn->run_mu);
  if (conn->session == nullptr) return;
  if (cmd.cancel_id == 0) {
    for (auto& ticket : conn->run_queue) ticket->cancelled = true;
    if (conn->active_run != nullptr) {
      conn->active_run->cancelled = true;
      conn->session->Cancel();
    }
    return;
  }
  auto it = conn->inflight.find(cmd.cancel_id);
  if (it == conn->inflight.end()) return;  // already done — fire and forget
  it->second->cancelled = true;
  if (conn->active_run == it->second) conn->session->Cancel();
}

void PragueServer::HandleCommand(const std::shared_ptr<Connection>& conn,
                                 const WireCommand& cmd) {
  // CANCEL is fire-and-forget and valid mid-RUN — that is its purpose.
  if (cmd.kind == CommandKind::kCancel) {
    HandleCancel(conn, cmd);
    return;
  }
  bool busy;
  {
    std::lock_guard<std::mutex> lock(conn->run_mu);
    busy = conn->run_task_active || !conn->run_queue.empty();
  }
  if (busy) {
    // Pipelining: further id-carrying runs may pile up behind the one in
    // flight; everything else keeps the pre-reactor lock-step contract.
    if ((cmd.kind == CommandKind::kRun ||
         cmd.kind == CommandKind::kBatchRun) &&
        cmd.request_id != 0) {
      EnqueueRun(conn, cmd);
      return;
    }
    conn->SendReply(PrependFrameId(
        cmd.request_id,
        EncodeErrorReply(Status::FailedPrecondition(
            "a RUN is in flight on this connection; only CANCEL and "
            "id-carrying RUN/BATCH_RUN are accepted"))));
    return;
  }

  switch (cmd.kind) {
    case CommandKind::kOpen: {
      if (conn->session != nullptr) {
        conn->SendReply(PrependFrameId(
            cmd.request_id,
            EncodeErrorReply(Status::FailedPrecondition(
                "a session is already open on this connection"))));
        return;
      }
      std::string tenant =
          !cmd.tenant.empty()
              ? cmd.tenant
              : "conn-" + std::to_string(anon_tenants_.fetch_add(1) + 1);
      AdmissionDecision admit = manager_->admission().AdmitSession(tenant);
      if (!admit.admitted) {
        obs::ServerMetrics::Get().admission_shed_total->Increment();
        conn->SendReply(PrependFrameId(
            cmd.request_id, FormatBusyReply(admit.retry_after_ms)));
        return;
      }
      conn->tenant = std::move(tenant);
      conn->session_admitted = true;
      {
        obs::ServerMetrics& smx = obs::ServerMetrics::Get();
        conn->tenant_run_latency =
            smx.tenant_run_latency_us->WithLabel(conn->tenant);
        conn->tenant_runs_truncated =
            smx.tenant_truncated_total->WithLabel(conn->tenant);
      }
      int64_t budget_ms = cmd.timeout_ms >= 0
                              ? cmd.timeout_ms
                              : options_.default_run_deadline_ms;
      conn->session = budget_ms >= 0 ? manager_->OpenWithDeadline(budget_ms)
                                     : manager_->Open();
      // Effective budget for the deadline scheduler: an explicit or
      // server-default budget, else whatever the manager default is
      // (0 = unbounded either way).
      conn->run_budget_ms = budget_ms >= 0
                                ? budget_ms
                                : manager_->DefaultRunDeadlineMillis();
      conn->SendReply(PrependFrameId(
          cmd.request_id,
          FormatOpenReply(conn->session->id(), conn->session->version())));
      return;
    }
    case CommandKind::kAddEdge:
    case CommandKind::kDeleteEdge: {
      if (conn->session == nullptr) {
        conn->SendReply(PrependFrameId(
            cmd.request_id,
            EncodeErrorReply(Status::FailedPrecondition(
                "no session on this connection (send OPEN first)"))));
        return;
      }
      std::string reply;
      if (cmd.kind == CommandKind::kAddEdge) {
        reply = conn->session->With([&](PragueSession& s) -> std::string {
          NodeId endpoints[2];
          const std::pair<uint32_t, const std::string*> wanted[2] = {
              {cmd.u, &cmd.u_label}, {cmd.v, &cmd.v_label}};
          for (int i = 0; i < 2; ++i) {
            auto [handle, label] = wanted[i];
            auto it = conn->nodes.find(handle);
            if (it != conn->nodes.end()) {
              if (conn->node_labels[handle] != *label) {
                return EncodeErrorReply(Status::InvalidArgument(
                    "node handle " + std::to_string(handle) +
                    " already has label '" + conn->node_labels[handle] +
                    "'"));
              }
              endpoints[i] = it->second;
            } else {
              Result<NodeId> added = s.AddNodeByName(*label);
              if (!added.ok()) return EncodeErrorReply(added.status());
              conn->nodes[handle] = *added;
              conn->node_labels[handle] = *label;
              endpoints[i] = *added;
            }
          }
          Result<StepReport> step =
              s.AddEdge(endpoints[0], endpoints[1], cmd.edge_label);
          if (!step.ok()) return EncodeErrorReply(step.status());
          conn->edges[EdgeKey(cmd.u, cmd.v)] = step->edge;
          return FormatStepReply(*step);
        });
      } else {
        auto it = conn->edges.find(EdgeKey(cmd.u, cmd.v));
        if (it == conn->edges.end()) {
          conn->SendReply(PrependFrameId(
              cmd.request_id,
              EncodeErrorReply(Status::NotFound(
                  "no edge between node handles " + std::to_string(cmd.u) +
                  " and " + std::to_string(cmd.v)))));
          return;
        }
        FormulationId ell = it->second;
        reply = conn->session->With([&](PragueSession& s) -> std::string {
          Result<StepReport> step = s.DeleteEdge(ell);
          if (!step.ok()) return EncodeErrorReply(step.status());
          conn->edges.erase(it);
          return FormatStepReply(*step);
        });
      }
      conn->SendReply(PrependFrameId(cmd.request_id, std::move(reply)));
      return;
    }
    case CommandKind::kRun:
    case CommandKind::kBatchRun:
    // APPEND rides the run queue: its body (index maintenance + WAL
    // fsync) must not block the event loop, and queueing it keeps the
    // one-reply-in-flight contract for lock-step clients.
    case CommandKind::kAppend: {
      EnqueueRun(conn, cmd);
      return;
    }
    case CommandKind::kStats: {
      conn->SendReply(PrependFrameId(cmd.request_id,
                                     FormatStatsReply(manager_->Stats())));
      return;
    }
    case CommandKind::kMetrics: {
      // Snapshot + render on the pool, not here: this handler runs on an
      // event-loop thread, and the exposition walks the whole registry
      // under its mutex — milliseconds at high series counts, which would
      // stall framing for every connection this loop owns.
      pool_->Submit([conn, id = cmd.request_id] {
        conn->SendReply(PrependFrameId(
            id, FormatMetricsReply(obs::RenderPrometheusText(
                    obs::MetricsRegistry::Global().Snapshot()))));
      });
      return;
    }
    case CommandKind::kClose: {
      conn->SendReply(PrependFrameId(cmd.request_id, "OK bye"));
      conn->draining = true;
      bool close_now = false;
      {
        std::lock_guard<std::mutex> lock(conn->write_mu);
        if (conn->outq.empty()) {
          close_now = true;
        } else {
          conn->close_after_flush = true;
        }
      }
      if (close_now) conn->loop->CloseConnection(conn);
      return;
    }
    case CommandKind::kCancel:
      return;  // handled above
  }
}

void PragueServer::EnqueueRun(const std::shared_ptr<Connection>& conn,
                              const WireCommand& cmd) {
  if (conn->session == nullptr) {
    conn->SendReply(PrependFrameId(
        cmd.request_id,
        EncodeErrorReply(Status::FailedPrecondition(
            "no session on this connection (send OPEN first)"))));
    return;
  }
  obs::ServerMetrics& sm = obs::ServerMetrics::Get();
  Status reject = Status::OK();
  bool schedule = false;
  std::chrono::steady_clock::time_point key;
  int64_t retry_after_ms = 0;
  {
    std::lock_guard<std::mutex> lock(conn->run_mu);
    if (cmd.request_id != 0 &&
        conn->inflight.find(cmd.request_id) != conn->inflight.end()) {
      reject = Status::ProtocolError(
          "request id " + std::to_string(cmd.request_id) +
          " is already in flight on this connection");
    } else if (cmd.request_id != 0 &&
               conn->inflight.size() >= options_.max_pipelined_runs) {
      reject = Status::FailedPrecondition(
          "pipeline is full (" + std::to_string(options_.max_pipelined_runs) +
          " runs in flight)");
    } else {
      // Admission last, after the free rejections: a duplicate id or a
      // full pipeline must not drain the tenant's bucket.
      const size_t cost = RunCostBytes(cmd);
      AdmissionDecision admit =
          manager_->admission().AdmitRun(conn->tenant, cost);
      if (!admit.admitted) {
        retry_after_ms = admit.retry_after_ms;
      } else {
        sm.admission_admitted_total->Increment();
        auto ticket = std::make_shared<Connection::RunTicket>(cmd);
        ticket->deadline = RunDeadlineKey(conn->run_budget_ms);
        ticket->cost_bytes = cost;
        ticket->tenant = conn->tenant;
        conn->run_queue.push_back(ticket);
        if (cmd.request_id != 0) conn->inflight[cmd.request_id] = ticket;
        // Hand the connection to the scheduler unless it is already in
        // the ready queue or a worker is on it (the worker re-queues it).
        if (!conn->run_task_active && !conn->sched_queued) {
          conn->sched_queued = true;
          key = conn->EarliestQueuedDeadline();
          schedule = true;
        }
      }
    }
  }
  if (retry_after_ms > 0) {
    sm.admission_shed_total->Increment();
    conn->SendReply(
        PrependFrameId(cmd.request_id, FormatBusyReply(retry_after_ms)));
    return;
  }
  if (!reject.ok()) {
    if (reject.code() == Status::Code::kProtocolError) {
      sm.protocol_errors_total->Increment();
    }
    conn->SendReply(PrependFrameId(cmd.request_id, EncodeErrorReply(reject)));
    return;
  }
  if (schedule) ScheduleConnection(conn, key);
}

void PragueServer::ScheduleConnection(
    const std::shared_ptr<Connection>& conn,
    std::chrono::steady_clock::time_point key) {
  bool spawn = false;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    ready_.Push(key, conn);
    obs::ServerMetrics::Get().sched_queue_depth->Record(ready_.size());
    if (sched_workers_ < sched_worker_limit_) {
      ++sched_workers_;
      spawn = true;
    }
  }
  // A surplus worker (the queue drained before it ran) just exits, so
  // over-spawning is harmless; under-spawning would strand work.
  if (spawn) pool_->Submit([this] { SchedulerWorker(); });
}

void PragueServer::SchedulerWorker() {
  for (;;) {
    std::shared_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      if (ready_.empty()) {
        --sched_workers_;
        return;
      }
      conn = ready_.Pop();
    }
    std::shared_ptr<Connection::RunTicket> ticket;
    {
      std::lock_guard<std::mutex> lock(conn->run_mu);
      conn->sched_queued = false;
      // run_task_active cannot be set here — a connection is inserted
      // into ready_ only when both flags are clear, and the executing
      // worker re-inserts only after clearing it.
      if (!conn->run_queue.empty() && conn->session != nullptr) {
        // Earliest-deadline ticket first, not FIFO: within one
        // connection's pipeline the tightest budget runs next, matching
        // the cross-connection policy.
        auto best = conn->run_queue.begin();
        for (auto it = std::next(best); it != conn->run_queue.end(); ++it) {
          if ((*it)->deadline < (*best)->deadline) best = it;
        }
        ticket = *best;
        conn->run_queue.erase(best);
        conn->run_task_active = true;
        conn->active_run = ticket;
        // Re-arm the token so a stale CANCEL (one that raced the end of
        // the previous run) cannot poison this run; then apply any
        // cancellation that targeted this ticket while it was still
        // queued. Both under run_mu, the same lock HandleCancel trips
        // the token under.
        conn->session->ResetCancellation();
        if (ticket->cancelled) conn->session->Cancel();
      }
    }
    if (ticket == nullptr) continue;
    obs::Watchdog* watchdog = options_.watchdog;
    const uint64_t watch_token =
        watchdog != nullptr
            ? watchdog->OnRunStarted(ticket->tenant, conn->run_budget_ms)
            : 0;
    std::string reply;
    switch (ticket->cmd.kind) {
      case CommandKind::kRun:
        reply = ExecuteRun(*conn, ticket->cmd);
        break;
      case CommandKind::kBatchRun:
        reply = ExecuteBatchRun(*conn, ticket->cmd);
        break;
      default:
        reply = ExecuteAppend(*conn, ticket->cmd);
        break;
    }
    if (watchdog != nullptr) watchdog->OnRunFinished(watch_token);
    bool requeue = false;
    std::chrono::steady_clock::time_point key;
    {
      std::lock_guard<std::mutex> lock(conn->run_mu);
      conn->active_run = nullptr;
      if (ticket->cmd.request_id != 0) {
        conn->inflight.erase(ticket->cmd.request_id);
      }
      // Clear the flag before replying so a lock-step client's next
      // command (sent only after it reads this reply) is never bounced as
      // "busy". A pipelined client may enqueue again the instant the flag
      // drops; its insertion and this worker's re-insertion are mutually
      // exclusive via sched_queued under this same lock.
      conn->run_task_active = false;
      if (!conn->run_queue.empty() && !conn->sched_queued) {
        conn->sched_queued = true;
        key = conn->EarliestQueuedDeadline();
        requeue = true;
      }
    }
    conn->SendReply(
        PrependFrameId(ticket->cmd.request_id, std::move(reply)));
    manager_->admission().OnRunFinished(ticket->tenant, ticket->cost_bytes);
    if (requeue) ScheduleConnection(conn, key);
  }
}

std::string PragueServer::ExecuteRun(Connection& conn,
                                     const WireCommand& cmd) {
  obs::ServerMetrics& sm = obs::ServerMetrics::Get();
  Stopwatch timer;
  obs::RunTrace trace;
  bool ran = false;
  std::string reply =
      conn.session->With([&](PragueSession& s) -> std::string {
        RunStats stats;
        Result<QueryResults> results = s.Run(&stats);
        if (!results.ok()) return EncodeErrorReply(results.status());
        trace = s.last_run_trace();
        ran = true;
        return FormatRunReply(*results, stats, cmd.limit);
      });
  double elapsed_ms = timer.ElapsedMillis();
  const auto elapsed_us = static_cast<uint64_t>(elapsed_ms * 1000 + 0.5);
  sm.run_latency_us->Record(elapsed_us);
  if (conn.tenant_run_latency != nullptr) {
    conn.tenant_run_latency->Record(elapsed_us);
  }
  if (ran && trace.truncated) {
    sm.runs_truncated_total->Increment();
    if (conn.tenant_runs_truncated != nullptr) {
      conn.tenant_runs_truncated->Increment();
    }
  }
  if (ran && options_.slow_query_ms >= 0 &&
      elapsed_ms >= static_cast<double>(options_.slow_query_ms)) {
    sm.slow_queries_total->Increment();
    PRAGUE_SLOG(Warning)
            .Field("tenant", conn.tenant)
            .Field("elapsed_ms", elapsed_ms)
        << "slow query: " << trace.ToString();
  }
  return reply;
}

std::string PragueServer::ExecuteBatchRun(Connection& conn,
                                          const WireCommand& cmd) {
  obs::ServerMetrics& sm = obs::ServerMetrics::Get();
  Stopwatch timer;
  sm.batch_size->Record(cmd.batch_patterns.size());
  std::vector<std::string> members;
  members.reserve(cmd.batch_patterns.size());
  conn.session->With([&](PragueSession& s) {
    // Each member formulates and runs on a fresh engine session pinned to
    // this connection's snapshot, inheriting the session's config — so the
    // run budget, σ, and crucially the cancellation token all apply: a
    // CANCEL truncates the member in flight and fails the rest fast.
    const PragueConfig config = s.config();
    const LabelDictionary& labels = s.snapshot()->labels();
    for (const std::string& text : cmd.batch_patterns) {
      Result<ParsedPattern> parsed = ParsePatternStrict(text, labels);
      if (!parsed.ok()) {
        members.push_back(EncodeErrorReply(parsed.status()));
        continue;
      }
      PragueSession member(s.snapshot(), config);
      std::vector<NodeId> ids;
      ids.reserve(parsed->graph.NodeCount());
      for (NodeId n = 0; n < parsed->graph.NodeCount(); ++n) {
        ids.push_back(member.AddNode(parsed->graph.NodeLabel(n)));
      }
      Status failed = Status::OK();
      for (EdgeId e : parsed->sequence) {
        const Edge& edge = parsed->graph.GetEdge(e);
        Result<StepReport> step =
            member.AddEdge(ids[edge.u], ids[edge.v], edge.label);
        if (!step.ok()) {
          failed = step.status();
          break;
        }
      }
      if (!failed.ok()) {
        members.push_back(EncodeErrorReply(failed));
        continue;
      }
      RunStats stats;
      Result<QueryResults> results = member.Run(&stats);
      members.push_back(results.ok()
                            ? FormatRunReply(*results, stats, cmd.limit)
                            : EncodeErrorReply(results.status()));
    }
  });
  sm.batch_latency_us->Record(
      static_cast<uint64_t>(timer.ElapsedMillis() * 1000 + 0.5));
  return FormatBatchRunReply(members);
}

std::string PragueServer::ExecuteAppend(Connection& conn,
                                        const WireCommand& cmd) {
  (void)conn;
  MaintenanceOptions options;
  options.alpha =
      cmd.append_alpha > 0 ? cmd.append_alpha : options_.default_append_alpha;
  options.reclassify = cmd.append_reclassify >= 0
                           ? cmd.append_reclassify != 0
                           : options_.append_reclassify;
  // APPEND graphs may introduce labels the snapshot has never seen, so the
  // batch parses against a private dictionary that Append() merges into the
  // successor snapshot (ParsePatternStrict would reject them).
  LabelDictionary batch_labels;
  std::vector<Graph> graphs;
  graphs.reserve(cmd.batch_patterns.size());
  for (const std::string& text : cmd.batch_patterns) {
    Result<ParsedPattern> parsed = ParsePattern(text, &batch_labels);
    if (!parsed.ok()) return EncodeErrorReply(parsed.status());
    graphs.push_back(std::move(parsed->graph));
  }
  Result<MaintenanceReport> report =
      manager_->Append(std::move(graphs), options, &batch_labels);
  if (!report.ok()) return EncodeErrorReply(report.status());
  return FormatAppendReply(*report);
}

}  // namespace prague
