// Incremental index maintenance for dynamic databases.
//
// The paper mines and indexes a static D offline. In a deployed system new
// graphs keep arriving; re-mining on every insert is wasteful. This module
// appends graphs to an indexed database and updates every indexed
// fragment's FSG id set *exactly*, using the A2F DAG for anti-monotone
// pruning (a fragment can only occur in the new graph if all of its
// one-edge-smaller subfragments do).
//
// Changing the fragment *sets* is the harder problem: as |D| grows the
// min-support threshold σ moves, so some indexed frequent fragments fall
// below it, some DIFs rise above it, and brand new fragments may become
// frequent. Two modes handle this:
//
//  - Detection only (the default, and the historical behavior): the
//    maintainer reports the drift so callers can schedule a full re-mine;
//    until then the indexes remain *sound* (every id set is exact;
//    candidate generation stays a superset of the truth) but their pruning
//    power slowly decays.
//
//  - Reclassification (MaintenanceOptions::reclassify): the σ-crossing is
//    repaired in place. Fragments whose support fell below the new σ are
//    demoted out of the A2F (becoming DIFs when every maximal subgraph
//    stays frequent); DIFs whose support rose to σ are promoted into the
//    A2F; and a *localized* re-mine grows the promoted fragments one edge
//    at a time — enumerating embeddings only inside the graphs of the
//    parent's FSG set — to discover fragments that became frequent without
//    ever having been indexed. Appends only raise supports, so every
//    classification change is reachable from a promoted DIF (upward) or a
//    demotion sweep (downward); no global re-mine is needed. The result is
//    the same fragment population an offline re-mine would classify, with
//    identical exact id sets (tests/test_maintenance.cc pins this down).

#ifndef PRAGUE_INDEX_INDEX_MAINTENANCE_H_
#define PRAGUE_INDEX_INDEX_MAINTENANCE_H_

#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "index/action_aware_index.h"
#include "index/database_snapshot.h"
#include "util/result.h"

namespace prague {

/// \brief How one AppendGraphs call maintains the indexes.
struct MaintenanceOptions {
  /// α — the mining ratio the indexes were built with (recomputes the
  /// threshold σ = max(1, ⌈α·|D|⌉) after the append).
  double alpha = 0.1;
  /// Growth cap for localized re-mining (mirrors
  /// MiningConfig::max_fragment_edges); fragments beyond this size are
  /// never grown.
  size_t max_fragment_edges = 10;
  /// Repair σ-crossings in place (see the file comment) instead of only
  /// reporting them.
  bool reclassify = false;
};

/// \brief What one AppendGraphs call did.
struct MaintenanceReport {
  size_t graphs_added = 0;
  /// ⌈α·|D|⌉ after the append.
  size_t new_min_support = 0;
  /// A2F vertices whose support is now below the new threshold.
  size_t frequent_below_threshold = 0;
  /// A2I entries whose support is now at/above the new threshold.
  size_t difs_above_threshold = 0;
  /// VF2 containment probes actually run (after DAG pruning).
  size_t probes = 0;
  /// Probes skipped because a subfragment was already absent.
  size_t pruned_probes = 0;
  /// True when any classification drifted — schedule a re-mine. Always
  /// false after a reclassifying append (the drift was repaired).
  bool remine_recommended = false;
  /// True when the reclassification delta path ran and repaired a drift.
  bool reclassified = false;
  /// DIFs promoted into the A2F by reclassification.
  size_t promoted_fragments = 0;
  /// A2F vertices demoted out by reclassification (σ rose past them).
  size_t demoted_fragments = 0;
  /// Previously unindexed fragments the localized re-mine found frequent.
  size_t discovered_fragments = 0;
  /// Snapshot version the append started from (0 for the in-place API).
  uint64_t from_version = 0;
  /// Snapshot version the append published (0 for the in-place API).
  uint64_t to_version = 0;
};

/// \brief Appends \p graphs to \p db and updates \p indexes in place.
///
/// Graphs must be connected and non-empty. On error nothing is modified.
Result<MaintenanceReport> AppendGraphs(GraphDatabase* db,
                                       std::vector<Graph> graphs,
                                       ActionAwareIndexes* indexes,
                                       const MaintenanceOptions& options);

/// \brief Detection-only overload (no reclassification): the historical
/// API, kept for callers that schedule full re-mines themselves.
Result<MaintenanceReport> AppendGraphs(GraphDatabase* db,
                                       std::vector<Graph> graphs,
                                       ActionAwareIndexes* indexes,
                                       double alpha);

/// \brief A successor snapshot plus the report describing how it was built.
struct SnapshotAppendResult {
  SnapshotPtr snapshot;
  MaintenanceReport report;
};

/// \brief Copy-on-write append: builds a successor snapshot of \p base with
/// \p graphs added and every index id-set updated, leaving \p base
/// untouched. The successor structurally shares all pre-existing graph
/// storage and every id-set the new graphs do not extend, and carries
/// version base.version() + 1.
///
/// \p graph_labels, when non-null, is the dictionary the incoming graphs'
/// node labels were interned against; they are re-interned into the
/// successor's dictionary (edge labels are passed through unchanged, as
/// praguedb's graph files share one edge-label space). When null the
/// graphs must already use \p base's label ids.
Result<SnapshotAppendResult> AppendGraphs(
    const DatabaseSnapshot& base, std::vector<Graph> graphs,
    const MaintenanceOptions& options,
    const LabelDictionary* graph_labels = nullptr);

/// \brief Detection-only COW overload (no reclassification).
Result<SnapshotAppendResult> AppendGraphs(
    const DatabaseSnapshot& base, std::vector<Graph> graphs, double alpha,
    const LabelDictionary* graph_labels = nullptr);

}  // namespace prague

#endif  // PRAGUE_INDEX_INDEX_MAINTENANCE_H_
