#include "obs/metrics.h"

#include "obs/labels.h"
#include "util/logging.h"

namespace prague::obs {

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      const double lower =
          static_cast<double>(Histogram::BucketLowerBound(i));
      // The overflow bucket has no real upper bound; pretend it is one
      // octave wide so interpolation stays finite.
      const double upper =
          i == kHistogramBuckets - 1
              ? lower * 2
              : static_cast<double>(Histogram::BucketUpperBound(i));
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      return lower + fraction * (upper - lower);
    }
    cumulative = next;
  }
  return static_cast<double>(
      Histogram::BucketUpperBound(kHistogramBuckets - 2));
}

double HistogramSnapshot::Mean() const {
  return count == 0 ? 0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  // Immortal: metric pointers are cached in static structs and recorded to
  // from detached-ish threads during shutdown; never destroy the registry.
  static MetricsRegistry* registry = [] {
    auto* reg = new MetricsRegistry();
    // Logging lives below obs in the link order, so its suppressed-line
    // count surfaces through a callback instead of an owned Counter.
    reg->RegisterCallbackCounter("prague_log_suppressed_total",
                                 &SuppressedLogCount);
    return reg;
  }();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

LabeledCounter* MetricsRegistry::GetLabeledCounter(std::string_view name,
                                                   std::string_view label_key,
                                                   size_t max_series) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = labeled_counters_.find(name);
  if (it == labeled_counters_.end()) {
    it = labeled_counters_
             .emplace(std::string(name),
                      std::make_unique<LabeledCounter>(std::string(label_key),
                                                       max_series))
             .first;
  }
  return it->second.get();
}

LabeledGauge* MetricsRegistry::GetLabeledGauge(std::string_view name,
                                               std::string_view label_key,
                                               size_t max_series) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = labeled_gauges_.find(name);
  if (it == labeled_gauges_.end()) {
    it = labeled_gauges_
             .emplace(std::string(name),
                      std::make_unique<LabeledGauge>(std::string(label_key),
                                                     max_series))
             .first;
  }
  return it->second.get();
}

LabeledHistogram* MetricsRegistry::GetLabeledHistogram(
    std::string_view name, std::string_view label_key, size_t max_series) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = labeled_histograms_.find(name);
  if (it == labeled_histograms_.end()) {
    it = labeled_histograms_
             .emplace(std::string(name), std::make_unique<LabeledHistogram>(
                                             std::string(label_key),
                                             max_series))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::RegisterCallbackCounter(std::string_view name,
                                              std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callback_counters_.insert_or_assign(std::string(name), std::move(fn));
}

void MetricsRegistry::RegisterCallbackGauge(std::string_view name,
                                            std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callback_gauges_.insert_or_assign(std::string(name), std::move(fn));
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  for (const auto& [name, fn] : callback_counters_) {
    snap.counters[name] = fn();
  }
  for (const auto& [name, fn] : callback_gauges_) {
    snap.gauges[name] = fn();
  }
  for (const auto& [name, family] : labeled_counters_) {
    snap.labeled_counters[name] = {family->label_key(), family->Series()};
  }
  for (const auto& [name, family] : labeled_gauges_) {
    snap.labeled_gauges[name] = {family->label_key(), family->Series()};
  }
  for (const auto& [name, family] : labeled_histograms_) {
    snap.labeled_histograms[name] = {family->label_key(), family->Series()};
  }
  return snap;
}

namespace {

// Histogram samples for one (possibly labeled) series. `labels` is either
// empty or a pre-rendered `tenant="acme"` fragment; the `le` label always
// comes last.
void AppendHistogramSeries(std::string& out, const std::string& name,
                           const std::string& labels,
                           const HistogramSnapshot& hist) {
  // Cumulative buckets up to the last non-empty one; everything after is
  // equal to the total and captured by the mandatory +Inf bucket.
  size_t last = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (hist.buckets[i] != 0) last = i;
  }
  const std::string prefix =
      labels.empty() ? "{le=\"" : '{' + labels + ",le=\"";
  uint64_t cumulative = 0;
  for (size_t i = 0;
       i <= last && i + 1 < kHistogramBuckets && hist.count != 0; ++i) {
    cumulative += hist.buckets[i];
    out += name + "_bucket" + prefix +
           std::to_string(Histogram::BucketUpperBound(i)) + "\"} " +
           std::to_string(cumulative) + '\n';
  }
  out += name + "_bucket" + prefix + "+Inf\"} " +
         std::to_string(hist.count) + '\n';
  const std::string suffix =
      labels.empty() ? std::string(" ") : '{' + labels + "} ";
  out += name + "_sum" + suffix + std::to_string(hist.sum) + '\n';
  out += name + "_count" + suffix + std::to_string(hist.count) + '\n';
}

std::string LabelFragment(const std::string& key, const std::string& value) {
  return key + "=\"" + EscapeLabelValue(value) + '"';
}

}  // namespace

std::string RenderPrometheusText(const RegistrySnapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snap.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + ' ' + std::to_string(value) + '\n';
  }
  for (const auto& [name, family] : snap.labeled_counters) {
    out += "# TYPE " + name + " counter\n";
    for (const auto& [value, count] : family.series) {
      out += name + '{' + LabelFragment(family.label_key, value) + "} " +
             std::to_string(count) + '\n';
    }
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ' + std::to_string(value) + '\n';
  }
  for (const auto& [name, family] : snap.labeled_gauges) {
    out += "# TYPE " + name + " gauge\n";
    for (const auto& [value, level] : family.series) {
      out += name + '{' + LabelFragment(family.label_key, value) + "} " +
             std::to_string(level) + '\n';
    }
  }
  for (const auto& [name, hist] : snap.histograms) {
    out += "# TYPE " + name + " histogram\n";
    AppendHistogramSeries(out, name, "", hist);
  }
  for (const auto& [name, family] : snap.labeled_histograms) {
    out += "# TYPE " + name + " histogram\n";
    for (const auto& [value, hist] : family.series) {
      AppendHistogramSeries(out, name,
                            LabelFragment(family.label_key, value), hist);
    }
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  return RenderPrometheusText(Snapshot());
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, family] : labeled_counters_) family->Reset();
  for (auto& [name, family] : labeled_gauges_) family->Reset();
  for (auto& [name, family] : labeled_histograms_) family->Reset();
}

EngineMetrics& EngineMetrics::Get() {
  static EngineMetrics* metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    auto* m = new EngineMetrics();
    m->runs_total = reg.GetCounter("prague_engine_runs_total");
    m->runs_truncated_total =
        reg.GetCounter("prague_engine_runs_truncated_total");
    m->step_deadline_total =
        reg.GetCounter("prague_engine_step_deadline_total");
    m->spig_steps_total = reg.GetCounter("prague_engine_spig_steps_total");
    m->vf2_calls_total = reg.GetCounter("prague_engine_vf2_calls_total");
    m->nodes_expanded_total =
        reg.GetCounter("prague_engine_nodes_expanded_total");
    m->candidates_pruned_total =
        reg.GetCounter("prague_engine_candidates_pruned_total");
    m->sessions_opened_total =
        reg.GetCounter("prague_engine_sessions_opened_total");
    m->snapshots_published_total =
        reg.GetCounter("prague_engine_snapshots_published_total");
    m->sessions_open = reg.GetGauge("prague_engine_sessions_open");
    m->run_latency_us = reg.GetHistogram("prague_engine_run_latency_us");
    m->exact_verification_us =
        reg.GetHistogram("prague_engine_exact_verification_us");
    m->similar_candidates_us =
        reg.GetHistogram("prague_engine_similar_candidates_us");
    m->similar_generation_us =
        reg.GetHistogram("prague_engine_similar_generation_us");
    m->spig_build_us = reg.GetHistogram("prague_engine_spig_build_us");
    m->candidate_refresh_us =
        reg.GetHistogram("prague_engine_candidate_refresh_us");
    m->shard_runs_total = reg.GetCounter("prague_engine_shard_runs_total");
    m->shard_tasks_total = reg.GetCounter("prague_engine_shard_tasks_total");
    m->shard_imbalance_x100 =
        reg.GetHistogram("prague_engine_shard_imbalance_x100");
    m->shard_merge_us = reg.GetHistogram("prague_engine_shard_merge_us");
    return m;
  }();
  return *metrics;
}

ServerMetrics& ServerMetrics::Get() {
  static ServerMetrics* metrics = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    auto* m = new ServerMetrics();
    m->connections_total = reg.GetCounter("prague_server_connections_total");
    m->frames_total = reg.GetCounter("prague_server_frames_total");
    m->protocol_errors_total =
        reg.GetCounter("prague_server_protocol_errors_total");
    m->runs_truncated_total =
        reg.GetCounter("prague_server_runs_truncated_total");
    m->slow_queries_total = reg.GetCounter("prague_server_slow_queries_total");
    m->event_loop_wakeups_total =
        reg.GetCounter("prague_server_event_loop_wakeups_total");
    m->cmd_open_total = reg.GetCounter("prague_server_cmd_open_total");
    m->cmd_add_edge_total = reg.GetCounter("prague_server_cmd_add_edge_total");
    m->cmd_delete_edge_total =
        reg.GetCounter("prague_server_cmd_delete_edge_total");
    m->cmd_run_total = reg.GetCounter("prague_server_cmd_run_total");
    m->cmd_batch_run_total =
        reg.GetCounter("prague_server_cmd_batch_run_total");
    m->cmd_append_total = reg.GetCounter("prague_server_cmd_append_total");
    m->cmd_cancel_total = reg.GetCounter("prague_server_cmd_cancel_total");
    m->cmd_stats_total = reg.GetCounter("prague_server_cmd_stats_total");
    m->cmd_metrics_total = reg.GetCounter("prague_server_cmd_metrics_total");
    m->cmd_close_total = reg.GetCounter("prague_server_cmd_close_total");
    m->admission_admitted_total =
        reg.GetCounter("prague_server_admission_admitted_total");
    m->admission_shed_total =
        reg.GetCounter("prague_server_admission_shed_total");
    m->accepts_shed_total = reg.GetCounter("prague_server_accepts_shed_total");
    m->write_queue_drops_total =
        reg.GetCounter("prague_server_write_queue_drops_total");
    m->connections_open = reg.GetGauge("prague_server_connections_open");
    m->run_latency_us = reg.GetHistogram("prague_server_run_latency_us");
    m->write_queue_depth =
        reg.GetHistogram("prague_server_write_queue_depth");
    m->sched_queue_depth = reg.GetHistogram("prague_server_sched_queue_depth");
    m->batch_size = reg.GetHistogram("prague_server_batch_size");
    m->batch_latency_us = reg.GetHistogram("prague_server_batch_latency_us");
    m->tenant_admitted_total = reg.GetLabeledCounter(
        "prague_server_tenant_admitted_total", "tenant");
    m->tenant_shed_total =
        reg.GetLabeledCounter("prague_server_tenant_shed_total", "tenant");
    m->tenant_truncated_total = reg.GetLabeledCounter(
        "prague_server_tenant_runs_truncated_total", "tenant");
    m->tenant_run_latency_us = reg.GetLabeledHistogram(
        "prague_server_tenant_run_latency_us", "tenant");
    return m;
  }();
  return *metrics;
}

}  // namespace prague::obs
