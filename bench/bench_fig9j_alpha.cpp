// Figure 9(j) reproduction: effect of the minimum support threshold α on
// PRAGUE's similarity SRT (Q1-Q4, σ=3).
//
// Paper shape: SRTs fluctuate in a small range across α ∈ [0.05, 0.2] —
// α shifts fragments between A2F and A2I (and candidates between Rfree
// and Rver) but PRAGUE's overall cost is robust to it.

#include <cstdio>

#include "bench_common.h"

using namespace prague;
using namespace prague::bench;

int main() {
  Banner("Figure 9(j): effect of alpha on PRG similarity SRT (s)",
         "AIDS-like dataset, sigma=3, queries Q1-Q4");
  const double alphas[] = {0.05, 0.10, 0.15, 0.20};

  // Queries are generated against the dataset only (not the indexes), so
  // build them once from the first workbench's database.
  std::vector<VisualQuerySpec> queries;
  TablePrinter table({"alpha", "Q1 (s)", "Q2 (s)", "Q3 (s)", "Q4 (s)"});
  for (double alpha : alphas) {
    Workbench bench = BuildAidsWorkbench(AidsGraphCount(), alpha);
    if (queries.empty()) queries = AidsQueries(bench);
    std::vector<std::string> row = {Fmt(alpha, 2)};
    SimulationConfig config;
    config.prague.sigma = 3;
    SessionSimulator simulator(bench.snapshot, config);
    for (const VisualQuerySpec& spec : queries) {
      Result<SimulationResult> result = simulator.RunPrague(spec);
      if (!result.ok()) {
        std::fprintf(stderr, "failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      row.push_back(Fmt(result->srt_seconds, 3));
    }
    table.AddRow(std::move(row));
    std::fprintf(stderr, "alpha=%.2f done (mining %.1fs)\n", alpha,
                 bench.mining_seconds);
  }
  table.Print();
  std::printf(
      "\npaper shape check: SRT fluctuates within a small band across "
      "alpha.\n");
  return 0;
}
