#include "core/modification.h"

namespace prague {

std::optional<ModificationSuggestion> SuggestEdgeDeletion(
    const VisualQuery& query, const SpigSet& spigs,
    const ActionAwareIndexes& indexes) {
  if (query.EdgeCount() <= 1) return std::nullopt;
  FormulationMask full = query.FullMask();
  std::optional<ModificationSuggestion> best;
  for (FormulationId ell : query.AliveEdgeIds()) {
    if (!query.CanDelete(ell)) continue;
    FormulationMask reduced = full & ~FormulationBit(ell);
    const SpigVertex* v = spigs.FindVertex(reduced);
    if (v == nullptr) continue;  // should not happen for connected subsets
    IdSet rq = CachedSubCandidates(*v, indexes);
    if (!best || rq.size() > best->candidates.size()) {
      best = ModificationSuggestion{ell, std::move(rq)};
    }
  }
  if (best && best->candidates.empty()) return std::nullopt;
  return best;
}

}  // namespace prague
