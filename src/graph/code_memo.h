// Canonical-code memo: hash-consing of Graph → CanonicalCode.
//
// Minimum-DFS-code computation is the single most expensive primitive on
// the relabel/maintenance paths, and both DirectFragmentList
// (core/spig.cc) and DifParents (index/index_maintenance.cc) recompute
// codes for the *same* extracted subgraphs over and over: every SPIG
// vertex touching a relabeled node re-enumerates its subsets, and every
// appended data graph re-derives the DIF parent lists. The memo keys on
// the exact graph representation (node labels + edge triples in storage
// order), which is stable because ExtractEdgeSubgraph is deterministic —
// two extractions of the same subset serialize identically. Isomorphic
// graphs with different node orders simply miss; that only costs a
// recompute, never correctness.

#ifndef PRAGUE_GRAPH_CODE_MEMO_H_
#define PRAGUE_GRAPH_CODE_MEMO_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

#include "graph/canonical.h"
#include "graph/graph.h"

namespace prague {

/// \brief Thread-safe memo of canonical codes, keyed by exact graph
/// representation.
class CanonicalCodeMemo {
 public:
  /// \p max_entries bounds memory; the memo resets when it would exceed
  /// the cap (simple and good enough — hit rates come from tight loops,
  /// not long histories).
  explicit CanonicalCodeMemo(size_t max_entries = 1 << 18)
      : max_entries_(max_entries) {}

  /// \brief cam(g), from the memo when possible.
  CanonicalCode Get(const Graph& g);

  /// \brief Lifetime hit/miss counters (for benchmarks and tests).
  size_t hits() const;
  size_t misses() const;

  /// \brief Drops all entries (counters survive).
  void Clear();

  /// \brief Process-wide instance shared by the relabel and index-
  /// maintenance paths.
  static CanonicalCodeMemo& Global();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, CanonicalCode> memo_;
  size_t max_entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

/// \brief The memo key: node labels + edge triples in storage order.
/// Exposed for tests.
std::string GraphRepresentationKey(const Graph& g);

}  // namespace prague

#endif  // PRAGUE_GRAPH_CODE_MEMO_H_
