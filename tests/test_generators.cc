// Dataset generators: determinism, structural statistics matching the
// paper's dataset profiles, label skew.

#include <gtest/gtest.h>

#include <map>

#include "datasets/aids_generator.h"
#include "datasets/synthetic_generator.h"

namespace prague {
namespace {

TEST(AidsGeneratorTest, Deterministic) {
  AidsGeneratorConfig config;
  config.graph_count = 50;
  config.seed = 3;
  GraphDatabase a = GenerateAidsLikeDatabase(config);
  GraphDatabase b = GenerateAidsLikeDatabase(config);
  ASSERT_EQ(a.size(), b.size());
  for (GraphId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.graph(i), b.graph(i));
  }
}

TEST(AidsGeneratorTest, PrefixStable) {
  // Growing the dataset must not change earlier graphs (graph i depends
  // only on seed and i) — benchmarks rely on this for scaling sweeps.
  AidsGeneratorConfig small, large;
  small.graph_count = 20;
  large.graph_count = 60;
  small.seed = large.seed = 5;
  GraphDatabase a = GenerateAidsLikeDatabase(small);
  GraphDatabase b = GenerateAidsLikeDatabase(large);
  for (GraphId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.graph(i), b.graph(i));
  }
}

TEST(AidsGeneratorTest, AllGraphsConnectedAndSimple) {
  AidsGeneratorConfig config;
  config.graph_count = 200;
  GraphDatabase db = GenerateAidsLikeDatabase(config);
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    const Graph& g = db.graph(gid);
    EXPECT_TRUE(g.IsConnected());
    EXPECT_GE(g.EdgeCount(), 2u);
    EXPECT_LE(g.NodeCount(), config.max_nodes);
  }
}

TEST(AidsGeneratorTest, SizeProfileMatchesAids) {
  AidsGeneratorConfig config;
  config.graph_count = 2000;
  GraphDatabase db = GenerateAidsLikeDatabase(config);
  // Paper: avg ≈ 25 vertices / 27 edges. Allow generous tolerance.
  EXPECT_NEAR(db.AverageNodeCount(), 25.0, 6.0);
  EXPECT_NEAR(db.AverageEdgeCount(), 27.0, 7.0);
  // Heavy tail: some molecule well above average.
  size_t max_nodes = 0;
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    const Graph& g = db.graph(gid);
    max_nodes = std::max(max_nodes, g.NodeCount());
  }
  EXPECT_GT(max_nodes, 80u);
}

TEST(AidsGeneratorTest, CarbonDominatesLabels) {
  AidsGeneratorConfig config;
  config.graph_count = 500;
  GraphDatabase db = GenerateAidsLikeDatabase(config);
  Result<Label> carbon = db.labels().Lookup("C");
  ASSERT_TRUE(carbon.ok());
  size_t total = 0, c_count = 0;
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    const Graph& g = db.graph(gid);
    for (NodeId n = 0; n < g.NodeCount(); ++n) {
      ++total;
      if (g.NodeLabel(n) == *carbon) ++c_count;
    }
  }
  double c_ratio = static_cast<double>(c_count) / total;
  EXPECT_GT(c_ratio, 0.6);
  EXPECT_LT(c_ratio, 0.85);
}

TEST(SyntheticGeneratorTest, Deterministic) {
  SyntheticGeneratorConfig config;
  config.graph_count = 50;
  GraphDatabase a = GenerateSyntheticDatabase(config);
  GraphDatabase b = GenerateSyntheticDatabase(config);
  for (GraphId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.graph(i), b.graph(i));
  }
}

TEST(SyntheticGeneratorTest, PrefixStable) {
  SyntheticGeneratorConfig small, large;
  small.graph_count = 25;
  large.graph_count = 75;
  GraphDatabase a = GenerateSyntheticDatabase(small);
  GraphDatabase b = GenerateSyntheticDatabase(large);
  for (GraphId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.graph(i), b.graph(i));
  }
}

TEST(SyntheticGeneratorTest, MatchesPaperProfile) {
  SyntheticGeneratorConfig config;
  config.graph_count = 1000;
  GraphDatabase db = GenerateSyntheticDatabase(config);
  // Paper: avg edges 30, density 0.1 (⇒ ≈ 25 nodes).
  EXPECT_NEAR(db.AverageEdgeCount(), 30.0, 5.0);
  EXPECT_NEAR(db.AverageNodeCount(), 25.0, 6.0);
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    const Graph& g = db.graph(gid);
    EXPECT_TRUE(g.IsConnected());
  }
}

TEST(SyntheticGeneratorTest, UsesConfiguredLabelCount) {
  SyntheticGeneratorConfig config;
  config.graph_count = 100;
  config.label_count = 7;
  GraphDatabase db = GenerateSyntheticDatabase(config);
  EXPECT_EQ(db.labels().size(), 7u);
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    const Graph& g = db.graph(gid);
    for (NodeId n = 0; n < g.NodeCount(); ++n) {
      EXPECT_LT(g.NodeLabel(n), 7u);
    }
  }
}

TEST(SyntheticGeneratorTest, LabelsAreSkewed) {
  SyntheticGeneratorConfig config;
  config.graph_count = 500;
  GraphDatabase db = GenerateSyntheticDatabase(config);
  std::map<Label, size_t> counts;
  size_t total = 0;
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    const Graph& g = db.graph(gid);
    for (NodeId n = 0; n < g.NodeCount(); ++n) {
      ++counts[g.NodeLabel(n)];
      ++total;
    }
  }
  // Label 0 (rank 1 in the Zipf draw) must clearly dominate the last one.
  EXPECT_GT(counts[0], 4 * std::max<size_t>(1, counts[config.label_count - 1]));
}

}  // namespace
}  // namespace prague
