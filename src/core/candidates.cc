#include "core/candidates.h"

#include <vector>

namespace prague {

namespace {

// Algorithm 3 against any FSG source — the full indexes or one shard's
// slices. `a2f(id)` / `a2i(id)` return the (possibly sliced) FSG id set.
template <typename A2fFn, typename A2iFn>
IdSet ResolveSubCandidates(const SpigVertex& v, const A2fFn& a2f,
                           const A2iFn& a2i) {
  if (v.frag.freq_id) return a2f(*v.frag.freq_id);
  if (v.frag.dif_id) return a2i(*v.frag.dif_id);
  // NIF: intersect the FSG ids of every recorded frequent (|g|−1)-subgraph
  // and every recorded DIF subgraph — smallest set first, stopping as
  // soon as the running intersection empties.
  if (v.frag.phi.empty() && v.frag.upsilon.empty()) {
    return IdSet();  // zero-support subgraph (see header)
  }
  std::vector<const IdSet*> sets;
  sets.reserve(v.frag.phi.size() + v.frag.upsilon.size());
  for (A2fId fid : v.frag.phi) sets.push_back(&a2f(fid));
  for (A2iId did : v.frag.upsilon) sets.push_back(&a2i(did));
  return IdSet::IntersectMany(std::move(sets));
}

}  // namespace

IdSet ExactSubCandidates(const SpigVertex& v,
                         const ActionAwareIndexes& indexes) {
  return ResolveSubCandidates(
      v, [&](A2fId id) -> const IdSet& { return indexes.a2f.FsgIds(id); },
      [&](A2iId id) -> const IdSet& { return indexes.a2i.FsgIds(id); });
}

IdSet ExactSubCandidates(const SpigVertex& v, const IndexShard& shard) {
  return ResolveSubCandidates(
      v, [&](A2fId id) -> const IdSet& { return shard.A2fFsgIds(id); },
      [&](A2iId id) -> const IdSet& { return shard.A2iFsgIds(id); });
}

const IdSet& CachedSubCandidates(const SpigVertex& v,
                                 const ActionAwareIndexes& indexes) {
  if (!v.cand_cached) {
    v.cand_cache = ExactSubCandidates(v, indexes);
    v.cand_cached = true;
  }
  return v.cand_cache;
}

size_t SimilarCandidates::TotalCandidates() const {
  // One k-way sweep over all per-level sets, counting distinct ids.
  std::vector<std::pair<IdSet::const_iterator, IdSet::const_iterator>> fronts;
  fronts.reserve(free.size() + ver.size());
  for (const auto& [level, ids] : free) {
    if (!ids.empty()) fronts.emplace_back(ids.begin(), ids.end());
  }
  for (const auto& [level, ids] : ver) {
    if (!ids.empty()) fronts.emplace_back(ids.begin(), ids.end());
  }
  size_t count = 0;
  for (;;) {
    bool have_min = false;
    GraphId min_id = 0;
    for (const auto& [it, end] : fronts) {
      if (it == end) continue;
      if (!have_min || *it < min_id) {
        min_id = *it;
        have_min = true;
      }
    }
    if (!have_min) break;
    ++count;
    for (auto& [it, end] : fronts) {
      while (it != end && *it == min_id) ++it;
    }
  }
  return count;
}

IdSet SimilarCandidates::AllFree() const {
  IdSet out;
  for (const auto& [level, ids] : free) out.UnionWith(ids);
  return out;
}

IdSet SimilarCandidates::AllVer() const {
  IdSet out;
  for (const auto& [level, ids] : ver) out.UnionWith(ids);
  return out;
}

SimilarCandidates SimilarCandidates::Restrict(GraphId begin,
                                              GraphId end) const {
  SimilarCandidates out;
  for (const auto& [level, ids] : free) {
    out.free.emplace(level, ids.Slice(begin, end));
  }
  for (const auto& [level, ids] : ver) {
    out.ver.emplace(level, ids.Slice(begin, end));
  }
  return out;
}

namespace {

// The Algorithm-4 level walk over any per-vertex resolver
// `IdSet resolve(const SpigVertex&)`.
template <typename ResolveFn>
SimilarCandidates DeriveSimilarCandidates(const SpigSet& spigs,
                                          size_t query_size, int sigma,
                                          const Deadline& deadline,
                                          bool* truncated,
                                          const ResolveFn& resolve) {
  SimilarCandidates out;
  const bool bounded = deadline.CanExpire();
  int q = static_cast<int>(query_size);
  int lowest = std::max(1, q - sigma);
  for (int level = q - 1; level >= lowest; --level) {
    if (bounded && deadline.Expired()) {
      if (truncated != nullptr) *truncated = true;
      break;
    }
    IdSet free_ids;
    IdSet ver_ids;
    spigs.ForEachVertexAtLevel(
        level, [&](const Spig&, const SpigVertex& v) {
          IdSet& target =
              v.frag.IsFrequent() || v.frag.IsDif() ? free_ids : ver_ids;
          target.UnionWith(resolve(v));
        });
    ver_ids.SubtractWith(free_ids);  // Algorithm 4 line 7
    out.free.emplace(level, std::move(free_ids));
    out.ver.emplace(level, std::move(ver_ids));
  }
  return out;
}

}  // namespace

SimilarCandidates SimilarSubCandidates(const SpigSet& spigs,
                                       size_t query_size, int sigma,
                                       const ActionAwareIndexes& indexes,
                                       bool use_cache,
                                       const Deadline& deadline,
                                       bool* truncated) {
  return DeriveSimilarCandidates(
      spigs, query_size, sigma, deadline, truncated,
      [&](const SpigVertex& v) -> IdSet {
        return use_cache ? CachedSubCandidates(v, indexes)
                         : ExactSubCandidates(v, indexes);
      });
}

SimilarCandidates SimilarSubCandidates(const SpigSet& spigs,
                                       size_t query_size, int sigma,
                                       const IndexShard& shard,
                                       const Deadline& deadline,
                                       bool* truncated) {
  return DeriveSimilarCandidates(
      spigs, query_size, sigma, deadline, truncated,
      [&](const SpigVertex& v) -> IdSet {
        return ExactSubCandidates(v, shard);
      });
}

}  // namespace prague
