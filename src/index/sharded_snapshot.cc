#include "index/sharded_snapshot.h"

#include <algorithm>

namespace prague {

IndexShard::IndexShard(const DatabaseSnapshot& base, GraphId begin,
                       GraphId end, size_t ordinal)
    : begin_(begin), end_(end), ordinal_(ordinal) {
  const A2FIndex& a2f = base.indexes().a2f;
  const A2IIndex& a2i = base.indexes().a2i;
  a2f_.reserve(a2f.VertexCount());
  for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
    a2f_.push_back(a2f.FsgIds(id).Slice(begin, end));
  }
  a2i_.reserve(a2i.EntryCount());
  for (A2iId id = 0; id < a2i.EntryCount(); ++id) {
    a2i_.push_back(a2i.FsgIds(id).Slice(begin, end));
  }
}

ShardedSnapshot::Ptr ShardedSnapshot::Make(SnapshotPtr base, size_t shards) {
  const size_t n = base->db().size();
  const size_t count = std::max<size_t>(1, std::min(shards, std::max<size_t>(1, n)));
  auto view = std::shared_ptr<ShardedSnapshot>(new ShardedSnapshot());
  view->base_ = std::move(base);
  view->shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Even split: shard i owns [i*n/count, (i+1)*n/count).
    GraphId begin = static_cast<GraphId>(i * n / count);
    GraphId end = static_cast<GraphId>((i + 1) * n / count);
    view->shards_.push_back(std::shared_ptr<const IndexShard>(
        new IndexShard(*view->base_, begin, end, i)));
  }
  return view;
}

ShardedSnapshot::Ptr ShardedSnapshot::Append(const Ptr& prior,
                                             SnapshotPtr next) {
  const size_t count = prior->shard_count();
  const size_t old_size = prior->base()->db().size();
  const size_t new_size = next->db().size();
  const GraphId last_begin = prior->shard(count - 1).begin();
  const bool pure_extension = new_size >= old_size;
  const bool last_too_fat =
      count > 1 && (new_size - last_begin) * count > 2 * new_size;
  if (!pure_extension || last_too_fat) return Make(std::move(next), count);

  auto view = std::shared_ptr<ShardedSnapshot>(new ShardedSnapshot());
  view->base_ = std::move(next);
  view->shards_.reserve(count);
  // Interior ranges end at or below old_size; appends only add ids >=
  // old_size to FSG sets, so those slices are byte-for-byte unchanged and
  // the shard objects can be shared with the prior view.
  for (size_t i = 0; i + 1 < count; ++i) {
    view->shards_.push_back(prior->shard_ptr(i));
  }
  view->shards_.push_back(std::shared_ptr<const IndexShard>(new IndexShard(
      *view->base_, last_begin, static_cast<GraphId>(new_size), count - 1)));
  return view;
}

}  // namespace prague
