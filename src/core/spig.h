// Spindle-shaped graphs (SPIGs) — Section V, Definition 4.
//
// For every edge eℓ the user draws, a SPIG Sℓ records *every* connected
// subgraph of the query fragment that contains eℓ, one vertex per edge
// subset, organized into levels by subgraph size. Each vertex carries the
// subgraph's CAM code, its Edge List (the formulation ids of its edges)
// and a Fragment List tying it to the action-aware indexes:
//
//   * freqId  — its a2fId, if the subgraph is a frequent fragment;
//   * difId   — its a2iId, if it is a discriminative infrequent fragment;
//   * Φ       — otherwise (NIF), the a2fIds of its frequent
//               (size-1)-edge subgraphs;
//   * Υ       — and the a2iIds of *all* its DIF subgraphs.
//
// Fragment Lists are inherited (Algorithm 2): a vertex pulls Φ/Υ material
// from its in-SPIG parents (the size-1 subgraphs containing eℓ) and from
// the g−eℓ vertex, which lives in the earlier SPIG of that subgraph's
// largest formulation id — no index decomposition probing is ever needed.

#ifndef PRAGUE_CORE_SPIG_H_
#define PRAGUE_CORE_SPIG_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/visual_query.h"
#include "graph/canonical.h"
#include "graph/graph.h"
#include "index/action_aware_index.h"
#include "util/deadline.h"
#include "util/id_set.h"
#include "util/result.h"

namespace prague {

class ThreadPool;

/// \brief The Fragment List Lfrag(g) of a SPIG vertex (Definition 4).
struct FragmentList {
  std::optional<A2fId> freq_id;   ///< set iff g ∈ A2F
  std::optional<A2iId> dif_id;    ///< set iff g ∈ A2I
  std::vector<A2fId> phi;         ///< Φ(g): frequent (|g|−1)-subgraph ids
  std::vector<A2iId> upsilon;     ///< Υ(g): all DIF subgraph ids

  /// \brief Frequent fragment?
  bool IsFrequent() const { return freq_id.has_value(); }
  /// \brief Discriminative infrequent fragment?
  bool IsDif() const { return dif_id.has_value(); }
  /// \brief Non-discriminative infrequent fragment (neither indexed)?
  bool IsNif() const { return !IsFrequent() && !IsDif(); }
};

/// \brief One SPIG vertex: a connected subgraph of the query containing eℓ.
struct SpigVertex {
  /// Edge List LE(g): formulation ids of the subgraph's edges.
  FormulationMask edge_list = 0;
  /// The materialized subgraph g (node ids local to this fragment).
  Graph fragment;
  /// cam(g): the canonical code.
  CanonicalCode code;
  /// Lfrag(g).
  FragmentList frag;

  /// Memoized Algorithm-3 candidate set (see core/candidates.h —
  /// CachedSubCandidates). Valid while `frag` is unchanged: the candidate
  /// set depends only on the Fragment List and the (immutable during a
  /// session) indexes, so it survives edge deletions untouched and is
  /// reset only when RefreshForRelabel rewrites the fragment. Mutable
  /// because caching happens under const access; candidate generation is
  /// single-threaded (only SPIG *construction* is parallel).
  mutable IdSet cand_cache;
  mutable bool cand_cached = false;

  /// \brief Level = |g| in edges.
  int Level() const { return __builtin_popcountll(edge_list); }
};

/// \brief The SPIG Sℓ for one drawn edge.
class Spig {
 public:
  /// \brief Formulation id ℓ of the edge this SPIG belongs to.
  FormulationId ell() const { return ell_; }

  /// \brief Vertices at \p level (1-based; empty above the top).
  const std::vector<SpigVertex>& Level(int level) const;
  /// \brief Number of populated levels (= size of the query fragment when
  /// this SPIG was built, until deletions shrink it).
  int MaxLevel() const { return static_cast<int>(levels_.size()) - 1; }
  /// \brief Total vertex count.
  size_t VertexCount() const;

  /// \brief Vertex with the exact Edge List \p mask, or nullptr.
  const SpigVertex* FindByEdgeList(FormulationMask mask) const;

  /// \brief Source vertex (level 1, the edge eℓ itself).
  const SpigVertex& Source() const { return levels_[1][0]; }

  /// \brief Removes every vertex whose Edge List contains eℓd
  /// (Algorithm 6, lines 13-14).
  void RemoveVerticesWithEdge(FormulationId ell_d);

  /// \brief Approximate heap footprint.
  size_t ByteSize() const;

 private:
  friend class SpigSet;

  FormulationId ell_ = 0;
  std::vector<std::vector<SpigVertex>> levels_;  // [0] unused
  std::unordered_map<FormulationMask, std::pair<int, int>> by_mask_;
};

/// \brief The SPIG set S: one SPIG per alive drawn edge, plus the global
/// operations PRAGUE's algorithms run on it.
class SpigSet {
 public:
  SpigSet() = default;

  /// \brief Algorithm 2 (SpigConstruct): builds Sℓ for the new edge eℓ of
  /// \p query and inserts it. Fragment Lists are resolved against
  /// \p indexes with inheritance from in-SPIG parents and earlier SPIGs.
  ///
  /// Must be called exactly once per drawn edge, in formulation order.
  ///
  /// When \p pool is non-null (and has > 1 worker), the per-vertex work of
  /// each level — subgraph extraction, canonical code, A2F/A2I lookups,
  /// and NIF Φ/Υ inheritance — fans out across the pool, with a barrier
  /// between levels so inheritance always reads a completed level−1.
  /// Vertices are written into pre-sized slots in enumeration order, so
  /// the resulting SPIG (levels, by-mask lookups, Fragment Lists) is
  /// bit-identical to the sequential build.
  ///
  /// A half-built SPIG would poison every later inheritance step, so a
  /// bounded \p deadline aborts cleanly: on expiry the build is discarded
  /// before insertion and Status::DeadlineExceeded is returned — the set
  /// is unchanged and the step can be retried with a larger budget.
  Result<const Spig*> AddForNewEdge(const VisualQuery& query,
                                    FormulationId ell,
                                    const ActionAwareIndexes& indexes,
                                    ThreadPool* pool = nullptr,
                                    const Deadline& deadline = Deadline());

  /// \brief Algorithm 6 (lines 12-14): drops S_d and every vertex of later
  /// SPIGs whose Edge List contains e_d.
  void RemoveForDeletedEdge(FormulationId ell_d);

  /// \brief Node-relabel support (the paper's footnote 5 treats relabeling
  /// as delete+insert; doing it in place is strictly cheaper): re-extracts
  /// the fragment, canonical code, and Fragment List of every vertex whose
  /// Edge List touches one of \p affected_edges. Fragment Lists are
  /// recomputed by direct enumeration + index probing (inheritance order
  /// is no longer available after the fact).
  Status RefreshForRelabel(const VisualQuery& query,
                           FormulationMask affected_edges,
                           const ActionAwareIndexes& indexes);

  /// \brief Drops all SPIGs.
  void Clear() { spigs_.clear(); }

  /// \brief Drops every vertex's memoized candidate set (cold-path
  /// benchmarking, and required after external index maintenance mutates
  /// the FSG id sets mid-session).
  void InvalidateCandidateCaches() const;

  /// \brief The SPIG for eℓ, or nullptr.
  const Spig* Find(FormulationId ell) const;

  /// \brief The vertex whose Edge List is exactly \p mask, or nullptr.
  /// Routed to the SPIG of the mask's highest formulation id — every
  /// connected subset lives in exactly one SPIG.
  const SpigVertex* FindVertex(FormulationMask mask) const;

  /// \brief Invokes \p fn on every vertex at \p level across all SPIGs.
  template <typename Fn>
  void ForEachVertexAtLevel(int level, Fn&& fn) const {
    for (const auto& [ell, spig] : spigs_) {
      if (level > spig.MaxLevel()) continue;
      for (const SpigVertex& v : spig.Level(level)) fn(spig, v);
    }
  }

  /// \brief Total number of vertices at \p level across all SPIGs — the
  /// N(k) of Lemma 1.
  size_t VertexCountAtLevel(int level) const;

  /// \brief Total vertex count across all SPIGs.
  size_t TotalVertexCount() const;
  /// \brief Number of SPIGs.
  size_t SpigCount() const { return spigs_.size(); }
  /// \brief Approximate heap footprint.
  size_t ByteSize() const;

 private:
  // Locates the Fragment List of the (already built) vertex for `mask`.
  const SpigVertex* FindVertexInternal(FormulationMask mask) const;

  // Resolves one vertex of the SPIG under construction (fragment, code,
  // Fragment List). Reads only completed earlier levels / SPIGs; safe to
  // run concurrently across the vertices of one level.
  void BuildVertex(const VisualQuery& query, const Graph& q,
                   EdgeId graph_edge, EdgeMask gmask, const Spig& spig,
                   const ActionAwareIndexes& indexes, SpigVertex* v) const;

  std::unordered_map<FormulationId, Spig> spigs_;
};

}  // namespace prague

#endif  // PRAGUE_CORE_SPIG_H_
