// PragueClient — blocking C++ client for the PRAGUE wire protocol.
//
// Mirrors the session API one call per command: Connect, Open, AddEdge /
// DeleteEdge (edge-at-a-time formulation, exactly like the GUI), Run,
// Stats, Close. Calls are lock-step — each sends one request frame and
// blocks for its reply — with one exception: Cancel() only *sends* (the
// server never replies to CANCEL), so it is safe to call from a second
// thread while the first is blocked inside Run(); the pending Run then
// returns early with RunReply::truncated set.
//
// A client drives one connection and is not otherwise thread-safe: apart
// from Cancel(), do not call methods concurrently.

#ifndef PRAGUE_SERVER_PRAGUE_CLIENT_H_
#define PRAGUE_SERVER_PRAGUE_CLIENT_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "server/wire.h"
#include "util/result.h"
#include "util/status.h"

namespace prague {

/// \brief Blocking client for one server connection.
class PragueClient {
 public:
  PragueClient() = default;
  ~PragueClient();

  PragueClient(const PragueClient&) = delete;
  PragueClient& operator=(const PragueClient&) = delete;

  /// \brief Connects to \p host:\p port (\p host is an IPv4 address or
  /// "localhost").
  Status Connect(const std::string& host, uint16_t port);
  /// \brief True while the socket is open.
  bool connected() const { return fd_ >= 0; }
  /// \brief Drops the connection without the CLOSE handshake.
  void Disconnect();

  /// \brief OPEN: starts the connection's session. \p timeout_ms >= 0
  /// sets this session's Run() budget (0 = unbounded); -1 keeps the
  /// server default.
  Result<OpenReply> Open(int64_t timeout_ms = -1);
  /// \brief ADD_EDGE: one formulation step. \p u and \p v are caller-
  /// chosen node handles; \p u_label / \p v_label are node label names
  /// from the database dictionary.
  Result<StepReply> AddEdge(uint32_t u, const std::string& u_label,
                            uint32_t v, const std::string& v_label,
                            Label edge_label = 0);
  /// \brief DELETE_EDGE: removes the edge between two node handles.
  Result<StepReply> DeleteEdge(uint32_t u, uint32_t v);
  /// \brief RUN: final results. \p limit caps how many matches the reply
  /// lists (0 = all; RunReply::total_matches is always the full count).
  Result<RunReply> Run(uint64_t limit = 0);
  /// \brief CANCEL: fire-and-forget; cancels a RUN in flight on this
  /// connection. Callable from another thread while Run() blocks.
  Status Cancel();
  /// \brief STATS: manager-wide counters plus open sessions and their
  /// pinned versions.
  Result<StatsReply> Stats();
  /// \brief METRICS: the server's full Prometheus text exposition.
  Result<std::string> Metrics();
  /// \brief CLOSE handshake, then drops the connection.
  Status Close();

  /// \brief Session id / pinned version from the last successful Open().
  uint64_t session_id() const { return session_id_; }
  uint64_t session_version() const { return session_version_; }

 private:
  Status Send(const WireCommand& command);
  // Send + blocking receive of the one reply frame.
  Result<std::string> RoundTrip(const WireCommand& command);

  int fd_ = -1;
  // Guards frame writes so Cancel() can interleave with a blocked Run().
  std::mutex write_mu_;
  uint64_t session_id_ = 0;
  uint64_t session_version_ = 0;
};

}  // namespace prague

#endif  // PRAGUE_SERVER_PRAGUE_CLIENT_H_
