#include "storage/fs_util.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace prague::storage {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}

}  // namespace

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status EnsureDir(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty directory path");
  // Create each prefix in turn; EEXIST at any level is fine.
  for (size_t i = 1; i <= dir.size(); ++i) {
    if (i != dir.size() && dir[i] != '/') continue;
    std::string prefix = dir.substr(0, i);
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", prefix);
    }
  }
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IOError(dir + " is not a directory");
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(path + " does not exist");
    return Errno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir", dir);
  Status st = Status::OK();
  if (::fsync(fd) != 0) st = Errno("fsync dir", dir);
  ::close(fd);
  return st;
}

Status WriteFileDurable(const std::string& dir, const std::string& name,
                        const std::string& contents) {
  const std::string tmp_path = JoinPath(dir, name + ".tmp");
  const std::string final_path = JoinPath(dir, name);
  int fd = ::open(tmp_path.c_str(),
                  O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", tmp_path);
  size_t off = 0;
  while (off < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("write", tmp_path);
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return st;
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status st = Errno("fsync", tmp_path);
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return st;
  }
  if (::close(fd) != 0) return Errno("close", tmp_path);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    Status st = Errno("rename", tmp_path);
    ::unlink(tmp_path.c_str());
    return st;
  }
  return SyncDir(dir);
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound(path + " does not exist");
    return Errno("stat", path);
  }
  return static_cast<uint64_t>(st.st_size);
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* ent = ::readdir(d)) {
    std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat(JoinPath(dir, name).c_str(), &st) == 0 &&
        S_ISREG(st.st_mode)) {
      names.push_back(std::move(name));
    }
  }
  ::closedir(d);
  return names;
}

}  // namespace prague::storage
