// Shard-parallel RUN phases: scatter per-shard work over a ShardedSnapshot
// on a (shared) thread pool, gather per-shard partial results, and merge
// them into exactly what the single-threaded path would have produced.
//
// The merge discipline is the HistogramSnapshot one — partial results
// combine exactly, never approximately:
//  - Exact verification scans shard ranges independently; concatenating
//    the per-shard match lists in shard order IS ascending graph-id order,
//    because shards own contiguous disjoint ranges.
//  - Similarity generation emits per shard in the canonical bucket order
//    (distance ascending; Rfree before Rver within a distance); the merge
//    walks buckets in that order and concatenates shard contributions in
//    shard order within each bucket — ascending graph id again.
//  - Truncation stays prefix-consistent: each truncated shard reports the
//    bucket its cut landed in (SimilarGenCut); the merge emits everything
//    strictly before the earliest cut, plus — within the cut bucket — the
//    contributions of shards before the cut shard and the cut shard's own
//    emitted prefix, then stops. That is a prefix of the unbounded merged
//    order, exactly like a sequential cut.
//
// Deadlines/cancellation propagate into every shard task (the same
// Deadline object is polled from all of them — it is const and
// thread-safe), so one CANCEL reaches all shards of a run mid-flight.

#ifndef PRAGUE_CORE_SHARD_EXEC_H_
#define PRAGUE_CORE_SHARD_EXEC_H_

#include <vector>

#include "core/candidates.h"
#include "core/results.h"
#include "core/spig.h"
#include "graph/graph_database.h"
#include "index/sharded_snapshot.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/id_set.h"

namespace prague {

/// \brief One shard's contribution to a similarity run.
struct ShardSimilarPartial {
  /// Matches in the shard's own canonical order (bucket order; ascending
  /// gid within a bucket).
  std::vector<SimilarMatch> matches;
  SimilarGenStats stats;
  bool truncated = false;
  /// Bucket the cut landed in (valid when truncated). Everything the
  /// shard emitted strictly before this bucket is complete; its matches
  /// inside the bucket are the emitted prefix.
  SimilarGenCut cut;
  /// Phase the cut landed in: kSimilarCandidates when the per-shard
  /// Algorithm-4 walk was cut (the cut bucket is then the first underived
  /// level), kSimilarGeneration for a generation cut.
  RunPhase cut_phase = RunPhase::kNone;
  /// Task wall time (feeds the imbalance metric).
  double seconds = 0;
};

/// \brief Merges per-shard similarity partials into the global result.
/// Pure function of its inputs — exposed so the determinism property tests
/// can drive it directly. \p stats sums the work of every shard (matches
/// the merge drops were still verified); \p truncated/\p cut_phase report
/// the earliest cut when one exists.
std::vector<SimilarMatch> MergeShardSimilar(
    const std::vector<ShardSimilarPartial>& partials, size_t top_k,
    SimilarGenStats* stats, bool* truncated, RunPhase* cut_phase);

/// \brief ExactVerification scattered over \p plan's shards: per shard a
/// sequential scan of rq ∩ shard-range, gathered in shard (= graph-id)
/// order with prefix-consistent truncation at the first truncated shard.
/// Bit-identical to ExactVerification(q, rq, ...) when nothing truncates.
/// Appends per-shard "shard-exact-verification" spans to \p trace. A task
/// failure (escaped exception, captured by the TaskGroup) is reported
/// through \p error; the caller should treat the results as unusable.
std::vector<GraphId> ShardedExactVerification(
    const Graph& q, const IdSet& rq, const GraphDatabase& db,
    const ShardPlan& plan, const Deadline& deadline,
    VerificationOutcome* outcome, obs::RunTrace* trace = nullptr,
    Status* error = nullptr);

/// \brief The similarity path scattered over \p plan's shards. Each shard
/// task derives its candidates from its own index slices (Algorithm 4 on
/// the shard — or restricts \p formulation_cands when non-null, the
/// simFlag warm path) and immediately generates its matches against the
/// shard's slice of \p exact_rq, keeping candidate state shard-local until
/// the final merge. Results are bit-identical to the unsharded
/// SimilarSubCandidates + SimilarResultsGen composition; truncation is
/// merged prefix-consistently (see MergeShardSimilar). Appends per-shard
/// "shard-similar" spans to \p trace.
std::vector<SimilarMatch> ShardedSimilarRun(
    const Graph& q, const SpigSet& spigs,
    const SimilarCandidates* formulation_cands, int sigma,
    const GraphDatabase& db, const IdSet* exact_rq, SimilarGenStats* stats,
    size_t top_k, bool filtering_verifier, const Deadline& deadline,
    const ShardPlan& plan, bool* truncated, RunPhase* cut_phase,
    obs::RunTrace* trace = nullptr, Status* error = nullptr);

}  // namespace prague

#endif  // PRAGUE_CORE_SHARD_EXEC_H_
