// GUI session simulator: SRT accounting, step traces, scripted
// modifications, and PRAGUE-vs-GBLENDER protocol parity.

#include <gtest/gtest.h>

#include "datasets/query_workload.h"
#include "gui/session_simulator.h"
#include "test_fixtures.h"

namespace prague {
namespace {

TEST(SimulatorTest, PragueContainmentSession) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 12);
  Result<VisualQuerySpec> spec = workload.ContainmentQuery(6, "sim");
  ASSERT_TRUE(spec.ok());
  SessionSimulator simulator(fixture.snapshot);
  Result<SimulationResult> result = simulator.RunPrague(*spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps.size(), spec->sequence.size());
  EXPECT_FALSE(result->similarity);
  EXPECT_FALSE(result->results.exact.empty());
  EXPECT_GE(result->srt_seconds, 0.0);
  EXPECT_GT(result->formulation_engine_seconds, 0.0);
}

TEST(SimulatorTest, SrtExcludesHiddenWork) {
  // With a generous latency budget nothing overflows, so SRT equals the
  // Run() time alone.
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 13);
  Result<VisualQuerySpec> spec = workload.ContainmentQuery(6, "srt");
  ASSERT_TRUE(spec.ok());
  SimulationConfig config;
  config.latency.edge_seconds = 1e6;
  SessionSimulator simulator(fixture.snapshot, config);
  Result<SimulationResult> result = simulator.RunPrague(*spec);
  ASSERT_TRUE(result.ok());
  for (const StepTrace& t : result->steps) {
    EXPECT_EQ(t.overflow_seconds, 0.0);
  }
  EXPECT_DOUBLE_EQ(result->srt_seconds, result->run_stats.srt_seconds);
}

TEST(SimulatorTest, ZeroLatencyChargesEverything) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 14);
  Result<VisualQuerySpec> spec = workload.ContainmentQuery(5, "zl");
  ASSERT_TRUE(spec.ok());
  SimulationConfig config;
  config.latency.edge_seconds = 0.0;
  SessionSimulator simulator(fixture.snapshot, config);
  Result<SimulationResult> result = simulator.RunPrague(*spec);
  ASSERT_TRUE(result.ok());
  double overflow = 0;
  for (const StepTrace& t : result->steps) {
    EXPECT_DOUBLE_EQ(t.overflow_seconds, t.engine_seconds);
    overflow += t.overflow_seconds;
  }
  EXPECT_NEAR(result->srt_seconds, result->run_stats.srt_seconds + overflow,
              1e-9);
}

TEST(SimulatorTest, ScriptedModificationDeletesEdge) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 15);
  Result<VisualQuerySpec> spec = workload.ContainmentQuery(6, "mod");
  ASSERT_TRUE(spec.ok());
  SessionSimulator simulator(fixture.snapshot);
  // Delete some edge after the last step, as the paper's Table V protocol
  // does. Early edges may be bridges (deletion would disconnect), so scan
  // until a deletable one is found.
  size_t last = spec->sequence.size();
  for (FormulationId victim = 1;
       victim <= static_cast<FormulationId>(last); ++victim) {
    std::vector<ScriptedModification> mods = {{last, victim}};
    Result<SimulationResult> result = simulator.RunPrague(*spec, mods);
    if (!result.ok()) continue;
    bool saw_deletion = false;
    for (const StepTrace& t : result->steps) {
      if (t.deletion) {
        saw_deletion = true;
        EXPECT_EQ(t.edge, victim);
      }
    }
    EXPECT_TRUE(saw_deletion);
    EXPECT_EQ(result->steps.size(), spec->sequence.size() + 1);
    return;
  }
  FAIL() << "no deletable edge found";
}

TEST(SimulatorTest, GBlenderSessionMatchesPragueOnContainment) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 16);
  Result<VisualQuerySpec> spec = workload.ContainmentQuery(6, "par");
  ASSERT_TRUE(spec.ok());
  SessionSimulator simulator(fixture.snapshot);
  Result<SimulationResult> prg = simulator.RunPrague(*spec);
  Result<SimulationResult> gbr = simulator.RunGBlender(*spec);
  ASSERT_TRUE(prg.ok());
  ASSERT_TRUE(gbr.ok());
  EXPECT_EQ(prg->results.exact, gbr->results.exact);
}

TEST(SimulatorTest, SimilarityQuerySessionProducesRankedResults) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 18);
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(6, 1, "sq");
  ASSERT_TRUE(spec.ok());
  SimulationConfig config;
  config.prague.sigma = 3;
  SessionSimulator simulator(fixture.snapshot, config);
  Result<SimulationResult> result = simulator.RunPrague(*spec);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->similarity);
  int last = 0;
  for (const SimilarMatch& m : result->results.similar) {
    EXPECT_GE(m.distance, last);
    last = m.distance;
  }
}

}  // namespace
}  // namespace prague
