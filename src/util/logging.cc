#include "util/logging.h"

#include <cstdio>

namespace prague {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  // Emit the whole line (terminator included) with a single stderr write so
  // lines from concurrent threads — e.g. the server's connection handlers —
  // never shear mid-line the way `stream << line << endl` can.
  stream_ << '\n';
  const std::string line = stream_.str();
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace internal

}  // namespace prague
