// SPIG cost scaling (Section V-B analysis): how SPIG-set size and
// per-step construction/candidate time grow with query size |q|, and how
// much the parallel SPIG build (PragueConfig::spig_threads) and the
// per-vertex candidate memo (PragueConfig::candidate_memo) buy back.
//
// The worst case is C(n-1, k-1) vertices per level (all edges distinct);
// real queries share labels, keeping counts far below that. This bench
// sweeps |q| = 4..12 over sampled AIDS-like queries with similarity mode
// forced on (so every step maintains Algorithm-4 candidates), at
// threads ∈ {1, 2, 4} and warm (memoized) vs cold (from-scratch)
// candidate refresh. Per-configuration numbers are appended to
// BENCH_spig.json (override the path with PRAGUE_BENCH_JSON) so later
// PRs can track the perf trajectory; the Lemma-1 level bound is
// re-checked at runtime as before.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/prague_session.h"

using namespace prague;
using namespace prague::bench;

namespace {

size_t Binomial(size_t n, size_t k) {
  if (k > n) return 0;
  size_t r = 1;
  for (size_t i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

struct RunResult {
  size_t vertices = 0;
  double spig_total = 0, spig_worst = 0;
  double cand_total = 0, cand_worst = 0;
};

// Replays `spec` through a session with the given knobs, forcing
// similarity mode after the first edge so each later step pays the full
// Algorithm-4 candidate refresh. Only AddEdge steps are timed.
RunResult Replay(const Workbench& bench, const VisualQuerySpec& spec,
                 size_t threads, bool warm_cache, bool check_lemma1) {
  PragueConfig config;
  config.spig_threads = threads;
  config.candidate_memo = warm_cache;
  PragueSession session(bench.snapshot, config);
  std::vector<NodeId> node_map(spec.graph.NodeCount(), kInvalidNode);
  RunResult out;
  bool sim_forced = false;
  for (EdgeId e : spec.sequence) {
    const Edge& edge = spec.graph.GetEdge(e);
    for (NodeId n : {edge.u, edge.v}) {
      if (node_map[n] == kInvalidNode) {
        node_map[n] = session.AddNode(spec.graph.NodeLabel(n));
      }
    }
    Result<StepReport> report =
        session.AddEdge(node_map[edge.u], node_map[edge.v], edge.label);
    if (!report.ok()) std::abort();
    out.spig_total += report->spig_seconds;
    out.spig_worst = std::max(out.spig_worst, report->spig_seconds);
    out.cand_total += report->candidate_seconds;
    out.cand_worst = std::max(out.cand_worst, report->candidate_seconds);
    if (!sim_forced) {
      if (!session.EnableSimilarity().ok()) std::abort();
      sim_forced = true;
    }
  }
  out.vertices = session.spigs().TotalVertexCount();
  if (check_lemma1) {
    size_t edges = session.query().EdgeCount();
    for (size_t k = 1; k <= edges; ++k) {
      if (session.spigs().VertexCountAtLevel(static_cast<int>(k)) >
          Binomial(edges, k)) {
        std::fprintf(stderr, "Lemma 1 violated at level %zu!\n", k);
        std::exit(1);
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  Banner("SPIG scaling: parallel build + memoized candidates vs |q|",
         "AIDS-like dataset; threads in {1,2,4}, warm vs cold candidates");
  Workbench bench = BuildAidsWorkbench(AidsGraphCount() / 2);
  WorkloadGenerator workload(&bench.db, 99);

  BenchJsonWriter json("BENCH_spig.json");
  if (!json.ok()) return 1;

  TablePrinter table({"|q|", "vertices", "spig t1 (ms)", "spig t4 (ms)",
                      "spig x", "cand cold (ms)", "cand warm (ms)",
                      "cand x"});
  const std::vector<size_t> kThreads = {1, 2, 4};
  for (size_t edges = 4; edges <= 12; ++edges) {
    Result<VisualQuerySpec> spec =
        workload.ContainmentQuery(edges, "s" + std::to_string(edges));
    if (!spec.ok()) {
      std::fprintf(stderr, "no host graph with %zu edges; stopping\n", edges);
      break;
    }
    double spig_t1 = 0, spig_t4 = 0, cand_cold = 0, cand_warm = 0;
    size_t vertices = 0;
    for (size_t threads : kThreads) {
      for (bool warm : {false, true}) {
        RunResult r =
            Replay(bench, *spec, threads, warm,
                   /*check_lemma1=*/threads == 1 && warm);
        vertices = r.vertices;
        if (threads == 1 && !warm) cand_cold = r.cand_total;
        if (threads == 1 && warm) {
          spig_t1 = r.spig_total;
          cand_warm = r.cand_total;
        }
        if (threads == 4 && warm) spig_t4 = r.spig_total;
        char record[384];
        std::snprintf(
            record, sizeof(record),
            "{\"query_edges\": %zu, \"threads\": %zu, "
            "\"cache\": \"%s\", \"vertices\": %zu, "
            "\"spig_seconds_total\": %.9f, \"spig_seconds_worst\": %.9f, "
            "\"candidate_seconds_total\": %.9f, "
            "\"candidate_seconds_worst\": %.9f}",
            edges, threads, warm ? "warm" : "cold", r.vertices, r.spig_total,
            r.spig_worst, r.cand_total, r.cand_worst);
        json.Add(record);
      }
    }
    table.AddRow(
        {std::to_string(edges), std::to_string(vertices), FmtMs(spig_t1),
         FmtMs(spig_t4), Fmt(spig_t4 > 0 ? spig_t1 / spig_t4 : 0, 2) + "x",
         FmtMs(cand_cold), FmtMs(cand_warm),
         Fmt(cand_warm > 0 ? cand_cold / cand_warm : 0, 2) + "x"});
  }
  table.Print();
  std::printf(
      "\nwrote %s. spig x = sequential/parallel(4 threads) build time "
      "(gains need multi-core hardware); cand x = cold/warm refresh — the "
      "memo only recomputes vertices created by the current step.\n",
      json.path().c_str());
  return 0;
}
