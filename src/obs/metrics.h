// Engine-wide metrics: lock-free counters/gauges, a log-scale latency
// histogram, and a process-wide registry with Prometheus-style text
// exposition.
//
// The hot path is the whole design constraint. PRAGUE's pitch is a bounded
// SRT measured in microseconds-to-milliseconds, so the instrumentation that
// accounts for it must cost nothing in comparison: recording a sample is a
// handful of relaxed atomic adds — no locks, no heap allocation, no
// formatting. Registration (name → metric) takes a mutex, but it happens
// once per metric at startup; callers cache the returned pointer (metrics
// live forever in node-stable storage) and never touch the registry again.
//
// Reading is the cold side: Snapshot() and RenderPrometheus() walk the
// registry under its mutex and read every atomic. Because the writers are
// relaxed, a snapshot is not a single instant — counters may be mutually
// slightly stale — which is the standard contract for scrape-based metrics.

#ifndef PRAGUE_OBS_METRICS_H_
#define PRAGUE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prague::obs {

class LabeledCounter;    // obs/labels.h
class LabeledGauge;      // obs/labels.h
class LabeledHistogram;  // obs/labels.h

/// \brief Monotone event count. All operations are relaxed atomics — safe
/// from any thread, free of locks and allocations.
class Counter {
 public:
  /// \brief Adds \p n (default 1).
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// \brief Current count.
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  /// \brief Zeroes the count (tests and bench resets only — Prometheus
  /// counters are otherwise monotone).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous signed level (open sessions, queue depth).
class Gauge {
 public:
  /// \brief Adds \p delta (may be negative).
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// \brief Sets the level outright.
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  /// \brief Current level.
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed bucket count shared by Histogram and HistogramSnapshot. Bucket 0
/// holds exact zeros; bucket i (1 ≤ i ≤ 38) holds [2^(i-1), 2^i); the last
/// bucket is the overflow for values ≥ 2^38 — in microseconds that is
/// ≈ 76 hours, far beyond any latency this engine can produce.
inline constexpr size_t kHistogramBuckets = 40;

/// \brief Point-in-time copy of a histogram: plain integers, mergeable,
/// with quantile extraction. Merging shard snapshots is exact — bucket
/// counts and sums add — so N thread-local histograms merged equal one
/// histogram fed the same samples (the property tests pin this down).
struct HistogramSnapshot {
  std::array<uint64_t, kHistogramBuckets> buckets{};
  uint64_t count = 0;  ///< total samples (= sum of buckets)
  uint64_t sum = 0;    ///< sum of recorded values

  bool operator==(const HistogramSnapshot&) const = default;

  /// \brief Adds \p other into this snapshot.
  void Merge(const HistogramSnapshot& other);

  /// \brief Value at quantile \p q in [0, 1] (0.5 = p50), linearly
  /// interpolated inside the containing bucket. 0 when empty. Log-scale
  /// buckets bound the relative error by the bucket width (a factor of 2).
  double Quantile(double q) const;

  /// \brief Mean of the recorded values (exact — the sum is exact).
  double Mean() const;
};

/// \brief Lock-free fixed-bucket log-scale histogram for latencies.
///
/// Record() is two relaxed fetch_adds on a power-of-two bucket index —
/// no locks, no allocation, no floating point. Units are whatever the
/// caller records; the engine uses microseconds (`*_us` metric names).
class Histogram {
 public:
  /// \brief Records one sample. Safe from any thread.
  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// \brief Copies the current state (see the relaxed-snapshot caveat in
  /// the file comment).
  HistogramSnapshot Snapshot() const;

  /// \brief Zeroes all buckets (tests and bench resets only).
  void Reset();

  /// \brief Bucket index for \p value: 0 for 0, else bit_width clamped to
  /// the overflow bucket.
  static size_t BucketIndex(uint64_t value) {
    if (value == 0) return 0;
    size_t w = static_cast<size_t>(std::bit_width(value));
    return w < kHistogramBuckets - 1 ? w : kHistogramBuckets - 1;
  }

  /// \brief Inclusive upper bound of bucket \p i ("le" label); the
  /// overflow bucket has none (rendered as +Inf).
  static uint64_t BucketUpperBound(size_t i) {
    return i == 0 ? 0 : (uint64_t{1} << i) - 1;
  }
  /// \brief Inclusive lower bound of bucket \p i.
  static uint64_t BucketLowerBound(size_t i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// \brief Shared per-run tally a session owner (SessionManager) wires into
/// PragueConfig so cumulative run counts survive session teardown — the
/// manager's weak registry forgets closed sessions, this does not.
struct RunTally {
  Counter runs;       ///< Run() calls completed
  Counter truncated;  ///< of those, cut short by a deadline/cancel
};

/// \brief Full registry state (cold-path read model). Labeled families
/// carry their label key plus the (value, state) series observed so far;
/// callback metrics are folded into the plain counter/gauge maps.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  struct LabeledCounterState {
    std::string label_key;
    std::vector<std::pair<std::string, uint64_t>> series;
  };
  struct LabeledGaugeState {
    std::string label_key;
    std::vector<std::pair<std::string, int64_t>> series;
  };
  struct LabeledHistogramState {
    std::string label_key;
    std::vector<std::pair<std::string, HistogramSnapshot>> series;
  };
  std::map<std::string, LabeledCounterState> labeled_counters;
  std::map<std::string, LabeledGaugeState> labeled_gauges;
  std::map<std::string, LabeledHistogramState> labeled_histograms;
};

/// \brief Prometheus text exposition of \p snap: `# TYPE` lines followed by
/// that metric's samples (labeled series grouped under one TYPE line,
/// histograms as cumulative `_bucket{le="..."}`/`_sum`/`_count`). Pure
/// formatting — callers take the snapshot wherever cheap (an event-loop
/// thread) and render wherever idle (a pool task, the exporter thread).
std::string RenderPrometheusText(const RegistrySnapshot& snap);

/// \brief Process-wide metric registry. Get*() registers on first use and
/// returns a stable pointer (metrics are never destroyed or moved); cache
/// it and record through it lock-free. Counter, gauge, and histogram names
/// are separate namespaces, but use distinct names anyway — Prometheus
/// exposition requires it.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \brief The process-wide instance (immortal).
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Labeled families (obs/labels.h): one metric name broken out over a
  /// bounded set of label values. \p max_series is fixed at registration;
  /// later calls with the same name return the existing family.
  LabeledCounter* GetLabeledCounter(std::string_view name,
                                    std::string_view label_key,
                                    size_t max_series = 16);
  LabeledGauge* GetLabeledGauge(std::string_view name,
                                std::string_view label_key,
                                size_t max_series = 16);
  LabeledHistogram* GetLabeledHistogram(std::string_view name,
                                        std::string_view label_key,
                                        size_t max_series = 16);

  /// \brief Registers a counter/gauge whose value is computed at Snapshot()
  /// time by \p fn. For values owned by layers the registry cannot link
  /// against (e.g. the logging rate limiters in util). \p fn must be
  /// thread-safe and cheap; it is called under the registry mutex.
  void RegisterCallbackCounter(std::string_view name,
                               std::function<uint64_t()> fn);
  void RegisterCallbackGauge(std::string_view name,
                             std::function<int64_t()> fn);

  /// \brief Copies every metric's current value.
  RegistrySnapshot Snapshot() const;

  /// \brief Prometheus text exposition: `# TYPE` lines, counter/gauge
  /// samples, and cumulative `_bucket{le="..."}`/`_sum`/`_count` series
  /// per histogram. Ends with a newline.
  std::string RenderPrometheus() const;

  /// \brief Zeroes every registered metric, keeping registrations (so
  /// cached pointers stay valid). Callback metrics are skipped — their
  /// owners hold the state. Tests only — the process-wide registry
  /// accumulates across test cases otherwise.
  void Reset();

 private:
  // std::map keeps node addresses stable across inserts and renders in
  // sorted order; unique_ptr pins each metric's address for cached raw
  // pointers. less<> enables string_view lookups without a temporary.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<LabeledCounter>, std::less<>>
      labeled_counters_;
  std::map<std::string, std::unique_ptr<LabeledGauge>, std::less<>>
      labeled_gauges_;
  std::map<std::string, std::unique_ptr<LabeledHistogram>, std::less<>>
      labeled_histograms_;
  std::map<std::string, std::function<uint64_t()>, std::less<>>
      callback_counters_;
  std::map<std::string, std::function<int64_t()>, std::less<>>
      callback_gauges_;
};

/// \brief Cached pointers to the engine-side metrics (sessions, runs,
/// SPIG/candidate/verification phases). One registry lookup per process.
struct EngineMetrics {
  Counter* runs_total;
  Counter* runs_truncated_total;
  Counter* step_deadline_total;      ///< formulation steps aborted by budget
  Counter* spig_steps_total;         ///< SPIG build/maintenance steps
  Counter* vf2_calls_total;
  Counter* nodes_expanded_total;
  Counter* candidates_pruned_total;  ///< candidates rejected by verification
  Counter* sessions_opened_total;
  Counter* snapshots_published_total;
  Gauge* sessions_open;
  Histogram* run_latency_us;
  Histogram* exact_verification_us;
  Histogram* similar_candidates_us;
  Histogram* similar_generation_us;
  Histogram* spig_build_us;
  Histogram* candidate_refresh_us;
  // Shard-parallel execution (core/shard_exec.h): scatter/gather phases of
  // runs on a partitioned snapshot.
  Counter* shard_runs_total;   ///< scatter/gather phases executed
  Counter* shard_tasks_total;  ///< per-shard tasks those phases spawned
  /// max/mean per-shard task time of one scatter, ×100 (100 = perfectly
  /// balanced). Persistent skew here means the contiguous partition no
  /// longer matches where the candidates live.
  Histogram* shard_imbalance_x100;
  Histogram* shard_merge_us;   ///< gather/merge time per scatter

  static EngineMetrics& Get();
};

/// \brief Cached pointers to the server-side metrics (connections, frames,
/// per-command counts, RUN execution latency, reactor internals).
struct ServerMetrics {
  Counter* connections_total;
  Counter* frames_total;
  Counter* protocol_errors_total;
  Counter* runs_truncated_total;
  Counter* slow_queries_total;
  Counter* event_loop_wakeups_total;  ///< eventfd wakeups across all loops
  Counter* cmd_open_total;
  Counter* cmd_add_edge_total;
  Counter* cmd_delete_edge_total;
  Counter* cmd_run_total;
  Counter* cmd_batch_run_total;
  Counter* cmd_append_total;
  Counter* cmd_cancel_total;
  Counter* cmd_stats_total;
  Counter* cmd_metrics_total;
  Counter* cmd_close_total;
  /// Admission control & load shedding (core/admission.h).
  Counter* admission_admitted_total;  ///< RUN bodies admitted to the pool
  Counter* admission_shed_total;      ///< requests (OPEN or RUN) refused BUSY
  Counter* accepts_shed_total;        ///< connections drained under EMFILE
  /// Connections closed because a slow reader let its outbound queue
  /// exceed the configured byte cap.
  Counter* write_queue_drops_total;
  Gauge* connections_open;    ///< currently connected clients
  Histogram* run_latency_us;  ///< RUN body as timed on the executor pool
  /// Outbound frames queued per reply send (0 = written inline without
  /// ever touching the queue — the healthy fast path).
  Histogram* write_queue_depth;
  /// Runs waiting in the deadline scheduler at each admission (depth seen
  /// by an arriving run; persistent growth = saturation).
  Histogram* sched_queue_depth;
  Histogram* batch_size;        ///< members per BATCH_RUN frame
  Histogram* batch_latency_us;  ///< whole-batch execution on the pool
  /// Per-tenant breakouts (`{tenant="..."}` families, obs/labels.h) with
  /// bounded cardinality: the first K tenants observed keep their own
  /// series, the rest share `other`. Populated by AdmissionController
  /// (admitted/shed) and the server RUN path (latency/truncated).
  LabeledCounter* tenant_admitted_total;
  LabeledCounter* tenant_shed_total;
  LabeledCounter* tenant_truncated_total;
  LabeledHistogram* tenant_run_latency_us;

  static ServerMetrics& Get();
};

}  // namespace prague::obs

#endif  // PRAGUE_OBS_METRICS_H_
