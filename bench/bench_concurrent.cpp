// Concurrent session throughput over the SessionManager: S sessions
// formulate and run containment queries in parallel, with and without a
// background appender publishing copy-on-write successors the whole time.
//
// What the snapshot layer promises: readers never pause for the writer —
// per-query latency with the appender running should stay close to the
// appender-off baseline (the writer burns one core doing index
// maintenance, but never blocks a session). Sweeps S in {1, 4, 16}, each
// cell re-built from a fresh version-0 snapshot so appends never
// accumulate across cells. Per-cell records go to BENCH_concurrent.json
// (override the path with PRAGUE_BENCH_JSON), including how many queries
// were truncated by the Run() budget — set PRAGUE_BENCH_TIMEOUT_MS to
// bound every Run() and exercise the graceful-degradation path (default
// 0 = unbounded, so truncated stays 0).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/session_manager.h"
#include "util/stopwatch.h"

using namespace prague;
using namespace prague::bench;

namespace {

constexpr size_t kQueriesPerSession = 8;
constexpr size_t kAppendBatch = 10;

// Run() budget applied to every session (0 = unbounded).
int64_t TimeoutMs() {
  static int64_t ms = [] {
    const char* env = std::getenv("PRAGUE_BENCH_TIMEOUT_MS");
    return env != nullptr ? std::strtoll(env, nullptr, 10) : 0LL;
  }();
  return ms;
}

// Formulates `spec` and runs it inside one manager-opened session.
// Returns true when the Run() budget truncated the results.
bool RunOne(SessionManager& manager, const VisualQuerySpec& spec) {
  std::shared_ptr<ManagedSession> session = manager.Open();
  return session->With([&](PragueSession& s) {
    std::vector<NodeId> ids(spec.graph.NodeCount(), kInvalidNode);
    for (EdgeId e : spec.sequence) {
      const Edge& edge = spec.graph.GetEdge(e);
      for (NodeId n : {edge.u, edge.v}) {
        if (ids[n] == kInvalidNode) ids[n] = s.AddNode(spec.graph.NodeLabel(n));
      }
      if (!s.AddEdge(ids[edge.u], ids[edge.v], edge.label).ok()) std::abort();
    }
    Result<QueryResults> results = s.Run(nullptr);
    if (!results.ok()) std::abort();
    return results->truncated;
  });
}

struct CellResult {
  size_t sessions = 0;
  bool appender = false;
  size_t queries = 0;
  size_t truncated = 0;  ///< queries cut short by the Run() budget
  double wall_seconds = 0;
  double mean_latency = 0;
  double worst_latency = 0;
  uint64_t snapshots_published = 0;
  uint64_t final_version = 0;
};

CellResult RunCell(const Workbench& bench,
                   const std::vector<VisualQuerySpec>& specs, size_t sessions,
                   bool with_appender) {
  // Fresh version-0 snapshot per cell (cheap: structurally shared).
  PragueConfig default_config;
  default_config.run_deadline_ms = TimeoutMs();
  SessionManager manager(DatabaseSnapshot::Make(bench.db, bench.indexes),
                         default_config);

  std::atomic<bool> stop{false};
  std::thread appender;
  if (with_appender) {
    appender = std::thread([&] {
      size_t next = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Re-append copies of existing molecules: label-compatible by
        // construction, and the id sets keep growing realistically.
        std::vector<Graph> batch;
        for (size_t i = 0; i < kAppendBatch; ++i, ++next) {
          batch.push_back(bench.db.graph(next % bench.db.size()));
        }
        if (!manager.Append(std::move(batch), bench.alpha).ok()) std::abort();
      }
    });
  }

  std::vector<double> total_latency(sessions, 0);
  std::vector<double> worst_latency(sessions, 0);
  std::vector<size_t> truncated(sessions, 0);
  Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(sessions);
  for (size_t t = 0; t < sessions; ++t) {
    workers.emplace_back([&, t] {
      for (size_t q = 0; q < kQueriesPerSession; ++q) {
        const VisualQuerySpec& spec =
            specs[(t * kQueriesPerSession + q) % specs.size()];
        Stopwatch timer;
        if (RunOne(manager, spec)) ++truncated[t];
        double seconds = timer.ElapsedSeconds();
        total_latency[t] += seconds;
        worst_latency[t] = std::max(worst_latency[t], seconds);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  CellResult out;
  out.wall_seconds = wall.ElapsedSeconds();
  stop.store(true, std::memory_order_relaxed);
  if (appender.joinable()) appender.join();

  out.sessions = sessions;
  out.appender = with_appender;
  out.queries = sessions * kQueriesPerSession;
  for (size_t t = 0; t < sessions; ++t) {
    out.mean_latency += total_latency[t];
    out.worst_latency = std::max(out.worst_latency, worst_latency[t]);
    out.truncated += truncated[t];
  }
  out.mean_latency /= static_cast<double>(out.queries);
  SessionManagerStats stats = manager.Stats();
  out.snapshots_published = stats.snapshots_published;
  out.final_version = stats.current_version;
  return out;
}

}  // namespace

int main() {
  Banner("concurrent sessions: throughput under copy-on-write appends",
         "S sessions x 8 queries each; appender off vs publishing "
         "continuously");
  Workbench bench = BuildAidsWorkbench(AidsGraphCount() / 4);
  WorkloadGenerator workload(&bench.db, 1234);
  std::vector<VisualQuerySpec> specs;
  for (size_t i = 0; i < 8; ++i) {
    Result<VisualQuerySpec> spec =
        workload.ContainmentQuery(5 + i % 3, "c" + std::to_string(i));
    if (!spec.ok()) std::abort();
    specs.push_back(std::move(spec.value()));
  }

  BenchJsonWriter json("BENCH_concurrent.json");
  if (!json.ok()) return 1;

  TablePrinter table({"sessions", "appender", "queries", "truncated",
                      "wall (s)", "qps", "mean lat (ms)", "worst lat (ms)",
                      "published"});
  for (size_t sessions : {1, 4, 16}) {
    for (bool with_appender : {false, true}) {
      CellResult r = RunCell(bench, specs, sessions, with_appender);
      double qps = r.wall_seconds > 0
                       ? static_cast<double>(r.queries) / r.wall_seconds
                       : 0;
      table.AddRow({std::to_string(r.sessions), r.appender ? "on" : "off",
                    std::to_string(r.queries), std::to_string(r.truncated),
                    Fmt(r.wall_seconds, 2), Fmt(qps, 1),
                    FmtMs(r.mean_latency), FmtMs(r.worst_latency),
                    std::to_string(r.snapshots_published)});
      char record[512];
      std::snprintf(
          record, sizeof(record),
          "{\"sessions\": %zu, \"appender\": %s, \"queries\": %zu, "
          "\"truncated\": %zu, \"run_deadline_ms\": %lld, "
          "\"wall_seconds\": %.6f, \"queries_per_second\": %.3f, "
          "\"mean_latency_seconds\": %.9f, \"worst_latency_seconds\": %.9f, "
          "\"snapshots_published\": %llu, \"final_version\": %llu}",
          r.sessions, r.appender ? "true" : "false", r.queries, r.truncated,
          static_cast<long long>(TimeoutMs()), r.wall_seconds, qps,
          r.mean_latency, r.worst_latency,
          static_cast<unsigned long long>(r.snapshots_published),
          static_cast<unsigned long long>(r.final_version));
      json.Add(record);
    }
  }
  table.Print();
  std::printf(
      "\nwrote %s. Readers never block on the writer: compare mean/worst "
      "latency between appender off and on at each session count — the gap "
      "is core contention, not lock waiting. 'published' counts successor "
      "snapshots the appender managed to build+publish during the cell; "
      "'truncated' counts queries cut short by PRAGUE_BENCH_TIMEOUT_MS.\n",
      json.path().c_str());
  return 0;
}
