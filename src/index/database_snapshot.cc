#include "index/database_snapshot.h"

#include <utility>

namespace prague {

SnapshotPtr DatabaseSnapshot::Make(GraphDatabase db, ActionAwareIndexes indexes,
                                   uint64_t version) {
  auto snap = std::shared_ptr<DatabaseSnapshot>(new DatabaseSnapshot());
  snap->owned_db_ = std::make_unique<const GraphDatabase>(std::move(db));
  snap->owned_indexes_ =
      std::make_unique<const ActionAwareIndexes>(std::move(indexes));
  snap->db_ = snap->owned_db_.get();
  snap->indexes_ = snap->owned_indexes_.get();
  snap->version_ = version;
  return snap;
}

SnapshotPtr DatabaseSnapshot::Borrow(const GraphDatabase* db,
                                     const ActionAwareIndexes* indexes,
                                     uint64_t version) {
  auto snap = std::shared_ptr<DatabaseSnapshot>(new DatabaseSnapshot());
  snap->db_ = db;
  snap->indexes_ = indexes;
  snap->version_ = version;
  return snap;
}

}  // namespace prague
