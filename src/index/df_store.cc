#include "index/df_store.h"

#include <fstream>
#include <cstdio>
#include <sstream>

namespace prague {

namespace {

// One fixed-width directory line: 19-digit relative offset, space,
// 10-digit vertex count, newline = 31 bytes.
std::string DirectoryLine(uint64_t rel_offset, uint32_t count) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%019llu %010u\n",
                static_cast<unsigned long long>(rel_offset), count);
  return buf;
}

}  // namespace

Result<DfStore> DfStore::Create(const A2FIndex& a2f, const std::string& path,
                                size_t cache_clusters) {
  // Group DF vertices by cluster; any DF vertex the build left unassigned
  // goes to a catch-all cluster at the end.
  std::vector<std::vector<A2fId>> groups;
  std::vector<bool> covered(a2f.VertexCount(), false);
  for (const FragmentCluster& c : a2f.clusters()) {
    groups.emplace_back();
    for (A2fId id : c.members) {
      if (!covered[id]) {
        covered[id] = true;
        groups.back().push_back(id);
      }
    }
  }
  std::vector<A2fId> leftovers;
  for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
    if (!a2f.vertex(id).in_mf && !covered[id]) leftovers.push_back(id);
  }
  if (!leftovers.empty()) groups.push_back(std::move(leftovers));

  // Serialize payload per cluster, recording relative offsets.
  std::string payload;
  std::vector<ClusterLocation> directory;
  std::string vertex_map;
  size_t vertex_total = 0;
  for (uint32_t cid = 0; cid < groups.size(); ++cid) {
    ClusterLocation loc;
    loc.offset = payload.size();
    loc.vertex_count = static_cast<uint32_t>(groups[cid].size());
    directory.push_back(loc);
    for (A2fId id : groups[cid]) {
      // Stored form: the delId-compressed lists would need the DAG to
      // resolve, so the store keeps the *full* id lists — this is the
      // disk-resident tier, where the paper also pays for completeness.
      const IdSet& ids = a2f.FsgIds(id);
      payload += std::to_string(id);
      payload += ' ';
      payload += std::to_string(ids.size());
      for (GraphId gid : ids) {
        payload += ' ';
        payload += std::to_string(gid);
      }
      payload += '\n';
      vertex_map += std::to_string(id);
      vertex_map += ' ';
      vertex_map += std::to_string(cid);
      vertex_map += '\n';
      ++vertex_total;
    }
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  out << "DF_STORE 1 " << groups.size() << ' ' << vertex_total << '\n';
  for (const ClusterLocation& loc : directory) {
    out << DirectoryLine(loc.offset, loc.vertex_count);
  }
  out << vertex_map;
  out << payload;
  if (!out.good()) return Status::IOError("write failed: " + path);
  out.close();
  return Open(path, cache_clusters);
}

Result<DfStore> DfStore::Open(const std::string& path,
                              size_t cache_clusters) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::Corruption("empty store");
  std::istringstream header(line);
  std::string magic;
  int version;
  size_t cluster_count, vertex_count;
  if (!(header >> magic >> version >> cluster_count >> vertex_count) ||
      magic != "DF_STORE" || version != 1) {
    return Status::Corruption("bad DF store header");
  }
  DfStore store;
  store.path_ = path;
  store.cache_clusters_ = std::max<size_t>(1, cache_clusters);
  store.directory_.resize(cluster_count);
  for (ClusterLocation& loc : store.directory_) {
    if (!std::getline(in, line)) {
      return Status::Corruption("truncated directory");
    }
    std::istringstream ls(line);
    if (!(ls >> loc.offset >> loc.vertex_count)) {
      return Status::Corruption("bad directory line");
    }
  }
  for (size_t i = 0; i < vertex_count; ++i) {
    if (!std::getline(in, line)) {
      return Status::Corruption("truncated vertex map");
    }
    std::istringstream ls(line);
    A2fId id;
    uint32_t cid;
    if (!(ls >> id >> cid) || cid >= cluster_count) {
      return Status::Corruption("bad vertex map line");
    }
    store.cluster_of_.emplace(id, cid);
  }
  // Payload base: current position. Rebase directory offsets to absolute.
  std::streampos base = in.tellg();
  if (base < 0) return Status::Corruption("cannot locate payload");
  for (ClusterLocation& loc : store.directory_) {
    loc.offset += static_cast<uint64_t>(base);
  }
  in.seekg(0, std::ios::end);
  store.file_bytes_ = static_cast<size_t>(in.tellg());
  return store;
}

Result<const DfStore::CachedCluster*> DfStore::FetchCluster(uint32_t cid) {
  auto it = cache_.find(cid);
  if (it != cache_.end()) {
    ++stats_.cache_hits;
    lru_.remove(cid);
    lru_.push_front(cid);
    return &it->second;
  }
  ++stats_.cluster_loads;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path_);
  const ClusterLocation& loc = directory_[cid];
  in.seekg(static_cast<std::streamoff>(loc.offset));
  CachedCluster cluster;
  std::string line;
  for (uint32_t i = 0; i < loc.vertex_count; ++i) {
    if (!std::getline(in, line)) {
      return Status::Corruption("truncated cluster");
    }
    std::istringstream ls(line);
    A2fId id;
    size_t n;
    if (!(ls >> id >> n)) return Status::Corruption("bad vertex line");
    std::vector<GraphId> ids(n);
    for (size_t j = 0; j < n; ++j) {
      if (!(ls >> ids[j])) return Status::Corruption("bad id entry");
    }
    cluster.ids.emplace(id, IdSet(std::move(ids)));
  }
  // Evict beyond the budget.
  while (lru_.size() >= cache_clusters_) {
    uint32_t victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(cid);
  auto [ins, ok] = cache_.emplace(cid, std::move(cluster));
  (void)ok;
  return &ins->second;
}

Result<IdSet> DfStore::FsgIds(A2fId id) {
  ++stats_.lookups;
  auto it = cluster_of_.find(id);
  if (it == cluster_of_.end()) {
    return Status::NotFound("vertex not in DF tier: " + std::to_string(id));
  }
  Result<const CachedCluster*> cluster = FetchCluster(it->second);
  if (!cluster.ok()) return cluster.status();
  auto vit = (*cluster)->ids.find(id);
  if (vit == (*cluster)->ids.end()) {
    return Status::Corruption("vertex missing from its cluster");
  }
  return vit->second;
}

void DfStore::DropCache() {
  cache_.clear();
  lru_.clear();
}

}  // namespace prague
