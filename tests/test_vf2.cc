// VF2 correctness: hand cases plus property sweeps against the exhaustive
// brute-force oracle on random small graphs.

#include <gtest/gtest.h>

#include "graph/brute_force_iso.h"
#include "graph/graph.h"
#include "graph/subgraph_ops.h"
#include "graph/vf2.h"
#include "test_fixtures.h"
#include "util/rng.h"

namespace prague {
namespace {

using testing::MakeGraph;
using testing::kC;
using testing::kN;
using testing::kO;
using testing::kS;

TEST(Vf2Test, SingleEdgeMatch) {
  Graph pattern = MakeGraph({kC, kS}, {{0, 1}});
  Graph target = MakeGraph({kC, kS, kC}, {{0, 1}, {1, 2}});
  EXPECT_TRUE(IsSubgraphIsomorphic(pattern, target));
}

TEST(Vf2Test, LabelMismatchFails) {
  Graph pattern = MakeGraph({kC, kO}, {{0, 1}});
  Graph target = MakeGraph({kC, kS, kC}, {{0, 1}, {1, 2}});
  EXPECT_FALSE(IsSubgraphIsomorphic(pattern, target));
}

TEST(Vf2Test, NonInducedSemantics) {
  // A path C-C-C matches inside a triangle (extra target edges allowed).
  Graph path = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}});
  Graph triangle = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(IsSubgraphIsomorphic(path, triangle));
  // But a triangle does not match inside a path.
  EXPECT_FALSE(IsSubgraphIsomorphic(triangle, path));
}

TEST(Vf2Test, PatternLargerThanTargetFails) {
  Graph pattern = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}});
  Graph target = MakeGraph({kC, kC}, {{0, 1}});
  EXPECT_FALSE(IsSubgraphIsomorphic(pattern, target));
}

TEST(Vf2Test, EdgeLabelsRespected) {
  GraphBuilder bp;
  NodeId a = bp.AddNode(kC), b = bp.AddNode(kC);
  ASSERT_TRUE(bp.AddEdge(a, b, /*label=*/2).ok());
  Graph pattern = std::move(bp).Build();
  GraphBuilder bt;
  NodeId x = bt.AddNode(kC), y = bt.AddNode(kC);
  ASSERT_TRUE(bt.AddEdge(x, y, /*label=*/1).ok());
  Graph target = std::move(bt).Build();
  EXPECT_FALSE(IsSubgraphIsomorphic(pattern, target));
}

TEST(Vf2Test, CountMatchesSymmetry) {
  // C-C edge in a C-C-C triangle: 3 edges x 2 orientations = 6 mappings.
  Graph pattern = MakeGraph({kC, kC}, {{0, 1}});
  Graph triangle = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(Vf2Matcher(pattern, triangle).Count(), 6u);
}

TEST(Vf2Test, CountHonorsLimit) {
  Graph pattern = MakeGraph({kC, kC}, {{0, 1}});
  Graph triangle = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(Vf2Matcher(pattern, triangle).Count(4), 4u);
}

// Single-label cycle C_n — a cheap way to build search spaces large
// enough to outrun DeadlineChecker's stride (deadlines are only consulted
// every kDefaultStride expansion steps).
Graph Cycle(size_t n) {
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) b.AddNode(kC);
  for (size_t i = 0; i < n; ++i) {
    (void)b.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  return std::move(b).Build();
}

TEST(Vf2Test, ForEachReturnsTrueWhenExhausted) {
  Graph pattern = MakeGraph({kC, kC}, {{0, 1}});
  Graph triangle = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}, {0, 2}});
  Vf2Matcher matcher(pattern, triangle);
  size_t seen = 0;
  EXPECT_TRUE(matcher.ForEach([&](const NodeMapping&) {
    ++seen;
    return true;
  }));
  EXPECT_EQ(seen, 6u);
  EXPECT_FALSE(matcher.deadline_hit());
  EXPECT_GT(matcher.nodes_expanded(), 0u);
}

TEST(Vf2Test, ForEachReturnsFalseWhenCallbackStops) {
  Graph pattern = MakeGraph({kC, kC}, {{0, 1}});
  Graph triangle = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}, {0, 2}});
  Vf2Matcher matcher(pattern, triangle);
  size_t seen = 0;
  EXPECT_FALSE(matcher.ForEach([&](const NodeMapping&) {
    ++seen;
    return false;
  }));
  EXPECT_EQ(seen, 1u);
  // Stopped by the callback, not the deadline.
  EXPECT_FALSE(matcher.deadline_hit());
}

TEST(Vf2Test, ForEachEmptySearchSpaceCountsAsExhausted) {
  // Pattern larger than target: nothing to enumerate, trivially complete.
  Graph pattern = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}});
  Graph target = MakeGraph({kC, kC}, {{0, 1}});
  Vf2Matcher matcher(pattern, target);
  EXPECT_TRUE(matcher.ForEach([](const NodeMapping&) { return true; }));
}

TEST(Vf2Test, ExpiredDeadlineCutsEnumeration) {
  // An edge in C_600 has 1200 mappings (~1800 expansions), comfortably
  // past the checker stride, so the pre-expired deadline cuts mid-search.
  Graph pattern = MakeGraph({kC, kC}, {{0, 1}});
  Graph target = Cycle(600);
  Vf2Matcher matcher(pattern, target);
  matcher.SetDeadline(Deadline::AfterMillis(0));
  size_t seen = 0;
  EXPECT_FALSE(matcher.ForEach([&](const NodeMapping&) {
    ++seen;
    return true;
  }));
  EXPECT_TRUE(matcher.deadline_hit());
  EXPECT_LT(seen, 1200u);
}

TEST(Vf2Test, DeadlineOverloadReportsCutOnLongRefutation) {
  // No triangle exists in a cycle; refuting it in C_600 takes thousands of
  // expansion steps, so the expired deadline trips before exhaustion.
  Graph triangle = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}, {0, 2}});
  Graph target = Cycle(600);
  bool cut = false;
  size_t nodes = 0;
  EXPECT_FALSE(IsSubgraphIsomorphic(triangle, target,
                                    Deadline::AfterMillis(0), &cut, &nodes));
  EXPECT_TRUE(cut);
  EXPECT_GT(nodes, 0u);
  // Unbounded: same verdict, no cut.
  cut = false;
  EXPECT_FALSE(IsSubgraphIsomorphic(triangle, target, Deadline(), &cut));
  EXPECT_FALSE(cut);
}

TEST(Vf2Test, CancellationTokenStopsSearch) {
  Graph triangle = MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}, {0, 2}});
  Graph target = Cycle(600);
  CancellationToken token;
  token.RequestStop();
  bool cut = false;
  EXPECT_FALSE(IsSubgraphIsomorphic(triangle, target,
                                    Deadline().WithToken(&token), &cut));
  EXPECT_TRUE(cut);
  // Reset re-arms the same token.
  token.Reset();
  cut = false;
  EXPECT_FALSE(IsSubgraphIsomorphic(triangle, target,
                                    Deadline().WithToken(&token), &cut));
  EXPECT_FALSE(cut);
}

TEST(Vf2Test, IsomorphismCheck) {
  Graph a = MakeGraph({kC, kS, kO}, {{0, 1}, {1, 2}});
  Graph b = MakeGraph({kO, kS, kC}, {{0, 1}, {1, 2}});  // relabeled order
  EXPECT_TRUE(AreIsomorphic(a, b));
  Graph c = MakeGraph({kC, kS, kO}, {{0, 1}, {0, 2}});  // different center
  EXPECT_FALSE(AreIsomorphic(a, c));
}

// --- Property sweep: VF2 ≡ brute force on random labeled graphs. ---

Graph RandomConnectedGraph(Rng* rng, size_t nodes, size_t extra_edges,
                           size_t label_count) {
  GraphBuilder b;
  for (size_t i = 0; i < nodes; ++i) {
    b.AddNode(static_cast<Label>(rng->Below(label_count)));
  }
  for (NodeId i = 1; i < nodes; ++i) {
    (void)b.AddEdge(i, static_cast<NodeId>(rng->Below(i)));
  }
  for (size_t i = 0; i < extra_edges; ++i) {
    NodeId u = static_cast<NodeId>(rng->Below(nodes));
    NodeId v = static_cast<NodeId>(rng->Below(nodes));
    if (u != v) (void)b.AddEdge(u, v);
  }
  return std::move(b).Build();
}

class Vf2PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Vf2PropertyTest, AgreesWithBruteForceOracle) {
  Rng rng(GetParam());
  Graph target = RandomConnectedGraph(&rng, 6 + rng.Below(3), rng.Below(4), 2);
  Graph pattern = RandomConnectedGraph(&rng, 2 + rng.Below(4), rng.Below(2), 2);
  EXPECT_EQ(IsSubgraphIsomorphic(pattern, target),
            BruteForceSubgraphIsomorphic(pattern, target));
}

TEST_P(Vf2PropertyTest, CountsAgreeWithBruteForce) {
  Rng rng(GetParam() ^ 0xABCD);
  Graph target = RandomConnectedGraph(&rng, 5 + rng.Below(3), rng.Below(3), 2);
  Graph pattern = RandomConnectedGraph(&rng, 2 + rng.Below(3), 0, 2);
  EXPECT_EQ(Vf2Matcher(pattern, target).Count(),
            BruteForceCountMappings(pattern, target));
}

TEST_P(Vf2PropertyTest, SampledSubgraphAlwaysMatches) {
  Rng rng(GetParam() ^ 0x1234);
  Graph target = RandomConnectedGraph(&rng, 7, 3, 3);
  auto by_size = ConnectedEdgeSubsetsBySize(target);
  for (size_t k = 1; k <= std::min<size_t>(4, target.EdgeCount()); ++k) {
    ASSERT_FALSE(by_size[k].empty());
    EdgeMask mask = by_size[k][rng.Below(by_size[k].size())];
    Graph sub = ExtractEdgeSubgraph(target, mask).graph;
    EXPECT_TRUE(IsSubgraphIsomorphic(sub, target));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Vf2PropertyTest,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace prague
