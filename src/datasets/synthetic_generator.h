// GraphGen-like synthetic dataset generator.
//
// The paper generates its synthetic datasets with FG-Index's Graphgen [2]:
// "average number of graph edges in each dataset is set to 30 and the
// average graph density is 0.1". Density D = 2|E| / (|V|·(|V|−1)), so the
// average graph has ≈ 25 vertices. Node labels follow a Zipf-like skew
// (uniform labels produce almost no frequent fragments at realistic α).

#ifndef PRAGUE_DATASETS_SYNTHETIC_GENERATOR_H_
#define PRAGUE_DATASETS_SYNTHETIC_GENERATOR_H_

#include <cstdint>

#include "graph/graph_database.h"

namespace prague {

/// \brief Parameters for the synthetic generator.
struct SyntheticGeneratorConfig {
  size_t graph_count = 10000;
  uint64_t seed = 7;
  /// Average edge count per graph (paper: 30).
  double avg_edges = 30.0;
  /// Average graph density (paper: 0.1).
  double density = 0.1;
  /// Distinct node labels.
  size_t label_count = 20;
  /// Zipf skew exponent for the label distribution.
  double label_skew = 0.9;
};

/// \brief Generates a synthetic database of connected labeled graphs.
///
/// Each graph: |E| drawn around avg_edges, |V| solved from the density,
/// built as a random spanning tree plus random extra edges. Deterministic
/// per (seed, index).
GraphDatabase GenerateSyntheticDatabase(const SyntheticGeneratorConfig& config);

}  // namespace prague

#endif  // PRAGUE_DATASETS_SYNTHETIC_GENERATOR_H_
