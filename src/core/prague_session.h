// PragueSession — Algorithm 1, the PRAGUE engine driven by GUI actions.
//
// One session per query-formulation episode. The caller feeds the visual
// actions the paper monitors — New (AddEdge), Modify (DeleteEdge),
// SimQuery (EnableSimilarity), Run — and the engine does its work inside
// those calls, which in the deployed system execute during GUI latency.
// Run() therefore only performs the residual work (verification + result
// generation): its wall time is the paper's SRT.

#ifndef PRAGUE_CORE_PRAGUE_SESSION_H_
#define PRAGUE_CORE_PRAGUE_SESSION_H_

#include <memory>
#include <optional>

#include "core/candidates.h"
#include "core/session_log.h"
#include "core/modification.h"
#include "core/results.h"
#include "core/spig.h"
#include "core/visual_query.h"
#include "graph/graph_database.h"
#include "index/action_aware_index.h"
#include "index/database_snapshot.h"
#include "index/sharded_snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/result.h"

namespace prague {

/// \brief Engine parameters.
struct PragueConfig {
  /// σ — subgraph distance threshold for similarity search.
  int sigma = 3;
  /// When Rq empties on a New action, automatically set simFlag and start
  /// maintaining similarity candidates (models the user answering the
  /// option dialogue with "continue"). When false the session stays in
  /// no-exact-match limbo until the caller calls EnableSimilarity() or
  /// DeleteEdge().
  bool auto_similarity = true;
  /// When > 0, Run() stops generating similarity results after this many
  /// matches. Because Algorithm 5 emits results in non-decreasing distance
  /// order, the truncation is exactly the top-k most similar graphs.
  size_t top_k = 0;
  /// Worker threads for Run()-time verification (1 = sequential).
  /// Verification is read-only over the database, so parallel results are
  /// identical to sequential ones.
  size_t verification_threads = 1;
  /// Worker threads for SPIG construction (Algorithm 2): the per-vertex
  /// work of each level fans out with a barrier between levels, producing
  /// SPIGs bit-identical to the sequential build. 0 = follow
  /// verification_threads; 1 = sequential.
  size_t spig_threads = 0;
  /// Memoize each SPIG vertex's Algorithm-3 candidate set so candidate
  /// refreshes only compute vertices created by the current step. Same
  /// answers either way; false forces the cold path (benchmarking).
  bool candidate_memo = true;
  /// Run MCCS checks behind FilteringVerifier's label/degree prefilters
  /// (graph/verifier.h). Same answers, fewer VF2 calls; off by default to
  /// match the paper's plain SimVerify.
  bool filtering_verifier = false;
  /// Default Run() budget in milliseconds; 0 = unbounded. On expiry Run()
  /// degrades gracefully: it returns the prefix of the results decided
  /// before the cut and sets QueryResults::truncated plus the RunStats
  /// phase breakdown. An explicit Run(deadline, ...) overrides this.
  int64_t run_deadline_ms = 0;
  /// Formulation-step budget in milliseconds (SPIG construction during
  /// AddEdge/AddPattern); 0 = unbounded. Unlike Run(), a step cut mid-way
  /// cannot keep a half-built SPIG, so the step fails with
  /// Status::DeadlineExceeded and the query rolls back to the state before
  /// the action — retry with a larger budget to proceed.
  int64_t step_deadline_ms = 0;
  /// Optional cross-thread stop flag, checked together with any deadline
  /// on Run() and on formulation steps. Owned by the caller and must
  /// outlive the session; ManagedSession wires its own token here so a
  /// manager-level thread can cancel work in flight.
  const CancellationToken* cancellation = nullptr;
  /// Optional shared run tally: every completed Run() bumps it, so an
  /// owner (SessionManager) can report cumulative served/truncated counts
  /// across sessions, including closed ones. Must outlive the session.
  obs::RunTally* run_tally = nullptr;
  /// Optional ring of recent run traces: every completed Run() appends its
  /// RunTrace. Must outlive the session (ManagedSession keeps the manager's
  /// ring alive via shared ownership).
  obs::TraceRing* trace_ring = nullptr;
  /// Observability label stamped into this session's RunTraces
  /// (ManagedSession sets its manager-assigned id). Purely diagnostic.
  uint64_t session_tag = 0;
  /// Number of graph-id shards Run() scatters its phases across (1 =
  /// classic single-threaded phases). Results are bit-identical to
  /// shards=1 — the partition only changes who computes what. The session
  /// builds its own ShardedSnapshot/pool lazily unless the owner wires
  /// shared ones below.
  size_t shards = 1;
  /// Pre-built partitioned view of the pinned snapshot (SessionManager
  /// wires the shared one so sessions don't each re-slice the indexes).
  /// Used only when it covers the session's snapshot; shared ownership
  /// keeps it valid for sessions that outlive the owner.
  std::shared_ptr<const ShardedSnapshot> sharded_snapshot;
  /// Pool the per-shard tasks run on, shared across sessions (each run
  /// waits only on its own TaskGroup). Null with shards > 1 makes the
  /// session create its own pool sized to the shard count.
  std::shared_ptr<ThreadPool> shard_pool;
};

/// \brief The Status column of Figure 3.
enum class FragmentStatus {
  kFrequent,      ///< the full fragment is a frequent fragment
  kInfrequent,    ///< infrequent but Rq is non-empty
  kNoExactMatch,  ///< Rq = ∅ — "Similar" in the paper's figure
};

/// \brief What one visual step did and cost.
struct StepReport {
  FormulationId edge = 0;        ///< ℓ of the edge added/deleted
  FragmentStatus status = FragmentStatus::kFrequent;
  bool similarity_mode = false;  ///< simFlag after this step
  size_t exact_candidates = 0;   ///< |Rq| (containment path)
  size_t free_candidates = 0;    ///< |∪ Rfree| (similarity path)
  size_t ver_candidates = 0;     ///< |∪ Rver| (similarity path)
  double spig_seconds = 0;       ///< SPIG build/update time this step
  double candidate_seconds = 0;  ///< candidate (re)computation time
};

/// \brief The PRAGUE engine (Algorithm 1).
class PragueSession {
 public:
  /// \brief Opens a session pinned to \p snapshot: every action and Run()
  /// sees exactly that version of the database and indexes, regardless of
  /// appends published while the session is live.
  explicit PragueSession(SnapshotPtr snapshot,
                         const PragueConfig& config = PragueConfig());

  /// \brief GUI: user drops a node on the canvas.
  NodeId AddNode(Label label);
  /// \brief GUI: user drops a node by label name (must be in the
  /// database's dictionary — Panel 2 only offers those).
  Result<NodeId> AddNodeByName(const std::string& label_name);

  /// \brief Action New: draw an edge, build its SPIG, refresh candidates.
  Result<StepReport> AddEdge(NodeId u, NodeId v, Label edge_label = 0);

  /// \brief Action Modify: delete edge eℓ, prune SPIGs, refresh
  /// candidates. Follows Algorithm 6 lines 15-18: exact candidates if the
  /// reduced query has matches, similarity candidates otherwise.
  Result<StepReport> DeleteEdge(FormulationId ell);

  /// \brief Multi-edge deletion (Section VII notes the single-edge
  /// algorithm extends trivially). Edges are removed in an order that
  /// keeps the fragment connected throughout; fails without side effects
  /// if no such order exists.
  Result<StepReport> DeleteEdges(const std::vector<FormulationId>& edges);

  /// \brief Node relabeling (footnote 5). Applied in place: affected SPIG
  /// vertices are re-keyed and their Fragment Lists recomputed, then
  /// candidates refresh exactly as for a Modify action.
  Result<StepReport> RelabelNode(NodeId node, Label new_label);

  /// \brief Drops a canned pattern (footnote 1 — e.g. a benzene ring)
  /// onto the canvas: adds its nodes, then its edges one at a time in a
  /// prefix-connected order, building a SPIG per edge. \p attach maps
  /// pattern nodes to existing session nodes (may be empty iff the canvas
  /// is empty). Returns one StepReport per added edge.
  Result<std::vector<StepReport>> AddPattern(
      const Graph& pattern,
      const std::vector<std::pair<NodeId, NodeId>>& attach = {});

  /// \brief Action SimQuery: user opts into similarity search.
  Result<StepReport> EnableSimilarity();

  /// \brief Action Run: produce final results. Residual work only — its
  /// cost is the SRT. \p stats may be null. Bounded by the config's
  /// run_deadline_ms/cancellation token; see the deadline overload for
  /// truncation semantics.
  Result<QueryResults> Run(RunStats* stats = nullptr);

  /// \brief Run under an explicit \p deadline (overrides the config
  /// budget; the config token still applies if the deadline carries none).
  /// On expiry the result is a prefix-consistent subset of the unbounded
  /// run with QueryResults::truncated set, and RunStats records the phase
  /// the cut landed in plus per-phase timings.
  Result<QueryResults> Run(const Deadline& deadline,
                           RunStats* stats = nullptr);

  /// \brief Algorithm 6 lines 3-8: which edge should be deleted to make
  /// Rq non-empty (largest resulting candidate set)?
  std::optional<ModificationSuggestion> SuggestDeletion() const;

  /// \brief Current query fragment.
  const VisualQuery& query() const { return query_; }
  /// \brief Current SPIG set.
  const SpigSet& spigs() const { return spigs_; }
  /// \brief Current containment candidates Rq.
  const IdSet& exact_candidates() const { return rq_; }
  /// \brief Current similarity candidates (valid in similarity mode).
  const SimilarCandidates& similar_candidates() const { return similar_; }
  /// \brief simFlag.
  bool similarity_mode() const { return sim_flag_; }
  /// \brief σ in effect.
  int sigma() const { return config_.sigma; }
  /// \brief Full engine config in effect (as wired by the owner — e.g.
  /// ManagedSession points cancellation/tally/trace fields at its own
  /// members). Lets a caller spin up sibling sessions with identical
  /// behavior, as the server's BATCH_RUN does for each batch member.
  const PragueConfig& config() const { return config_; }
  /// \brief Every visual action applied so far (crash recovery / replay;
  /// see core/session_log.h). Only successful actions are recorded.
  const SessionLog& action_log() const { return log_; }
  /// \brief The pinned snapshot.
  const SnapshotPtr& snapshot() const { return snap_; }
  /// \brief Version of the pinned snapshot.
  uint64_t version() const { return snap_->version(); }
  /// \brief Trace of the most recent completed Run() (default-constructed
  /// until the first Run). Not thread-safe against a concurrent Run().
  const obs::RunTrace& last_run_trace() const { return last_trace_; }
  /// \brief Number of Run() calls completed on this session.
  uint64_t runs_completed() const { return runs_completed_; }

 private:
  // Recomputes Rq (and similarity candidates if simFlag) from the SPIG
  // set; fills the candidate fields of `report`.
  void RefreshCandidates(StepReport* report);
  // Algorithm 6 lines 15-18 after a modification: leave similarity mode
  // when the modified query has exact candidates again.
  void MaybeExitSimilarity();
  const SpigVertex* TargetVertex() const;

  // Lazily created when config_.verification_threads > 1.
  ThreadPool* VerificationPool();
  // Pool for SPIG construction (resolved spig_threads > 1), reusing the
  // verification pool when the sizes agree. Null means build sequentially.
  ThreadPool* SpigPool();
  // How this run scatters: the config's shared view/pool when wired (and
  // covering the pinned snapshot), else lazily built session-local ones.
  // Inactive plan (view == nullptr) when config_.shards <= 1.
  ShardPlan ResolveShardPlan();
  // Config-derived budgets (unbounded when the knob is 0), carrying the
  // config's cancellation token.
  Deadline RunDeadline() const;
  Deadline StepDeadline() const;
  // Algorithm 3 for one vertex, memoized or not per config_.
  IdSet VertexCandidates(const SpigVertex& v) const;
  // Books SPIG build time into the cumulative formulation tally and the
  // engine-wide histogram.
  void RecordSpigBuild(double seconds);

  SnapshotPtr snap_;
  PragueConfig config_;

  VisualQuery query_;
  SpigSet spigs_;
  IdSet rq_;
  SimilarCandidates similar_;
  bool sim_flag_ = false;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ThreadPool> spig_pool_;
  // Lazily built when config_.shards > 1 without a wired view/pool.
  ShardedSnapshot::Ptr own_sharded_;
  std::shared_ptr<ThreadPool> own_shard_pool_;
  SessionLog log_;
  obs::RunTrace last_trace_;
  uint64_t runs_completed_ = 0;
  // Cumulative formulation-time work (SPIG builds, candidate refreshes)
  // since the session opened; surfaced as spans on each RunTrace so a
  // trace shows the whole episode, not just the Run() residual.
  double formulation_spig_seconds_ = 0;
  double formulation_candidate_seconds_ = 0;
};

}  // namespace prague

#endif  // PRAGUE_CORE_PRAGUE_SESSION_H_
