// Session action log: automatic recording, serialization round-trip, and
// replay fidelity (the replayed session's state must equal the original).

#include <gtest/gtest.h>

#include <sstream>

#include "core/prague_session.h"
#include "core/session_log.h"
#include "test_fixtures.h"

namespace prague {
namespace {

using testing::kC;
using testing::kN;
using testing::kO;
using testing::kS;

TEST(SessionLogTest, RecordsAllActionKinds) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  NodeId a = session.AddNode(kC);
  NodeId b = session.AddNode(kC);
  NodeId c = session.AddNode(kS);
  ASSERT_TRUE(session.AddEdge(a, b).ok());
  ASSERT_TRUE(session.AddEdge(b, c).ok());
  ASSERT_TRUE(session.RelabelNode(c, kO).ok());
  ASSERT_TRUE(session.EnableSimilarity().ok());
  ASSERT_TRUE(session.DeleteEdge(2).ok());

  const SessionLog& log = session.action_log();
  ASSERT_EQ(log.size(), 8u);
  EXPECT_EQ(log[0].kind, SessionAction::Kind::kAddNode);
  EXPECT_EQ(log[3].kind, SessionAction::Kind::kAddEdge);
  EXPECT_EQ(log[5].kind, SessionAction::Kind::kRelabelNode);
  EXPECT_EQ(log[6].kind, SessionAction::Kind::kSimQuery);
  EXPECT_EQ(log[7].kind, SessionAction::Kind::kDeleteEdge);
  EXPECT_EQ(log[7].ell, 2);
}

TEST(SessionLogTest, SerializationRoundTrip) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  NodeId a = session.AddNode(kC);
  NodeId b = session.AddNode(kC);
  NodeId c = session.AddNode(kS);
  ASSERT_TRUE(session.AddEdge(a, b).ok());
  ASSERT_TRUE(session.AddEdge(b, c).ok());
  ASSERT_TRUE(session.DeleteEdge(2).ok());
  ASSERT_TRUE(session.RelabelNode(a, kO).ok());

  std::ostringstream out;
  ASSERT_TRUE(SaveSessionLog(session.action_log(), &out).ok());
  std::istringstream in(out.str());
  Result<SessionLog> loaded = LoadSessionLog(&in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, session.action_log());
}

TEST(SessionLogTest, LoadRejectsGarbage) {
  std::istringstream bad_header("NOPE 1\n");
  EXPECT_FALSE(LoadSessionLog(&bad_header).ok());
  std::istringstream bad_action("PRAGUE_SESSION 1\nfly 1 2\n");
  EXPECT_FALSE(LoadSessionLog(&bad_action).ok());
}

TEST(SessionLogTest, ReplayReproducesState) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  NodeId a = session.AddNode(kC);
  NodeId b = session.AddNode(kC);
  NodeId c = session.AddNode(kC);
  NodeId n = session.AddNode(kN);
  ASSERT_TRUE(session.AddEdge(a, b).ok());
  ASSERT_TRUE(session.AddEdge(b, c).ok());
  ASSERT_TRUE(session.AddEdge(a, c).ok());
  ASSERT_TRUE(session.AddEdge(a, n).ok());  // goes to similarity mode
  ASSERT_TRUE(session.RelabelNode(n, kS).ok());  // back to exact (= g0)

  Result<std::unique_ptr<PragueSession>> replayed = ReplaySession(
      session.action_log(), fixture.snapshot, PragueConfig());
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  PragueSession& twin = **replayed;
  EXPECT_EQ(twin.exact_candidates(), session.exact_candidates());
  EXPECT_EQ(twin.similarity_mode(), session.similarity_mode());
  EXPECT_EQ(twin.spigs().TotalVertexCount(),
            session.spigs().TotalVertexCount());
  EXPECT_EQ(twin.query().FullMask(), session.query().FullMask());

  Result<QueryResults> original = session.Run(nullptr);
  Result<QueryResults> copy = twin.Run(nullptr);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(original->exact, copy->exact);
  EXPECT_EQ(original->similarity, copy->similarity);
}

TEST(SessionLogTest, ReplayThroughFileRoundTrip) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  NodeId a = session.AddNode(kC);
  NodeId b = session.AddNode(kS);
  ASSERT_TRUE(session.AddEdge(a, b).ok());
  std::string path = ::testing::TempDir() + "/prague_session_test.log";
  ASSERT_TRUE(SaveSessionLogToFile(session.action_log(), path).ok());
  Result<SessionLog> loaded = LoadSessionLogFromFile(path);
  ASSERT_TRUE(loaded.ok());
  Result<std::unique_ptr<PragueSession>> replayed =
      ReplaySession(*loaded, fixture.snapshot, PragueConfig());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ((*replayed)->exact_candidates(), session.exact_candidates());
}

TEST(SessionLogTest, PatternDropIsReplayable) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Graph triangle = testing::MakeGraph({kC, kC, kC},
                                      {{0, 1}, {1, 2}, {0, 2}});
  ASSERT_TRUE(session.AddPattern(triangle).ok());
  // A pattern drop decomposes into node/edge actions — replay must work.
  Result<std::unique_ptr<PragueSession>> replayed = ReplaySession(
      session.action_log(), fixture.snapshot, PragueConfig());
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ((*replayed)->exact_candidates(), session.exact_candidates());
}

}  // namespace
}  // namespace prague
