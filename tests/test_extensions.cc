// Extension features beyond the paper's core algorithms: multi-edge
// deletion (Section VII says single-edge "is trivial to extend"), node
// relabeling (footnote 5), canned-pattern drops (footnote 1), and top-k
// similarity results.

#include <gtest/gtest.h>

#include <map>

#include "core/gblender.h"
#include "core/prague_session.h"
#include "datasets/query_workload.h"
#include "graph/vf2.h"
#include "test_fixtures.h"

namespace prague {
namespace {

using testing::kC;
using testing::kN;
using testing::kO;
using testing::kS;

void Feed(PragueSession* session, const Graph& q,
          const std::vector<EdgeId>& sequence) {
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = session->AddNode(q.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  for (EdgeId e : sequence) {
    const Edge& edge = q.GetEdge(e);
    auto report =
        session->AddEdge(user_node(edge.u), user_node(edge.v), edge.label);
    if (!report.ok()) std::abort();
  }
}

IdSet TrueMatches(const GraphDatabase& db, const Graph& q) {
  std::vector<GraphId> ids;
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    if (IsSubgraphIsomorphic(q, db.graph(gid))) ids.push_back(gid);
  }
  return IdSet(std::move(ids));
}

// --- DeleteEdges ----------------------------------------------------

TEST(DeleteEdgesTest, MultiDeletionEquivalentToFromScratch) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  // Square C-C-S-C plus both diagonals' pendant: delete two edges at once.
  Graph q = testing::MakeGraph({kC, kC, kS, kC, kO},
                               {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {2, 4}});
  Feed(&session, q, DefaultFormulationSequence(q));
  Result<StepReport> report = session.DeleteEdges({2, 5});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(session.query().EdgeCount(), 3u);

  const Graph& reduced = session.query().CurrentGraph();
  PragueSession fresh(fixture.snapshot);
  Feed(&fresh, reduced, DefaultFormulationSequence(reduced));
  EXPECT_EQ(session.exact_candidates(), fresh.exact_candidates());
  EXPECT_EQ(session.spigs().TotalVertexCount(),
            fresh.spigs().TotalVertexCount());
}

TEST(DeleteEdgesTest, FindsAnOrderWhenNaiveOrderDisconnects) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  // Path e1-e2-e3: deleting {e1, e2} in the given order is fine, but
  // {e2, e3}... deleting e2 first would disconnect. The session must find
  // the order e3, e2.
  Graph q = testing::MakeGraph({kC, kS, kC, kC}, {{0, 1}, {1, 2}, {2, 3}});
  Feed(&session, q, DefaultFormulationSequence(q));
  Result<StepReport> report = session.DeleteEdges({2, 3});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(session.query().EdgeCount(), 1u);
  EXPECT_EQ(session.query().AliveEdgeIds(), (std::vector<FormulationId>{1}));
}

TEST(DeleteEdgesTest, RejectsImpossibleSetWithoutSideEffects) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Graph q = testing::MakeGraph({kC, kS, kC}, {{0, 1}, {1, 2}});
  Feed(&session, q, DefaultFormulationSequence(q));
  // Deleting both edges would empty the fragment.
  Result<StepReport> report = session.DeleteEdges({1, 2});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(session.query().EdgeCount(), 2u);  // untouched
  EXPECT_EQ(session.spigs().SpigCount(), 2u);
}

// --- RelabelNode ------------------------------------------------------

TEST(RelabelTest, EquivalentToFreshFormulation) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Graph q = testing::MakeGraph({kC, kC, kC, kS},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  Feed(&session, q, DefaultFormulationSequence(q));
  // Relabel the S pendant to O (the session node ids follow discovery
  // order of the default sequence; find the S node).
  NodeId s_node = kInvalidNode;
  for (NodeId n = 0; n < session.query().UserNodeCount(); ++n) {
    if (session.query().NodeLabel(n) == kS) s_node = n;
  }
  ASSERT_NE(s_node, kInvalidNode);
  Result<StepReport> report = session.RelabelNode(s_node, kO);
  ASSERT_TRUE(report.ok());

  Graph relabeled = testing::MakeGraph({kC, kC, kC, kO},
                                       {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  PragueSession fresh(fixture.snapshot);
  Feed(&fresh, relabeled, DefaultFormulationSequence(relabeled));
  EXPECT_EQ(session.exact_candidates(), fresh.exact_candidates());

  Result<QueryResults> a = session.Run(nullptr);
  Result<QueryResults> b = fresh.Run(nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->exact, b->exact);
  EXPECT_EQ(a->similarity, b->similarity);
}

TEST(RelabelTest, SpigVerticesRekeyed) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Graph q = testing::MakeGraph({kC, kS}, {{0, 1}});
  Feed(&session, q, DefaultFormulationSequence(q));
  NodeId s_node = session.query().NodeLabel(0) == kS ? 0 : 1;
  ASSERT_EQ(session.query().NodeLabel(s_node), kS);
  ASSERT_TRUE(session.RelabelNode(s_node, kN).ok());
  const SpigVertex* target =
      session.spigs().FindVertex(session.query().FullMask());
  ASSERT_NE(target, nullptr);
  Graph expected = testing::MakeGraph({kC, kN}, {{0, 1}});
  EXPECT_EQ(target->code, GetCanonicalCode(expected));
}

TEST(RelabelTest, RelabelCanRestoreExactMode) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  // Triangle with N pendant: no exact match → similarity mode.
  Graph q = testing::MakeGraph({kC, kC, kC, kN},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  Feed(&session, q, DefaultFormulationSequence(q));
  EXPECT_TRUE(session.similarity_mode());
  // Relabel N → S: the query becomes exactly data graph g0.
  NodeId n_node = kInvalidNode;
  for (NodeId n = 0; n < session.query().UserNodeCount(); ++n) {
    if (session.query().NodeLabel(n) == kN) n_node = n;
  }
  ASSERT_NE(n_node, kInvalidNode);
  ASSERT_TRUE(session.RelabelNode(n_node, kS).ok());
  EXPECT_FALSE(session.similarity_mode());
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(IdSet(results->exact),
            TrueMatches(fixture.db, session.query().CurrentGraph()));
  EXPECT_FALSE(results->exact.empty());
}

TEST(RelabelTest, NoOpRelabelIsCheap) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Graph q = testing::MakeGraph({kC, kS}, {{0, 1}});
  Feed(&session, q, DefaultFormulationSequence(q));
  IdSet before = session.exact_candidates();
  NodeId c_node = session.query().NodeLabel(0) == kC ? 0 : 1;
  ASSERT_TRUE(session.RelabelNode(c_node, kC).ok());  // same label
  EXPECT_EQ(session.exact_candidates(), before);
}

// --- AddPattern -------------------------------------------------------

Graph TrianglePattern() {
  return testing::MakeGraph({kC, kC, kC}, {{0, 1}, {1, 2}, {0, 2}});
}

TEST(AddPatternTest, DropOnEmptyCanvasEqualsManualDrawing) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession with_pattern(fixture.snapshot);
  Result<std::vector<StepReport>> reports =
      with_pattern.AddPattern(TrianglePattern());
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  EXPECT_EQ(reports->size(), 3u);

  PragueSession manual(fixture.snapshot);
  Graph q = TrianglePattern();
  Feed(&manual, q, DefaultFormulationSequence(q));
  EXPECT_EQ(with_pattern.exact_candidates(), manual.exact_candidates());
  EXPECT_EQ(with_pattern.spigs().TotalVertexCount(),
            manual.spigs().TotalVertexCount());
}

TEST(AddPatternTest, AttachToExistingFragment) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  NodeId c1 = session.AddNode(kC);
  NodeId s = session.AddNode(kS);
  ASSERT_TRUE(session.AddEdge(c1, s).ok());
  // Attach a triangle sharing node c1 (pattern node 0 ↦ session c1).
  Result<std::vector<StepReport>> reports =
      session.AddPattern(TrianglePattern(), {{0, c1}});
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  EXPECT_EQ(session.query().EdgeCount(), 4u);
  // The result equals drawing g0 (triangle + S pendant): exact match g0.
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(IdSet(results->exact),
            TrueMatches(fixture.db, session.query().CurrentGraph()));
}

TEST(AddPatternTest, RejectsDetachedPatternOnNonEmptyCanvas) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  NodeId c1 = session.AddNode(kC);
  NodeId c2 = session.AddNode(kC);
  ASSERT_TRUE(session.AddEdge(c1, c2).ok());
  EXPECT_FALSE(session.AddPattern(TrianglePattern()).ok());
}

TEST(AddPatternTest, RejectsLabelMismatchAttach) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  NodeId s = session.AddNode(kS);
  NodeId c = session.AddNode(kC);
  ASSERT_TRUE(session.AddEdge(s, c).ok());
  // Pattern node 0 is C; session node s is S.
  EXPECT_FALSE(session.AddPattern(TrianglePattern(), {{0, s}}).ok());
}

TEST(AddPatternTest, RejectsDisconnectedPattern) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Graph disconnected =
      testing::MakeGraph({kC, kC, kC, kC}, {{0, 1}, {2, 3}});
  EXPECT_FALSE(session.AddPattern(disconnected).ok());
}

// --- Top-k ------------------------------------------------------------

TEST(TopKTest, TruncatesToMostSimilarPrefix) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 91);
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(6, 1, "topk");
  ASSERT_TRUE(spec.ok());

  auto run_with = [&](size_t top_k) {
    PragueConfig config;
    config.sigma = 3;
    config.top_k = top_k;
    PragueSession session(fixture.snapshot, config);
    Feed(&session, spec->graph, spec->sequence);
    Result<QueryResults> results = session.Run(nullptr);
    if (!results.ok()) std::abort();
    return results->similar;
  };
  std::vector<SimilarMatch> all = run_with(0);
  if (all.size() < 4) GTEST_SKIP() << "not enough matches to truncate";
  std::vector<SimilarMatch> top3 = run_with(3);
  ASSERT_EQ(top3.size(), 3u);
  // Distances must match the full run's prefix (ids may tie-swap only at
  // equal distance; our generation order is deterministic, so exact).
  for (size_t i = 0; i < top3.size(); ++i) {
    EXPECT_EQ(top3[i], all[i]);
  }
}

TEST(TopKTest, ZeroMeansUnlimited) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueConfig config;
  config.top_k = 0;
  PragueSession session(fixture.snapshot, config);
  Graph q = testing::MakeGraph({kC, kC, kC, kN},
                               {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  Feed(&session, q, DefaultFormulationSequence(q));
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_GT(results->similar.size(), 1u);
}

}  // namespace
}  // namespace prague
