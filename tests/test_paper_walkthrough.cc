// Figure 3 walkthrough: reproduces the paper's Sequence-1 narrative — the
// Status column evolving frequent → frequent → frequent → Infreq →
// Similar → Similar as edges are drawn, the modification suggestion when
// Rq empties, and the final Run returning ranked approximate matches —
// on a purpose-built database where every transition is forced by
// construction.

#include <gtest/gtest.h>

#include "core/prague_session.h"
#include "graph/vf2.h"
#include "index/action_aware_index.h"
#include "test_fixtures.h"

namespace prague {
namespace {

using testing::kC;
using testing::kO;
using testing::kS;

// Database design (α = 0.5 over 4 graphs ⇒ min support 2). The query is
// drawn as: chain a(C)-b(C)-c(C)-d(S), then e4 = S pendant on a, then
// e5 = S-S on the pendant, then e6 = O pendant on b.
//  * C-C, C-S, C-C-C, C-C-C-S are frequent (G1, G2, fillers) → steps 1-3
//    stay "frequent";
//  * the chain with an S pendant on a (= step 4) occurs only in G1: all
//    its proper subgraphs are frequent, so it is a *DIF* with fsgIds =
//    {G1} → step 4 reads "Infreq" with Rq = {G1};
//  * the S-S bond occurs only in G4, so S-S is a DIF with fsgIds = {G4};
//    step 5's fragment contains both DIFs and {G1} ∩ {G4} = ∅ → the
//    index itself certifies Rq = ∅ ("Similar");
//  * C-O occurs only in G3 — step 6 stays empty the same way.
struct Walkthrough {
  GraphDatabase db;
  ActionAwareIndexes indexes;
  /// Borrowed once over the immortal static instance; every test's
  /// sessions pin this one snapshot instead of re-borrowing (Borrow gives
  /// no lifetime protection, so one audited borrow site beats many).
  SnapshotPtr snapshot;

  static const Walkthrough& Get() {
    static Walkthrough* cached = [] {
      auto* w = new Walkthrough(Build());
      w->snapshot = DatabaseSnapshot::Borrow(&w->db, &w->indexes);
      return w;
    }();
    return *cached;
  }

  static Walkthrough Build() {
    Walkthrough w;
    w.db.mutable_labels()->Intern("C");
    w.db.mutable_labels()->Intern("S");
    w.db.mutable_labels()->Intern("O");
    // G1: chain C-C-C-S with an S pendant on the first C (= the query
    // through step 4).
    w.db.Add(testing::MakeGraph({kC, kC, kC, kS, kS},
                                {{0, 1}, {1, 2}, {2, 3}, {0, 4}}));
    // G2: plain chain C-C-C-S.
    w.db.Add(testing::MakeGraph({kC, kC, kC, kS},
                                {{0, 1}, {1, 2}, {2, 3}}));
    // G3: C-C-C with an O pendant on the middle C (the only C-O bonds).
    w.db.Add(testing::MakeGraph({kC, kC, kC, kO},
                                {{0, 1}, {1, 2}, {1, 3}}));
    // G4: C-S-S (the only S-S bond).
    w.db.Add(testing::MakeGraph({kC, kS, kS}, {{0, 1}, {1, 2}}));
    MiningConfig mining;
    mining.min_support_ratio = 0.5;
    mining.max_fragment_edges = 6;
    A2fConfig a2f;
    a2f.beta = 2;
    Result<MiningResult> mined = MineFragments(w.db, mining);
    if (!mined.ok()) std::abort();
    w.indexes = BuildActionAwareIndexes(*mined, a2f);
    return w;
  }
};

TEST(PaperWalkthroughTest, Figure3StatusSequence) {
  const Walkthrough& w = Walkthrough::Get();
  PragueSession session(w.snapshot);

  NodeId a = session.AddNode(kC);
  NodeId b = session.AddNode(kC);
  NodeId c = session.AddNode(kC);
  NodeId d = session.AddNode(kS);
  NodeId e = session.AddNode(kS);
  NodeId f = session.AddNode(kS);
  NodeId g = session.AddNode(kO);

  // Step 1: C-C — frequent.
  Result<StepReport> s1 = session.AddEdge(a, b);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->status, FragmentStatus::kFrequent);
  EXPECT_GE(s1->exact_candidates, 2u);

  // Step 2: C-C-C — frequent (G1, G2, G3).
  Result<StepReport> s2 = session.AddEdge(b, c);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->status, FragmentStatus::kFrequent);
  EXPECT_EQ(session.exact_candidates(), IdSet({0, 1, 2}));

  // Step 3: C-C-C-S — frequent (G1, G2).
  Result<StepReport> s3 = session.AddEdge(c, d);
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(s3->status, FragmentStatus::kFrequent);
  EXPECT_EQ(session.exact_candidates(), IdSet({0, 1}));

  // Step 4: S pendant on a — a DIF matched only by G1 ("Infreq").
  Result<StepReport> s4 = session.AddEdge(a, e);
  ASSERT_TRUE(s4.ok());
  EXPECT_EQ(s4->status, FragmentStatus::kInfrequent);
  EXPECT_EQ(session.exact_candidates(), IdSet({0}));

  // Step 5: S-S on the pendant — the fragment now contains two DIFs with
  // disjoint FSG sets, so the index certifies Rq = ∅ ("Similar").
  Result<StepReport> s5 = session.AddEdge(e, f);
  ASSERT_TRUE(s5.ok());
  EXPECT_EQ(s5->status, FragmentStatus::kNoExactMatch);
  EXPECT_TRUE(session.similarity_mode());
  EXPECT_TRUE(session.exact_candidates().empty());

  // The engine suggests deleting the offending edge e5 (Algorithm 6):
  // q − e5 is the step-4 DIF with candidates {G1}; every other deletion
  // disconnects the fragment or certifies emptiness.
  std::optional<ModificationSuggestion> suggestion =
      session.SuggestDeletion();
  ASSERT_TRUE(suggestion.has_value());
  EXPECT_EQ(suggestion->edge, 5);
  EXPECT_EQ(suggestion->candidates, IdSet({0}));

  // Step 6: the user ignores the suggestion and draws an O on b.
  Result<StepReport> s6 = session.AddEdge(b, g);
  ASSERT_TRUE(s6.ok());
  EXPECT_EQ(s6->status, FragmentStatus::kNoExactMatch);

  // Run: ranked approximate matches. G1 misses exactly the S-S and C-O
  // edges → distance 2, the most similar answer.
  RunStats stats;
  Result<QueryResults> results = session.Run(&stats);
  ASSERT_TRUE(results.ok());
  ASSERT_TRUE(results->similarity);
  ASSERT_FALSE(results->similar.empty());
  EXPECT_EQ(results->similar.front().gid, 0u);
  EXPECT_EQ(results->similar.front().distance, 2);
  auto expected = testing::BruteForceSimilaritySearch(
      w.db, session.query().CurrentGraph(), session.sigma());
  EXPECT_EQ(results->similar.size(), expected.size());
}

TEST(PaperWalkthroughTest, TakingTheSuggestionRestoresExactMode) {
  const Walkthrough& w = Walkthrough::Get();
  PragueSession session(w.snapshot);
  NodeId a = session.AddNode(kC);
  NodeId b = session.AddNode(kC);
  NodeId c = session.AddNode(kC);
  NodeId d = session.AddNode(kS);
  NodeId e = session.AddNode(kS);
  NodeId f = session.AddNode(kS);
  ASSERT_TRUE(session.AddEdge(a, b).ok());
  ASSERT_TRUE(session.AddEdge(b, c).ok());
  ASSERT_TRUE(session.AddEdge(c, d).ok());
  ASSERT_TRUE(session.AddEdge(a, e).ok());
  ASSERT_TRUE(session.AddEdge(e, f).ok());
  ASSERT_TRUE(session.similarity_mode());

  std::optional<ModificationSuggestion> suggestion =
      session.SuggestDeletion();
  ASSERT_TRUE(suggestion.has_value());
  Result<StepReport> after = session.DeleteEdge(suggestion->edge);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(session.similarity_mode());
  EXPECT_EQ(after->status, FragmentStatus::kInfrequent);

  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->similarity);
  EXPECT_EQ(results->exact, std::vector<GraphId>{0});
}

TEST(PaperWalkthroughTest, SequenceTwoGivesSameCandidates) {
  // Figure 3's Sequence 2 draws the same query in a different order; the
  // SPIG sets differ but candidates must not (Section V-B).
  const Walkthrough& w = Walkthrough::Get();
  auto formulate = [&](const std::vector<std::pair<int, int>>& edges) {
    auto session = std::make_unique<PragueSession>(w.snapshot);
    std::vector<Label> labels = {kC, kC, kC, kS, kS, kS};
    std::vector<NodeId> ids;
    for (Label l : labels) ids.push_back(session->AddNode(l));
    for (auto [u, v] : edges) {
      if (!session->AddEdge(ids[u], ids[v]).ok()) std::abort();
    }
    return session;
  };
  auto s1 = formulate({{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 5}});
  auto s2 = formulate({{4, 5}, {0, 4}, {0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(s1->similarity_mode(), s2->similarity_mode());
  EXPECT_EQ(s1->exact_candidates(), s2->exact_candidates());
  EXPECT_EQ(s1->similar_candidates().AllFree(),
            s2->similar_candidates().AllFree());
  EXPECT_EQ(s1->similar_candidates().AllVer(),
            s2->similar_candidates().AllVer());
}

}  // namespace
}  // namespace prague
