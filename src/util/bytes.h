// Byte-size helpers used for index footprint accounting (Table II,
// Figure 10(a)).

#ifndef PRAGUE_UTIL_BYTES_H_
#define PRAGUE_UTIL_BYTES_H_

#include <cstddef>
#include <string>
#include <vector>

namespace prague {

/// \brief Heap footprint of a std::vector<T> for trivially sized T.
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// \brief Heap footprint of a std::string.
inline size_t StringBytes(const std::string& s) {
  // Small strings live inline; only count heap allocations.
  return s.capacity() > 15 ? s.capacity() : 0;
}

/// \brief Renders a byte count as "12.3 MB" / "4.5 KB" / "128 B".
std::string HumanBytes(size_t bytes);

/// \brief Converts bytes to megabytes as a double (paper tables report MB).
inline double ToMegabytes(size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace prague

#endif  // PRAGUE_UTIL_BYTES_H_
