#include "core/admission.h"

#include <algorithm>
#include <cmath>

#include "obs/labels.h"
#include "obs/metrics.h"

namespace prague {

namespace {

// Retry hint when a quota (not the bucket) is full: the caller cannot know
// when a slot frees, so suggest a short, fixed backoff. Long enough to
// matter against a tight loop, short enough not to hurt a polite client.
constexpr int64_t kQuotaRetryMs = 20;

}  // namespace

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kRate:
      return "rate";
    case ShedReason::kConcurrency:
      return "concurrency";
    case ShedReason::kSessions:
      return "sessions";
    case ShedReason::kBytes:
      return "bytes";
  }
  return "?";
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {}

void AdmissionController::Configure(const AdmissionOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
}

AdmissionOptions AdmissionController::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

double AdmissionController::RefillLocked(
    Tenant& tenant, std::chrono::steady_clock::time_point now) const {
  const double capacity = options_.tenant_burst > 0
                              ? options_.tenant_burst
                              : std::max(2 * options_.tenant_rate, 4.0);
  if (!tenant.bucket_started) {
    // A new tenant starts with a full bucket: the burst allowance is the
    // whole point of a bucket over a plain interval limiter.
    tenant.tokens = capacity;
    tenant.refilled_at = now;
    tenant.bucket_started = true;
    return capacity;
  }
  const double elapsed =
      std::chrono::duration<double>(now - tenant.refilled_at).count();
  if (elapsed > 0) {
    tenant.tokens =
        std::min(capacity, tenant.tokens + elapsed * options_.tenant_rate);
    tenant.refilled_at = now;
  }
  return capacity;
}

void AdmissionController::MaybeEraseLocked(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  Tenant& t = it->second;
  if (t.sessions != 0 || t.runs != 0 || t.queued_bytes != 0) return;
  // Only forget a tenant whose bucket is full again: a forgotten tenant
  // restarts with a full bucket, so erasing a drained one would let a
  // reconnect-spamming client reset its own rate limit.
  if (t.bucket_started && options_.tenant_rate > 0) {
    const double capacity =
        RefillLocked(t, std::chrono::steady_clock::now());
    if (t.tokens < capacity) return;
  }
  tenants_.erase(it);
}

AdmissionDecision AdmissionController::AdmitSession(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = tenants_[tenant];
  if (options_.max_sessions > 0 && t.sessions >= options_.max_sessions) {
    ++sessions_shed_;
    obs::ServerMetrics::Get().tenant_shed_total->WithLabel(tenant)
        ->Increment();
    MaybeEraseLocked(tenant);
    return {false, ShedReason::kSessions, kQuotaRetryMs};
  }
  ++t.sessions;
  return {};
}

void AdmissionController::OnSessionClosed(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.sessions == 0) return;
  --it->second.sessions;
  MaybeEraseLocked(tenant);
}

AdmissionDecision AdmissionController::AdmitRun(const std::string& tenant,
                                                size_t cost_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = tenants_[tenant];
  AdmissionDecision decision;
  if (options_.max_concurrent_runs > 0 &&
      t.runs >= options_.max_concurrent_runs) {
    decision = {false, ShedReason::kConcurrency, kQuotaRetryMs};
  } else if (options_.max_queued_bytes > 0 &&
             t.queued_bytes + cost_bytes > options_.max_queued_bytes) {
    decision = {false, ShedReason::kBytes, kQuotaRetryMs};
  } else if (options_.tenant_rate > 0) {
    const auto now = std::chrono::steady_clock::now();
    RefillLocked(t, now);
    if (t.tokens < 1.0) {
      // Time until the bucket holds one whole token again.
      const double deficit_seconds =
          (1.0 - t.tokens) / options_.tenant_rate;
      decision = {false, ShedReason::kRate,
                  std::max<int64_t>(
                      1, static_cast<int64_t>(
                             std::ceil(deficit_seconds * 1000)))};
    } else {
      t.tokens -= 1.0;
    }
  }
  // Tenants come and go (the map above forgets idle ones), so the labeled
  // series is looked up per decision rather than cached in the Tenant.
  // WithLabel bounds cardinality: past the family cap all tenants share
  // the "other" series. Lock order is mu_ -> family mutex; nothing calls
  // back into the controller from obs, so there is no inversion.
  obs::ServerMetrics& sm = obs::ServerMetrics::Get();
  if (!decision.admitted) {
    ++runs_shed_;
    sm.tenant_shed_total->WithLabel(tenant)->Increment();
    MaybeEraseLocked(tenant);
    return decision;
  }
  ++t.runs;
  t.queued_bytes += cost_bytes;
  ++runs_admitted_;
  sm.tenant_admitted_total->WithLabel(tenant)->Increment();
  return decision;
}

void AdmissionController::OnRunFinished(const std::string& tenant,
                                        size_t cost_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  Tenant& t = it->second;
  if (t.runs > 0) --t.runs;
  t.queued_bytes -= std::min(t.queued_bytes, cost_bytes);
  MaybeEraseLocked(tenant);
}

AdmissionStats AdmissionController::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats stats;
  stats.runs_admitted = runs_admitted_;
  stats.runs_shed = runs_shed_;
  stats.sessions_shed = sessions_shed_;
  stats.tenants = tenants_.size();
  return stats;
}

}  // namespace prague
