#include "datasets/synthetic_generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/rng.h"

namespace prague {

namespace {

Graph GenerateOne(Rng* rng, const SyntheticGeneratorConfig& config,
                  const std::vector<Label>& labels,
                  const std::vector<double>& label_weights) {
  // |E| uniform in [0.7, 1.3] * avg; |V| from the density identity.
  size_t edges = std::max<size_t>(
      2, static_cast<size_t>(config.avg_edges *
                             (0.7 + 0.6 * rng->NextDouble())));
  // density = 2E / (V(V-1))  =>  V ≈ (1 + sqrt(1 + 8E/density)) / 2.
  double v_real =
      (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(edges) /
                                 config.density)) /
      2.0;
  size_t nodes = std::max<size_t>(3, static_cast<size_t>(std::lround(v_real)));
  // A simple connected graph needs edges ≥ nodes-1 and ≤ V(V-1)/2.
  nodes = std::min<size_t>(nodes, edges + 1);

  GraphBuilder b;
  for (size_t i = 0; i < nodes; ++i) {
    b.AddNode(labels[rng->Weighted(label_weights)]);
  }
  // Random spanning tree: attach node i to a uniformly chosen earlier node.
  size_t added = 0;
  for (NodeId i = 1; i < nodes; ++i) {
    NodeId j = static_cast<NodeId>(rng->Below(i));
    (void)b.AddEdge(i, j, 0);
    ++added;
  }
  // Extra random edges up to the target (duplicates are rejected; bail out
  // after enough misses — the graph is sparse so misses are rare).
  size_t misses = 0;
  while (added < edges && misses < 50) {
    NodeId u = static_cast<NodeId>(rng->Below(nodes));
    NodeId v = static_cast<NodeId>(rng->Below(nodes));
    if (u == v) {
      ++misses;
      continue;
    }
    Result<EdgeId> r = b.AddEdge(u, v, 0);
    if (r.ok()) {
      ++added;
      misses = 0;
    } else {
      ++misses;
    }
  }
  return std::move(b).Build();
}

}  // namespace

GraphDatabase GenerateSyntheticDatabase(
    const SyntheticGeneratorConfig& config) {
  GraphDatabase db;
  std::vector<Label> labels;
  std::vector<double> weights;
  for (size_t i = 0; i < config.label_count; ++i) {
    labels.push_back(db.mutable_labels()->Intern("L" + std::to_string(i)));
    weights.push_back(1.0 /
                      std::pow(static_cast<double>(i + 1), config.label_skew));
  }
  for (size_t i = 0; i < config.graph_count; ++i) {
    Rng rng(config.seed * 0xD1B54A32D192ED03ULL + i);
    db.Add(GenerateOne(&rng, config, labels, weights));
  }
  return db;
}

}  // namespace prague
