// Stall watchdog: one background thread that (a) measures event-loop
// responsiveness and (b) flags runs that have escaped their deadline
// budget.
//
// Event loops park in epoll_wait with no timeout, so a passive "when did
// it last wake?" check would read an idle loop as wedged. The watchdog is
// therefore active: each tick it first reads every registered heartbeat's
// lag (now − last Beat()), publishes it as
// `prague_server_event_loop_lag_us{loop="i"}`, then *pings* the loop's
// eventfd. A healthy loop beats within one tick, so steady-state lag ≈ the
// tick interval; a loop stuck in a handler (or a deadlocked callback)
// shows monotonically growing lag and, past `heartbeat_stall_us`, one
// stall incident.
//
// The long-run detector watches runs between OnRunStarted/OnRunFinished.
// Deadline enforcement inside the engine is cooperative — a run that stops
// polling its CancellationToken stops being bounded — so a run alive past
// `stall_budget_multiple ×` its budget is an incident: one increment of
// `prague_watchdog_stalls_total`, one rate-limited structured log line,
// and one synthetic RunTrace in the trace ring. Each incident fires once.
//
// The clock is injectable (`now_us`) so tests drive stalls
// deterministically with Tick(); production uses the monotonic clock and
// Start()'s thread.

#ifndef PRAGUE_OBS_WATCHDOG_H_
#define PRAGUE_OBS_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace prague::obs {

class Watchdog;

/// \brief One monitored thread's liveness signal. Beat() is one relaxed
/// store — call it at the top of every loop iteration.
class WatchdogHeartbeat {
 public:
  void Beat();

  const std::string& label() const { return label_; }
  /// \brief Lag at the last completed tick, microseconds.
  int64_t last_lag_us() const {
    return last_lag_us_.load(std::memory_order_relaxed);
  }

 private:
  friend class Watchdog;
  WatchdogHeartbeat(Watchdog* owner, std::string label,
                    std::function<void()> wake);

  Watchdog* owner_;
  std::string label_;
  std::function<void()> wake_;  // pings the thread so it can beat; may be null
  std::atomic<int64_t> last_beat_us_;
  std::atomic<int64_t> last_lag_us_{0};
  bool stalled_ = false;  // guarded by Watchdog::mu_
};

struct WatchdogOptions {
  /// Tick period of the watchdog thread.
  int64_t interval_ms = 250;
  /// A run is an incident once alive longer than this multiple of its
  /// deadline budget. Runs with no budget (<= 0) are never flagged — the
  /// operator asked for unbounded work.
  double stall_budget_multiple = 4.0;
  /// Floor below which a run is never flagged, so multiplied-out tiny
  /// budgets don't flap on scheduler jitter.
  int64_t min_run_stall_us = 10'000;
  /// A heartbeat older than this is a stalled thread.
  int64_t heartbeat_stall_us = 2'000'000;
  /// Injectable clock (microseconds, monotonic). Null = steady_clock.
  std::function<int64_t()> now_us;
};

/// \brief The watchdog. Thread-safe; one instance per server process.
class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options = {});
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// \brief Registers a monitored thread. \p wake (may be null) is called
  /// every tick after the lag read so parked threads get a chance to beat.
  /// The returned pointer stays valid until Unregister/destruction.
  WatchdogHeartbeat* RegisterHeartbeat(std::string label,
                                       std::function<void()> wake);
  /// \brief Drops \p heartbeat; its wake function is never called again.
  void UnregisterHeartbeat(WatchdogHeartbeat* heartbeat);

  /// \brief Begins watching a run. Returns a token for OnRunFinished.
  uint64_t OnRunStarted(std::string_view tenant, int64_t budget_ms);
  void OnRunFinished(uint64_t token);

  /// \brief Synthetic stall traces are added here when set (not owned).
  void set_trace_ring(TraceRing* ring) { trace_ring_ = ring; }

  /// \brief Starts/stops the background tick thread. Idempotent.
  void Start();
  void Stop();

  /// \brief One synchronous tick (what the thread does every interval).
  /// Exposed so tests with a fake clock drive stalls deterministically.
  void Tick();

  /// \brief Current time per the configured clock.
  int64_t NowUs() const;

  size_t active_runs() const;
  uint64_t stalls() const { return stalls_total_->Value(); }

 private:
  struct RunWatch {
    std::string tenant;
    int64_t started_us = 0;
    int64_t budget_ms = 0;
    bool flagged = false;
  };

  const WatchdogOptions options_;

  Counter* stalls_total_;   // prague_watchdog_stalls_total
  Counter* ticks_total_;    // prague_watchdog_ticks_total
  Gauge* active_runs_;      // prague_watchdog_active_runs
  LabeledGauge* loop_lag_;  // prague_server_event_loop_lag_us{loop=...}

  mutable std::mutex mu_;
  std::list<std::unique_ptr<WatchdogHeartbeat>> heartbeats_;
  std::map<uint64_t, RunWatch> runs_;
  uint64_t next_token_ = 1;
  TraceRing* trace_ring_ = nullptr;

  std::mutex thread_mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace prague::obs

#endif  // PRAGUE_OBS_WATCHDOG_H_
