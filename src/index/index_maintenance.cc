#include "index/index_maintenance.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "graph/code_memo.h"
#include "graph/subgraph_ops.h"
#include "graph/verifier.h"

namespace prague {

namespace {

// A2F vertex ids ordered by fragment size ascending, so DAG pruning can
// rely on parents being processed first.
std::vector<A2fId> SizeAscendingOrder(const A2FIndex& a2f) {
  std::vector<A2fId> order(a2f.VertexCount());
  for (A2fId i = 0; i < a2f.VertexCount(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&a2f](A2fId a, A2fId b) {
    return a2f.vertex(a).size() < a2f.vertex(b).size();
  });
  return order;
}

// For each A2I entry, the A2F ids of its one-edge-smaller subfragments
// (all frequent by the DIF definition, hence indexed — unless mining was
// size-capped, in which case the list may be partial; missing parents
// simply weaken pruning). Subgraph codes go through the global
// canonical-code memo: repeated maintenance batches re-derive the same
// parent lists.
std::vector<std::vector<A2fId>> DifParents(const ActionAwareIndexes& idx) {
  CanonicalCodeMemo& memo = CanonicalCodeMemo::Global();
  std::vector<std::vector<A2fId>> parents(idx.a2i.EntryCount());
  for (A2iId d = 0; d < idx.a2i.EntryCount(); ++d) {
    const Graph& g = idx.a2i.entry(d).fragment;
    if (g.EdgeCount() < 2) continue;
    auto by_size = ConnectedEdgeSubsetsBySize(g);
    parents[d].reserve(by_size[g.EdgeCount() - 1].size());
    for (EdgeMask mask : by_size[g.EdgeCount() - 1]) {
      Graph sub = ExtractEdgeSubgraph(g, mask).graph;
      if (std::optional<A2fId> fid = idx.a2f.Lookup(memo.Get(sub))) {
        parents[d].push_back(*fid);
      }
    }
  }
  return parents;
}

}  // namespace

Result<MaintenanceReport> AppendGraphs(GraphDatabase* db,
                                       std::vector<Graph> graphs,
                                       ActionAwareIndexes* indexes,
                                       double alpha) {
  if (alpha <= 0 || alpha >= 1) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (graphs.empty()) {
    return Status::InvalidArgument("no graphs to append");
  }
  for (const Graph& g : graphs) {
    if (g.EdgeCount() == 0 || !g.IsConnected()) {
      return Status::InvalidArgument(
          "appended graphs must be connected and non-empty");
    }
  }

  MaintenanceReport report;
  report.graphs_added = graphs.size();
  std::vector<A2fId> order = SizeAscendingOrder(indexes->a2f);
  std::vector<std::vector<A2fId>> dif_parents = DifParents(*indexes);
  FilteringVerifier verifier;

  // contains[f] for the graph currently being processed.
  std::vector<char> contains(indexes->a2f.VertexCount(), 0);

  for (Graph& graph : graphs) {
    GraphId gid = db->Add(std::move(graph));
    const Graph& g = db->graph(gid);
    std::fill(contains.begin(), contains.end(), 0);

    // A2F sweep, size ascending with anti-monotone pruning: skip the VF2
    // probe whenever some recorded parent fragment is already absent.
    for (A2fId id : order) {
      const A2fVertex& v = indexes->a2f.vertex(id);
      bool possible = true;
      for (A2fId p : v.parents) {
        if (!contains[p]) {
          possible = false;
          break;
        }
      }
      if (!possible) {
        ++report.pruned_probes;
        continue;
      }
      ++report.probes;
      if (verifier.Matches(v.fragment, g)) {
        contains[id] = 1;
        indexes->a2f.AddFsgId(id, gid);
      }
    }
    // A2I sweep with the precomputed frequent-parent lists.
    for (A2iId d = 0; d < indexes->a2i.EntryCount(); ++d) {
      bool possible = true;
      for (A2fId p : dif_parents[d]) {
        if (!contains[p]) {
          possible = false;
          break;
        }
      }
      if (!possible) {
        ++report.pruned_probes;
        continue;
      }
      ++report.probes;
      if (verifier.Matches(indexes->a2i.entry(d).fragment, g)) {
        indexes->a2i.AddFsgId(d, gid);
      }
    }
  }

  indexes->a2f.RecomputeDelIds();

  // Drift detection against the moved threshold.
  report.new_min_support = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(alpha * static_cast<double>(db->size()))));
  indexes->min_support = report.new_min_support;
  for (A2fId id = 0; id < indexes->a2f.VertexCount(); ++id) {
    if (indexes->a2f.FsgIds(id).size() < report.new_min_support) {
      ++report.frequent_below_threshold;
    }
  }
  for (A2iId d = 0; d < indexes->a2i.EntryCount(); ++d) {
    if (indexes->a2i.FsgIds(d).size() >= report.new_min_support) {
      ++report.difs_above_threshold;
    }
  }
  report.remine_recommended = report.frequent_below_threshold > 0 ||
                              report.difs_above_threshold > 0;
  return report;
}

Result<SnapshotAppendResult> AppendGraphs(const DatabaseSnapshot& base,
                                          std::vector<Graph> graphs,
                                          double alpha,
                                          const LabelDictionary* graph_labels) {
  // Both copies are cheap: the database shares all Graph storage through
  // shared_ptr and every index id-set is copy-on-write.
  GraphDatabase db = base.db();
  ActionAwareIndexes indexes = base.indexes();

  if (graph_labels != nullptr) {
    for (Graph& g : graphs) {
      GraphBuilder b;
      for (NodeId n = 0; n < g.NodeCount(); ++n) {
        Result<std::string> name = graph_labels->NameOf(g.NodeLabel(n));
        if (!name.ok()) return name.status();
        b.AddNode(db.mutable_labels()->Intern(name.value()));
      }
      for (const Edge& e : g.edges()) {
        Result<EdgeId> eid = b.AddEdge(e.u, e.v, e.label);
        if (!eid.ok()) return eid.status();
      }
      g = std::move(b).Build();
    }
  }

  Result<MaintenanceReport> report =
      AppendGraphs(&db, std::move(graphs), &indexes, alpha);
  if (!report.ok()) return report.status();

  SnapshotAppendResult out;
  out.report = report.value();
  out.report.from_version = base.version();
  out.report.to_version = base.version() + 1;
  out.snapshot = DatabaseSnapshot::Make(std::move(db), std::move(indexes),
                                        out.report.to_version);
  return out;
}

}  // namespace prague
