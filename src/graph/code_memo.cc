#include "graph/code_memo.h"

namespace prague {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

}  // namespace

std::string GraphRepresentationKey(const Graph& g) {
  std::string key;
  key.reserve(4 * (1 + g.NodeCount() + 3 * g.EdgeCount()));
  AppendU32(&key, static_cast<uint32_t>(g.NodeCount()));
  for (NodeId n = 0; n < g.NodeCount(); ++n) AppendU32(&key, g.NodeLabel(n));
  for (EdgeId e = 0; e < g.EdgeCount(); ++e) {
    const Edge& edge = g.GetEdge(e);
    AppendU32(&key, edge.u);
    AppendU32(&key, edge.v);
    AppendU32(&key, edge.label);
  }
  return key;
}

CanonicalCode CanonicalCodeMemo::Get(const Graph& g) {
  std::string key = GraphRepresentationKey(g);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++hits_;
      return it->second;
    }
  }
  CanonicalCode code = GetCanonicalCode(g);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    if (memo_.size() >= max_entries_) memo_.clear();
    memo_.emplace(std::move(key), code);
  }
  return code;
}

size_t CanonicalCodeMemo::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

size_t CanonicalCodeMemo::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

void CanonicalCodeMemo::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  memo_.clear();
}

CanonicalCodeMemo& CanonicalCodeMemo::Global() {
  static CanonicalCodeMemo* memo = new CanonicalCodeMemo();
  return *memo;
}

}  // namespace prague
