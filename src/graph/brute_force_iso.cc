#include "graph/brute_force_iso.h"

#include <vector>

namespace prague {

namespace {

// Tries to extend a partial injective map pattern-node-by-pattern-node in
// plain id order (no connectivity anchoring, no pruning beyond validity).
bool Extend(const Graph& pattern, const Graph& target, size_t depth,
            std::vector<NodeId>* map, std::vector<bool>* used,
            size_t* count, bool count_all, DeadlineChecker* checker) {
  if (depth == pattern.NodeCount()) {
    ++(*count);
    return !count_all;  // stop at first match unless counting
  }
  for (NodeId t = 0; t < target.NodeCount(); ++t) {
    if (checker->Check()) return true;  // deadline: abandon the search
    if ((*used)[t]) continue;
    if (pattern.NodeLabel(depth) != target.NodeLabel(t)) continue;
    bool ok = true;
    for (const Adjacency& a : pattern.Neighbors(depth)) {
      if (a.neighbor >= depth) continue;  // not mapped yet
      EdgeId te = target.FindEdge(t, (*map)[a.neighbor]);
      if (te == kInvalidEdge ||
          target.GetEdge(te).label != pattern.GetEdge(a.edge).label) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    (*map)[depth] = t;
    (*used)[t] = true;
    bool done = Extend(pattern, target, depth + 1, map, used, count,
                       count_all, checker);
    (*used)[t] = false;
    if (done) return true;
  }
  return false;
}

size_t Run(const Graph& pattern, const Graph& target, bool count_all,
           const Deadline& deadline = Deadline(),
           bool* deadline_hit = nullptr) {
  if (pattern.NodeCount() > target.NodeCount() ||
      pattern.EdgeCount() > target.EdgeCount()) {
    return 0;
  }
  std::vector<NodeId> map(pattern.NodeCount(), kInvalidNode);
  std::vector<bool> used(target.NodeCount(), false);
  size_t count = 0;
  DeadlineChecker checker(deadline);
  Extend(pattern, target, 0, &map, &used, &count, count_all, &checker);
  if (deadline_hit != nullptr) *deadline_hit = checker.expired();
  return count;
}

}  // namespace

bool BruteForceSubgraphIsomorphic(const Graph& pattern, const Graph& target) {
  return Run(pattern, target, /*count_all=*/false) > 0;
}

bool BruteForceSubgraphIsomorphic(const Graph& pattern, const Graph& target,
                                  const Deadline& deadline,
                                  bool* deadline_hit) {
  return Run(pattern, target, /*count_all=*/false, deadline, deadline_hit) >
         0;
}

bool BruteForceIsomorphic(const Graph& a, const Graph& b) {
  if (a.NodeCount() != b.NodeCount() || a.EdgeCount() != b.EdgeCount()) {
    return false;
  }
  return BruteForceSubgraphIsomorphic(a, b);
}

size_t BruteForceCountMappings(const Graph& pattern, const Graph& target) {
  return Run(pattern, target, /*count_all=*/true);
}

}  // namespace prague
