// Crash recovery: rebuild the latest acknowledged state of a data
// directory from its manifest, segment, and WAL tail.
//
// Recovery = mmap the manifest's segment (O(metadata) — no re-mining, no
// posting copy) + replay the WAL records past the segment's snapshot
// version through the same incremental AppendGraphs path the live server
// uses. Because every WAL record carries the version it produced, replay
// is idempotent: records at or below the segment version are skipped, a
// gap in the sequence is corruption (the WAL and segment disagree about
// history), and the final snapshot version equals the last record's.
//
// This header also defines the kAppendGraphs WAL payload codec. Node
// labels travel as *names* (re-interned on replay in encounter order), so
// a replayed append produces bit-identical label ids to the original run
// regardless of what the live dictionary looked like when the record was
// written; edge labels are raw ids sharing one global space (praguedb's
// file convention).

#ifndef PRAGUE_STORAGE_RECOVERY_H_
#define PRAGUE_STORAGE_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "index/database_snapshot.h"
#include "index/index_maintenance.h"
#include "storage/manifest.h"
#include "storage/segment.h"
#include "util/result.h"

namespace prague::storage {

/// \brief Decoded form of one kAppendGraphs WAL record.
struct AppendPayload {
  /// Snapshot version this append produced (the replay watermark).
  uint64_t to_version = 0;
  /// Maintenance options the original append ran with; replay uses the
  /// same ones so the replayed indexes are bit-identical.
  MaintenanceOptions options;
  /// Node-label names, dense in the ids the graphs below use.
  std::vector<std::string> label_names;
  /// The appended graphs (node labels index label_names).
  std::vector<Graph> graphs;
};

/// \brief Serializes an append batch into a WAL payload.
std::string EncodeAppendPayload(const AppendPayload& payload);

/// \brief Decodes a kAppendGraphs payload (Corruption on damage).
Result<AppendPayload> DecodeAppendPayload(std::string_view bytes);

/// \brief Options for Recover.
struct RecoveryOptions {
  /// Forwarded to OpenSegment (full posting-region checksum scan).
  bool verify_postings_crc = false;
};

/// \brief The state a data directory recovered to.
struct RecoveredState {
  /// Latest durable snapshot: segment state plus every replayed append.
  SnapshotPtr snapshot;
  /// The mapping the segment-resident id-sets borrow from.
  std::shared_ptr<MappedSegment> mapping;
  /// Bytes of the segment's zero-copy posting region.
  uint64_t posting_bytes = 0;
  /// The manifest that was recovered against.
  Manifest manifest;
  /// Byte length of the WAL's valid prefix (a torn tail is excluded and
  /// truncated away by the next WalWriter::Open).
  uint64_t wal_valid_bytes = 0;
  /// WAL records actually applied (skipped duplicates not counted).
  size_t replayed_records = 0;
  /// True when a torn/corrupt WAL tail was detected and dropped.
  bool wal_tail_dropped = false;
};

/// \brief Recovers \p dir: loads the manifest, maps the segment, replays
/// the WAL tail. NotFound when the directory was never bootstrapped.
Result<RecoveredState> Recover(const std::string& dir,
                               const RecoveryOptions& options = {});

}  // namespace prague::storage

#endif  // PRAGUE_STORAGE_RECOVERY_H_
