// Feature index shared by the traditional-paradigm baselines.
//
// Grafil [12] and SIGMA [8] both filter with frequent-fragment features of
// bounded size ("GR and SG use the same indexing scheme" — Section VIII);
// DistVP [11] builds a σ-dependent variant. A feature is a frequent
// fragment with ≤ max_feature_edges edges; each entry maps its canonical
// code to the exact set of data graphs containing it.

#ifndef PRAGUE_BASELINES_FEATURE_INDEX_H_
#define PRAGUE_BASELINES_FEATURE_INDEX_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/canonical.h"
#include "graph/graph.h"
#include "graph/subgraph_ops.h"
#include "mining/gspan.h"
#include "util/id_set.h"

namespace prague {

/// \brief Feature-index build parameters.
struct FeatureIndexConfig {
  /// Maximum feature size in edges.
  size_t max_feature_edges = 4;
};

/// \brief Canonical-code → FSG-ids feature map.
class FeatureIndex {
 public:
  FeatureIndex() = default;

  /// \brief Selects the ≤ max_feature_edges frequent fragments as features.
  static FeatureIndex Build(const std::vector<MinedFragment>& frequent,
                            const FeatureIndexConfig& config);

  /// \brief Feature id for a canonical code, if indexed.
  std::optional<uint32_t> Lookup(const CanonicalCode& code) const;
  /// \brief FSG ids of a feature.
  const IdSet& FsgIds(uint32_t id) const { return fsg_ids_[id]; }
  /// \brief Per-graph embedding counts, parallel to FsgIds(id).span().
  /// Grafil/SIGMA's count-based bounds consume these.
  const std::vector<uint32_t>& Counts(uint32_t id) const {
    return counts_[id];
  }
  /// \brief Number of features.
  size_t FeatureCount() const { return fsg_ids_.size(); }
  /// \brief Storage footprint in bytes (codes + id lists + count lists).
  size_t StorageBytes() const;
  /// \brief Build-time size cap.
  size_t max_feature_edges() const { return max_feature_edges_; }

 private:
  std::unordered_map<CanonicalCode, uint32_t> by_code_;
  std::vector<IdSet> fsg_ids_;
  std::vector<std::vector<uint32_t>> counts_;
  size_t code_bytes_ = 0;
  size_t max_feature_edges_ = 0;
};

/// \brief All connected edge subsets of a query graph up to a size cap,
/// with canonical codes — computed once per query and shared by every
/// baseline's filter.
class QuerySubgraphCatalog {
 public:
  struct Entry {
    EdgeMask mask = 0;
    int size = 0;
    CanonicalCode code;
  };

  /// \brief Enumerates connected subsets of \p q with ≤ \p max_size edges.
  static QuerySubgraphCatalog Build(const Graph& q, size_t max_size);

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace prague

#endif  // PRAGUE_BASELINES_FEATURE_INDEX_H_
