#include "core/explain.h"

#include <sstream>

#include "graph/mccs.h"
#include "graph/vf2.h"

namespace prague {

Result<MatchExplanation> ExplainMatch(const Graph& q, const Graph& g) {
  MccsResult mccs = ComputeMccs(q, g);
  if (mccs.mccs_edges == 0) {
    return Status::NotFound("no common connected subgraph");
  }
  MatchExplanation out;
  out.distance = mccs.distance;
  out.covered_query_edges = mccs.witness;
  for (EdgeId e = 0; e < q.EdgeCount(); ++e) {
    if (!(mccs.witness & EdgeBit(e))) out.missing_query_edges.push_back(e);
  }

  // One concrete embedding of the witness into g.
  ExtractedSubgraph witness = ExtractEdgeSubgraph(q, mccs.witness);
  NodeMapping sub_mapping;
  Vf2Matcher matcher(witness.graph, g);
  matcher.ForEach([&sub_mapping](const NodeMapping& m) {
    sub_mapping = m;
    return false;  // first embedding suffices
  });
  if (sub_mapping.empty()) {
    return Status::Corruption("MCCS witness did not re-embed");
  }
  out.node_image.assign(q.NodeCount(), kInvalidNode);
  for (NodeId sub_node = 0; sub_node < witness.graph.NodeCount();
       ++sub_node) {
    out.node_image[witness.node_map[sub_node]] = sub_mapping[sub_node];
  }
  for (EdgeId e = 0; e < q.EdgeCount(); ++e) {
    if (!(mccs.witness & EdgeBit(e))) continue;
    const Edge& edge = q.GetEdge(e);
    EdgeId data_edge =
        g.FindEdge(out.node_image[edge.u], out.node_image[edge.v]);
    if (data_edge == kInvalidEdge) {
      return Status::Corruption("embedding lost an edge");
    }
    out.data_edges.push_back(data_edge);
  }
  return out;
}

std::string ExplanationToString(const MatchExplanation& explanation,
                                const Graph& q,
                                const LabelDictionary& labels) {
  std::ostringstream out;
  out << "distance " << explanation.distance << "\n";
  out << "covered:";
  for (EdgeId e = 0; e < q.EdgeCount(); ++e) {
    if (!(explanation.covered_query_edges & EdgeBit(e))) continue;
    const Edge& edge = q.GetEdge(e);
    out << " " << labels.Name(q.NodeLabel(edge.u)) << edge.u << "-"
        << labels.Name(q.NodeLabel(edge.v)) << edge.v << "->g("
        << explanation.node_image[edge.u] << ","
        << explanation.node_image[edge.v] << ")";
  }
  out << "\n";
  if (!explanation.missing_query_edges.empty()) {
    out << "missing:";
    for (EdgeId e : explanation.missing_query_edges) {
      const Edge& edge = q.GetEdge(e);
      out << " " << labels.Name(q.NodeLabel(edge.u)) << edge.u << "-"
          << labels.Name(q.NodeLabel(edge.v)) << edge.v;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace prague
