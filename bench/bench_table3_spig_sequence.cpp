// Table III reproduction: SPIG construction time per step under different
// formulation sequences, plus average SRT per sequence.
//
// Paper shape: per-step SPIG construction stays well under the ~2 s GUI
// latency (near an order of magnitude below), is not adversely affected by
// later steps, and different sequences of the same query change neither
// the construction cost profile nor the SRT materially.

#include <cstdio>

#include "bench_common.h"
#include "core/prague_session.h"
#include "util/rng.h"

using namespace prague;
using namespace prague::bench;

namespace {

// Formulates `spec.graph` in the given order through a full PragueSession
// and reports per-step SPIG construction seconds plus the final SRT.
struct SequenceRun {
  std::vector<double> spig_seconds;
  double srt_seconds = 0;
};

SequenceRun RunSequence(const Workbench& bench, const Graph& q,
                        const std::vector<EdgeId>& sequence, int sigma) {
  PragueConfig config;
  config.sigma = sigma;
  PragueSession session(bench.snapshot, config);
  std::vector<NodeId> node_map(q.NodeCount(), kInvalidNode);
  SequenceRun out;
  for (EdgeId e : sequence) {
    const Edge& edge = q.GetEdge(e);
    for (NodeId n : {edge.u, edge.v}) {
      if (node_map[n] == kInvalidNode) {
        node_map[n] = session.AddNode(q.NodeLabel(n));
      }
    }
    Result<StepReport> report =
        session.AddEdge(node_map[edge.u], node_map[edge.v], edge.label);
    if (!report.ok()) std::abort();
    out.spig_seconds.push_back(report->spig_seconds);
  }
  RunStats stats;
  if (!session.Run(&stats).ok()) std::abort();
  out.srt_seconds = stats.srt_seconds;
  return out;
}

std::string SequenceString(const std::vector<EdgeId>& sequence) {
  std::string out;
  for (EdgeId e : sequence) {
    if (!out.empty()) out += ",";
    out += std::to_string(e + 1);
  }
  return out;
}

}  // namespace

int main() {
  Banner("Table III: SPIG construction time per step (s) by sequence",
         "AIDS-like dataset, Q1 and Q3, two formulation orders each");
  Workbench bench = BuildAidsWorkbench(AidsGraphCount());
  std::vector<VisualQuerySpec> queries = AidsQueries(bench);
  Rng rng(2012);

  for (size_t qi : {size_t{0}, size_t{2}}) {  // Q1 and Q3, as in the paper
    const VisualQuerySpec& spec = queries[qi];
    std::printf("--- %s (|q|=%zu) ---\n", spec.name.c_str(),
                spec.graph.EdgeCount());
    std::vector<std::string> headers = {"sequence"};
    for (size_t s = 1; s <= spec.graph.EdgeCount(); ++s) {
      headers.push_back("step" + std::to_string(s));
    }
    headers.push_back("SRT (s)");
    TablePrinter table(headers);
    std::vector<std::vector<EdgeId>> sequences = {
        spec.sequence, RandomFormulationSequence(spec.graph, &rng)};
    for (const auto& sequence : sequences) {
      SequenceRun run = RunSequence(bench, spec.graph, sequence, 3);
      std::vector<std::string> row = {SequenceString(sequence)};
      for (double s : run.spig_seconds) row.push_back(Fmt(s, 4));
      row.push_back(Fmt(run.srt_seconds, 3));
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "paper shape check: every per-step cost sits far below the ~2s GUI "
      "latency; sequences have only minor effect on cost and SRT.\n");
  return 0;
}
