#include "graph/graph_io.h"

#include <fstream>
#include <sstream>

namespace prague {

namespace {

void WriteOneGraph(const Graph& g, const LabelDictionary& labels,
                   std::ostream& out) {
  for (NodeId n = 0; n < g.NodeCount(); ++n) {
    out << "v " << n << " " << labels.Name(g.NodeLabel(n)) << "\n";
  }
  for (const Edge& e : g.edges()) {
    out << "e " << e.u << " " << e.v << " " << e.label << "\n";
  }
}

// Parses graph bodies from \p in, appending to \p db. Returns the status.
Status ParseInto(std::istream& in, GraphDatabase* db) {
  GraphBuilder builder;
  bool have_graph = false;
  std::string line;
  int lineno = 0;
  auto flush = [&]() -> Status {
    if (!have_graph) return Status::OK();
    Graph g = std::move(builder).Build();
    builder = GraphBuilder();
    db->Add(std::move(g));
    return Status::OK();
  };
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag) || tag[0] == '#') continue;
    if (tag == "t") {
      PRAGUE_RETURN_NOT_OK(flush());
      have_graph = true;
    } else if (tag == "v") {
      NodeId id;
      std::string label;
      if (!(ls >> id >> label)) {
        return Status::Corruption("bad v line at " + std::to_string(lineno));
      }
      if (id != builder.NodeCount()) {
        return Status::Corruption("non-dense node id at line " +
                                  std::to_string(lineno));
      }
      builder.AddNode(db->mutable_labels()->Intern(label));
    } else if (tag == "e") {
      NodeId u, v;
      Label elabel = 0;
      if (!(ls >> u >> v)) {
        return Status::Corruption("bad e line at " + std::to_string(lineno));
      }
      ls >> elabel;  // optional edge label
      Result<EdgeId> r = builder.AddEdge(u, v, elabel);
      if (!r.ok()) {
        return Status::Corruption("bad edge at line " +
                                  std::to_string(lineno) + ": " +
                                  r.status().message());
      }
    } else {
      return Status::Corruption("unknown tag '" + tag + "' at line " +
                                std::to_string(lineno));
    }
  }
  return flush();
}

}  // namespace

Status WriteDatabase(const GraphDatabase& db, std::ostream* out) {
  for (GraphId id = 0; id < db.size(); ++id) {
    (*out) << "t # " << id << "\n";
    WriteOneGraph(db.graph(id), db.labels(), *out);
  }
  return out->good() ? Status::OK() : Status::IOError("write failed");
}

Status WriteDatabaseToFile(const GraphDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return WriteDatabase(db, &out);
}

Result<GraphDatabase> ReadDatabase(std::istream* in) {
  GraphDatabase db;
  Status st = ParseInto(*in, &db);
  if (!st.ok()) return st;
  return db;
}

Result<GraphDatabase> ReadDatabaseFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadDatabase(&in);
}

void WriteGraph(const Graph& g, const LabelDictionary& labels,
                std::ostream* out) {
  (*out) << "t # 0\n";
  WriteOneGraph(g, labels, *out);
}

Result<Graph> ParseGraph(const std::string& text, LabelDictionary* labels) {
  GraphDatabase scratch;
  std::istringstream in("t # 0\n" + text);
  Status st = ParseInto(in, &scratch);
  if (!st.ok()) return st;
  if (scratch.size() != 1) {
    return Status::Corruption("expected exactly one graph");
  }
  // Re-intern labels into the caller's dictionary.
  const Graph& parsed = scratch.graph(0);
  GraphBuilder builder;
  for (NodeId n = 0; n < parsed.NodeCount(); ++n) {
    builder.AddNode(
        labels->Intern(scratch.labels().Name(parsed.NodeLabel(n))));
  }
  for (const Edge& e : parsed.edges()) {
    Result<EdgeId> r = builder.AddEdge(e.u, e.v, e.label);
    if (!r.ok()) return r.status();
  }
  return std::move(builder).Build();
}

}  // namespace prague
