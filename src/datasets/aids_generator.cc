#include "datasets/aids_generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/rng.h"

namespace prague {

namespace {

// Atom alphabet with skewed draw weights, mirroring organic chemistry:
// carbon dominates, hetero-atoms are minorities, heavy metals are rare.
struct Atom {
  const char* symbol;
  double weight;
};

constexpr Atom kAtoms[] = {
    {"C", 0.720}, {"N", 0.090}, {"O", 0.090},  {"S", 0.040},
    {"Cl", 0.020}, {"P", 0.012}, {"F", 0.010}, {"Br", 0.008},
    {"I", 0.004}, {"Hg", 0.003}, {"As", 0.002}, {"Cu", 0.001},
};

Label DrawAtom(Rng* rng, const std::vector<Label>& atom_labels) {
  static const std::vector<double> weights = [] {
    std::vector<double> w;
    for (const Atom& a : kAtoms) w.push_back(a.weight);
    return w;
  }();
  return atom_labels[rng->Weighted(weights)];
}

// Molecule size: shifted sum of exponentials (gamma-ish) — mean ≈
// avg_nodes, with a heavy right tail reaching the cap.
size_t DrawSize(Rng* rng, double avg_nodes, size_t max_nodes) {
  double base = 6.0;
  double mean_extra = avg_nodes - base;
  double x = 0;
  for (int i = 0; i < 3; ++i) {
    // Exponential with mean mean_extra/3 via inverse CDF.
    double u = rng->NextDouble();
    x += -(mean_extra / 3.0) * std::log(1.0 - u);
  }
  size_t n = static_cast<size_t>(base + x);
  return std::clamp<size_t>(n, 3, max_nodes);
}

// Grows one molecule: a seed ring or chain, then attach rings/chains at
// random atoms until the size target is met, with occasional extra ring
// closures (molecules average ~2 independent cycles).
Graph GenerateMolecule(Rng* rng, const std::vector<Label>& atom_labels,
                       size_t target_nodes, bool bond_labels) {
  GraphBuilder b;
  std::vector<NodeId> nodes;
  auto add_atom = [&]() {
    NodeId n = b.AddNode(DrawAtom(rng, atom_labels));
    nodes.push_back(n);
    return n;
  };
  auto connect = [&](NodeId u, NodeId v) {
    Label bond = bond_labels && rng->Chance(0.15) ? 1 : 0;
    (void)b.AddEdge(u, v, bond);
  };

  // Seed: ring of 5/6 (70%) or chain of 3-5 (30%).
  if (rng->Chance(0.7) && target_nodes >= 5) {
    size_t ring = rng->Chance(0.6) ? 6 : 5;
    ring = std::min(ring, target_nodes);
    NodeId first = add_atom();
    NodeId prev = first;
    for (size_t i = 1; i < ring; ++i) {
      NodeId n = add_atom();
      connect(prev, n);
      prev = n;
    }
    connect(prev, first);
  } else {
    size_t chain = std::min<size_t>(3 + rng->Below(3), target_nodes);
    NodeId prev = add_atom();
    for (size_t i = 1; i < chain; ++i) {
      NodeId n = add_atom();
      connect(prev, n);
      prev = n;
    }
  }

  // Growth: attach chains (70%) or rings (30%) to random existing atoms.
  while (nodes.size() < target_nodes) {
    NodeId anchor = nodes[rng->Below(nodes.size())];
    if (rng->Chance(0.3) && target_nodes - nodes.size() >= 4) {
      size_t ring = std::min<size_t>(rng->Chance(0.6) ? 5 : 4,
                                     target_nodes - nodes.size());
      NodeId prev = anchor;
      NodeId first = kInvalidNode;
      for (size_t i = 0; i < ring; ++i) {
        NodeId n = add_atom();
        if (first == kInvalidNode) first = n;
        connect(prev, n);
        prev = n;
      }
      connect(prev, anchor);  // close the ring through the anchor
    } else {
      size_t chain =
          std::min<size_t>(1 + rng->Below(4), target_nodes - nodes.size());
      NodeId prev = anchor;
      for (size_t i = 0; i < chain; ++i) {
        NodeId n = add_atom();
        connect(prev, n);
        prev = n;
      }
    }
  }
  return std::move(b).Build();
}

// Real molecules never bond heavy metals to each other; enforcing that
// here keeps some label pairs absent from the whole database (which the
// paper's "best case" queries — a frequent fragment plus one impossible
// edge — rely on). One pass suffices: relabeling only turns metals into
// carbon and can never create a new metal-metal bond.
Graph ForbidMetalMetalBonds(const Graph& g, Label carbon,
                            Label hg, Label as, Label cu) {
  auto is_metal = [&](Label l) { return l == hg || l == as || l == cu; };
  std::vector<Label> labels = g.node_labels();
  for (const Edge& e : g.edges()) {
    if (is_metal(labels[e.u]) && is_metal(labels[e.v])) {
      labels[e.v] = carbon;
    }
  }
  GraphBuilder b;
  for (Label l : labels) b.AddNode(l);
  for (const Edge& e : g.edges()) (void)b.AddEdge(e.u, e.v, e.label);
  return std::move(b).Build();
}

}  // namespace

GraphDatabase GenerateAidsLikeDatabase(const AidsGeneratorConfig& config) {
  GraphDatabase db;
  std::vector<Label> atom_labels;
  for (const Atom& a : kAtoms) {
    atom_labels.push_back(db.mutable_labels()->Intern(a.symbol));
  }
  Label carbon = *db.labels().Lookup("C");
  Label hg = *db.labels().Lookup("Hg");
  Label as = *db.labels().Lookup("As");
  Label cu = *db.labels().Lookup("Cu");
  for (size_t i = 0; i < config.graph_count; ++i) {
    Rng rng(config.seed * 0x9E3779B97F4A7C15ULL + i);
    size_t target = DrawSize(&rng, config.avg_nodes, config.max_nodes);
    db.Add(ForbidMetalMetalBonds(
        GenerateMolecule(&rng, atom_labels, target, config.bond_labels),
        carbon, hg, as, cu));
  }
  return db;
}

}  // namespace prague
