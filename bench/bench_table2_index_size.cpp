// Table II reproduction: index size comparison (MB).
//
// Paper (AIDS 40K, α=0.1): DVP grows steeply with σ (179.5 → 918.7 MB for
// σ=1..4); PRG sits at 36.1 MB; SG/GR share the smallest index (11.1 MB).
// Expected shape at any scale: size(SG/GR) < size(PRG) < size(DVP@σ=1),
// and DVP grows monotonically with σ.

#include <cstdio>

#include "bench_common.h"
#include "util/bytes.h"

using namespace prague;
using namespace prague::bench;

int main() {
  Banner("Table II: index size comparison (MB)",
         "AIDS-like dataset, alpha=0.1");
  Workbench bench = BuildAidsWorkbench(AidsGraphCount());
  std::printf("dataset: %zu graphs; mining took %.1fs (%zu frequent, %zu "
              "DIFs)\n\n",
              bench.db.size(), bench.mining_seconds,
              bench.mined.frequent.size(), bench.mined.difs.size());

  FeatureIndex features = bench.BuildFeatureIndex(4);

  TablePrinter table({"sigma", "DVP", "PRG", "SG/GR"});
  for (int sigma = 1; sigma <= 4; ++sigma) {
    DistVpLikeEngine dvp(bench.mined.frequent, &bench.db, sigma);
    table.AddRow({std::to_string(sigma),
                  Fmt(ToMegabytes(dvp.IndexBytes())),
                  Fmt(ToMegabytes(bench.indexes.StorageBytes())),
                  Fmt(ToMegabytes(features.StorageBytes()))});
  }
  table.Print();
  std::printf(
      "\npaper shape check: SG/GR smallest, PRG moderate and "
      "sigma-independent, DVP largest and growing with sigma.\n");
  return 0;
}
