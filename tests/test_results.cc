// Result generation (Algorithm 5): equivalence with the brute-force
// Definition-3 similarity search, ordering, and exact verification.

#include <gtest/gtest.h>

#include <map>

#include "core/candidates.h"
#include "core/results.h"
#include "core/visual_query.h"
#include "datasets/query_workload.h"
#include "graph/vf2.h"
#include "test_fixtures.h"

namespace prague {
namespace {

struct BuiltQuery {
  VisualQuery query;
  SpigSet spigs;
};

BuiltQuery Formulate(const Graph& q, const std::vector<EdgeId>& sequence,
                     const ActionAwareIndexes& indexes) {
  BuiltQuery out;
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = out.query.AddNode(q.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  for (EdgeId e : sequence) {
    const Edge& edge = q.GetEdge(e);
    Result<FormulationId> ell =
        out.query.AddEdge(user_node(edge.u), user_node(edge.v), edge.label);
    if (!ell.ok()) std::abort();
    if (!out.spigs.AddForNewEdge(out.query, *ell, indexes).ok()) std::abort();
  }
  return out;
}

TEST(ExactVerificationTest, FiltersToTrueMatches) {
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = testing::MakeGraph({testing::kC, testing::kS}, {{0, 1}});
  IdSet all = fixture.db.AllIds();
  std::vector<GraphId> verified = ExactVerification(q, all, fixture.db);
  for (GraphId gid = 0; gid < fixture.db.size(); ++gid) {
    bool expected = IsSubgraphIsomorphic(q, fixture.db.graph(gid));
    bool got = std::find(verified.begin(), verified.end(), gid) !=
               verified.end();
    EXPECT_EQ(got, expected) << gid;
  }
}

// Parameterized over (query shape, sigma): SimilarResultsGen must return
// exactly the Definition-3 answer set with correct distances.
struct SimCase {
  std::vector<Label> labels;
  std::vector<std::pair<NodeId, NodeId>> edges;
  int sigma;
};

class SimilarResultsPropertyTest : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimilarResultsPropertyTest, MatchesBruteForceSimilaritySearch) {
  const auto& fixture = testing::TinyFixture::Get();
  const SimCase& c = GetParam();
  Graph q = testing::MakeGraph(c.labels, c.edges);
  BuiltQuery built =
      Formulate(q, DefaultFormulationSequence(q), fixture.indexes);
  SimilarCandidates cands = SimilarSubCandidates(
      built.spigs, built.query.EdgeCount(), c.sigma, fixture.indexes);
  // Distance-0 matches come through the exact path.
  const SpigVertex* target = built.spigs.FindVertex(built.query.FullMask());
  ASSERT_NE(target, nullptr);
  IdSet rq = ExactSubCandidates(*target, fixture.indexes);
  SimilarGenStats stats;
  std::vector<SimilarMatch> got =
      SimilarResultsGen(q, built.spigs, cands, c.sigma, fixture.db, &rq,
                        &stats);

  auto expected =
      testing::BruteForceSimilaritySearch(fixture.db, q, c.sigma);
  ASSERT_EQ(got.size(), expected.size());
  std::map<GraphId, int> expected_by_id(expected.begin(), expected.end());
  int last_distance = 0;
  for (const SimilarMatch& m : got) {
    ASSERT_TRUE(expected_by_id.contains(m.gid)) << m.gid;
    EXPECT_EQ(m.distance, expected_by_id[m.gid]) << m.gid;
    EXPECT_GE(m.distance, last_distance) << "ordering violated";
    last_distance = m.distance;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SimilarResultsPropertyTest,
    ::testing::Values(
        // Triangle + S pendant (exact match exists: g0).
        SimCase{{0, 0, 0, 1}, {{0, 1}, {1, 2}, {0, 2}, {0, 3}}, 2},
        // Triangle + N pendant (no exact match).
        SimCase{{0, 0, 0, 3}, {{0, 1}, {1, 2}, {0, 2}, {0, 3}}, 2},
        // C-S-C path + O (matches g2/g5 shapes approximately).
        SimCase{{0, 1, 0, 2}, {{0, 1}, {1, 2}, {2, 3}}, 1},
        // Square C-C-S-C.
        SimCase{{0, 0, 1, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 3},
        // Star around C.
        SimCase{{0, 1, 2, 0}, {{0, 1}, {0, 2}, {0, 3}}, 2},
        // 5-cycle with N (stress sigma = 4).
        SimCase{{0, 0, 0, 1, 3}, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}},
                4}));

TEST(SimilarResultsTest, StatsAreConsistent) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 17);
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(6, 2, "stats");
  ASSERT_TRUE(spec.ok());
  BuiltQuery built = Formulate(spec->graph, spec->sequence, fixture.indexes);
  int sigma = 2;
  SimilarCandidates cands = SimilarSubCandidates(
      built.spigs, built.query.EdgeCount(), sigma, fixture.indexes);
  SimilarGenStats stats;
  std::vector<SimilarMatch> got = SimilarResultsGen(
      spec->graph, built.spigs, cands, sigma, fixture.db, nullptr, &stats);
  EXPECT_EQ(got.size(), stats.verification_free + stats.verified);
  size_t free_count = 0;
  for (const SimilarMatch& m : got) {
    if (!m.verified) ++free_count;
  }
  EXPECT_EQ(free_count, stats.verification_free);
}

TEST(SimilarResultsTest, VerificationFreeMatchesAreCorrect) {
  // Even the verification-free shortcut must produce true matches.
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 23);
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(7, 1, "vf");
  ASSERT_TRUE(spec.ok());
  BuiltQuery built = Formulate(spec->graph, spec->sequence, fixture.indexes);
  int sigma = 3;
  SimilarCandidates cands = SimilarSubCandidates(
      built.spigs, built.query.EdgeCount(), sigma, fixture.indexes);
  std::vector<SimilarMatch> got = SimilarResultsGen(
      spec->graph, built.spigs, cands, sigma, fixture.db, nullptr, nullptr);
  for (const SimilarMatch& m : got) {
    if (m.verified) continue;
    MccsResult truth = ComputeMccs(spec->graph, fixture.db.graph(m.gid));
    EXPECT_EQ(truth.distance, m.distance) << "g" << m.gid;
  }
}

}  // namespace
}  // namespace prague
