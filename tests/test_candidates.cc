// Candidate generation (Algorithms 3 & 4): soundness (no false
// negatives), exactness for indexed fragments, verification-free
// guarantees for Rfree.

#include <gtest/gtest.h>

#include <map>

#include "core/candidates.h"
#include "core/visual_query.h"
#include "datasets/query_workload.h"
#include "graph/mccs.h"
#include "graph/vf2.h"
#include "test_fixtures.h"
#include "util/rng.h"

namespace prague {
namespace {

struct BuiltQuery {
  VisualQuery query;
  SpigSet spigs;
};

BuiltQuery Formulate(const Graph& q, const std::vector<EdgeId>& sequence,
                     const ActionAwareIndexes& indexes) {
  BuiltQuery out;
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = out.query.AddNode(q.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  for (EdgeId e : sequence) {
    const Edge& edge = q.GetEdge(e);
    Result<FormulationId> ell =
        out.query.AddEdge(user_node(edge.u), user_node(edge.v), edge.label);
    if (!ell.ok()) std::abort();
    Result<const Spig*> spig =
        out.spigs.AddForNewEdge(out.query, *ell, indexes);
    if (!spig.ok()) std::abort();
  }
  return out;
}

// True exact answer set by VF2 scan.
IdSet TrueMatches(const GraphDatabase& db, const Graph& q) {
  std::vector<GraphId> ids;
  for (GraphId gid = 0; gid < db.size(); ++gid) {
    if (IsSubgraphIsomorphic(q, db.graph(gid))) ids.push_back(gid);
  }
  return IdSet(std::move(ids));
}

TEST(ExactCandidatesTest, ExactForIndexedFragments) {
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = testing::MakeGraph({testing::kC, testing::kC}, {{0, 1}});
  BuiltQuery built =
      Formulate(q, DefaultFormulationSequence(q), fixture.indexes);
  const SpigVertex* target = built.spigs.FindVertex(built.query.FullMask());
  ASSERT_NE(target, nullptr);
  IdSet rq = ExactSubCandidates(*target, fixture.indexes);
  EXPECT_EQ(rq, TrueMatches(fixture.db, q));
}

TEST(ExactCandidatesTest, SoundnessOnEveryVertexOfEveryPrefix) {
  // For every SPIG vertex, ExactSubCandidates must be a superset of the
  // vertex fragment's true FSG ids.
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = testing::MakeGraph(
      {testing::kC, testing::kC, testing::kC, testing::kS},
      {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  BuiltQuery built =
      Formulate(q, DefaultFormulationSequence(q), fixture.indexes);
  for (FormulationId ell : built.query.AliveEdgeIds()) {
    const Spig* spig = built.spigs.Find(ell);
    for (int level = 1; level <= spig->MaxLevel(); ++level) {
      for (const SpigVertex& v : spig->Level(level)) {
        IdSet rq = ExactSubCandidates(v, fixture.indexes);
        IdSet truth = TrueMatches(fixture.db, v.fragment);
        EXPECT_TRUE(truth.IsSubsetOf(rq))
            << v.code << " rq=" << rq.ToString()
            << " truth=" << truth.ToString();
      }
    }
  }
}

TEST(ExactCandidatesTest, ZeroSupportEdgeYieldsEmpty) {
  const auto& fixture = testing::TinyFixture::Get();
  // N-N never occurs in the tiny database.
  Graph q = testing::MakeGraph({testing::kN, testing::kN}, {{0, 1}});
  BuiltQuery built =
      Formulate(q, DefaultFormulationSequence(q), fixture.indexes);
  const SpigVertex* target = built.spigs.FindVertex(built.query.FullMask());
  ASSERT_NE(target, nullptr);
  EXPECT_TRUE(ExactSubCandidates(*target, fixture.indexes).empty());
}

TEST(SimilarCandidatesTest, RfreeEntriesAreWithinDistance) {
  // Every graph in Rfree(i) provably has dist ≤ |q| - i: verify with the
  // MCCS oracle.
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 5);
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(6, 1, "t");
  ASSERT_TRUE(spec.ok());
  BuiltQuery built = Formulate(spec->graph, spec->sequence, fixture.indexes);
  int sigma = 2;
  SimilarCandidates cands = SimilarSubCandidates(
      built.spigs, built.query.EdgeCount(), sigma, fixture.indexes);
  int qsize = static_cast<int>(built.query.EdgeCount());
  for (const auto& [level, ids] : cands.free) {
    for (GraphId gid : ids) {
      EXPECT_TRUE(WithinSubgraphDistance(spec->graph, fixture.db.graph(gid),
                                         qsize - level))
          << "g" << gid << " at level " << level;
    }
  }
}

TEST(SimilarCandidatesTest, CompletePerLevel) {
  // Every graph whose MCCS level is i must appear among level-i (or
  // higher) candidates.
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = testing::MakeGraph(
      {testing::kC, testing::kC, testing::kC, testing::kN},
      {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  BuiltQuery built =
      Formulate(q, DefaultFormulationSequence(q), fixture.indexes);
  int sigma = 3;
  SimilarCandidates cands = SimilarSubCandidates(
      built.spigs, built.query.EdgeCount(), sigma, fixture.indexes);
  int qsize = static_cast<int>(q.EdgeCount());
  for (GraphId gid = 0; gid < fixture.db.size(); ++gid) {
    MccsResult m = ComputeMccs(q, fixture.db.graph(gid));
    int level = qsize - m.distance;
    if (m.distance > sigma || m.distance == 0 || level < 1) continue;
    bool found = false;
    for (int i = level; i < qsize && !found; ++i) {
      auto f = cands.free.find(i);
      auto v = cands.ver.find(i);
      found = (f != cands.free.end() && f->second.Contains(gid)) ||
              (v != cands.ver.end() && v->second.Contains(gid));
    }
    EXPECT_TRUE(found) << "g" << gid << " mccs level " << level;
  }
}

TEST(SimilarCandidatesTest, VerDisjointFromFreePerLevel) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 6);
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(6, 2, "t");
  ASSERT_TRUE(spec.ok());
  BuiltQuery built = Formulate(spec->graph, spec->sequence, fixture.indexes);
  SimilarCandidates cands = SimilarSubCandidates(
      built.spigs, built.query.EdgeCount(), 3, fixture.indexes);
  for (const auto& [level, ver] : cands.ver) {
    auto free_it = cands.free.find(level);
    ASSERT_NE(free_it, cands.free.end());
    EXPECT_TRUE(ver.Intersect(free_it->second).empty()) << level;
  }
}

TEST(SimilarCandidatesTest, SequenceInvariance) {
  // Lemma 2 corollary: formulation order does not change candidates.
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = testing::MakeGraph(
      {testing::kC, testing::kC, testing::kC, testing::kS},
      {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  BuiltQuery a = Formulate(q, DefaultFormulationSequence(q), fixture.indexes);
  Rng rng(123);
  BuiltQuery b =
      Formulate(q, RandomFormulationSequence(q, &rng), fixture.indexes);
  int sigma = 2;
  SimilarCandidates ca = SimilarSubCandidates(a.spigs, q.EdgeCount(), sigma,
                                              fixture.indexes);
  SimilarCandidates cb = SimilarSubCandidates(b.spigs, q.EdgeCount(), sigma,
                                              fixture.indexes);
  EXPECT_EQ(ca.AllFree(), cb.AllFree());
  EXPECT_EQ(ca.AllVer(), cb.AllVer());
  // Exact candidates too.
  const SpigVertex* ta = a.spigs.FindVertex(a.query.FullMask());
  const SpigVertex* tb = b.spigs.FindVertex(b.query.FullMask());
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  EXPECT_EQ(ExactSubCandidates(*ta, fixture.indexes),
            ExactSubCandidates(*tb, fixture.indexes));
}

}  // namespace
}  // namespace prague
