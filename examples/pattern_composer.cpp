// Pattern composer: the "advanced GUI" of the paper's footnote 1 —
// composing queries from canned patterns (e.g. dropping a whole benzene
// ring) instead of drawing edge-at-a-time, plus the footnote-5 node
// relabeling and multi-edge deletion extensions.
//
// Flow:
//  1. Drop a benzene ring (6-cycle of C) onto the canvas — PRAGUE builds
//     one SPIG per ring bond, exactly as if each was hand-drawn.
//  2. Attach a C-N tail pattern to one ring atom.
//  3. The query has no exact match; relabel N → O and watch the engine
//     return to exact mode in place (no replay).
//  4. Delete two tail bonds at once and run the final query.
//
// Usage: ./build/examples/pattern_composer [graph_count=2000]

#include <cstdio>
#include <cstdlib>

#include "core/prague_session.h"
#include "datasets/aids_generator.h"
#include "index/action_aware_index.h"
#include "util/stopwatch.h"

using namespace prague;

namespace {

Graph MakeRing(Label label, size_t size) {
  GraphBuilder b;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < size; ++i) nodes.push_back(b.AddNode(label));
  for (size_t i = 0; i < size; ++i) {
    (void)b.AddEdge(nodes[i], nodes[(i + 1) % size]);
  }
  return std::move(b).Build();
}

Graph MakeTail(Label c, Label n) {
  GraphBuilder b;
  NodeId a = b.AddNode(c);
  NodeId x = b.AddNode(c);
  NodeId y = b.AddNode(n);
  (void)b.AddEdge(a, x);
  (void)b.AddEdge(x, y);
  return std::move(b).Build();
}

}  // namespace

int main(int argc, char** argv) {
  size_t graph_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;

  std::printf("== pattern_composer: canned patterns + in-place edits ==\n\n");
  AidsGeneratorConfig gen;
  gen.graph_count = graph_count;
  GraphDatabase db = GenerateAidsLikeDatabase(gen);
  MiningConfig mining;
  mining.min_support_ratio = 0.1;
  mining.max_fragment_edges = 10;
  A2fConfig a2f;
  a2f.beta = 4;
  Result<ActionAwareIndexes> indexes = BuildActionAwareIndexes(db, mining, a2f);
  if (!indexes.ok()) {
    std::fprintf(stderr, "%s\n", indexes.status().ToString().c_str());
    return 1;
  }
  Label C = *db.labels().Lookup("C");
  Label N = *db.labels().Lookup("N");
  Label O = *db.labels().Lookup("O");

  PragueSession session(DatabaseSnapshot::Borrow(&db, &indexes.value()));

  // 1. Benzene ring drop.
  Graph benzene = MakeRing(C, 6);
  Stopwatch drop_timer;
  Result<std::vector<StepReport>> ring = session.AddPattern(benzene);
  if (!ring.ok()) {
    std::fprintf(stderr, "%s\n", ring.status().ToString().c_str());
    return 1;
  }
  std::printf("dropped benzene ring: %zu SPIGs built in %.2f ms; |Rq|=%zu\n",
              ring->size(), drop_timer.ElapsedMillis(),
              session.exact_candidates().size());

  // 2. Attach a C-C-N tail at ring atom 0 (session node 0 is a C).
  Graph tail = MakeTail(C, N);
  Result<std::vector<StepReport>> tail_reports =
      session.AddPattern(tail, {{0, 0}});
  if (!tail_reports.ok()) {
    std::fprintf(stderr, "%s\n", tail_reports.status().ToString().c_str());
    return 1;
  }
  std::printf("attached C-C-N tail: |q|=%zu edges, |Rq|=%zu, mode=%s\n",
              session.query().EdgeCount(),
              session.exact_candidates().size(),
              session.similarity_mode() ? "similarity" : "exact");

  // 3. Relabel the N terminal to O, in place.
  NodeId n_node = kInvalidNode;
  for (NodeId n = 0; n < session.query().UserNodeCount(); ++n) {
    if (session.query().NodeLabel(n) == N) n_node = n;
  }
  if (n_node != kInvalidNode) {
    Stopwatch relabel_timer;
    Result<StepReport> report = session.RelabelNode(n_node, O);
    if (report.ok()) {
      std::printf(
          "relabeled N->O in %.3f ms (SPIG refresh, no replay): |Rq|=%zu, "
          "mode=%s\n",
          relabel_timer.ElapsedMillis(), report->exact_candidates,
          session.similarity_mode() ? "similarity" : "exact");
    }
  }

  // 4. Delete the two tail bonds at once.
  std::vector<FormulationId> tail_edges;
  for (const StepReport& r : *tail_reports) tail_edges.push_back(r.edge);
  Stopwatch delete_timer;
  Result<StepReport> deleted = session.DeleteEdges(tail_edges);
  if (deleted.ok()) {
    std::printf("deleted the tail (%zu edges) in %.3f ms: back to |q|=%zu\n",
                tail_edges.size(), delete_timer.ElapsedMillis(),
                session.query().EdgeCount());
  } else {
    std::printf("tail deletion refused: %s\n",
                deleted.status().ToString().c_str());
  }

  RunStats stats;
  Result<QueryResults> results = session.Run(&stats);
  if (!results.ok()) {
    std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
    return 1;
  }
  if (results->similarity) {
    std::printf("\nfinal run: %zu similarity matches, SRT %.2f ms\n",
                results->similar.size(), stats.srt_seconds * 1000);
  } else {
    std::printf("\nfinal run: %zu exact matches, SRT %.2f ms\n",
                results->exact.size(), stats.srt_seconds * 1000);
  }
  return 0;
}
