// Figure 9(a) reproduction: SRT (ms) of subgraph *containment* queries —
// PRAGUE's SPIG-based exact path (PRG) vs the GBLENDER baseline (GBR).
//
// Paper: the two are near-identical (PRAGUE's unified framework costs
// nothing on containment queries); Q1-Q3 sit below 0.1 ms.

#include <cstdio>

#include "bench_common.h"

using namespace prague;
using namespace prague::bench;

int main() {
  Banner("Figure 9(a): containment-query SRT (ms), PRG vs GBR",
         "AIDS-like dataset, six containment queries of size 4-9");
  Workbench bench = BuildAidsWorkbench(AidsGraphCount());
  std::vector<VisualQuerySpec> queries = ContainmentQueries(bench);

  SessionSimulator simulator(bench.snapshot);
  TablePrinter table({"query", "|q|", "PRG (ms)", "GBR (ms)", "matches"});
  for (const VisualQuerySpec& spec : queries) {
    // Warm run discarded (paper discards the first formulation too).
    (void)simulator.RunPrague(spec);
    double prg = 0, gbr = 0;
    size_t matches = 0;
    constexpr int kRuns = 3;
    for (int run = 0; run < kRuns; ++run) {
      Result<SimulationResult> p = simulator.RunPrague(spec);
      Result<SimulationResult> g = simulator.RunGBlender(spec);
      if (!p.ok() || !g.ok()) {
        std::fprintf(stderr, "run failed for %s\n", spec.name.c_str());
        return 1;
      }
      prg += p->srt_seconds / kRuns;
      gbr += g->srt_seconds / kRuns;
      matches = p->results.exact.size();
    }
    table.AddRow({spec.name, std::to_string(spec.graph.EdgeCount()),
                  FmtMs(prg), FmtMs(gbr), std::to_string(matches)});
  }
  table.Print();
  std::printf(
      "\npaper shape check: PRG ~= GBR on containment queries (the unified "
      "framework sacrifices nothing).\n");
  return 0;
}
