// Candidate generation — Algorithms 3 and 4.
//
// ExactSubCandidates resolves one SPIG vertex to the id set of data graphs
// that (may) contain its subgraph: exact FSG ids straight from the index
// for frequent fragments and DIFs, or the intersection of the Φ/Υ FSG id
// sets for NIFs (a sound superset).
//
// SimilarSubCandidates walks the SPIG levels |q|−1 … |q|−σ and splits the
// per-level candidates into Rfree — graphs proven to contain a full
// level-i subgraph of q (distance ≤ |q|−i without any verification) — and
// Rver, the NIF-derived candidates that still need an MCCS check.
//
// Incremental candidate engine: a SPIG vertex's candidate set depends
// only on its Fragment List and the (session-immutable) indexes, so it is
// memoized in the vertex (SpigVertex::cand_cache) the first time it is
// resolved. A formulation step therefore only computes candidates for the
// vertices the step created; persisted vertices answer from cache. The
// cache is reset by SpigSet::RefreshForRelabel (the fragment changed) and
// survives edge deletions (surviving fragments are untouched).

#ifndef PRAGUE_CORE_CANDIDATES_H_
#define PRAGUE_CORE_CANDIDATES_H_

#include <map>

#include "core/spig.h"
#include "index/action_aware_index.h"
#include "index/sharded_snapshot.h"
#include "util/deadline.h"
#include "util/id_set.h"

namespace prague {

/// \brief Algorithm 3: candidate data-graph ids for one SPIG vertex,
/// computed from scratch (no memo read or write).
///
/// For a NIF with empty Φ and Υ the subgraph provably has zero support
/// (every infrequent fragment with support ≥ 1 contains an indexed DIF),
/// so the result is empty.
IdSet ExactSubCandidates(const SpigVertex& v,
                         const ActionAwareIndexes& indexes);

/// \brief Algorithm 3 against one shard's index slices: the result is
/// exactly the global candidate set intersected with the shard's graph-id
/// range (slicing distributes over union and intersection). Never touches
/// the per-vertex memo — shard tasks run concurrently and the memo is
/// keyed to the full index.
IdSet ExactSubCandidates(const SpigVertex& v, const IndexShard& shard);

/// \brief Algorithm 3 through the per-vertex memo: answers from
/// v.cand_cache when valid, else computes and fills it. Not thread-safe
/// across calls on the same vertex.
const IdSet& CachedSubCandidates(const SpigVertex& v,
                                 const ActionAwareIndexes& indexes);

/// \brief Per-level split of similarity candidates.
struct SimilarCandidates {
  /// level → verification-free candidate ids (Rfree(i)).
  std::map<int, IdSet> free;
  /// level → candidates needing MCCS verification (Rver(i)), already
  /// de-overlapped against the same level's Rfree (Algorithm 4 line 7).
  std::map<int, IdSet> ver;

  /// \brief |∪ Rfree ∪ Rver| — the candidate-size metric of Figures
  /// 9(b)-(e) and 10. Counted by one merged sweep over the per-level
  /// sets; no intermediate sets are materialized.
  size_t TotalCandidates() const;
  /// \brief Union of all verification-free ids across levels.
  IdSet AllFree() const;
  /// \brief Union of all needs-verification ids across levels.
  IdSet AllVer() const;

  /// \brief Per-level restriction to the graph-id range [begin, end) —
  /// how a sharded run slices candidates that were derived (and memoized)
  /// globally at formulation time. Levels are preserved even when a slice
  /// comes out empty, so truncation semantics (which levels were derived)
  /// survive the restriction. The free/ver disjointness per level is
  /// preserved by construction.
  SimilarCandidates Restrict(GraphId begin, GraphId end) const;
};

/// \brief Algorithm 4: similarity candidates for the current query.
///
/// \p query_size is |q| in edges; levels below 1 are clamped away.
/// \p use_cache routes per-vertex resolution through the SpigVertex memo
/// (the incremental warm path); pass false to force cold recomputation.
/// Under a bounded \p deadline the walk stops at a level boundary: levels
/// derived before the cut are complete, deeper (more-dissimilar) levels
/// are absent, and \p truncated (optional) reports the cut. A partially
/// derived level is discarded — its candidate set would be an unsound
/// subset.
SimilarCandidates SimilarSubCandidates(const SpigSet& spigs,
                                       size_t query_size, int sigma,
                                       const ActionAwareIndexes& indexes,
                                       bool use_cache = true,
                                       const Deadline& deadline = Deadline(),
                                       bool* truncated = nullptr);

/// \brief Algorithm 4 against one shard's index slices (cold, memo-free —
/// see the sharded ExactSubCandidates). Per level the result equals the
/// global derivation restricted to the shard's range: slicing distributes
/// over the per-vertex unions, and because Rfree slices the same way, the
/// line-7 de-overlap ver \= free commutes with the restriction. Same
/// level-boundary deadline semantics as the global overload.
SimilarCandidates SimilarSubCandidates(const SpigSet& spigs,
                                       size_t query_size, int sigma,
                                       const IndexShard& shard,
                                       const Deadline& deadline = Deadline(),
                                       bool* truncated = nullptr);

}  // namespace prague

#endif  // PRAGUE_CORE_CANDIDATES_H_
