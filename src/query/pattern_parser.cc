#include "query/pattern_parser.h"

#include <cctype>
#include <map>

#include "graph/subgraph_ops.h"

namespace prague {

namespace {

// Minimal recursive-descent scanner over the pattern text.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(
                                      static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  // Identifiers: [A-Za-z0-9_]+ (covers node names and label strings).
  Result<std::string> Identifier() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected identifier at position " +
                                     std::to_string(start));
    }
    return text_.substr(start, pos_ - start);
  }

  Result<Label> Number() {
    Result<std::string> word = Identifier();
    if (!word.ok()) return word.status();
    for (char c : *word) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return Status::InvalidArgument("expected number, got '" + *word +
                                       "'");
      }
    }
    return static_cast<Label>(std::stoul(*word));
  }

  size_t position() const { return pos_; }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

// Either interns via the mutable dictionary or resolves via the strict
// read-only one.
class LabelResolver {
 public:
  LabelResolver(LabelDictionary* mutable_dict, const LabelDictionary* strict)
      : mutable_(mutable_dict), strict_(strict) {}

  Result<Label> Resolve(const std::string& name) {
    if (mutable_ != nullptr) return mutable_->Intern(name);
    return strict_->Lookup(name);
  }

 private:
  LabelDictionary* mutable_;
  const LabelDictionary* strict_;
};

Result<ParsedPattern> Parse(const std::string& text, LabelResolver* labels) {
  Scanner scan(text);
  GraphBuilder builder;
  std::map<std::string, NodeId> nodes;
  std::vector<std::string> names;
  std::vector<EdgeId> sequence;

  // Parses one `(name)` or `(name:Label)` reference, creating the node on
  // first sight.
  auto parse_node = [&]() -> Result<NodeId> {
    if (!scan.Consume('(')) {
      return Status::InvalidArgument("expected '(' at position " +
                                     std::to_string(scan.position()));
    }
    Result<std::string> name = scan.Identifier();
    if (!name.ok()) return name.status();
    std::string label_name;
    if (scan.Consume(':')) {
      Result<std::string> label = scan.Identifier();
      if (!label.ok()) return label.status();
      label_name = *label;
    }
    if (!scan.Consume(')')) {
      return Status::InvalidArgument("expected ')' after node '" + *name +
                                     "'");
    }
    auto it = nodes.find(*name);
    if (it != nodes.end()) {
      if (!label_name.empty()) {
        Result<Label> label = labels->Resolve(label_name);
        if (!label.ok()) return label.status();
        if (*label != builder.Snapshot().NodeLabel(it->second)) {
          return Status::InvalidArgument("node '" + *name +
                                         "' relabeled mid-pattern");
        }
      }
      return it->second;
    }
    if (label_name.empty()) {
      return Status::InvalidArgument("first use of node '" + *name +
                                     "' must carry a label");
    }
    Result<Label> label = labels->Resolve(label_name);
    if (!label.ok()) return label.status();
    NodeId id = builder.AddNode(*label);
    nodes.emplace(*name, id);
    names.push_back(*name);
    return id;
  };

  while (!scan.AtEnd()) {
    Result<NodeId> from = parse_node();
    if (!from.ok()) return from.status();
    NodeId current = *from;
    // A chain: node (edge node)*.
    while (scan.Peek() == '-') {
      scan.Consume('-');
      Label edge_label = 0;
      if (scan.Consume('[')) {
        Result<Label> n = scan.Number();
        if (!n.ok()) return n.status();
        edge_label = *n;
        if (!scan.Consume(']') || !scan.Consume('-')) {
          return Status::InvalidArgument("expected ']-' after edge label");
        }
      }
      Result<NodeId> to = parse_node();
      if (!to.ok()) return to.status();
      Result<EdgeId> edge = builder.AddEdge(current, *to, edge_label);
      if (!edge.ok()) return edge.status();
      sequence.push_back(*edge);
      current = *to;
    }
    if (!scan.AtEnd() && !scan.Consume(',')) {
      return Status::InvalidArgument("expected ',' or '-' at position " +
                                     std::to_string(scan.position()));
    }
  }

  ParsedPattern out;
  out.graph = std::move(builder).Build();
  out.sequence = std::move(sequence);
  out.node_names = std::move(names);
  if (out.graph.EdgeCount() == 0) {
    return Status::InvalidArgument("pattern has no edges");
  }
  if (out.graph.EdgeCount() > kMaxSubsetEdges) {
    return Status::InvalidArgument("pattern too large");
  }
  // The written order is the formulation order: every prefix must be
  // connected, as the GUI enforces.
  EdgeMask mask = 0;
  for (EdgeId e : out.sequence) {
    mask |= EdgeBit(e);
    if (!IsEdgeSubsetConnected(out.graph, mask)) {
      return Status::InvalidArgument(
          "pattern order disconnects the fragment at edge " +
          std::to_string(e + 1));
    }
  }
  return out;
}

}  // namespace

Result<ParsedPattern> ParsePattern(const std::string& text,
                                   LabelDictionary* labels) {
  LabelResolver resolver(labels, nullptr);
  return Parse(text, &resolver);
}

Result<ParsedPattern> ParsePatternStrict(const std::string& text,
                                         const LabelDictionary& labels) {
  LabelResolver resolver(nullptr, &labels);
  return Parse(text, &resolver);
}

std::string PatternToString(const Graph& g, const LabelDictionary& labels) {
  // Emit edges in a prefix-connected order so the rendering parses back
  // (ParsePattern enforces the GUI's connectivity invariant).
  std::vector<EdgeId> order;
  if (g.EdgeCount() > 0) {
    std::vector<bool> used(g.EdgeCount(), false);
    std::vector<bool> touched(g.NodeCount(), false);
    order.push_back(0);
    used[0] = true;
    touched[g.GetEdge(0).u] = true;
    touched[g.GetEdge(0).v] = true;
    while (order.size() < g.EdgeCount()) {
      bool advanced = false;
      for (EdgeId e = 0; e < g.EdgeCount(); ++e) {
        if (used[e]) continue;
        const Edge& edge = g.GetEdge(e);
        if (touched[edge.u] || touched[edge.v]) {
          used[e] = true;
          touched[edge.u] = true;
          touched[edge.v] = true;
          order.push_back(e);
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        // Disconnected input: emit the remaining edges as-is (the result
        // will not re-parse, matching the invariant).
        for (EdgeId e = 0; e < g.EdgeCount(); ++e) {
          if (!used[e]) order.push_back(e);
        }
        break;
      }
    }
  }
  std::string out;
  std::vector<bool> named(g.NodeCount(), false);
  auto node_ref = [&](NodeId n) {
    std::string ref = "(n" + std::to_string(n);
    if (!named[n]) {
      ref += ":" + labels.Name(g.NodeLabel(n));
      named[n] = true;
    }
    ref += ")";
    return ref;
  };
  for (EdgeId e : order) {
    if (!out.empty()) out += ", ";
    const Edge& edge = g.GetEdge(e);
    out += node_ref(edge.u);
    if (edge.label != 0) {
      out += "-[" + std::to_string(edge.label) + "]-";
    } else {
      out += "-";
    }
    out += node_ref(edge.v);
  }
  return out;
}

}  // namespace prague
