#include "graph/mccs.h"

#include <cassert>
#include <unordered_set>

#include "graph/canonical.h"
#include "graph/vf2.h"

namespace prague {

namespace {

// Tests the level-k connected subsets of q against g, de-duplicating
// isomorphic subsets. Returns a witnessing mask, or 0 if none matches.
// The deadline is checked between subsets and bounds each inner VF2 run;
// a cut sets *expired and reports "no witness found".
EdgeMask AnySubsetMatches(const Graph& q,
                          const std::vector<EdgeMask>& subsets,
                          const Graph& g, const Deadline& deadline,
                          bool* expired) {
  std::unordered_set<CanonicalCode> tried;
  for (EdgeMask mask : subsets) {
    if (deadline.CanExpire() && deadline.Expired()) {
      *expired = true;
      return 0;
    }
    ExtractedSubgraph sub = ExtractEdgeSubgraph(q, mask);
    CanonicalCode code = GetCanonicalCode(sub.graph);
    if (!tried.insert(code).second) continue;
    bool cut = false;
    if (IsSubgraphIsomorphic(sub.graph, g, deadline, &cut)) return mask;
    if (cut) {
      *expired = true;
      return 0;
    }
  }
  return 0;
}

}  // namespace

MccsResult ComputeMccs(const Graph& q, const Graph& g,
                       const Deadline& deadline, bool* truncated) {
  assert(q.EdgeCount() >= 1 && q.EdgeCount() <= kMaxSubsetEdges);
  MccsResult out;
  out.distance = static_cast<int>(q.EdgeCount());
  std::vector<std::vector<EdgeMask>> by_size = ConnectedEdgeSubsetsBySize(q);
  bool expired = false;
  for (size_t k = q.EdgeCount(); k >= 1 && !expired; --k) {
    EdgeMask witness = AnySubsetMatches(q, by_size[k], g, deadline, &expired);
    if (witness != 0) {
      out.mccs_edges = k;
      out.similarity = static_cast<double>(k) /
                       static_cast<double>(q.EdgeCount());
      out.distance = static_cast<int>(q.EdgeCount() - k);
      out.witness = witness;
      return out;
    }
  }
  if (expired && truncated != nullptr) *truncated = true;
  return out;  // no common edge at all (or cut before finding one)
}

bool WithinSubgraphDistance(const Graph& q, const Graph& g, int sigma,
                            const Deadline& deadline, bool* truncated) {
  assert(q.EdgeCount() >= 1 && q.EdgeCount() <= kMaxSubsetEdges);
  if (sigma >= static_cast<int>(q.EdgeCount())) return true;
  std::vector<std::vector<EdgeMask>> by_size = ConnectedEdgeSubsetsBySize(q);
  size_t needed = q.EdgeCount() - static_cast<size_t>(sigma);
  // One level suffices: if some (needed+j)-subset matches, each of its
  // connected (needed)-sub-subsets also matches, so checking the minimum
  // required level is both sound and complete.
  bool expired = false;
  bool hit = AnySubsetMatches(q, by_size[needed], g, deadline, &expired) != 0;
  if (expired && truncated != nullptr) *truncated = true;
  return hit;
}

bool ContainsLevelSubgraph(const Graph& q, const Graph& g, size_t level,
                           const Deadline& deadline, bool* truncated) {
  assert(level >= 1 && level <= q.EdgeCount());
  std::vector<std::vector<EdgeMask>> by_size = ConnectedEdgeSubsetsBySize(q);
  bool expired = false;
  bool hit = AnySubsetMatches(q, by_size[level], g, deadline, &expired) != 0;
  if (expired && truncated != nullptr) *truncated = true;
  return hit;
}

}  // namespace prague
