#include "util/id_set.h"

#include <algorithm>

namespace prague {

namespace {

// Per-thread output buffer for the in-place operations: the result is
// built here and swapped into place, recycling capacity across calls.
std::vector<GraphId>& ScratchBuffer() {
  thread_local std::vector<GraphId> scratch;
  return scratch;
}

// Galloping intersection: for each id of the small side, exponential
// search forward through the large side from the previous match position.
void GallopIntersect(std::span<const GraphId> small,
                     std::span<const GraphId> large,
                     std::vector<GraphId>* out) {
  const size_t n = large.size();
  size_t pos = 0;
  for (GraphId id : small) {
    size_t lo = pos;
    size_t step = 1;
    while (lo + step < n && large[lo + step] < id) {
      lo += step;
      step <<= 1;
    }
    size_t hi = std::min(n, lo + step + 1);
    pos = static_cast<size_t>(
        std::lower_bound(large.begin() + static_cast<ptrdiff_t>(lo),
                         large.begin() + static_cast<ptrdiff_t>(hi), id) -
        large.begin());
    if (pos == n) return;
    if (large[pos] == id) {
      out->push_back(id);
      ++pos;
    }
  }
}

// Intersection of two sorted ranges into `out` (cleared first), picking
// merge vs gallop by size ratio.
void IntersectInto(std::span<const GraphId> a, std::span<const GraphId> b,
                   std::vector<GraphId>* out) {
  out->clear();
  std::span<const GraphId> small = a.size() <= b.size() ? a : b;
  std::span<const GraphId> large = a.size() <= b.size() ? b : a;
  if (small.empty()) return;
  out->reserve(small.size());
  if (large.size() / small.size() >= IdSet::kGallopRatio) {
    GallopIntersect(small, large, out);
  } else {
    std::set_intersection(small.begin(), small.end(), large.begin(),
                          large.end(), std::back_inserter(*out));
  }
}

}  // namespace

IdSet::IdSet(std::vector<GraphId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (!ids.empty()) {
    data_ = std::make_shared<std::vector<GraphId>>(std::move(ids));
  }
}

IdSet::IdSet(std::initializer_list<GraphId> ids)
    : IdSet(std::vector<GraphId>(ids)) {}

IdSet IdSet::FromSorted(std::vector<GraphId> ids) {
  IdSet out;
  if (!ids.empty()) {
    out.data_ = std::make_shared<std::vector<GraphId>>(std::move(ids));
  }
  return out;
}

IdSet IdSet::Borrow(const GraphId* data, size_t count,
                    std::shared_ptr<const void> owner) {
  IdSet out;
  if (count > 0) {
    out.ext_ = data;
    out.ext_size_ = count;
    out.ext_owner_ = std::move(owner);
  }
  return out;
}

std::vector<GraphId>& IdSet::Mutable() {
  if (ext_ != nullptr) {
    // Detach the borrowed view onto the heap; drop the keepalive.
    data_ = std::make_shared<std::vector<GraphId>>(ext_, ext_ + ext_size_);
    ext_ = nullptr;
    ext_size_ = 0;
    ext_owner_.reset();
  } else if (!data_) {
    data_ = std::make_shared<std::vector<GraphId>>();
  } else if (data_.use_count() > 1) {
    data_ = std::make_shared<std::vector<GraphId>>(*data_);
  }
  return *data_;
}

void IdSet::AdoptScratch(std::vector<GraphId>* scratch) {
  if (ext_ != nullptr) {
    ext_ = nullptr;
    ext_size_ = 0;
    ext_owner_.reset();
  }
  if (scratch->empty()) {
    data_.reset();
  } else if (data_ && data_.use_count() == 1) {
    data_->swap(*scratch);
  } else {
    data_ = std::make_shared<std::vector<GraphId>>(scratch->begin(),
                                                   scratch->end());
  }
}

IdSet IdSet::Universe(GraphId n) {
  std::vector<GraphId> ids(n);
  for (GraphId i = 0; i < n; ++i) ids[i] = i;
  return FromSorted(std::move(ids));
}

bool IdSet::Contains(GraphId id) const {
  return std::binary_search(begin(), end(), id);
}

void IdSet::Insert(GraphId id) {
  if (Contains(id)) return;
  std::vector<GraphId>& v = Mutable();
  v.insert(std::lower_bound(v.begin(), v.end(), id), id);
}

void IdSet::Erase(GraphId id) {
  if (!Contains(id)) return;
  std::vector<GraphId>& v = Mutable();
  auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it != v.end() && *it == id) v.erase(it);
}

IdSet IdSet::Intersect(const IdSet& other) const {
  std::vector<GraphId> out;
  IntersectInto(span(), other.span(), &out);
  return FromSorted(std::move(out));
}

IdSet IdSet::Union(const IdSet& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  std::vector<GraphId> out;
  out.reserve(size() + other.size());
  std::set_union(begin(), end(), other.begin(), other.end(),
                 std::back_inserter(out));
  return FromSorted(std::move(out));
}

IdSet IdSet::Subtract(const IdSet& other) const {
  if (empty() || other.empty()) return *this;
  std::vector<GraphId> out;
  out.reserve(size());
  std::set_difference(begin(), end(), other.begin(), other.end(),
                      std::back_inserter(out));
  return FromSorted(std::move(out));
}

void IdSet::IntersectWith(const IdSet& other) {
  std::vector<GraphId>& scratch = ScratchBuffer();
  IntersectInto(span(), other.span(), &scratch);
  AdoptScratch(&scratch);
}

void IdSet::UnionWith(const IdSet& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;  // structural share (heap or borrowed)
    return;
  }
  std::vector<GraphId>& scratch = ScratchBuffer();
  scratch.clear();
  scratch.reserve(size() + other.size());
  std::set_union(begin(), end(), other.begin(), other.end(),
                 std::back_inserter(scratch));
  AdoptScratch(&scratch);
}

void IdSet::SubtractWith(const IdSet& other) {
  if (empty() || other.empty()) return;
  std::vector<GraphId>& scratch = ScratchBuffer();
  scratch.clear();
  scratch.reserve(size());
  std::set_difference(begin(), end(), other.begin(), other.end(),
                      std::back_inserter(scratch));
  AdoptScratch(&scratch);
}

IdSet IdSet::IntersectMany(std::vector<const IdSet*> sets) {
  sets.erase(std::remove(sets.begin(), sets.end(), nullptr), sets.end());
  if (sets.empty()) return IdSet();
  std::sort(sets.begin(), sets.end(), [](const IdSet* a, const IdSet* b) {
    return a->size() < b->size();
  });
  IdSet out = *sets.front();
  for (size_t i = 1; i < sets.size() && !out.empty(); ++i) {
    out.IntersectWith(*sets[i]);
  }
  return out;
}

bool IdSet::IsSubsetOf(const IdSet& other) const {
  return std::includes(other.begin(), other.end(), begin(), end());
}

IdSet IdSet::Slice(GraphId begin_id, GraphId end_id) const {
  if (empty() || begin_id >= end_id) return IdSet();
  const GraphId* first = data();
  const GraphId* last = first + size();
  if (*first >= begin_id && *(last - 1) < end_id) return *this;  // shares
  const GraphId* lo = std::lower_bound(first, last, begin_id);
  const GraphId* hi = std::lower_bound(lo, last, end_id);
  if (lo == hi) return IdSet();
  if (ext_ != nullptr) {
    // Borrowed sub-span over the same owner — still zero-copy.
    return Borrow(lo, static_cast<size_t>(hi - lo), ext_owner_);
  }
  return FromSorted(std::vector<GraphId>(lo, hi));
}

bool IdSet::operator==(const IdSet& other) const {
  return SharesStorageWith(other) ||
         (size() == other.size() && std::equal(begin(), end(), other.begin()));
}

std::string IdSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string((*this)[i]);
  }
  out += "}";
  return out;
}

}  // namespace prague
