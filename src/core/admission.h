// AdmissionController — per-tenant quotas and token-bucket rate limiting
// for the serving path.
//
// PRAGUE's contract is a bounded system response time per query, but the
// bound is meaningless if one hostile connection can monopolize the shared
// executor pool and starve every other session. The controller groups
// connections into *tenants* (a client-chosen group name on OPEN; the
// default is one tenant per connection) and enforces, per tenant:
//
//   * a token-bucket RUN admission rate (`tenant_rate` runs/sec with a
//     burst allowance), so a flooding client exhausts its own bucket
//     instead of the pool;
//   * a max-concurrent-RUN quota (`max_concurrent_runs`), bounding how
//     many of the pool's slots one tenant can hold at once;
//   * a session-count quota (`max_sessions`);
//   * an aggregate pending-work byte cap (`max_queued_bytes`), bounding
//     the memory a tenant's queued-but-not-yet-executed run bodies pin.
//
// A request over any limit is *shed*, not queued: the decision carries a
// retry-after hint the server turns into a typed `BUSY <retry-after-ms>`
// wire reply, so clients back off instead of piling on. Decisions are O(1)
// under one mutex; the serving path calls this once per RUN admission,
// which is noise next to a query body.
//
// The controller lives inside SessionManager (the layer that already
// owns cross-connection accounting) so every embedding of the engine —
// server, tools, tests — shares one enforcement point.

#ifndef PRAGUE_CORE_ADMISSION_H_
#define PRAGUE_CORE_ADMISSION_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace prague {

/// \brief Per-tenant limits; 0 always means "unlimited" so a
/// default-constructed options struct admits everything.
struct AdmissionOptions {
  /// RUN admissions per second per tenant (token-bucket refill rate).
  double tenant_rate = 0;
  /// Bucket capacity (burst allowance); 0 derives max(2 * tenant_rate, 4).
  double tenant_burst = 0;
  /// Queued + executing RUN/BATCH_RUN bodies per tenant.
  size_t max_concurrent_runs = 0;
  /// Open sessions per tenant.
  size_t max_sessions = 0;
  /// Aggregate bytes of pending (admitted, not yet finished) run bodies
  /// per tenant.
  size_t max_queued_bytes = 0;

  /// \brief True iff every limit is 0 — admission is a no-op.
  bool Unlimited() const {
    return tenant_rate <= 0 && max_concurrent_runs == 0 && max_sessions == 0 &&
           max_queued_bytes == 0;
  }
};

/// \brief Why a request was shed (AdmissionDecision::reason).
enum class ShedReason {
  kNone,         ///< admitted
  kRate,         ///< token bucket empty
  kConcurrency,  ///< max_concurrent_runs reached
  kSessions,     ///< max_sessions reached
  kBytes,        ///< max_queued_bytes reached
};

/// \brief Stable lowercase token for a shed reason ("rate", ...).
const char* ShedReasonName(ShedReason reason);

/// \brief Outcome of one admission check.
struct AdmissionDecision {
  bool admitted = true;
  ShedReason reason = ShedReason::kNone;
  /// Hint for the BUSY reply: how long until a retry is likely to be
  /// admitted (>= 1 whenever admitted is false).
  int64_t retry_after_ms = 0;
};

/// \brief Point-in-time admission counters (SessionManagerStats).
struct AdmissionStats {
  uint64_t runs_admitted = 0;
  uint64_t runs_shed = 0;
  uint64_t sessions_shed = 0;
  size_t tenants = 0;  ///< tenants currently tracked
};

/// \brief Thread-safe per-tenant admission state. All methods may be
/// called from any thread.
class AdmissionController {
 public:
  AdmissionController() = default;
  explicit AdmissionController(const AdmissionOptions& options);

  /// \brief Replaces the limits. Existing tenant buckets keep their
  /// levels; new limits apply from the next decision.
  void Configure(const AdmissionOptions& options);
  /// \brief The active limits.
  AdmissionOptions options() const;

  /// \brief Accounts a new session for \p tenant; not admitted when the
  /// tenant's session quota is full.
  AdmissionDecision AdmitSession(const std::string& tenant);
  /// \brief Releases a session slot (call once per admitted session).
  void OnSessionClosed(const std::string& tenant);

  /// \brief Admits or sheds one RUN/BATCH_RUN body of \p cost_bytes.
  /// Admission consumes a token and reserves the concurrency slot and
  /// bytes until OnRunFinished.
  AdmissionDecision AdmitRun(const std::string& tenant, size_t cost_bytes);
  /// \brief Releases the slot and bytes AdmitRun reserved (call once per
  /// admitted run, after its reply is produced).
  void OnRunFinished(const std::string& tenant, size_t cost_bytes);

  /// \brief Cumulative counters plus the live tenant count.
  AdmissionStats Stats() const;

 private:
  struct Tenant {
    double tokens = 0;
    std::chrono::steady_clock::time_point refilled_at{};
    bool bucket_started = false;
    size_t sessions = 0;
    size_t runs = 0;
    size_t queued_bytes = 0;
  };

  // Refills tenant's bucket to now and returns the configured capacity.
  double RefillLocked(Tenant& tenant,
                      std::chrono::steady_clock::time_point now) const;
  // Drops tenants with no sessions, runs, bytes, and a full bucket — a
  // tenant that reconnects later starts fresh anyway.
  void MaybeEraseLocked(const std::string& tenant);

  mutable std::mutex mu_;
  AdmissionOptions options_;
  std::unordered_map<std::string, Tenant> tenants_;
  uint64_t runs_admitted_ = 0;
  uint64_t runs_shed_ = 0;
  uint64_t sessions_shed_ = 0;
};

}  // namespace prague

#endif  // PRAGUE_CORE_ADMISSION_H_
