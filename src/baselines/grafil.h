// Grafil-like engine (Yan et al., "Substructure Similarity Search in Graph
// Databases" [12]).
//
// Principle reproduced: feature-count filtering with an edge-relaxation
// lower bound. The query's feature occurrences (connected subgraphs that
// are indexed features, counted with multiplicity) can only be destroyed
// by deleting edges they touch; with σ deletions at most d_max
// occurrences die, where d_max maximizes over σ-edge subsets. A data graph
// missing more than d_max occurrences cannot be within distance σ.
//
// Simplification vs. the real system (documented in DESIGN.md): feature
// containment is binary per data graph (our index stores FSG id sets, not
// per-graph embedding counts), so multiplicity lives on the query side
// only. The bound stays sound.

#ifndef PRAGUE_BASELINES_GRAFIL_H_
#define PRAGUE_BASELINES_GRAFIL_H_

#include "baselines/feature_index.h"
#include "baselines/traditional.h"
#include "graph/graph_database.h"

namespace prague {

/// \brief Grafil-like feature-count filter.
class GrafilLikeEngine : public TraditionalSimilarityEngine {
 public:
  /// \p index and \p db must outlive the engine.
  GrafilLikeEngine(const FeatureIndex* index, const GraphDatabase* db)
      : index_(index), db_(db) {}

  std::string name() const override { return "GR"; }
  size_t IndexBytes() const override { return index_->StorageBytes(); }
  IdSet Filter(const Graph& q, int sigma,
               const Deadline& deadline = Deadline(),
               bool* truncated = nullptr) const override;

 private:
  const FeatureIndex* index_;
  const GraphDatabase* db_;
};

}  // namespace prague

#endif  // PRAGUE_BASELINES_GRAFIL_H_
