// Byte-size helpers used for index footprint accounting (Table II,
// Figure 10(a)), plus the fixed-width integer codecs and frame header the
// network wire format (src/server/wire.h) is built on.

#ifndef PRAGUE_UTIL_BYTES_H_
#define PRAGUE_UTIL_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace prague {

/// \brief Heap footprint of a std::vector<T> for trivially sized T.
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// \brief Heap footprint of a std::string.
inline size_t StringBytes(const std::string& s) {
  // Small strings live inline; only count heap allocations.
  return s.capacity() > 15 ? s.capacity() : 0;
}

/// \brief Renders a byte count as "12.3 MB" / "4.5 KB" / "128 B".
std::string HumanBytes(size_t bytes);

/// \brief Converts bytes to megabytes as a double (paper tables report MB).
inline double ToMegabytes(size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/// \brief Writes \p value little-endian into \p out[0..3]. Byte-wise, so
/// the encoding is identical on every host.
inline void EncodeU32LE(uint32_t value, uint8_t* out) {
  out[0] = static_cast<uint8_t>(value);
  out[1] = static_cast<uint8_t>(value >> 8);
  out[2] = static_cast<uint8_t>(value >> 16);
  out[3] = static_cast<uint8_t>(value >> 24);
}

/// \brief Reads a little-endian uint32 from \p data[0..3].
inline uint32_t DecodeU32LE(const uint8_t* data) {
  return static_cast<uint32_t>(data[0]) |
         static_cast<uint32_t>(data[1]) << 8 |
         static_cast<uint32_t>(data[2]) << 16 |
         static_cast<uint32_t>(data[3]) << 24;
}

/// \brief Header of one wire frame: the payload byte count followed by a
/// one-byte frame type. Fixed 5-byte encoding (u32 LE length + u8 type).
struct FrameHeader {
  uint32_t payload_length = 0;
  uint8_t type = 0;

  bool operator==(const FrameHeader&) const = default;
};

/// Encoded size of a FrameHeader on the wire.
inline constexpr size_t kFrameHeaderBytes = 5;

/// Upper bound on a frame payload. Far above any legitimate command or
/// response; lengths beyond it are treated as stream corruption so a
/// garbage header cannot make a reader allocate gigabytes.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;  // 1 MiB

/// \brief Encodes \p header into \p out (kFrameHeaderBytes bytes).
void EncodeFrameHeader(const FrameHeader& header, uint8_t* out);

/// \brief Decodes a frame header from \p data. Corruption when fewer than
/// kFrameHeaderBytes are available (truncated buffer) or the encoded
/// length exceeds kMaxFramePayload (oversized / garbage length).
Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size);

}  // namespace prague

#endif  // PRAGUE_UTIL_BYTES_H_
