#include "util/logging.h"

#include <chrono>
#include <cstdio>

namespace prague {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_format{static_cast<int>(LogFormat::kText)};
std::atomic<LogSink> g_sink{nullptr};
std::atomic<uint64_t> g_suppressed{0};

int64_t MonotonicNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Text-format values containing whitespace, quotes, '=' or control bytes
// get quoted so one line stays machine-splittable on spaces.
bool NeedsTextQuoting(std::string_view value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

void EmitLine(const std::string& line) {
  if (LogSink sink = g_sink.load(std::memory_order_acquire)) {
    sink(line);
    return;
  }
  // One write for the whole line (terminator included) so lines from
  // concurrent threads — e.g. the server's connection handlers — never
  // shear mid-line the way `stream << line << endl` can.
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}
void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogFormat GetLogFormat() {
  return static_cast<LogFormat>(g_format.load(std::memory_order_relaxed));
}
void SetLogFormat(LogFormat format) {
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

bool ParseLogLevel(std::string_view name, LogLevel* out) {
  if (name == "debug") {
    *out = LogLevel::kDebug;
  } else if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "warning" || name == "warn") {
    *out = LogLevel::kWarning;
  } else if (name == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

bool ParseLogFormat(std::string_view name, LogFormat* out) {
  if (name == "text") {
    *out = LogFormat::kText;
  } else if (name == "json") {
    *out = LogFormat::kJson;
  } else {
    return false;
  }
  return true;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetLogSink(LogSink sink) {
  g_sink.store(sink, std::memory_order_release);
}

uint64_t SuppressedLogCount() {
  return g_suppressed.load(std::memory_order_relaxed);
}

void AppendJsonEscaped(std::string& out, std::string_view in) {
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string JsonEscape(std::string_view in) {
  std::string out;
  out.reserve(in.size() + 8);
  AppendJsonEscaped(out, in);
  return out;
}

LogRateLimiter::LogRateLimiter(double per_sec, double burst)
    : per_sec_(per_sec), burst_(burst < 1 ? 1 : burst), tokens_(burst_) {}

bool LogRateLimiter::Allow(int64_t now_us) {
  if (per_sec_ <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  if (last_us_ != 0 && now_us > last_us_) {
    tokens_ += static_cast<double>(now_us - last_us_) * 1e-6 * per_sec_;
    if (tokens_ > burst_) tokens_ = burst_;
  }
  last_us_ = now_us;
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  suppressed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool LogRateLimiter::AllowNow() {
  const bool ok = Allow(MonotonicNowUs());
  if (!ok) internal::CountSuppressedLog();
  return ok;
}

uint64_t LogRateLimiter::suppressed() const {
  return suppressed_.load(std::memory_order_relaxed);
}

namespace internal {

void CountSuppressedLog() {
  g_suppressed.fetch_add(1, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), basename_(file), line_(line) {
  for (const char* p = file; *p; ++p) {
    if (*p == '/') basename_ = p + 1;
  }
}

LogMessage& LogMessage::Field(std::string_view key, std::string_view value) {
  fields_.push_back({std::string(key), std::string(value), false});
  return *this;
}

LogMessage& LogMessage::Field(std::string_view key, bool value) {
  fields_.push_back({std::string(key), value ? "true" : "false", true});
  return *this;
}

LogMessage& LogMessage::Field(std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  fields_.push_back({std::string(key), buf, true});
  return *this;
}

LogMessage& LogMessage::Field(std::string_view key, long long value) {
  fields_.push_back({std::string(key), std::to_string(value), true});
  return *this;
}

LogMessage& LogMessage::Field(std::string_view key, unsigned long long value) {
  fields_.push_back({std::string(key), std::to_string(value), true});
  return *this;
}

LogMessage::~LogMessage() {
  const std::string msg = stream_.str();
  std::string line;
  line.reserve(msg.size() + 64 + fields_.size() * 24);
  if (GetLogFormat() == LogFormat::kJson) {
    line += "{\"level\":\"";
    line += LogLevelName(level_);
    line += "\",\"src\":\"";
    AppendJsonEscaped(line, basename_);
    line += ':';
    line += std::to_string(line_);
    line += "\",\"msg\":\"";
    AppendJsonEscaped(line, msg);
    line += '"';
    for (const FieldRecord& f : fields_) {
      line += ",\"";
      AppendJsonEscaped(line, f.key);
      line += "\":";
      if (f.json_raw) {
        line += f.value;
      } else {
        line += '"';
        AppendJsonEscaped(line, f.value);
        line += '"';
      }
    }
    line += "}\n";
  } else {
    line += '[';
    line += LogLevelName(level_);
    line += ' ';
    line += basename_;
    line += ':';
    line += std::to_string(line_);
    line += "] ";
    line += msg;
    for (const FieldRecord& f : fields_) {
      line += ' ';
      line += f.key;
      line += '=';
      if (!f.json_raw && NeedsTextQuoting(f.value)) {
        line += '"';
        for (char c : f.value) {
          if (c == '"' || c == '\\') {
            line += '\\';
            line += c;
          } else if (c == '\n') {
            line += "\\n";
          } else if (c == '\t') {
            line += "\\t";
          } else if (static_cast<unsigned char>(c) < 0x20) {
            line += '?';  // other control bytes: keep the line one line
          } else {
            line += c;
          }
        }
        line += '"';
      } else {
        line += f.value;
      }
    }
    line += '\n';
  }
  EmitLine(line);
}

}  // namespace internal

}  // namespace prague
