// Figure 10(a) reproduction: index size (MB) vs synthetic dataset size.
//
// Paper shape: PRG's index grows slowly with |D| and stays below SG/GR on
// every synthetic dataset (α = 0.05, β = 4).

#include <cstdio>

#include "bench_common.h"
#include "util/bytes.h"

using namespace prague;
using namespace prague::bench;

int main() {
  Banner("Figure 10(a): index size (MB) vs synthetic dataset size",
         "alpha=0.05, beta=4");
  TablePrinter table({"|D|", "PRG (MB)", "SG/GR (MB)", "frequent", "DIFs"});
  for (size_t n : SyntheticSizes()) {
    Workbench bench = BuildSyntheticWorkbench(n);
    FeatureIndex features = bench.BuildFeatureIndex(4);
    table.AddRow({std::to_string(n),
                  Fmt(ToMegabytes(bench.indexes.StorageBytes())),
                  Fmt(ToMegabytes(features.StorageBytes())),
                  std::to_string(bench.mined.frequent.size()),
                  std::to_string(bench.mined.difs.size())});
    std::fprintf(stderr, "|D|=%zu done (mining %.1fs)\n", n,
                 bench.mining_seconds);
  }
  table.Print();
  std::printf(
      "\npaper shape check: PRG index grows slowly and undercuts SG/GR "
      "across sizes.\n");
  return 0;
}
