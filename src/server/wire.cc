#include "server/wire.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace prague {

namespace {

constexpr char kClosedMessage[] = "connection closed";

// Blocking exact-count read. Returns the bytes actually read (short only
// on EOF) or an errno-carrying IOError.
Result<size_t> ReadFully(int fd, uint8_t* buf, size_t count) {
  size_t done = 0;
  while (done < count) {
    ssize_t n = ::recv(fd, buf + done, count - done, 0);
    if (n == 0) break;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return done;
}

// Splits on runs of spaces; no quoting (label names are dictionary
// identifiers and never contain whitespace).
std::vector<std::string_view> Tokenize(std::string_view payload) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < payload.size()) {
    while (i < payload.size() && payload[i] == ' ') ++i;
    size_t start = i;
    while (i < payload.size() && payload[i] != ' ') ++i;
    if (i > start) tokens.push_back(payload.substr(start, i - start));
  }
  return tokens;
}

// Whole-token unsigned parse; anything but [0-9]+ in range is an error.
template <typename T>
Result<T> ParseNumber(std::string_view token, const char* what) {
  T value{};
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(),
                                   value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument(std::string(what) + ": malformed number '" +
                                   std::string(token) + "'");
  }
  return value;
}

const char* FragmentStatusToken(FragmentStatus status) {
  switch (status) {
    case FragmentStatus::kFrequent:
      return "frequent";
    case FragmentStatus::kInfrequent:
      return "infrequent";
    case FragmentStatus::kNoExactMatch:
      return "no-exact";
  }
  return "?";
}

Result<FragmentStatus> ParseFragmentStatus(std::string_view token) {
  if (token == "frequent") return FragmentStatus::kFrequent;
  if (token == "infrequent") return FragmentStatus::kInfrequent;
  if (token == "no-exact") return FragmentStatus::kNoExactMatch;
  return Status::Corruption("unknown fragment status '" + std::string(token) +
                            "'");
}

// Looks up `key=` among the tokens of an OK reply and returns the value
// part; Corruption when absent (replies are machine-generated, so a
// missing key means a protocol mismatch, not user error).
Result<std::string_view> ReplyValue(
    const std::vector<std::string_view>& tokens, std::string_view key) {
  for (std::string_view token : tokens) {
    if (token.size() > key.size() && token[key.size()] == '=' &&
        token.substr(0, key.size()) == key) {
      return token.substr(key.size() + 1);
    }
  }
  return Status::Corruption("reply is missing '" + std::string(key) + "='");
}

Result<std::vector<std::string_view>> OkReplyTokens(std::string_view payload) {
  PRAGUE_RETURN_NOT_OK(DecodeReplyStatus(payload));
  return Tokenize(payload);
}

Result<double> ParseMillis(std::string_view token) {
  // from_chars for doubles is not universally available; strtod needs a
  // terminated copy. Reply payloads are tiny, so the copy is free.
  std::string copy(token);
  char* end = nullptr;
  double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    return Status::Corruption("malformed duration '" + copy + "'");
  }
  return value;
}

// Comma-joined list; "-" for empty so every key always has a value token.
template <typename T, typename Fn>
std::string JoinList(const std::vector<T>& items, size_t limit, Fn&& render) {
  if (items.empty()) return "-";
  std::string out;
  size_t n = limit == 0 ? items.size() : std::min<size_t>(limit, items.size());
  for (size_t i = 0; i < n; ++i) {
    if (i) out += ',';
    out += render(items[i]);
  }
  return out;
}

// Splits a "-"-or-comma list value into element views.
std::vector<std::string_view> SplitList(std::string_view value) {
  std::vector<std::string_view> items;
  if (value == "-" || value.empty()) return items;
  size_t i = 0;
  while (i <= value.size()) {
    size_t comma = value.find(',', i);
    if (comma == std::string_view::npos) comma = value.size();
    items.push_back(value.substr(i, comma - i));
    i = comma + 1;
  }
  return items;
}

}  // namespace

Status SendFrame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload of " +
                                   std::to_string(payload.size()) +
                                   " bytes exceeds the wire limit");
  }
  FrameHeader header;
  header.payload_length = static_cast<uint32_t>(payload.size());
  header.type = static_cast<uint8_t>(type);
  std::string frame(kFrameHeaderBytes, '\0');
  EncodeFrameHeader(header, reinterpret_cast<uint8_t*>(frame.data()));
  frame.append(payload);
  size_t done = 0;
  while (done < frame.size()) {
    // MSG_NOSIGNAL: a peer that hung up mid-reply must surface as EPIPE,
    // not kill the server process with SIGPIPE.
    ssize_t n = ::send(fd, frame.data() + done, frame.size() - done,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<WireFrame> RecvFrame(int fd) {
  uint8_t header_buf[kFrameHeaderBytes];
  PRAGUE_ASSIGN_OR_RETURN(size_t got,
                          ReadFully(fd, header_buf, kFrameHeaderBytes));
  if (got == 0) return Status::IOError(kClosedMessage);
  if (got < kFrameHeaderBytes) {
    return Status::Corruption("connection closed mid frame header");
  }
  PRAGUE_ASSIGN_OR_RETURN(FrameHeader header,
                          DecodeFrameHeader(header_buf, kFrameHeaderBytes));
  WireFrame frame;
  switch (header.type) {
    case static_cast<uint8_t>(FrameType::kRequest):
      frame.type = FrameType::kRequest;
      break;
    case static_cast<uint8_t>(FrameType::kResponse):
      frame.type = FrameType::kResponse;
      break;
    default:
      return Status::Corruption("unknown frame type byte " +
                                std::to_string(header.type));
  }
  frame.payload.resize(header.payload_length);
  if (header.payload_length > 0) {
    PRAGUE_ASSIGN_OR_RETURN(
        size_t body,
        ReadFully(fd, reinterpret_cast<uint8_t*>(frame.payload.data()),
                  header.payload_length));
    if (body < header.payload_length) {
      return Status::Corruption("connection closed mid frame payload");
    }
  }
  return frame;
}

bool IsConnectionClosed(const Status& status) {
  return status.code() == Status::Code::kIOError &&
         status.message() == kClosedMessage;
}

Result<std::pair<uint64_t, std::string_view>> SplitFrameId(
    std::string_view payload) {
  if (payload.empty() || payload.front() != '#') {
    return std::pair<uint64_t, std::string_view>{0, payload};
  }
  size_t space = payload.find(' ');
  std::string_view token =
      payload.substr(0, space == std::string_view::npos ? payload.size()
                                                        : space);
  PRAGUE_ASSIGN_OR_RETURN(uint64_t id,
                          ParseNumber<uint64_t>(token.substr(1), "frame id"));
  if (id == 0) return Status::InvalidArgument("frame id must be >= 1");
  std::string_view rest =
      space == std::string_view::npos ? std::string_view()
                                      : payload.substr(space + 1);
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  return std::pair<uint64_t, std::string_view>{id, rest};
}

std::string PrependFrameId(uint64_t id, std::string payload) {
  if (id == 0) return payload;
  return '#' + std::to_string(id) + ' ' + std::move(payload);
}

Result<WireCommand> ParseCommand(std::string_view payload) {
  PRAGUE_ASSIGN_OR_RETURN(auto id_split, SplitFrameId(payload));
  std::string_view rest = id_split.second;
  // Only BATCH_RUN carries a multi-line payload; peel the command line off
  // and keep the remainder for its pattern list.
  size_t newline = rest.find('\n');
  std::string_view first_line =
      newline == std::string_view::npos ? rest : rest.substr(0, newline);
  std::string_view extra_lines =
      newline == std::string_view::npos ? std::string_view()
                                        : rest.substr(newline + 1);
  std::vector<std::string_view> tokens = Tokenize(first_line);
  if (tokens.empty()) return Status::InvalidArgument("empty command");
  std::string_view verb = tokens[0];
  WireCommand cmd;
  cmd.request_id = id_split.first;
  size_t expected_min = 1, expected_max = 1;
  if (verb == "OPEN") {
    cmd.kind = CommandKind::kOpen;
    expected_max = 3;
    bool saw_timeout = false;
    for (size_t i = 1; i < tokens.size(); ++i) {
      constexpr std::string_view kTenantKey = "tenant=";
      if (tokens[i].substr(0, kTenantKey.size()) == kTenantKey) {
        std::string_view name = tokens[i].substr(kTenantKey.size());
        if (name.empty()) {
          return Status::InvalidArgument("OPEN tenant= name must be non-empty");
        }
        if (!cmd.tenant.empty()) {
          return Status::InvalidArgument("OPEN: duplicate tenant= token");
        }
        cmd.tenant = std::string(name);
        continue;
      }
      if (saw_timeout) {
        return Status::InvalidArgument("OPEN: duplicate timeout_ms token");
      }
      PRAGUE_ASSIGN_OR_RETURN(
          cmd.timeout_ms, ParseNumber<int64_t>(tokens[i], "OPEN timeout_ms"));
      if (cmd.timeout_ms < 0) {
        return Status::InvalidArgument("OPEN timeout_ms must be >= 0");
      }
      saw_timeout = true;
    }
  } else if (verb == "ADD_EDGE") {
    cmd.kind = CommandKind::kAddEdge;
    expected_min = 5;
    expected_max = 6;
    if (tokens.size() >= 5) {
      PRAGUE_ASSIGN_OR_RETURN(cmd.u,
                              ParseNumber<uint32_t>(tokens[1], "ADD_EDGE u"));
      cmd.u_label = std::string(tokens[2]);
      PRAGUE_ASSIGN_OR_RETURN(cmd.v,
                              ParseNumber<uint32_t>(tokens[3], "ADD_EDGE v"));
      cmd.v_label = std::string(tokens[4]);
      if (tokens.size() == 6) {
        PRAGUE_ASSIGN_OR_RETURN(
            cmd.edge_label, ParseNumber<Label>(tokens[5], "ADD_EDGE le"));
      }
    }
  } else if (verb == "DELETE_EDGE") {
    cmd.kind = CommandKind::kDeleteEdge;
    expected_min = expected_max = 3;
    if (tokens.size() >= 3) {
      PRAGUE_ASSIGN_OR_RETURN(
          cmd.u, ParseNumber<uint32_t>(tokens[1], "DELETE_EDGE u"));
      PRAGUE_ASSIGN_OR_RETURN(
          cmd.v, ParseNumber<uint32_t>(tokens[2], "DELETE_EDGE v"));
    }
  } else if (verb == "RUN") {
    cmd.kind = CommandKind::kRun;
    expected_max = 2;
    if (tokens.size() > 1) {
      PRAGUE_ASSIGN_OR_RETURN(cmd.limit,
                              ParseNumber<uint64_t>(tokens[1], "RUN k"));
    }
  } else if (verb == "BATCH_RUN") {
    cmd.kind = CommandKind::kBatchRun;
    expected_min = 2;
    expected_max = 3;
    if (tokens.size() >= 2) {
      PRAGUE_ASSIGN_OR_RETURN(uint64_t n,
                              ParseNumber<uint64_t>(tokens[1], "BATCH_RUN n"));
      if (n < 1 || n > kMaxBatchPatterns) {
        return Status::InvalidArgument(
            "BATCH_RUN n must be in [1, " +
            std::to_string(kMaxBatchPatterns) + "], got " + std::to_string(n));
      }
      if (tokens.size() == 3) {
        PRAGUE_ASSIGN_OR_RETURN(
            cmd.limit, ParseNumber<uint64_t>(tokens[2], "BATCH_RUN k"));
      }
      // The n lines after the command line are the member patterns.
      std::string_view lines = extra_lines;
      while (!lines.empty()) {
        size_t eol = lines.find('\n');
        std::string_view line =
            eol == std::string_view::npos ? lines : lines.substr(0, eol);
        if (line.empty()) {
          return Status::InvalidArgument("BATCH_RUN: empty pattern line");
        }
        cmd.batch_patterns.emplace_back(line);
        lines = eol == std::string_view::npos ? std::string_view()
                                              : lines.substr(eol + 1);
      }
      if (cmd.batch_patterns.size() != n) {
        return Status::InvalidArgument(
            "BATCH_RUN: header says " + std::to_string(n) + " patterns, got " +
            std::to_string(cmd.batch_patterns.size()) + " lines");
      }
    }
  } else if (verb == "APPEND") {
    cmd.kind = CommandKind::kAppend;
    expected_min = 2;
    expected_max = 4;
    if (tokens.size() >= 2) {
      PRAGUE_ASSIGN_OR_RETURN(uint64_t n,
                              ParseNumber<uint64_t>(tokens[1], "APPEND n"));
      if (n < 1 || n > kMaxBatchPatterns) {
        return Status::InvalidArgument(
            "APPEND n must be in [1, " + std::to_string(kMaxBatchPatterns) +
            "], got " + std::to_string(n));
      }
      for (size_t i = 2; i < tokens.size(); ++i) {
        constexpr std::string_view kAlphaKey = "alpha=";
        constexpr std::string_view kReclassifyKey = "reclassify=";
        if (tokens[i].substr(0, kAlphaKey.size()) == kAlphaKey) {
          std::string text(tokens[i].substr(kAlphaKey.size()));
          char* end = nullptr;
          cmd.append_alpha = std::strtod(text.c_str(), &end);
          if (end != text.c_str() + text.size() || text.empty() ||
              !(cmd.append_alpha > 0) || cmd.append_alpha > 1) {
            return Status::InvalidArgument("APPEND alpha= must be in (0, 1]");
          }
        } else if (tokens[i].substr(0, kReclassifyKey.size()) ==
                   kReclassifyKey) {
          std::string_view value = tokens[i].substr(kReclassifyKey.size());
          if (value == "0") {
            cmd.append_reclassify = 0;
          } else if (value == "1") {
            cmd.append_reclassify = 1;
          } else {
            return Status::InvalidArgument("APPEND reclassify= must be 0 or 1");
          }
        } else {
          return Status::InvalidArgument("APPEND: unknown token '" +
                                         std::string(tokens[i]) + "'");
        }
      }
      // The n lines after the command line are the data graphs.
      std::string_view lines = extra_lines;
      while (!lines.empty()) {
        size_t eol = lines.find('\n');
        std::string_view line =
            eol == std::string_view::npos ? lines : lines.substr(0, eol);
        if (line.empty()) {
          return Status::InvalidArgument("APPEND: empty graph line");
        }
        cmd.batch_patterns.emplace_back(line);
        lines = eol == std::string_view::npos ? std::string_view()
                                              : lines.substr(eol + 1);
      }
      if (cmd.batch_patterns.size() != n) {
        return Status::InvalidArgument(
            "APPEND: header says " + std::to_string(n) + " graphs, got " +
            std::to_string(cmd.batch_patterns.size()) + " lines");
      }
    }
  } else if (verb == "CANCEL") {
    cmd.kind = CommandKind::kCancel;
    expected_max = 2;
    if (tokens.size() > 1) {
      PRAGUE_ASSIGN_OR_RETURN(cmd.cancel_id,
                              ParseNumber<uint64_t>(tokens[1], "CANCEL id"));
      if (cmd.cancel_id == 0) {
        return Status::InvalidArgument(
            "CANCEL id must be >= 1 (omit the id to cancel everything)");
      }
    }
  } else if (verb == "STATS") {
    cmd.kind = CommandKind::kStats;
  } else if (verb == "METRICS") {
    cmd.kind = CommandKind::kMetrics;
  } else if (verb == "CLOSE") {
    cmd.kind = CommandKind::kClose;
  } else {
    return Status::InvalidArgument("unknown command '" + std::string(verb) +
                                   "'");
  }
  if (tokens.size() < expected_min || tokens.size() > expected_max) {
    return Status::InvalidArgument(
        std::string(verb) + ": expected between " +
        std::to_string(expected_min - 1) + " and " +
        std::to_string(expected_max - 1) + " arguments, got " +
        std::to_string(tokens.size() - 1));
  }
  if (newline != std::string_view::npos &&
      cmd.kind != CommandKind::kBatchRun &&
      cmd.kind != CommandKind::kAppend) {
    return Status::InvalidArgument(std::string(verb) +
                                   ": unexpected multi-line payload");
  }
  return cmd;
}

std::string FormatCommand(const WireCommand& command) {
  std::string body;
  switch (command.kind) {
    case CommandKind::kOpen:
      body = command.timeout_ms >= 0
                 ? "OPEN " + std::to_string(command.timeout_ms)
                 : "OPEN";
      if (!command.tenant.empty()) body += " tenant=" + command.tenant;
      break;
    case CommandKind::kAddEdge: {
      body = "ADD_EDGE " + std::to_string(command.u) + ' ' +
             command.u_label + ' ' + std::to_string(command.v) + ' ' +
             command.v_label;
      if (command.edge_label != 0) {
        body += ' ' + std::to_string(command.edge_label);
      }
      break;
    }
    case CommandKind::kDeleteEdge:
      body = "DELETE_EDGE " + std::to_string(command.u) + ' ' +
             std::to_string(command.v);
      break;
    case CommandKind::kRun:
      body = command.limit > 0 ? "RUN " + std::to_string(command.limit)
                               : "RUN";
      break;
    case CommandKind::kBatchRun: {
      body = "BATCH_RUN " + std::to_string(command.batch_patterns.size());
      if (command.limit > 0) body += ' ' + std::to_string(command.limit);
      for (const std::string& pattern : command.batch_patterns) {
        body += '\n';
        body += pattern;
      }
      break;
    }
    case CommandKind::kCancel:
      body = command.cancel_id > 0
                 ? "CANCEL " + std::to_string(command.cancel_id)
                 : "CANCEL";
      break;
    case CommandKind::kAppend: {
      body = "APPEND " + std::to_string(command.batch_patterns.size());
      if (command.append_alpha > 0) {
        char alpha[64];
        std::snprintf(alpha, sizeof(alpha), "%.17g", command.append_alpha);
        body += " alpha=";
        body += alpha;
      }
      if (command.append_reclassify >= 0) {
        body += " reclassify=";
        body += command.append_reclassify ? '1' : '0';
      }
      for (const std::string& pattern : command.batch_patterns) {
        body += '\n';
        body += pattern;
      }
      break;
    }
    case CommandKind::kStats:
      body = "STATS";
      break;
    case CommandKind::kMetrics:
      body = "METRICS";
      break;
    case CommandKind::kClose:
      body = "CLOSE";
      break;
  }
  return PrependFrameId(command.request_id, std::move(body));
}

const char* StatusCodeToken(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
    case Status::Code::kCorruption:
      return "CORRUPTION";
    case Status::Code::kIOError:
      return "IO_ERROR";
    case Status::Code::kNotSupported:
      return "NOT_SUPPORTED";
    case Status::Code::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case Status::Code::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case Status::Code::kProtocolError:
      return "PROTOCOL_ERROR";
    case Status::Code::kInternal:
      return "INTERNAL";
    case Status::Code::kBusy:
      return "BUSY";
  }
  return "UNKNOWN";
}

std::string FormatBusyReply(int64_t retry_after_ms) {
  return "BUSY " + std::to_string(retry_after_ms);
}

bool IsBusy(const Status& status) {
  return status.code() == Status::Code::kBusy;
}

int64_t BusyRetryAfterMillis(const Status& status) {
  constexpr std::string_view kKey = "retry_after_ms=";
  const std::string& message = status.message();
  size_t at = message.find(kKey);
  if (at == std::string::npos) return -1;
  std::string_view value = std::string_view(message).substr(at + kKey.size());
  size_t end = value.find(' ');
  if (end != std::string_view::npos) value = value.substr(0, end);
  Result<int64_t> parsed = ParseNumber<int64_t>(value, "retry_after_ms");
  return parsed.ok() ? *parsed : -1;
}

std::string EncodeErrorReply(const Status& status) {
  return std::string("ERR ") + StatusCodeToken(status.code()) + ' ' +
         status.message();
}

Status DecodeReplyStatus(std::string_view payload) {
  if (payload.substr(0, 2) == "OK" &&
      (payload.size() == 2 || payload[2] == ' ')) {
    return Status::OK();
  }
  // Load-shed reply: "BUSY <retry-after-ms>". Not an ERR — shedding is
  // flow control — but it still decodes to a typed Status so every
  // client-side Parse*Reply surfaces it uniformly.
  if (payload.substr(0, 4) == "BUSY" &&
      (payload.size() == 4 || payload[4] == ' ')) {
    std::string message = "shed by admission control";
    if (payload.size() > 5) {
      message += "; retry_after_ms=" + std::string(payload.substr(5));
    }
    return Status::Busy(std::move(message));
  }
  if (payload.substr(0, 4) != "ERR ") {
    return Status::Corruption("malformed reply '" +
                              std::string(payload.substr(0, 64)) + "'");
  }
  std::string_view rest = payload.substr(4);
  size_t space = rest.find(' ');
  std::string_view token = rest.substr(0, space);
  std::string message(space == std::string_view::npos
                          ? std::string_view()
                          : rest.substr(space + 1));
  if (token == "INVALID_ARGUMENT") return Status::InvalidArgument(message);
  if (token == "NOT_FOUND") return Status::NotFound(message);
  if (token == "CORRUPTION") return Status::Corruption(message);
  if (token == "IO_ERROR") return Status::IOError(message);
  if (token == "NOT_SUPPORTED") return Status::NotSupported(message);
  if (token == "FAILED_PRECONDITION") {
    return Status::FailedPrecondition(message);
  }
  if (token == "DEADLINE_EXCEEDED") return Status::DeadlineExceeded(message);
  if (token == "PROTOCOL_ERROR") return Status::ProtocolError(message);
  if (token == "INTERNAL") return Status::Internal(message);
  if (token == "BUSY") return Status::Busy(message);
  return Status::Corruption("unknown error code '" + std::string(token) +
                            "' in reply");
}

std::string FormatOpenReply(uint64_t session_id, uint64_t version) {
  return "OK session=" + std::to_string(session_id) +
         " version=" + std::to_string(version);
}

Result<OpenReply> ParseOpenReply(std::string_view payload) {
  PRAGUE_ASSIGN_OR_RETURN(auto tokens, OkReplyTokens(payload));
  OpenReply reply;
  PRAGUE_ASSIGN_OR_RETURN(auto session, ReplyValue(tokens, "session"));
  PRAGUE_ASSIGN_OR_RETURN(reply.session_id,
                          ParseNumber<uint64_t>(session, "session"));
  PRAGUE_ASSIGN_OR_RETURN(auto version, ReplyValue(tokens, "version"));
  PRAGUE_ASSIGN_OR_RETURN(reply.version,
                          ParseNumber<uint64_t>(version, "version"));
  return reply;
}

std::string FormatStepReply(const StepReport& report) {
  return "OK edge=" + std::to_string(report.edge) +
         " status=" + FragmentStatusToken(report.status) +
         " sim=" + (report.similarity_mode ? std::string("1") : "0") +
         " rq=" + std::to_string(report.exact_candidates) +
         " free=" + std::to_string(report.free_candidates) +
         " ver=" + std::to_string(report.ver_candidates);
}

Result<StepReply> ParseStepReply(std::string_view payload) {
  PRAGUE_ASSIGN_OR_RETURN(auto tokens, OkReplyTokens(payload));
  StepReply reply;
  PRAGUE_ASSIGN_OR_RETURN(auto edge, ReplyValue(tokens, "edge"));
  PRAGUE_ASSIGN_OR_RETURN(reply.edge, ParseNumber<int>(edge, "edge"));
  PRAGUE_ASSIGN_OR_RETURN(auto status, ReplyValue(tokens, "status"));
  PRAGUE_ASSIGN_OR_RETURN(reply.status, ParseFragmentStatus(status));
  PRAGUE_ASSIGN_OR_RETURN(auto sim, ReplyValue(tokens, "sim"));
  reply.similarity_mode = sim == "1";
  PRAGUE_ASSIGN_OR_RETURN(auto rq, ReplyValue(tokens, "rq"));
  PRAGUE_ASSIGN_OR_RETURN(reply.exact_candidates,
                          ParseNumber<uint64_t>(rq, "rq"));
  PRAGUE_ASSIGN_OR_RETURN(auto free_v, ReplyValue(tokens, "free"));
  PRAGUE_ASSIGN_OR_RETURN(reply.free_candidates,
                          ParseNumber<uint64_t>(free_v, "free"));
  PRAGUE_ASSIGN_OR_RETURN(auto ver, ReplyValue(tokens, "ver"));
  PRAGUE_ASSIGN_OR_RETURN(reply.ver_candidates,
                          ParseNumber<uint64_t>(ver, "ver"));
  return reply;
}

std::string FormatRunReply(const QueryResults& results, const RunStats& stats,
                           uint64_t limit) {
  char srt[32];
  std::snprintf(srt, sizeof(srt), "%.3f", stats.srt_seconds * 1000);
  std::string out = "OK mode=";
  out += results.similarity ? "similar" : "exact";
  size_t total =
      results.similarity ? results.similar.size() : results.exact.size();
  out += " n=" + std::to_string(total);
  out += " truncated=";
  out += results.truncated ? '1' : '0';
  out += " phase=";
  out += RunPhaseName(stats.deadline_phase);
  out += " srt_ms=";
  out += srt;
  out += " ids=";
  if (results.similarity) {
    out += JoinList(results.similar, limit, [](const SimilarMatch& m) {
      return std::to_string(m.gid) + '@' + std::to_string(m.distance);
    });
  } else {
    out += JoinList(results.exact, limit,
                    [](GraphId gid) { return std::to_string(gid); });
  }
  return out;
}

Result<RunReply> ParseRunReply(std::string_view payload) {
  PRAGUE_ASSIGN_OR_RETURN(auto tokens, OkReplyTokens(payload));
  RunReply reply;
  PRAGUE_ASSIGN_OR_RETURN(auto mode, ReplyValue(tokens, "mode"));
  if (mode != "exact" && mode != "similar") {
    return Status::Corruption("unknown run mode '" + std::string(mode) + "'");
  }
  reply.similarity = mode == "similar";
  PRAGUE_ASSIGN_OR_RETURN(auto n, ReplyValue(tokens, "n"));
  PRAGUE_ASSIGN_OR_RETURN(reply.total_matches, ParseNumber<uint64_t>(n, "n"));
  PRAGUE_ASSIGN_OR_RETURN(auto truncated, ReplyValue(tokens, "truncated"));
  reply.truncated = truncated == "1";
  PRAGUE_ASSIGN_OR_RETURN(auto phase, ReplyValue(tokens, "phase"));
  reply.deadline_phase = std::string(phase);
  PRAGUE_ASSIGN_OR_RETURN(auto srt, ReplyValue(tokens, "srt_ms"));
  PRAGUE_ASSIGN_OR_RETURN(reply.srt_ms, ParseMillis(srt));
  PRAGUE_ASSIGN_OR_RETURN(auto ids, ReplyValue(tokens, "ids"));
  for (std::string_view item : SplitList(ids)) {
    if (reply.similarity) {
      size_t at = item.find('@');
      if (at == std::string_view::npos) {
        return Status::Corruption("similar match '" + std::string(item) +
                                  "' is missing '@distance'");
      }
      SimilarMatch match;
      PRAGUE_ASSIGN_OR_RETURN(
          match.gid, ParseNumber<GraphId>(item.substr(0, at), "match gid"));
      PRAGUE_ASSIGN_OR_RETURN(
          match.distance, ParseNumber<int>(item.substr(at + 1), "distance"));
      reply.similar.push_back(match);
    } else {
      PRAGUE_ASSIGN_OR_RETURN(GraphId gid,
                              ParseNumber<GraphId>(item, "match gid"));
      reply.exact.push_back(gid);
    }
  }
  return reply;
}

std::string FormatBatchRunReply(
    const std::vector<std::string>& member_payloads) {
  std::string out = "OK batch n=" + std::to_string(member_payloads.size());
  for (const std::string& member : member_payloads) {
    out += '\n';
    out += member;
  }
  return out;
}

Result<BatchRunReply> ParseBatchRunReply(std::string_view payload) {
  // A whole-batch rejection ("ERR ...") decodes to its status; per-member
  // failures live on the member lines and decode individually below.
  size_t newline = payload.find('\n');
  std::string_view first_line =
      newline == std::string_view::npos ? payload : payload.substr(0, newline);
  PRAGUE_RETURN_NOT_OK(DecodeReplyStatus(first_line));
  std::vector<std::string_view> tokens = Tokenize(first_line);
  if (tokens.size() < 2 || tokens[1] != "batch") {
    return Status::Corruption("malformed BATCH_RUN reply");
  }
  PRAGUE_ASSIGN_OR_RETURN(auto n_value, ReplyValue(tokens, "n"));
  PRAGUE_ASSIGN_OR_RETURN(uint64_t n, ParseNumber<uint64_t>(n_value, "n"));
  BatchRunReply reply;
  std::string_view lines = newline == std::string_view::npos
                               ? std::string_view()
                               : payload.substr(newline + 1);
  while (!lines.empty()) {
    size_t eol = lines.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? lines : lines.substr(0, eol);
    // ParseRunReply decodes an ERR member line to its error Status, which
    // is exactly the Result the member slot should hold.
    reply.members.push_back(ParseRunReply(line));
    lines = eol == std::string_view::npos ? std::string_view()
                                          : lines.substr(eol + 1);
  }
  if (reply.members.size() != n) {
    return Status::Corruption(
        "BATCH_RUN reply says n=" + std::to_string(n) + " but carries " +
        std::to_string(reply.members.size()) + " member lines");
  }
  return reply;
}

std::string FormatAppendReply(const MaintenanceReport& report) {
  return "OK version=" + std::to_string(report.to_version) +
         " added=" + std::to_string(report.graphs_added) +
         " sigma=" + std::to_string(report.new_min_support) +
         " reclassified=" + (report.reclassified ? "1" : "0") +
         " promoted=" + std::to_string(report.promoted_fragments) +
         " demoted=" + std::to_string(report.demoted_fragments) +
         " discovered=" + std::to_string(report.discovered_fragments);
}

Result<AppendReply> ParseAppendReply(std::string_view payload) {
  PRAGUE_ASSIGN_OR_RETURN(auto tokens, OkReplyTokens(payload));
  AppendReply reply;
  PRAGUE_ASSIGN_OR_RETURN(auto version, ReplyValue(tokens, "version"));
  PRAGUE_ASSIGN_OR_RETURN(reply.version,
                          ParseNumber<uint64_t>(version, "version"));
  PRAGUE_ASSIGN_OR_RETURN(auto added, ReplyValue(tokens, "added"));
  PRAGUE_ASSIGN_OR_RETURN(reply.added, ParseNumber<uint64_t>(added, "added"));
  PRAGUE_ASSIGN_OR_RETURN(auto sigma, ReplyValue(tokens, "sigma"));
  PRAGUE_ASSIGN_OR_RETURN(reply.min_support,
                          ParseNumber<uint64_t>(sigma, "sigma"));
  PRAGUE_ASSIGN_OR_RETURN(auto reclassified,
                          ReplyValue(tokens, "reclassified"));
  if (reclassified != "0" && reclassified != "1") {
    return Status::Corruption("reclassified= must be 0 or 1");
  }
  reply.reclassified = reclassified == "1";
  PRAGUE_ASSIGN_OR_RETURN(auto promoted, ReplyValue(tokens, "promoted"));
  PRAGUE_ASSIGN_OR_RETURN(reply.promoted,
                          ParseNumber<uint64_t>(promoted, "promoted"));
  PRAGUE_ASSIGN_OR_RETURN(auto demoted, ReplyValue(tokens, "demoted"));
  PRAGUE_ASSIGN_OR_RETURN(reply.demoted,
                          ParseNumber<uint64_t>(demoted, "demoted"));
  PRAGUE_ASSIGN_OR_RETURN(auto discovered, ReplyValue(tokens, "discovered"));
  PRAGUE_ASSIGN_OR_RETURN(reply.discovered,
                          ParseNumber<uint64_t>(discovered, "discovered"));
  return reply;
}

std::string FormatStatsReply(const SessionManagerStats& stats) {
  std::string out = "OK version=" + std::to_string(stats.current_version) +
                    " open=" + std::to_string(stats.open_sessions) +
                    " opened=" + std::to_string(stats.sessions_opened) +
                    " published=" + std::to_string(stats.snapshots_published) +
                    " runs=" + std::to_string(stats.runs_served) +
                    " truncated=" + std::to_string(stats.runs_truncated) +
                    " shards=" + std::to_string(stats.shards) +
                    " shed=" + std::to_string(stats.runs_shed) +
                    " tenants=" + std::to_string(stats.tenants);
  // Durability tokens appear only on durable servers, keeping in-memory
  // payloads byte-identical to the legacy grammar.
  if (stats.durable) {
    out += " wal_bytes=" + std::to_string(stats.wal_bytes) +
           " last_checkpoint=" + std::to_string(stats.last_checkpoint_version);
  }
  out += " sessions=";
  out += JoinList(stats.open_session_infos, 0,
                  [](const OpenSessionInfo& info) {
                    return std::to_string(info.id) + '@' +
                           std::to_string(info.version);
                  });
  return out;
}

Result<StatsReply> ParseStatsReply(std::string_view payload) {
  PRAGUE_ASSIGN_OR_RETURN(auto tokens, OkReplyTokens(payload));
  StatsReply reply;
  PRAGUE_ASSIGN_OR_RETURN(auto version, ReplyValue(tokens, "version"));
  PRAGUE_ASSIGN_OR_RETURN(reply.current_version,
                          ParseNumber<uint64_t>(version, "version"));
  PRAGUE_ASSIGN_OR_RETURN(auto open, ReplyValue(tokens, "open"));
  PRAGUE_ASSIGN_OR_RETURN(reply.open_sessions,
                          ParseNumber<uint64_t>(open, "open"));
  PRAGUE_ASSIGN_OR_RETURN(auto opened, ReplyValue(tokens, "opened"));
  PRAGUE_ASSIGN_OR_RETURN(reply.sessions_opened,
                          ParseNumber<uint64_t>(opened, "opened"));
  PRAGUE_ASSIGN_OR_RETURN(auto published, ReplyValue(tokens, "published"));
  PRAGUE_ASSIGN_OR_RETURN(reply.snapshots_published,
                          ParseNumber<uint64_t>(published, "published"));
  PRAGUE_ASSIGN_OR_RETURN(auto runs, ReplyValue(tokens, "runs"));
  PRAGUE_ASSIGN_OR_RETURN(reply.runs_served,
                          ParseNumber<uint64_t>(runs, "runs"));
  PRAGUE_ASSIGN_OR_RETURN(auto truncated, ReplyValue(tokens, "truncated"));
  PRAGUE_ASSIGN_OR_RETURN(reply.runs_truncated,
                          ParseNumber<uint64_t>(truncated, "truncated"));
  // shards=, shed=, and tenants= are tolerated as absent so a current
  // client can still read an older server's reply.
  if (Result<std::string_view> shards = ReplyValue(tokens, "shards");
      shards.ok()) {
    PRAGUE_ASSIGN_OR_RETURN(reply.shards,
                            ParseNumber<uint64_t>(*shards, "shards"));
  }
  if (Result<std::string_view> shed = ReplyValue(tokens, "shed"); shed.ok()) {
    PRAGUE_ASSIGN_OR_RETURN(reply.runs_shed,
                            ParseNumber<uint64_t>(*shed, "shed"));
  }
  if (Result<std::string_view> tenants = ReplyValue(tokens, "tenants");
      tenants.ok()) {
    PRAGUE_ASSIGN_OR_RETURN(reply.tenants,
                            ParseNumber<uint64_t>(*tenants, "tenants"));
  }
  // wal_bytes=/last_checkpoint= appear only on durable servers; their
  // absence (legacy or in-memory payloads) parses as durable=false.
  if (Result<std::string_view> wal = ReplyValue(tokens, "wal_bytes");
      wal.ok()) {
    reply.durable = true;
    PRAGUE_ASSIGN_OR_RETURN(reply.wal_bytes,
                            ParseNumber<uint64_t>(*wal, "wal_bytes"));
    PRAGUE_ASSIGN_OR_RETURN(auto checkpoint,
                            ReplyValue(tokens, "last_checkpoint"));
    PRAGUE_ASSIGN_OR_RETURN(
        reply.last_checkpoint_version,
        ParseNumber<uint64_t>(checkpoint, "last_checkpoint"));
  }
  PRAGUE_ASSIGN_OR_RETURN(auto sessions, ReplyValue(tokens, "sessions"));
  for (std::string_view item : SplitList(sessions)) {
    size_t at = item.find('@');
    if (at == std::string_view::npos) {
      return Status::Corruption("session entry '" + std::string(item) +
                                "' is missing '@version'");
    }
    uint64_t id = 0, ver = 0;
    PRAGUE_ASSIGN_OR_RETURN(
        id, ParseNumber<uint64_t>(item.substr(0, at), "session id"));
    PRAGUE_ASSIGN_OR_RETURN(
        ver, ParseNumber<uint64_t>(item.substr(at + 1), "session version"));
    reply.sessions.emplace_back(id, ver);
  }
  return reply;
}

std::string FormatMetricsReply(const std::string& prometheus_text) {
  std::string out = "OK metrics";
  if (!prometheus_text.empty()) {
    out += '\n';
    out += prometheus_text;
  }
  return out;
}

Result<std::string> ParseMetricsReply(std::string_view payload) {
  PRAGUE_RETURN_NOT_OK(DecodeReplyStatus(payload));
  constexpr std::string_view kPrefix = "OK metrics";
  if (payload.substr(0, kPrefix.size()) != kPrefix) {
    return Status::Corruption("malformed METRICS reply");
  }
  std::string_view rest = payload.substr(kPrefix.size());
  if (rest.empty()) return std::string();
  if (rest.front() != '\n') {
    return Status::Corruption("malformed METRICS reply");
  }
  return std::string(rest.substr(1));
}

}  // namespace prague
