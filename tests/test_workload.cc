// Query workload generation: sequence validity, containment guarantees,
// similarity-query no-exact-match guarantees.

#include <gtest/gtest.h>

#include "datasets/query_workload.h"
#include "graph/mccs.h"
#include "graph/subgraph_ops.h"
#include "graph/vf2.h"
#include "test_fixtures.h"
#include "util/rng.h"

namespace prague {
namespace {

bool PrefixConnected(const Graph& q, const std::vector<EdgeId>& seq) {
  EdgeMask mask = 0;
  for (EdgeId e : seq) {
    mask |= EdgeBit(e);
    if (!IsEdgeSubsetConnected(q, mask)) return false;
  }
  return MaskSize(mask) == static_cast<int>(q.EdgeCount());
}

TEST(FormulationSequenceTest, DefaultIsPrefixConnectedAndComplete) {
  const auto& fixture = testing::AidsFixture::Get();
  for (GraphId gid = 0; gid < 20; ++gid) {
    const Graph& g = fixture.db.graph(gid);
    if (g.EdgeCount() > kMaxSubsetEdges) continue;
    auto seq = DefaultFormulationSequence(g);
    EXPECT_EQ(seq.size(), g.EdgeCount());
    EXPECT_TRUE(PrefixConnected(g, seq)) << "graph " << gid;
  }
}

TEST(FormulationSequenceTest, RandomIsPrefixConnected) {
  const auto& fixture = testing::AidsFixture::Get();
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph& g = fixture.db.graph(trial);
    if (g.EdgeCount() > kMaxSubsetEdges) continue;
    auto seq = RandomFormulationSequence(g, &rng);
    EXPECT_TRUE(PrefixConnected(g, seq)) << "trial " << trial;
  }
}

TEST(WorkloadTest, ContainmentQueryHasExactMatch) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 42);
  for (size_t edges = 4; edges <= 8; ++edges) {
    Result<VisualQuerySpec> spec = workload.ContainmentQuery(edges, "q");
    ASSERT_TRUE(spec.ok()) << edges;
    EXPECT_EQ(spec->graph.EdgeCount(), edges);
    EXPECT_TRUE(spec->graph.IsConnected());
    EXPECT_TRUE(workload.HasExactMatch(spec->graph));
    EXPECT_TRUE(PrefixConnected(spec->graph, spec->sequence));
  }
}

TEST(WorkloadTest, SimilarityQueryHasNoExactMatchButNearMatches) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 43);
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(7, 1, "s");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(workload.HasExactMatch(spec->graph));
  // Something must be near: distance ≤ 2 for at least one data graph
  // (one mutated node touches at most a couple of edges in a sparse
  // molecule, and the unmutated core came from a real data graph).
  bool near = false;
  for (GraphId gid = 0; gid < fixture.db.size() && !near; ++gid) {
    near = WithinSubgraphDistance(spec->graph, fixture.db.graph(gid), 3);
  }
  EXPECT_TRUE(near);
}

TEST(WorkloadTest, MoreMutationsStillNoExactMatch) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 44);
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(7, 3, "w");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(workload.HasExactMatch(spec->graph));
}

TEST(WorkloadTest, DeterministicPerSeed) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator a(&fixture.db, 7);
  WorkloadGenerator b(&fixture.db, 7);
  Result<VisualQuerySpec> qa = a.ContainmentQuery(6, "x");
  Result<VisualQuerySpec> qb = b.ContainmentQuery(6, "x");
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qb.ok());
  EXPECT_EQ(qa->graph, qb->graph);
  EXPECT_EQ(qa->sequence, qb->sequence);
}

TEST(WorkloadTest, FailsWhenNoHostLargeEnough) {
  GraphDatabase tiny;
  tiny.mutable_labels()->Intern("C");
  GraphBuilder b;
  NodeId x = b.AddNode(0), y = b.AddNode(0);
  ASSERT_TRUE(b.AddEdge(x, y).ok());
  tiny.Add(std::move(b).Build());
  WorkloadGenerator workload(&tiny, 1);
  EXPECT_FALSE(workload.ContainmentQuery(10, "too-big").ok());
}

}  // namespace
}  // namespace prague
