// Unit tests for src/util: Status, Result, IdSet, Rng, byte helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <stdexcept>

#include "util/bytes.h"
#include "util/deadline_queue.h"
#include "util/id_set.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace prague {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad alpha");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    PRAGUE_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), Status::Code::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IOError("disk");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(IdSetTest, ConstructorSortsAndDedupes) {
  IdSet s({5, 1, 3, 1, 5});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ToVector(), (std::vector<GraphId>{1, 3, 5}));
}

TEST(IdSetTest, Universe) {
  IdSet s = IdSet::Universe(4);
  EXPECT_EQ(s.ToVector(), (std::vector<GraphId>{0, 1, 2, 3}));
}

TEST(IdSetTest, Contains) {
  IdSet s({2, 4, 6});
  EXPECT_TRUE(s.Contains(4));
  EXPECT_FALSE(s.Contains(5));
}

TEST(IdSetTest, InsertKeepsOrder) {
  IdSet s({1, 5});
  s.Insert(3);
  s.Insert(3);  // idempotent
  EXPECT_EQ(s.ToVector(), (std::vector<GraphId>{1, 3, 5}));
}

TEST(IdSetTest, Erase) {
  IdSet s({1, 3, 5});
  s.Erase(3);
  s.Erase(99);  // no-op
  EXPECT_EQ(s.ToVector(), (std::vector<GraphId>{1, 5}));
}

TEST(IdSetTest, SetAlgebra) {
  IdSet a({1, 2, 3, 4});
  IdSet b({3, 4, 5});
  EXPECT_EQ(a.Intersect(b).ToVector(), (std::vector<GraphId>{3, 4}));
  EXPECT_EQ(a.Union(b).ToVector(), (std::vector<GraphId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(a.Subtract(b).ToVector(), (std::vector<GraphId>{1, 2}));
}

TEST(IdSetTest, InPlaceAlgebra) {
  IdSet a({1, 2, 3});
  a.IntersectWith(IdSet({2, 3, 4}));
  EXPECT_EQ(a.ToVector(), (std::vector<GraphId>{2, 3}));
  a.UnionWith(IdSet({9}));
  EXPECT_EQ(a.ToVector(), (std::vector<GraphId>{2, 3, 9}));
  a.SubtractWith(IdSet({3}));
  EXPECT_EQ(a.ToVector(), (std::vector<GraphId>{2, 9}));
}

TEST(IdSetTest, SubsetOf) {
  IdSet a({2, 4});
  IdSet b({1, 2, 3, 4});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(IdSet().IsSubsetOf(a));
}

TEST(IdSetTest, IntersectWithEmpty) {
  IdSet a({1, 2});
  EXPECT_TRUE(a.Intersect(IdSet()).empty());
}

TEST(IdSetTest, ToString) {
  EXPECT_EQ(IdSet({1, 2}).ToString(), "{1, 2}");
  EXPECT_EQ(IdSet().ToString(), "{}");
}

// ---- Property tests for the merge/gallop intersection fast paths ----
//
// Every IdSet operation is checked against a std::set-based reference
// model, on both balanced inputs (merge path) and heavily skewed ones
// (size ratio ≥ kGallopRatio forces the galloping path).

std::vector<GraphId> RandomIds(Rng* rng, size_t count, GraphId universe) {
  std::vector<GraphId> ids;
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ids.push_back(static_cast<GraphId>(rng->Below(universe)));
  }
  return ids;
}

std::set<GraphId> AsSet(const IdSet& s) {
  return std::set<GraphId>(s.begin(), s.end());
}

void CheckAlgebraAgainstReference(const IdSet& a, const IdSet& b) {
  std::set<GraphId> ra = AsSet(a), rb = AsSet(b);
  std::vector<GraphId> want_inter, want_union, want_diff;
  std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                        std::back_inserter(want_inter));
  std::set_union(ra.begin(), ra.end(), rb.begin(), rb.end(),
                 std::back_inserter(want_union));
  std::set_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                      std::back_inserter(want_diff));

  EXPECT_EQ(a.Intersect(b).ToVector(), want_inter);
  EXPECT_EQ(b.Intersect(a).ToVector(), want_inter);  // commutes across paths
  EXPECT_EQ(a.Union(b).ToVector(), want_union);
  EXPECT_EQ(a.Subtract(b).ToVector(), want_diff);

  IdSet in_place = a;
  in_place.IntersectWith(b);
  EXPECT_EQ(in_place.ToVector(), want_inter);
  in_place = a;
  in_place.UnionWith(b);
  EXPECT_EQ(in_place.ToVector(), want_union);
  in_place = a;
  in_place.SubtractWith(b);
  EXPECT_EQ(in_place.ToVector(), want_diff);
}

TEST(IdSetPropertyTest, BalancedRoundsMatchReferenceModel) {
  Rng rng(2024);
  for (int round = 0; round < 50; ++round) {
    GraphId universe = static_cast<GraphId>(rng.Between(1, 2000));
    IdSet a(RandomIds(&rng, rng.Below(400), universe));
    IdSet b(RandomIds(&rng, rng.Below(400), universe));
    CheckAlgebraAgainstReference(a, b);
  }
}

TEST(IdSetPropertyTest, SkewedRoundsForceGallopPath) {
  Rng rng(4048);
  for (int round = 0; round < 30; ++round) {
    GraphId universe = static_cast<GraphId>(rng.Between(100, 50000));
    size_t small_n = rng.Below(20);
    // Large side at least kGallopRatio times bigger than the small side.
    size_t large_n = (small_n + 1) * IdSet::kGallopRatio * 4;
    IdSet small(RandomIds(&rng, small_n, universe));
    IdSet large(RandomIds(&rng, large_n, universe));
    CheckAlgebraAgainstReference(small, large);
  }
}

TEST(IdSetPropertyTest, GallopEdgeCases) {
  // Small side entirely past the large side's range.
  IdSet past({1000, 1001});
  std::vector<GraphId> dense;
  for (GraphId i = 0; i < 512; ++i) dense.push_back(i);
  IdSet big(dense);
  EXPECT_TRUE(past.Intersect(big).empty());
  // Small side entirely before it.
  IdSet before({0});
  IdSet high_ids([] {
    std::vector<GraphId> v;
    for (GraphId i = 100; i < 612; ++i) v.push_back(i);
    return v;
  }());
  EXPECT_TRUE(before.Intersect(high_ids).empty());
  // Exact hits at both ends of the large side.
  IdSet ends({0, 511});
  EXPECT_EQ(ends.Intersect(big).ToVector(), (std::vector<GraphId>{0, 511}));
}

TEST(IdSetPropertyTest, SelfAliasingInPlaceOps) {
  IdSet a({1, 2, 3});
  a.IntersectWith(a);
  EXPECT_EQ(a.ToVector(), (std::vector<GraphId>{1, 2, 3}));
  a.UnionWith(a);
  EXPECT_EQ(a.ToVector(), (std::vector<GraphId>{1, 2, 3}));
  a.SubtractWith(a);
  EXPECT_TRUE(a.empty());
}

TEST(IdSetPropertyTest, IntersectManyMatchesPairwiseFolds) {
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    size_t k = rng.Between(1, 6);
    std::vector<IdSet> sets;
    for (size_t i = 0; i < k; ++i) {
      sets.emplace_back(RandomIds(&rng, rng.Below(300), 500));
    }
    std::vector<const IdSet*> ptrs;
    for (const IdSet& s : sets) ptrs.push_back(&s);
    IdSet folded = sets[0];
    for (size_t i = 1; i < k; ++i) folded.IntersectWith(sets[i]);
    EXPECT_EQ(IdSet::IntersectMany(ptrs), folded);
  }
}

TEST(IdSetPropertyTest, IntersectManyIgnoresNullsAndHandlesEmpty) {
  IdSet a({1, 2, 3}), b({2, 3, 4});
  EXPECT_EQ(IdSet::IntersectMany({&a, nullptr, &b}).ToVector(),
            (std::vector<GraphId>{2, 3}));
  EXPECT_TRUE(IdSet::IntersectMany({}).empty());
  EXPECT_TRUE(IdSet::IntersectMany({nullptr}).empty());
  IdSet empty;
  EXPECT_TRUE(IdSet::IntersectMany({&a, &empty, &b}).empty());
  EXPECT_EQ(IdSet::IntersectMany({&a}).ToVector(), a.ToVector());
}

TEST(IdSetPropertyTest, SliceMatchesFilter) {
  Rng rng(91);
  for (int round = 0; round < 20; ++round) {
    IdSet set(RandomIds(&rng, rng.Below(200), 400));
    GraphId a = static_cast<GraphId>(rng.Below(450));
    GraphId b = static_cast<GraphId>(rng.Below(450));
    if (a > b) std::swap(a, b);
    std::vector<GraphId> expected;
    for (GraphId id : set) {
      if (id >= a && id < b) expected.push_back(id);
    }
    EXPECT_EQ(set.Slice(a, b).ToVector(), expected);
  }
}

TEST(IdSetPropertyTest, SliceSharesBufferWhenFullyContained) {
  IdSet set({10, 11, 40});
  IdSet whole = set.Slice(0, 100);
  EXPECT_TRUE(whole.SharesStorageWith(set));
  // A strict sub-range copies.
  IdSet part = set.Slice(11, 100);
  EXPECT_FALSE(part.SharesStorageWith(set));
  EXPECT_EQ(part.ToVector(), (std::vector<GraphId>{11, 40}));
  // Degenerate ranges are empty.
  EXPECT_TRUE(set.Slice(50, 40).empty());
  EXPECT_TRUE(set.Slice(12, 12).empty());
  EXPECT_TRUE(IdSet().Slice(0, 100).empty());
}

TEST(TaskGroupTest, WaitsOnlyOnItsOwnTasks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 64; ++i) {
      group.Submit([&] { ran.fetch_add(1); });
    }
    EXPECT_TRUE(group.WaitAll().ok());
    EXPECT_EQ(ran.load(), 64);
  }
  // Two groups on one shared pool do not entangle: each WaitAll() returns
  // once its own tasks are done, regardless of the other group's backlog.
  TaskGroup a(&pool);
  TaskGroup b(&pool);
  std::atomic<int> a_ran{0}, b_ran{0};
  for (int i = 0; i < 16; ++i) {
    a.Submit([&] { a_ran.fetch_add(1); });
    b.Submit([&] { b_ran.fetch_add(1); });
  }
  EXPECT_TRUE(a.WaitAll().ok());
  EXPECT_EQ(a_ran.load(), 16);
  EXPECT_TRUE(b.WaitAll().ok());
  EXPECT_EQ(b_ran.load(), 16);
}

TEST(TaskGroupTest, NullPoolRunsInline) {
  int ran = 0;
  TaskGroup group(nullptr);
  group.Submit([&] { ++ran; });
  EXPECT_EQ(ran, 1);  // already executed, not deferred
  EXPECT_TRUE(group.WaitAll().ok());
}

TEST(TaskGroupTest, CapturesFirstExceptionAsInternalStatus) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Submit([] { throw std::runtime_error("boom"); });
  group.Submit([] {});
  Status st = group.WaitAll();
  EXPECT_EQ(st.code(), Status::Code::kInternal);
  EXPECT_NE(st.message().find("boom"), std::string::npos);
  // WaitAll is idempotent and keeps reporting the captured error.
  EXPECT_EQ(group.WaitAll().code(), Status::Code::kInternal);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t x = rng.Between(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= x == -2;
    saw_hi |= x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, WeightedRespectsZeroWeight) {
  Rng rng(5);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Weighted(w), 1u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5};
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(BytesTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(100), "100 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.00 MB");
}

TEST(BytesTest, ToMegabytes) {
  EXPECT_DOUBLE_EQ(ToMegabytes(1024 * 1024), 1.0);
}

TEST(BytesTest, U32CodecIsLittleEndian) {
  uint8_t buf[4];
  EncodeU32LE(0x0A0B0C0Du, buf);
  EXPECT_EQ(buf[0], 0x0Du);
  EXPECT_EQ(buf[1], 0x0Cu);
  EXPECT_EQ(buf[2], 0x0Bu);
  EXPECT_EQ(buf[3], 0x0Au);
  EXPECT_EQ(DecodeU32LE(buf), 0x0A0B0C0Du);
}

TEST(BytesTest, FrameHeaderRoundTrips) {
  for (uint32_t length : {0u, 1u, 513u, kMaxFramePayload}) {
    FrameHeader header{length, 0x51};
    uint8_t buf[kFrameHeaderBytes];
    EncodeFrameHeader(header, buf);
    Result<FrameHeader> back = DecodeFrameHeader(buf, sizeof(buf));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, header);
  }
}

TEST(BytesTest, FrameHeaderRejectsTruncatedBuffer) {
  uint8_t buf[kFrameHeaderBytes];
  EncodeFrameHeader({12, 0x52}, buf);
  for (size_t n = 0; n < kFrameHeaderBytes; ++n) {
    Result<FrameHeader> r = DecodeFrameHeader(buf, n);
    ASSERT_FALSE(r.ok()) << n;
    EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  }
}

TEST(BytesTest, FrameHeaderRejectsOversizedLength) {
  // A corrupted (or hostile) length prefix must not be believed: anything
  // past the cap is Corruption, so a reader never allocates from it.
  uint8_t buf[kFrameHeaderBytes];
  EncodeFrameHeader({kMaxFramePayload + 1, 0x51}, buf);
  Result<FrameHeader> r = DecodeFrameHeader(buf, sizeof(buf));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);

  EncodeU32LE(0xFFFFFFFFu, buf);
  buf[4] = 0x51;
  r = DecodeFrameHeader(buf, sizeof(buf));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
}

TEST(StatusTest, BusyIsItsOwnCode) {
  Status busy = Status::Busy("shed by admission control");
  EXPECT_FALSE(busy.ok());
  EXPECT_EQ(busy.code(), Status::Code::kBusy);
  EXPECT_NE(busy.ToString().find("shed"), std::string::npos);
}

TEST(DeadlineQueueTest, PopsInDeadlineOrder) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point base = Clock::now();
  DeadlineQueue<int> queue;
  EXPECT_TRUE(queue.empty());
  queue.Push(base + std::chrono::milliseconds(30), 3);
  queue.Push(base + std::chrono::milliseconds(10), 1);
  queue.Push(base + std::chrono::milliseconds(20), 2);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.earliest(), base + std::chrono::milliseconds(10));
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), 3);
  EXPECT_TRUE(queue.empty());
}

TEST(DeadlineQueueTest, EqualDeadlinesPopFifo) {
  const auto when = std::chrono::steady_clock::now();
  DeadlineQueue<int> queue;
  for (int i = 0; i < 8; ++i) queue.Push(when, i);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(queue.Pop(), i);
}

TEST(DeadlineQueueTest, UnboundedYieldsToEveryRealDeadline) {
  const auto soon =
      std::chrono::steady_clock::now() + std::chrono::seconds(3600);
  DeadlineQueue<int> queue;
  queue.Push(DeadlineQueue<int>::Unbounded(), 99);
  queue.Push(soon, 1);
  queue.Push(DeadlineQueue<int>::Unbounded(), 100);
  EXPECT_EQ(queue.Pop(), 1);
  // Unbounded entries tie-break FIFO among themselves.
  EXPECT_EQ(queue.Pop(), 99);
  EXPECT_EQ(queue.Pop(), 100);
}

TEST(DeadlineQueueTest, MovesValuesOut) {
  DeadlineQueue<std::unique_ptr<int>> queue;
  queue.Push(DeadlineQueue<std::unique_ptr<int>>::Unbounded(),
             std::make_unique<int>(7));
  std::unique_ptr<int> out = queue.Pop();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

}  // namespace
}  // namespace prague
