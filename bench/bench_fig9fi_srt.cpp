// Figures 9(f)-(i) reproduction: similarity-query SRT (s) vs σ for Q1-Q4.
//
// PRG's SRT = residual work after Run (its candidates were maintained
// under GUI latency); GR/SG/DVP pay filter + verify entirely after Run.
// Paper shape: PRG below GR/SG at larger σ and growing gracefully; GR/SG
// may edge out PRG on worst-case queries at σ ∈ {1,2}; DVP shown for Q1
// only (the paper's DVP binary returned empty results elsewhere).

#include <cstdio>

#include "bench_common.h"

using namespace prague;
using namespace prague::bench;

int main() {
  Banner("Figures 9(f)-(i): similarity SRT (s) vs sigma (Q1-Q4)",
         "AIDS-like dataset; 2s GUI latency per edge for PRG");
  Workbench bench = BuildAidsWorkbench(AidsGraphCount());
  std::vector<VisualQuerySpec> queries = AidsQueries(bench);
  FeatureIndex features = bench.BuildFeatureIndex(4);
  GrafilLikeEngine gr(&features, &bench.db);
  SigmaLikeEngine sg(&features, &bench.db);

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const VisualQuerySpec& spec = queries[qi];
    std::printf("--- %s (|q|=%zu) ---\n", spec.name.c_str(),
                spec.graph.EdgeCount());
    TablePrinter table({"sigma", "PRG (s)", "SG (s)", "GR (s)", "DVP (s)"});
    for (int sigma = 1; sigma <= 4; ++sigma) {
      SimulationConfig config;
      config.prague.sigma = sigma;
      SessionSimulator simulator(bench.snapshot, config);
      Result<SimulationResult> prg = simulator.RunPrague(spec);
      if (!prg.ok()) {
        std::fprintf(stderr, "PRG failed: %s\n",
                     prg.status().ToString().c_str());
        return 1;
      }
      SimilaritySearchOutcome sg_out =
          sg.Evaluate(spec.graph, sigma, bench.db);
      SimilaritySearchOutcome gr_out =
          gr.Evaluate(spec.graph, sigma, bench.db);
      std::string dvp_cell = "-";
      if (qi == 0) {  // paper reports DVP on Q1 only
        DistVpLikeEngine dvp(bench.mined.frequent, &bench.db, sigma);
        dvp_cell = Fmt(dvp.Evaluate(spec.graph, sigma, bench.db).srt_seconds,
                       3);
      }
      table.AddRow({std::to_string(sigma), Fmt(prg->srt_seconds, 3),
                    Fmt(sg_out.srt_seconds, 3), Fmt(gr_out.srt_seconds, 3),
                    dvp_cell});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "paper shape check: PRG grows gracefully with sigma and undercuts "
      "GR/SG at sigma>=3; traditional engines pay everything after Run.\n");
  return 0;
}
