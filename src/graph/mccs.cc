#include "graph/mccs.h"

#include <cassert>
#include <unordered_set>

#include "graph/canonical.h"
#include "graph/vf2.h"

namespace prague {

namespace {

// Tests the level-k connected subsets of q against g, de-duplicating
// isomorphic subsets. Returns a witnessing mask, or 0 if none matches.
EdgeMask AnySubsetMatches(const Graph& q,
                          const std::vector<EdgeMask>& subsets,
                          const Graph& g) {
  std::unordered_set<CanonicalCode> tried;
  for (EdgeMask mask : subsets) {
    ExtractedSubgraph sub = ExtractEdgeSubgraph(q, mask);
    CanonicalCode code = GetCanonicalCode(sub.graph);
    if (!tried.insert(code).second) continue;
    if (IsSubgraphIsomorphic(sub.graph, g)) return mask;
  }
  return 0;
}

}  // namespace

MccsResult ComputeMccs(const Graph& q, const Graph& g) {
  assert(q.EdgeCount() >= 1 && q.EdgeCount() <= kMaxSubsetEdges);
  MccsResult out;
  out.distance = static_cast<int>(q.EdgeCount());
  std::vector<std::vector<EdgeMask>> by_size = ConnectedEdgeSubsetsBySize(q);
  for (size_t k = q.EdgeCount(); k >= 1; --k) {
    EdgeMask witness = AnySubsetMatches(q, by_size[k], g);
    if (witness != 0) {
      out.mccs_edges = k;
      out.similarity = static_cast<double>(k) /
                       static_cast<double>(q.EdgeCount());
      out.distance = static_cast<int>(q.EdgeCount() - k);
      out.witness = witness;
      return out;
    }
  }
  return out;  // no common edge at all
}

bool WithinSubgraphDistance(const Graph& q, const Graph& g, int sigma) {
  assert(q.EdgeCount() >= 1 && q.EdgeCount() <= kMaxSubsetEdges);
  if (sigma >= static_cast<int>(q.EdgeCount())) return true;
  std::vector<std::vector<EdgeMask>> by_size = ConnectedEdgeSubsetsBySize(q);
  size_t needed = q.EdgeCount() - static_cast<size_t>(sigma);
  // One level suffices: if some (needed+j)-subset matches, each of its
  // connected (needed)-sub-subsets also matches, so checking the minimum
  // required level is both sound and complete.
  return AnySubsetMatches(q, by_size[needed], g) != 0;
}

bool ContainsLevelSubgraph(const Graph& q, const Graph& g, size_t level) {
  assert(level >= 1 && level <= q.EdgeCount());
  std::vector<std::vector<EdgeMask>> by_size = ConnectedEdgeSubsetsBySize(q);
  return AnySubsetMatches(q, by_size[level], g) != 0;
}

}  // namespace prague
