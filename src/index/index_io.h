// Index persistence. The paper's DF-index is disk-resident; this module
// provides the save/load path for both action-aware indexes. Fragments are
// serialized as their minimum-DFS-code strings (the canonical code already
// stored on every vertex) and full FSG id sets are reconstructed from the
// compressed delIds on load.

#ifndef PRAGUE_INDEX_INDEX_IO_H_
#define PRAGUE_INDEX_INDEX_IO_H_

#include <iosfwd>
#include <string>

#include "index/action_aware_index.h"
#include "util/result.h"
#include "util/status.h"

namespace prague {

/// \brief Serializer/deserializer for ActionAwareIndexes.
class IndexSerializer {
 public:
  /// \brief Writes both indexes in a line-oriented text format.
  static Status Save(const ActionAwareIndexes& indexes, std::ostream* out);
  /// \brief Writes to a file.
  static Status SaveToFile(const ActionAwareIndexes& indexes,
                           const std::string& path);
  /// \brief Reads both indexes; reconstructs fsgIds from delIds.
  static Result<ActionAwareIndexes> Load(std::istream* in);
  /// \brief Reads from a file.
  static Result<ActionAwareIndexes> LoadFromFile(const std::string& path);
};

}  // namespace prague

#endif  // PRAGUE_INDEX_INDEX_IO_H_
