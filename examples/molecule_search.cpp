// Molecule search: PRAGUE over an AIDS-like molecular database.
//
// Demonstrates the "practical environment" story of the paper on a larger
// dataset: a biologist sketches a substructure that turns out not to exist
// (Status flips to Similar partway through), and PRAGUE
//  (a) suggests which bond to delete to get exact matches back, and
//  (b) if the user keeps going, returns ranked approximate matches —
// all while hiding its work under GUI latency. The same query is also run
// through the GBLENDER baseline to show the modification-cost gap.
//
// Usage: ./build/examples/molecule_search [graph_count=2000]

#include <cstdio>
#include <cstdlib>

#include "core/gblender.h"
#include "core/prague_session.h"
#include "datasets/aids_generator.h"
#include "datasets/query_workload.h"
#include "gui/session_simulator.h"
#include "index/action_aware_index.h"
#include "util/bytes.h"
#include "util/stopwatch.h"

using namespace prague;

int main(int argc, char** argv) {
  size_t graph_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;

  std::printf("== molecule_search: PRAGUE on an AIDS-like dataset ==\n\n");
  AidsGeneratorConfig gen;
  gen.graph_count = graph_count;
  gen.seed = 2012;
  Stopwatch gen_timer;
  GraphDatabase db = GenerateAidsLikeDatabase(gen);
  std::printf("generated %zu molecules (avg %.1f atoms / %.1f bonds) in %.2fs\n",
              db.size(), db.AverageNodeCount(), db.AverageEdgeCount(),
              gen_timer.ElapsedSeconds());

  MiningConfig mining;
  mining.min_support_ratio = 0.1;  // the paper's alpha for AIDS
  mining.max_fragment_edges = 8;
  A2fConfig a2f;
  a2f.beta = 4;
  Stopwatch mine_timer;
  Result<ActionAwareIndexes> indexes = BuildActionAwareIndexes(db, mining, a2f);
  if (!indexes.ok()) {
    std::fprintf(stderr, "%s\n", indexes.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "mined %zu frequent fragments + %zu DIFs in %.2fs; index size %s\n\n",
      indexes->a2f.VertexCount(), indexes->a2i.EntryCount(),
      mine_timer.ElapsedSeconds(), HumanBytes(indexes->StorageBytes()).c_str());

  // A similarity workload query: a sampled molecule fragment with one atom
  // relabeled so no molecule matches exactly.
  WorkloadGenerator workload(&db, 7);
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(7, 1, "sketch");
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("query sketch (7 bonds):\n");
  for (EdgeId e : spec->sequence) {
    const Edge& edge = spec->graph.GetEdge(e);
    std::printf("  %s-%s\n",
                db.labels().Name(spec->graph.NodeLabel(edge.u)).c_str(),
                db.labels().Name(spec->graph.NodeLabel(edge.v)).c_str());
  }

  // --- Path (b): user keeps drawing; PRAGUE goes to similarity. -------
  SimulationConfig sim_config;
  sim_config.prague.sigma = 3;
  SessionSimulator simulator(DatabaseSnapshot::Borrow(&db, &indexes.value()), sim_config);
  Result<SimulationResult> sim = simulator.RunPrague(*spec);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }
  std::printf("\nformulation trace (2s GUI latency per bond):\n");
  for (const StepTrace& t : sim->steps) {
    std::printf("  e%-2d engine=%6.2fms overflow=%.2fms  |Rq|=%-6zu", t.edge,
                t.engine_seconds * 1000, t.overflow_seconds * 1000,
                t.exact_candidates);
    if (t.free_candidates + t.ver_candidates > 0) {
      std::printf(" Rfree=%zu Rver=%zu", t.free_candidates, t.ver_candidates);
    }
    std::printf("\n");
  }
  std::printf("SRT: %.2f ms; %zu approximate matches", sim->srt_seconds * 1000,
              sim->results.similar.size());
  if (!sim->results.similar.empty()) {
    std::printf(" (best distance %d)", sim->results.similar.front().distance);
  }
  std::printf("\n");

  // --- Path (a): user asks for a modification suggestion. -------------
  PragueSession session(DatabaseSnapshot::Borrow(&db, &indexes.value()), sim_config.prague);
  {
    std::vector<NodeId> node_map(spec->graph.NodeCount(), kInvalidNode);
    for (EdgeId e : spec->sequence) {
      const Edge& edge = spec->graph.GetEdge(e);
      for (NodeId n : {edge.u, edge.v}) {
        if (node_map[n] == kInvalidNode) {
          node_map[n] = session.AddNode(spec->graph.NodeLabel(n));
        }
      }
      if (!session.AddEdge(node_map[edge.u], node_map[edge.v]).ok()) {
        return 1;
      }
    }
  }
  if (auto suggestion = session.SuggestDeletion()) {
    std::printf(
        "\nmodification suggestion: delete bond e%d -> %zu exact candidates\n",
        suggestion->edge, suggestion->candidates.size());
    Stopwatch mod_timer;
    if (session.DeleteEdge(suggestion->edge).ok()) {
      std::printf("applied in %.3f ms (PRAGUE keeps all SPIGs warm)\n",
                  mod_timer.ElapsedMillis());
      Result<QueryResults> results = session.Run(nullptr);
      if (results.ok()) {
        std::printf("exact matches after modification: %zu\n",
                    results->exact.size());
      }
    }
  } else {
    std::printf("\nno single-bond deletion restores exact matches\n");
  }

  // --- GBLENDER's modification cost, for contrast. ---------------------
  GBlenderSession gbr(DatabaseSnapshot::Borrow(&db, &indexes.value()));
  {
    std::vector<NodeId> node_map(spec->graph.NodeCount(), kInvalidNode);
    for (EdgeId e : spec->sequence) {
      const Edge& edge = spec->graph.GetEdge(e);
      for (NodeId n : {edge.u, edge.v}) {
        if (node_map[n] == kInvalidNode) {
          node_map[n] = gbr.AddNode(spec->graph.NodeLabel(n));
        }
      }
      if (!gbr.AddEdge(node_map[edge.u], node_map[edge.v]).ok()) return 1;
    }
  }
  for (FormulationId ell = 1; ell <= 7; ++ell) {
    if (!gbr.query().CanDelete(ell)) continue;
    Result<GbrStepReport> report = gbr.DeleteEdge(ell);
    if (report.ok()) {
      std::printf(
          "GBLENDER deleting e%d: replayed %zu steps in %.3f ms "
          "(no SPIGs to reuse)\n",
          ell, report->replayed_steps, report->replay_seconds * 1000);
      break;
    }
  }
  return 0;
}
