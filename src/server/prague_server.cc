#include "server/prague_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/wire.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace prague {

namespace {

// Edge identity on the wire is the unordered pair of node handles.
std::pair<uint32_t, uint32_t> EdgeKey(uint32_t u, uint32_t v) {
  return {std::min(u, v), std::max(u, v)};
}

// Per-command frame counter (obs/metrics.h).
obs::Counter* CommandCounter(CommandKind kind) {
  obs::ServerMetrics& sm = obs::ServerMetrics::Get();
  switch (kind) {
    case CommandKind::kOpen:
      return sm.cmd_open_total;
    case CommandKind::kAddEdge:
      return sm.cmd_add_edge_total;
    case CommandKind::kDeleteEdge:
      return sm.cmd_delete_edge_total;
    case CommandKind::kRun:
      return sm.cmd_run_total;
    case CommandKind::kCancel:
      return sm.cmd_cancel_total;
    case CommandKind::kStats:
      return sm.cmd_stats_total;
    case CommandKind::kMetrics:
      return sm.cmd_metrics_total;
    case CommandKind::kClose:
      return sm.cmd_close_total;
  }
  return sm.cmd_close_total;
}

}  // namespace

// Per-connection state. Lives on the handler's stack; the run thread
// borrows it and is always joined before the handler returns.
struct PragueServer::Connection {
  int fd = -1;
  // Serializes frame writes: the handler thread and the run thread both
  // send replies.
  std::mutex write_mu;
  std::shared_ptr<ManagedSession> session;
  // Client node handle -> session node, plus the label each handle was
  // created with (a handle cannot be silently relabeled).
  std::unordered_map<uint32_t, NodeId> nodes;
  std::unordered_map<uint32_t, std::string> node_labels;
  // Unordered handle pair -> formulation id of the edge between them.
  std::map<std::pair<uint32_t, uint32_t>, FormulationId> edges;
  std::atomic<bool> run_in_flight{false};
  std::thread run_thread;

  void SendReply(std::string_view payload) {
    std::lock_guard<std::mutex> lock(write_mu);
    Status st = SendFrame(fd, FrameType::kResponse, payload);
    if (!st.ok()) {
      // The client is gone; the handler will notice on its next recv.
      PRAGUE_LOG(Debug) << "dropping reply: " << st.ToString();
    }
  }
};

PragueServer::PragueServer(SessionManager* manager,
                           PragueServerOptions options)
    : manager_(manager), options_(options) {}

PragueServer::~PragueServer() { Stop(); }

Status PragueServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("server already running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IOError("bind to port " +
                                std::to_string(options_.port) + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status st = Status::IOError(std::string("getsockname: ") +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, options_.backlog) < 0) {
    Status st = Status::IOError(std::string("listen: ") +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  size_t threads = options_.worker_threads != 0
                       ? options_.worker_threads
                       : std::max<size_t>(8, std::thread::hardware_concurrency());
  pool_ = std::make_unique<ThreadPool>(threads);
  connections_accepted_.store(0);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  PRAGUE_LOG(Info) << "serving on port " << port_ << " with " << threads
                   << " connection slots";
  return Status::OK();
}

void PragueServer::Stop() {
  if (!running_.exchange(false)) return;
  // Wake the accept loop, then every parked handler.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Handlers notice the dead sockets, cancel in-flight runs, and drain.
  pool_->Wait();
  pool_.reset();
  PRAGUE_LOG(Info) << "server on port " << port_ << " stopped";
}

void PragueServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (running_.load()) {
        PRAGUE_LOG(Warning) << "accept: " << std::strerror(errno);
      }
      return;
    }
    if (!running_.load()) {
      ::close(fd);
      return;
    }
    connections_accepted_.fetch_add(1);
    obs::ServerMetrics::Get().connections_total->Increment();
    // Frames are tiny and latency-bound; Nagle + delayed ACK would park
    // back-to-back commands (e.g. RUN then CANCEL) in the peer's kernel
    // buffer for tens of milliseconds.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      live_fds_.insert(fd);
    }
    pool_->Submit([this, fd] { ServeConnection(fd); });
  }
}

void PragueServer::ServeConnection(int fd) {
  obs::ServerMetrics& sm = obs::ServerMetrics::Get();
  Connection conn;
  conn.fd = fd;
  for (;;) {
    Result<WireFrame> frame = RecvFrame(fd);
    if (!frame.ok()) {
      if (!IsConnectionClosed(frame.status())) {
        sm.protocol_errors_total->Increment();
        PRAGUE_LOG(Warning) << "connection dropped: "
                            << frame.status().ToString();
      }
      break;
    }
    sm.frames_total->Increment();
    if (frame->type != FrameType::kRequest) {
      sm.protocol_errors_total->Increment();
      conn.SendReply(EncodeErrorReply(
          Status::Corruption("expected a request frame")));
      break;
    }
    Result<WireCommand> cmd = ParseCommand(frame->payload);
    if (!cmd.ok()) {
      sm.protocol_errors_total->Increment();
      conn.SendReply(EncodeErrorReply(cmd.status()));
      continue;
    }
    CommandCounter(cmd->kind)->Increment();
    if (!HandleCommand(conn, *cmd)) break;
  }
  // Teardown: a run still in flight is cancelled so the join is prompt.
  if (conn.run_in_flight.load() && conn.session != nullptr) {
    conn.session->Cancel();
  }
  JoinRunThread(conn);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    live_fds_.erase(fd);
  }
  ::close(fd);
}

void PragueServer::JoinRunThread(Connection& conn) {
  if (conn.run_thread.joinable()) conn.run_thread.join();
}

bool PragueServer::HandleCommand(Connection& conn, const WireCommand& cmd) {
  // CANCEL is fire-and-forget and valid mid-RUN — that is its purpose.
  if (cmd.kind == CommandKind::kCancel) {
    if (conn.run_in_flight.load() && conn.session != nullptr) {
      conn.session->Cancel();
    }
    return true;
  }
  if (conn.run_in_flight.load()) {
    conn.SendReply(EncodeErrorReply(Status::FailedPrecondition(
        "a RUN is in flight on this connection; only CANCEL is accepted")));
    return true;
  }
  // The previous run (if any) has finished; reap its thread.
  JoinRunThread(conn);

  switch (cmd.kind) {
    case CommandKind::kOpen: {
      if (conn.session != nullptr) {
        conn.SendReply(EncodeErrorReply(Status::FailedPrecondition(
            "a session is already open on this connection")));
        return true;
      }
      int64_t budget_ms = cmd.timeout_ms >= 0
                              ? cmd.timeout_ms
                              : options_.default_run_deadline_ms;
      conn.session = budget_ms >= 0 ? manager_->OpenWithDeadline(budget_ms)
                                    : manager_->Open();
      conn.SendReply(
          FormatOpenReply(conn.session->id(), conn.session->version()));
      return true;
    }
    case CommandKind::kAddEdge:
    case CommandKind::kDeleteEdge: {
      if (conn.session == nullptr) {
        conn.SendReply(EncodeErrorReply(Status::FailedPrecondition(
            "no session on this connection (send OPEN first)")));
        return true;
      }
      std::string reply;
      if (cmd.kind == CommandKind::kAddEdge) {
        reply = conn.session->With([&](PragueSession& s) -> std::string {
          NodeId endpoints[2];
          const std::pair<uint32_t, const std::string*> wanted[2] = {
              {cmd.u, &cmd.u_label}, {cmd.v, &cmd.v_label}};
          for (int i = 0; i < 2; ++i) {
            auto [handle, label] = wanted[i];
            auto it = conn.nodes.find(handle);
            if (it != conn.nodes.end()) {
              if (conn.node_labels[handle] != *label) {
                return EncodeErrorReply(Status::InvalidArgument(
                    "node handle " + std::to_string(handle) +
                    " already has label '" + conn.node_labels[handle] +
                    "'"));
              }
              endpoints[i] = it->second;
            } else {
              Result<NodeId> added = s.AddNodeByName(*label);
              if (!added.ok()) return EncodeErrorReply(added.status());
              conn.nodes[handle] = *added;
              conn.node_labels[handle] = *label;
              endpoints[i] = *added;
            }
          }
          Result<StepReport> step =
              s.AddEdge(endpoints[0], endpoints[1], cmd.edge_label);
          if (!step.ok()) return EncodeErrorReply(step.status());
          conn.edges[EdgeKey(cmd.u, cmd.v)] = step->edge;
          return FormatStepReply(*step);
        });
      } else {
        auto it = conn.edges.find(EdgeKey(cmd.u, cmd.v));
        if (it == conn.edges.end()) {
          conn.SendReply(EncodeErrorReply(Status::NotFound(
              "no edge between node handles " + std::to_string(cmd.u) +
              " and " + std::to_string(cmd.v))));
          return true;
        }
        FormulationId ell = it->second;
        reply = conn.session->With([&](PragueSession& s) -> std::string {
          Result<StepReport> step = s.DeleteEdge(ell);
          if (!step.ok()) return EncodeErrorReply(step.status());
          conn.edges.erase(it);
          return FormatStepReply(*step);
        });
      }
      conn.SendReply(reply);
      return true;
    }
    case CommandKind::kRun: {
      if (conn.session == nullptr) {
        conn.SendReply(EncodeErrorReply(Status::FailedPrecondition(
            "no session on this connection (send OPEN first)")));
        return true;
      }
      StartRun(conn, cmd.limit);
      return true;
    }
    case CommandKind::kStats: {
      conn.SendReply(FormatStatsReply(manager_->Stats()));
      return true;
    }
    case CommandKind::kMetrics: {
      conn.SendReply(FormatMetricsReply(
          obs::MetricsRegistry::Global().RenderPrometheus()));
      return true;
    }
    case CommandKind::kClose: {
      conn.SendReply("OK bye");
      return false;
    }
    case CommandKind::kCancel:
      break;  // handled above
  }
  return true;
}

void PragueServer::StartRun(Connection& conn, uint64_t limit) {
  // Re-arm the token so a stale CANCEL (one that raced the end of the
  // previous run) cannot poison this run.
  conn.session->ResetCancellation();
  conn.run_in_flight.store(true);
  // `this` is safe here: ServeConnection joins the run thread before it
  // returns, and Stop() drains the handler pool before the server dies.
  conn.run_thread = std::thread([this, &conn, limit] {
    obs::ServerMetrics& sm = obs::ServerMetrics::Get();
    Stopwatch timer;
    obs::RunTrace trace;
    bool ran = false;
    std::string reply =
        conn.session->With([&](PragueSession& s) -> std::string {
          RunStats stats;
          Result<QueryResults> results = s.Run(&stats);
          if (!results.ok()) return EncodeErrorReply(results.status());
          trace = s.last_run_trace();
          ran = true;
          return FormatRunReply(*results, stats, limit);
        });
    double elapsed_ms = timer.ElapsedMillis();
    sm.run_latency_us->Record(
        static_cast<uint64_t>(elapsed_ms * 1000 + 0.5));
    if (ran && trace.truncated) sm.runs_truncated_total->Increment();
    if (ran && options_.slow_query_ms >= 0 &&
        elapsed_ms >= static_cast<double>(options_.slow_query_ms)) {
      sm.slow_queries_total->Increment();
      PRAGUE_LOG(Warning) << "slow query (" << elapsed_ms
                          << " ms): " << trace.ToString();
    }
    // Clear the flag before replying so a lock-step client's next command
    // (sent only after it reads this reply) is never bounced as "busy".
    conn.run_in_flight.store(false);
    conn.SendReply(reply);
  });
}

}  // namespace prague
