// Query modification support — Algorithm 6.
//
// When the containment candidate set Rq goes empty, PRAGUE suggests the
// edge whose deletion leaves the largest candidate set; the SPIG set
// already holds a vertex for every q−e (they are connected (|q|−1)-edge
// subsets), so no recomputation is needed — this is what makes the paper's
// Table IV/V modification costs "virtually zero".

#ifndef PRAGUE_CORE_MODIFICATION_H_
#define PRAGUE_CORE_MODIFICATION_H_

#include <optional>
#include <vector>

#include "core/candidates.h"
#include "core/spig.h"
#include "core/visual_query.h"
#include "util/id_set.h"

namespace prague {

/// \brief A suggested edge deletion.
struct ModificationSuggestion {
  /// The edge ed to delete (Algorithm 6 lines 3-8).
  FormulationId edge = 0;
  /// The candidate set of q − ed.
  IdSet candidates;
};

/// \brief Scans every deletable edge and returns the one maximizing
/// |Rq′|, with that candidate set. Returns nullopt when no single edge
/// deletion is possible (|q| ≤ 1) or none yields candidates.
///
/// Only connectivity-preserving deletions are considered (the paper
/// requires the modified query to stay connected).
std::optional<ModificationSuggestion> SuggestEdgeDeletion(
    const VisualQuery& query, const SpigSet& spigs,
    const ActionAwareIndexes& indexes);

}  // namespace prague

#endif  // PRAGUE_CORE_MODIFICATION_H_
