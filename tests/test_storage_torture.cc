// Crash-recovery torture: a child process appends batches through the full
// durable path (SessionManager -> WAL fsync -> publish) and is SIGKILLed at
// a random moment; the parent reopens the data directory and asserts
//
//   1. prefix consistency — every append the child acknowledged (reported
//      over a pipe *after* Append returned) is recovered, and at most one
//      unacknowledged in-flight append may additionally survive;
//   2. bit-identical recovery — the recovered snapshot (graphs, labels,
//      and both action-aware indexes, per vertex id) equals an in-memory
//      oracle that applies the same deterministic batches to the same
//      starting snapshot;
//   3. the invariants hold across checkpoints — every other round folds
//      the WAL into a fresh segment before the next child runs.
//
// The kill delays come from a fixed-seed PRNG so the test is deterministic
// yet samples many interleavings (mid-mine, mid-fsync, between log and
// publish, mid-pipe-write).

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/session_manager.h"
#include "index/index_maintenance.h"
#include "storage/fs_util.h"
#include "storage/storage_engine.h"
#include "test_fixtures.h"
#include "test_storage_util.h"

namespace prague {
namespace {

using storage::StorageEngine;

// The child: opens the directory, attaches a durable SessionManager, and
// appends deterministic batches forever, reporting each acknowledged
// version over `ack_fd`. Runs until SIGKILLed; never exits by itself
// (any failure exits nonzero so the parent notices).
[[noreturn]] void RunAppenderChild(const std::string& dir, int ack_fd) {
  Result<std::unique_ptr<StorageEngine>> opened = StorageEngine::Open(dir);
  if (!opened.ok()) _exit(3);
  std::shared_ptr<StorageEngine> engine = std::move(*opened);
  SessionManager manager(engine->recovered().snapshot);
  manager.AttachStorage(engine);
  for (;;) {
    uint64_t next = manager.current()->version() + 1;
    Result<MaintenanceReport> report =
        manager.Append(testing::BatchForVersion(next),
                       testing::StorageMaintenanceOptions());
    if (!report.ok() || report->to_version != next) _exit(4);
    // The append is acknowledged: its WAL record is fsync-durable and the
    // successor snapshot is published. Tell the parent.
    if (::write(ack_fd, &next, sizeof(next)) != sizeof(next)) _exit(5);
  }
}

TEST(StorageTortureTest, SigkilledAppenderRecoversBitIdentically) {
  std::string dir =
      ::testing::TempDir() + "/prague_storage_torture_" +
      std::to_string(static_cast<unsigned long>(::getpid()));
  // Clear leftovers if a previous run reused this pid.
  Result<std::vector<std::string>> leftovers = storage::ListDir(dir);
  if (leftovers.ok()) {
    for (const std::string& f : *leftovers) {
      (void)storage::RemoveFile(storage::JoinPath(dir, f));
    }
  }
  SnapshotPtr initial = testing::MakeTinySnapshot();
  {
    Result<std::unique_ptr<StorageEngine>> boot =
        StorageEngine::Bootstrap(dir, *initial, testing::kStorageAlpha);
    ASSERT_TRUE(boot.ok()) << boot.status().ToString();
  }

  // Fixed seed: deterministic test, varied kill points. The delays span
  // "killed before the first append" through "killed several appends in".
  std::mt19937 rng(0xB10C5EEDu);
  std::uniform_int_distribution<int> delay_ms(0, 60);

  constexpr int kRounds = 6;
  uint64_t oracle_version = 0;
  SnapshotPtr oracle = initial;
  for (int round = 0; round < kRounds; ++round) {
    int pipe_fds[2];
    ASSERT_EQ(::pipe(pipe_fds), 0);
    pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      ::close(pipe_fds[0]);
      RunAppenderChild(dir, pipe_fds[1]);  // never returns
    }
    ::close(pipe_fds[1]);

    ::usleep(static_cast<useconds_t>(delay_ms(rng)) * 1000);
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    // SIGKILL is the only acceptable way out — a nonzero _exit means the
    // child hit an internal failure before we shot it.
    ASSERT_TRUE(WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL)
        << "child exited with status " << wstatus;

    // Drain the ack pipe: the last version the child acknowledged.
    uint64_t last_acked = oracle_version;
    uint64_t acked = 0;
    while (::read(pipe_fds[0], &acked, sizeof(acked)) == sizeof(acked)) {
      last_acked = acked;
    }
    ::close(pipe_fds[0]);

    // Reopen. Everything acknowledged must be there; at most one in-flight
    // append (logged but killed before the ack reached the pipe) may
    // additionally survive. Nothing may be missing or reordered.
    Result<std::unique_ptr<StorageEngine>> reopened = StorageEngine::Open(dir);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    SnapshotPtr recovered = (*reopened)->recovered().snapshot;
    uint64_t recovered_version = recovered->version();
    ASSERT_GE(recovered_version, last_acked)
        << "round " << round << ": an acknowledged append was lost";
    ASSERT_LE(recovered_version, last_acked + 1)
        << "round " << round << ": more than one unacknowledged append";

    // Advance the in-memory oracle through the identical batches and
    // demand bit-identical state.
    while (oracle_version < recovered_version) {
      ++oracle_version;
      Result<SnapshotAppendResult> next = AppendGraphs(
          *oracle, testing::BatchForVersion(oracle_version),
          testing::StorageMaintenanceOptions());
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      oracle = next->snapshot;
    }
    testing::ExpectSnapshotsIdentical(*recovered, *oracle);
    if (::testing::Test::HasFailure()) {
      FAIL() << "round " << round << " diverged (recovered version "
             << recovered_version << ", last acked " << last_acked << ")";
    }

    // Every other round: fold the WAL into a fresh segment so later
    // rounds also exercise recovery-over-a-checkpoint.
    if (round % 2 == 1) {
      ASSERT_TRUE(
          (*reopened)->Checkpoint(*recovered, testing::kStorageAlpha).ok());
    }
  }
  // The torture must have made real progress; a too-aggressive kill
  // schedule would vacuously pass on an empty history.
  EXPECT_GT(oracle_version, 0u);
}

}  // namespace
}  // namespace prague
