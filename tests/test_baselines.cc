// Traditional baselines (GR / SG / DVP analogues): filter completeness
// (no true answer is pruned), evaluation equivalence with the brute-force
// similarity search, and index-size behaviour.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "baselines/distvp.h"
#include "baselines/grafil.h"
#include "baselines/sigma.h"
#include "datasets/query_workload.h"
#include "test_fixtures.h"

namespace prague {
namespace {

struct BaselineBundle {
  FeatureIndex features;
  std::unique_ptr<GrafilLikeEngine> gr;
  std::unique_ptr<SigmaLikeEngine> sg;

  static const BaselineBundle& Get() {
    static BaselineBundle* bundle = [] {
      const auto& fixture = testing::AidsFixture::Get();
      auto* b = new BaselineBundle();
      FeatureIndexConfig config;
      config.max_feature_edges = 3;
      b->features = FeatureIndex::Build(fixture.mined.frequent, config);
      b->gr = std::make_unique<GrafilLikeEngine>(&b->features, &fixture.db);
      b->sg = std::make_unique<SigmaLikeEngine>(&b->features, &fixture.db);
      return b;
    }();
    return *bundle;
  }
};

TEST(FeatureIndexTest, OnlySmallFragmentsIndexed) {
  const BaselineBundle& bundle = BaselineBundle::Get();
  const auto& fixture = testing::AidsFixture::Get();
  size_t expected = 0;
  for (const MinedFragment& f : fixture.mined.frequent) {
    if (f.size() <= 3) {
      ++expected;
      EXPECT_TRUE(bundle.features.Lookup(f.code).has_value());
    } else {
      EXPECT_FALSE(bundle.features.Lookup(f.code).has_value());
    }
  }
  EXPECT_EQ(bundle.features.FeatureCount(), expected);
  EXPECT_GT(bundle.features.StorageBytes(), 0u);
}

TEST(QuerySubgraphCatalogTest, EnumeratesAllSubsetsUpToCap) {
  Graph q = testing::MakeGraph(
      {testing::kC, testing::kC, testing::kC, testing::kS},
      {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  QuerySubgraphCatalog catalog = QuerySubgraphCatalog::Build(q, 2);
  auto by_size = ConnectedEdgeSubsetsBySize(q);
  EXPECT_EQ(catalog.entries().size(), by_size[1].size() + by_size[2].size());
  for (const auto& e : catalog.entries()) {
    EXPECT_LE(e.size, 2);
    EXPECT_EQ(e.code,
              GetCanonicalCode(ExtractEdgeSubgraph(q, e.mask).graph));
  }
}

// Shared completeness check: no graph within distance sigma may be pruned.
void ExpectFilterComplete(const TraditionalSimilarityEngine& engine,
                          const Graph& q, int sigma) {
  const auto& fixture = testing::AidsFixture::Get();
  IdSet candidates = engine.Filter(q, sigma);
  auto truth = testing::BruteForceSimilaritySearch(fixture.db, q, sigma);
  for (const auto& [gid, distance] : truth) {
    EXPECT_TRUE(candidates.Contains(gid))
        << engine.name() << " pruned g" << gid << " at distance " << distance;
  }
}

class BaselineCompletenessTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselineCompletenessTest, GrafilNeverPrunesTrueAnswers) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 100 + GetParam());
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(6, 2, "q");
  ASSERT_TRUE(spec.ok());
  ExpectFilterComplete(*BaselineBundle::Get().gr, spec->graph, 2);
}

TEST_P(BaselineCompletenessTest, SigmaNeverPrunesTrueAnswers) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 200 + GetParam());
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(6, 2, "q");
  ASSERT_TRUE(spec.ok());
  ExpectFilterComplete(*BaselineBundle::Get().sg, spec->graph, 2);
}

TEST_P(BaselineCompletenessTest, DistVpNeverPrunesTrueAnswers) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 300 + GetParam());
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(6, 2, "q");
  ASSERT_TRUE(spec.ok());
  DistVpLikeEngine dvp(fixture.mined.frequent, &fixture.db, /*sigma=*/2);
  ExpectFilterComplete(dvp, spec->graph, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineCompletenessTest,
                         ::testing::Range(0, 5));

TEST(BaselineEvaluateTest, ResultsMatchBruteForce) {
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 55);
  Result<VisualQuerySpec> spec = workload.SimilarityQuery(6, 1, "e");
  ASSERT_TRUE(spec.ok());
  int sigma = 2;
  SimilaritySearchOutcome outcome =
      BaselineBundle::Get().gr->Evaluate(spec->graph, sigma, fixture.db);
  auto truth =
      testing::BruteForceSimilaritySearch(fixture.db, spec->graph, sigma);
  ASSERT_EQ(outcome.results.size(), truth.size());
  std::map<GraphId, int> truth_by_id(truth.begin(), truth.end());
  int last = 0;
  for (const SimilarMatch& m : outcome.results) {
    ASSERT_TRUE(truth_by_id.contains(m.gid));
    EXPECT_EQ(m.distance, truth_by_id[m.gid]);
    EXPECT_GE(m.distance, last);
    last = m.distance;
  }
}

TEST(BaselineEvaluateTest, SigmaFiltersAtLeastAsTightAsGrafil) {
  // SIGMA's exact set-cover test dominates the count bound: its candidate
  // set is a subset of Grafil's.
  const auto& fixture = testing::AidsFixture::Get();
  WorkloadGenerator workload(&fixture.db, 66);
  for (int i = 0; i < 3; ++i) {
    Result<VisualQuerySpec> spec = workload.SimilarityQuery(6, 2, "c");
    ASSERT_TRUE(spec.ok());
    IdSet gr = BaselineBundle::Get().gr->Filter(spec->graph, 2);
    IdSet sg = BaselineBundle::Get().sg->Filter(spec->graph, 2);
    EXPECT_TRUE(sg.IsSubsetOf(gr));
  }
}

TEST(DistVpTest, IndexGrowsWithSigma) {
  const auto& fixture = testing::AidsFixture::Get();
  size_t prev = 0;
  for (int sigma = 1; sigma <= 4; ++sigma) {
    DistVpLikeEngine dvp(fixture.mined.frequent, &fixture.db, sigma);
    EXPECT_GE(dvp.IndexBytes(), prev) << sigma;
    prev = dvp.IndexBytes();
  }
}

TEST(BaselineTest, SigmaGreaterThanQueryReturnsEverything) {
  const auto& fixture = testing::AidsFixture::Get();
  Graph q = testing::MakeGraph({testing::kC, testing::kC}, {{0, 1}});
  EXPECT_EQ(BaselineBundle::Get().gr->Filter(q, 2).size(), fixture.db.size());
}

}  // namespace
}  // namespace prague
