// Quickstart: the full PRAGUE lifecycle on a small inline database.
//
//  1. Build a graph database (six little molecules).
//  2. Mine frequent fragments + DIFs and build the action-aware indexes
//     (the offline step).
//  3. Formulate a visual query edge-at-a-time through PragueSession,
//     watching the Status column evolve exactly like Figure 3 of the
//     paper.
//  4. Press Run and print the results.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/explain.h"
#include "core/prague_session.h"
#include "graph/graph_database.h"
#include "index/action_aware_index.h"

using namespace prague;

namespace {

// C-labelled helpers for a readable main().
GraphDatabase BuildDatabase() {
  GraphDatabase db;
  Label C = db.mutable_labels()->Intern("C");
  Label S = db.mutable_labels()->Intern("S");
  Label O = db.mutable_labels()->Intern("O");
  Label N = db.mutable_labels()->Intern("N");
  auto add = [&db](const std::vector<Label>& labels,
                   const std::vector<std::pair<NodeId, NodeId>>& edges) {
    GraphBuilder b;
    for (Label l : labels) b.AddNode(l);
    for (auto [u, v] : edges) {
      if (!b.AddEdge(u, v).ok()) std::abort();
    }
    db.Add(std::move(b).Build());
  };
  add({C, C, C, S}, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});  // g0 triangle+S
  add({C, S, C, C}, {{0, 1}, {1, 2}, {2, 3}});          // g1 path
  add({C, S, O, C}, {{0, 1}, {0, 2}, {0, 3}});          // g2 star
  add({C, C, S, C}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});  // g3 square
  add({C, C, N}, {{0, 1}, {1, 2}});                     // g4 path with N
  add({C, S, C, O}, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});  // g5 triangle+O
  return db;
}

const char* StatusName(FragmentStatus status) {
  switch (status) {
    case FragmentStatus::kFrequent:
      return "frequent";
    case FragmentStatus::kInfrequent:
      return "infrequent";
    case FragmentStatus::kNoExactMatch:
      return "similar (no exact match)";
  }
  return "?";
}

void PrintStep(const char* action, const StepReport& report) {
  std::printf("  %-18s status=%-26s |Rq|=%zu", action,
              StatusName(report.status), report.exact_candidates);
  if (report.similarity_mode) {
    std::printf("  Rfree=%zu Rver=%zu", report.free_candidates,
                report.ver_candidates);
  }
  std::printf("  (spig %.2fms, candidates %.2fms)\n",
              report.spig_seconds * 1000, report.candidate_seconds * 1000);
}

}  // namespace

int main() {
  std::printf("== PRAGUE quickstart ==\n\n");

  // --- Offline: mine and index. -------------------------------------
  GraphDatabase db = BuildDatabase();
  std::printf("database: %zu graphs, labels:", db.size());
  for (const std::string& name : db.labels().SortedNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  MiningConfig mining;
  mining.min_support_ratio = 0.34;  // frequent = appears in >= 3 graphs
  A2fConfig a2f;
  a2f.beta = 2;
  Result<ActionAwareIndexes> indexes = BuildActionAwareIndexes(db, mining, a2f);
  if (!indexes.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 indexes.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "indexes: %zu frequent fragments (A2F), %zu DIFs (A2I), %zu bytes\n\n",
      indexes->a2f.VertexCount(), indexes->a2i.EntryCount(),
      indexes->StorageBytes());

  // --- Online: formulate a query edge-at-a-time. ---------------------
  // The user draws a C-C-C triangle with an S pendant: exactly g0.
  PragueSession session(DatabaseSnapshot::Borrow(&db, &indexes.value()));
  NodeId c1 = *session.AddNodeByName("C");
  NodeId c2 = *session.AddNodeByName("C");
  NodeId c3 = *session.AddNodeByName("C");
  NodeId s = *session.AddNodeByName("S");

  std::printf("formulating query (each step runs during GUI latency):\n");
  PrintStep("e1: C-C", *session.AddEdge(c1, c2));
  PrintStep("e2: C-C", *session.AddEdge(c2, c3));
  PrintStep("e3: C-C (close)", *session.AddEdge(c1, c3));
  PrintStep("e4: C-S", *session.AddEdge(c1, s));

  RunStats stats;
  Result<QueryResults> results = session.Run(&stats);
  if (!results.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  std::printf("\nRun pressed: SRT = %.3f ms (only the residual work!)\n",
              stats.srt_seconds * 1000);
  std::printf("exact matches:");
  for (GraphId gid : results->exact) std::printf(" g%u", gid);
  std::printf("\n\n");

  // --- Now a query with NO exact match: PRAGUE switches to similarity.
  PragueSession session2(DatabaseSnapshot::Borrow(&db, &indexes.value()));
  NodeId a = *session2.AddNodeByName("C");
  NodeId b = *session2.AddNodeByName("C");
  NodeId c = *session2.AddNodeByName("C");
  NodeId n = *session2.AddNodeByName("N");
  std::printf("second query: triangle with an N pendant (no exact match):\n");
  PrintStep("e1: C-C", *session2.AddEdge(a, b));
  PrintStep("e2: C-C", *session2.AddEdge(b, c));
  PrintStep("e3: C-C (close)", *session2.AddEdge(a, c));
  PrintStep("e4: C-N", *session2.AddEdge(a, n));

  if (auto suggestion = session2.SuggestDeletion()) {
    std::printf("  suggestion: delete e%d to regain %zu exact candidates\n",
                suggestion->edge, suggestion->candidates.size());
  }

  RunStats stats2;
  Result<QueryResults> results2 = session2.Run(&stats2);
  if (!results2.ok()) return 1;
  std::printf("\nsimilarity results (sigma=%d), ranked by missing edges:\n",
              session2.sigma());
  for (const SimilarMatch& m : results2->similar) {
    std::printf("  g%u  distance=%d  %s\n", m.gid, m.distance,
                m.verified ? "(verified)" : "(verification-free)");
  }
  std::printf("SRT = %.3f ms\n", stats2.srt_seconds * 1000);

  // Explain the best match the way the GUI would highlight it: which
  // query edges are covered by the MCCS, and which are missing.
  if (!results2->similar.empty()) {
    const Graph& q2 = session2.query().CurrentGraph();
    GraphId best = results2->similar.front().gid;
    Result<MatchExplanation> why = ExplainMatch(q2, db.graph(best));
    if (why.ok()) {
      std::printf("\nwhy g%u matches:\n%s", best,
                  ExplanationToString(*why, q2, db.labels()).c_str());
    }
  }
  return 0;
}
