// Textual pattern language.
//
// The paper's Section I contrasts visual formulation with textual query
// languages (SPARQL, GraphQL); for scripting and testing this library
// still wants one. The syntax is a minimal linear-chain notation:
//
//   (a:C)-(b:C), (b)-(c:C), (c)-(d:S), (a)-[2]-(e:N)
//
//   * `(name:Label)` introduces a node; later references may omit the
//     label: `(name)`.
//   * `-` draws an unlabeled edge; `-[n]-` draws an edge with numeric
//     label n.
//   * `,` separates chains; chains may revisit any known node.
//
// Edges compile in the order written — that order *is* the formulation
// sequence, so a textual query replays through PragueSession exactly as
// if a user had drawn it edge by edge. The written order must keep every
// prefix connected (the GUI's invariant); violations are errors.

#ifndef PRAGUE_QUERY_PATTERN_PARSER_H_
#define PRAGUE_QUERY_PATTERN_PARSER_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "util/result.h"

namespace prague {

/// \brief A parsed pattern: graph + formulation order + node names.
struct ParsedPattern {
  Graph graph;
  /// Graph edge ids in the order written (prefix-connected).
  std::vector<EdgeId> sequence;
  /// Source-level node names, indexed by NodeId.
  std::vector<std::string> node_names;
};

/// \brief Parses \p text, interning labels through \p labels.
///
/// Fails with InvalidArgument on syntax errors, duplicate/contradictory
/// labels, duplicate edges, self-loops, or a prefix-disconnected order.
Result<ParsedPattern> ParsePattern(const std::string& text,
                                   LabelDictionary* labels);

/// \brief Parses against an existing (read-only) dictionary: labels not
/// already interned are errors (Panel 2 only offers database labels).
Result<ParsedPattern> ParsePatternStrict(const std::string& text,
                                         const LabelDictionary& labels);

/// \brief Renders a graph back into pattern syntax (one chain per edge).
std::string PatternToString(const Graph& g, const LabelDictionary& labels);

}  // namespace prague

#endif  // PRAGUE_QUERY_PATTERN_PARSER_H_
