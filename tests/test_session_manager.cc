// SessionManager: pinning semantics (Open before/after Publish), stale and
// null publish rejection, stats bookkeeping, Append visibility — and the
// acceptance property of the snapshot layer: N sessions formulating
// concurrently while an appender publishes produce results bit-identical
// to the same formulations replayed sequentially on each session's pinned
// snapshot. Results are a pure function of the pinned version.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/session_manager.h"
#include "index/index_maintenance.h"
#include "test_fixtures.h"

namespace prague {
namespace {

using testing::kC;
using testing::kN;
using testing::kO;
using testing::kS;

SnapshotPtr FreshTinySnapshot(uint64_t version = 0) {
  const auto& fixture = testing::TinyFixture::Get();
  return DatabaseSnapshot::Make(fixture.db, fixture.indexes, version);
}

std::vector<Graph> OneGraphBatch() {
  return {testing::MakeGraph({kC, kS, kO}, {{0, 1}, {1, 2}})};
}

// Formulates a small C-S-C path query; returns the full Run output.
QueryResults FormulatePath(PragueSession& s) {
  NodeId a = s.AddNode(kC);
  NodeId b = s.AddNode(kS);
  NodeId c = s.AddNode(kC);
  if (!s.AddEdge(a, b).ok()) std::abort();
  if (!s.AddEdge(b, c).ok()) std::abort();
  Result<QueryResults> r = s.Run(nullptr);
  if (!r.ok()) std::abort();
  return std::move(r.value());
}

void ExpectSameResults(const QueryResults& a, const QueryResults& b) {
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_EQ(a.similarity, b.similarity);
  ASSERT_EQ(a.similar.size(), b.similar.size());
  for (size_t i = 0; i < a.similar.size(); ++i) {
    EXPECT_EQ(a.similar[i], b.similar[i]);
  }
}

TEST(SessionManagerTest, OpenPinsTheCurrentSnapshot) {
  SessionManager manager(FreshTinySnapshot());
  std::shared_ptr<ManagedSession> before = manager.Open();
  EXPECT_EQ(before->version(), 0u);
  EXPECT_EQ(before->snapshot().get(), manager.current().get());

  ASSERT_TRUE(manager.Append(OneGraphBatch(), 0.34).ok());
  std::shared_ptr<ManagedSession> after = manager.Open();
  EXPECT_EQ(after->version(), 1u);
  // The earlier session is still pinned to version 0 with the old |D|.
  EXPECT_EQ(before->version(), 0u);
  EXPECT_EQ(before->snapshot()->db().size(), 6u);
  EXPECT_EQ(after->snapshot()->db().size(), 7u);
}

TEST(SessionManagerTest, PublishRejectsStaleAndNull) {
  SessionManager manager(FreshTinySnapshot(4));
  EXPECT_FALSE(manager.Publish(nullptr).ok());
  // Same version: stale.
  EXPECT_FALSE(manager.Publish(FreshTinySnapshot(4)).ok());
  // Lower version: stale.
  EXPECT_FALSE(manager.Publish(FreshTinySnapshot(2)).ok());
  // Higher version: accepted.
  EXPECT_TRUE(manager.Publish(FreshTinySnapshot(5)).ok());
  EXPECT_EQ(manager.current()->version(), 5u);
}

TEST(SessionManagerTest, AppendReportsVersionsAndPublishes) {
  SessionManager manager(FreshTinySnapshot());
  Result<MaintenanceReport> r1 = manager.Append(OneGraphBatch(), 0.34);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->from_version, 0u);
  EXPECT_EQ(r1->to_version, 1u);
  Result<MaintenanceReport> r2 = manager.Append(OneGraphBatch(), 0.34);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->from_version, 1u);
  EXPECT_EQ(r2->to_version, 2u);
  EXPECT_EQ(manager.current()->version(), 2u);
  EXPECT_EQ(manager.current()->db().size(), 8u);
}

TEST(SessionManagerTest, FailedAppendLeavesCurrentUnchanged) {
  SessionManager manager(FreshTinySnapshot());
  // Empty batch is rejected by the maintenance layer.
  EXPECT_FALSE(manager.Append({}, 0.34).ok());
  EXPECT_EQ(manager.current()->version(), 0u);
  EXPECT_EQ(manager.Stats().snapshots_published, 0u);
}

TEST(SessionManagerTest, StatsTrackSessionsByPinnedVersion) {
  SessionManager manager(FreshTinySnapshot());
  std::shared_ptr<ManagedSession> s0a = manager.Open();
  std::shared_ptr<ManagedSession> s0b = manager.Open();
  ASSERT_TRUE(manager.Append(OneGraphBatch(), 0.34).ok());
  std::shared_ptr<ManagedSession> s1 = manager.Open();

  SessionManagerStats stats = manager.Stats();
  EXPECT_EQ(stats.current_version, 1u);
  EXPECT_EQ(stats.open_sessions, 3u);
  EXPECT_EQ(stats.sessions_opened, 3u);
  EXPECT_EQ(stats.snapshots_published, 1u);
  EXPECT_EQ(stats.sessions_by_version.at(0), 2u);
  EXPECT_EQ(stats.sessions_by_version.at(1), 1u);
  // Per-session detail (what the wire STATS command serves): ids in
  // ascending order, each with its pinned version.
  ASSERT_EQ(stats.open_session_infos.size(), 3u);
  EXPECT_EQ(stats.open_session_infos[0], (OpenSessionInfo{s0a->id(), 0}));
  EXPECT_EQ(stats.open_session_infos[1], (OpenSessionInfo{s0b->id(), 0}));
  EXPECT_EQ(stats.open_session_infos[2], (OpenSessionInfo{s1->id(), 1}));

  // Dropping sessions releases their pins; ids are never reused.
  s0a.reset();
  s0b.reset();
  stats = manager.Stats();
  EXPECT_EQ(stats.open_sessions, 1u);
  EXPECT_EQ(stats.sessions_by_version.count(0), 0u);
  EXPECT_EQ(stats.sessions_opened, 3u);
  EXPECT_EQ(s1->id(), 3u);
  ASSERT_EQ(stats.open_session_infos.size(), 1u);
  EXPECT_EQ(stats.open_session_infos[0], (OpenSessionInfo{s1->id(), 1}));
}

TEST(SessionManagerTest, RetiredSnapshotFreesWhenLastPinDrops) {
  SessionManager manager(FreshTinySnapshot());
  std::shared_ptr<ManagedSession> pinned = manager.Open();
  std::weak_ptr<const DatabaseSnapshot> retired = pinned->snapshot();
  ASSERT_TRUE(manager.Append(OneGraphBatch(), 0.34).ok());
  // The manager no longer holds version 0, but the session still does.
  EXPECT_FALSE(retired.expired());
  pinned.reset();
  EXPECT_TRUE(retired.expired());
}

TEST(SessionManagerTest, DistinctSessionsShareNoQueryState) {
  SessionManager manager(FreshTinySnapshot());
  std::shared_ptr<ManagedSession> s1 = manager.Open();
  std::shared_ptr<ManagedSession> s2 = manager.Open();
  s1->With([](PragueSession& s) {
    NodeId a = s.AddNode(kC);
    NodeId b = s.AddNode(kC);
    if (!s.AddEdge(a, b).ok()) std::abort();
  });
  s2->With([](PragueSession& s) { EXPECT_TRUE(s.query().Empty()); });
}

// Acceptance: N sessions formulate queries concurrently (one thread each)
// while an appender keeps publishing successors. Afterwards each session's
// results must be bit-identical to a sequential replay of the same
// formulation on a plain PragueSession over that session's own pinned
// snapshot.
TEST(SessionManagerTest, ConcurrentResultsMatchSequentialReplayOnPinnedVersion) {
  SessionManager manager(FreshTinySnapshot());

  constexpr int kSessions = 6;
  std::vector<std::shared_ptr<ManagedSession>> sessions;
  std::vector<QueryResults> concurrent(kSessions);

  std::vector<std::thread> threads;
  threads.reserve(kSessions + 1);
  // Appender: publishes a successor repeatedly while sessions run.
  threads.emplace_back([&] {
    for (int i = 0; i < 12; ++i) {
      EXPECT_TRUE(manager.Append(OneGraphBatch(), 0.34).ok());
    }
  });
  sessions.resize(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      sessions[i] = manager.Open();
      concurrent[i] = sessions[i]->With(
          [](PragueSession& s) { return FormulatePath(s); });
    });
  }
  for (std::thread& t : threads) t.join();

  // Sessions opened at different moments pinned different versions; at
  // least two distinct versions must exist for this test to mean much —
  // with 12 appends racing 6 opens this has always held in practice, but
  // it is not guaranteed, so it is only recorded, not asserted.
  // Sequential replay on each pinned snapshot must reproduce the
  // concurrent results bit-for-bit.
  for (int i = 0; i < kSessions; ++i) {
    PragueSession replay(sessions[i]->snapshot());
    QueryResults sequential = FormulatePath(replay);
    SCOPED_TRACE("session " + std::to_string(i) + " pinned version " +
                 std::to_string(sessions[i]->version()));
    ExpectSameResults(concurrent[i], sequential);
    // Matches within the pinned |D| only: no appended graph id can leak in.
    for (GraphId gid : concurrent[i].exact) {
      EXPECT_LT(gid, sessions[i]->snapshot()->db().size());
    }
  }

  SessionManagerStats stats = manager.Stats();
  EXPECT_EQ(stats.current_version, 12u);
  EXPECT_EQ(stats.snapshots_published, 12u);
  EXPECT_EQ(manager.current()->db().size(), 6u + 12u);
}

}  // namespace
}  // namespace prague
