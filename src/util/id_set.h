// IdSet: a sorted, duplicate-free set of 32-bit graph identifiers with the
// set algebra the candidate machinery needs (intersection, union,
// difference). Backed by a flat sorted vector: candidate sets are built
// once and scanned many times, so cache-friendly storage beats node-based
// sets by a wide margin.
//
// Intersections switch from the linear merge to a galloping (exponential-
// search) scan of the larger side when the size ratio crosses
// kGallopRatio, and the in-place operations build their result in a
// per-thread scratch buffer that is swapped into place, so steady-state
// candidate algebra performs no allocation.
//
// Copies are copy-on-write: the sorted vector lives behind a shared_ptr,
// so copying an IdSet shares the buffer and the first mutation through
// any copy detaches it. This is what makes versioned database snapshots
// cheap — a successor index copies every FSG id set structurally and only
// the sets the appended graphs actually touch get new storage. Mutating
// one IdSet object from two threads is a data race exactly as it was with
// the plain vector; concurrent reads of copies sharing a buffer are safe.
//
// A second, borrowed representation backs the persistent index segments
// (src/storage/segment.h): Borrow() wraps a sorted id array owned by
// someone else — in production an mmap'ed posting-list region — plus a
// keepalive handle pinning that owner. A borrowed set is read-only until
// the first mutation, which detaches it onto the heap exactly like a COW
// copy, so index maintenance works identically on loaded and built
// indexes while an unmodified restart never copies a posting list.

#ifndef PRAGUE_UTIL_ID_SET_H_
#define PRAGUE_UTIL_ID_SET_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace prague {

/// Identifier of a data graph within a GraphDatabase.
using GraphId = uint32_t;

/// \brief Sorted, duplicate-free set of GraphIds.
class IdSet {
 public:
  using const_iterator = const GraphId*;

  IdSet() = default;
  /// \brief Builds from arbitrary ids; sorts and de-duplicates.
  explicit IdSet(std::vector<GraphId> ids);
  IdSet(std::initializer_list<GraphId> ids);

  /// \brief The universe {0, 1, ..., n-1}.
  static IdSet Universe(GraphId n);

  /// \brief Wraps \p count sorted, duplicate-free ids owned by someone
  /// else (an mmap'ed segment, an arena) without copying. \p owner is held
  /// for the set's lifetime — and the lifetime of every copy — so the
  /// storage cannot be unmapped while a reader holds a view. The first
  /// mutation detaches onto the heap.
  static IdSet Borrow(const GraphId* data, size_t count,
                      std::shared_ptr<const void> owner);

  /// Size ratio (larger/smaller) above which intersections gallop through
  /// the larger side instead of merging linearly. Galloping is
  /// O(|small| · log(|large|/|small|)), which wins once the sides are
  /// lopsided — the common case when a tiny NIF Φ set filters a huge
  /// frequent-fragment FSG set.
  static constexpr size_t kGallopRatio = 16;

  /// \brief Intersection of all \p sets, visiting them smallest-first and
  /// stopping as soon as the running result empties. Null entries are
  /// skipped; no sets (or only null entries) yields the empty set.
  static IdSet IntersectMany(std::vector<const IdSet*> sets);

  /// \brief Number of ids in the set.
  size_t size() const { return data_ ? data_->size() : ext_size_; }
  /// \brief True iff the set is empty.
  bool empty() const { return size() == 0; }
  /// \brief Membership test (binary search).
  bool Contains(GraphId id) const;

  /// \brief Inserts one id, keeping order (O(n) worst case).
  void Insert(GraphId id);
  /// \brief Removes one id if present.
  void Erase(GraphId id);
  /// \brief Removes all ids.
  void Clear() {
    data_.reset();
    ext_ = nullptr;
    ext_size_ = 0;
    ext_owner_.reset();
  }

  /// \brief Set intersection.
  IdSet Intersect(const IdSet& other) const;
  /// \brief Set union.
  IdSet Union(const IdSet& other) const;
  /// \brief Set difference (this \ other).
  IdSet Subtract(const IdSet& other) const;

  /// \brief In-place intersection (this ∩= other).
  void IntersectWith(const IdSet& other);
  /// \brief In-place union (this ∪= other).
  void UnionWith(const IdSet& other);
  /// \brief In-place difference (this \= other).
  void SubtractWith(const IdSet& other);

  /// \brief True iff this ⊆ other.
  bool IsSubsetOf(const IdSet& other) const;

  /// \brief The subset of ids in the half-open range [\p begin, \p end).
  /// When every id already lies in the range the result shares this set's
  /// buffer (no copy), which is what keeps sharded index slices cheap: a
  /// typical FSG set is concentrated in few shards, so most slices either
  /// alias the original or come out empty. Slicing a borrowed set yields a
  /// borrowed sub-span sharing the same owner — also no copy.
  IdSet Slice(GraphId begin, GraphId end) const;

  /// \brief Pointer to the first id (null only when empty).
  const GraphId* data() const { return data_ ? data_->data() : ext_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size(); }
  /// \brief Element access (no bounds check). Requires i < size().
  GraphId operator[](size_t i) const { return data()[i]; }

  /// \brief Read-only view of the sorted ids. Copies of an unmodified
  /// IdSet view the *same* storage (structural sharing).
  std::span<const GraphId> span() const { return {data(), size()}; }

  /// \brief Materialized copy of the ids (tests and diagnostics).
  std::vector<GraphId> ToVector() const { return {begin(), end()}; }

  /// \brief True iff the ids live in externally owned storage (an mmap'ed
  /// segment) rather than on this set's heap.
  bool borrowed() const { return ext_ != nullptr; }

  /// \brief True iff this and \p other view one underlying buffer (both
  /// empty counts as shared). Exposed so snapshot and segment tests can
  /// prove copy-on-write / zero-copy sharing.
  bool SharesStorageWith(const IdSet& other) const {
    return data() == other.data() && size() == other.size();
  }

  /// \brief Approximate storage footprint in bytes (for index sizing).
  /// Borrowed sets report their mapped extent — the bytes are real, they
  /// just live in the page cache instead of the heap.
  size_t ByteSize() const {
    return data_ ? data_->capacity() * sizeof(GraphId)
                 : ext_size_ * sizeof(GraphId);
  }

  /// \brief Renders "{1, 2, 5}" for diagnostics.
  std::string ToString() const;

  bool operator==(const IdSet& other) const;
  bool operator!=(const IdSet& other) const { return !(*this == other); }

 private:
  // Wraps an already sorted, duplicate-free vector without re-sorting.
  static IdSet FromSorted(std::vector<GraphId> ids);
  // Sole-owner heap buffer for mutation: allocates when empty, clones when
  // shared, detaches (copies) when borrowed.
  std::vector<GraphId>& Mutable();
  // Replaces the contents with `scratch` (swapping capacity back into the
  // per-thread scratch buffer when this is the sole owner).
  void AdoptScratch(std::vector<GraphId>* scratch);

  // Exactly one representation is active: data_ (heap, COW) or ext_
  // (borrowed). Both null/empty = the empty set.
  std::shared_ptr<std::vector<GraphId>> data_;  // null = not heap-backed
  const GraphId* ext_ = nullptr;                // borrowed storage
  size_t ext_size_ = 0;
  std::shared_ptr<const void> ext_owner_;  // pins the borrowed storage
};

}  // namespace prague

#endif  // PRAGUE_UTIL_ID_SET_H_
