#include "baselines/sigma.h"

#include <algorithm>
#include <functional>
#include <span>
#include <map>
#include <vector>

#include "graph/subgraph_ops.h"
#include "util/deadline.h"

namespace prague {

namespace {

// Can some subset of ≤ sigma edges (bits) hit every mask in `missing`?
// Greedy accept first, exact enumeration before rejecting. A tripped
// `checker` answers true — treating the graph as coverable keeps the
// candidate set a sound superset (the caller reports truncation).
bool CoverableWithin(const std::vector<EdgeMask>& missing, int sigma,
                     size_t edge_count, DeadlineChecker* checker) {
  if (missing.empty()) return true;
  if (sigma <= 0) return false;
  // Greedy: repeatedly pick the edge hitting the most remaining masks.
  std::vector<EdgeMask> remaining = missing;
  for (int round = 0; round < sigma && !remaining.empty(); ++round) {
    int best_edge = -1;
    size_t best_hits = 0;
    for (EdgeId e = 0; e < edge_count; ++e) {
      size_t hits = 0;
      for (EdgeMask m : remaining) {
        if (m & EdgeBit(e)) ++hits;
      }
      if (hits > best_hits) {
        best_hits = hits;
        best_edge = static_cast<int>(e);
      }
    }
    if (best_edge < 0) return false;  // some mask touches no edge (bug-proof)
    EdgeMask bit = EdgeBit(static_cast<EdgeId>(best_edge));
    remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                   [bit](EdgeMask m) { return m & bit; }),
                    remaining.end());
  }
  if (remaining.empty()) return true;  // greedy cover of size ≤ σ exists

  // Greedy failed: exact check over σ-subsets of the involved edges.
  EdgeMask involved = 0;
  for (EdgeMask m : missing) involved |= m;
  std::vector<EdgeId> edges;
  for (EdgeId e = 0; e < edge_count; ++e) {
    if (involved & EdgeBit(e)) edges.push_back(e);
  }
  std::function<bool(size_t, EdgeMask)> rec = [&](size_t start,
                                                  EdgeMask del) -> bool {
    if (checker->Check()) return true;  // sound: accept on cut
    bool covered = true;
    for (EdgeMask m : missing) {
      if (!(m & del)) {
        covered = false;
        break;
      }
    }
    if (covered) return true;
    if (MaskSize(del) >= sigma) return false;
    for (size_t i = start; i < edges.size(); ++i) {
      if (rec(i + 1, del | EdgeBit(edges[i]))) return true;
    }
    return false;
  };
  return rec(0, 0);
}

}  // namespace

IdSet SigmaLikeEngine::Filter(const Graph& q, int sigma,
                              const Deadline& deadline,
                              bool* truncated) const {
  if (sigma >= static_cast<int>(q.EdgeCount())) return db_->AllIds();
  QuerySubgraphCatalog catalog =
      QuerySubgraphCatalog::Build(q, index_->max_feature_edges());
  DeadlineChecker checker(deadline);

  // Distinct features with their occurrence masks.
  std::map<uint32_t, std::vector<EdgeMask>> occurrences;
  for (const QuerySubgraphCatalog::Entry& entry : catalog.entries()) {
    std::optional<uint32_t> fid = index_->Lookup(entry.code);
    if (fid) occurrences[*fid].push_back(entry.mask);
  }
  if (occurrences.empty()) return db_->AllIds();

  // Per-graph feature containment bitmap plus count-based hit totals
  // (SIGMA subsumes the Grafil count bound, then sharpens it with the
  // exact set-cover test on fully-missing features).
  std::vector<std::vector<bool>> has(db_->size());
  std::vector<uint32_t> fids;
  int total_occurrences = 0;
  for (const auto& [fid, masks] : occurrences) {
    fids.push_back(fid);
    total_occurrences += static_cast<int>(masks.size());
  }
  for (GraphId gid = 0; gid < db_->size(); ++gid) {
    has[gid].assign(fids.size(), false);
  }
  std::vector<int> hits(db_->size(), 0);
  for (size_t i = 0; i < fids.size(); ++i) {
    std::span<const GraphId> gids = index_->FsgIds(fids[i]).span();
    const std::vector<uint32_t>& counts = index_->Counts(fids[i]);
    int cq = static_cast<int>(occurrences[fids[i]].size());
    for (size_t j = 0; j < gids.size(); ++j) {
      has[gids[j]][i] = true;
      hits[gids[j]] += std::min<int>(cq, static_cast<int>(counts[j]));
    }
  }

  // d_max as in Grafil: the most occurrences any σ-edge deletion destroys.
  int d_max = 0;
  {
    std::vector<EdgeMask> all_masks;
    for (const auto& [fid, masks] : occurrences) {
      all_masks.insert(all_masks.end(), masks.begin(), masks.end());
    }
    std::function<void(int, int, EdgeMask)> rec = [&](int start, int depth,
                                                      EdgeMask mask) {
      if (checker.Check()) return;
      if (depth == sigma) {
        int destroyed = 0;
        for (EdgeMask m : all_masks) {
          if (m & mask) ++destroyed;
        }
        d_max = std::max(d_max, destroyed);
        return;
      }
      for (int e = start; e < static_cast<int>(q.EdgeCount()); ++e) {
        rec(e + 1, depth + 1, mask | EdgeBit(static_cast<EdgeId>(e)));
      }
    };
    rec(0, 0, 0);
    if (checker.expired()) {
      // Incomplete d_max would be unsound (too small → over-pruning);
      // degrade to the trivially sound superset.
      if (truncated != nullptr) *truncated = true;
      return db_->AllIds();
    }
  }

  std::vector<GraphId> out;
  std::vector<EdgeMask> missing;
  for (GraphId gid = 0; gid < db_->size(); ++gid) {
    if (total_occurrences - hits[gid] > d_max) continue;  // count bound
    missing.clear();
    for (size_t i = 0; i < fids.size(); ++i) {
      if (has[gid][i]) continue;
      const std::vector<EdgeMask>& masks = occurrences[fids[i]];
      missing.insert(missing.end(), masks.begin(), masks.end());
    }
    if (CoverableWithin(missing, sigma, q.EdgeCount(), &checker)) {
      out.push_back(gid);
    }
  }
  // A cut inside CoverableWithin accepted the affected graphs, so the set
  // is still a sound superset — just looser than the unbounded one.
  if (checker.expired() && truncated != nullptr) *truncated = true;
  return IdSet(std::move(out));
}

}  // namespace prague
