// Bounded-SRT execution: Run() deadlines and cross-thread cancellation
// degrade gracefully — prefix-consistent partial results with
// QueryResults::truncated and a RunStats phase breakdown — while
// formulation steps abort cleanly (DeadlineExceeded + rollback). The
// no-deadline paths must stay bit-identical to unbounded sessions.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/prague_session.h"
#include "core/session_manager.h"
#include "datasets/query_workload.h"
#include "test_fixtures.h"
#include "util/deadline.h"
#include "util/stopwatch.h"

namespace prague {
namespace {

using testing::kC;
using testing::kN;
using testing::kS;

// Feeds a query spec into a session (same idiom as test_session.cc).
template <typename Session>
void Feed(Session* session, const Graph& q,
          const std::vector<EdgeId>& sequence) {
  std::map<NodeId, NodeId> node_map;
  auto user_node = [&](NodeId n) {
    auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    NodeId u = session->AddNode(q.NodeLabel(n));
    node_map.emplace(n, u);
    return u;
  };
  for (EdgeId e : sequence) {
    const Edge& edge = q.GetEdge(e);
    if (!session->AddEdge(user_node(edge.u), user_node(edge.v), edge.label)
             .ok()) {
      std::abort();
    }
  }
}

// Triangle + pendant S: exists in the tiny database (g0) but is not a
// frequent fragment, so Run() must actually verify Rq.
Graph VerifiedQuery() {
  return testing::MakeGraph({kC, kC, kC, kS},
                           {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
}

// Triangle + pendant N: no exact match anywhere → similarity mode.
Graph SimilarityQuery() {
  return testing::MakeGraph({kC, kC, kC, kN},
                           {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
}

// A similarity query over the 300-graph AIDS fixture, heavy enough that
// an unbounded Run() takes visible wall time (MCCS over many candidates).
const VisualQuerySpec& HeavyAidsQuery() {
  static const VisualQuerySpec* spec = [] {
    const auto& fixture = testing::AidsFixture::Get();
    WorkloadGenerator workload(&fixture.db, 47);
    for (int mutations = 3; mutations >= 1; --mutations) {
      Result<VisualQuerySpec> s =
          workload.SimilarityQuery(8, mutations, "heavy");
      if (s.ok()) return new VisualQuerySpec(std::move(*s));
    }
    std::abort();
  }();
  return *spec;
}

TEST(CancellationTest, HugeBudgetSaturatesInsteadOfOverflowing) {
  // `now + milliseconds(INT64_MAX)` wraps steady-clock arithmetic
  // negative; AfterMillis saturates to the far future instead, so a huge
  // wire-supplied budget means "effectively unbounded", never "already
  // expired".
  Deadline huge = Deadline::AfterMillis(std::numeric_limits<int64_t>::max());
  EXPECT_FALSE(huge.IsUnbounded());  // bounded, just at the far future
  EXPECT_FALSE(huge.Expired());
  // The near edge is unchanged: a zero budget is already expired.
  EXPECT_TRUE(Deadline::AfterMillis(0).Expired());
}

TEST(CancellationTest, ExpiredDeadlineTruncatesExactVerification) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Graph q = VerifiedQuery();
  Feed(&session, q, DefaultFormulationSequence(q));
  ASSERT_FALSE(session.similarity_mode());
  ASSERT_FALSE(session.exact_candidates().empty());

  RunStats stats;
  Result<QueryResults> results = session.Run(Deadline::AfterMillis(0), &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->truncated);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.deadline_phase, RunPhase::kExactVerification);
  // Nothing was decided before the cut, and a truncated exact run must not
  // silently fall back to similarity search.
  EXPECT_TRUE(results->exact.empty());
  EXPECT_FALSE(results->similarity);
  EXPECT_GE(stats.srt_seconds, 0.0);
}

TEST(CancellationTest, ExpiredDeadlineTruncatesSimilarityGeneration) {
  const auto& fixture = testing::TinyFixture::Get();
  PragueSession session(fixture.snapshot);
  Graph q = SimilarityQuery();
  Feed(&session, q, DefaultFormulationSequence(q));
  ASSERT_TRUE(session.similarity_mode());

  RunStats stats;
  Result<QueryResults> results = session.Run(Deadline::AfterMillis(0), &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->truncated);
  EXPECT_EQ(stats.deadline_phase, RunPhase::kSimilarGeneration);
  EXPECT_TRUE(results->similarity);
  EXPECT_TRUE(results->similar.empty());
}

TEST(CancellationTest, UnboundedPathsAreIdentical) {
  const auto& fixture = testing::TinyFixture::Get();
  Graph q = VerifiedQuery();

  PragueSession plain(fixture.snapshot);
  Feed(&plain, q, DefaultFormulationSequence(q));
  RunStats plain_stats;
  Result<QueryResults> baseline = plain.Run(&plain_stats);
  ASSERT_TRUE(baseline.ok());
  EXPECT_FALSE(baseline->truncated);
  EXPECT_EQ(plain_stats.deadline_phase, RunPhase::kNone);
  EXPECT_FALSE(baseline->exact.empty());

  // Explicit unbounded deadline: bit-identical.
  Result<QueryResults> unbounded = plain.Run(Deadline(), nullptr);
  ASSERT_TRUE(unbounded.ok());
  EXPECT_EQ(unbounded->exact, baseline->exact);
  EXPECT_FALSE(unbounded->truncated);

  // Generous config budget: same results, no truncation.
  PragueConfig config;
  config.run_deadline_ms = 60'000;
  PragueSession budgeted(fixture.snapshot, config);
  Feed(&budgeted, q, DefaultFormulationSequence(q));
  Result<QueryResults> within = budgeted.Run(nullptr);
  ASSERT_TRUE(within.ok());
  EXPECT_EQ(within->exact, baseline->exact);
  EXPECT_FALSE(within->truncated);
}

TEST(CancellationTest, TokenStopsRunAndResetRestoresIt) {
  const auto& fixture = testing::TinyFixture::Get();
  CancellationToken token;
  PragueConfig config;
  config.cancellation = &token;
  PragueSession session(fixture.snapshot, config);
  Graph q = VerifiedQuery();
  Feed(&session, q, DefaultFormulationSequence(q));

  token.RequestStop();
  Result<QueryResults> stopped = session.Run(nullptr);
  ASSERT_TRUE(stopped.ok());
  EXPECT_TRUE(stopped->truncated);
  EXPECT_TRUE(stopped->exact.empty());

  token.Reset();
  Result<QueryResults> resumed = session.Run(nullptr);
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(resumed->truncated);

  PragueSession reference(fixture.snapshot);
  Feed(&reference, q, DefaultFormulationSequence(q));
  Result<QueryResults> expected = reference.Run(nullptr);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(resumed->exact, expected->exact);
}

TEST(CancellationTest, StoppedTokenAbortsFormulationStepAndRollsBack) {
  const auto& fixture = testing::TinyFixture::Get();
  CancellationToken token;
  PragueConfig config;
  config.cancellation = &token;
  PragueSession session(fixture.snapshot, config);
  NodeId a = session.AddNode(kC);
  NodeId b = session.AddNode(kC);
  NodeId c = session.AddNode(kC);
  ASSERT_TRUE(session.AddEdge(a, b).ok());
  size_t edges_before = session.query().EdgeCount();
  size_t log_before = session.action_log().size();

  token.RequestStop();
  Result<StepReport> aborted = session.AddEdge(b, c);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), Status::Code::kDeadlineExceeded);
  // The failed action left no trace: same query, same log.
  EXPECT_EQ(session.query().EdgeCount(), edges_before);
  EXPECT_EQ(session.action_log().size(), log_before);

  // Re-arm and retry: the step succeeds and the session is equivalent to
  // one that never saw the abort.
  token.Reset();
  ASSERT_TRUE(session.AddEdge(b, c).ok());
  Result<QueryResults> results = session.Run(nullptr);
  ASSERT_TRUE(results.ok());

  PragueSession reference(fixture.snapshot);
  NodeId x = reference.AddNode(kC);
  NodeId y = reference.AddNode(kC);
  NodeId z = reference.AddNode(kC);
  ASSERT_TRUE(reference.AddEdge(x, y).ok());
  ASSERT_TRUE(reference.AddEdge(y, z).ok());
  Result<QueryResults> expected = reference.Run(nullptr);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(results->exact, expected->exact);
  EXPECT_EQ(results->similarity, expected->similarity);
}

// Bounded runs return a prefix of the unbounded result list (results are
// decided in a fixed order and generation stops at the first undecided
// candidate), and a finished bounded run equals the unbounded one.
TEST(CancellationTest, BoundedResultsArePrefixOfUnbounded) {
  const auto& fixture = testing::AidsFixture::Get();
  const VisualQuerySpec& spec = HeavyAidsQuery();

  PragueSession unbounded(fixture.snapshot);
  Feed(&unbounded, spec.graph, spec.sequence);
  Result<QueryResults> full = unbounded.Run(nullptr);
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full->truncated);

  for (int64_t budget_ms : {0, 1, 2, 5, 20, 200, 5'000}) {
    PragueSession bounded(fixture.snapshot);
    Feed(&bounded, spec.graph, spec.sequence);
    RunStats stats;
    Result<QueryResults> part =
        bounded.Run(budget_ms == 0 ? Deadline::AfterMillis(0)
                                   : Deadline::AfterMillis(budget_ms),
                    &stats);
    ASSERT_TRUE(part.ok());
    SCOPED_TRACE("budget " + std::to_string(budget_ms) + "ms");
    if (part->truncated) {
      EXPECT_NE(stats.deadline_phase, RunPhase::kNone);
      if (part->similarity == full->similarity) {
        ASSERT_LE(part->similar.size(), full->similar.size());
        for (size_t i = 0; i < part->similar.size(); ++i) {
          EXPECT_EQ(part->similar[i], full->similar[i]);
        }
        ASSERT_LE(part->exact.size(), full->exact.size());
        for (size_t i = 0; i < part->exact.size(); ++i) {
          EXPECT_EQ(part->exact[i], full->exact[i]);
        }
      } else {
        // The cut landed during exact verification, before the run could
        // learn that the exact answer set is empty and fall back to
        // similarity search (Algorithm 1 lines 19-21). The run then has
        // decided nothing — it must not guess.
        EXPECT_EQ(stats.deadline_phase, RunPhase::kExactVerification);
        EXPECT_FALSE(part->similarity);
        EXPECT_TRUE(part->exact.empty());
        EXPECT_TRUE(part->similar.empty());
      }
    } else {
      EXPECT_EQ(part->similarity, full->similarity);
      EXPECT_EQ(part->exact, full->exact);
      EXPECT_EQ(part->similar, full->similar);
      EXPECT_EQ(stats.deadline_phase, RunPhase::kNone);
    }
  }
}

// A tight budget on a long query must return promptly — the cooperative
// polls are per candidate / every-1024 expansions, so the overshoot is
// bounded by one poll interval, not by the query's unbounded cost.
TEST(CancellationTest, TightBudgetReturnsPromptly) {
  const auto& fixture = testing::AidsFixture::Get();
  const VisualQuerySpec& spec = HeavyAidsQuery();

  PragueSession unbounded(fixture.snapshot);
  Feed(&unbounded, spec.graph, spec.sequence);
  Stopwatch full_timer;
  ASSERT_TRUE(unbounded.Run(nullptr).ok());
  double full_seconds = full_timer.ElapsedSeconds();

  PragueSession bounded(fixture.snapshot);
  Feed(&bounded, spec.graph, spec.sequence);
  RunStats stats;
  Stopwatch timer;
  Result<QueryResults> results =
      bounded.Run(Deadline::AfterMillis(10), &stats);
  double bounded_seconds = timer.ElapsedSeconds();
  ASSERT_TRUE(results.ok());
  // Generous absolute cap (sanitizer builds are slow); the point is that
  // the bounded run does not scale with the query's unbounded cost.
  EXPECT_LT(bounded_seconds, 2.0);
  // When the query genuinely outruns the budget, the cut must be visible.
  if (full_seconds > 0.1) {
    EXPECT_TRUE(results->truncated);
    EXPECT_NE(stats.deadline_phase, RunPhase::kNone);
  }
}

TEST(CancellationTest, ManagedSessionCancelIsObservableAndResettable) {
  SessionManager manager(DatabaseSnapshot::Make(
      testing::TinyFixture::Get().db, testing::TinyFixture::Get().indexes));
  std::shared_ptr<ManagedSession> session = manager.Open();
  Graph q = VerifiedQuery();
  session->With(
      [&](PragueSession& s) { Feed(&s, q, DefaultFormulationSequence(q)); });

  EXPECT_FALSE(session->cancelled());
  session->Cancel();
  EXPECT_TRUE(session->cancelled());
  bool truncated = session->With([](PragueSession& s) {
    Result<QueryResults> r = s.Run(nullptr);
    if (!r.ok()) std::abort();
    return r->truncated;
  });
  EXPECT_TRUE(truncated);

  session->ResetCancellation();
  EXPECT_FALSE(session->cancelled());
  truncated = session->With([](PragueSession& s) {
    Result<QueryResults> r = s.Run(nullptr);
    if (!r.ok()) std::abort();
    return r->truncated;
  });
  EXPECT_FALSE(truncated);
}

// Cross-thread cancel racing a Run() in flight: the victim must return
// (promptly, with whatever prefix it had) and nothing may race — this is
// the test the TSan CI job leans on. Whether the cut lands before the run
// finishes is timing-dependent, so only termination is asserted.
TEST(CancellationTest, CancelFromAnotherThreadWhileRunning) {
  const auto& fixture = testing::AidsFixture::Get();
  SessionManager manager(
      DatabaseSnapshot::Make(fixture.db, fixture.indexes));
  const VisualQuerySpec& spec = HeavyAidsQuery();

  for (int round = 0; round < 3; ++round) {
    std::shared_ptr<ManagedSession> session = manager.Open();
    session->With([&](PragueSession& s) {
      Feed(&s, spec.graph, spec.sequence);
    });
    std::thread runner([&] {
      session->With([](PragueSession& s) {
        if (!s.Run(nullptr).ok()) std::abort();
      });
    });
    session->Cancel();
    runner.join();
    EXPECT_TRUE(session->cancelled());
    session->ResetCancellation();
  }
}

TEST(CancellationTest, ManagerDefaultAndPerSessionBudgets) {
  const auto& fixture = testing::AidsFixture::Get();
  SessionManager manager(
      DatabaseSnapshot::Make(fixture.db, fixture.indexes));
  EXPECT_EQ(manager.DefaultRunDeadlineMillis(), 0);
  manager.SetDefaultRunDeadlineMillis(77);
  EXPECT_EQ(manager.DefaultRunDeadlineMillis(), 77);

  const VisualQuerySpec& spec = HeavyAidsQuery();
  auto run = [&](ManagedSession& session, RunStats* stats) {
    return session.With([&](PragueSession& s) {
      Feed(&s, spec.graph, spec.sequence);
      Result<QueryResults> r = s.Run(stats);
      if (!r.ok()) std::abort();
      return *r;
    });
  };

  // Reference cost on this machine (plain unbounded session).
  PragueSession reference(manager.current());
  Feed(&reference, spec.graph, spec.sequence);
  Stopwatch timer;
  Result<QueryResults> full = reference.Run(nullptr);
  ASSERT_TRUE(full.ok());
  double full_seconds = timer.ElapsedSeconds();

  // Per-session override: 0 = unbounded regardless of the default.
  std::shared_ptr<ManagedSession> open_ended = manager.OpenWithDeadline(0);
  QueryResults unbounded = run(*open_ended, nullptr);
  EXPECT_FALSE(unbounded.truncated);
  EXPECT_EQ(unbounded.similar, full->similar);

  // A 1ms per-session budget must visibly truncate any query whose
  // unbounded run takes real time (guarded so fast machines stay green).
  manager.SetDefaultRunDeadlineMillis(1);
  std::shared_ptr<ManagedSession> tight = manager.Open();
  RunStats stats;
  QueryResults bounded = run(*tight, &stats);
  if (full_seconds > 0.1) {
    EXPECT_TRUE(bounded.truncated);
    EXPECT_TRUE(stats.truncated);
  }
  // Whatever came back is a prefix of the full list.
  ASSERT_LE(bounded.similar.size(), full->similar.size());
  for (size_t i = 0; i < bounded.similar.size(); ++i) {
    EXPECT_EQ(bounded.similar[i], full->similar[i]);
  }
}

}  // namespace
}  // namespace prague
