// Mmap-able segment store: one immutable file holding a full checkpointed
// snapshot — the data graphs, the label dictionary, and both action-aware
// indexes — in a layout whose posting lists IdSet can view zero-copy.
//
// Layout (all integers little-endian; docs/STORAGE.md has the grammar):
//
//   [0..8)    magic "PRSEGV1\n"
//   [8..16)   u64 meta_size            — byte length of the metadata block
//   [16..24)  u64 postings_offset      — 4-aligned file offset of postings
//   [24..32)  u64 postings_count      — number of u32 graph ids that follow
//   [32..36)  u32 meta_crc             — crc32c of the metadata block
//   [36..40)  u32 postings_crc         — crc32c of the posting region
//   [40..40+meta_size)      metadata block (coding.h encodings)
//   [postings_offset..)     u32 posting region: every fsgId/delId list,
//                           concatenated; metadata refers to (start, count)
//                           element ranges within it
//
// Opening a segment decodes the metadata (graphs, DAG structure, codes)
// onto the heap but leaves every posting list where it lies: the loader
// hands out IdSet::Borrow views over the mapping, pinned alive by the
// shared MappedSegment, so restart cost is O(metadata), independent of
// total posting volume — the paged region faults in on demand as queries
// touch it.

#ifndef PRAGUE_STORAGE_SEGMENT_H_
#define PRAGUE_STORAGE_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "index/database_snapshot.h"
#include "util/result.h"
#include "util/status.h"

namespace prague::storage {

/// Magic bytes opening every segment file.
inline constexpr char kSegmentMagic[8] = {'P', 'R', 'S', 'E',
                                          'G', 'V', '1', '\n'};
/// Fixed header size preceding the metadata block.
inline constexpr size_t kSegmentHeaderBytes = 40;

/// \brief RAII holder of one read-only file mapping. Borrowed IdSets keep
/// it alive through their owner handle, so the mapping persists as long as
/// any snapshot (or copied id-set) still references it.
class MappedSegment {
 public:
  /// \brief Maps \p path read-only.
  static Result<std::shared_ptr<MappedSegment>> Map(const std::string& path);

  ~MappedSegment();
  MappedSegment(const MappedSegment&) = delete;
  MappedSegment& operator=(const MappedSegment&) = delete;

  const uint8_t* data() const { return static_cast<const uint8_t*>(base_); }
  size_t size() const { return size_; }

 private:
  MappedSegment(void* base, size_t size) : base_(base), size_(size) {}

  void* base_;
  size_t size_;
};

/// \brief Options for OpenSegment.
struct SegmentReadOptions {
  /// Verify the posting-region checksum on open. This scans the whole
  /// region (defeating O(1) restart), so it is off by default; the header
  /// and metadata checksums are always verified. Turn on for fsck-style
  /// integrity checks and corruption tests.
  bool verify_postings_crc = false;
};

/// \brief An opened segment: the reconstructed snapshot plus the mapping
/// its id-sets borrow from.
struct OpenedSegment {
  SnapshotPtr snapshot;
  std::shared_ptr<MappedSegment> mapping;
  /// Total file size in bytes.
  uint64_t file_bytes = 0;
  /// Bytes of the zero-copy posting region.
  uint64_t posting_bytes = 0;
};

/// \brief Serializes \p snapshot into \p dir/\p file_name durably
/// (write-temp + fsync + rename + fsync-directory).
Status WriteSegment(const DatabaseSnapshot& snapshot, const std::string& dir,
                    const std::string& file_name);

/// \brief Maps and decodes a segment file. The returned snapshot's fsgId
/// and delId lists are zero-copy views over the mapping.
Result<OpenedSegment> OpenSegment(const std::string& path,
                                  const SegmentReadOptions& options = {});

}  // namespace prague::storage

#endif  // PRAGUE_STORAGE_SEGMENT_H_
