// VF2-style subgraph isomorphism (Cordella, Foggia et al. [3] — the
// verification algorithm the paper adopts and extends for MCCS checks).
//
// "Subgraph isomorphism" here follows the graph-database literature: an
// injective mapping from pattern nodes to target nodes that preserves node
// labels, and maps every pattern edge onto a target edge with the same
// edge label (non-induced / monomorphism semantics). This is what
// "q ⊆ g" means throughout the paper.

#ifndef PRAGUE_GRAPH_VF2_H_
#define PRAGUE_GRAPH_VF2_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "util/deadline.h"

namespace prague {

/// \brief One complete pattern→target node mapping.
using NodeMapping = std::vector<NodeId>;  // index = pattern node

/// \brief Backtracking subgraph-isomorphism matcher.
///
/// The matcher is constructed per (pattern, target) pair; Exists() /
/// Count() / ForEach() drive the search. The pattern must be connected.
class Vf2Matcher {
 public:
  /// \p pattern and \p target must outlive the matcher.
  Vf2Matcher(const Graph& pattern, const Graph& target);

  /// \brief Bounds every subsequent search. An expired deadline makes
  /// Exists()/Count()/ForEach() stop early with deadline_hit() set; a
  /// deadline-cut Exists() returns false ("no match proven").
  void SetDeadline(const Deadline& deadline);

  /// \brief True iff at least one subgraph isomorphism exists.
  bool Exists();

  /// \brief Number of distinct mappings, stopping early at \p limit.
  size_t Count(size_t limit = SIZE_MAX);

  /// \brief Invokes \p fn for each mapping; stop early by returning false.
  /// \return true iff the search space was exhausted — false means the
  /// enumeration was cut short, by the callback or by the deadline
  /// (deadline_hit() distinguishes the two).
  bool ForEach(const std::function<bool(const NodeMapping&)>& fn);

  /// \brief True iff the most recent search was cut by the deadline.
  bool deadline_hit() const { return deadline_hit_; }

  /// \brief Candidate expansion steps tried across all searches on this
  /// matcher (the unit DeadlineChecker strides over).
  size_t nodes_expanded() const { return nodes_expanded_; }

 private:
  bool Feasible(NodeId pattern_node, NodeId target_node) const;
  // Returns true iff the subtree below `depth` was exhausted; false
  // propagates an early stop (callback returned false or deadline expired)
  // up through both recursive call sites.
  bool Recurse(size_t depth, const std::function<bool(const NodeMapping&)>& fn);

  const Graph& pattern_;
  const Graph& target_;
  // Pattern nodes in a connectivity-preserving search order: order_[i]
  // (i > 0) has at least one neighbor among order_[0..i-1].
  std::vector<NodeId> order_;
  // anchor_[i]: index < i in order_ of a mapped neighbor of order_[i]
  // whose image's adjacency seeds the candidate list (kInvalidNode for the
  // root).
  std::vector<NodeId> anchor_;
  std::vector<NodeId> map_;          // pattern node -> target node
  std::vector<bool> target_used_;    // target node already mapped
  Deadline deadline_;
  DeadlineChecker checker_;
  bool deadline_hit_ = false;
  size_t nodes_expanded_ = 0;
};

/// \brief Convenience: does \p pattern match somewhere inside \p target?
bool IsSubgraphIsomorphic(const Graph& pattern, const Graph& target);

/// \brief Deadline-bounded containment check. Returns false when the search
/// is cut before finding a match; \p deadline_hit (optional) reports the
/// cut and \p nodes_expanded (optional) accumulates expansion steps.
bool IsSubgraphIsomorphic(const Graph& pattern, const Graph& target,
                          const Deadline& deadline,
                          bool* deadline_hit = nullptr,
                          size_t* nodes_expanded = nullptr);

/// \brief Convenience: are the two graphs isomorphic (same sizes + mutual
/// containment check via size equality and one VF2 run)?
bool AreIsomorphic(const Graph& a, const Graph& b);

}  // namespace prague

#endif  // PRAGUE_GRAPH_VF2_H_
