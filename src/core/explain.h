// Match explanations for result display.
//
// Section IV-A motivates MCCS over edit distance because "missing edges
// ... can be easily depicted in the results by highlighting the MCCS in
// the matched data graphs". This module computes exactly what a GUI needs
// for that highlight: which query edges the match covers (and which are
// missing), and where the covered part embeds in the data graph.

#ifndef PRAGUE_CORE_EXPLAIN_H_
#define PRAGUE_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "graph/subgraph_ops.h"
#include "util/result.h"

namespace prague {

/// \brief Why a data graph matched (exactly or approximately).
struct MatchExplanation {
  /// dist(q, g) — 0 for exact matches.
  int distance = 0;
  /// Query edges covered by the MCCS (bitmask over query edge ids).
  EdgeMask covered_query_edges = 0;
  /// Query edges the data graph misses (the GUI draws these dashed).
  std::vector<EdgeId> missing_query_edges;
  /// For each *covered* query node (node incident to a covered edge), its
  /// image in the data graph; kInvalidNode for uncovered nodes.
  std::vector<NodeId> node_image;
  /// Data-graph edges realizing the covered query edges, parallel to the
  /// covered edges in ascending query-edge order.
  std::vector<EdgeId> data_edges;
};

/// \brief Explains how data graph \p g matches query \p q.
///
/// Computes the MCCS witness and one concrete embedding. Fails with
/// NotFound when not even a single query edge matches (distance = |q|).
Result<MatchExplanation> ExplainMatch(const Graph& q, const Graph& g);

/// \brief Renders an explanation as human-readable lines, e.g.
/// "covered: (C)a-(C)b -> g nodes 3-7; missing: edge 5 (C-S)".
std::string ExplanationToString(const MatchExplanation& explanation,
                                const Graph& q,
                                const LabelDictionary& labels);

}  // namespace prague

#endif  // PRAGUE_CORE_EXPLAIN_H_
