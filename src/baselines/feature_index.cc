#include "baselines/feature_index.h"

#include "graph/subgraph_ops.h"

namespace prague {

FeatureIndex FeatureIndex::Build(const std::vector<MinedFragment>& frequent,
                                 const FeatureIndexConfig& config) {
  FeatureIndex index;
  index.max_feature_edges_ = config.max_feature_edges;
  for (const MinedFragment& frag : frequent) {
    if (frag.size() > config.max_feature_edges) continue;
    uint32_t id = static_cast<uint32_t>(index.fsg_ids_.size());
    index.by_code_.emplace(frag.code, id);
    index.fsg_ids_.push_back(frag.fsg_ids);
    // Fragments mined without counts (e.g. hand-built in tests) default
    // to count 1 per containing graph.
    if (frag.embedding_counts.size() == frag.fsg_ids.size()) {
      index.counts_.push_back(frag.embedding_counts);
    } else {
      index.counts_.emplace_back(frag.fsg_ids.size(), 1);
    }
    index.code_bytes_ += frag.code.size();
  }
  return index;
}

std::optional<uint32_t> FeatureIndex::Lookup(const CanonicalCode& code) const {
  auto it = by_code_.find(code);
  if (it == by_code_.end()) return std::nullopt;
  return it->second;
}

size_t FeatureIndex::StorageBytes() const {
  size_t bytes = code_bytes_;
  for (const IdSet& ids : fsg_ids_) bytes += ids.size() * sizeof(GraphId);
  for (const auto& counts : counts_) {
    bytes += counts.size() * sizeof(uint32_t);
  }
  return bytes;
}

QuerySubgraphCatalog QuerySubgraphCatalog::Build(const Graph& q,
                                                 size_t max_size) {
  QuerySubgraphCatalog catalog;
  std::vector<std::vector<EdgeMask>> by_size = ConnectedEdgeSubsetsBySize(q);
  size_t cap = std::min(max_size, q.EdgeCount());
  for (size_t k = 1; k <= cap; ++k) {
    for (EdgeMask mask : by_size[k]) {
      Entry entry;
      entry.mask = mask;
      entry.size = static_cast<int>(k);
      entry.code =
          GetCanonicalCode(ExtractEdgeSubgraph(q, mask).graph);
      catalog.entries_.push_back(std::move(entry));
    }
  }
  return catalog;
}

}  // namespace prague
