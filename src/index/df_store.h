// Disk-resident DF-index store.
//
// Section III makes the A2F two-tier: small frequent fragments (size ≤ β)
// stay memory-resident (MF-index) while larger ones live on disk in
// fragment clusters (DF-index), reached from MF leaf vertices through
// their cluster lists. The in-memory A2FIndex keeps everything hot — the
// right call during interactive sessions — but a deployment with a large
// fragment population wants the paper's actual layout. DfStore provides
// it: clusters are serialized to one paged file; FSG id lists of DF
// vertices are fetched per cluster on demand and held in a bounded LRU
// cache.
//
// The store is a storage layer under A2FIndex, not a replacement: ids and
// DAG structure stay in memory (they are small); only the id lists of
// size > β fragments page in and out.

#ifndef PRAGUE_INDEX_DF_STORE_H_
#define PRAGUE_INDEX_DF_STORE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/a2f_index.h"
#include "util/id_set.h"
#include "util/result.h"

namespace prague {

/// \brief Counters describing store traffic.
struct DfStoreStats {
  size_t lookups = 0;        ///< FsgIds calls for DF vertices
  size_t cluster_loads = 0;  ///< clusters read from disk
  size_t cache_hits = 0;     ///< lookups served from cached clusters
  size_t evictions = 0;      ///< clusters evicted by the LRU
};

/// \brief Paged, LRU-cached storage for DF-index id lists.
class DfStore {
 public:
  /// \brief Writes the DF-tier of \p a2f to \p path and opens a store over
  /// it. \p cache_clusters bounds how many clusters stay resident.
  static Result<DfStore> Create(const A2FIndex& a2f, const std::string& path,
                                size_t cache_clusters = 4);

  /// \brief Opens an existing store file (cluster directory is re-read).
  static Result<DfStore> Open(const std::string& path,
                              size_t cache_clusters = 4);

  /// \brief FSG ids of a DF vertex, fetching its cluster if needed.
  /// Fails with NotFound for ids that are not in the DF tier.
  Result<IdSet> FsgIds(A2fId id);

  /// \brief True iff \p id is stored in the DF tier.
  bool ContainsVertex(A2fId id) const {
    return cluster_of_.contains(id);
  }

  /// \brief Number of clusters in the file.
  size_t ClusterCount() const { return directory_.size(); }
  /// \brief Bytes of the on-disk file.
  size_t FileBytes() const { return file_bytes_; }
  /// \brief Traffic counters.
  const DfStoreStats& stats() const { return stats_; }
  /// \brief Drops every cached cluster (keeps the directory).
  void DropCache();

 private:
  struct ClusterLocation {
    uint64_t offset = 0;  ///< byte offset in the file
    uint32_t vertex_count = 0;
  };
  struct CachedCluster {
    std::unordered_map<A2fId, IdSet> ids;
  };

  Result<const CachedCluster*> FetchCluster(uint32_t cid);

  std::string path_;
  std::vector<ClusterLocation> directory_;
  std::unordered_map<A2fId, uint32_t> cluster_of_;
  size_t cache_clusters_ = 4;
  size_t file_bytes_ = 0;
  // LRU: most recent at front.
  std::list<uint32_t> lru_;
  std::unordered_map<uint32_t, CachedCluster> cache_;
  DfStoreStats stats_;
};

}  // namespace prague

#endif  // PRAGUE_INDEX_DF_STORE_H_
