#include "storage/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "storage/crc32c.h"
#include "storage/fs_util.h"

namespace prague::storage {

namespace {

// %.17g round-trips every double exactly (and stays human-readable).
std::string FormatAlpha(double alpha) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", alpha);
  return buf;
}

}  // namespace

Status SaveManifest(const std::string& dir, const Manifest& manifest) {
  std::string body;
  body += "PRAGUE_MANIFEST " + std::to_string(manifest.format_version) + "\n";
  body += "version " + std::to_string(manifest.snapshot_version) + "\n";
  body += "alpha " + FormatAlpha(manifest.alpha) + "\n";
  body += "segment " + manifest.segment_file + "\n";
  body += "wal " + manifest.wal_file + "\n";
  body += "crc " + std::to_string(Crc32c(body.data(), body.size())) + "\n";
  return WriteFileDurable(dir, kManifestFileName, body);
}

Result<Manifest> LoadManifest(const std::string& dir) {
  Result<std::string> contents =
      ReadFile(JoinPath(dir, kManifestFileName));
  if (!contents.ok()) return contents.status();
  const std::string& text = contents.value();

  // The CRC line seals everything before it.
  size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos || (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return Status::Corruption("manifest missing crc line");
  }
  uint32_t stored_crc = 0;
  if (std::sscanf(text.c_str() + crc_pos, "crc %" SCNu32, &stored_crc) != 1) {
    return Status::Corruption("manifest has malformed crc line");
  }
  if (Crc32c(text.data(), crc_pos) != stored_crc) {
    return Status::Corruption("manifest checksum mismatch");
  }

  std::istringstream in(text.substr(0, crc_pos));
  Manifest m;
  std::string tag;
  if (!(in >> tag >> m.format_version) || tag != "PRAGUE_MANIFEST") {
    return Status::Corruption("bad manifest header");
  }
  if (m.format_version != 1) {
    return Status::NotSupported("manifest format version " +
                                std::to_string(m.format_version));
  }
  if (!(in >> tag >> m.snapshot_version) || tag != "version") {
    return Status::Corruption("bad manifest version line");
  }
  if (!(in >> tag >> m.alpha) || tag != "alpha") {
    return Status::Corruption("bad manifest alpha line");
  }
  if (!(in >> tag >> m.segment_file) || tag != "segment") {
    return Status::Corruption("bad manifest segment line");
  }
  if (!(in >> tag >> m.wal_file) || tag != "wal") {
    return Status::Corruption("bad manifest wal line");
  }
  if (m.segment_file.find('/') != std::string::npos ||
      m.wal_file.find('/') != std::string::npos) {
    return Status::Corruption("manifest file names must be relative");
  }
  return m;
}

}  // namespace prague::storage
