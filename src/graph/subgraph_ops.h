// Edge-subset subgraph machinery.
//
// SPIG vertices (Definition 4) are connected subgraphs of the query
// fragment identified by the subset of (user-drawn) edges they contain.
// Query fragments have at most kMaxSubsetEdges edges (the paper's user
// studies never exceed 10), so subsets fit in a 64-bit mask.

#ifndef PRAGUE_GRAPH_SUBGRAPH_OPS_H_
#define PRAGUE_GRAPH_SUBGRAPH_OPS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace prague {

/// Bitmask over a graph's edge ids; bit e set means edge e is included.
using EdgeMask = uint64_t;

/// Maximum number of edges a graph may have for EdgeMask-based operations.
inline constexpr size_t kMaxSubsetEdges = 64;

/// \brief Mask with the single bit for \p e set.
inline EdgeMask EdgeBit(EdgeId e) { return EdgeMask{1} << e; }

/// \brief Number of edges in \p mask.
inline int MaskSize(EdgeMask mask) { return __builtin_popcountll(mask); }

/// \brief A subgraph extracted from an edge subset, with the mapping back
/// to the parent graph's nodes and edges.
struct ExtractedSubgraph {
  Graph graph;
  /// parent node id of each subgraph node (index = subgraph NodeId).
  std::vector<NodeId> node_map;
  /// parent edge id of each subgraph edge (index = subgraph EdgeId).
  std::vector<EdgeId> edge_map;
};

/// \brief Builds the subgraph of \p parent induced by the edges in \p mask.
///
/// Nodes are the endpoints of the selected edges; isolated parent nodes are
/// dropped. Requires parent.EdgeCount() <= kMaxSubsetEdges and a non-empty
/// mask.
ExtractedSubgraph ExtractEdgeSubgraph(const Graph& parent, EdgeMask mask);

/// \brief True iff the edges in \p mask form a connected subgraph of
/// \p parent (single edges are connected; the empty mask is not).
bool IsEdgeSubsetConnected(const Graph& parent, EdgeMask mask);

/// \brief Enumerates every connected edge subset of \p g, grouped by size.
///
/// Returns a vector indexed by subset size (index 0 unused): result[k] is
/// the sorted list of all connected k-edge subsets. Exponential in
/// g.EdgeCount(); callers cap query size (kMaxVisualQueryEdges in core/).
std::vector<std::vector<EdgeMask>> ConnectedEdgeSubsetsBySize(const Graph& g);

/// \brief Enumerates connected edge subsets of \p g that contain the edge
/// \p required, grouped by size (result[k] = k-edge subsets).
///
/// This is exactly the vertex population of the SPIG for edge \p required.
std::vector<std::vector<EdgeMask>> ConnectedEdgeSupersetsOf(const Graph& g,
                                                            EdgeId required);

}  // namespace prague

#endif  // PRAGUE_GRAPH_SUBGRAPH_OPS_H_
