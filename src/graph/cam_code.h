// Canonical Adjacency Matrix (CAM) code, after Huan & Wang [5] — the
// canonical form the paper names. Production code paths use the minimum
// DFS code (graph/canonical.h) because it shares machinery with the miner;
// this genuine CAM implementation exists so tests can assert the two
// canonical forms induce identical isomorphism classes.

#ifndef PRAGUE_GRAPH_CAM_CODE_H_
#define PRAGUE_GRAPH_CAM_CODE_H_

#include <string>

#include "graph/graph.h"

namespace prague {

/// \brief The maximal adjacency-matrix code over all vertex orderings.
///
/// The code is the row-major concatenation of the lower-triangular
/// adjacency matrix including the diagonal: node labels on the diagonal,
/// edge-label+1 off-diagonal (0 = no edge). Exponential in NodeCount();
/// intended for small fragments and tests.
std::string CamCode(const Graph& g);

}  // namespace prague

#endif  // PRAGUE_GRAPH_CAM_CODE_H_
