// DatabaseSnapshot: an immutable, reference-counted view of one version of
// the indexed database — the data graphs, both action-aware indexes, and
// (through the database) the label dictionary, stamped with a monotone
// version id.
//
// Sessions pin a snapshot via shared_ptr at open time and keep querying it
// unchanged while index maintenance publishes successors; the snapshot
// frees itself when the last pinned session drops. Successor snapshots are
// cheap: GraphDatabase shares Graph storage through shared_ptr, and index
// id-sets are copy-on-write (util/id_set.h), so a copy-and-append touches
// only the sets the new graphs actually extend.
//
// Two construction modes:
//  - Make(db, indexes, version): the snapshot owns its components. This is
//    the production path (SessionManager, praguedb, COW AppendGraphs).
//  - Borrow(&db, &indexes, version): non-owning view over components that
//    outlive the snapshot. For test fixtures and stack-local setups; the
//    caller is responsible for lifetime.

#ifndef PRAGUE_INDEX_DATABASE_SNAPSHOT_H_
#define PRAGUE_INDEX_DATABASE_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "graph/graph_database.h"
#include "index/action_aware_index.h"

namespace prague {

/// \brief One immutable version of the database + indexes.
class DatabaseSnapshot {
 public:
  using Ptr = std::shared_ptr<const DatabaseSnapshot>;

  /// \brief Snapshot owning its components (moved in).
  static Ptr Make(GraphDatabase db, ActionAwareIndexes indexes,
                  uint64_t version = 0);

  /// \brief Non-owning snapshot over components the caller keeps alive
  /// for at least the snapshot's lifetime.
  static Ptr Borrow(const GraphDatabase* db, const ActionAwareIndexes* indexes,
                    uint64_t version = 0);

  /// \brief The data graphs at this version.
  const GraphDatabase& db() const { return *db_; }
  /// \brief The action-aware indexes (A2F + A2I) at this version.
  const ActionAwareIndexes& indexes() const { return *indexes_; }
  /// \brief The label dictionary at this version.
  const LabelDictionary& labels() const { return db_->labels(); }
  /// \brief Monotone version id; successors always carry a larger one.
  uint64_t version() const { return version_; }

  DatabaseSnapshot(const DatabaseSnapshot&) = delete;
  DatabaseSnapshot& operator=(const DatabaseSnapshot&) = delete;

 private:
  DatabaseSnapshot() = default;

  std::unique_ptr<const GraphDatabase> owned_db_;
  std::unique_ptr<const ActionAwareIndexes> owned_indexes_;
  const GraphDatabase* db_ = nullptr;
  const ActionAwareIndexes* indexes_ = nullptr;
  uint64_t version_ = 0;
};

/// Shared handle sessions use to pin a version.
using SnapshotPtr = DatabaseSnapshot::Ptr;

}  // namespace prague

#endif  // PRAGUE_INDEX_DATABASE_SNAPSHOT_H_
