#include "index/a2i_index.h"

#include <algorithm>

#include "util/bytes.h"

namespace prague {

A2IIndex A2IIndex::Build(const std::vector<MinedFragment>& difs) {
  A2IIndex index;
  std::vector<MinedFragment> sorted = difs;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const MinedFragment& a, const MinedFragment& b) {
                     return a.size() < b.size();
                   });
  index.entries_.reserve(sorted.size());
  for (MinedFragment& frag : sorted) {
    A2iEntry entry;
    entry.fragment = std::move(frag.graph);
    entry.code = std::move(frag.code);
    entry.fsg_ids = std::move(frag.fsg_ids);
    A2iId id = static_cast<A2iId>(index.entries_.size());
    index.by_code_.emplace(entry.code, id);
    index.entries_.push_back(std::move(entry));
  }
  return index;
}

std::optional<A2iId> A2IIndex::Lookup(const CanonicalCode& code) const {
  auto it = by_code_.find(code);
  if (it == by_code_.end()) return std::nullopt;
  return it->second;
}

size_t A2IIndex::StorageBytes() const {
  // Stored form per Section III: "Each entry stores the CAM code of a DIF
  // g and a list of FSG identifiers of g." The Graph is a decoded cache.
  size_t bytes = 0;
  for (const A2iEntry& e : entries_) {
    bytes += e.code.size();
    bytes += e.fsg_ids.size() * sizeof(GraphId);
  }
  return bytes;
}

}  // namespace prague
