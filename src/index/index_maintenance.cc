#include "index/index_maintenance.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/code_memo.h"
#include "graph/subgraph_ops.h"
#include "graph/verifier.h"
#include "graph/vf2.h"

namespace prague {

namespace {

// A2F vertex ids ordered by fragment size ascending, so DAG pruning can
// rely on parents being processed first.
std::vector<A2fId> SizeAscendingOrder(const A2FIndex& a2f) {
  std::vector<A2fId> order(a2f.VertexCount());
  for (A2fId i = 0; i < a2f.VertexCount(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&a2f](A2fId a, A2fId b) {
    return a2f.vertex(a).size() < a2f.vertex(b).size();
  });
  return order;
}

// For each A2I entry, the A2F ids of its one-edge-smaller subfragments
// (all frequent by the DIF definition, hence indexed — unless mining was
// size-capped, in which case the list may be partial; missing parents
// simply weaken pruning). Subgraph codes go through the global
// canonical-code memo: repeated maintenance batches re-derive the same
// parent lists.
std::vector<std::vector<A2fId>> DifParents(const ActionAwareIndexes& idx) {
  CanonicalCodeMemo& memo = CanonicalCodeMemo::Global();
  std::vector<std::vector<A2fId>> parents(idx.a2i.EntryCount());
  for (A2iId d = 0; d < idx.a2i.EntryCount(); ++d) {
    const Graph& g = idx.a2i.entry(d).fragment;
    if (g.EdgeCount() < 2) continue;
    auto by_size = ConnectedEdgeSubsetsBySize(g);
    parents[d].reserve(by_size[g.EdgeCount() - 1].size());
    for (EdgeMask mask : by_size[g.EdgeCount() - 1]) {
      Graph sub = ExtractEdgeSubgraph(g, mask).graph;
      if (std::optional<A2fId> fid = idx.a2f.Lookup(memo.Get(sub))) {
        parents[d].push_back(*fid);
      }
    }
  }
  return parents;
}

// ---- σ-crossing reclassification (MaintenanceOptions::reclassify) ----

// One-edge extensions of `fragment` that occur in the graphs of `fsg`,
// keyed by canonical code, each with the exact set of graphs it occurs in.
// Every embedding of fragment is enumerated (VF2), then extended by each
// adjacent data edge: either a back edge closing two mapped nodes or a
// forward edge to a fresh node. Because ext ⊇ fragment implies
// fsg(ext) ⊆ fsg(fragment), the observed graph set IS the exact FSG id
// set — no verification probes are needed.
struct Extension {
  Graph graph;
  IdSet fsg_ids;
};

std::map<CanonicalCode, Extension> EnumerateExtensions(
    const Graph& fragment, const IdSet& fsg, const GraphDatabase& db,
    size_t* embeddings_visited) {
  CanonicalCodeMemo& memo = CanonicalCodeMemo::Global();
  std::map<CanonicalCode, Extension> out;
  for (GraphId gid : fsg) {
    const Graph& target = db.graph(gid);
    Vf2Matcher matcher(fragment, target);
    matcher.ForEach([&](const NodeMapping& m) {
      ++*embeddings_visited;
      // mapped_to[t] = pattern node matched to target node t (or invalid).
      std::vector<NodeId> mapped_to(target.NodeCount(), kInvalidNode);
      for (NodeId u = 0; u < m.size(); ++u) mapped_to[m[u]] = u;
      for (NodeId u = 0; u < m.size(); ++u) {
        for (const Adjacency& adj : target.Neighbors(m[u])) {
          const Label edge_label = target.GetEdge(adj.edge).label;
          NodeId v = mapped_to[adj.neighbor];
          GraphBuilder b(fragment);
          if (v != kInvalidNode) {
            // Back edge between two mapped nodes; visit each pair once.
            if (v <= u || fragment.HasEdge(u, v)) continue;
            if (!b.AddEdge(u, v, edge_label).ok()) continue;
          } else {
            NodeId fresh = b.AddNode(target.NodeLabel(adj.neighbor));
            if (!b.AddEdge(u, fresh, edge_label).ok()) continue;
          }
          Graph ext = std::move(b).Build();
          // Key first: the two try_emplace arguments are unsequenced, so
          // memo.Get(ext) must not race the move that consumes ext.
          CanonicalCode code = memo.Get(ext);
          auto [it, inserted] = out.try_emplace(
              std::move(code), Extension{std::move(ext), {}});
          it->second.fsg_ids.Insert(gid);
        }
      }
      return true;  // exhaustive enumeration
    });
  }
  return out;
}

// True iff `g` satisfies the DIF rule against `frequent_codes`: |g| = 1,
// or every maximal connected (k−1)-edge subgraph is frequent.
bool IsDiscriminative(
    const Graph& g,
    const std::unordered_set<CanonicalCode>& frequent_codes) {
  if (g.EdgeCount() <= 1) return true;
  CanonicalCodeMemo& memo = CanonicalCodeMemo::Global();
  auto by_size = ConnectedEdgeSubsetsBySize(g);
  for (EdgeMask mask : by_size[g.EdgeCount() - 1]) {
    Graph sub = ExtractEdgeSubgraph(g, mask).graph;
    if (!frequent_codes.count(memo.Get(sub))) return false;
  }
  return true;
}

// Repairs a σ-crossing in place: demotes fallen frequent fragments,
// promotes risen DIFs, grows the promoted frontier to discover newly
// frequent fragments (localized re-mining), folds in fragments the
// appended graphs introduced that the index has never seen, re-evaluates
// the DIF rule over the final frequent set, and rebuilds both indexes.
//
// \p first_appended is the id of the first graph this batch added; the
// novelty scan is restricted to [first_appended, db.size()).
void ReclassifyIndexes(const GraphDatabase& db, ActionAwareIndexes* indexes,
                       const MaintenanceOptions& options,
                       GraphId first_appended, MaintenanceReport* report) {
  const size_t sigma = report->new_min_support;
  const A2FIndex& a2f = indexes->a2f;
  const A2IIndex& a2i = indexes->a2i;
  CanonicalCodeMemo& memo = CanonicalCodeMemo::Global();

  // Fragments the appended graphs introduce that the index has never seen.
  // An offline re-mine would surface them (as new frequent fragments or
  // DIFs), so for offline parity the delta path must too. Their observed
  // id sets are exact: a single-edge fragment occurring in any old graph
  // would already be indexed (frequent or DIF — |g| = 1 is always
  // discriminative), and a multi-edge fragment occurring in old graphs
  // either was a DIF before or has a promoted parent, in which case the
  // full-FSG frontier pass below finds it first and wins the `seen` race.
  std::map<CanonicalCode, Extension> novel;
  for (GraphId gid = first_appended; gid < db.size(); ++gid) {
    const Graph& g = db.graph(gid);
    for (const Edge& e : g.edges()) {
      GraphBuilder b;
      b.AddNode(g.NodeLabel(e.u));
      b.AddNode(g.NodeLabel(e.v));
      if (!b.AddEdge(0, 1, e.label).ok()) continue;
      Graph frag = std::move(b).Build();
      CanonicalCode code = memo.Get(frag);
      if (a2f.Lookup(code) || a2i.Lookup(code)) continue;
      auto [it, inserted] = novel.try_emplace(code, Extension{std::move(frag), {}});
      it->second.fsg_ids.Insert(gid);
    }
  }
  // One-edge extensions of still-frequent fragments, enumerated only
  // inside the appended graphs they gained (extensions occurring in old
  // graphs are either already indexed or reached via a promoted parent).
  for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
    const A2fVertex& v = a2f.vertex(id);
    if (v.fsg_ids.size() < sigma) continue;  // demoted: children moot
    if (v.fragment.EdgeCount() >= options.max_fragment_edges) continue;
    IdSet gained;
    for (GraphId gid : v.fsg_ids) {
      if (gid >= first_appended) gained.Insert(gid);
    }
    if (gained.size() == 0) continue;
    size_t embeddings = 0;
    std::map<CanonicalCode, Extension> extensions =
        EnumerateExtensions(v.fragment, gained, db, &embeddings);
    report->probes += embeddings;
    for (auto& [code, ext] : extensions) {
      if (a2f.Lookup(code) || a2i.Lookup(code)) continue;
      auto [it, inserted] =
          novel.try_emplace(code, Extension{std::move(ext.graph), {}});
      for (GraphId gid : ext.fsg_ids) it->second.fsg_ids.Insert(gid);
    }
  }

  const bool crossings = report->frequent_below_threshold > 0 ||
                         report->difs_above_threshold > 0;
  if (!crossings && novel.empty()) return;  // nothing moved, nothing new

  // Split the current population by the new threshold. Demotions cannot
  // cascade: sup(child) ≤ sup(parent), so every transitively affected
  // fragment is caught by this one sweep.
  std::vector<MinedFragment> frequent;
  std::vector<MinedFragment> dif_candidates;
  std::unordered_set<CanonicalCode> seen;
  frequent.reserve(a2f.VertexCount());
  for (A2fId id = 0; id < a2f.VertexCount(); ++id) {
    const A2fVertex& v = a2f.vertex(id);
    seen.insert(v.code);
    MinedFragment f{v.fragment, v.code, v.fsg_ids, {}};
    if (v.fsg_ids.size() >= sigma) {
      frequent.push_back(std::move(f));
    } else {
      ++report->demoted_fragments;
      dif_candidates.push_back(std::move(f));
    }
  }

  // Promotions seed the localized growth frontier.
  std::deque<size_t> frontier;  // indexes into `frequent`
  for (A2iId d = 0; d < a2i.EntryCount(); ++d) {
    const A2iEntry& e = a2i.entry(d);
    seen.insert(e.code);
    MinedFragment f{e.fragment, e.code, e.fsg_ids, {}};
    if (e.fsg_ids.size() >= sigma) {
      ++report->promoted_fragments;
      frontier.push_back(frequent.size());
      frequent.push_back(std::move(f));
    } else {
      dif_candidates.push_back(std::move(f));
    }
  }

  // Grow the frontier one edge at a time inside the parents' FSG graphs.
  // Frequent extensions join the frontier; infrequent ones become DIF
  // candidates (their id sets are exact — see EnumerateExtensions).
  auto drain_frontier = [&] {
    while (!frontier.empty()) {
      const size_t fi = frontier.front();
      frontier.pop_front();
      if (frequent[fi].size() >= options.max_fragment_edges) continue;
      // Copy what the loop below needs: growing `frequent` may reallocate.
      const Graph parent_graph = frequent[fi].graph;
      const IdSet parent_fsg = frequent[fi].fsg_ids;
      size_t embeddings = 0;
      std::map<CanonicalCode, Extension> extensions =
          EnumerateExtensions(parent_graph, parent_fsg, db, &embeddings);
      report->probes += embeddings;
      for (auto& [code, ext] : extensions) {
        if (!seen.insert(code).second) continue;
        MinedFragment f{std::move(ext.graph), code, std::move(ext.fsg_ids),
                        {}};
        if (f.fsg_ids.size() >= sigma) {
          ++report->discovered_fragments;
          frontier.push_back(frequent.size());
          frequent.push_back(std::move(f));
        } else {
          dif_candidates.push_back(std::move(f));
        }
      }
    }
  };
  drain_frontier();

  // Fold in the novel fragments the appended graphs introduced. The
  // frontier ran first, so a fragment reachable from a promoted parent is
  // already in `seen` with its full FSG set; what remains occurs only in
  // appended graphs, making the observed set exact. Newly frequent ones
  // join the frontier and grow like any other discovery.
  for (auto& [code, ext] : novel) {
    if (!seen.insert(code).second) continue;
    MinedFragment f{std::move(ext.graph), code, std::move(ext.fsg_ids), {}};
    if (f.fsg_ids.size() >= sigma) {
      ++report->discovered_fragments;
      frontier.push_back(frequent.size());
      frequent.push_back(std::move(f));
    } else {
      dif_candidates.push_back(std::move(f));
    }
  }
  drain_frontier();

  // Final DIF set: every candidate that still satisfies the DIF rule
  // against the final frequent population, in the miner's (size, code)
  // order so a reclassified index is ordered like a freshly mined one.
  std::unordered_set<CanonicalCode> frequent_codes;
  for (const MinedFragment& f : frequent) frequent_codes.insert(f.code);
  std::vector<MinedFragment> difs;
  for (MinedFragment& f : dif_candidates) {
    if (IsDiscriminative(f.graph, frequent_codes)) {
      difs.push_back(std::move(f));
    }
  }
  std::sort(difs.begin(), difs.end(),
            [](const MinedFragment& x, const MinedFragment& y) {
              return x.size() != y.size() ? x.size() < y.size()
                                          : x.code < y.code;
            });

  MiningResult result;
  result.frequent = std::move(frequent);
  result.difs = std::move(difs);
  result.min_support = sigma;
  result.stats = indexes->mining_stats;
  *indexes = BuildActionAwareIndexes(result, A2fConfig{a2f.beta()});
  report->reclassified = true;
}

}  // namespace

Result<MaintenanceReport> AppendGraphs(GraphDatabase* db,
                                       std::vector<Graph> graphs,
                                       ActionAwareIndexes* indexes,
                                       double alpha) {
  MaintenanceOptions options;
  options.alpha = alpha;
  return AppendGraphs(db, std::move(graphs), indexes, options);
}

Result<MaintenanceReport> AppendGraphs(GraphDatabase* db,
                                       std::vector<Graph> graphs,
                                       ActionAwareIndexes* indexes,
                                       const MaintenanceOptions& options) {
  const double alpha = options.alpha;
  if (alpha <= 0 || alpha >= 1) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (graphs.empty()) {
    return Status::InvalidArgument("no graphs to append");
  }
  for (const Graph& g : graphs) {
    if (g.EdgeCount() == 0 || !g.IsConnected()) {
      return Status::InvalidArgument(
          "appended graphs must be connected and non-empty");
    }
  }

  MaintenanceReport report;
  report.graphs_added = graphs.size();
  std::vector<A2fId> order = SizeAscendingOrder(indexes->a2f);
  std::vector<std::vector<A2fId>> dif_parents = DifParents(*indexes);
  FilteringVerifier verifier;

  // contains[f] for the graph currently being processed.
  std::vector<char> contains(indexes->a2f.VertexCount(), 0);

  const GraphId first_appended = static_cast<GraphId>(db->size());
  for (Graph& graph : graphs) {
    GraphId gid = db->Add(std::move(graph));
    const Graph& g = db->graph(gid);
    std::fill(contains.begin(), contains.end(), 0);

    // A2F sweep, size ascending with anti-monotone pruning: skip the VF2
    // probe whenever some recorded parent fragment is already absent.
    for (A2fId id : order) {
      const A2fVertex& v = indexes->a2f.vertex(id);
      bool possible = true;
      for (A2fId p : v.parents) {
        if (!contains[p]) {
          possible = false;
          break;
        }
      }
      if (!possible) {
        ++report.pruned_probes;
        continue;
      }
      ++report.probes;
      if (verifier.Matches(v.fragment, g)) {
        contains[id] = 1;
        indexes->a2f.AddFsgId(id, gid);
      }
    }
    // A2I sweep with the precomputed frequent-parent lists.
    for (A2iId d = 0; d < indexes->a2i.EntryCount(); ++d) {
      bool possible = true;
      for (A2fId p : dif_parents[d]) {
        if (!contains[p]) {
          possible = false;
          break;
        }
      }
      if (!possible) {
        ++report.pruned_probes;
        continue;
      }
      ++report.probes;
      if (verifier.Matches(indexes->a2i.entry(d).fragment, g)) {
        indexes->a2i.AddFsgId(d, gid);
      }
    }
  }

  indexes->a2f.RecomputeDelIds();

  // Drift detection against the moved threshold.
  report.new_min_support = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(alpha * static_cast<double>(db->size()))));
  indexes->min_support = report.new_min_support;
  for (A2fId id = 0; id < indexes->a2f.VertexCount(); ++id) {
    if (indexes->a2f.FsgIds(id).size() < report.new_min_support) {
      ++report.frequent_below_threshold;
    }
  }
  for (A2iId d = 0; d < indexes->a2i.EntryCount(); ++d) {
    if (indexes->a2i.FsgIds(d).size() >= report.new_min_support) {
      ++report.difs_above_threshold;
    }
  }
  report.remine_recommended = report.frequent_below_threshold > 0 ||
                              report.difs_above_threshold > 0;

  if (options.reclassify) {
    // Always offered the chance: besides σ-crossings, appended graphs can
    // introduce fragments the index has never seen (new labels, new edge
    // shapes), which drift detection alone cannot notice. The pass
    // returns untouched when nothing moved and nothing new appeared.
    ReclassifyIndexes(*db, indexes, options, first_appended, &report);
    if (report.reclassified) report.remine_recommended = false;
  }
  return report;
}

Result<SnapshotAppendResult> AppendGraphs(const DatabaseSnapshot& base,
                                          std::vector<Graph> graphs,
                                          double alpha,
                                          const LabelDictionary* graph_labels) {
  MaintenanceOptions options;
  options.alpha = alpha;
  return AppendGraphs(base, std::move(graphs), options, graph_labels);
}

Result<SnapshotAppendResult> AppendGraphs(const DatabaseSnapshot& base,
                                          std::vector<Graph> graphs,
                                          const MaintenanceOptions& options,
                                          const LabelDictionary* graph_labels) {
  // Both copies are cheap: the database shares all Graph storage through
  // shared_ptr and every index id-set is copy-on-write.
  GraphDatabase db = base.db();
  ActionAwareIndexes indexes = base.indexes();

  if (graph_labels != nullptr) {
    for (Graph& g : graphs) {
      GraphBuilder b;
      for (NodeId n = 0; n < g.NodeCount(); ++n) {
        Result<std::string> name = graph_labels->NameOf(g.NodeLabel(n));
        if (!name.ok()) return name.status();
        b.AddNode(db.mutable_labels()->Intern(name.value()));
      }
      for (const Edge& e : g.edges()) {
        Result<EdgeId> eid = b.AddEdge(e.u, e.v, e.label);
        if (!eid.ok()) return eid.status();
      }
      g = std::move(b).Build();
    }
  }

  Result<MaintenanceReport> report =
      AppendGraphs(&db, std::move(graphs), &indexes, options);
  if (!report.ok()) return report.status();

  SnapshotAppendResult out;
  out.report = report.value();
  out.report.from_version = base.version();
  out.report.to_version = base.version() + 1;
  out.snapshot = DatabaseSnapshot::Make(std::move(db), std::move(indexes),
                                        out.report.to_version);
  return out;
}

}  // namespace prague
