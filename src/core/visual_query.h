// VisualQuery: the evolving query fragment a user draws edge-at-a-time in
// the GUI (Figure 2). Every edge carries its *formulation id* ℓ — the
// step number at which it was drawn — which is the identity SPIGs, Edge
// Lists, and the modification machinery key on. Formulation ids are never
// reused, so a SPIG built at step ℓ stays valid after later deletions.

#ifndef PRAGUE_CORE_VISUAL_QUERY_H_
#define PRAGUE_CORE_VISUAL_QUERY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/subgraph_ops.h"
#include "util/result.h"
#include "util/status.h"

namespace prague {

/// Formulation id ℓ of a drawn edge (1-based step number).
using FormulationId = int;

/// Bitmask over formulation ids; bit (ℓ-1) set means edge eℓ is included.
/// This is the storage form of a SPIG vertex's Edge List.
using FormulationMask = uint64_t;

/// \brief Bit for formulation id \p ell.
inline FormulationMask FormulationBit(FormulationId ell) {
  return FormulationMask{1} << (ell - 1);
}

/// Hard cap on concurrently drawn (alive) edges; the subset machinery is
/// exponential in this. The paper's user studies stop at 10.
inline constexpr size_t kMaxVisualQueryEdges = 16;
/// Hard cap on formulation ids handed out per session (mask bits).
inline constexpr FormulationId kMaxFormulationId = 64;

/// \brief One user-drawn edge.
struct VisualEdge {
  NodeId u = kInvalidNode;  ///< user node id
  NodeId v = kInvalidNode;  ///< user node id
  Label label = 0;
  FormulationId ell = 0;
  bool alive = true;
};

/// \brief The visual query fragment under construction.
///
/// User node ids are stable (they are never renumbered); the compiled
/// Graph exposed by CurrentGraph() contains only nodes incident to alive
/// edges, with dense ids and a recorded mapping in both directions.
class VisualQuery {
 public:
  VisualQuery() = default;

  /// \brief User drops a node with the given label onto the canvas.
  NodeId AddNode(Label label);

  /// \brief User draws an edge; returns its formulation id ℓ.
  ///
  /// The fragment must stay connected: the first edge is free, every later
  /// edge must touch a node already covered by an alive edge. Fails with
  /// InvalidArgument on bad endpoints, duplicates, or disconnection, and
  /// FailedPrecondition when a size cap is hit.
  Result<FormulationId> AddEdge(NodeId u, NodeId v, Label label = 0);

  /// \brief User deletes edge eℓ. The remaining fragment must be non-empty
  /// and connected (isolated endpoints drop out of the compiled graph).
  Status DeleteEdge(FormulationId ell);

  /// \brief Can eℓ be deleted while keeping the fragment connected?
  bool CanDelete(FormulationId ell) const;

  /// \brief User changes the label of a node (footnote 5 of the paper).
  /// The drawn edges are untouched; callers must refresh any SPIG state
  /// built over the old label (SpigSet::RefreshForRelabel).
  Status RelabelNode(NodeId user_node, Label new_label);

  /// \brief Formulation-id mask of the alive edges incident to a node.
  FormulationMask IncidentEdgeMask(NodeId user_node) const;

  /// \brief Number of alive edges — |q|.
  size_t EdgeCount() const { return alive_count_; }
  /// \brief True iff no alive edges.
  bool Empty() const { return alive_count_ == 0; }
  /// \brief Label of a user node.
  Label NodeLabel(NodeId user_node) const { return node_labels_[user_node]; }
  /// \brief Number of user nodes ever added.
  size_t UserNodeCount() const { return node_labels_.size(); }

  /// \brief Formulation ids of all alive edges, ascending.
  std::vector<FormulationId> AliveEdgeIds() const;
  /// \brief The alive edge eℓ, if alive.
  std::optional<VisualEdge> GetEdge(FormulationId ell) const;
  /// \brief Highest formulation id handed out so far.
  FormulationId LastFormulationId() const { return next_ell_ - 1; }

  /// \brief OR of FormulationBit over alive edges.
  FormulationMask FullMask() const;

  /// \brief The compiled connected graph of alive edges. Edge ids in the
  /// compiled graph are positional; use FormulationIdOfGraphEdge /
  /// GraphEdgeOfFormulationId to translate. Requires !Empty().
  const Graph& CurrentGraph() const;

  /// \brief Formulation id of compiled-graph edge \p e.
  FormulationId FormulationIdOfGraphEdge(EdgeId e) const;
  /// \brief Compiled-graph edge id of eℓ, if alive.
  std::optional<EdgeId> GraphEdgeOfFormulationId(FormulationId ell) const;

  /// \brief Converts a compiled-graph edge mask to a formulation mask.
  FormulationMask ToFormulationMask(EdgeMask graph_mask) const;
  /// \brief Converts a formulation mask (of alive edges) to a compiled-
  /// graph edge mask.
  EdgeMask ToGraphMask(FormulationMask formulation_mask) const;

 private:
  void Recompile() const;

  std::vector<Label> node_labels_;   // user node id -> label
  std::vector<VisualEdge> edges_;    // by formulation order (ell-1)
  size_t alive_count_ = 0;
  FormulationId next_ell_ = 1;

  // Compiled-graph cache.
  mutable bool dirty_ = true;
  mutable Graph compiled_;
  mutable std::vector<FormulationId> edge_to_ell_;   // graph EdgeId -> ell
  mutable std::vector<EdgeId> ell_to_edge_;          // ell-1 -> graph EdgeId
  mutable std::vector<NodeId> user_to_graph_;        // user node -> graph node
};

}  // namespace prague

#endif  // PRAGUE_CORE_VISUAL_QUERY_H_
