// Pluggable subgraph-isomorphism verification backends.
//
// Section VI-C: "our focus here is not to develop an efficient similar
// subgraph verification technique. In fact, we can easily replace the
// implementation of SimVerify with a more efficient technique." This
// module provides that seam: a Verifier interface with
//  * PlainVerifier    — straight VF2 per (pattern, target) pair;
//  * FilteringVerifier — cheap label-multiset and degree-profile
//    prefilters in front of VF2, with per-target feature caching. Same
//    answers, fewer VF2 calls (the filtering ablation bench quantifies it).

#ifndef PRAGUE_GRAPH_VERIFIER_H_
#define PRAGUE_GRAPH_VERIFIER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/deadline.h"

namespace prague {

/// \brief Counters for one verifier's lifetime.
struct VerifierStats {
  size_t checks = 0;          ///< Matches() calls
  size_t prefilter_hits = 0;  ///< rejected before VF2
  size_t vf2_calls = 0;       ///< VF2 searches actually run
  size_t nodes_expanded = 0;  ///< VF2 expansion steps across all searches
  size_t deadline_hits = 0;   ///< VF2 searches cut by the deadline
};

/// \brief Interface: does \p pattern match inside \p target?
class Verifier {
 public:
  virtual ~Verifier() = default;

  /// \brief Subgraph-isomorphism test (label-preserving monomorphism).
  /// Under an expired deadline this reports false ("no match proven") and
  /// counts a deadline_hit; callers treat such verdicts as unknown, not as
  /// rejections.
  virtual bool Matches(const Graph& pattern, const Graph& target) = 0;

  /// \brief Bounds every subsequent Matches() call.
  void SetDeadline(const Deadline& deadline) { deadline_ = deadline; }

  /// \brief Lifetime counters.
  const VerifierStats& stats() const { return stats_; }

 protected:
  VerifierStats stats_;
  Deadline deadline_;
};

/// \brief Plain VF2, no filtering — the paper's baseline SimVerify.
class PlainVerifier : public Verifier {
 public:
  bool Matches(const Graph& pattern, const Graph& target) override;
};

/// \brief VF2 behind label-multiset + degree-profile prefilters.
///
/// For each check a small feature summary is computed per graph: label →
/// (node count, max degree incident to the label). A pattern can only
/// match if, for every label, the target has at least as many nodes and
/// at least the degree head-room. Sound (never rejects a true match)
/// because subgraph isomorphism preserves labels and can only *lose*
/// degree. Summaries are O(V + E) — negligible next to a VF2 search — so
/// they are recomputed per call rather than cached (an address-keyed
/// cache would go stale when graph storage is reused).
class FilteringVerifier : public Verifier {
 public:
  bool Matches(const Graph& pattern, const Graph& target) override;

 private:
  struct Summary {
    // label -> [node count, max degree among nodes with this label]
    std::unordered_map<Label, std::pair<uint32_t, uint32_t>> by_label;
    size_t nodes = 0;
    size_t edges = 0;
  };

  static Summary Summarize(const Graph& g);
  static bool CouldMatch(const Summary& pattern, const Summary& target);
};

/// \brief Factory by name ("plain" | "filtering").
std::unique_ptr<Verifier> MakeVerifier(const std::string& name);

}  // namespace prague

#endif  // PRAGUE_GRAPH_VERIFIER_H_
